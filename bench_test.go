package rendelim_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per table/figure; see DESIGN.md §3 for the
// index) and reports the headline series via b.ReportMetric, so
// `go test -bench . -benchmem` reproduces the whole evaluation. Set
// RENDELIM_BENCH_PRINT=1 to also dump the full tables (cmd/reexp prints
// them by default at full scale).
//
// The per-benchmark × per-technique simulation runs are shared through a
// lazily warmed singleton runner: the first figure benchmark pays the
// simulation cost, subsequent ones measure table assembly over the cached
// runs — mirroring how the paper derives all figures from one set of runs.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"rendelim"
	"rendelim/internal/exp"
	"rendelim/internal/gpusim"
	"rendelim/internal/stats"
	"rendelim/internal/workload"
)

var (
	runnerOnce sync.Once
	runner     *exp.Runner
)

// benchParams is the reduced scale used by the bench harness; cmd/reexp
// runs the full 480x272x50 configuration.
func benchParams() workload.Params {
	return workload.Params{Width: 256, Height: 160, Frames: 12, Seed: 1}
}

func sharedRunner(b *testing.B) *exp.Runner {
	runnerOnce.Do(func() {
		runner = exp.NewRunner(benchParams())
		runner.Prefetch(exp.SuiteAliases(),
			[]gpusim.Technique{gpusim.Baseline, gpusim.RE, gpusim.TE, gpusim.Memo})
	})
	return runner
}

func reportTable(b *testing.B, t *stats.Table, metrics map[string]int) {
	b.Helper()
	if os.Getenv("RENDELIM_BENCH_PRINT") != "" {
		fmt.Println(t.String())
	}
	if len(t.Rows) == 0 {
		b.Fatal("empty table")
	}
	last := t.Rows[len(t.Rows)-1] // AVG row when present
	for name, col := range metrics {
		if col < len(last.Values) {
			b.ReportMetric(last.Values[col], name)
		}
	}
}

func BenchmarkFig01AveragePower(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		t := r.Fig01()
		reportTable(b, t, map[string]int{"last_power_mW": 0})
	}
}

func BenchmarkFig02EqualTiles(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.Fig02(), map[string]int{"avg_equal_%": 0})
	}
}

func BenchmarkFig14aCycles(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.Fig14a(), map[string]int{"avg_norm_cycles": 4, "avg_speedup": 5})
	}
}

func BenchmarkFig14bEnergy(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.Fig14b(), map[string]int{"avg_norm_energy": 4})
	}
}

func BenchmarkFig15aTileClasses(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.Fig15a(), map[string]int{
			"avg_eq_eq_%": 0, "avg_eq_diff_%": 1, "avg_diff_%": 2,
		})
	}
}

func BenchmarkFig15bTraffic(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.Fig15b(), map[string]int{"avg_re_traffic": 6})
	}
}

func BenchmarkFig16FragmentsShaded(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.Fig16(), map[string]int{"avg_re_frac": 0, "avg_memo_frac": 1})
	}
}

func BenchmarkFig17aTEvsRECycles(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.Fig17a(), map[string]int{"avg_te": 0, "avg_re": 1})
	}
}

func BenchmarkFig17bTEvsREEnergy(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.Fig17b(), map[string]int{"avg_te": 0, "avg_re": 1})
	}
}

func BenchmarkOverheadGeometry(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.Overhead(), map[string]int{"avg_stall_%geom": 0, "avg_energy_ovh_%": 2})
	}
}

func BenchmarkHashAblation(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.HashAblation(), map[string]int{"last_false_pos_adv": 2})
	}
}

func BenchmarkAblationOTQueue(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.OTQueueAblation(), map[string]int{"deepest_stall_%": 0})
	}
}

func BenchmarkAblationMemoLUT(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.MemoLUTAblation(), map[string]int{"hop_frac": 0})
	}
}

func BenchmarkAblationRefresh(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.RefreshAblation(), map[string]int{"skip_frac": 0})
	}
}

func BenchmarkAblationSubblock(b *testing.B) {
	r := sharedRunner(b)
	for i := 0; i < b.N; i++ {
		reportTable(b, r.SubblockTradeoff(), map[string]int{"prim_cycles": 2})
	}
}

// --- Raw performance benchmarks (simulator throughput per technique) -------

func benchSimulate(b *testing.B, alias string, tech rendelim.Technique) {
	p := benchParams()
	tr, err := rendelim.Build(alias, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rendelim.Run(tr, rendelim.WithTechnique(tech))
		if err != nil {
			b.Fatal(err)
		}
		if res.Total.TilesTotal == 0 {
			b.Fatal("no tiles simulated")
		}
	}
	frames := float64(b.N * p.Frames)
	b.ReportMetric(frames/b.Elapsed().Seconds(), "frames/s")
}

func BenchmarkSimulateBaselineCCS(b *testing.B) { benchSimulate(b, "ccs", rendelim.Baseline) }
func BenchmarkSimulateRECCS(b *testing.B)       { benchSimulate(b, "ccs", rendelim.RE) }
func BenchmarkSimulateTECCS(b *testing.B)       { benchSimulate(b, "ccs", rendelim.TE) }
func BenchmarkSimulateMemoCCS(b *testing.B)     { benchSimulate(b, "ccs", rendelim.Memo) }
func BenchmarkSimulateBaselineMST(b *testing.B) { benchSimulate(b, "mst", rendelim.Baseline) }
func BenchmarkSimulateREMST(b *testing.B)       { benchSimulate(b, "mst", rendelim.RE) }
