// Package rendelim is a trace-driven, tile-based-rendering mobile-GPU
// simulator reproducing "Rendering Elimination: Early Discard of Redundant
// Tiles in the Graphics Pipeline" (Anglada et al., HPCA 2019,
// arXiv:1807.09449).
//
// Rendering Elimination (RE) detects, before rasterization, that a tile's
// inputs — the vertex attributes of every overlapping primitive plus its
// drawcalls' scene constants — are identical to those of the previous frame,
// and skips the tile's entire Raster Pipeline execution, reusing the Frame
// Buffer contents. The package bundles:
//
//   - the RE controller and its Signature Unit (incremental, table-based
//     CRC32 over the tile-input bitstream);
//   - a functional software renderer (vertex/fragment shader VM,
//     rasterizer, early-Z, blending, texturing) so every result is computed
//     on real pixels;
//   - a Mali-450-like timing model, cache and LPDDR3 DRAM models, and a
//     McPAT-style energy model;
//   - the comparison techniques: Transaction Elimination and PFR-aided
//     Fragment Memoization;
//   - a synthetic benchmark suite mirroring the paper's Table II.
//
// Quick start:
//
//	trace, _ := rendelim.Build("ccs", rendelim.DefaultParams())
//	base, _ := rendelim.Run(trace, rendelim.WithTechnique(rendelim.Baseline))
//	re, _ := rendelim.Run(trace, rendelim.WithTechnique(rendelim.RE))
//	speedup := float64(base.Total.TotalCycles()) / float64(re.Total.TotalCycles())
//
// Simulations are configured with functional options (WithTechnique,
// WithTileWorkers, WithTracer, ...); see Option. WithTileWorkers spreads the
// raster phase across host CPUs without changing any simulated number.
package rendelim

import (
	"context"
	"io"

	"rendelim/internal/api"
	"rendelim/internal/energy"
	"rendelim/internal/gpusim"
	"rendelim/internal/trace"
	"rendelim/internal/workload"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases form the supported public surface.
type (
	// Technique selects the redundancy-elimination scheme under test.
	Technique = gpusim.Technique
	// Config parameterizes a simulation (Table I defaults).
	Config = gpusim.Config
	// Stats is a per-frame or aggregated measurement record.
	Stats = gpusim.Stats
	// Result is a whole-trace simulation outcome.
	Result = gpusim.Result
	// Simulator replays one trace under one configuration.
	Simulator = gpusim.Simulator
	// Params scales a synthetic benchmark build.
	Params = workload.Params
	// Trace is a recorded command-stream workload.
	Trace = api.Trace
	// Benchmark describes one entry of the benchmark suite.
	Benchmark = workload.Benchmark
	// EnergyParams is the energy model's parameter set.
	EnergyParams = energy.Params
	// EnergyBreakdown is an energy result in joules.
	EnergyBreakdown = energy.Breakdown
)

// Techniques.
const (
	Baseline = gpusim.Baseline
	RE       = gpusim.RE
	TE       = gpusim.TE
	Memo     = gpusim.Memo
)

// Tile classification (Figure 15a).
const (
	TileEqColorEqInput   = gpusim.TileEqColorEqInput
	TileEqColorDiffInput = gpusim.TileEqColorDiffInput
	TileDiffColor        = gpusim.TileDiffColor
	TileEqInputDiffColor = gpusim.TileEqInputDiffColor
)

// Traffic classes (Figure 15b).
const (
	TrafficVertex  = gpusim.TrafficVertex
	TrafficPBWrite = gpusim.TrafficPBWrite
	TrafficPBRead  = gpusim.TrafficPBRead
	TrafficTexel   = gpusim.TrafficTexel
	TrafficColor   = gpusim.TrafficColor
)

// DefaultConfig returns the paper's Table I configuration (Baseline
// technique).
func DefaultConfig() Config { return gpusim.DefaultConfig() }

// DefaultParams returns the default benchmark scale (quarter-resolution
// screen, 50 frames).
func DefaultParams() Params { return workload.DefaultParams() }

// Benchmarks returns the Table II suite in paper order.
func Benchmarks() []Benchmark { return workload.Suite() }

// ExtraBenchmarks returns the Figure 1 reference workloads (desktop,
// antutu).
func ExtraBenchmarks() []Benchmark { return workload.Extras() }

// Build synthesizes the named benchmark's trace at the given scale.
func Build(alias string, p Params) (*Trace, error) {
	b, err := workload.ByAlias(alias)
	if err != nil {
		return nil, err
	}
	return b.Build(p), nil
}

// NewSimulator builds a simulator over a trace, configured by opts on top
// of DefaultConfig. Configuration failures wrap ErrBadConfig; invalid
// traces wrap ErrBadTrace.
func NewSimulator(tr *Trace, opts ...Option) (*Simulator, error) {
	return gpusim.New(tr, buildConfig(opts))
}

// Run replays the whole trace under the given options and returns
// aggregated results.
func Run(tr *Trace, opts ...Option) (Result, error) {
	return RunContext(context.Background(), tr, opts...)
}

// RunContext is Run with cooperative cancellation: ctx is checked at frame
// boundaries (a frame is the smallest unit of simulated work), and on
// cancellation the partial result simulated so far is returned alongside
// ctx.Err().
func RunContext(ctx context.Context, tr *Trace, opts ...Option) (Result, error) {
	sim, err := gpusim.New(tr, buildConfig(opts))
	if err != nil {
		return Result{}, err
	}
	return sim.RunContext(ctx)
}

// NewSimulatorConfig builds a simulator from a fully explicit Config.
//
// Deprecated: use NewSimulator with options (WithConfig for a custom base).
func NewSimulatorConfig(tr *Trace, cfg Config) (*Simulator, error) {
	return gpusim.New(tr, cfg)
}

// RunConfig replays the whole trace under a fully explicit Config.
//
// Deprecated: use Run with options (WithConfig for a custom base).
func RunConfig(tr *Trace, cfg Config) (Result, error) {
	sim, err := gpusim.New(tr, cfg)
	if err != nil {
		return Result{}, err
	}
	return sim.Run(), nil
}

// ComputeEnergy evaluates the default energy model over a result's
// activity.
func ComputeEnergy(r Result) EnergyBreakdown {
	return energy.Default().Compute(r.Total.Activity)
}

// EncodeTrace writes a trace in the rendelim binary format.
func EncodeTrace(w io.Writer, tr *Trace) error { return trace.Encode(w, tr) }

// DecodeTrace reads a trace written by EncodeTrace.
func DecodeTrace(r io.Reader) (*Trace, error) { return trace.Decode(r) }
