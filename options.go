package rendelim

import (
	"rendelim/internal/gpusim"
	"rendelim/internal/obs"
)

// Tracer is the Chrome trace-event timeline sink (Perfetto-loadable) the
// simulator can record pipeline spans into; see WithTracer.
type Tracer = obs.Tracer

// NewTracer starts a trace sink; timestamps are relative to this call.
func NewTracer() *Tracer { return obs.NewTracer() }

// An Option configures a simulation built by NewSimulator, Run or
// RunContext. Options apply in argument order on top of DefaultConfig, so a
// later option overrides an earlier one (and WithConfig replaces everything
// set before it).
type Option func(*gpusim.Config)

// WithTechnique selects the redundancy-elimination technique under test:
// Baseline, RE (the paper's contribution), TE or Memo. The default is
// Baseline.
func WithTechnique(t Technique) Option {
	return func(c *gpusim.Config) { c.Technique = t }
}

// WithConfig replaces the entire configuration with cfg, for callers that
// build a gpusim.Config directly (custom cache geometries, timing or energy
// parameters). Options after it still apply on top.
func WithConfig(cfg Config) Option {
	return func(c *gpusim.Config) { *c = cfg }
}

// WithTileWorkers sets how many host goroutines render tiles concurrently
// in the raster phase: 0 or 1 runs serially (the default), n > 1 uses
// exactly n workers, and a negative value uses one worker per host CPU.
// This is host parallelism only — simulated cycles, traffic, tile
// classifications, energy activity and pixels are byte-identical at any
// worker count, so results never depend on the machine running them.
func WithTileWorkers(n int) Option {
	return func(c *gpusim.Config) { c.TileWorkers = n }
}

// WithTracer records a Chrome trace-event timeline of the run into t: one
// span per frame with nested per-stage spans, per-worker raster tracks, and
// instant events for tile eliminations. A nil t disables tracing (the
// default), which costs nothing on the simulation hot path. Tracing never
// changes simulated results.
func WithTracer(t *Tracer) Option {
	return func(c *gpusim.Config) { c.Tracer = t }
}

// WithExactBinning switches the Polygon List Builder from bounding-box to
// exact triangle-tile overlap tests: tighter bins mean fewer polluted tile
// signatures (fewer RE false negatives) at extra binning cost.
func WithExactBinning(exact bool) Option {
	return func(c *gpusim.Config) { c.ExactBinning = exact }
}

// WithRefreshInterval forces a full render every n-th frame when n > 0, the
// Frame Buffer refresh guarantee of the paper's Section III-E. Zero (the
// default) never forces a refresh.
func WithRefreshInterval(n int) Option {
	return func(c *gpusim.Config) { c.RefreshInterval = n }
}

// WithGroundTruth toggles the ground-truth tile classification (equal
// colors vs. equal inputs, Figure 15a). It is on by default; switching it
// off skips the per-tile back-buffer comparison.
func WithGroundTruth(track bool) Option {
	return func(c *gpusim.Config) { c.TrackGroundTruth = track }
}

// buildConfig folds opts over the Table I defaults.
func buildConfig(opts []Option) Config {
	cfg := gpusim.DefaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}
