package rendelim

import "rendelim/internal/rerr"

// Sentinel errors, for errors.Is matching instead of string inspection. The
// errors actually returned wrap these with context (the offending alias, the
// decode position, the invalid parameter).
var (
	// ErrUnknownBenchmark is returned by Build (and wrapped by everything
	// that resolves benchmark aliases) when the alias names no benchmark in
	// the Table II suite or the extras.
	ErrUnknownBenchmark = rerr.ErrUnknownBenchmark

	// ErrBadTrace is returned by DecodeTrace for malformed or truncated
	// trace files, and by NewSimulator/Run for traces that fail validation.
	ErrBadTrace = rerr.ErrBadTrace

	// ErrBadConfig is returned by NewSimulator/Run when the configuration
	// fails validation (bad cache geometry, memo LUT shape, DRAM timing, or
	// refresh interval).
	ErrBadConfig = rerr.ErrBadConfig

	// ErrWorkerPanic marks a job failure caused by a panic recovered in a
	// pool worker (after retry/resume budgets were exhausted). Matched with
	// errors.Is on a failed job's error.
	ErrWorkerPanic = rerr.ErrWorkerPanic
)
