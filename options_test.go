package rendelim_test

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"rendelim"
)

// TestOptionsEquivalence: the functional-options API and the deprecated
// explicit-Config API must produce identical results for the same settings.
func TestOptionsEquivalence(t *testing.T) {
	tr, err := rendelim.Build("ccs", tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []rendelim.Technique{rendelim.Baseline, rendelim.RE, rendelim.TE, rendelim.Memo} {
		opt, err := rendelim.Run(tr, rendelim.WithTechnique(tech))
		if err != nil {
			t.Fatal(err)
		}
		cfg := rendelim.DefaultConfig()
		cfg.Technique = tech
		//lint:ignore SA1019 exercising the deprecated compatibility shim on purpose
		old, err := rendelim.RunConfig(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(opt, old) {
			t.Errorf("%s: options API and Config API disagree:\n opt %+v\n cfg %+v", tech, opt.Total, old.Total)
		}
	}
}

// TestOptionsCompose: options apply in order on top of DefaultConfig, and
// WithConfig replaces the base while later options still apply.
func TestOptionsCompose(t *testing.T) {
	tr, err := rendelim.Build("ccs", tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := rendelim.DefaultConfig()
	cfg.Technique = rendelim.TE // overridden by the option after WithConfig
	res, err := rendelim.Run(tr, rendelim.WithConfig(cfg), rendelim.WithTechnique(rendelim.RE))
	if err != nil {
		t.Fatal(err)
	}
	if res.Technique != rendelim.RE {
		t.Errorf("later WithTechnique did not override WithConfig: got %s", res.Technique)
	}
}

// TestWithTileWorkersIdenticalResults: the worker count is host parallelism
// only and must never change results, via the public API too.
func TestWithTileWorkersIdenticalResults(t *testing.T) {
	tr, err := rendelim.Build("abi", tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	serial, err := rendelim.Run(tr, rendelim.WithTechnique(rendelim.RE))
	if err != nil {
		t.Fatal(err)
	}
	par, err := rendelim.Run(tr, rendelim.WithTechnique(rendelim.RE), rendelim.WithTileWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("WithTileWorkers(8) changed results:\n serial %+v\n par    %+v", serial.Total, par.Total)
	}
}

// TestRunContextCancellation: a cancelled context stops the run at the next
// frame boundary and surfaces ctx.Err alongside the partial result.
func TestRunContextCancellation(t *testing.T) {
	tr, err := rendelim.Build("ccs", tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := rendelim.RunContext(ctx, tr, rendelim.WithTechnique(rendelim.Baseline))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Frames) != 0 {
		t.Errorf("pre-cancelled run simulated %d frames", len(res.Frames))
	}

	full, err := rendelim.RunContext(context.Background(), tr, rendelim.WithTechnique(rendelim.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Frames) != tinyParams().Frames {
		t.Errorf("uncancelled run simulated %d frames, want %d", len(full.Frames), tinyParams().Frames)
	}
}

// TestSentinelErrors: the exported sentinels match with errors.Is, so
// callers never string-match.
func TestSentinelErrors(t *testing.T) {
	if _, err := rendelim.Build("no-such-game", rendelim.DefaultParams()); !errors.Is(err, rendelim.ErrUnknownBenchmark) {
		t.Errorf("Build: err = %v, want ErrUnknownBenchmark", err)
	}

	if _, err := rendelim.DecodeTrace(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, rendelim.ErrBadTrace) {
		t.Errorf("DecodeTrace: err = %v, want ErrBadTrace", err)
	}

	tr, err := rendelim.Build("ccs", tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	bad := rendelim.DefaultConfig()
	bad.MemoLUTEntries = -1
	if _, err := rendelim.NewSimulator(tr, rendelim.WithConfig(bad)); !errors.Is(err, rendelim.ErrBadConfig) {
		t.Errorf("NewSimulator: err = %v, want ErrBadConfig", err)
	}
	//lint:ignore SA1019 the deprecated shim must keep returning typed errors
	if _, err := rendelim.RunConfig(tr, bad); !errors.Is(err, rendelim.ErrBadConfig) {
		t.Errorf("RunConfig: err = %v, want ErrBadConfig", err)
	}
}

// TestWithTracerOption: WithTracer records a timeline without changing
// results.
func TestWithTracerOption(t *testing.T) {
	tr, err := rendelim.Build("ccs", tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	tracer := rendelim.NewTracer()
	traced, err := rendelim.Run(tr, rendelim.WithTechnique(rendelim.RE), rendelim.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	if tracer.Len() == 0 {
		t.Error("WithTracer recorded no events")
	}
	plain, err := rendelim.Run(tr, rendelim.WithTechnique(rendelim.RE))
	if err != nil {
		t.Fatal(err)
	}
	if traced.Total != plain.Total {
		t.Error("tracing changed results")
	}
}
