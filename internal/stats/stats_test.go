package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig X", "base", "re")
	tb.Add("ccs", 1.0, 0.25)
	tb.Add("longlabel", 1.0, 0.5)
	out := tb.String()
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "ccs") {
		t.Fatalf("render missing parts:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + underline + header + 2 rows
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "0.250") {
		t.Fatalf("decimals wrong: %q", lines[3])
	}
}

func TestAddAverage(t *testing.T) {
	tb := NewTable("t", "a")
	tb.Add("x", 1)
	tb.Add("y", 3)
	tb.AddAverage()
	last := tb.Rows[len(tb.Rows)-1]
	if last.Label != "AVG" || last.Values[0] != 2 {
		t.Fatalf("avg row = %+v", last)
	}
	empty := NewTable("e", "a")
	empty.AddAverage()
	if len(empty.Rows) != 0 {
		t.Fatal("average of empty table should be a no-op")
	}
}

func TestAddAverageRaggedRows(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add("x", 2, 4)
	tb.Add("y", 4)
	tb.AddAverage()
	avg := tb.Rows[2].Values
	if avg[0] != 3 || avg[1] != 4 {
		t.Fatalf("ragged avg = %v", avg)
	}
}

func TestNaNRendersDash(t *testing.T) {
	tb := NewTable("t", "a")
	tb.Add("x", math.NaN())
	if !strings.Contains(tb.String(), "-") {
		t.Fatal("NaN should render as dash")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add("x", 1.5, math.NaN())
	tb.Add("y", 2)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "label,a,b\nx,1.5,\ny,2,\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestMeanGeoMeanRatio(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Fatal("empty aggregates should be 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %v", g)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("non-positive geomean should be 0")
	}
	if Ratio(6, 3) != 2 || !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("ratio wrong")
	}
}
