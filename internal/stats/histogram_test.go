package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 5, 10)
	for _, v := range []float64{0.5, 1, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 111.5 {
		t.Errorf("Sum = %g, want 111.5", got)
	}
	// le=1 counts 0.5 and 1 (bounds are inclusive); le=5 adds 3; le=10 adds 7.
	wantCum := []uint64{2, 3, 4}
	for i, want := range wantCum {
		if got := h.Cumulative(i); got != want {
			t.Errorf("Cumulative(%d) = %d, want %d", i, got, want)
		}
	}
	if got := h.Cumulative(3); got != 5 {
		t.Errorf("+Inf bucket = %d, want 5", got)
	}
}

func TestHistogramSnapshotConsistency(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	s := h.Snapshot()
	if s.Count != 3 || s.Sum != 11 {
		t.Fatalf("snapshot count/sum = %d/%g", s.Count, s.Sum)
	}
	if want := []uint64{1, 2, 2}; len(s.Counts) != len(want) {
		t.Fatalf("snapshot counts %v", s.Counts)
	} else {
		for i := range want {
			if s.Counts[i] != want[i] {
				t.Errorf("snapshot Counts[%d] = %d, want %d", i, s.Counts[i], want[i])
			}
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0.1, 0.2, 0.4, 0.8)
	// 100 observations uniformly in the (0.1, 0.2] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.15)
	}
	// The interpolated median of a single fully-populated bucket is its
	// midpoint.
	if got := h.Quantile(0.5); math.Abs(got-0.15) > 1e-9 {
		t.Errorf("Quantile(0.5) = %g, want 0.15", got)
	}
	if got := h.Quantile(1); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("Quantile(1) = %g, want 0.2", got)
	}
	// Values beyond the last bound clamp to it.
	h2 := NewHistogram(1, 2)
	h2.Observe(50)
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflow Quantile = %g, want clamp to 2", got)
	}
	var empty Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}
}

// TestHistogramConcurrentObserve exercises the mutex under -race: many
// goroutines observing while readers snapshot concurrently. The final count
// must equal the number of observations (no lost updates).
func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1, 1, 10)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(g*perG+i) / float64(goroutines*perG) * 20)
				if i%64 == 0 {
					_ = h.Snapshot()
					_ = h.Quantile(0.95)
					_ = h.Cumulative(2)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d (lost updates)", got, goroutines*perG)
	}
	s := h.Snapshot()
	if s.Counts[len(s.Counts)-1] > s.Count {
		t.Fatalf("cumulative counts exceed total: %v > %d", s.Counts, s.Count)
	}
}

func TestHistogramWritePrometheus(t *testing.T) {
	h := NewHistogram(1, 5)
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)

	var plain strings.Builder
	h.WritePrometheus(&plain, "m", "")
	for _, want := range []string{
		`m_bucket{le="1"} 1`, `m_bucket{le="5"} 2`, `m_bucket{le="+Inf"} 3`,
		"m_sum 103.5", "m_count 3",
	} {
		if !strings.Contains(plain.String(), want) {
			t.Errorf("plain output missing %q:\n%s", want, plain.String())
		}
	}

	var labeled strings.Builder
	h.WritePrometheus(&labeled, "m", `stage="queue"`)
	for _, want := range []string{
		`m_bucket{stage="queue",le="1"} 1`, `m_bucket{stage="queue",le="+Inf"} 3`,
		`m_sum{stage="queue"} 103.5`, `m_count{stage="queue"} 3`,
	} {
		if !strings.Contains(labeled.String(), want) {
			t.Errorf("labeled output missing %q:\n%s", want, labeled.String())
		}
	}
}
