// Package stats renders the experiment tables the reproduction harness
// prints: labeled numeric rows with aligned plain-text output, plus the
// small aggregation helpers (mean, geometric mean, normalization) the
// paper's figures are built from.
package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Table is a titled grid of labeled rows.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
}

// Row is one labeled series.
type Row struct {
	Label  string
	Values []float64
}

// NewTable builds a table with the given column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row.
func (t *Table) Add(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// AddAverage appends a row labeled AVG holding the arithmetic mean of each
// column over the existing rows.
func (t *Table) AddAverage() {
	if len(t.Rows) == 0 {
		return
	}
	n := len(t.Rows)
	width := 0
	for _, r := range t.Rows {
		if len(r.Values) > width {
			width = len(r.Values)
		}
	}
	avg := make([]float64, width)
	counts := make([]int, width)
	for _, r := range t.Rows {
		for i, v := range r.Values {
			avg[i] += v
			counts[i]++
		}
	}
	for i := range avg {
		if counts[i] > 0 {
			avg[i] /= float64(counts[i])
		}
	}
	_ = n
	t.Rows = append(t.Rows, Row{Label: "AVG", Values: avg})
}

// Fprint renders the table with the given number of decimals.
func (t *Table) Fprint(w io.Writer, decimals int) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("-", len(t.Title)))
	}
	labelW := 5
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		cells[ri] = make([]string, len(r.Values))
		for ci, v := range r.Values {
			cells[ri][ci] = formatValue(v, decimals)
		}
	}
	for ci, c := range t.Columns {
		colW[ci] = len(c)
		for ri := range cells {
			if ci < len(cells[ri]) && len(cells[ri][ci]) > colW[ci] {
				colW[ci] = len(cells[ri][ci])
			}
		}
	}
	fmt.Fprintf(w, "%-*s", labelW, "")
	for ci, c := range t.Columns {
		fmt.Fprintf(w, "  %*s", colW[ci], c)
	}
	fmt.Fprintln(w)
	for ri, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", labelW, r.Label)
		for ci := range t.Columns {
			cell := ""
			if ci < len(cells[ri]) {
				cell = cells[ri][ci]
			}
			fmt.Fprintf(w, "  %*s", colW[ci], cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func formatValue(v float64, decimals int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.*f", decimals, v)
}

// String renders the table with 3 decimals.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb, 3)
	return sb.String()
}

// WriteCSV emits the table as RFC-4180 CSV with a leading label column, for
// plotting outside the harness.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{"label"}, t.Columns...)); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 1, len(t.Columns)+1)
		rec[0] = r.Label
		for i := range t.Columns {
			if i < len(r.Values) && !math.IsNaN(r.Values[i]) {
				rec = append(rec, strconv.FormatFloat(r.Values[i], 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// GeoMean returns the geometric mean of positive values (0 if any value is
// non-positive or the input is empty).
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// Ratio returns a/b, or NaN when b is zero (rendered as "-").
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
