package stats

import "sort"

// Histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// each bucket counts observations less than or equal to its upper bound, and
// an implicit +Inf bucket counts everything. It is not safe for concurrent
// use; wrap it in a mutex when observing from multiple goroutines.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []uint64  // per-bucket (non-cumulative) counts; len = len(bounds)+1
	sum    float64
	total  uint64
}

// NewHistogram builds a histogram over the given upper bounds (sorted
// ascending; an +Inf overflow bucket is implicit).
func NewHistogram(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// Bounds returns the finite upper bounds.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Cumulative returns the cumulative count of observations <= the i-th bound;
// i == len(Bounds()) yields the +Inf bucket (== Count()).
func (h *Histogram) Cumulative(i int) uint64 {
	var c uint64
	for j := 0; j <= i && j < len(h.counts); j++ {
		c += h.counts[j]
	}
	return c
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }
