package stats

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// each bucket counts observations less than or equal to its upper bound, and
// an implicit +Inf bucket counts everything. It is safe for concurrent use —
// it is shared across HTTP handler goroutines, pool workers, and the
// forwarding client, so Observe and the readers are mutex-guarded.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []uint64  // per-bucket (non-cumulative) counts; len = len(bounds)+1
	sum    float64
	total  uint64
}

// NewHistogram builds a histogram over the given upper bounds (sorted
// ascending; an +Inf overflow bucket is implicit).
func NewHistogram(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Bounds returns the finite upper bounds. The slice is immutable after
// NewHistogram, so it is returned without copying.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Cumulative returns the cumulative count of observations <= the i-th bound;
// i == len(Bounds()) yields the +Inf bucket (== Count()).
func (h *Histogram) Cumulative(i int) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	var c uint64
	for j := 0; j <= i && j < len(h.counts); j++ {
		c += h.counts[j]
	}
	return c
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// HistSnapshot is a consistent point-in-time copy of a histogram, safe to
// read without further locking. Counts are cumulative per bound, Prometheus
// style; the implicit +Inf bucket equals Count.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64 // cumulative; len == len(Bounds)
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram state under one lock acquisition, so the
// buckets, sum and count are mutually consistent even while writers race.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)),
		Sum:    h.sum,
		Count:  h.total,
	}
	var c uint64
	for i := range h.bounds {
		c += h.counts[i]
		s.Counts[i] = c
	}
	return s
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear interpolation
// within the bucket containing it — the same estimator PromQL's
// histogram_quantile applies. Observations in the +Inf bucket clamp to the
// highest finite bound. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Quantile implements the PromQL histogram_quantile estimator over a
// snapshot (or any cumulative bucket set, e.g. one scraped off /metrics).
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, c := range s.Counts {
		if float64(c) >= rank {
			lower, lowerCount := 0.0, uint64(0)
			if i > 0 {
				lower, lowerCount = s.Bounds[i-1], s.Counts[i-1]
			}
			width := s.Bounds[i] - lower
			inBucket := float64(c - lowerCount)
			if inBucket == 0 {
				return s.Bounds[i]
			}
			return lower + width*(rank-float64(lowerCount))/inBucket
		}
	}
	// Quantile falls in the +Inf bucket: clamp to the highest finite bound.
	return s.Bounds[len(s.Bounds)-1]
}

// WritePrometheus renders the histogram's child series (_bucket/_sum/_count)
// under name. labels, when non-empty, is a rendered label body without
// braces (`stage="queue"`) merged before the le label; the caller emits the
// family's HELP/TYPE header once.
func (h *Histogram) WritePrometheus(w io.Writer, name, labels string) {
	s := h.Snapshot()
	sep := ""
	if labels != "" {
		sep = ","
	}
	for i, b := range s.Bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, b, s.Counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, s.Sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	}
}
