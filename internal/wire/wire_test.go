package wire

import (
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU8(b, 0xab)
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendU16(b, 0xbeef)
	b = AppendU32(b, 0xdeadbeef)
	b = AppendU64(b, 1<<63|42)
	b = AppendI64(b, -7)
	b = AppendF32(b, 3.25)
	b = AppendBytes(b, []byte("blob"))
	b = AppendString(b, "name")
	b = AppendU32s(b, []uint32{1, 2, 3})
	b = AppendBools(b, []bool{true, false, true})

	r := NewReader(b)
	if v := r.U8(); v != 0xab {
		t.Errorf("U8 = %#x", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := r.U16(); v != 0xbeef {
		t.Errorf("U16 = %#x", v)
	}
	if v := r.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 1<<63|42 {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.I64(); v != -7 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.F32(); v != 3.25 {
		t.Errorf("F32 = %g", v)
	}
	if v := r.Bytes(); string(v) != "blob" {
		t.Errorf("Bytes = %q", v)
	}
	if v := r.String(); v != "name" {
		t.Errorf("String = %q", v)
	}
	if v := r.U32s(); len(v) != 3 || v[0] != 1 || v[2] != 3 {
		t.Errorf("U32s = %v", v)
	}
	if v := r.Bools(); len(v) != 3 || !v[0] || v[1] {
		t.Errorf("Bools = %v", v)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Len() != 0 {
		t.Errorf("leftover %d bytes", r.Len())
	}
}

func TestTruncation(t *testing.T) {
	b := AppendU64(nil, 99)
	r := NewReader(b[:5])
	if v := r.U64(); v != 0 {
		t.Errorf("truncated U64 = %d, want 0", v)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("Err = %v, want ErrTruncated", r.Err())
	}
	// The error latches: later reads stay zero with the same error.
	if v := r.U32(); v != 0 {
		t.Errorf("post-error U32 = %d", v)
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("latched Err = %v", r.Err())
	}
}

func TestHostileLength(t *testing.T) {
	// A length field claiming 1 GiB of uint32s with 4 bytes of payload must
	// fail with ErrCorrupt, not allocate.
	b := AppendU32(nil, 1<<28)
	b = AppendU32(b, 7)
	r := NewReader(b)
	if v := r.U32s(); v != nil {
		t.Errorf("hostile U32s = %v", v)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
}
