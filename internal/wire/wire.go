// Package wire provides the length-checked little-endian binary primitives
// the durability layer is built from: checkpoint snapshots
// (internal/gpusim), their per-subsystem sub-codecs (internal/dram,
// internal/cache) and the on-disk store framing (internal/store) all encode
// through the same Append* helpers and decode through the same error-latching
// Reader, so torn or corrupted bytes surface as a typed error instead of a
// panic or a multi-gigabyte allocation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated is wrapped by every Reader failure caused by running out of
// bytes — the signature of a torn write.
var ErrTruncated = errors.New("wire: truncated input")

// ErrCorrupt is wrapped by Reader failures caused by implausible values
// (e.g. a slice length exceeding the remaining input).
var ErrCorrupt = errors.New("wire: corrupt input")

// AppendU8 appends one byte.
func AppendU8(b []byte, v uint8) []byte { return append(b, v) }

// AppendBool appends a bool as one byte.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendU16 appends a little-endian uint16.
func AppendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }

// AppendU32 appends a little-endian uint32.
func AppendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// AppendU64 appends a little-endian uint64.
func AppendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// AppendI64 appends a little-endian int64.
func AppendI64(b []byte, v int64) []byte { return AppendU64(b, uint64(v)) }

// AppendF32 appends a float32 by bit pattern.
func AppendF32(b []byte, v float32) []byte { return AppendU32(b, math.Float32bits(v)) }

// AppendBytes appends a u32 length prefix followed by the bytes.
func AppendBytes(b, v []byte) []byte {
	b = AppendU32(b, uint32(len(v)))
	return append(b, v...)
}

// AppendString appends a u32 length prefix followed by the string bytes.
func AppendString(b []byte, v string) []byte {
	b = AppendU32(b, uint32(len(v)))
	return append(b, v...)
}

// AppendU32s appends a u32 length prefix followed by the values.
func AppendU32s(b []byte, v []uint32) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendU32(b, x)
	}
	return b
}

// AppendBools appends a u32 length prefix followed by one byte per value.
func AppendBools(b []byte, v []bool) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendBool(b, x)
	}
	return b
}

// Reader consumes a byte slice with latched errors: after the first failure
// every subsequent read returns the zero value, and Err reports what went
// wrong, so decode paths read straight through and check once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first error the reader hit, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.b) - r.off }

// fail latches the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// take returns the next n bytes, or nil after latching an error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.b)))
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if v := r.take(1); v != nil {
		return v[0]
	}
	return 0
}

// Bool reads one byte as a bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if v := r.take(2); v != nil {
		return binary.LittleEndian.Uint16(v)
	}
	return 0
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if v := r.take(4); v != nil {
		return binary.LittleEndian.Uint32(v)
	}
	return 0
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if v := r.take(8); v != nil {
		return binary.LittleEndian.Uint64(v)
	}
	return 0
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F32 reads a float32 by bit pattern.
func (r *Reader) F32() float32 { return math.Float32frombits(r.U32()) }

// sliceLen reads a u32 length prefix and validates it against the remaining
// input, assuming each element occupies at least elemSize bytes. This is the
// guard that keeps a corrupted length field from allocating unbounded
// memory.
func (r *Reader) sliceLen(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > r.Len() {
		r.fail(fmt.Errorf("%w: slice length %d exceeds %d remaining bytes", ErrCorrupt, n, r.Len()))
		return 0
	}
	return n
}

// Bytes reads a u32-length-prefixed byte slice (copied out of the input).
func (r *Reader) Bytes() []byte {
	n := r.sliceLen(1)
	v := r.take(n)
	if v == nil {
		return nil
	}
	return append([]byte(nil), v...)
}

// String reads a u32-length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen(1)
	v := r.take(n)
	return string(v)
}

// U32s reads a u32-length-prefixed []uint32.
func (r *Reader) U32s() []uint32 {
	n := r.sliceLen(4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = r.U32()
	}
	return out
}

// Bools reads a u32-length-prefixed []bool.
func (r *Reader) Bools() []bool {
	n := r.sliceLen(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Bool()
	}
	return out
}
