// Package rerr holds the sentinel errors of the public rendelim API. They
// live in an internal leaf package (imported by both the internal
// implementation packages that produce them and the root package that
// re-exports them) because the root package cannot be imported from inside
// internal/ without a cycle.
package rerr

import "errors"

// Sentinels, re-exported by the root package. Match with errors.Is; the
// concrete messages wrapping them carry the detail.
var (
	// ErrUnknownBenchmark reports a benchmark alias outside the Table II
	// suite and the extras.
	ErrUnknownBenchmark = errors.New("unknown benchmark")

	// ErrBadTrace reports a trace that failed to decode or validate.
	ErrBadTrace = errors.New("bad trace")

	// ErrBadConfig reports a simulation configuration that failed
	// validation.
	ErrBadConfig = errors.New("bad config")

	// ErrWorkerPanic reports a panic recovered inside a job-pool worker.
	// The jobs package treats it as transient: the panicking attempt is
	// retried (resuming from the job's last checkpoint when one exists).
	ErrWorkerPanic = errors.New("worker panic")
)
