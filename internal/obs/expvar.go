package obs

import (
	"expvar"
	"runtime"
	"runtime/debug"
	"sync"
)

var buildInfoOnce sync.Once

// PublishBuildInfo exposes the binary's build identity under the expvar key
// "rendelim_build_info" (served at /debug/vars): Go runtime version, module
// path and version, and VCS revision when stamped. Idempotent — expvar
// forbids re-publishing a name, so repeated calls (e.g. from tests spinning
// up several servers) are no-ops after the first.
func PublishBuildInfo() {
	buildInfoOnce.Do(func() {
		expvar.Publish("rendelim_build_info", expvar.Func(func() any {
			info := map[string]string{
				"go_version": runtime.Version(),
				"goos":       runtime.GOOS,
				"goarch":     runtime.GOARCH,
			}
			if bi, ok := debug.ReadBuildInfo(); ok {
				info["module"] = bi.Main.Path
				if bi.Main.Version != "" {
					info["version"] = bi.Main.Version
				}
				for _, s := range bi.Settings {
					switch s.Key {
					case "vcs.revision", "vcs.time", "vcs.modified":
						info[s.Key] = s.Value
					}
				}
			}
			return info
		}))
	})
}
