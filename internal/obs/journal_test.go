package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestJournalRecordAndWrap(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Record("job.accepted", fmt.Sprintf("job %d", i), "job", fmt.Sprintf("j-%d", i))
	}
	if got := j.Len(); got != 4 {
		t.Fatalf("Len = %d, want ring capacity 4", got)
	}
	if got := j.Seq(); got != 10 {
		t.Fatalf("Seq = %d, want 10", got)
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d", len(evs))
	}
	// Oldest first, and only the last four survive the wrap.
	for i, ev := range evs {
		wantSeq := uint64(7 + i)
		if ev.Seq != wantSeq {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, wantSeq)
		}
	}
	if evs[3].Attrs["job"] != "j-9" {
		t.Errorf("newest event attrs = %v", evs[3].Attrs)
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Record("x", "y")
	if j.Events() != nil || j.Len() != 0 || j.Seq() != 0 {
		t.Error("nil journal not inert")
	}
}

func TestJournalJSONShape(t *testing.T) {
	j := NewJournal(8)
	j.Record("peer.down", "peer stopped answering", "peer", "10.0.0.2:8080")
	raw, err := json.Marshal(j.Events())
	if err != nil {
		t.Fatal(err)
	}
	var back []map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0]["kind"] != "peer.down" {
		t.Fatalf("journal JSON %s", raw)
	}
}

func TestJournalConcurrent(t *testing.T) {
	j := NewJournal(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Record("k", "m")
				if i%32 == 0 {
					_ = j.Events()
				}
			}
		}()
	}
	wg.Wait()
	if got := j.Seq(); got != 4000 {
		t.Fatalf("Seq = %d, want 4000", got)
	}
	if got := j.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
}
