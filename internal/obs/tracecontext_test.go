package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tc := NewTraceContext()
	if !tc.Valid() {
		t.Fatal("fresh trace context invalid")
	}
	hdr := tc.Traceparent()
	if !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("traceparent %q lacks version/flags framing", hdr)
	}
	got, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatal(err)
	}
	if got != tc {
		t.Fatalf("round trip: got %+v, want %+v", got, tc)
	}
}

func TestTraceContextChild(t *testing.T) {
	tc := NewTraceContext()
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Error("child changed the trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Error("child kept the parent span id")
	}
	if !child.Valid() {
		t.Error("child invalid")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-abc",
		"00-" + strings.Repeat("0", 32) + "-1111111111111111-01", // zero trace id
		"00-" + strings.Repeat("1", 32) + "-0000000000000000-01", // zero span id
		"ff-" + strings.Repeat("1", 32) + "-1111111111111111-01", // forbidden version
		"zz-" + strings.Repeat("1", 32) + "-1111111111111111-01", // non-hex version
		"00-shorttrace-1111111111111111-01",
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	// Future versions with extra fields are accepted (forward compatibility).
	future := "01-" + strings.Repeat("2", 32) + "-3333333333333333-01-extrafield"
	if _, err := ParseTraceparent(future); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
}

func TestTraceContextInContext(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("empty context reported a trace")
	}
	tc := NewTraceContext()
	ctx := ContextWithTrace(context.Background(), tc)
	got, ok := TraceFromContext(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFromContext = %+v, %v", got, ok)
	}
}

func TestTracerProcessTaggingAndMerge(t *testing.T) {
	a := NewTracer()
	a.SetProcess(2, "node-a")
	ta := a.Thread("http")
	ta.BeginArgStr("POST /jobs", "trace", "deadbeef")
	ta.End()

	b := NewTracer()
	b.SetProcess(3, "node-b")
	tb := b.Thread("http")
	tb.Begin("POST /jobs")
	tb.End()

	merged := MergeTraces(a.TraceFileOf(), b.TraceFileOf())
	raw, err := json.Marshal(merged)
	if err != nil {
		t.Fatalf("merged trace does not serialize: %v", err)
	}
	var back TraceFile
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}

	pids := map[int]bool{}
	var procNames []string
	var sawArg bool
	for _, e := range back.TraceEvents {
		pids[e.PID] = true
		if e.Name == "process_name" {
			procNames = append(procNames, e.Args["name"].(string))
		}
		if e.Args != nil && e.Args["trace"] == "deadbeef" {
			sawArg = true
		}
	}
	if !pids[2] || !pids[3] {
		t.Errorf("merged trace pids %v, want both 2 and 3", pids)
	}
	if len(procNames) != 2 {
		t.Errorf("process_name metadata %v, want one per node", procNames)
	}
	if !sawArg {
		t.Error("BeginArgStr argument lost in serialization")
	}
}

func TestSpanPoolConcurrentTracks(t *testing.T) {
	tr := NewTracer()
	p := NewSpanPool(tr, "hop")
	t1, t2 := p.Get(), p.Get()
	if t1 == nil || t2 == nil || t1 == t2 {
		t.Fatalf("pool handed out %v and %v, want two distinct threads", t1, t2)
	}
	p.Put(t1)
	if got := p.Get(); got != t1 {
		t.Error("pool did not reuse the returned thread")
	}
	// A nil tracer yields nil threads whose methods are no-ops.
	var nilPool *SpanPool
	th := nilPool.Get()
	th.Begin("x")
	th.End()
	nilPool.Put(th)
}
