package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceparentHeader is the W3C Trace Context header carrying the
// trace-id/span-id pair across HTTP hops (lowercase per the spec).
const TraceparentHeader = "traceparent"

// TraceContext identifies one request within one distributed trace, in the
// W3C Trace Context model: TraceID names the whole end-to-end request no
// matter how many nodes it crosses, SpanID names the current hop. The zero
// value is invalid (the spec forbids all-zero ids).
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// NewTraceContext generates a fresh trace with a random trace and span id.
func NewTraceContext() TraceContext {
	var tc TraceContext
	mustRand(tc.TraceID[:])
	mustRand(tc.SpanID[:])
	return tc
}

// Child derives the next hop: same trace, new span id. Use it when
// forwarding a request so each hop is distinguishable inside one trace.
func (tc TraceContext) Child() TraceContext {
	child := TraceContext{TraceID: tc.TraceID}
	mustRand(child.SpanID[:])
	return child
}

// Valid reports whether both ids are non-zero, as the spec requires.
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDString renders the 32-hex-char trace id.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString renders the 16-hex-char span id.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// Traceparent renders the header value: version 00, sampled flag set.
func (tc TraceContext) Traceparent() string {
	return "00-" + tc.TraceIDString() + "-" + tc.SpanIDString() + "-01"
}

// ParseTraceparent parses a traceparent header value. Unknown future
// versions are accepted as long as the first four fields parse (per the
// spec's forward-compatibility rule); version "ff" and all-zero ids are
// rejected.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return tc, fmt.Errorf("obs: traceparent %q: want version-traceid-spanid-flags", s)
	}
	version, traceID, spanID := parts[0], parts[1], parts[2]
	if len(version) != 2 || !isHex(version) {
		return tc, fmt.Errorf("obs: traceparent %q: bad version %q", s, version)
	}
	if strings.EqualFold(version, "ff") {
		return tc, fmt.Errorf("obs: traceparent %q: forbidden version ff", s)
	}
	if len(traceID) != 32 || len(spanID) != 16 {
		return tc, fmt.Errorf("obs: traceparent %q: want 32-hex trace id and 16-hex span id", s)
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(traceID)); err != nil {
		return tc, fmt.Errorf("obs: traceparent %q: trace id: %v", s, err)
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(spanID)); err != nil {
		return tc, fmt.Errorf("obs: traceparent %q: span id: %v", s, err)
	}
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("obs: traceparent %q: all-zero id", s)
	}
	return tc, nil
}

func isHex(s string) bool {
	_, err := hex.DecodeString(s)
	return err == nil
}

// mustRand fills b from crypto/rand; the reader failing means the platform
// is broken beyond what graceful degradation could help.
func mustRand(b []byte) {
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("obs: crypto/rand failed: %v", err))
	}
}

// traceCtxKey keys a TraceContext inside a context.Context.
type traceCtxKey struct{}

// ContextWithTrace attaches tc to ctx; handlers store the request's trace
// context here so downstream layers (the cluster forwarding client, loggers)
// can pick it up without threading it explicitly.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the trace context attached by ContextWithTrace.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
