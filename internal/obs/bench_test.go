package obs

import "testing"

// disabledSink defeats dead-code elimination without allocating.
var disabledSink int

// tracerDisabledOps is the exact call pattern the simulator's hot path
// issues per tile when tracing is off: the Thread handle is nil and every
// method must return without touching the heap.
func tracerDisabledOps(th *Thread) {
	th.BeginArg("frame", "frame", 1)
	th.Begin("re-check")
	th.Instant("tile-eliminated", "tile", 7)
	th.End()
	th.Counter("tiles-skipped", "skipped", 3)
	th.End()
	disabledSink += th.Depth()
}

// BenchmarkTracerDisabled is the CI smoke benchmark: the disabled tracer
// path must report 0 allocs/op (TestTracerDisabledZeroAlloc enforces it).
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	th := tr.Thread("sim")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracerDisabledOps(th)
	}
}

// TestTracerDisabledZeroAlloc is the guard behind the benchmark: a nil
// tracer must cost zero heap allocations on the per-tile hot path.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	var tr *Tracer
	th := tr.Thread("sim")
	if allocs := testing.AllocsPerRun(1000, func() { tracerDisabledOps(th) }); allocs != 0 {
		t.Fatalf("disabled tracer path allocates: %v allocs/op, want 0", allocs)
	}
}
