package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
		err  bool
	}{
		{"debug", slog.LevelDebug, false},
		{"info", slog.LevelInfo, false},
		{"", slog.LevelInfo, false},
		{"WARN", slog.LevelWarn, false},
		{"warning", slog.LevelWarn, false},
		{"error", slog.LevelError, false},
		{" Error ", slog.LevelError, false},
		{"verbose", 0, true},
	}
	for _, tc := range cases {
		got, err := ParseLevel(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseLevel(%q) err = %v, want err=%v", tc.in, err, tc.err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("hello", "tile", 42)
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("JSON handler emitted non-JSON: %s", buf.Bytes())
	}
	if m["msg"] != "hello" || m["tile"] != float64(42) || m["level"] != "DEBUG" {
		t.Errorf("unexpected record %v", m)
	}
}

func TestNewLoggerTextLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	out := buf.String()
	if strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Errorf("level filter broken:\n%s", out)
	}
}

func TestNewLoggerRejectsUnknown(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "nope", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "info", "yaml"); err == nil {
		t.Error("bad format accepted")
	}
}

func TestSetupEnvFallback(t *testing.T) {
	t.Setenv(EnvLogLevel, "error")
	t.Setenv(EnvLogFormat, "json")
	prev := slog.Default()
	defer slog.SetDefault(prev)
	l, err := Setup("", "")
	if err != nil {
		t.Fatal(err)
	}
	if !l.Enabled(context.Background(), slog.LevelError) || l.Enabled(context.Background(), slog.LevelWarn) {
		t.Error("env level not honored")
	}
	if slog.Default() != l {
		t.Error("Setup did not install the default logger")
	}
}
