package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// loadTraceFile reads and unmarshals a Chrome trace-event file.
func loadTraceFile(t *testing.T, path string) TraceFile {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("%s is not valid trace JSON: %v", path, err)
	}
	return tf
}

// TestTracerChromeJSON emits a nested span structure with instant and
// counter events, round-trips it through the JSON serializer, and checks
// the stream a Chrome trace viewer would see: balanced B/E nesting per
// thread, monotonic non-decreasing timestamps, and intact arguments.
func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer()
	th := tr.Thread("sim")

	th.BeginArg("frame", "frame", 0)
	th.Begin("geometry")
	th.Begin("vertex-shading")
	th.End()
	th.End()
	th.Begin("raster")
	th.Instant("tile-eliminated", "tile", 17)
	th.End()
	th.Counter("tiles-skipped", "skipped", 1)
	th.End() // frame
	if d := th.Depth(); d != 0 {
		t.Fatalf("span stack not drained: depth %d", d)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}

	var (
		lastTS                          = -1.0
		stack                           []string
		sawMeta, sawInstant, sawCounter bool
	)
	for i, e := range tf.TraceEvents {
		if e.Ph != "M" {
			if e.TS < lastTS {
				t.Fatalf("event %d (%s %s): timestamp %v < previous %v", i, e.Ph, e.Name, e.TS, lastTS)
			}
			lastTS = e.TS
		}
		switch e.Ph {
		case "M":
			sawMeta = true
			if e.Name != "thread_name" || e.Args["name"] != "sim" {
				t.Errorf("bad metadata event %+v", e)
			}
		case "B":
			stack = append(stack, e.Name)
		case "E":
			if len(stack) == 0 {
				t.Fatalf("event %d: E %q with no open span", i, e.Name)
			}
			if top := stack[len(stack)-1]; top != e.Name {
				t.Fatalf("event %d: E %q does not close innermost span %q", i, e.Name, top)
			}
			stack = stack[:len(stack)-1]
		case "i":
			sawInstant = true
			if e.Scope != "t" {
				t.Errorf("instant event missing thread scope: %+v", e)
			}
			if v, ok := e.Args["tile"].(float64); !ok || v != 17 {
				t.Errorf("instant args = %v, want tile 17", e.Args)
			}
			// The instant must fall inside the raster span.
			if len(stack) == 0 || stack[len(stack)-1] != "raster" {
				t.Errorf("tile-eliminated emitted outside raster span (stack %v)", stack)
			}
		case "C":
			sawCounter = true
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed spans at end of trace: %v", stack)
	}
	if !sawMeta || !sawInstant || !sawCounter {
		t.Fatalf("missing event kinds: meta=%v instant=%v counter=%v", sawMeta, sawInstant, sawCounter)
	}
}

// TestTracerWriteFile exercises the file path used by resim -tracefile.
func TestTracerWriteFile(t *testing.T) {
	tr := NewTracer()
	th := tr.Thread("x")
	th.Begin("frame")
	th.End()
	path := filepath.Join(t.TempDir(), "out.trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	tf := loadTraceFile(t, path)
	if len(tf.TraceEvents) != 3 { // metadata + B + E
		t.Fatalf("got %d events, want 3", len(tf.TraceEvents))
	}
}

// TestTracerConcurrentThreads hammers one sink from several threads; run
// under -race this pins the locking, and the stream must stay time-ordered.
func TestTracerConcurrentThreads(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := tr.Thread("worker")
			for i := 0; i < 100; i++ {
				th.Begin("span")
				th.Instant("tick", "i", int64(i))
				th.End()
			}
		}(g)
	}
	wg.Wait()
	evs := tr.Events()
	last := -1.0
	for i, e := range evs {
		if e.Ph == "M" {
			continue
		}
		if e.TS < last {
			t.Fatalf("event %d out of order: %v < %v", i, e.TS, last)
		}
		last = e.TS
	}
	if tr.Len() != 4+4*300 {
		t.Fatalf("event count %d, want %d", tr.Len(), 4+4*300)
	}
}

// TestTracerUnbalancedEnd must not panic or emit a bogus E.
func TestTracerUnbalancedEnd(t *testing.T) {
	tr := NewTracer()
	th := tr.Thread("x")
	th.End()
	if tr.Len() != 1 { // just the metadata event
		t.Fatalf("unbalanced End emitted an event: %d", tr.Len())
	}
}

// TestNilTracerSafe: the whole API must be callable through nil handles —
// this is the disabled path every production call site relies on.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	th := tr.Thread("ignored")
	if th != nil {
		t.Fatal("nil tracer must yield nil thread")
	}
	th.Begin("a")
	th.BeginArg("b", "k", 1)
	th.Instant("c", "k", 2)
	th.Counter("d", "k", 3)
	th.End()
	if tr.Len() != 0 || th.Depth() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteJSON on nil tracer must error")
	}
}
