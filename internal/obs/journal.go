package obs

import (
	"sync"
	"time"
)

// JournalEvent is one notable service event: a job accepted, eliminated,
// forwarded, shed or panicked; a breaker transition; a peer health flip.
// Attrs carry the event's identifiers (job id, key, peer, trace id) as flat
// strings so the JSON at /debug/events needs no schema per kind.
type JournalEvent struct {
	Seq   uint64            `json:"seq"`
	Time  time.Time         `json:"time"`
	Kind  string            `json:"kind"`
	Msg   string            `json:"msg"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Journal is a fixed-size ring buffer of recent JournalEvents — the
// flight-recorder view of a node: cheap enough to leave always on, bounded
// by construction, and served as JSON at /debug/events. All methods are
// safe for concurrent use and no-ops on a nil receiver, so call sites wire
// it unconditionally.
type Journal struct {
	mu   sync.Mutex
	buf  []JournalEvent // ring storage; len == cap once full
	cap  int
	next int    // write position in buf
	seq  uint64 // monotonically increasing event id; survives wraps
}

// DefaultJournalSize is the ring capacity NewJournal(0) selects.
const DefaultJournalSize = 256

// NewJournal builds a journal holding the last capacity events (0 selects
// DefaultJournalSize).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalSize
	}
	return &Journal{cap: capacity}
}

// Record appends one event. kv lists attribute key/value pairs
// ("job", id, "key", sig); a trailing odd key is dropped.
func (j *Journal) Record(kind, msg string, kv ...string) {
	if j == nil {
		return
	}
	var attrs map[string]string
	if len(kv) >= 2 {
		attrs = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			attrs[kv[i]] = kv[i+1]
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	ev := JournalEvent{Seq: j.seq, Time: time.Now().UTC(), Kind: kind, Msg: msg, Attrs: attrs}
	if len(j.buf) < j.cap {
		j.buf = append(j.buf, ev)
	} else {
		j.buf[j.next] = ev
	}
	j.next = (j.next + 1) % j.cap
}

// Events returns the retained events, oldest first. The slice is a copy.
func (j *Journal) Events() []JournalEvent {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalEvent, 0, len(j.buf))
	if len(j.buf) < j.cap {
		out = append(out, j.buf...)
		return out
	}
	out = append(out, j.buf[j.next:]...)
	out = append(out, j.buf[:j.next]...)
	return out
}

// Len reports how many events are retained (at most the capacity).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.buf)
}

// Seq returns the total number of events ever recorded, including those the
// ring has since overwritten.
func (j *Journal) Seq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}
