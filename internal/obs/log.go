// Package obs is the observability spine of the repo: a process-wide
// structured logger on log/slog, a low-overhead span tracer that emits
// Chrome trace-event JSON (loadable in Perfetto or chrome://tracing), and
// helpers for runtime introspection (expvar build info). Every command and
// service layer logs through here, and the simulator's pipeline stages are
// traced through here — the same per-stage attribution lens the paper's
// evaluation (Figure 15) applies to tiles and traffic.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Environment fallbacks for the -log-level / -log-format flags, so services
// deployed without flag access (containers, CI) can still tune verbosity.
const (
	EnvLogLevel  = "RENDELIM_LOG_LEVEL"
	EnvLogFormat = "RENDELIM_LOG_FORMAT"
)

// ParseLevel maps a level name to its slog.Level. Accepted: debug, info,
// warn, error (case-insensitive).
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds a logger writing to w. format selects the handler:
// "text" (default) or "json". Unknown levels or formats are an error so a
// typo'd flag fails loudly instead of silencing logs.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// Setup resolves level and format (flag value first, environment second),
// builds a stderr logger, and installs it as the process default so every
// package logging through slog.Default picks it up.
func Setup(level, format string) (*slog.Logger, error) {
	if level == "" {
		level = os.Getenv(EnvLogLevel)
	}
	if format == "" {
		format = os.Getenv(EnvLogFormat)
	}
	l, err := NewLogger(os.Stderr, level, format)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(l)
	return l, nil
}
