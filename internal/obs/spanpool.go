package obs

import (
	"fmt"
	"sync"
)

// SpanPool hands out Threads for request-scoped spans emitted from
// concurrent goroutines. A Thread's span stack is single-goroutine, but HTTP
// handlers and forwarded hops run concurrently, so each borrows a dedicated
// thread (its own track in the viewer) and returns it when done; concurrent
// spans land on distinct tracks instead of corrupting one stack. Tracks are
// named "<prefix>-<n>" in creation order. A pool over a nil tracer hands out
// nil Threads, keeping the disabled path free.
type SpanPool struct {
	tracer *Tracer
	prefix string
	mu     sync.Mutex
	free   []*Thread
	n      int
}

// NewSpanPool builds a pool whose tracks are named "<prefix>-<n>".
func NewSpanPool(t *Tracer, prefix string) *SpanPool {
	return &SpanPool{tracer: t, prefix: prefix}
}

// Get borrows a thread; pair with Put once the span is closed.
func (p *SpanPool) Get() *Thread {
	if p == nil || p.tracer == nil {
		return nil // nil Thread: every method is a no-op
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		th := p.free[n-1]
		p.free = p.free[:n-1]
		return th
	}
	p.n++
	return p.tracer.Thread(fmt.Sprintf("%s-%d", p.prefix, p.n))
}

// Put returns a borrowed thread to the pool.
func (p *SpanPool) Put(th *Thread) {
	if p == nil || th == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, th)
	p.mu.Unlock()
}
