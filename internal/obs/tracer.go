package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Tracer collects trace events and serializes them as Chrome trace-event
// JSON, the format Perfetto and chrome://tracing load directly. A Tracer is
// the shared sink for a whole process; concurrent emitters (one simulator
// per worker, say) each obtain a Thread, which carries its own span stack
// and renders as its own track in the viewer.
//
// The disabled path is free: a nil *Tracer yields nil *Threads, and every
// Thread method returns immediately on a nil receiver without allocating —
// the zero-overhead-when-disabled guarantee BenchmarkTracerDisabled pins.
type Tracer struct {
	mu       sync.Mutex
	start    time.Time
	lastTS   int64
	events   []rec
	nextTID  int
	pid      int    // Chrome trace pid stamped on every event; default 1
	procName string // process_name metadata, when set
}

// rec is the compact in-memory form of one event; JSON shaping happens only
// at serialization time.
type rec struct {
	name   string
	ph     byte  // 'B' span begin, 'E' span end, 'i' instant, 'C' counter, 'M' metadata
	ts     int64 // nanoseconds since tracer start
	tid    int
	argKey string
	argInt int64
	argStr string
}

// NewTracer starts a tracer; timestamps are relative to this call.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), nextTID: 1, pid: 1}
}

// SetProcess tags every event with pid and names the process track. In a
// cluster, each node picks a distinct pid (and its address as the name) so
// traces from several nodes merge into one timeline with one labeled track
// group per node. Call before emitting events; nil-safe.
func (t *Tracer) SetProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.pid = pid
	t.procName = name
	t.mu.Unlock()
}

// Thread registers a named track and returns its event emitter. Safe for
// concurrent use; returns nil on a nil tracer so the handle can be stored
// and used unconditionally.
func (t *Tracer) Thread(name string) *Thread {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	tid := t.nextTID
	t.nextTID++
	t.events = append(t.events, rec{name: "thread_name", ph: 'M', tid: tid, argKey: "name", argStr: name})
	t.mu.Unlock()
	return &Thread{t: t, tid: tid}
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// emit appends one event, stamping a monotonic timestamp under the lock so
// the buffer is globally time-ordered.
func (t *Tracer) emit(r rec) {
	t.mu.Lock()
	ts := int64(time.Since(t.start))
	if ts < t.lastTS {
		ts = t.lastTS
	}
	t.lastTS = ts
	r.ts = ts
	t.events = append(t.events, r)
	t.mu.Unlock()
}

// Thread emits events onto one track of the tracer. Each Thread has its own
// Begin/End span stack; a single Thread is not safe for concurrent use (use
// one per goroutine), matching the simulator's one-goroutine execution.
type Thread struct {
	t     *Tracer
	tid   int
	stack []string
}

// Begin opens a span. Spans nest: each End closes the most recent Begin.
func (th *Thread) Begin(name string) {
	if th == nil {
		return
	}
	th.stack = append(th.stack, name)
	th.t.emit(rec{name: name, ph: 'B', tid: th.tid})
}

// BeginArg opens a span carrying one integer argument (a frame or tile id).
func (th *Thread) BeginArg(name, key string, v int64) {
	if th == nil {
		return
	}
	th.stack = append(th.stack, name)
	th.t.emit(rec{name: name, ph: 'B', tid: th.tid, argKey: key, argInt: v})
}

// BeginArgStr opens a span carrying one string argument (a trace id, say).
func (th *Thread) BeginArgStr(name, key, v string) {
	if th == nil {
		return
	}
	th.stack = append(th.stack, name)
	th.t.emit(rec{name: name, ph: 'B', tid: th.tid, argKey: key, argStr: v})
}

// End closes the innermost open span. Unbalanced Ends are dropped rather
// than corrupting the stream.
func (th *Thread) End() {
	if th == nil || len(th.stack) == 0 {
		return
	}
	name := th.stack[len(th.stack)-1]
	th.stack = th.stack[:len(th.stack)-1]
	th.t.emit(rec{name: name, ph: 'E', tid: th.tid})
}

// Instant marks a point event (thread-scoped), e.g. one tile elimination.
func (th *Thread) Instant(name, key string, v int64) {
	if th == nil {
		return
	}
	th.t.emit(rec{name: name, ph: 'i', tid: th.tid, argKey: key, argInt: v})
}

// Counter samples a named counter series, rendered as a stacked chart.
func (th *Thread) Counter(name, key string, v int64) {
	if th == nil {
		return
	}
	th.t.emit(rec{name: name, ph: 'C', tid: th.tid, argKey: key, argInt: v})
}

// Depth returns the number of currently open spans, for tests.
func (th *Thread) Depth() int {
	if th == nil {
		return 0
	}
	return len(th.stack)
}

// Event is the JSON shape of one Chrome trace event.
type Event struct {
	Name  string         `json:"name,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level JSON object.
type TraceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
}

// Events renders the recorded stream in serialization order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events)+1)
	if t.procName != "" {
		out = append(out, Event{
			Name: "process_name", Ph: "M", PID: t.pid,
			Args: map[string]any{"name": t.procName},
		})
	}
	for _, r := range t.events {
		e := Event{Name: r.name, Ph: string(r.ph), TS: float64(r.ts) / 1e3, PID: t.pid, TID: r.tid}
		if r.ph == 'i' {
			e.Scope = "t"
		}
		if r.argKey != "" {
			if r.argStr != "" {
				e.Args = map[string]any{r.argKey: r.argStr}
			} else {
				e.Args = map[string]any{r.argKey: r.argInt}
			}
		}
		out = append(out, e)
	}
	return out
}

// WriteJSON serializes the trace as Chrome trace-event JSON.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer")
	}
	enc := json.NewEncoder(w)
	return enc.Encode(TraceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ns"})
}

// MergeTraces concatenates the event streams of several trace files into
// one. With per-node pids (SetProcess) the merged file loads in Perfetto as
// one timeline with a labeled track group per node, which is how a
// cluster-crossing request is read end to end. Timestamps stay node-local:
// each tracer's clock starts at its own NewTracer call, so cross-node spans
// align only approximately — good enough to stitch a story, not to measure
// clock skew.
func MergeTraces(files ...TraceFile) TraceFile {
	var merged TraceFile
	for _, f := range files {
		merged.TraceEvents = append(merged.TraceEvents, f.TraceEvents...)
		if merged.DisplayTimeUnit == "" {
			merged.DisplayTimeUnit = f.DisplayTimeUnit
		}
	}
	return merged
}

// TraceFileOf renders the tracer's current stream as a TraceFile, for
// merging or in-memory inspection without serializing.
func (t *Tracer) TraceFileOf() TraceFile {
	return TraceFile{TraceEvents: t.Events(), DisplayTimeUnit: "ns"}
}

// WriteFile serializes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
