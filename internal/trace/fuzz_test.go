package trace

import (
	"bytes"
	"testing"

	"rendelim/internal/workload"
)

// seedTraces encodes a few real workloads as fuzz corpus seeds.
func seedTraces(f *testing.F) {
	f.Helper()
	p := workload.Params{Width: 32, Height: 24, Frames: 1, Seed: 1}
	for _, alias := range []string{"ccs", "mst"} {
		b, err := workload.ByAlias(alias)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, b.Build(p)); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(Magic))
	f.Add([]byte("RDLM\x01\x00\x00\x00"))
	f.Add([]byte{})
}

// The service accepts untrusted trace uploads, so Decode must reject any
// malformed input with an error — never panic, never hang, never allocate
// unboundedly from hostile length fields.
func FuzzDecode(f *testing.F) {
	seedTraces(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Errorf("Decode returned non-nil trace alongside error %v", err)
			}
			return
		}
		// A trace that decodes must satisfy its own invariants and survive a
		// round trip: re-encoding and re-decoding yields a valid trace again.
		if err := tr.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		if _, err := Decode(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-decode of re-encoded trace failed: %v", err)
		}
	})
}
