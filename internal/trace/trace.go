// Package trace serializes api.Trace workloads to a compact, deterministic
// binary format, making the simulator trace-driven the way Teapot is: the
// retrace tool records command streams once, and resim/reexp replay them.
// The format is versioned, little-endian, and self-contained (shader
// programs and procedural texture specs travel inside the file).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"rendelim/internal/api"
	"rendelim/internal/geom"
	"rendelim/internal/rerr"
	"rendelim/internal/shader"
	"rendelim/internal/texture"
)

func texFilter(v uint8) texture.Filter { return texture.Filter(v) }

// Magic and version identify the format.
const (
	Magic   = "RDLM"
	Version = 1
)

// Command tags.
const (
	tagSetPipeline      = 1
	tagSetUniforms      = 2
	tagDraw             = 3
	tagUploadProgram    = 4
	tagUploadTexture    = 5
	tagSetRenderTargets = 6
)

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *writer) u8(v uint8) { w.bytes([]byte{v}) }

func (w *writer) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) u16(v uint16)  { var b [2]byte; binary.LittleEndian.PutUint16(b[:], v); w.bytes(b[:]) }
func (w *writer) u32(v uint32)  { var b [4]byte; binary.LittleEndian.PutUint32(b[:], v); w.bytes(b[:]) }
func (w *writer) u64(v uint64)  { var b [8]byte; binary.LittleEndian.PutUint64(b[:], v); w.bytes(b[:]) }
func (w *writer) f32(v float32) { w.u32(math.Float32bits(v)) }

func (w *writer) str(s string) {
	if len(s) > 0xFFFF {
		s = s[:0xFFFF]
	}
	w.u16(uint16(len(s)))
	w.bytes([]byte(s))
}

func (w *writer) vec4(v geom.Vec4) { w.f32(v.X); w.f32(v.Y); w.f32(v.Z); w.f32(v.W) }

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return nil
	}
	return b
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f32() float32 { return math.Float32frombits(r.u32()) }

func (r *reader) str() string {
	n := int(r.u16())
	b := r.bytes(n)
	return string(b)
}

func (r *reader) vec4() geom.Vec4 {
	return geom.Vec4{X: r.f32(), Y: r.f32(), Z: r.f32(), W: r.f32()}
}

// capHint bounds slice preallocation from an untrusted length field: a
// hostile header can claim millions of elements while carrying none, so
// never allocate more than maxPrealloc up front — append grows the slice if
// the elements actually arrive.
const maxPrealloc = 4096

func capHint(n int) int {
	if n > maxPrealloc {
		return maxPrealloc
	}
	return n
}

// Encode writes tr to w.
func Encode(out io.Writer, tr *api.Trace) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.bytes([]byte(Magic))
	w.u32(Version)
	w.str(tr.Name)
	w.u32(uint32(tr.Width))
	w.u32(uint32(tr.Height))
	w.vec4(tr.ClearColor)

	w.u16(uint16(len(tr.Programs)))
	for _, p := range tr.Programs {
		encodeProgram(w, p)
	}
	w.u16(uint16(len(tr.Textures)))
	for _, t := range tr.Textures {
		encodeTexSpec(w, t)
	}
	w.u32(uint32(len(tr.Frames)))
	for i := range tr.Frames {
		f := &tr.Frames[i]
		w.u32(uint32(len(f.Commands)))
		for _, cmd := range f.Commands {
			encodeCommand(w, cmd)
		}
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Decoder decodes traces into reusable backing arenas: the per-command
// slices (Draw.Data, Draw.Indices, SetUniforms.Values, Program.Instrs) of a
// decoded trace are carved out of a handful of arena slices owned by the
// Decoder instead of being individually allocated, so a caller that decodes
// trace after trace (the job pool, the bench harness) reaches a steady
// state where decode only boxes the command values themselves.
//
// Ownership: every Trace returned by Decode aliases the Decoder's arenas.
// Reset reclaims the arenas for the next decode — callers must not use
// previously decoded Traces after calling Reset. A zero Decoder is ready to
// use; the package-level Decode is the convenience form that dedicates a
// fresh Decoder (and thus fresh backing) to a single trace.
type Decoder struct {
	vec4s   []geom.Vec4
	indices []uint16
	instrs  []shader.Instr
}

// Reset reclaims the decoder's arenas, keeping their capacity, so the next
// Decode reuses the memory of traces decoded before the Reset.
func (d *Decoder) Reset() {
	d.vec4s = d.vec4s[:0]
	d.indices = d.indices[:0]
	d.instrs = d.instrs[:0]
}

// vec4Span appends n vec4s read from r to the arena and returns the span as
// a capacity-capped slice: later arena appends can never write into it.
// Growth is driven by data actually arriving, never by the untrusted length
// field alone, which subsumes the old capHint hostile-header defense.
func (d *Decoder) vec4Span(r *reader, n int) []geom.Vec4 {
	start := len(d.vec4s)
	for i := 0; i < n && r.err == nil; i++ {
		d.vec4s = append(d.vec4s, r.vec4())
	}
	end := len(d.vec4s)
	return d.vec4s[start:end:end]
}

// indexSpan is vec4Span for uint16 index data.
func (d *Decoder) indexSpan(r *reader, n int) []uint16 {
	start := len(d.indices)
	for i := 0; i < n && r.err == nil; i++ {
		d.indices = append(d.indices, r.u16())
	}
	end := len(d.indices)
	return d.indices[start:end:end]
}

// instrSpan decodes n shader instructions into the arena.
func (d *Decoder) instrSpan(r *reader, n int) []shader.Instr {
	start := len(d.instrs)
	for i := 0; i < n && r.err == nil; i++ {
		var in shader.Instr
		in.Op = shader.Op(r.u8())
		in.Dst.File = shader.File(r.u8())
		in.Dst.Idx = r.u8()
		in.Dst.Mask = r.u8()
		in.TexUnit = r.u8()
		for s := range in.Src {
			in.Src[s].File = shader.File(r.u8())
			in.Src[s].Idx = r.u8()
			sw := r.u8()
			in.Src[s].Swz = shader.Swz(sw&3, sw>>2&3, sw>>4&3, sw>>6&3)
			in.Src[s].Neg = r.bool()
		}
		d.instrs = append(d.instrs, in)
	}
	end := len(d.instrs)
	return d.instrs[start:end:end]
}

// Decode reads a trace and validates it.
func Decode(in io.Reader) (*api.Trace, error) {
	return new(Decoder).Decode(in)
}

// Decode reads one trace from in; see the type comment for arena ownership.
func (d *Decoder) Decode(in io.Reader) (*api.Trace, error) {
	r := &reader{r: bufio.NewReader(in)}
	if string(r.bytes(4)) != Magic {
		return nil, fmt.Errorf("trace: %w: bad magic", rerr.ErrBadTrace)
	}
	if v := r.u32(); v != Version {
		return nil, fmt.Errorf("trace: %w: unsupported version %d", rerr.ErrBadTrace, v)
	}
	tr := &api.Trace{}
	tr.Name = r.str()
	tr.Width = int(r.u32())
	tr.Height = int(r.u32())
	tr.ClearColor = r.vec4()

	np := int(r.u16())
	for i := 0; i < np && r.err == nil; i++ {
		tr.Programs = append(tr.Programs, d.decodeProgram(r))
	}
	nt := int(r.u16())
	for i := 0; i < nt && r.err == nil; i++ {
		tr.Textures = append(tr.Textures, decodeTexSpec(r))
	}
	nf := int(r.u32())
	if nf > 1<<20 {
		return nil, fmt.Errorf("trace: %w: implausible frame count %d", rerr.ErrBadTrace, nf)
	}
	for i := 0; i < nf && r.err == nil; i++ {
		nc := int(r.u32())
		if nc > 1<<22 {
			return nil, fmt.Errorf("trace: %w: implausible command count %d", rerr.ErrBadTrace, nc)
		}
		var f api.Frame
		if nc > 0 {
			f.Commands = make([]api.Command, 0, capHint(nc))
		}
		for c := 0; c < nc && r.err == nil; c++ {
			f.Commands = append(f.Commands, d.decodeCommand(r))
		}
		tr.Frames = append(tr.Frames, f)
	}
	if r.err != nil {
		return nil, fmt.Errorf("trace: %w: decode: %v", rerr.ErrBadTrace, r.err)
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w: %v", rerr.ErrBadTrace, err)
	}
	return tr, nil
}

func encodeProgram(w *writer, p *shader.Program) {
	w.str(p.Name)
	w.u16(uint16(len(p.Instrs)))
	for _, in := range p.Instrs {
		w.u8(uint8(in.Op))
		w.u8(uint8(in.Dst.File))
		w.u8(in.Dst.Idx)
		w.u8(in.Dst.Mask)
		w.u8(in.TexUnit)
		for _, s := range in.Src {
			w.u8(uint8(s.File))
			w.u8(s.Idx)
			w.u8(s.Swz[0] | s.Swz[1]<<2 | s.Swz[2]<<4 | s.Swz[3]<<6)
			w.bool(s.Neg)
		}
	}
}

func (d *Decoder) decodeProgram(r *reader) *shader.Program {
	p := &shader.Program{Name: r.str()}
	p.Instrs = d.instrSpan(r, int(r.u16()))
	return p
}

func encodeTexSpec(w *writer, t api.TextureSpec) {
	w.u8(uint8(t.Kind))
	w.u32(uint32(t.W))
	w.u32(uint32(t.H))
	w.u32(uint32(t.Cell))
	w.u64(t.Seed)
	w.vec4(t.A)
	w.vec4(t.B)
	w.f32(t.Amp)
	w.u8(uint8(t.Filter))
}

func decodeTexSpec(r *reader) api.TextureSpec {
	var t api.TextureSpec
	t.Kind = api.TextureKind(r.u8())
	t.W = int(r.u32())
	t.H = int(r.u32())
	t.Cell = int(r.u32())
	t.Seed = r.u64()
	t.A = r.vec4()
	t.B = r.vec4()
	t.Amp = r.f32()
	t.Filter = texFilter(r.u8())
	return t
}

func encodeCommand(w *writer, cmd api.Command) {
	switch c := cmd.(type) {
	case api.SetPipeline:
		w.u8(tagSetPipeline)
		w.u8(uint8(c.VS))
		w.u8(uint8(c.FS))
		for _, t := range c.Tex {
			w.u8(uint8(t))
		}
		w.u8(uint8(c.Blend))
		w.bool(c.DepthTest)
		w.bool(c.DepthWrite)
		w.bool(c.CullBack)
	case api.SetUniforms:
		w.u8(tagSetUniforms)
		w.u16(uint16(c.First))
		w.u16(uint16(len(c.Values)))
		for _, v := range c.Values {
			w.vec4(v)
		}
	case api.Draw:
		w.u8(tagDraw)
		w.u8(uint8(c.NumAttrs))
		w.u32(uint32(len(c.Data)))
		for _, v := range c.Data {
			w.vec4(v)
		}
		w.u32(uint32(len(c.Indices)))
		for _, ix := range c.Indices {
			w.u16(ix)
		}
	case api.UploadProgram:
		w.u8(tagUploadProgram)
		w.u8(uint8(c.ID))
		encodeProgram(w, c.Program)
	case api.UploadTexture:
		w.u8(tagUploadTexture)
		w.u8(uint8(c.ID))
		encodeTexSpec(w, c.Spec)
	case api.SetRenderTargets:
		w.u8(tagSetRenderTargets)
		w.u8(uint8(c.N))
	default:
		w.err = fmt.Errorf("trace: unknown command %T", cmd)
	}
}

func (d *Decoder) decodeCommand(r *reader) api.Command {
	switch tag := r.u8(); tag {
	case tagSetPipeline:
		var c api.SetPipeline
		c.VS = api.ProgramID(r.u8())
		c.FS = api.ProgramID(r.u8())
		for i := range c.Tex {
			c.Tex[i] = api.TextureID(r.u8())
		}
		c.Blend = api.BlendMode(r.u8())
		c.DepthTest = r.bool()
		c.DepthWrite = r.bool()
		c.CullBack = r.bool()
		return c
	case tagSetUniforms:
		var c api.SetUniforms
		c.First = int(r.u16())
		c.Values = d.vec4Span(r, int(r.u16()))
		return c
	case tagDraw:
		var c api.Draw
		c.NumAttrs = int(r.u8())
		n := int(r.u32())
		if n > 1<<26 {
			r.fail("implausible draw size %d", n)
			return c
		}
		c.Data = d.vec4Span(r, n)
		ni := int(r.u32())
		if ni > 1<<26 {
			r.fail("implausible index count %d", ni)
			return c
		}
		if ni > 0 {
			c.Indices = d.indexSpan(r, ni)
		}
		return c
	case tagUploadProgram:
		var c api.UploadProgram
		c.ID = api.ProgramID(r.u8())
		c.Program = d.decodeProgram(r)
		return c
	case tagUploadTexture:
		var c api.UploadTexture
		c.ID = api.TextureID(r.u8())
		c.Spec = decodeTexSpec(r)
		return c
	case tagSetRenderTargets:
		return api.SetRenderTargets{N: int(r.u8())}
	default:
		r.fail("unknown command tag %d", tag)
		return api.SetRenderTargets{N: 1}
	}
}
