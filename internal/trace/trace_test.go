package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rendelim/internal/api"
	"rendelim/internal/workload"
)

func TestRoundTripAllBenchmarks(t *testing.T) {
	p := workload.Params{Width: 96, Height: 64, Frames: 3, Seed: 1}
	for _, b := range append(workload.Suite(), workload.Extras()...) {
		orig := b.Build(p)
		var buf bytes.Buffer
		if err := Encode(&buf, orig); err != nil {
			t.Fatalf("%s: encode: %v", b.Alias, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", b.Alias, err)
		}
		if got.Name != orig.Name || got.Width != orig.Width || got.Height != orig.Height {
			t.Fatalf("%s: header mismatch", b.Alias)
		}
		if got.ClearColor != orig.ClearColor {
			t.Fatalf("%s: clear color mismatch", b.Alias)
		}
		if len(got.Programs) != len(orig.Programs) {
			t.Fatalf("%s: program count", b.Alias)
		}
		for i := range got.Programs {
			if got.Programs[i].Name != orig.Programs[i].Name ||
				!reflect.DeepEqual(got.Programs[i].Instrs, orig.Programs[i].Instrs) {
				t.Fatalf("%s: program %d mismatch", b.Alias, i)
			}
		}
		if !reflect.DeepEqual(got.Textures, orig.Textures) {
			t.Fatalf("%s: textures mismatch", b.Alias)
		}
		if len(got.Frames) != len(orig.Frames) {
			t.Fatalf("%s: frame count", b.Alias)
		}
		for f := range got.Frames {
			if !reflect.DeepEqual(got.Frames[f], orig.Frames[f]) {
				t.Fatalf("%s: frame %d mismatch", b.Alias, f)
			}
		}
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	p := workload.Params{Width: 96, Height: 64, Frames: 2, Seed: 1}
	b, _ := workload.ByAlias("ccs")
	tr := b.Build(p)
	var b1, b2 bytes.Buffer
	if err := Encode(&b1, tr); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b2, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("encoding not byte-stable")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	if _, err := Decode(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{99, 0, 0, 0})
	if _, err := Decode(&buf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	p := workload.Params{Width: 96, Height: 64, Frames: 2, Seed: 1}
	b, _ := workload.ByAlias("cde")
	tr := b.Build(p)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, len(data) / 3, len(data) - 3} {
		if _, err := Decode(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsUnknownCommandTag(t *testing.T) {
	// Build a minimal valid header then a bogus command tag.
	tr := &api.Trace{Name: "x", Width: 16, Height: 16}
	tr.Frames = []api.Frame{{Commands: []api.Command{api.SetRenderTargets{N: 1}}}}
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-2] = 200 // overwrite the command tag
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestDecodedTraceSimulatesIdentically(t *testing.T) {
	// The decisive property: a decoded trace is byte-equivalent for the
	// Signature Unit, so the simulation outcome matches exactly. Verified
	// at the command/primitive byte level here (the gpusim tests cover the
	// full pipeline).
	p := workload.Params{Width: 96, Height: 64, Frames: 3, Seed: 1}
	b, _ := workload.ByAlias("hop")
	orig := b.Build(p)
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for f := range orig.Frames {
		for c, cmd := range orig.Frames[f].Commands {
			if d, ok := cmd.(api.Draw); ok {
				var a, bb []byte
				for tri := 0; tri < d.TriangleCount(); tri++ {
					a = api.AppendPrimitive(a, d, tri)
					bb = api.AppendPrimitive(bb, got.Frames[f].Commands[c].(api.Draw), tri)
				}
				if !bytes.Equal(a, bb) {
					t.Fatalf("frame %d cmd %d: primitive bytes differ", f, c)
				}
			}
		}
	}
}

// TestDecoderArenaReuse: a Decoder reused across decodes (Reset between
// them) produces traces identical to fresh decodes, and its arenas actually
// retain capacity — the second decode of the same bytes must not grow them.
func TestDecoderArenaReuse(t *testing.T) {
	p := workload.Params{Width: 96, Height: 64, Frames: 3, Seed: 1}
	b, _ := workload.ByAlias("ccs")
	orig := b.Build(p)
	var buf bytes.Buffer
	if err := Encode(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	var d Decoder
	first, err := d.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	capAfterFirst := cap(d.vec4s)

	// The returned trace must survive further decodes that do NOT Reset:
	// spans are capacity-capped, so arena growth never aliases them.
	if _, err := d.Decode(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	for f := range first.Frames {
		if !reflect.DeepEqual(first.Frames[f], orig.Frames[f]) {
			t.Fatalf("frame %d corrupted by a later decode on the same Decoder", f)
		}
	}

	// After Reset, the arenas are recycled: same bytes, no further growth.
	d.Reset()
	capBefore := cap(d.vec4s)
	if capBefore < capAfterFirst {
		t.Errorf("Reset shrank the vec4 arena: %d -> %d", capAfterFirst, capBefore)
	}
	again, err := d.Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if cap(d.vec4s) != capBefore {
		t.Errorf("vec4 arena grew across Reset reuse: %d -> %d", capBefore, cap(d.vec4s))
	}
	for f := range again.Frames {
		if !reflect.DeepEqual(again.Frames[f], orig.Frames[f]) {
			t.Fatalf("frame %d differs after arena reuse", f)
		}
	}
}
