package rast

import (
	"math"
	"math/rand"
	"testing"

	"rendelim/internal/geom"
)

// mkTri builds a screen-space triangle directly in clip space with w=1, so
// clip coords == NDC. Screen is width x height.
func mkTri(t *testing.T, w, h int, pts [3][2]float32, cull bool) (ScreenTri, bool) {
	t.Helper()
	var tri Triangle
	for i, p := range pts {
		// Invert the screen mapping: ndcX = 2*px/W - 1, ndcY = 1 - 2*py/H.
		tri.V[i].Pos = geom.V4(2*p[0]/float32(w)-1, 1-2*p[1]/float32(h), 0, 1)
		tri.V[i].Var[0] = geom.V4(p[0], p[1], 0, 1)
	}
	return Setup(tri, w, h, cull)
}

func collect(st *ScreenTri, rect geom.Rect) map[[2]int]Fragment {
	got := map[[2]int]Fragment{}
	st.Rasterize(rect, nil, func(f *Fragment) {
		got[[2]int{f.X, f.Y}] = *f
	})
	return got
}

func fullRect(w, h int) geom.Rect { return geom.Rect{X0: 0, Y0: 0, X1: w, Y1: h} }

func TestSetupRejectsDegenerate(t *testing.T) {
	if _, ok := mkTri(t, 64, 64, [3][2]float32{{0, 0}, {10, 10}, {20, 20}}, false); ok {
		t.Fatal("collinear triangle should be rejected")
	}
}

func TestBackfaceCulling(t *testing.T) {
	cw := [3][2]float32{{10, 10}, {50, 10}, {10, 50}}
	ccw := [3][2]float32{{10, 10}, {10, 50}, {50, 10}}
	_, okCW := mkTri(t, 64, 64, cw, true)
	_, okCCW := mkTri(t, 64, 64, ccw, true)
	if okCW == okCCW {
		t.Fatal("culling should keep exactly one winding")
	}
	// With culling off, both render.
	if _, ok := mkTri(t, 64, 64, cw, false); !ok {
		t.Fatal("cw rejected without culling")
	}
	if _, ok := mkTri(t, 64, 64, ccw, false); !ok {
		t.Fatal("ccw rejected without culling")
	}
}

func TestCoverageOfAxisAlignedHalfSquare(t *testing.T) {
	// Right triangle covering the lower-left half of a 16x16 square.
	st, ok := mkTri(t, 16, 16, [3][2]float32{{0, 0}, {0, 16}, {16, 16}}, false)
	if !ok {
		t.Fatal("setup failed")
	}
	got := collect(&st, fullRect(16, 16))
	// Pixels strictly below the diagonal y=x are covered: center (x+.5,y+.5)
	// inside when y+0.5 > x+0.5, i.e. y > x; diagonal centers excluded or
	// included per tie rule, but (x+.5,y+.5) on y=x means y==x exactly.
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			_, covered := got[[2]int{x, y}]
			want := y > x
			if y == x {
				continue // tie pixels owned by one side; either is fine alone
			}
			if covered != want {
				t.Fatalf("pixel (%d,%d) covered=%v want %v", x, y, covered, want)
			}
		}
	}
}

// Two triangles sharing a diagonal must cover every pixel of the square
// exactly once (no double-draw, no cracks) — the top-left rule invariant.
func TestSharedEdgeExactlyOnce(t *testing.T) {
	const n = 32
	counts := make(map[[2]int]int)
	add := func(pts [3][2]float32) {
		st, ok := mkTri(t, n, n, pts, false)
		if !ok {
			t.Fatal("setup failed")
		}
		st.Rasterize(fullRect(n, n), nil, func(f *Fragment) {
			counts[[2]int{f.X, f.Y}]++
		})
	}
	add([3][2]float32{{0, 0}, {0, n}, {n, n}})
	add([3][2]float32{{0, 0}, {n, n}, {n, 0}})
	if len(counts) != n*n {
		t.Fatalf("covered %d pixels, want %d", len(counts), n*n)
	}
	for p, c := range counts {
		if c != 1 {
			t.Fatalf("pixel %v drawn %d times", p, c)
		}
	}
}

// Random triangle fans around a center: every interior pixel drawn exactly
// once across the fan (shared radial edges).
func TestQuickFanPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 48
	for trial := 0; trial < 20; trial++ {
		cx := rng.Float32()*20 + 14
		cy := rng.Float32()*20 + 14
		const spokes = 7
		var px, py [spokes]float32
		for i := 0; i < spokes; i++ {
			ang := (float64(i) + rng.Float64()*0.7) / spokes * 2 * 3.14159265
			r := rng.Float32()*10 + 8
			px[i] = cx + r*cosf(ang)
			py[i] = cy + r*sinf(ang)
		}
		counts := make(map[[2]int]int)
		for i := 0; i < spokes; i++ {
			j := (i + 1) % spokes
			st, ok := mkTri(t, n, n, [3][2]float32{{cx, cy}, {px[i], py[i]}, {px[j], py[j]}}, false)
			if !ok {
				continue
			}
			st.Rasterize(fullRect(n, n), nil, func(f *Fragment) {
				counts[[2]int{f.X, f.Y}]++
			})
		}
		for p, c := range counts {
			if c != 1 {
				t.Fatalf("trial %d: pixel %v drawn %d times", trial, p, c)
			}
		}
	}
}

func TestRasterizeRespectsRect(t *testing.T) {
	st, ok := mkTri(t, 64, 64, [3][2]float32{{0, 0}, {0, 64}, {64, 64}}, false)
	if !ok {
		t.Fatal("setup failed")
	}
	rect := geom.Rect{X0: 16, Y0: 16, X1: 32, Y1: 32}
	for p := range collect(&st, rect) {
		if p[0] < 16 || p[0] >= 32 || p[1] < 16 || p[1] >= 32 {
			t.Fatalf("fragment %v outside rect", p)
		}
	}
}

func TestVaryingInterpolationAffine(t *testing.T) {
	// Var[0] stores the screen position; with w=1 everywhere interpolation
	// must reproduce the pixel center to within float error.
	st, ok := mkTri(t, 32, 32, [3][2]float32{{0, 0}, {0, 32}, {32, 32}}, false)
	if !ok {
		t.Fatal("setup failed")
	}
	st.Rasterize(fullRect(32, 32), nil, func(f *Fragment) {
		wantX := float32(f.X) + 0.5
		wantY := float32(f.Y) + 0.5
		if absf(f.Var[0].X-wantX) > 0.01 || absf(f.Var[0].Y-wantY) > 0.01 {
			// t.Fatalf inside closure is fine; test fails on first bad pixel
			panic("interpolation error")
		}
	})
}

func TestPerspectiveCorrection(t *testing.T) {
	// An edge-on quad strip: vertex 0 near (w=1), vertices at w=4. With
	// perspective-correct interpolation the varying midpoint is biased
	// toward the near vertex.
	var tri Triangle
	tri.V[0].Pos = geom.V4(-1, -1, 0, 1)
	tri.V[1].Pos = geom.V4(4, -4, 0, 4) // ndc (1,-1)
	tri.V[2].Pos = geom.V4(-4, 4, 0, 4) // ndc (-1,1)
	tri.V[0].Var[0] = geom.V4(0, 0, 0, 0)
	tri.V[1].Var[0] = geom.V4(1, 0, 0, 0)
	tri.V[2].Var[0] = geom.V4(1, 0, 0, 0)
	st, ok := Setup(tri, 32, 32, false)
	if !ok {
		t.Fatal("setup failed")
	}
	var centerVal float32 = -1
	st.Rasterize(fullRect(32, 32), nil, func(f *Fragment) {
		if f.X == 8 && f.Y == 20 { // interior pixel, away from edge ties
			centerVal = f.Var[0].X
		}
	})
	if centerVal < 0 {
		t.Fatal("probe pixel not covered")
	}
	// Affine interpolation would give ~0.5 at the screen-space midpoint
	// between the near vertex and the far edge; perspective-correct gives
	// 2/(1+4/1) * ... — concretely it must be well below 0.95 and the
	// value must be < affine. A loose check: strictly between 0 and 1 and
	// below 0.9 is wrong to assert blindly; instead verify monotonicity:
	if centerVal <= 0 || centerVal >= 1 {
		t.Fatalf("center varying %v out of range", centerVal)
	}
}

func TestQuadCallbackCountsCoveredQuads(t *testing.T) {
	st, ok := mkTri(t, 16, 16, [3][2]float32{{0, 0}, {0, 16}, {16, 16}}, false)
	if !ok {
		t.Fatal("setup failed")
	}
	quads := 0
	frags := 0
	pixInQuads := 0
	st.Rasterize(fullRect(16, 16), func(qx, qy int, mask uint8) {
		quads++
		for b := 0; b < 4; b++ {
			if mask&(1<<uint(b)) != 0 {
				pixInQuads++
			}
		}
	}, func(f *Fragment) { frags++ })
	if frags == 0 || quads == 0 {
		t.Fatal("nothing rasterized")
	}
	if pixInQuads != frags {
		t.Fatalf("mask pixels %d != fragments %d", pixInQuads, frags)
	}
	if quads > (frags+3)/4*4 || quads*4 < frags {
		t.Fatalf("quads %d inconsistent with %d fragments", quads, frags)
	}
}

func TestClipNearDropsAndSplits(t *testing.T) {
	mk := func(z0, z1, z2 float32) Triangle {
		var tri Triangle
		tri.V[0].Pos = geom.V4(0, 0, z0, 1)
		tri.V[1].Pos = geom.V4(1, 0, z1, 1)
		tri.V[2].Pos = geom.V4(0, 1, z2, 1)
		return tri
	}
	// All in front (z >= -w): kept as-is.
	if got := ClipNear(nil, mk(0, 0, 0)); len(got) != 1 {
		t.Fatalf("fully visible: %d tris", len(got))
	}
	// All behind: dropped.
	if got := ClipNear(nil, mk(-2, -2, -2)); len(got) != 0 {
		t.Fatalf("fully clipped: %d tris", len(got))
	}
	// One vertex behind: clipped into a quad = 2 triangles.
	if got := ClipNear(nil, mk(-2, 0, 0)); len(got) != 2 {
		t.Fatalf("one-behind: %d tris", len(got))
	}
	// Two vertices behind: 1 triangle remains.
	if got := ClipNear(nil, mk(-2, -2, 0)); len(got) != 1 {
		t.Fatalf("two-behind: %d tris", len(got))
	}
}

func TestClipNearVertexOrder(t *testing.T) {
	// Clipped vertices must lie exactly on the near plane (z = -w).
	var tri Triangle
	tri.V[0].Pos = geom.V4(0, 0, -3, 1)
	tri.V[1].Pos = geom.V4(1, 0, 1, 1)
	tri.V[2].Pos = geom.V4(0, 1, 1, 1)
	out := ClipNear(nil, tri)
	for _, o := range out {
		for _, v := range o.V {
			if nearDist(v) < -1e-4 {
				t.Fatalf("clipped vertex behind near plane: %+v", v.Pos)
			}
		}
	}
}

func TestBBoxClipping(t *testing.T) {
	st, ok := mkTri(t, 32, 32, [3][2]float32{{-10, -10}, {50, -10}, {-10, 50}}, false)
	if !ok {
		t.Fatal("setup failed")
	}
	bb := st.BBox(fullRect(32, 32))
	if bb.X0 < 0 || bb.Y0 < 0 || bb.X1 > 32 || bb.Y1 > 32 {
		t.Fatalf("bbox %+v escapes bounds", bb)
	}
}

func cosf(a float64) float32 { return float32(math.Cos(a)) }
func sinf(a float64) float32 { return float32(math.Sin(a)) }

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
