// Package rast implements the fixed-function geometry back-end and
// rasterizer of the Raster Pipeline (Section II): near-plane clipping,
// backface culling, screen mapping, edge-function triangle traversal in
// 2x2 quads with the top-left fill rule, and perspective-correct attribute
// interpolation. It produces the fragment stream that Early Depth and the
// Fragment Processors consume.
package rast

import (
	"math"

	"rendelim/internal/geom"
)

// MaxVaryings is the number of interpolated vec4 attributes per vertex
// (shader outputs o1..o3).
const MaxVaryings = 3

// Vertex is a post-vertex-shader vertex: clip-space position + varyings.
type Vertex struct {
	Pos geom.Vec4
	Var [MaxVaryings]geom.Vec4
}

// Triangle is three shaded vertices.
type Triangle struct {
	V [3]Vertex
}

// nearDist is the signed distance to the GL near plane z = -w. Vertices with
// d >= 0 are visible.
func nearDist(v Vertex) float32 { return v.Pos.Z + v.Pos.W }

// lerpVertex interpolates all vertex data at parameter t along edge a->b.
func lerpVertex(a, b Vertex, t float32) Vertex {
	var out Vertex
	out.Pos = a.Pos.Lerp(b.Pos, t)
	for i := range out.Var {
		out.Var[i] = a.Var[i].Lerp(b.Var[i], t)
	}
	return out
}

// ClipNear clips tri against the near plane (Sutherland–Hodgman on z=-w) and
// appends the resulting triangles (0, 1 or 2) to dst, which it returns.
// Triangles entirely behind the plane are dropped; this is the clipping half
// of Primitive Assembly.
func ClipNear(dst []Triangle, tri Triangle) []Triangle {
	var in [4]Vertex
	n := 0
	prev := tri.V[2]
	prevD := nearDist(prev)
	for i := 0; i < 3; i++ {
		cur := tri.V[i]
		curD := nearDist(cur)
		if curD >= 0 {
			if prevD < 0 {
				t := prevD / (prevD - curD)
				in[n] = lerpVertex(prev, cur, t)
				n++
			}
			in[n] = cur
			n++
		} else if prevD >= 0 {
			t := prevD / (prevD - curD)
			in[n] = lerpVertex(prev, cur, t)
			n++
		}
		prev, prevD = cur, curD
	}
	switch n {
	case 3:
		dst = append(dst, Triangle{V: [3]Vertex{in[0], in[1], in[2]}})
	case 4:
		dst = append(dst, Triangle{V: [3]Vertex{in[0], in[1], in[2]}})
		dst = append(dst, Triangle{V: [3]Vertex{in[0], in[2], in[3]}})
	}
	return dst
}

// ScreenTri is a screen-space triangle ready for traversal.
type ScreenTri struct {
	// X, Y are pixel coordinates (y grows downward), Z is depth in [0,1],
	// InvW is 1/w_clip for perspective-correct interpolation.
	X, Y, Z, InvW [3]float32
	// VarW[i] holds vertex i's varyings pre-divided by w.
	VarW [3][MaxVaryings]geom.Vec4
	// Area2 is twice the signed screen area (positive = counter-clockwise
	// in screen space, i.e. clockwise on screen since y points down).
	Area2 float32
}

// Setup maps a clipped clip-space triangle to the screen. It returns
// ok=false for degenerate (zero-area) triangles, or when cullBack is set and
// the triangle is back-facing (negative signed area).
func Setup(tri Triangle, width, height int, cullBack bool) (st ScreenTri, ok bool) {
	for i := 0; i < 3; i++ {
		p := tri.V[i].Pos
		if p.W <= 1e-9 {
			return st, false // fully clipped input should prevent this
		}
		inv := 1 / p.W
		st.X[i] = (p.X*inv*0.5 + 0.5) * float32(width)
		st.Y[i] = (0.5 - p.Y*inv*0.5) * float32(height)
		st.Z[i] = p.Z*inv*0.5 + 0.5
		st.InvW[i] = inv
		for v := 0; v < MaxVaryings; v++ {
			st.VarW[i][v] = tri.V[i].Var[v].Scale(inv)
		}
	}
	st.Area2 = edge(st.X[0], st.Y[0], st.X[1], st.Y[1], st.X[2], st.Y[2])
	if st.Area2 == 0 {
		return st, false
	}
	if cullBack && st.Area2 < 0 {
		return st, false
	}
	return st, true
}

// edge evaluates the edge function of (ax,ay)->(bx,by) at (cx,cy).
func edge(ax, ay, bx, by, cx, cy float32) float32 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// BBox returns the pixel bounding box of the triangle, clipped to bounds.
func (st *ScreenTri) BBox(bounds geom.Rect) geom.Rect {
	minX := minf3(st.X[0], st.X[1], st.X[2])
	maxX := maxf3(st.X[0], st.X[1], st.X[2])
	minY := minf3(st.Y[0], st.Y[1], st.Y[2])
	maxY := maxf3(st.Y[0], st.Y[1], st.Y[2])
	r := geom.Rect{
		X0: int(math.Floor(float64(minX))),
		Y0: int(math.Floor(float64(minY))),
		X1: int(math.Ceil(float64(maxX))),
		Y1: int(math.Ceil(float64(maxY))),
	}
	return r.Intersect(bounds)
}

// Fragment is one covered pixel delivered by the traverser.
type Fragment struct {
	X, Y int
	Z    float32 // interpolated depth in [0,1]
	Var  [MaxVaryings]geom.Vec4
}

// FragmentFunc consumes fragments.
type FragmentFunc func(frag *Fragment)

// QuadFunc is called once per 2x2 quad with at least one covered pixel,
// before its fragments are emitted; mask has bit i set for covered pixel i
// (0=TL, 1=TR, 2=BL, 3=BR). Quads are the unit of the Early Depth stage
// occupancy in Table I. May be nil.
type QuadFunc func(qx, qy int, mask uint8)

// Rasterize traverses the triangle restricted to rect (a tile, typically),
// emitting covered fragments in quad order with perspective-correct
// varyings. Coverage follows the top-left rule so shared edges are drawn
// exactly once.
//
// It allocates one Fragment per call; steady-state callers should hold a
// Fragment in reusable scratch and use RasterizeInto instead.
func (st *ScreenTri) Rasterize(rect geom.Rect, onQuad QuadFunc, emit FragmentFunc) {
	var frag Fragment
	st.RasterizeInto(rect, &frag, onQuad, emit)
}

// RasterizeInto is Rasterize with caller-provided fragment scratch: frag is
// overwritten for every covered pixel and passed to emit, so the traversal
// itself never allocates. emit must not retain the pointer past its return.
func (st *ScreenTri) RasterizeInto(rect geom.Rect, frag *Fragment, onQuad QuadFunc, emit FragmentFunc) {
	bb := st.BBox(rect)
	if bb.Empty() {
		return
	}
	// Orient edges so the interior has positive edge values.
	flip := float32(1)
	if st.Area2 < 0 {
		flip = -1
	}
	invArea := 1 / (st.Area2 * flip)

	// Edge coefficients for incremental evaluation:
	// e(x,y) = A*x + B*y + C, evaluated at pixel centers.
	type edgeEq struct{ a, b, c float64 }
	mk := func(ax, ay, bx, by float32) edgeEq {
		a := float64((by - ay) * -flip)
		b := float64((bx - ax) * flip)
		c := -a*float64(ax) - b*float64(ay)
		return edgeEq{a, b, c}
	}
	// Edge i is opposite vertex i: e0 = v1->v2, e1 = v2->v0, e2 = v0->v1.
	e := [3]edgeEq{
		mk(st.X[1], st.Y[1], st.X[2], st.Y[2]),
		mk(st.X[2], st.Y[2], st.X[0], st.Y[0]),
		mk(st.X[0], st.Y[0], st.X[1], st.Y[1]),
	}
	// Top-left rule: on a tie (pixel center exactly on an edge) exactly one
	// of the two triangles sharing the edge owns the pixel. Opposite
	// directed edges negate (a,b), so this predicate is true for exactly
	// one orientation of any non-degenerate edge.
	var incl [3]bool
	for i := range e {
		incl[i] = e[i].a > 0 || (e[i].a == 0 && e[i].b < 0)
	}
	inside := func(i int, v float64) bool {
		if v != 0 {
			return v > 0
		}
		return incl[i]
	}

	qy0 := bb.Y0 &^ 1
	qx0 := bb.X0 &^ 1
	for qy := qy0; qy < bb.Y1; qy += 2 {
		for qx := qx0; qx < bb.X1; qx += 2 {
			var mask uint8
			var covered [4][3]float64
			for p := 0; p < 4; p++ {
				x := qx + p&1
				y := qy + p>>1
				if x < bb.X0 || x >= bb.X1 || y < bb.Y0 || y >= bb.Y1 {
					continue
				}
				cx := float64(x) + 0.5
				cy := float64(y) + 0.5
				v0 := e[0].a*cx + e[0].b*cy + e[0].c
				v1 := e[1].a*cx + e[1].b*cy + e[1].c
				v2 := e[2].a*cx + e[2].b*cy + e[2].c
				if inside(0, v0) && inside(1, v1) && inside(2, v2) {
					mask |= 1 << uint(p)
					covered[p] = [3]float64{v0, v1, v2}
				}
			}
			if mask == 0 {
				continue
			}
			if onQuad != nil {
				onQuad(qx>>1, qy>>1, mask)
			}
			for p := 0; p < 4; p++ {
				if mask&(1<<uint(p)) == 0 {
					continue
				}
				w0 := float32(covered[p][0]) * invArea
				w1 := float32(covered[p][1]) * invArea
				w2 := float32(covered[p][2]) * invArea
				frag.X = qx + p&1
				frag.Y = qy + p>>1
				frag.Z = w0*st.Z[0] + w1*st.Z[1] + w2*st.Z[2]
				iw := w0*st.InvW[0] + w1*st.InvW[1] + w2*st.InvW[2]
				var rw float32
				if iw != 0 {
					rw = 1 / iw
				}
				for v := 0; v < MaxVaryings; v++ {
					frag.Var[v] = st.VarW[0][v].Scale(w0).
						Add(st.VarW[1][v].Scale(w1)).
						Add(st.VarW[2][v].Scale(w2)).
						Scale(rw)
				}
				emit(frag)
			}
		}
	}
}

func minf3(a, b, c float32) float32 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func maxf3(a, b, c float32) float32 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}
