package api

import (
	"encoding/binary"
	"math"

	"rendelim/internal/geom"
	"rendelim/internal/shader"
)

// State is the pipeline state machine: the effect of every non-draw command
// applied so far. Both the functional renderer and the Signature Unit
// front-end read it.
type State struct {
	Pipeline      SetPipeline
	Uniforms      [shader.MaxConsts]geom.Vec4
	RenderTargets int
	// UploadsThisFrame reports whether a shader/texture upload happened in
	// the current frame (an RE-disable trigger).
	UploadsThisFrame bool
}

// NewState returns the reset-time state: single render target, depth test
// and write enabled.
func NewState() *State {
	return &State{
		Pipeline:      SetPipeline{DepthTest: true, DepthWrite: true},
		RenderTargets: 1,
	}
}

// BeginFrame clears the per-frame flags.
func (s *State) BeginFrame() { s.UploadsThisFrame = false }

// Apply folds one non-draw command into the state. Draw commands do not
// change state and are ignored here.
func (s *State) Apply(cmd Command) {
	switch c := cmd.(type) {
	case SetPipeline:
		s.Pipeline = c
	case SetUniforms:
		for i, v := range c.Values {
			if c.First+i < len(s.Uniforms) {
				s.Uniforms[c.First+i] = v
			}
		}
	case SetRenderTargets:
		s.RenderTargets = c.N
	case UploadProgram, UploadTexture:
		s.UploadsThisFrame = true
	}
}

// SignedConstants returns the uniform registers visible to shaders for a
// drawcall (c0..c[SignedUniforms-1]) as a slice aliasing the state.
func (s *State) SignedConstants() []geom.Vec4 {
	return s.Uniforms[:SignedUniforms]
}

// --- Tile-input bitstream serialization (Section III-E) ---------------------
//
// The bitstream a tile's signature covers is a sequence of blocks:
//
//	constants block:  [reg index:u32][count:u32][values: count x 16 bytes]...
//	                  one record per SetUniforms command in the epoch
//	primitive block:  3 vertices x NumAttrs x 16 bytes of attribute data
//
// All scalars are little-endian; floats are serialized as their IEEE-754
// bit patterns so the encoding is total and deterministic (distinct bit
// patterns stay distinct, including -0 vs +0 and NaN payloads).

func putVec4(dst []byte, v geom.Vec4) {
	binary.LittleEndian.PutUint32(dst[0:], math.Float32bits(v.X))
	binary.LittleEndian.PutUint32(dst[4:], math.Float32bits(v.Y))
	binary.LittleEndian.PutUint32(dst[8:], math.Float32bits(v.Z))
	binary.LittleEndian.PutUint32(dst[12:], math.Float32bits(v.W))
}

// AppendUniformRecord appends one SetUniforms record to the constants block.
func AppendUniformRecord(dst []byte, c SetUniforms) []byte {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(c.First))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(c.Values)))
	dst = append(dst, hdr[:]...)
	var buf [16]byte
	for _, v := range c.Values {
		putVec4(buf[:], v)
		dst = append(dst, buf[:]...)
	}
	return dst
}

// AppendPipelineRecord appends the drawcall-visible render state to the
// constants block. The paper's bitstream covers only constants and
// attributes, assuming shader/texture *bindings* are stable; signing the
// bound state as well closes the false-positive hole when an application
// rebinds an already-uploaded program, texture, blend or depth mode between
// frames — those are Command Processor outputs and genuine Raster Pipeline
// inputs.
func AppendPipelineRecord(dst []byte, p SetPipeline) []byte {
	rec := [12]byte{
		0xFF, 0xEE, // record marker, distinct from uniform headers
		byte(p.VS), byte(p.FS),
		byte(p.Tex[0]), byte(p.Tex[1]), byte(p.Tex[2]), byte(p.Tex[3]),
		byte(p.Blend), b2b(p.DepthTest), b2b(p.DepthWrite), b2b(p.CullBack),
	}
	return append(dst, rec[:]...)
}

func b2b(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// PrimitiveBytes returns the size in bytes of one primitive's attribute
// block for a drawcall with numAttrs attributes per vertex.
func PrimitiveBytes(numAttrs int) int { return 3 * numAttrs * 16 }

// AppendPrimitive appends triangle tri of drawcall d to dst: the attributes
// of its three (possibly indexed) vertices, in submission order. Indexed and
// flat submissions of the same geometry therefore sign identically.
func AppendPrimitive(dst []byte, d Draw, tri int) []byte {
	var buf [16]byte
	for k := 0; k < 3; k++ {
		v := d.TriVertexIndex(tri, k)
		for a := 0; a < d.NumAttrs; a++ {
			putVec4(buf[:], d.Data[v*d.NumAttrs+a])
			dst = append(dst, buf[:]...)
		}
	}
	return dst
}

// Vertex returns attribute slice of vertex v of drawcall d (NumAttrs vec4s).
func (d Draw) Vertex(v int) []geom.Vec4 {
	return d.Data[v*d.NumAttrs : (v+1)*d.NumAttrs]
}

// VertexBytes returns the per-vertex attribute footprint in bytes.
func (d Draw) VertexBytes() int { return d.NumAttrs * 16 }
