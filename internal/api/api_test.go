package api

import (
	"bytes"
	"math"
	"testing"

	"rendelim/internal/geom"
	"rendelim/internal/shader"
)

func TestDrawShape(t *testing.T) {
	d := Draw{NumAttrs: 3, Data: make([]geom.Vec4, 18)} // 6 verts = 2 tris
	if d.VertexCount() != 6 || d.TriangleCount() != 2 {
		t.Fatalf("counts: %d verts, %d tris", d.VertexCount(), d.TriangleCount())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.VertexBytes() != 48 {
		t.Fatalf("vertex bytes = %d", d.VertexBytes())
	}
	if (Draw{}).VertexCount() != 0 {
		t.Fatal("empty draw should have zero vertices")
	}
}

func TestDrawValidateRejects(t *testing.T) {
	bad := []Draw{
		{NumAttrs: 0, Data: make([]geom.Vec4, 3)},
		{NumAttrs: MaxVertexAttrs + 1, Data: make([]geom.Vec4, 15)},
		{NumAttrs: 2, Data: make([]geom.Vec4, 7)}, // not whole triangles
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDrawVertexSlicing(t *testing.T) {
	d := Draw{NumAttrs: 2, Data: []geom.Vec4{
		geom.V4(0, 0, 0, 1), geom.V4(9, 9, 9, 9),
		geom.V4(1, 0, 0, 1), geom.V4(8, 8, 8, 8),
		geom.V4(0, 1, 0, 1), geom.V4(7, 7, 7, 7),
	}}
	v1 := d.Vertex(1)
	if len(v1) != 2 || v1[0] != geom.V4(1, 0, 0, 1) || v1[1] != geom.V4(8, 8, 8, 8) {
		t.Fatalf("vertex 1 = %v", v1)
	}
}

func TestStateApply(t *testing.T) {
	s := NewState()
	if !s.Pipeline.DepthTest || s.RenderTargets != 1 {
		t.Fatal("reset state wrong")
	}
	s.Apply(SetPipeline{VS: 1, FS: 2, Blend: BlendAlpha})
	if s.Pipeline.FS != 2 || s.Pipeline.Blend != BlendAlpha {
		t.Fatal("pipeline not applied")
	}
	s.Apply(SetUniforms{First: 4, Values: []geom.Vec4{geom.V4(1, 2, 3, 4)}})
	if s.Uniforms[4] != geom.V4(1, 2, 3, 4) {
		t.Fatal("uniform not applied")
	}
	s.Apply(SetRenderTargets{N: 2})
	if s.RenderTargets != 2 {
		t.Fatal("render targets not applied")
	}
	// Out-of-range uniform writes are ignored, not panicking.
	s.Apply(SetUniforms{First: shader.MaxConsts - 1, Values: make([]geom.Vec4, 4)})
}

func TestStateUploadFlag(t *testing.T) {
	s := NewState()
	s.Apply(UploadTexture{ID: 1})
	if !s.UploadsThisFrame {
		t.Fatal("upload flag not set")
	}
	s.BeginFrame()
	if s.UploadsThisFrame {
		t.Fatal("upload flag not cleared")
	}
	s.Apply(UploadProgram{ID: 1, Program: shader.FlatFS()})
	if !s.UploadsThisFrame {
		t.Fatal("program upload flag not set")
	}
}

func TestSignedConstantsWindow(t *testing.T) {
	s := NewState()
	s.Apply(SetUniforms{First: 0, Values: []geom.Vec4{geom.V4(5, 0, 0, 0)}})
	c := s.SignedConstants()
	if len(c) != SignedUniforms || c[0] != geom.V4(5, 0, 0, 0) {
		t.Fatalf("signed constants = %v", c[:1])
	}
}

func TestAppendUniformRecordDistinguishesRegisters(t *testing.T) {
	v := geom.V4(1, 2, 3, 4)
	a := AppendUniformRecord(nil, SetUniforms{First: 4, Values: []geom.Vec4{v}})
	b := AppendUniformRecord(nil, SetUniforms{First: 5, Values: []geom.Vec4{v}})
	if bytes.Equal(a, b) {
		t.Fatal("same value at different registers must serialize differently")
	}
	if len(a) != 8+16 {
		t.Fatalf("record length = %d", len(a))
	}
}

func TestAppendPrimitiveBytes(t *testing.T) {
	d := Draw{NumAttrs: 2, Data: make([]geom.Vec4, 12)} // 2 triangles
	for i := range d.Data {
		d.Data[i] = geom.V4(float32(i), 0, 0, 1)
	}
	p0 := AppendPrimitive(nil, d, 0)
	p1 := AppendPrimitive(nil, d, 1)
	if len(p0) != PrimitiveBytes(2) || PrimitiveBytes(2) != 96 {
		t.Fatalf("primitive bytes = %d", len(p0))
	}
	if bytes.Equal(p0, p1) {
		t.Fatal("distinct triangles serialized identically")
	}
	// Deterministic, including float bit patterns.
	if !bytes.Equal(p0, AppendPrimitive(nil, d, 0)) {
		t.Fatal("serialization not deterministic")
	}
}

func TestAppendPrimitiveDistinguishesNegZero(t *testing.T) {
	mk := func(x float32) []byte {
		d := Draw{NumAttrs: 1, Data: []geom.Vec4{
			geom.V4(x, 0, 0, 1), geom.V4(1, 0, 0, 1), geom.V4(0, 1, 0, 1),
		}}
		return AppendPrimitive(nil, d, 0)
	}
	negZero := float32(math.Copysign(0, -1))
	if bytes.Equal(mk(0), mk(negZero)) {
		t.Fatal("+0 and -0 should sign differently (bit-pattern hashing)")
	}
}

func TestTextureSpecBuildKinds(t *testing.T) {
	kinds := []TextureKind{TexChecker, TexGradient, TexNoise, TexDisc}
	for _, k := range kinds {
		spec := TextureSpec{Kind: k, W: 8, H: 8, Cell: 2, Seed: 1,
			A: geom.V4(1, 0, 0, 1), B: geom.V4(0, 0, 1, 1), Amp: 0.2}
		tex := spec.Build(3)
		if tex.ID != 3 || tex.W != 8 || tex.H != 8 {
			t.Fatalf("kind %d: built %dx%d id %d", k, tex.W, tex.H, tex.ID)
		}
	}
}

func TestTraceValidate(t *testing.T) {
	good := &Trace{
		Name: "t", Width: 32, Height: 32,
		Programs: []*shader.Program{shader.FlatFS()},
		Textures: []TextureSpec{{Kind: TexChecker, W: 4, H: 4, Cell: 2}},
		Frames: []Frame{{Commands: []Command{
			SetPipeline{VS: 0, FS: 0},
			SetUniforms{First: 0, Values: make([]geom.Vec4, 4)},
			Draw{NumAttrs: 1, Data: make([]geom.Vec4, 3)},
		}}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := *good
	bad.Width = 0
	if bad.Validate() == nil {
		t.Fatal("zero width accepted")
	}

	badProg := *good
	badProg.Frames = []Frame{{Commands: []Command{SetPipeline{VS: 7}}}}
	if badProg.Validate() == nil {
		t.Fatal("out-of-range program accepted")
	}

	badTex := *good
	badTex.Frames = []Frame{{Commands: []Command{SetPipeline{Tex: [MaxTexUnits]TextureID{3}}}}}
	if badTex.Validate() == nil {
		t.Fatal("out-of-range texture accepted")
	}

	badUni := *good
	badUni.Frames = []Frame{{Commands: []Command{SetUniforms{First: shader.MaxConsts, Values: make([]geom.Vec4, 1)}}}}
	if badUni.Validate() == nil {
		t.Fatal("out-of-range uniform accepted")
	}

	badRT := *good
	badRT.Frames = []Frame{{Commands: []Command{SetRenderTargets{N: 0}}}}
	if badRT.Validate() == nil {
		t.Fatal("zero render targets accepted")
	}

	badDraw := *good
	badDraw.Frames = []Frame{{Commands: []Command{Draw{NumAttrs: 1, Data: make([]geom.Vec4, 4)}}}}
	if badDraw.Validate() == nil {
		t.Fatal("ragged draw accepted")
	}
}
