// Package api defines the command-stream model the simulated GPU consumes:
// pipeline-state commands, uniform ("scene constant") updates, texture and
// shader uploads, and drawcalls carrying vertex attributes — the same
// abstraction level as the OpenGL ES traces Teapot records for the paper
// (Section IV-A). The tile-input bitstream that Rendering Elimination signs
// (Section III-E) is defined over these commands.
package api

import (
	"fmt"

	"rendelim/internal/geom"
	"rendelim/internal/shader"
	"rendelim/internal/texture"
)

// ProgramID references a shader program registered with the trace.
type ProgramID uint8

// TextureID references a texture registered with the trace.
type TextureID uint8

// MaxTexUnits is the number of bindable texture units.
const MaxTexUnits = texUnits

const texUnits = 4

// MaxVertexAttrs bounds the vec4 attributes per vertex (position included).
const MaxVertexAttrs = 4

// SignedUniforms is the number of uniform vec4 registers whose values form a
// drawcall's "scene constants" for signing and shading (c0..c7 per the
// conventions in internal/shader).
const SignedUniforms = 8

// BlendMode selects the blending function.
type BlendMode uint8

// Blend modes.
const (
	BlendNone  BlendMode = iota // overwrite
	BlendAlpha                  // src.a * src + (1-src.a) * dst
)

// Command is one element of a frame's command stream.
type Command interface{ isCommand() }

// SetPipeline binds shader programs, textures and fixed-function state. In
// GL terms it bundles glUseProgram, glBindTexture and depth/blend state.
type SetPipeline struct {
	VS, FS     ProgramID
	Tex        [MaxTexUnits]TextureID
	Blend      BlendMode
	DepthTest  bool
	DepthWrite bool
	CullBack   bool
}

// SetUniforms updates Values starting at uniform register First. This is the
// "commands that define constants" of Section III-E; its payload is part of
// the tile-input bitstream.
type SetUniforms struct {
	First  int
	Values []geom.Vec4
}

// Draw submits a triangle list. Data holds the interleaved vertex
// attributes: NumAttrs vec4s per vertex, attribute 0 being the position
// (x, y, z, 1 in object space).
//
// Non-indexed draws (Indices == nil) require len(Data) to be a multiple of
// 3*NumAttrs. Indexed draws (glDrawElements-style) assemble triangles from
// Indices into the shared vertex array; each unique vertex is shaded once,
// the usual post-transform reuse of real GPUs.
type Draw struct {
	NumAttrs int
	Data     []geom.Vec4
	Indices  []uint16
}

// UploadProgram models glShaderSource/glLinkProgram-class calls. The driver
// registers them and disables Rendering Elimination for the frame (Section
// III-E).
type UploadProgram struct {
	ID      ProgramID
	Program *shader.Program
}

// UploadTexture models glTexImage2D-class calls; also an RE-disable trigger.
type UploadTexture struct {
	ID   TextureID
	Spec TextureSpec
}

// SetRenderTargets models binding multiple render targets; RE is disabled
// while N > 1 (Section III-E).
type SetRenderTargets struct {
	N int
}

func (SetPipeline) isCommand()      {}
func (SetUniforms) isCommand()      {}
func (Draw) isCommand()             {}
func (UploadProgram) isCommand()    {}
func (UploadTexture) isCommand()    {}
func (SetRenderTargets) isCommand() {}

// VertexCount returns the number of unique vertices in the drawcall (each
// is fetched and shaded once).
func (d Draw) VertexCount() int {
	if d.NumAttrs <= 0 {
		return 0
	}
	return len(d.Data) / d.NumAttrs
}

// TriangleCount returns the number of assembled triangles.
func (d Draw) TriangleCount() int {
	if d.Indices != nil {
		return len(d.Indices) / 3
	}
	return d.VertexCount() / 3
}

// TriVertexIndex returns the vertex-array index of corner k (0..2) of
// triangle tri.
func (d Draw) TriVertexIndex(tri, k int) int {
	if d.Indices != nil {
		return int(d.Indices[tri*3+k])
	}
	return tri*3 + k
}

// Validate checks the drawcall's shape.
func (d Draw) Validate() error {
	if d.NumAttrs < 1 || d.NumAttrs > MaxVertexAttrs {
		return fmt.Errorf("draw: NumAttrs %d out of range", d.NumAttrs)
	}
	if len(d.Data)%d.NumAttrs != 0 {
		return fmt.Errorf("draw: %d vec4s is not whole vertices of %d attrs", len(d.Data), d.NumAttrs)
	}
	if d.Indices == nil {
		if len(d.Data)%(3*d.NumAttrs) != 0 {
			return fmt.Errorf("draw: %d vec4s is not whole triangles of %d attrs", len(d.Data), d.NumAttrs)
		}
		return nil
	}
	if len(d.Indices)%3 != 0 {
		return fmt.Errorf("draw: %d indices is not whole triangles", len(d.Indices))
	}
	nv := d.VertexCount()
	for i, idx := range d.Indices {
		if int(idx) >= nv {
			return fmt.Errorf("draw: index %d at %d out of range (%d vertices)", idx, i, nv)
		}
	}
	return nil
}

// Frame is one frame's command stream; the implicit swap happens at the end.
type Frame struct {
	Commands []Command
}

// TextureKind selects a procedural texture generator.
type TextureKind uint8

// Texture kinds.
const (
	TexChecker TextureKind = iota
	TexGradient
	TexNoise
	TexDisc
)

// TextureSpec is a compact, reproducible description of a texture, so traces
// carry parameters instead of pixels.
type TextureSpec struct {
	Kind   TextureKind
	W, H   int
	Cell   int
	Seed   uint64
	A, B   geom.Vec4
	Amp    float32
	Filter texture.Filter
}

// Build synthesizes the texture.
func (s TextureSpec) Build(id int) *texture.Texture {
	t := texture.New(id, s.W, s.H)
	t.Filter = s.Filter
	switch s.Kind {
	case TexChecker:
		texture.FillChecker(t, s.Cell, s.A, s.B)
	case TexGradient:
		texture.FillGradient(t, s.A, s.B)
	case TexNoise:
		texture.FillNoise(t, s.Seed, s.Cell, s.A, s.Amp)
	case TexDisc:
		texture.FillDisc(t, s.A, s.B)
	}
	return t
}

// Trace is a fully self-contained recorded workload: shader and texture
// registries plus per-frame command streams.
type Trace struct {
	Name       string
	Width      int
	Height     int
	ClearColor geom.Vec4
	Programs   []*shader.Program
	Textures   []TextureSpec
	Frames     []Frame
}

// Validate checks the whole trace for referential integrity.
func (t *Trace) Validate() error {
	if t.Width <= 0 || t.Height <= 0 {
		return fmt.Errorf("trace %q: bad dimensions %dx%d", t.Name, t.Width, t.Height)
	}
	for i, p := range t.Programs {
		if p == nil {
			return fmt.Errorf("trace %q: nil program %d", t.Name, i)
		}
		if err := p.Validate(); err != nil {
			return fmt.Errorf("trace %q: %w", t.Name, err)
		}
	}
	for fi, f := range t.Frames {
		for ci, cmd := range f.Commands {
			switch c := cmd.(type) {
			case SetPipeline:
				if int(c.VS) >= len(t.Programs) || int(c.FS) >= len(t.Programs) {
					return fmt.Errorf("trace %q frame %d cmd %d: program id out of range", t.Name, fi, ci)
				}
				for _, tex := range c.Tex {
					if int(tex) >= len(t.Textures) {
						return fmt.Errorf("trace %q frame %d cmd %d: texture id %d out of range", t.Name, fi, ci, tex)
					}
				}
			case Draw:
				if err := c.Validate(); err != nil {
					return fmt.Errorf("trace %q frame %d cmd %d: %w", t.Name, fi, ci, err)
				}
			case SetUniforms:
				if c.First < 0 || c.First+len(c.Values) > shader.MaxConsts {
					return fmt.Errorf("trace %q frame %d cmd %d: uniform range [%d,%d) out of bounds",
						t.Name, fi, ci, c.First, c.First+len(c.Values))
				}
			case SetRenderTargets:
				if c.N < 1 {
					return fmt.Errorf("trace %q frame %d cmd %d: render targets %d", t.Name, fi, ci, c.N)
				}
			}
		}
	}
	return nil
}
