package texture

import (
	"testing"
	"testing/quick"

	"rendelim/internal/geom"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(r, g, b, a uint8) bool {
		p := uint32(r) | uint32(g)<<8 | uint32(b)<<16 | uint32(a)<<24
		return PackColor(UnpackColor(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackColorClamps(t *testing.T) {
	if PackColor(geom.V4(2, -1, 0.5, 1)) != PackColor(geom.V4(1, 0, 0.5, 1)) {
		t.Fatal("PackColor should clamp")
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 0, 4)
}

func TestAtSetClamping(t *testing.T) {
	tx := New(1, 4, 4)
	tx.Set(2, 3, 0xDEADBEEF)
	if tx.At(2, 3) != 0xDEADBEEF {
		t.Fatal("Set/At round trip failed")
	}
	if tx.At(-5, 100) != tx.At(0, 3) {
		t.Fatal("At should clamp out-of-range coords")
	}
	tx.Set(-1, 0, 1) // must not panic
	tx.Set(0, 99, 1)
}

func TestNearestSampleCenters(t *testing.T) {
	tx := New(1, 2, 2)
	tx.Filter = Nearest
	tx.Set(0, 0, PackColor(geom.V4(1, 0, 0, 1)))
	tx.Set(1, 0, PackColor(geom.V4(0, 1, 0, 1)))
	tx.Set(0, 1, PackColor(geom.V4(0, 0, 1, 1)))
	tx.Set(1, 1, PackColor(geom.V4(1, 1, 1, 1)))

	got := tx.Sample(0.25, 0.25, nil)
	if got != geom.V4(1, 0, 0, 1) {
		t.Fatalf("sample(0.25,0.25) = %v", got)
	}
	got = tx.Sample(0.75, 0.75, nil)
	if got != geom.V4(1, 1, 1, 1) {
		t.Fatalf("sample(0.75,0.75) = %v", got)
	}
	// GL_REPEAT wrap: u=1.25 is the same as u=0.25.
	if tx.Sample(1.25, 0.25, nil) != tx.Sample(0.25, 0.25, nil) {
		t.Fatal("repeat wrap failed")
	}
	if tx.Sample(-0.75, 0.25, nil) != tx.Sample(0.25, 0.25, nil) {
		t.Fatal("negative wrap failed")
	}
}

func TestBilinearInterpolatesMidpoint(t *testing.T) {
	tx := New(1, 2, 1)
	tx.Set(0, 0, PackColor(geom.V4(0, 0, 0, 1)))
	tx.Set(1, 0, PackColor(geom.V4(1, 1, 1, 1)))
	// u=0.5 lies exactly between the two texel centers.
	got := tx.Sample(0.5, 0.5, nil)
	if got.X < 0.45 || got.X > 0.55 {
		t.Fatalf("bilinear midpoint = %v", got)
	}
}

func TestBilinearConstantTextureIsConstant(t *testing.T) {
	tx := New(1, 8, 8)
	c := PackColor(geom.V4(0.25, 0.5, 0.75, 1))
	for i := range tx.Pix {
		tx.Pix[i] = c
	}
	f := func(u, v float32) bool {
		if u != u || v != v || u > 1e6 || u < -1e6 || v > 1e6 || v < -1e6 {
			return true
		}
		return PackColor(tx.Sample(u, v, nil)) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleVisitsTexelAddresses(t *testing.T) {
	tx := New(1, 4, 4)
	tx.Base = 0x1000

	var addrs []uint64
	visit := func(a uint64) { addrs = append(addrs, a) }

	tx.Filter = Nearest
	tx.Sample(0.1, 0.1, visit)
	if len(addrs) != 1 || addrs[0] != 0x1000 {
		t.Fatalf("nearest visit = %v", addrs)
	}

	addrs = nil
	tx.Filter = Bilinear
	tx.Sample(0.5, 0.5, visit)
	if len(addrs) != 4 {
		t.Fatalf("bilinear should visit 4 texels, got %v", addrs)
	}
	for _, a := range addrs {
		if a < 0x1000 || a >= 0x1000+uint64(tx.Bytes()) {
			t.Fatalf("texel address %#x outside texture", a)
		}
	}
}

func TestFillCheckerPattern(t *testing.T) {
	tx := New(1, 8, 8)
	a, b := geom.V4(1, 0, 0, 1), geom.V4(0, 0, 1, 1)
	FillChecker(tx, 2, a, b)
	if tx.At(0, 0) != PackColor(a) {
		t.Fatal("checker corner wrong")
	}
	if tx.At(4, 0) != PackColor(b) {
		t.Fatal("checker alternate cell wrong")
	}
	if tx.At(4, 4) != PackColor(a) {
		t.Fatal("checker diagonal cell wrong")
	}
}

func TestFillGradientMonotonic(t *testing.T) {
	tx := New(1, 2, 16)
	FillGradient(tx, geom.V4(0, 0, 0, 1), geom.V4(1, 1, 1, 1))
	prev := float32(-1)
	for y := 0; y < tx.H; y++ {
		v := UnpackColor(tx.At(0, y)).X
		if v < prev {
			t.Fatalf("gradient not monotonic at y=%d: %v < %v", y, v, prev)
		}
		prev = v
	}
}

func TestFillNoiseDeterministicAndSeedSensitive(t *testing.T) {
	mk := func(seed uint64) *Texture {
		tx := New(1, 16, 16)
		FillNoise(tx, seed, 4, geom.V4(0.5, 0.5, 0.5, 1), 0.3)
		return tx
	}
	a, b, c := mk(7), mk(7), mk(8)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("noise not deterministic")
		}
	}
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("noise ignores seed")
	}
}

func TestFillDiscCenterAndCorner(t *testing.T) {
	tx := New(1, 16, 16)
	fg, bg := geom.V4(1, 1, 0, 1), geom.V4(0, 0, 0, 0)
	FillDisc(tx, fg, bg)
	if tx.At(8, 8) != PackColor(fg) {
		t.Fatal("disc center not foreground")
	}
	if tx.At(0, 0) != PackColor(bg) {
		t.Fatal("disc corner not background")
	}
}
