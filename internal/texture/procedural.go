package texture

import "rendelim/internal/geom"

// Procedural texture synthesis. These stand in for game art; each generator
// is a pure function of its parameters and the texture size, so traces are
// reproducible without shipping image assets.

// xorshift is a tiny deterministic PRNG for texture noise, independent of
// math/rand so texel values never change across Go releases.
type xorshift uint64

func (s *xorshift) next() uint32 {
	x := uint64(*s)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = xorshift(x)
	return uint32(x >> 32)
}

// FillChecker paints an nxn checkerboard with the two colors.
func FillChecker(t *Texture, n int, a, b geom.Vec4) {
	if n < 1 {
		n = 1
	}
	pa, pb := PackColor(a), PackColor(b)
	cw := (t.W + n - 1) / n
	ch := (t.H + n - 1) / n
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			if ((x/cw)+(y/ch))%2 == 0 {
				t.Pix[y*t.W+x] = pa
			} else {
				t.Pix[y*t.W+x] = pb
			}
		}
	}
}

// FillGradient paints a vertical gradient from top to bottom.
func FillGradient(t *Texture, top, bottom geom.Vec4) {
	for y := 0; y < t.H; y++ {
		f := float32(y) / float32(max(t.H-1, 1))
		c := PackColor(top.Lerp(bottom, f))
		for x := 0; x < t.W; x++ {
			t.Pix[y*t.W+x] = c
		}
	}
}

// FillNoise paints seeded value noise: blocky random tiles of the base color
// perturbed by amp.
func FillNoise(t *Texture, seed uint64, cell int, base geom.Vec4, amp float32) {
	if cell < 1 {
		cell = 1
	}
	rng := xorshift(seed | 1)
	cols := (t.W + cell - 1) / cell
	rows := (t.H + cell - 1) / cell
	cellColor := make([]uint32, cols*rows)
	for i := range cellColor {
		d := (float32(rng.next()%1000)/1000 - 0.5) * 2 * amp
		cellColor[i] = PackColor(geom.V4(base.X+d, base.Y+d, base.Z+d, base.W))
	}
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			t.Pix[y*t.W+x] = cellColor[(y/cell)*cols+x/cell]
		}
	}
}

// FillDisc paints a filled disc of color fg over bg, for sprite-like art.
func FillDisc(t *Texture, fg, bg geom.Vec4) {
	pf, pb := PackColor(fg), PackColor(bg)
	cx := float32(t.W) / 2
	cy := float32(t.H) / 2
	r := minf(cx, cy) * 0.9
	for y := 0; y < t.H; y++ {
		for x := 0; x < t.W; x++ {
			dx := float32(x) + 0.5 - cx
			dy := float32(y) + 0.5 - cy
			if dx*dx+dy*dy <= r*r {
				t.Pix[y*t.W+x] = pf
			} else {
				t.Pix[y*t.W+x] = pb
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}
