// Package texture provides the RGBA8 texture store of the simulated GPU:
// storage, nearest/bilinear sampling, and the texel address stream the
// texture-cache model consumes. Textures are procedural and seeded, standing
// in for the game art of the paper's benchmarks (see DESIGN.md §1).
package texture

import (
	"fmt"
	"math"

	"rendelim/internal/geom"
)

// Filter selects the sampling filter.
type Filter uint8

// Supported filters.
const (
	Nearest Filter = iota
	Bilinear
)

// Texture is a W x H RGBA8 image. Pix is row-major packed 0xAABBGGRR
// (little-endian RGBA bytes), 4 bytes per texel.
type Texture struct {
	ID     int
	W, H   int
	Pix    []uint32
	Filter Filter
	// Base is the texture's simulated main-memory base address, assigned
	// by the GPU's memory layout so texel fetches produce cacheable
	// addresses.
	Base uint64
}

// New allocates a black texture of the given size.
func New(id, w, h int) *Texture {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("texture: invalid size %dx%d", w, h))
	}
	return &Texture{ID: id, W: w, H: h, Pix: make([]uint32, w*h), Filter: Bilinear}
}

// Bytes returns the texture's storage footprint in bytes.
func (t *Texture) Bytes() int { return len(t.Pix) * 4 }

// At returns the texel at (x,y) clamped to the texture bounds.
func (t *Texture) At(x, y int) uint32 {
	if x < 0 {
		x = 0
	} else if x >= t.W {
		x = t.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= t.H {
		y = t.H - 1
	}
	return t.Pix[y*t.W+x]
}

// Set writes the texel at (x,y); out-of-bounds writes are ignored.
func (t *Texture) Set(x, y int, c uint32) {
	if x < 0 || y < 0 || x >= t.W || y >= t.H {
		return
	}
	t.Pix[y*t.W+x] = c
}

// Addr returns the simulated memory address of texel (x,y), clamped.
func (t *Texture) Addr(x, y int) uint64 {
	if x < 0 {
		x = 0
	} else if x >= t.W {
		x = t.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= t.H {
		y = t.H - 1
	}
	return t.Base + uint64(y*t.W+x)*4
}

// PackColor converts a float color in [0,1] to packed RGBA8.
func PackColor(c geom.Vec4) uint32 {
	c = c.Clamp01()
	r := uint32(c.X*255 + 0.5)
	g := uint32(c.Y*255 + 0.5)
	b := uint32(c.Z*255 + 0.5)
	a := uint32(c.W*255 + 0.5)
	return r | g<<8 | b<<16 | a<<24
}

// UnpackColor converts packed RGBA8 to a float color.
func UnpackColor(p uint32) geom.Vec4 {
	return geom.V4(
		float32(p&0xFF)/255,
		float32(p>>8&0xFF)/255,
		float32(p>>16&0xFF)/255,
		float32(p>>24&0xFF)/255,
	)
}

// TexelVisitor receives the address of every texel a sample touches, so the
// GPU can drive its texture caches. It may be nil.
type TexelVisitor func(addr uint64)

// Sample samples the texture at normalized coordinates (u,v) with its
// configured filter, wrapping with GL_REPEAT semantics, and reports the
// touched texel addresses to visit.
func (t *Texture) Sample(u, v float32, visit TexelVisitor) geom.Vec4 {
	switch t.Filter {
	case Nearest:
		x := wrapCoord(u, t.W)
		y := wrapCoord(v, t.H)
		if visit != nil {
			visit(t.Addr(x, y))
		}
		return UnpackColor(t.At(x, y))
	default: // Bilinear
		fx := wrapf(u)*float32(t.W) - 0.5
		fy := wrapf(v)*float32(t.H) - 0.5
		x0 := int(floorf(fx))
		y0 := int(floorf(fy))
		tx := fx - float32(x0)
		ty := fy - float32(y0)
		x0 = wrapIdx(x0, t.W)
		y0 = wrapIdx(y0, t.H)
		x1 := wrapIdx(x0+1, t.W)
		y1 := wrapIdx(y0+1, t.H)
		if visit != nil {
			visit(t.Addr(x0, y0))
			visit(t.Addr(x1, y0))
			visit(t.Addr(x0, y1))
			visit(t.Addr(x1, y1))
		}
		c00 := UnpackColor(t.At(x0, y0))
		c10 := UnpackColor(t.At(x1, y0))
		c01 := UnpackColor(t.At(x0, y1))
		c11 := UnpackColor(t.At(x1, y1))
		top := c00.Lerp(c10, tx)
		bot := c01.Lerp(c11, tx)
		return top.Lerp(bot, ty)
	}
}

func wrapf(u float32) float32 {
	w := u - floorf(u)
	if w < 0 { // defensive; floorf guarantees w in [0,1)
		w = 0
	}
	return w
}

func wrapCoord(u float32, n int) int {
	return wrapIdx(int(floorf(wrapf(u)*float32(n))), n)
}

func wrapIdx(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

func floorf(v float32) float32 { return float32(math.Floor(float64(v))) }
