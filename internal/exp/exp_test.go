package exp

import (
	"strings"
	"testing"

	"rendelim/internal/gpusim"
	"rendelim/internal/stats"
	"rendelim/internal/workload"
)

// The shape assertions below encode the paper's qualitative claims — who
// wins, roughly by how much, and where the crossovers fall — at a reduced
// scale (small screen, few frames), which is what a reproduction must
// preserve even when absolute numbers differ.

var testRunner = NewRunner(workload.Params{Width: 256, Height: 160, Frames: 12, Seed: 1})

func value(t *testing.T, tb *stats.Table, row string, col int) float64 {
	t.Helper()
	for _, r := range tb.Rows {
		if r.Label == row {
			if col >= len(r.Values) {
				t.Fatalf("row %s has no column %d", row, col)
			}
			return r.Values[col]
		}
	}
	t.Fatalf("row %q not found in %q", row, tb.Title)
	return 0
}

func TestSuiteAliasesOrder(t *testing.T) {
	want := []string{"ccs", "cde", "coc", "ctr", "hop", "mst", "abi", "csn", "ter", "tib"}
	got := SuiteAliases()
	if len(got) != len(want) {
		t.Fatal("alias count")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("alias %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestResultCaching(t *testing.T) {
	r := NewRunner(workload.Params{Width: 96, Height: 64, Frames: 4, Seed: 1})
	a := r.Result("ccs", gpusim.Baseline)
	b := r.Result("ccs", gpusim.Baseline)
	if a.Total.TotalCycles() != b.Total.TotalCycles() {
		t.Fatal("cache returned different results")
	}
	// Different variants must not collide in the cache.
	c := r.ResultCfg("ccs", gpusim.Baseline, Config{
		Tag:    "half-lut",
		Mutate: func(cfg *gpusim.Config) { cfg.MemoLUTEntries = 512 },
	})
	_ = c
}

func TestFig02Shape(t *testing.T) {
	tb := testRunner.Fig02()
	// First category (static cameras): high equality.
	for _, a := range []string{"ccs", "cde", "coc", "ctr", "hop"} {
		if v := value(t, tb, a, 0); v < 80 {
			t.Errorf("%s equal tiles = %.1f%%, want > 80%% (Figure 2 first category)", a, v)
		}
	}
	// Continuous motion: near zero.
	if v := value(t, tb, "mst", 0); v > 5 {
		t.Errorf("mst equal tiles = %.1f%%, want ~0%%", v)
	}
	// Phase-mixed: in between.
	for _, a := range []string{"abi", "csn", "ter", "tib"} {
		v := value(t, tb, a, 0)
		if v < 15 || v > 90 {
			t.Errorf("%s equal tiles = %.1f%%, want intermediate", a, v)
		}
	}
}

func TestFig14aShape(t *testing.T) {
	tb := testRunner.Fig14a()
	// RE never slows any benchmark by more than 1%.
	for _, a := range SuiteAliases() {
		if v := value(t, tb, a, 4); v > 1.01 {
			t.Errorf("%s normalized RE cycles = %.3f > 1.01", a, v)
		}
	}
	// cde achieves the largest reduction (the paper's 86% peak).
	cde := value(t, tb, "cde", 4)
	for _, a := range SuiteAliases() {
		if a == "cde" {
			continue
		}
		if v := value(t, tb, a, 4); v < cde-1e-9 {
			t.Errorf("%s (%.3f) beats cde (%.3f); cde should lead", a, v, cde)
		}
	}
	// Meaningful average speedup (paper: 1.74x at full scale).
	if v := value(t, tb, "AVG", 5); v < 1.3 {
		t.Errorf("average speedup %.2fx too low", v)
	}
	// mst gains nothing.
	if v := value(t, tb, "mst", 5); v < 0.99 || v > 1.01 {
		t.Errorf("mst speedup %.3f, want ~1.0", v)
	}
}

func TestFig14bShape(t *testing.T) {
	tb := testRunner.Fig14b()
	if v := value(t, tb, "AVG", 4); v > 0.75 {
		t.Errorf("average normalized RE energy %.3f, want well below baseline", v)
	}
	if v := value(t, tb, "mst", 4); v > 1.01 {
		t.Errorf("mst RE energy overhead %.3f > 1%%", v)
	}
}

func TestFig15aShape(t *testing.T) {
	tb := testRunner.Fig15a()
	for _, a := range SuiteAliases() {
		// The paper observed zero equal-inputs/different-colors tiles;
		// with CRC32 we must too.
		if v := value(t, tb, a, 3); v != 0 {
			t.Errorf("%s: %.3f%% equal-input different-color tiles (collision!)", a, v)
		}
	}
	// The false-negative class (equal colors, different inputs) exists on
	// average (paper: 12%).
	if v := value(t, tb, "AVG", 1); v < 2 {
		t.Errorf("avg equal-color-diff-input = %.1f%%, want a visible share", v)
	}
	// hop is dominated by false negatives (its flicker overlay).
	if v := value(t, tb, "hop", 1); v < 20 {
		t.Errorf("hop equal-color-diff-input = %.1f%%, want large", v)
	}
}

func TestFig15bShape(t *testing.T) {
	tb := testRunner.Fig15b()
	if v := value(t, tb, "AVG", 6); v > 0.8 {
		t.Errorf("average RE raster traffic %.3f, want clear reduction", v)
	}
	if v := value(t, tb, "mst", 6); v < 0.99 {
		t.Errorf("mst RE traffic %.3f, want ~1.0", v)
	}
}

func TestFig16Shape(t *testing.T) {
	tb := testRunner.Fig16()
	// RE reuses more than memoization in the majority of benchmarks...
	reWins := 0
	for _, a := range SuiteAliases() {
		if value(t, tb, a, 0) < value(t, tb, a, 1) {
			reWins++
		}
	}
	if reWins < 6 {
		t.Errorf("RE beats memo on only %d/10 benchmarks", reWins)
	}
	// ...except hop, where intra-frame fragment repetition favors memo.
	if value(t, tb, "hop", 1) >= value(t, tb, "hop", 0) {
		t.Error("hop: memoization should shade fewer fragments than RE (the paper's exception)")
	}
}

func TestFig17Shape(t *testing.T) {
	a := testRunner.Fig17a()
	b := testRunner.Fig17b()
	// TE saves little time; RE much more (Figure 17a).
	if te, re := value(t, a, "AVG", 0), value(t, a, "AVG", 1); te < re {
		t.Errorf("TE cycles (%.3f) should exceed RE cycles (%.3f)", te, re)
	}
	// Energy: TE ~ -10%, RE much deeper (Figure 17b: 9%% vs 43%%).
	te := value(t, b, "AVG", 0)
	re := value(t, b, "AVG", 1)
	if te < 0.75 || te > 1.0 {
		t.Errorf("TE normalized energy %.3f outside the plausible band", te)
	}
	if re > te {
		t.Errorf("RE energy (%.3f) should beat TE (%.3f) on average", re, te)
	}
	// cde: RE gains a large additional margin over TE (paper: 65% extra).
	if gap := value(t, b, "cde", 0) - value(t, b, "cde", 1); gap < 0.3 {
		t.Errorf("cde TE-RE energy gap %.3f, want large", gap)
	}
}

func TestOverheadShape(t *testing.T) {
	tb := testRunner.Overhead()
	// SU stalls: small fraction of geometry cycles (paper: 0.64% avg).
	if v := value(t, tb, "AVG", 0); v > 5 {
		t.Errorf("avg SU stall %.2f%% of geometry, want small", v)
	}
	// RE energy overhead below 0.5% of total (paper's claim).
	if v := value(t, tb, "AVG", 2); v > 1.0 {
		t.Errorf("avg RE energy overhead %.2f%%, want < 1%%", v)
	}
}

func TestHashAblationShape(t *testing.T) {
	tb := testRunner.HashAblation()
	// CRC32: zero false positives everywhere.
	if value(t, tb, "crc32", 1) != 0 || value(t, tb, "crc32", 2) != 0 {
		t.Error("crc32 produced false positives")
	}
	// Order-insensitive schemes collide on the adversarial workload.
	if value(t, tb, "xor-fold", 2) == 0 {
		t.Error("xor-fold should alias the adversarial order swap")
	}
	if value(t, tb, "add32", 2) == 0 {
		t.Error("add32 should alias the adversarial order swap")
	}
}

func TestTablesRender(t *testing.T) {
	if !strings.Contains(testRunner.TableI(), "Tile size") {
		t.Error("Table I missing content")
	}
	if !strings.Contains(testRunner.TableII(), "Candy Crush Saga") {
		t.Error("Table II missing content")
	}
}

func TestFig01Shape(t *testing.T) {
	tb := testRunner.Fig01()
	desktop := value(t, tb, "desktop", 0)
	antutu := value(t, tb, "antutu", 0)
	ccs := value(t, tb, "ccs", 0)
	// Figure 1's point: a simple game draws far more power than the idle
	// desktop and is comparable to a dedicated stress test.
	if ccs < desktop*1.4 {
		t.Errorf("ccs power (%.1f mW) should clearly exceed desktop (%.1f mW)", ccs, desktop)
	}
	if antutu < ccs {
		t.Errorf("antutu (%.1f mW) should exceed a simple game (%.1f mW)", antutu, ccs)
	}
	// Desktop GPU load is near zero; games keep the GPU visibly busy.
	if l := value(t, tb, "desktop", 1); l > 1.5 {
		t.Errorf("desktop load %.1f%%, want near idle", l)
	}
	if l := value(t, tb, "mst", 1); l < 2 {
		t.Errorf("mst load %.1f%%, want visibly busy", l)
	}
}

func TestAblationTablesNonEmpty(t *testing.T) {
	small := NewRunner(workload.Params{Width: 128, Height: 96, Frames: 6, Seed: 1})
	for _, tb := range []*stats.Table{
		small.OTQueueAblation(),
		small.MemoLUTAblation(),
		small.RefreshAblation(),
		small.SubblockTradeoff(),
	} {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty", tb.Title)
		}
	}
	// Subblock sanity: the paper's 8-byte point gives 8 and 18 cycles.
	tb := small.SubblockTradeoff()
	if value(t, tb, "8-byte", 1) != 8 || value(t, tb, "8-byte", 2) != 18 {
		t.Error("8-byte subblock latencies should be 8 and 18 cycles (Section III-G)")
	}
}
