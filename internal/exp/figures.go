package exp

import (
	"fmt"

	"rendelim/internal/energy"
	"rendelim/internal/gpusim"
	"rendelim/internal/stats"
	"rendelim/internal/timing"
	"rendelim/internal/workload"
)

// Fig01 reproduces Figure 1: average power (mW) and normalized GPU load per
// application, with the Android desktop and an Antutu-like stress test as
// references. Real devices render at a fixed refresh rate and the GPU idles
// (static power only) between frames, so average power is total energy over
// the 60 fps wall-clock window, and GPU load is the busy fraction of that
// window — the duty-cycling that makes the idle desktop cheap and a
// stress test expensive.
func (r *Runner) Fig01() *stats.Table {
	t := stats.NewTable("Figure 1: average power (mW) and GPU load (%)", "power_mW", "load_%")
	em := energy.Default()
	tm := timing.Default()
	aliases := append([]string{"desktop"}, SuiteAliases()...)
	aliases = append(aliases, "antutu")
	// Idle (power-gated) static power as a fraction of active static.
	const idleFraction = 0.05
	for _, a := range aliases {
		res := r.Result(a, gpusim.Baseline)
		busy := float64(res.Total.TotalCycles())
		wall := tm.FreqHz / 60 * float64(r.Params.Frames)
		if busy > wall { // the workload cannot hold 60 fps
			wall = busy
		}
		// Dynamic energy from activity; full static while busy, gated
		// static while idle.
		act := res.Total.Activity
		act.Cycles = 0
		dyn := em.Compute(act).Total()
		static := em.StaticGPU + em.StaticDRAM
		busySec := busy / tm.FreqHz
		wallSec := wall / tm.FreqHz
		e := dyn + static*busySec + idleFraction*static*(wallSec-busySec)
		t.Add(a, e/wallSec*1000, busy/wall*100)
	}
	return t
}

// Fig02 reproduces Figure 2: percentage of tiles producing the same color as
// the preceding (same-parity) frame.
func (r *Runner) Fig02() *stats.Table {
	t := stats.NewTable("Figure 2: equal tiles (%)", "equal_%")
	for _, a := range SuiteAliases() {
		res := r.Result(a, gpusim.Baseline)
		t.Add(a, res.Total.EqualColorFraction()*100)
	}
	t.AddAverage()
	return t
}

// TableI reproduces Table I: the simulated GPU parameters.
func (r *Runner) TableI() string {
	cfg := gpusim.DefaultConfig()
	d := cfg.DRAM
	return fmt.Sprintf(`Table I: GPU simulation parameters
----------------------------------
Tech specs          %0.f MHz, 32 nm model
Screen resolution   %dx%d (paper: 1196x768; shape-preserving scale)
Tile size           16x16 pixels
Main memory         dual channel, %d B/cycle aggregate, 50-100 cycle band
Vertex cache        %d KB, %d-way, %d B lines
Texture caches (4x) %d KB, %d-way, %d B lines
Tile cache          %d KB, %d-way, %d banks
L2 cache            %d KB, %d-way, %d banks, %d cycle
Color/Depth buffer  on-chip tile buffers (16x16)
Primitive assembly  %d triangle/cycle
Rasterizer          %d attributes/cycle
Vertex processors   %d
Fragment processors %d
`,
		cfg.Timing.FreqHz/1e6,
		r.Params.Width, r.Params.Height,
		d.Channels*d.BytesPerCycle,
		cfg.VertexCache.SizeBytes>>10, cfg.VertexCache.Ways, cfg.VertexCache.LineBytes,
		cfg.TextureCache.SizeBytes>>10, cfg.TextureCache.Ways, cfg.TextureCache.LineBytes,
		cfg.TileCache.SizeBytes>>10, cfg.TileCache.Ways, cfg.TileCache.Banks,
		cfg.L2Cache.SizeBytes>>10, cfg.L2Cache.Ways, cfg.L2Cache.Banks, cfg.L2Cache.Latency,
		cfg.Timing.TrianglesPerCycle, cfg.Timing.RasterAttrsPerCycle,
		cfg.Timing.VertexProcessors, cfg.Timing.FragmentProcessors)
}

// TableII reproduces Table II: the benchmark suite.
func (r *Runner) TableII() string {
	out := "Table II: benchmark suite\n-------------------------\n"
	for _, b := range workload.Suite() {
		out += fmt.Sprintf("%-20s %-5s %-22s %s\n", b.Name, b.Alias, b.Genre, b.Type)
	}
	return out
}

// Fig14a reproduces Figure 14a: execution cycles of RE normalized to the
// baseline, split into geometry and raster cycles.
func (r *Runner) Fig14a() *stats.Table {
	t := stats.NewTable("Figure 14a: normalized execution cycles (Base vs RE)",
		"base_geom", "base_raster", "re_geom", "re_raster", "re_total", "speedup")
	for _, a := range SuiteAliases() {
		base := r.Result(a, gpusim.Baseline).Total
		re := r.Result(a, gpusim.RE).Total
		bt := float64(base.TotalCycles())
		t.Add(a,
			float64(base.GeometryCycles)/bt,
			float64(base.RasterCycles)/bt,
			float64(re.GeometryCycles)/bt,
			float64(re.RasterCycles)/bt,
			float64(re.TotalCycles())/bt,
			bt/float64(re.TotalCycles()))
	}
	t.AddAverage()
	return t
}

// energySplit returns (gpu, mem) joules for a result.
func energySplit(res gpusim.Result) (gpu, mem float64) {
	b := energy.Default().Compute(res.Total.Activity)
	return b.GPU(), b.Memory()
}

// Fig14b reproduces Figure 14b: energy of RE normalized to the baseline,
// split into GPU and main-memory energy.
func (r *Runner) Fig14b() *stats.Table {
	t := stats.NewTable("Figure 14b: normalized energy (Base vs RE)",
		"base_gpu", "base_mem", "re_gpu", "re_mem", "re_total")
	for _, a := range SuiteAliases() {
		bg, bm := energySplit(r.Result(a, gpusim.Baseline))
		rg, rm := energySplit(r.Result(a, gpusim.RE))
		bt := bg + bm
		t.Add(a, bg/bt, bm/bt, rg/bt, rm/bt, (rg+rm)/bt)
	}
	t.AddAverage()
	return t
}

// Fig15a reproduces Figure 15a: tile classification against the frame two
// swaps back — equal colors & inputs (RE-detectable), equal colors with
// different inputs (false negatives), different colors, and the must-be-zero
// equal-inputs/different-colors class.
func (r *Runner) Fig15a() *stats.Table {
	t := stats.NewTable("Figure 15a: tile classes (%)",
		"eq_col_eq_in", "eq_col_diff_in", "diff", "eq_in_diff_col")
	for _, a := range SuiteAliases() {
		res := r.Result(a, gpusim.Baseline).Total
		n := float64(res.TilesClassified)
		if n == 0 {
			n = 1
		}
		t.Add(a,
			float64(res.TileClasses[gpusim.TileEqColorEqInput])/n*100,
			float64(res.TileClasses[gpusim.TileEqColorDiffInput])/n*100,
			float64(res.TileClasses[gpusim.TileDiffColor])/n*100,
			float64(res.TileClasses[gpusim.TileEqInputDiffColor])/n*100)
	}
	t.AddAverage()
	return t
}

// Fig15b reproduces Figure 15b: Raster Pipeline main-memory traffic of RE
// normalized to the baseline, split into colors, texels and primitives.
func (r *Runner) Fig15b() *stats.Table {
	t := stats.NewTable("Figure 15b: normalized raster-pipeline DRAM traffic",
		"base_colors", "base_texels", "base_prims", "re_colors", "re_texels", "re_prims", "re_total")
	for _, a := range SuiteAliases() {
		base := r.Result(a, gpusim.Baseline).Total
		re := r.Result(a, gpusim.RE).Total
		bt := float64(base.RasterTraffic())
		if bt == 0 {
			bt = 1
		}
		t.Add(a,
			float64(base.Traffic[gpusim.TrafficColor])/bt,
			float64(base.Traffic[gpusim.TrafficTexel])/bt,
			float64(base.Traffic[gpusim.TrafficPBRead])/bt,
			float64(re.Traffic[gpusim.TrafficColor])/bt,
			float64(re.Traffic[gpusim.TrafficTexel])/bt,
			float64(re.Traffic[gpusim.TrafficPBRead])/bt,
			float64(re.RasterTraffic())/bt)
	}
	t.AddAverage()
	return t
}

// Fig16 reproduces Figure 16: fragments shaded under RE and under PFR-aided
// Fragment Memoization, normalized to the baseline.
func (r *Runner) Fig16() *stats.Table {
	t := stats.NewTable("Figure 16: fragments shaded normalized to baseline", "re", "memo")
	for _, a := range SuiteAliases() {
		base := float64(r.Result(a, gpusim.Baseline).Total.FragsShaded)
		if base == 0 {
			base = 1
		}
		re := float64(r.Result(a, gpusim.RE).Total.FragsShaded)
		memo := float64(r.Result(a, gpusim.Memo).Total.FragsShaded)
		t.Add(a, re/base, memo/base)
	}
	t.AddAverage()
	return t
}

// Fig17a reproduces Figure 17a: execution cycles of TE and RE normalized to
// the baseline.
func (r *Runner) Fig17a() *stats.Table {
	t := stats.NewTable("Figure 17a: normalized cycles (TE vs RE)", "te", "re")
	for _, a := range SuiteAliases() {
		base := float64(r.Result(a, gpusim.Baseline).Total.TotalCycles())
		te := float64(r.Result(a, gpusim.TE).Total.TotalCycles())
		re := float64(r.Result(a, gpusim.RE).Total.TotalCycles())
		t.Add(a, te/base, re/base)
	}
	t.AddAverage()
	return t
}

// Fig17b reproduces Figure 17b: energy of TE and RE normalized to the
// baseline.
func (r *Runner) Fig17b() *stats.Table {
	t := stats.NewTable("Figure 17b: normalized energy (TE vs RE)", "te", "re")
	for _, a := range SuiteAliases() {
		bg, bm := energySplit(r.Result(a, gpusim.Baseline))
		tg, tm := energySplit(r.Result(a, gpusim.TE))
		rg, rm := energySplit(r.Result(a, gpusim.RE))
		t.Add(a, (tg+tm)/(bg+bm), (rg+rm)/(bg+bm))
	}
	t.AddAverage()
	return t
}

// Overhead reproduces the Section V overhead discussion: SU stall cycles as
// a percentage of geometry cycles (paper: 0.64% avg), the compare cost as a
// percentage of total cycles, and the RE energy overhead share.
func (r *Runner) Overhead() *stats.Table {
	t := stats.NewTable("Section V: RE overheads",
		"su_stall_%geom", "compare_%total", "energy_ovh_%")
	em := energy.Default()
	for _, a := range SuiteAliases() {
		re := r.Result(a, gpusim.RE).Total
		geom := float64(re.GeometryCycles)
		if geom == 0 {
			geom = 1
		}
		cmp := float64(re.TilesTotal) * 4
		eb := em.Compute(re.Activity)
		t.Add(a,
			float64(re.SUStallCycles)/geom*100,
			cmp/float64(re.TotalCycles())*100,
			eb.REOverhead/eb.Total()*100)
	}
	t.AddAverage()
	return t
}
