// Package exp regenerates every table and figure of the paper's evaluation
// (Section V) from simulation runs: the per-benchmark, per-technique runs
// are cached and shared across figures, so a full reproduction costs one
// Baseline + RE + TE + Memo run per benchmark. Each figure function returns
// a stats.Table whose rows mirror the paper's bars/series.
package exp

import (
	"fmt"
	"runtime"
	"sync"

	"rendelim/internal/gpusim"
	"rendelim/internal/workload"
)

// Runner caches simulation results across figures.
type Runner struct {
	Params workload.Params

	mu    sync.Mutex
	cache map[string]gpusim.Result
}

// NewRunner builds a runner at the given workload scale.
func NewRunner(p workload.Params) *Runner {
	return &Runner{Params: p, cache: make(map[string]gpusim.Result)}
}

// trace resolves an alias to its builder (suite, extras, or the adversarial
// hash-ablation workload).
func (r *Runner) trace(alias string) (*workload.Benchmark, error) {
	if alias == "adversarial" {
		b := workload.Benchmark{Alias: alias, Name: "Hash Adversary", Build: workload.Adversarial}
		return &b, nil
	}
	b, err := workload.ByAlias(alias)
	if err != nil {
		return nil, err
	}
	return &b, nil
}

// Config customizes a run beyond the technique (hash scheme, queue depth,
// memo LUT size, refresh interval). Tag must uniquely identify the variant
// for caching.
type Config struct {
	Tag    string
	Mutate func(*gpusim.Config)
}

// Result returns the (cached) outcome of one benchmark under a technique.
func (r *Runner) Result(alias string, tech gpusim.Technique) gpusim.Result {
	return r.ResultCfg(alias, tech, Config{})
}

// ResultCfg returns the (cached) outcome of a customized run.
func (r *Runner) ResultCfg(alias string, tech gpusim.Technique, variant Config) gpusim.Result {
	key := fmt.Sprintf("%s/%s/%s", alias, tech, variant.Tag)
	r.mu.Lock()
	if res, ok := r.cache[key]; ok {
		r.mu.Unlock()
		return res
	}
	r.mu.Unlock()

	b, err := r.trace(alias)
	if err != nil {
		panic(err) // experiment misconfiguration, not a runtime condition
	}
	tr := b.Build(r.Params)
	cfg := gpusim.DefaultConfig()
	cfg.Technique = tech
	if variant.Mutate != nil {
		variant.Mutate(&cfg)
	}
	sim, err := gpusim.New(tr, cfg)
	if err != nil {
		panic(err)
	}
	res := sim.Run()

	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	return res
}

// Prefetch computes the given (alias, technique) pairs in parallel, warming
// the cache.
func (r *Runner) Prefetch(aliases []string, techs []gpusim.Technique) {
	type job struct {
		alias string
		tech  gpusim.Technique
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				r.Result(j.alias, j.tech)
			}
		}()
	}
	for _, a := range aliases {
		for _, t := range techs {
			jobs <- job{a, t}
		}
	}
	close(jobs)
	wg.Wait()
}

// SuiteAliases returns the Table II aliases in paper order.
func SuiteAliases() []string {
	var out []string
	for _, b := range workload.Suite() {
		out = append(out, b.Alias)
	}
	return out
}
