// Package exp regenerates every table and figure of the paper's evaluation
// (Section V) from simulation runs: the per-benchmark, per-technique runs
// are cached and shared across figures, so a full reproduction costs one
// Baseline + RE + TE + Memo run per benchmark. Each figure function returns
// a stats.Table whose rows mirror the paper's bars/series.
package exp

import (
	"context"
	"runtime"
	"sync"

	"rendelim/internal/gpusim"
	"rendelim/internal/jobs"
	"rendelim/internal/obs"
	"rendelim/internal/workload"
)

// Runner schedules simulations through a jobs.Pool, so the batch harness
// and the resvc service share one scheduler: results are cached (and
// concurrent duplicate requests singleflighted) by the pool's job
// signature, the same Rendering-Elimination-style dedup the service
// applies to uploads.
type Runner struct {
	Params workload.Params

	pool   *jobs.Pool
	tracer *obs.Tracer
}

// NewRunner builds a runner at the given workload scale with one worker per
// CPU.
func NewRunner(p workload.Params) *Runner {
	return NewRunnerWorkers(p, runtime.GOMAXPROCS(0))
}

// NewRunnerWorkers bounds the concurrent simulations to workers.
func NewRunnerWorkers(p workload.Params, workers int) *Runner {
	return NewRunnerTileWorkers(p, workers, 0)
}

// NewRunnerTileWorkers additionally sets each simulation's raster-phase
// parallelism (gpusim.Config.TileWorkers semantics). With workers <= 0 the
// pool sizes itself to GOMAXPROCS divided by the tile-worker count, so the
// two pools compose without oversubscribing the host.
func NewRunnerTileWorkers(p workload.Params, workers, tileWorkers int) *Runner {
	// Every (benchmark, technique, variant) of a full reproduction must stay
	// cached, so size the LRU far above the ~200 runs reexp performs.
	pool := jobs.NewPool(jobs.WithWorkers(workers), jobs.WithCacheSize(4096), jobs.WithTileWorkers(tileWorkers))
	return NewRunnerPool(p, pool)
}

// NewRunnerPool builds a runner on an existing pool (shared with a service).
func NewRunnerPool(p workload.Params, pool *jobs.Pool) *Runner {
	return &Runner{Params: p, pool: pool}
}

// Pool exposes the underlying scheduler, e.g. for its elimination metrics.
func (r *Runner) Pool() *jobs.Pool { return r.pool }

// SetTracer attaches a pipeline-trace sink to every simulation the runner
// schedules (each unique run opens its own track). The tracer is excluded
// from job signatures, so cached re-requests stay eliminated — every
// distinct (benchmark, technique, variant) is traced exactly once.
func (r *Runner) SetTracer(t *obs.Tracer) { r.tracer = t }

// Config customizes a run beyond the technique (hash scheme, queue depth,
// memo LUT size, refresh interval). Tag must uniquely identify the variant
// for caching.
type Config struct {
	Tag    string
	Mutate func(*gpusim.Config)
}

// Result returns the (cached) outcome of one benchmark under a technique.
func (r *Runner) Result(alias string, tech gpusim.Technique) gpusim.Result {
	return r.ResultCfg(alias, tech, Config{})
}

// ResultCfg returns the (cached) outcome of a customized run. Concurrent
// callers with the same key share one execution (the pool's singleflight)
// instead of each running the full simulation.
func (r *Runner) ResultCfg(alias string, tech gpusim.Technique, variant Config) gpusim.Result {
	job, err := r.pool.Submit(r.spec(alias, tech, variant))
	if err != nil {
		panic(err) // experiment misconfiguration, not a runtime condition
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	return res
}

// spec translates an experiment request into a pool job. The adversarial
// workload is not a suite alias, so it rides in as an explicit builder.
func (r *Runner) spec(alias string, tech gpusim.Technique, variant Config) jobs.Spec {
	s := jobs.Spec{
		Alias:  alias,
		Params: r.Params,
		Tech:   tech,
		Tag:    variant.Tag,
		Mutate: variant.Mutate,
	}
	if alias == "adversarial" {
		s.Build = workload.Adversarial
	}
	if r.tracer != nil {
		userMutate := s.Mutate
		tracer := r.tracer
		s.Mutate = func(c *gpusim.Config) {
			if userMutate != nil {
				userMutate(c)
			}
			c.Tracer = tracer
		}
	}
	return s
}

// Prefetch computes the given (alias, technique) pairs in parallel, warming
// the pool's result cache. Concurrency is bounded by the pool's workers.
func (r *Runner) Prefetch(aliases []string, techs []gpusim.Technique) {
	var wg sync.WaitGroup
	for _, a := range aliases {
		for _, t := range techs {
			wg.Add(1)
			go func(a string, t gpusim.Technique) {
				defer wg.Done()
				r.Result(a, t)
			}(a, t)
		}
	}
	wg.Wait()
}

// SuiteAliases returns the Table II aliases in paper order.
func SuiteAliases() []string {
	var out []string
	for _, b := range workload.Suite() {
		out = append(out, b.Alias)
	}
	return out
}
