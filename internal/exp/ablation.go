package exp

import (
	"fmt"

	"rendelim/internal/crc"
	"rendelim/internal/gpusim"
	"rendelim/internal/stats"
)

// HashAblation reproduces the Section III-B / V signature-function
// comparison: for each scheme it reports detected redundancy (skip fraction
// under RE) and false positives — tiles whose signature matched while the
// rendered colors actually changed (the "one every 4 billion tiles" risk the
// paper quantifies for CRC32). The suite exposes natural collisions; the
// adversarial workload targets the structural weaknesses of XOR-based
// schemes.
func (r *Runner) HashAblation() *stats.Table {
	t := stats.NewTable("Hash ablation: CRC32 vs XOR-based signatures",
		"skip_frac", "false_pos_suite", "false_pos_adv")
	aliases := SuiteAliases()
	for _, scheme := range crc.Schemes() {
		scheme := scheme
		variant := Config{
			Tag: "hash-" + scheme.Name(),
			Mutate: func(c *gpusim.Config) {
				c.Sig.Scheme = scheme
			},
		}
		var skipped, total, falsePos uint64
		for _, a := range aliases {
			res := r.ResultCfg(a, gpusim.Baseline, variant).Total
			falsePos += res.TileClasses[gpusim.TileEqInputDiffColor]
			re := r.ResultCfg(a, gpusim.RE, variant).Total
			skipped += re.TilesSkipped
			total += re.TilesTotal
		}
		adv := r.ResultCfg("adversarial", gpusim.Baseline, variant).Total
		t.Add(scheme.Name(),
			float64(skipped)/float64(total),
			float64(falsePos),
			float64(adv.TileClasses[gpusim.TileEqInputDiffColor]))
	}
	return t
}

// OTQueueAblation sweeps the Overlapped-Tiles queue depth (DESIGN.md §6),
// reporting Signature Unit stall cycles as a share of geometry cycles on a
// large-primitive-heavy benchmark.
func (r *Runner) OTQueueAblation() *stats.Table {
	t := stats.NewTable("Ablation: OT queue depth vs geometry stalls", "stall_%geom_mst", "stall_%geom_ccs")
	for _, depth := range []int{2, 4, 8, 16, 32, 64} {
		depth := depth
		variant := Config{
			Tag: fmt2("otq-%d", depth),
			Mutate: func(c *gpusim.Config) {
				c.Sig.OTQueueDepth = depth
			},
		}
		row := make([]float64, 0, 2)
		for _, a := range []string{"mst", "ccs"} {
			res := r.ResultCfg(a, gpusim.RE, variant).Total
			geom := float64(res.GeometryCycles)
			if geom == 0 {
				geom = 1
			}
			row = append(row, float64(res.SUStallCycles)/geom*100)
		}
		t.Add(fmt2("depth-%d", depth), row...)
	}
	return t
}

// MemoLUTAblation sweeps the memoization LUT capacity (512 — the original
// paper's default — through 4096, the paper's area-matched 2048 in between),
// reporting fragments shaded normalized to baseline.
func (r *Runner) MemoLUTAblation() *stats.Table {
	t := stats.NewTable("Ablation: memo LUT entries vs fragments shaded", "hop", "ccs", "mst")
	for _, entries := range []int{64, 256, 512, 2048, 4096} {
		entries := entries
		variant := Config{
			Tag: fmt2("memolut-%d", entries),
			Mutate: func(c *gpusim.Config) {
				c.MemoLUTEntries = entries
			},
		}
		row := make([]float64, 0, 3)
		for _, a := range []string{"hop", "ccs", "mst"} {
			base := float64(r.Result(a, gpusim.Baseline).Total.FragsShaded)
			if base == 0 {
				base = 1
			}
			m := float64(r.ResultCfg(a, gpusim.Memo, variant).Total.FragsShaded)
			row = append(row, m/base)
		}
		t.Add(fmt2("entries-%d", entries), row...)
	}
	return t
}

// RefreshAblation sweeps the periodic-refresh interval (Section III-E's
// Frame Buffer refresh guarantee) against the skip fraction and cycle
// savings on a highly redundant benchmark.
func (r *Runner) RefreshAblation() *stats.Table {
	t := stats.NewTable("Ablation: refresh interval on cde", "skip_frac", "norm_cycles")
	base := float64(r.Result("cde", gpusim.Baseline).Total.TotalCycles())
	for _, interval := range []int{0, 2, 4, 8, 16} {
		interval := interval
		variant := Config{
			Tag: fmt2("refresh-%d", interval),
			Mutate: func(c *gpusim.Config) {
				c.RefreshInterval = interval
			},
		}
		res := r.ResultCfg("cde", gpusim.RE, variant).Total
		t.Add(fmt2("every-%d", interval), res.SkipFraction(), float64(res.TotalCycles())/base)
	}
	return t
}

// BinningAblation compares bounding-box binning (the default, what simple
// Polygon List Builders do) against exact triangle-tile overlap tests:
// tighter bins remove sliver-triangle signature pollution, raising RE's
// detected redundancy, at extra per-tile binning work.
func (r *Runner) BinningAblation() *stats.Table {
	t := stats.NewTable("Ablation: PLB binning precision (RE skip fraction)",
		"bbox", "exact")
	for _, a := range []string{"coc", "mst", "ctr", "tib"} {
		bbox := r.Result(a, gpusim.RE).Total
		exact := r.ResultCfg(a, gpusim.RE, Config{
			Tag:    "exact-binning",
			Mutate: func(c *gpusim.Config) { c.ExactBinning = true },
		}).Total
		t.Add(a, bbox.SkipFraction(), exact.SkipFraction())
	}
	return t
}

// SubblockTradeoff reproduces the Section III-G design discussion
// analytically: Compute CRC unit subblock width vs signing latency for the
// paper's two reference blocks (64 B constants, 144 B primitive) and LUT
// storage. The hardware model fixes 8 bytes; this table shows why.
func (r *Runner) SubblockTradeoff() *stats.Table {
	t := stats.NewTable("Section III-G: subblock width trade-off",
		"lut_storage_KB", "const_cycles", "prim_cycles")
	for _, width := range []int{2, 4, 8, 16, 32} {
		t.Add(fmt2("%d-byte", width),
			float64(width), // one 1 KB LUT per byte lane
			ceilDiv(64, width),
			ceilDiv(144, width))
	}
	return t
}

func ceilDiv(a, b int) float64 { return float64((a + b - 1) / b) }

// fmt2 is a tiny sprintf wrapper to keep call sites short.
func fmt2(format string, args ...any) string { return fmt.Sprintf(format, args...) }
