package exp

import (
	"testing"

	"rendelim/internal/gpusim"
	"rendelim/internal/workload"
)

// The coherence classes must be a property of each benchmark's *design*,
// not of the seed: different seeds change textures and layout details but
// must keep every benchmark in its Figure 2 class.
func TestSeedRobustness(t *testing.T) {
	for _, seed := range []int64{2, 7} {
		r := NewRunner(workload.Params{Width: 192, Height: 128, Frames: 10, Seed: seed})
		high := r.Result("cde", gpusim.Baseline).Total.EqualColorFraction()
		if high < 0.8 {
			t.Errorf("seed %d: cde equal fraction %.2f, want > 0.8", seed, high)
		}
		low := r.Result("mst", gpusim.Baseline).Total.EqualColorFraction()
		if low > 0.05 {
			t.Errorf("seed %d: mst equal fraction %.2f, want ~0", seed, low)
		}
		mid := r.Result("csn", gpusim.Baseline).Total.EqualColorFraction()
		if mid < 0.1 || mid > 0.9 {
			t.Errorf("seed %d: csn equal fraction %.2f, want intermediate", seed, mid)
		}
		// And the RE safety invariant holds for every seed.
		if n := r.Result("cde", gpusim.Baseline).Total.TileClasses[gpusim.TileEqInputDiffColor]; n != 0 {
			t.Errorf("seed %d: %d collision-class tiles", seed, n)
		}
	}
}
