package jobs

import (
	"context"
	"sync"

	"rendelim/internal/gpusim"
)

// call is one in-flight execution shared by every job whose key matched
// while it ran — the singleflight primitive. The leader goroutine runs the
// simulation once; followers block on done and read the shared outcome.
type call struct {
	done   chan struct{}
	ctx    context.Context // execution context; Job.Cancel cancels it
	cancel context.CancelFunc

	// Written once before done is closed, read-only after.
	result gpusim.Result
	err    error
}

func newCall(ctx context.Context, cancel context.CancelFunc) *call {
	return &call{done: make(chan struct{}), ctx: ctx, cancel: cancel}
}

// finish publishes the outcome and releases every waiter.
func (c *call) finish(res gpusim.Result, err error) {
	c.result = res
	c.err = err
	close(c.done)
}

// wait blocks until the call completes or ctx expires. A ctx expiry does not
// cancel the underlying execution: other followers may still want it.
func (c *call) wait(ctx context.Context) (gpusim.Result, error) {
	select {
	case <-c.done:
		return c.result, c.err
	case <-ctx.Done():
		return gpusim.Result{}, ctx.Err()
	}
}

// flight tracks in-flight calls by key so duplicate submissions attach to
// the running leader instead of recomputing (cf. the Signature Buffer match
// that lets a tile skip the Raster Pipeline).
type flight struct {
	mu    sync.Mutex
	calls map[Key]*call
}

func newFlight() *flight {
	return &flight{calls: make(map[Key]*call)}
}

// join returns the in-flight call for key, or registers c as the new leader
// and returns nil.
func (f *flight) join(key Key, c *call) *call {
	f.mu.Lock()
	defer f.mu.Unlock()
	if existing, ok := f.calls[key]; ok {
		return existing
	}
	f.calls[key] = c
	return nil
}

// forget removes a completed call; later submissions of the same key hit the
// result cache or start fresh.
func (f *flight) forget(key Key) {
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
}

// len reports the number of distinct keys currently in flight — the live
// singleflight population, exported as a /metrics gauge.
func (f *flight) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
