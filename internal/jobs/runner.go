package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"rendelim/internal/api"
	"rendelim/internal/fault"
	"rendelim/internal/gpusim"
	"rendelim/internal/trace"
	"rendelim/internal/workload"
)

// runResumable is the pool's built-in executor: like DefaultRun it builds
// the trace and simulates with cancellation honored at frame boundaries, but
// it also threads the pool's fault plan into the simulation and — when
// Options.CheckpointInterval > 0 — snapshots the simulator at frame
// boundaries into the job. A later attempt of the same job (after a
// transient failure, a contained or worker-level panic, or a per-attempt
// timeout) resumes from the last checkpoint instead of frame 0, so the total
// frames simulated across all attempts stays close to the trace length.
func (p *Pool) runResumable(ctx context.Context, j *Job, observe func(string, time.Duration)) (gpusim.Result, error) {
	buildStart := time.Now()
	var tr *api.Trace
	switch {
	case len(j.spec.TraceBin) > 0:
		// Injected decode fault. The Corrupt kind additionally runs a
		// deterministically mangled copy of the upload through the decoder
		// — which must reject or misparse it gracefully, never crash (the
		// fuzz target guards the same property) — before failing the
		// attempt the way a detected checksum mismatch would: transiently,
		// so the retry re-reads the pristine bytes.
		if ferr := p.opts.Fault.Check(fault.SiteTraceDecode); ferr != nil {
			var fe *fault.Error
			if errors.As(ferr, &fe) && fe.Kind == fault.Corrupt {
				_, _ = trace.Decode(bytes.NewReader(fe.Mangle(j.spec.TraceBin)))
			}
			return gpusim.Result{}, Transient(fmt.Errorf("jobs: trace read: %w", ferr))
		}
		var err error
		tr, err = trace.Decode(bytes.NewReader(j.spec.TraceBin))
		if err != nil {
			return gpusim.Result{}, fmt.Errorf("jobs: %w", err)
		}
	case j.spec.Build != nil:
		tr = j.spec.Build(j.spec.Params)
	default:
		b, err := workload.ByAlias(j.spec.Alias)
		if err != nil {
			return gpusim.Result{}, err
		}
		tr = b.Build(j.spec.Params)
	}
	cfg := gpusim.DefaultConfig()
	cfg.Technique = j.spec.Tech
	cfg.TileWorkers = p.opts.TileWorkers
	cfg.Fault = p.opts.Fault
	if j.spec.Mutate != nil {
		j.spec.Mutate(&cfg)
	}
	sim, err := gpusim.New(tr, cfg)
	if err != nil {
		return gpusim.Result{}, err
	}
	observe(StageBuild, time.Since(buildStart))

	simStart := time.Now()
	res := gpusim.Result{Technique: cfg.Technique, Name: tr.Name}
	res.Frames = make([]gpusim.Stats, 0, len(tr.Frames))

	// Resume from this job's last checkpoint, replaying the already-counted
	// per-frame stats so the final Result is indistinguishable from a
	// straight run.
	start := 0
	if j.resume != nil && j.resume.cp != nil {
		if rerr := sim.Resume(j.resume.cp); rerr == nil {
			start = j.resume.cp.Frame()
			for _, fs := range j.resume.frames {
				res.Frames = append(res.Frames, fs)
				res.Total.Add(fs)
			}
			p.metrics.Resumed.Add(1)
			if j.resume.recovered {
				// The checkpoint crossed a process restart via the store.
				j.resume.recovered = false
				p.opts.Store.Metrics().JobsResumed.Add(1)
			}
			p.log.Info("job resumed from checkpoint", "id", j.ID, "frame", start)
		} else {
			p.log.Warn("checkpoint rejected; restarting from frame 0", "id", j.ID, "err", rerr)
		}
	}

	ival := p.opts.CheckpointInterval
	for i := start; i < len(tr.Frames); i++ {
		if cerr := ctx.Err(); cerr != nil {
			return res, cerr
		}
		fs := sim.RunFrame(&tr.Frames[i])
		res.Frames = append(res.Frames, fs)
		res.Total.Add(fs)
		p.metrics.FramesSimulated.Add(1)
		// Checkpoint at the boundary — but not after the last frame, where
		// there is nothing left to resume into.
		if ival > 0 && (i+1)%ival == 0 && i+1 < len(tr.Frames) {
			j.resume = &resume{
				cp:     sim.Checkpoint(),
				frames: append([]gpusim.Stats(nil), res.Frames...),
			}
			// Durably persist the boundary so recovery after a process
			// death resumes here, not at frame 0.
			p.persistCheckpoint(j)
		}
	}
	res.FBCRC = sim.FrameBufferCRC()
	observe(StageSimulate, time.Since(simStart))
	return res, nil
}
