package jobs

import (
	"context"
	"reflect"
	"runtime"
	"testing"
)

// TestTileWorkersComposition: with Workers unset, the pool divides the host
// CPUs by the effective tile-worker count so the two pools never
// oversubscribe.
func TestTileWorkersComposition(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)

	p := New(Options{TileWorkers: 4})
	defer p.Close(context.Background())
	want := maxprocs / 4
	if want < 1 {
		want = 1
	}
	if p.Workers() != want {
		t.Errorf("TileWorkers=4: pool workers = %d, want %d", p.Workers(), want)
	}

	// Auto tile workers (one per CPU) leave a single job worker.
	pa := New(Options{TileWorkers: -1})
	defer pa.Close(context.Background())
	if pa.Workers() != 1 {
		t.Errorf("TileWorkers=-1: pool workers = %d, want 1", pa.Workers())
	}

	// Explicit Workers always wins.
	pe := New(Options{Workers: 3, TileWorkers: 8})
	defer pe.Close(context.Background())
	if pe.Workers() != 3 {
		t.Errorf("explicit workers: pool workers = %d, want 3", pe.Workers())
	}
}

// TestTileWorkersIdenticalResults: the same spec through a serial pool and a
// tile-parallel pool yields bit-identical results, and the job signature
// (hence the dedup cache key) does not depend on the knob.
func TestTileWorkersIdenticalResults(t *testing.T) {
	s := spec("ccs")

	serial := New(Options{Workers: 1})
	defer serial.Close(context.Background())
	js, err := serial.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := js.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	par := New(Options{Workers: 1, TileWorkers: 4})
	defer par.Close(context.Background())
	jp, err := par.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := jp.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if js.Key != jp.Key {
		t.Errorf("tile workers changed the job signature: %s vs %s", js.Key, jp.Key)
	}
	if !reflect.DeepEqual(rs, rp) {
		t.Errorf("tile workers changed results:\n serial %+v\n par    %+v", rs.Total, rp.Total)
	}
}
