package jobs

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is the sentinel matched by errors.Is for circuit-breaker
// rejections; the concrete error is *BreakerOpenError.
var ErrBreakerOpen = errors.New("jobs: circuit breaker open")

// BreakerOpenError rejects a submission whose benchmark's breaker is open.
type BreakerOpenError struct {
	Benchmark  string
	RetryAfter time.Duration
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("jobs: circuit breaker open for %q (retry after %v)", e.Benchmark, e.RetryAfter.Round(time.Second))
}

// Is matches ErrBreakerOpen.
func (e *BreakerOpenError) Is(target error) bool { return target == ErrBreakerOpen }

// breaker is a per-benchmark circuit breaker. Each key counts *consecutive*
// terminal non-transient failures; at threshold the circuit opens and
// submissions for that key are rejected until cooldown passes, after which a
// single half-open trial is admitted — its outcome closes or re-opens the
// circuit. Transient failures never trip it: they are the retry path's
// business, and with fault injection enabled they are expected.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu   sync.Mutex
	keys map[string]*breakerEntry
}

type breakerEntry struct {
	failures int       // consecutive non-transient failures
	openedAt time.Time // zero while closed
	halfOpen bool      // one trial admitted after cooldown
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, keys: make(map[string]*breakerEntry)}
}

// check reports whether the key's circuit is open. After cooldown it admits
// exactly one half-open trial (returning open=false for it).
func (b *breaker) check(key string) (retryAfter time.Duration, open bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.keys[key]
	if e == nil || e.openedAt.IsZero() {
		return 0, false
	}
	remaining := b.cooldown - time.Since(e.openedAt)
	if remaining > 0 {
		return remaining, true
	}
	if e.halfOpen {
		// A trial is already in flight; keep rejecting until it resolves.
		return b.cooldown, true
	}
	e.halfOpen = true
	return 0, false
}

// onSuccess closes the key's circuit and resets its failure count. The
// entry is created if absent so the resvc_breaker_open gauge reports every
// benchmark the pool has executed, open or closed. Reports whether this
// call transitioned an open circuit closed (for the event journal).
func (b *breaker) onSuccess(key string) (closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.keys[key]
	if e == nil {
		e = &breakerEntry{}
		b.keys[key] = e
	}
	closed = !e.openedAt.IsZero()
	*e = breakerEntry{}
	return closed
}

// onFailure records a terminal non-transient failure, opening (or
// re-opening, for a failed half-open trial) the circuit at threshold.
// Reports whether this call transitioned the circuit from closed to open.
func (b *breaker) onFailure(key string) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.keys[key]
	if e == nil {
		e = &breakerEntry{}
		b.keys[key] = e
	}
	e.failures++
	if e.halfOpen || e.failures >= b.threshold {
		opened = e.openedAt.IsZero() || e.halfOpen
		e.openedAt = time.Now()
		e.halfOpen = false
	}
	return opened
}

// snapshot returns the open/closed state per key, for the metrics gauge.
func (b *breaker) snapshot() map[string]bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]bool, len(b.keys))
	for k, e := range b.keys {
		out[k] = !e.openedAt.IsZero() && time.Since(e.openedAt) < b.cooldown
	}
	return out
}

// BreakerState reports each benchmark bucket the breaker has seen and
// whether its circuit is currently open. Nil when the breaker is disabled.
func (p *Pool) BreakerState() map[string]bool {
	if p.brk == nil {
		return nil
	}
	return p.brk.snapshot()
}
