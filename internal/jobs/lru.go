package jobs

import (
	"container/list"

	"rendelim/internal/gpusim"
)

// lru is a fixed-capacity least-recently-used result cache keyed by job
// signature. It is the job-level analogue of the Signature Buffer: a key hit
// means the whole simulation is eliminated. Not safe for concurrent use; the
// Pool serializes access under its mutex.
type lru struct {
	cap   int
	order *list.List // front = most recent; values are *lruEntry
	index map[Key]*list.Element
}

type lruEntry struct {
	key Key
	res gpusim.Result
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{cap: capacity, order: list.New(), index: make(map[Key]*list.Element)}
}

func (c *lru) get(key Key) (gpusim.Result, bool) {
	el, ok := c.index[key]
	if !ok {
		return gpusim.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lru) put(key Key, res gpusim.Result) {
	if el, ok := c.index[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.index[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.index, oldest.Value.(*lruEntry).key)
	}
}

func (c *lru) len() int { return c.order.Len() }
