package jobs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"rendelim/internal/gpusim"
	"rendelim/internal/stats"
)

// Stage names for the per-stage latency histograms.
const (
	StageQueue    = "queue"    // submission -> worker pickup
	StageBuild    = "build"    // trace decode / workload synthesis
	StageSimulate = "simulate" // gpusim run
)

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// ratioBuckets bound a fraction in [0, 1] — the per-frame tile-elimination
// distribution (Figure 15a, live). The tails are finer than the middle
// because "nothing eliminated" and "almost everything eliminated" are the
// interesting regimes.
var ratioBuckets = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1}

// Metrics aggregates pool counters for the /metrics endpoint. Counters are
// atomics; histograms are mutex-guarded stats.Histograms.
type Metrics struct {
	Submitted atomic.Uint64 // every Submit call
	Deduped   atomic.Uint64 // eliminated jobs: cache hits + in-flight joins
	Completed atomic.Uint64 // executions that produced a result
	Failed    atomic.Uint64 // executions that exhausted retries or timed out
	CacheHits atomic.Uint64 // result served straight from the LRU
	Joins     atomic.Uint64 // attached to an in-flight identical job
	Retries   atomic.Uint64 // transient-failure re-executions
	Timeouts  atomic.Uint64 // per-attempt deadline expiries
	Running   atomic.Int64  // jobs currently executing
	queueLen  atomic.Int64  // jobs submitted but not yet picked up

	Panics          atomic.Uint64 // contained run panics + worker-level panics
	Resumed         atomic.Uint64 // attempts that resumed from a checkpoint
	LoadShed        atomic.Uint64 // TrySubmit rejections on a full queue
	BreakerRejected atomic.Uint64 // submissions rejected by an open circuit breaker
	FramesSimulated atomic.Uint64 // frames actually executed (resume skips don't count)

	// inflightFn reads the pool's live singleflight population at scrape
	// time (gauges derived from pool state rather than counters). Set once
	// by New; nil in standalone Metrics (renders 0).
	inflightFn func() int

	mu    sync.Mutex
	hists map[string]*stats.Histogram

	// frameElim distributes each completed frame's tile-elimination ratio —
	// the paper's Figure 15a histogram, accumulated live across every job
	// the node runs.
	frameElim *stats.Histogram

	// sim accumulates the simulator-side counters of every completed run:
	// per-pipeline-stage cycles and the Figure 15a tile classification,
	// exported through /metrics so the service surfaces the same per-stage
	// attribution the paper's evaluation is built on.
	simMu sync.Mutex
	sim   gpusim.Stats
}

func newMetrics() *Metrics {
	return &Metrics{
		hists:     make(map[string]*stats.Histogram),
		frameElim: stats.NewHistogram(ratioBuckets...),
	}
}

// ObserveStage records one stage latency in seconds.
func (m *Metrics) ObserveStage(stage string, seconds float64) {
	m.mu.Lock()
	h, ok := m.hists[stage]
	if !ok {
		h = stats.NewHistogram(latencyBuckets...)
		m.hists[stage] = h
	}
	h.Observe(seconds)
	m.mu.Unlock()
}

// ObserveResult folds one completed run's simulator statistics into the
// service-wide totals, including each frame's tile-elimination ratio into
// the per-frame distribution.
func (m *Metrics) ObserveResult(res gpusim.Result) {
	m.simMu.Lock()
	m.sim.Add(res.Total)
	m.simMu.Unlock()
	for _, f := range res.Frames {
		m.frameElim.Observe(f.SkipFraction())
	}
}

// FrameEliminationHist exposes the per-frame tile-elimination distribution
// (for restat and tests).
func (m *Metrics) FrameEliminationHist() *stats.Histogram { return m.frameElim }

// SimTotals returns a snapshot of the accumulated simulator counters.
func (m *Metrics) SimTotals() gpusim.Stats {
	m.simMu.Lock()
	defer m.simMu.Unlock()
	return m.sim
}

// EliminationRatio is deduped/submitted — the job-level analogue of the
// tile SkipFraction internal/core reports.
func (m *Metrics) EliminationRatio() float64 {
	sub := m.Submitted.Load()
	if sub == 0 {
		return 0
	}
	return float64(m.Deduped.Load()) / float64(sub)
}

// CacheHitRatio is cache hits over cache lookups (hits + misses). A lookup
// happens on every submission that is not an in-flight join.
func (m *Metrics) CacheHitRatio() float64 {
	hits := m.CacheHits.Load()
	lookups := m.Submitted.Load() - m.Joins.Load()
	if lookups == 0 {
		return 0
	}
	return float64(hits) / float64(lookups)
}

// QueueDepth returns the number of submitted-but-not-running jobs.
func (m *Metrics) QueueDepth() int64 { return m.queueLen.Load() }

// InflightKeys returns the number of distinct signatures currently holding a
// singleflight leader (0 when the metrics are not attached to a pool).
func (m *Metrics) InflightKeys() int {
	if m.inflightFn == nil {
		return 0
	}
	return m.inflightFn()
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (hand-rolled; the repo is stdlib-only).
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gaugeI := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("resvc_jobs_submitted_total", "Jobs submitted to the pool.", m.Submitted.Load())
	counter("resvc_jobs_deduped_total", "Jobs eliminated by signature match (cache hit or in-flight join).", m.Deduped.Load())
	counter("resvc_jobs_completed_total", "Job executions that produced a result.", m.Completed.Load())
	counter("resvc_jobs_failed_total", "Job executions that failed permanently.", m.Failed.Load())
	counter("resvc_jobs_cache_hits_total", "Jobs served straight from the LRU result cache.", m.CacheHits.Load())
	counter("resvc_jobs_inflight_joins_total", "Jobs attached to an identical in-flight execution.", m.Joins.Load())
	counter("resvc_jobs_retries_total", "Transient-failure re-executions.", m.Retries.Load())
	counter("resvc_jobs_timeouts_total", "Job attempts that hit the per-attempt deadline.", m.Timeouts.Load())
	counter("resvc_jobs_panics_total", "Panics contained (in-run recover or worker replacement).", m.Panics.Load())
	counter("resvc_jobs_resumed_total", "Job attempts resumed from a frame-boundary checkpoint.", m.Resumed.Load())
	counter("resvc_load_shed_total", "Submissions rejected because the queue was full.", m.LoadShed.Load())
	counter("resvc_breaker_rejected_total", "Submissions rejected by an open circuit breaker.", m.BreakerRejected.Load())
	counter("resvc_sim_frames_executed_total", "Frames actually executed by the built-in runner (checkpoint-resumed frames are not re-executed).", m.FramesSimulated.Load())
	gaugeF("resvc_job_elimination_ratio", "Fraction of submitted jobs eliminated without simulating (cf. tile skip fraction).", m.EliminationRatio())
	gaugeF("resvc_cache_hit_ratio", "LRU result cache hit ratio (hits / lookups).", m.CacheHitRatio())
	gaugeI("resvc_queue_depth", "Jobs submitted but not yet executing.", m.QueueDepth())
	gaugeI("resvc_jobs_running", "Jobs currently executing.", m.Running.Load())
	gaugeI("resvc_singleflight_inflight", "Distinct job signatures currently holding a singleflight leader.", int64(m.InflightKeys()))

	// Simulator-side totals across all completed runs: per-pipeline-stage
	// simulated cycles and the Figure 15a tile classification.
	sim := m.SimTotals()
	counter("resvc_sim_frames_total", "Frames simulated across all completed jobs.", sim.Frames)
	counter("resvc_sim_tiles_total", "Tiles processed across all completed jobs.", sim.TilesTotal)
	counter("resvc_sim_tiles_skipped_total", "Tiles eliminated by RE across all completed jobs.", sim.TilesSkipped)
	const scname = "resvc_sim_stage_cycles_total"
	fmt.Fprintf(w, "# HELP %s Simulated cycles attributed to each pipeline stage.\n# TYPE %s counter\n", scname, scname)
	for st := gpusim.PipeStage(0); st < gpusim.NumPipeStages; st++ {
		fmt.Fprintf(w, "%s{stage=%q} %d\n", scname, st.String(), sim.StageCycles[st])
	}
	const tcname = "resvc_sim_tile_class_total"
	fmt.Fprintf(w, "# HELP %s Tiles per Figure 15a class (vs the frame two swaps back).\n# TYPE %s counter\n", tcname, tcname)
	for c := gpusim.TileClass(0); c < gpusim.NumTileClasses; c++ {
		fmt.Fprintf(w, "%s{class=%q} %d\n", tcname, c.String(), sim.TileClasses[c])
	}

	// Per-frame tile-elimination ratio distribution (Figure 15a, live).
	const fename = "resvc_sim_frame_eliminated_ratio"
	fmt.Fprintf(w, "# HELP %s Per-frame fraction of tiles eliminated by RE across completed jobs.\n# TYPE %s histogram\n", fename, fename)
	m.frameElim.WritePrometheus(w, fename, "")

	m.mu.Lock()
	names := make([]string, 0, len(m.hists))
	for name := range m.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	hists := make([]*stats.Histogram, len(names))
	for i, name := range names {
		hists[i] = m.hists[name]
	}
	m.mu.Unlock()
	const hname = "resvc_stage_latency_seconds"
	fmt.Fprintf(w, "# HELP %s Per-stage job latency (queue wait, trace build, simulation run).\n# TYPE %s histogram\n", hname, hname)
	for i, name := range names {
		hists[i].WritePrometheus(w, hname, fmt.Sprintf("stage=%q", name))
	}
}

// StageHist returns the named per-stage latency histogram, or nil if that
// stage has not been observed yet.
func (m *Metrics) StageHist(stage string) *stats.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hists[stage]
}
