package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"rendelim/internal/fault"
	"rendelim/internal/gpusim"
	"rendelim/internal/trace"
	"rendelim/internal/workload"
)

// chaosParams keeps the soak fast enough for -race CI while still exercising
// multi-frame checkpointing.
var chaosParams = workload.Params{Width: 64, Height: 48, Frames: 4, Seed: 1}

// chaosSpecs is the soak workload: the whole Table II suite plus one
// uploaded-trace job (so the trace.decode fault site is exercised too).
func chaosSpecs(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, b := range workload.Suite() {
		specs = append(specs, Spec{Alias: b.Alias, Params: chaosParams, Tech: gpusim.RE})
	}
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, b.Build(chaosParams)); err != nil {
		t.Fatal(err)
	}
	specs = append(specs, Spec{TraceBin: buf.Bytes(), Tech: gpusim.RE})
	return specs
}

// runSuite submits every spec to the pool and waits for all of them.
func runSuite(t *testing.T, p *Pool, specs []Spec) []gpusim.Result {
	t.Helper()
	jobsList := make([]*Job, len(specs))
	for i, s := range specs {
		j, err := p.Submit(s)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobsList[i] = j
	}
	results := make([]gpusim.Result, len(specs))
	for i, j := range jobsList {
		res, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d (%s): %v", i, j.ID, err)
		}
		results[i] = res
	}
	return results
}

// TestChaosSoak runs the full benchmark suite under an aggressive seeded
// fault plan — worker panics, mid-simulation DRAM panics, corrupted trace
// reads — and asserts the three invariants of the failure model: results are
// byte-identical to a fault-free run (per-frame stats and framebuffer CRC),
// every job reaches a terminal state, and the worker count never decreases.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is seconds-long; skipped in -short")
	}
	specs := chaosSpecs(t)

	// Fault-free baseline, same runner and checkpoint cadence.
	base := New(Options{Workers: 4, Retries: 20, Backoff: time.Millisecond, CheckpointInterval: 1})
	want := runSuite(t, base, specs)
	base.Close(context.Background())

	// The total fault budget (sum of Limits) is far below the per-job retry
	// budget, so every job must eventually complete.
	plan := fault.New(42).
		With(fault.SiteWorker, fault.Site{Prob: 0.3, Limit: 6, Kinds: []fault.Kind{fault.Panic, fault.Transient}}).
		With(fault.SiteDRAMRead, fault.Site{Prob: 0.002, Limit: 8, Kinds: []fault.Kind{fault.Panic}}).
		With(fault.SiteTraceDecode, fault.Site{Prob: 0.5, Limit: 2, Kinds: []fault.Kind{fault.Corrupt}})

	const workers = 4
	chaos := New(Options{Workers: workers, Retries: 20, Backoff: time.Millisecond,
		CheckpointInterval: 1, Fault: plan})
	defer chaos.Close(context.Background())

	got := runSuite(t, chaos, specs)

	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("spec %d (%s): result diverges under fault injection", i, specs[i].Alias)
		}
		if got[i].FBCRC != want[i].FBCRC {
			t.Errorf("spec %d (%s): framebuffer CRC %08x != %08x", i, specs[i].Alias, got[i].FBCRC, want[i].FBCRC)
		}
	}

	// Every job terminal (runSuite's Waits returned, so Done; double-check
	// via the registry states for the "no job stuck non-terminal" clause).
	for i := 0; i < len(specs); i++ {
		id := fmt.Sprintf("j-%06d", i)
		if j, ok := chaos.Get(id); ok {
			if st := j.State(); st != Done {
				t.Errorf("job %s stuck in state %v", id, st)
			}
		}
	}

	// The worker pool must have healed every panic: poll because the
	// replacement goroutine increments the live count asynchronously.
	deadline := time.Now().Add(2 * time.Second)
	for chaos.WorkerCount() < workers && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := chaos.WorkerCount(); n < workers {
		t.Errorf("worker count %d < %d: pool shrank under panics", n, workers)
	}

	// The plan must actually have fired, or the soak proved nothing.
	fired := plan.Fired(fault.SiteWorker) + plan.Fired(fault.SiteDRAMRead) + plan.Fired(fault.SiteTraceDecode)
	if fired == 0 {
		t.Fatal("no faults fired; the soak exercised nothing")
	}
	if chaos.Metrics().Panics.Load() == 0 {
		t.Error("no panics recorded despite panic-kind faults")
	}
}

// TestChaosResumeAfterTimeout is the checkpoint/resume acceptance check: an
// injected DRAM latency spike makes the first attempt blow its per-attempt
// deadline after frame 0 completes; the retry must resume from the
// checkpoint, so total frames simulated stays below 2x the trace length and
// the result is byte-identical to a clean run.
func TestChaosResumeAfterTimeout(t *testing.T) {
	sp := Spec{Alias: "ccs", Params: workload.Params{Width: 96, Height: 64, Frames: 6, Seed: 1}, Tech: gpusim.RE}

	clean := New(Options{Workers: 1, CheckpointInterval: 1})
	want := runSuite(t, clean, []Spec{sp})[0]
	clean.Close(context.Background())

	// The latency spike fires exactly once, on the first DRAM read of
	// frame 0, and exceeds the per-attempt timeout; cancellation is only
	// checked at frame boundaries, so frame 0 completes and is
	// checkpointed before the attempt dies.
	plan := fault.New(1).
		With(fault.SiteDRAMRead, fault.Site{Prob: 1, Limit: 1, Kinds: []fault.Kind{fault.Latency}, Latency: 1500 * time.Millisecond})
	p := New(Options{Workers: 1, Timeout: 500 * time.Millisecond, Retries: 10,
		Backoff: time.Millisecond, CheckpointInterval: 1, Fault: plan})
	defer p.Close(context.Background())

	got := runSuite(t, p, []Spec{sp})[0]
	if !reflect.DeepEqual(got, want) {
		t.Error("result diverges after timeout + resume")
	}

	m := p.Metrics()
	if m.Timeouts.Load() == 0 {
		t.Error("per-attempt timeout never fired")
	}
	if m.Resumed.Load() == 0 {
		t.Error("retry did not resume from the checkpoint")
	}
	frames := uint64(sp.Params.Frames)
	if got := m.FramesSimulated.Load(); got >= 2*frames {
		t.Errorf("%d frames simulated across attempts, want < %d (resume must skip completed frames)", got, 2*frames)
	} else if got != frames+1 {
		// Frame 0 ran twice (once before the timeout, once... no: the
		// checkpoint covers frame 0, so only the boundary check re-runs).
		// Expected: 6 frames + 0 re-runs = frames on attempt 1 (1 frame)
		// and frames-1 on attempt 2.
		t.Logf("frames simulated = %d (informational; hard bound is < %d)", got, 2*frames)
	}
}

// TestChaosWorkerPanicReplacement: a panic that escapes the per-attempt
// recover (injected at the worker site, outside runOnce) kills the worker
// goroutine; the pool must replace it, requeue the job, and finish
// everything with no shrinkage.
func TestChaosWorkerPanicReplacement(t *testing.T) {
	plan := fault.New(3).
		With(fault.SiteWorker, fault.Site{Prob: 1, Limit: 3, Kinds: []fault.Kind{fault.Panic}})
	var runs atomic.Int64
	const workers = 2
	p := New(Options{Workers: workers, Retries: 5, Backoff: time.Millisecond,
		Fault: plan, Run: fakeRun(&runs, 0)})
	defer p.Close(context.Background())

	var js []*Job
	for _, alias := range []string{"ccs", "mst", "hop", "coc"} {
		j, err := p.Submit(spec(alias))
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}
	for _, j := range js {
		if _, err := j.Wait(context.Background()); err != nil {
			t.Fatalf("%s: %v", j.ID, err)
		}
	}
	if got := plan.Fired(fault.SiteWorker); got != 3 {
		t.Errorf("worker faults fired = %d, want 3", got)
	}
	if got := p.Metrics().Panics.Load(); got != 3 {
		t.Errorf("resvc_jobs_panics_total = %d, want 3", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.WorkerCount() < workers && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := p.WorkerCount(); n != workers {
		t.Errorf("worker count %d, want %d", n, workers)
	}
}

// TestCloseDrainNoLeaks: Close under deadline pressure, with jobs queued and
// in flight, must leave no job in Running state and leak no goroutines.
func TestCloseDrainNoLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	var runs atomic.Int64
	p := New(Options{Workers: 3, Run: fakeRun(&runs, 200*time.Millisecond)})
	var js []*Job
	for _, alias := range []string{"ccs", "mst", "hop", "coc", "cde", "ctr", "abi", "csn"} {
		j, err := p.Submit(spec(alias))
		if err != nil {
			t.Fatal(err)
		}
		js = append(js, j)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close: %v", err)
	}

	// Deadline pressure cancelled the stragglers; either way every job must
	// be terminal — nothing stuck Running or Queued forever.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		terminal := 0
		for _, j := range js {
			if st := j.State(); st == Done || st == Failed {
				terminal++
			}
		}
		if terminal == len(js) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, j := range js {
		if st := j.State(); st != Done && st != Failed {
			t.Errorf("job %s left in state %v after Close", j.ID, st)
		}
	}

	// Workers and their runs must be gone. Allow slack for runtime
	// background goroutines.
	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines %d -> %d: pool leaked", before, after)
	}
}

// TestTrySubmitShedsLoad: with the queue full, TrySubmit must reject with
// ErrOverloaded immediately instead of blocking, and count the shed.
func TestTrySubmitShedsLoad(t *testing.T) {
	block := make(chan struct{})
	run := func(ctx context.Context, spec Spec, observe func(string, time.Duration)) (gpusim.Result, error) {
		select {
		case <-block:
			return gpusim.Result{Name: spec.Alias}, nil
		case <-ctx.Done():
			return gpusim.Result{}, ctx.Err()
		}
	}
	p := New(Options{Workers: 1, QueueDepth: 1, Run: run})
	defer func() { close(block); p.Close(context.Background()) }()

	a, err := p.Submit(spec("ccs"))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked a up, so the next submit occupies the
	// queue's single slot.
	deadline := time.Now().Add(2 * time.Second)
	for a.State() != Running && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.State() != Running {
		t.Fatal("first job never started")
	}
	if _, err := p.TrySubmit(spec("mst")); err != nil {
		t.Fatalf("queue-filling submit: %v", err)
	}
	_, err = p.TrySubmit(spec("hop"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := p.Metrics().LoadShed.Load(); got != 1 {
		t.Errorf("resvc_load_shed_total = %d, want 1", got)
	}
}

// TestBreakerOpensAndRecovers: repeated non-transient failures of one
// benchmark open its circuit; submissions are rejected with a typed
// retryable error until the cooldown passes, then a half-open trial's
// success closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	run := func(ctx context.Context, spec Spec, observe func(string, time.Duration)) (gpusim.Result, error) {
		if failing.Load() {
			return gpusim.Result{}, errors.New("permanent defect")
		}
		return gpusim.Result{Name: spec.Alias}, nil
	}
	p := New(Options{Workers: 1, Run: run, BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond})
	defer p.Close(context.Background())

	// Two terminal failures trip the breaker (threshold 2). Vary the seed
	// so neither the cache nor singleflight eliminates the submissions.
	for i := 0; i < 2; i++ {
		sp := spec("ccs")
		sp.Params.Seed = int64(i + 1)
		j, err := p.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := j.Wait(context.Background()); err == nil {
			t.Fatal("failing run succeeded")
		}
	}

	sp := spec("ccs")
	sp.Params.Seed = 99
	_, err := p.Submit(sp)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	var bo *BreakerOpenError
	if !errors.As(err, &bo) || bo.Benchmark != "ccs" || bo.RetryAfter <= 0 {
		t.Fatalf("bad BreakerOpenError: %+v", err)
	}
	if st := p.BreakerState(); !st["ccs"] {
		t.Errorf("breaker state for ccs = %v, want open", st)
	}
	if got := p.Metrics().BreakerRejected.Load(); got == 0 {
		t.Error("resvc_breaker_rejected_total = 0")
	}

	// Unrelated benchmarks are unaffected.
	failing.Store(false)
	if j, err := p.Submit(spec("mst")); err != nil {
		t.Fatalf("unrelated benchmark rejected: %v", err)
	} else if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	// After the cooldown a half-open trial is admitted; its success closes
	// the circuit for good.
	time.Sleep(120 * time.Millisecond)
	trial, err := p.Submit(sp)
	if err != nil {
		t.Fatalf("half-open trial rejected: %v", err)
	}
	if _, err := trial.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := p.BreakerState(); st["ccs"] {
		t.Error("breaker still open after successful trial")
	}
	sp.Params.Seed = 100
	if _, err := p.Submit(sp); err != nil {
		t.Fatalf("closed breaker still rejecting: %v", err)
	}
}
