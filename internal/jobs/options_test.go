package jobs

import (
	"context"
	"log/slog"
	"testing"
	"time"

	"rendelim/internal/fault"
	"rendelim/internal/gpusim"
	"rendelim/internal/obs"
)

// TestNewPoolOptionsEquivalence proves the functional-options constructor is
// a faithful re-skin of the legacy struct constructor: the same settings,
// expressed either way, produce pools with identical resolved
// configuration (after New's defaulting has been applied to both).
func TestNewPoolOptionsEquivalence(t *testing.T) {
	plan := &fault.Plan{}
	journal := obs.NewJournal(4)
	logger := slog.Default()
	run := func(ctx context.Context, spec Spec, observe func(string, time.Duration)) (gpusim.Result, error) {
		return gpusim.Result{}, nil
	}

	legacy := New(Options{
		Workers:            3,
		QueueDepth:         7,
		CacheSize:          9,
		Timeout:            time.Second,
		Retries:            2,
		Backoff:            10 * time.Millisecond,
		Run:                run,
		Logger:             logger,
		CheckpointInterval: 5,
		Fault:              plan,
		BreakerThreshold:   4,
		BreakerCooldown:    time.Minute,
		Journal:            journal,
		TileWorkers:        2,
	})
	defer legacy.Close(context.Background())

	modern := NewPool(
		WithWorkers(3),
		WithQueueDepth(7),
		WithCacheSize(9),
		WithTimeout(time.Second),
		WithRetries(2),
		WithBackoff(10*time.Millisecond),
		WithRun(run),
		WithLogger(logger),
		WithCheckpointInterval(5),
		WithFault(plan),
		WithBreaker(4, time.Minute),
		WithJournal(journal),
		WithTileWorkers(2),
	)
	defer modern.Close(context.Background())

	a, b := legacy.opts, modern.opts
	if a.Workers != b.Workers || a.QueueDepth != b.QueueDepth ||
		a.CacheSize != b.CacheSize || a.Timeout != b.Timeout ||
		a.Retries != b.Retries || a.Backoff != b.Backoff ||
		a.CheckpointInterval != b.CheckpointInterval ||
		a.BreakerThreshold != b.BreakerThreshold ||
		a.BreakerCooldown != b.BreakerCooldown ||
		a.TileWorkers != b.TileWorkers ||
		a.Fault != b.Fault || a.Journal != b.Journal || a.Logger != b.Logger ||
		(a.Run == nil) != (b.Run == nil) {
		t.Errorf("resolved options diverge:\n legacy %+v\n modern %+v", a, b)
	}
}

// TestNewPoolDefaults: the zero-argument NewPool applies exactly the
// defaults the legacy New(Options{}) applies.
func TestNewPoolDefaults(t *testing.T) {
	legacy := New(Options{})
	defer legacy.Close(context.Background())
	modern := NewPool()
	defer modern.Close(context.Background())

	a, b := legacy.opts, modern.opts
	if a.Workers != b.Workers || a.QueueDepth != b.QueueDepth ||
		a.CacheSize != b.CacheSize || a.Backoff != b.Backoff ||
		a.BreakerThreshold != b.BreakerThreshold || a.BreakerCooldown != b.BreakerCooldown {
		t.Errorf("defaults diverge:\n legacy %+v\n modern %+v", a, b)
	}
}
