package jobs

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rendelim/internal/fault"
	"rendelim/internal/gpusim"
	"rendelim/internal/store"
	"rendelim/internal/trace"
	"rendelim/internal/workload"
)

// quietLogger silences pool/store logs so the soaks don't spam CI output.
func quietLogger() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

// openTestStore opens a store on dir with logging silenced.
func openTestStore(t *testing.T, dir string, plan *fault.Plan) *store.Store {
	t.Helper()
	preserveStoreArtifacts(t, dir)
	st, err := store.Open(dir, store.Options{
		Fault:  plan,
		Logger: quietLogger(),
	})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// preserveStoreArtifacts copies the data dir (WAL, snapshots, quarantined
// files) under $STORE_ARTIFACT_DIR when the test fails, so CI can upload
// the exact bytes that broke recovery. No-op otherwise.
func preserveStoreArtifacts(t *testing.T, dir string) {
	t.Cleanup(func() {
		root := os.Getenv("STORE_ARTIFACT_DIR")
		if root == "" || !t.Failed() {
			return
		}
		dst := filepath.Join(root, strings.ReplaceAll(t.Name(), "/", "_"))
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, werr error) error {
			if werr != nil || d.IsDir() {
				return werr
			}
			rel, _ := filepath.Rel(dir, path)
			out := filepath.Join(dst, rel)
			if merr := os.MkdirAll(filepath.Dir(out), 0o755); merr != nil {
				return merr
			}
			b, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			return os.WriteFile(out, b, 0o644)
		})
		if err != nil {
			t.Logf("preserving store artifacts: %v", err)
		} else {
			t.Logf("store artifacts preserved under %s", dst)
		}
	})
}

// TestCrashRecoveryServesCompletedJobs is the cross-restart elimination
// contract: results computed before a crash are served as cache hits by the
// restarted process, byte-identical, with zero frames re-simulated.
func TestCrashRecoveryServesCompletedJobs(t *testing.T) {
	dir := t.TempDir()
	specs := chaosSpecs(t)

	st := openTestStore(t, dir, nil)
	p := New(Options{Workers: 4, CheckpointInterval: 1, Store: st, Logger: quietLogger()})
	want := runSuite(t, p, specs)
	// Kill, not Close: completion must already be durable — there is no
	// graceful-shutdown flush to rely on.
	p.Kill()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir, nil)
	defer st2.Close()
	p2 := New(Options{Workers: 4, Store: st2, Logger: quietLogger()})
	defer p2.Close(context.Background())

	if n := st2.Metrics().ResultsRecovered.Load(); n != uint64(len(specs)) {
		t.Fatalf("ResultsRecovered = %d, want %d", n, len(specs))
	}
	for i, s := range specs {
		j, err := p2.Submit(s)
		if err != nil {
			t.Fatalf("resubmit %d: %v", i, err)
		}
		if !j.Deduped {
			t.Fatalf("job %d not eliminated by recovered cache", i)
		}
		got, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("job %d recovered result differs from pre-crash result", i)
		}
		if got.FBCRC != want[i].FBCRC {
			t.Fatalf("job %d framebuffer CRC differs", i)
		}
	}
	if n := p2.Metrics().FramesSimulated.Load(); n != 0 {
		t.Fatalf("restarted pool re-simulated %d frames for recovered results", n)
	}
}

// TestCrashRecoveryResumesFromCheckpoint is the crash soak of the issue:
// kill the pool mid-job after a frame-boundary checkpoint has been
// persisted, restart on the same data dir, and require the resumed job's
// result — per-frame stats and framebuffer CRC — to be byte-identical to a
// run that was never interrupted. The interrupted job is an uploaded-trace
// spec, so the content-addressed blob round-trip is on the recovery path
// too.
func TestCrashRecoveryResumesFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("crash soak is seconds-long; skipped in -short")
	}
	params := workload.Params{Width: 192, Height: 128, Frames: 12, Seed: 7}
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, b.Build(params)); err != nil {
		t.Fatal(err)
	}
	spec := Spec{TraceBin: buf.Bytes(), Tech: gpusim.RE}

	// The never-interrupted reference.
	ref := New(Options{Workers: 1, CheckpointInterval: 1})
	want := runSuite(t, ref, []Spec{spec})[0]
	ref.Close(context.Background())

	dir := t.TempDir()
	st := openTestStore(t, dir, nil)
	p := New(Options{Workers: 1, CheckpointInterval: 1, Store: st, Logger: quietLogger()})
	if _, err := p.Submit(spec); err != nil {
		t.Fatal(err)
	}
	// Kill as soon as the first checkpoint snapshot is published — the
	// window between first checkpoint (after frame 1) and job completion
	// (frame 12) is wide open.
	ckptPath := st.Dir() + "/checkpoints/" + spec.Key().String() + ".snap"
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckptPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint persisted within 30s")
		}
		time.Sleep(100 * time.Microsecond)
	}
	p.Kill()
	st.Close()

	// The job must not have completed — the whole point is dying mid-run.
	st2 := openTestStore(t, dir, nil)
	defer st2.Close()
	if n := st2.Metrics().ResultsRecovered.Load(); n != 0 {
		t.Skip("job completed before Kill; machine too fast for this window")
	}
	if n := st2.Metrics().JobsRecovered.Load(); n != 1 {
		t.Fatalf("JobsRecovered = %d, want 1", n)
	}
	if n := st2.Metrics().CheckpointsRecovered.Load(); n != 1 {
		t.Fatalf("CheckpointsRecovered = %d, want 1", n)
	}

	p2 := New(Options{Workers: 1, CheckpointInterval: 1, Store: st2, Logger: quietLogger()})
	defer p2.Close(context.Background())
	// Joining the recovered in-flight job (or hitting the cache once it
	// completes) yields the resumed result.
	j, err := p2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("recovered job failed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed result differs from uninterrupted run")
	}
	if got.FBCRC != want.FBCRC {
		t.Fatalf("framebuffer CRC after crash-resume = %08x, want %08x", got.FBCRC, want.FBCRC)
	}
	if n := st2.Metrics().JobsResumed.Load(); n != 1 {
		t.Fatalf("JobsResumed = %d, want 1 (job should have resumed from the persisted checkpoint)", n)
	}
	// Resuming from frame k must skip k frames: strictly fewer simulated
	// than the trace length proves the checkpoint was actually used.
	if n := p2.Metrics().FramesSimulated.Load(); n >= uint64(params.Frames) {
		t.Fatalf("restarted pool simulated %d frames; resume saved nothing", n)
	}
}

// TestCrashRecoveryDropsFailedJobs: a terminal failure closes the recovery
// window — failed jobs are neither re-run nor served after a restart.
func TestCrashRecoveryDropsFailedJobs(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, nil)
	p := New(Options{Workers: 1, Store: st, BreakerThreshold: -1, Logger: quietLogger()})
	j, err := p.Submit(Spec{Alias: "no-such-benchmark", Tech: gpusim.RE})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Fatal("unknown alias succeeded")
	}
	p.Close(context.Background())
	st.Close()

	st2 := openTestStore(t, dir, nil)
	defer st2.Close()
	rec := st2.Recovered()
	if len(rec.Pending) != 0 || len(rec.Results) != 0 {
		t.Fatalf("failed job recovered: pending=%d results=%d", len(rec.Pending), len(rec.Results))
	}
}

// TestCrashSoakWithStoreFaults runs the suite with seeded store.write /
// store.sync / store.rename faults firing throughout. Live results must
// stay correct (durability degrades, correctness never), and whatever the
// damaged store recovers after a restart must be byte-identical to the
// fault-free results — injected disk failures lose writes, never corrupt
// them.
func TestCrashSoakWithStoreFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("store-fault soak is seconds-long; skipped in -short")
	}
	specs := chaosSpecs(t)

	base := New(Options{Workers: 4, CheckpointInterval: 1})
	want := runSuite(t, base, specs)
	base.Close(context.Background())
	wantByKey := make(map[string]gpusim.Result)
	for i, s := range specs {
		wantByKey[s.Key().String()] = want[i]
	}

	for _, seed := range []int64{3, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := fault.New(seed).
				With(fault.SiteStoreWrite, fault.Site{Prob: 0.2}).
				With(fault.SiteStoreSync, fault.Site{Prob: 0.2}).
				With(fault.SiteStoreRename, fault.Site{Prob: 0.2})
			dir := t.TempDir()
			st := openTestStore(t, dir, plan)
			p := New(Options{Workers: 4, CheckpointInterval: 1, Store: st, Logger: quietLogger()})
			got := runSuite(t, p, specs)
			for i := range specs {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("job %d live result wrong under store faults", i)
				}
			}
			fired := plan.Fired(fault.SiteStoreWrite) + plan.Fired(fault.SiteStoreSync) + plan.Fired(fault.SiteStoreRename)
			if fired == 0 {
				t.Fatalf("seed %d injected nothing; soak is vacuous", seed)
			}
			p.Kill()
			st.Close()

			// Restart fault-free: everything that survived must be exact.
			st2 := openTestStore(t, dir, nil)
			defer st2.Close()
			rec := st2.Recovered()
			for key, res := range rec.Results {
				wantRes, ok := wantByKey[key]
				if !ok {
					t.Fatalf("recovered unknown key %s", key)
				}
				if !reflect.DeepEqual(res, wantRes) {
					t.Fatalf("recovered result %s corrupted by store faults", key)
				}
			}
			if n := st2.Metrics().SnapshotsQuarantined.Load(); n != 0 {
				t.Fatalf("store faults left %d corrupt snapshots; failed writes must not publish", n)
			}
		})
	}
}

// TestNonDurableSpecsStayOffTheWAL: closure-carrying specs cannot cross a
// restart, so they must never leave pending WAL state behind.
func TestNonDurableSpecsStayOffTheWAL(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir, nil)
	p := New(Options{Workers: 1, Store: st, Logger: quietLogger()})
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	j, err := p.Submit(Spec{
		Alias:  "custom-ccs",
		Params: chaosParams,
		Build:  b.Build,
		Tech:   gpusim.RE,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.Kill()
	st.Close()

	st2 := openTestStore(t, dir, nil)
	defer st2.Close()
	rec := st2.Recovered()
	if len(rec.Pending) != 0 || len(rec.Results) != 0 {
		t.Fatalf("non-durable spec left durable state: pending=%d results=%d", len(rec.Pending), len(rec.Results))
	}
}
