package jobs

import (
	"context"
	"errors"
	"fmt"

	"rendelim/internal/gpusim"
	"rendelim/internal/store"
	"rendelim/internal/workload"
)

// This file is the pool's side of the durability layer: translating specs to
// and from their serializable store form, appending lifecycle records as
// jobs move through the pool, and — at construction — replaying what a
// previous process left behind: recovered results re-enter the LRU cache
// (so resubmissions are eliminated exactly like same-process duplicates),
// and interrupted jobs are resubmitted with their last persisted checkpoint
// attached.
//
// Persistence is best-effort by design: a failed WAL append or snapshot
// write (a full disk, an injected store.* fault) degrades durability — that
// job may re-run after a crash — but never the live result or the store's
// integrity, so errors here are logged and counted, not propagated to the
// submitter.

// ParseKey parses the Key.String() form ("%08x-%08x").
func ParseKey(s string) (Key, error) {
	var k Key
	if _, err := fmt.Sscanf(s, "%08x-%08x", &k.TraceSig, &k.CfgHash); err != nil {
		return Key{}, fmt.Errorf("jobs: bad key %q: %w", s, err)
	}
	return k, nil
}

// Store returns the pool's durability layer, nil when the pool is
// memory-only.
func (p *Pool) Store() *store.Store { return p.opts.Store }

// durable reports whether spec can be rebuilt in a fresh process: closures
// (Build, Mutate) cannot cross a crash, so jobs carrying them are executed
// but never WAL-recorded.
func (s *Spec) durable() bool { return s.Build == nil && s.Mutate == nil }

// specRecord converts spec to its store form, persisting an uploaded trace
// as a content-addressed blob. ok is false when the spec is not durable or
// the blob write failed.
func (p *Pool) specRecord(spec Spec) (store.JobSpec, bool) {
	if !spec.durable() {
		return store.JobSpec{}, false
	}
	rec := store.JobSpec{
		Alias:  spec.Alias,
		Width:  spec.Params.Width,
		Height: spec.Params.Height,
		Frames: spec.Params.Frames,
		Seed:   spec.Params.Seed,
		Tech:   spec.Tech.String(),
		Tag:    spec.Tag,
	}
	if len(spec.TraceBin) > 0 {
		sum, err := p.opts.Store.SaveTrace(spec.TraceBin)
		if err != nil {
			p.log.Warn("store: trace blob write failed; job not durable", "err", err)
			return store.JobSpec{}, false
		}
		rec.TraceCRC = sum
		rec.Alias = "" // the blob is the identity
	}
	return rec, true
}

// specFromRecord is the inverse of specRecord, reloading a referenced trace
// blob from the store.
func specFromRecord(st *store.Store, rec store.JobSpec) (Spec, error) {
	tech, err := gpusim.ParseTechnique(rec.Tech)
	if err != nil {
		return Spec{}, fmt.Errorf("jobs: recovered spec: %w", err)
	}
	spec := Spec{
		Alias:  rec.Alias,
		Params: workload.Params{Width: rec.Width, Height: rec.Height, Frames: rec.Frames, Seed: rec.Seed},
		Tech:   tech,
		Tag:    rec.Tag,
	}
	if rec.TraceCRC != 0 {
		bin, err := st.LoadTrace(rec.TraceCRC)
		if err != nil {
			return Spec{}, fmt.Errorf("jobs: recovered trace blob: %w", err)
		}
		spec.TraceBin = bin
	}
	return spec, nil
}

// recordSubmitted appends the submitted record for a leader job and marks
// the job WAL-tracked. Called between registration and queueing, so the
// worker that picks the job up always sees the final walled flag.
func (p *Pool) recordSubmitted(j *Job) {
	if p.opts.Store == nil {
		return
	}
	rec, ok := p.specRecord(j.spec)
	if !ok {
		return
	}
	if err := p.opts.Store.RecordSubmitted(j.Key.String(), rec); err != nil {
		p.log.Warn("store: submitted record failed; job will not survive a crash", "id", j.ID, "err", err)
		return
	}
	j.walled = true
}

// recordStarted appends the started record for a WAL-tracked job.
func (p *Pool) recordStarted(j *Job) {
	if !j.walled {
		return
	}
	if err := p.opts.Store.RecordStarted(j.Key.String()); err != nil {
		p.log.Warn("store: started record failed", "id", j.ID, "err", err)
	}
}

// persistCheckpoint writes the job's freshly-taken frame-boundary checkpoint
// (j.resume) to the store, so a restarted process resumes from it.
func (p *Pool) persistCheckpoint(j *Job) {
	if !j.walled || j.resume == nil || j.resume.cp == nil {
		return
	}
	err := p.opts.Store.SaveCheckpoint(j.Key.String(), j.resume.cp.Frame(), j.resume.frames, j.resume.cp.EncodeBinary())
	if err != nil {
		p.log.Warn("store: checkpoint write failed; crash recovery falls back to an earlier frame", "id", j.ID, "err", err)
	}
}

// persistResult durably saves a completed result. Results are persisted
// even for non-WAL-tracked jobs when possible: the signature cache they
// repopulate is keyed by inputs, so serving them after a restart is exactly
// as correct as serving them now.
func (p *Pool) persistResult(j *Job, res gpusim.Result) {
	if p.opts.Store == nil || !j.spec.durable() {
		return
	}
	if !j.walled {
		// Without a submitted record a bare result snapshot is unreachable
		// on replay; re-append the spec first so the completion is linked.
		p.recordSubmitted(j)
		if !j.walled {
			return
		}
	}
	if err := p.opts.Store.SaveResult(j.Key.String(), res); err != nil {
		p.log.Warn("store: result write failed; job may re-run after a crash", "id", j.ID, "err", err)
	}
}

// persistFailure closes a WAL-tracked job's recovery window after a terminal
// failure — except when the "failure" is the pool itself going away
// (shutdown cancellation), which is precisely the interruption recovery
// exists for.
func (p *Pool) persistFailure(j *Job, err error) {
	if !j.walled || errors.Is(err, context.Canceled) || errors.Is(err, ErrClosed) {
		return
	}
	if werr := p.opts.Store.RecordFailed(j.Key.String(), err.Error()); werr != nil {
		p.log.Warn("store: failed record failed; job may re-run after a crash", "id", j.ID, "err", werr)
	}
}

// recoverFromStore replays the store's recovery set into the live pool:
// results into the LRU cache (oldest completion first, preserving recency),
// then interrupted jobs back onto the queue with their decoded checkpoints.
// Called from New after workers have started.
func (p *Pool) recoverFromStore() {
	st := p.opts.Store
	rec := st.Recovered()
	for _, ks := range rec.ResultOrder {
		k, err := ParseKey(ks)
		if err != nil {
			p.log.Warn("store: recovered result has bad key; dropped", "key", ks, "err", err)
			continue
		}
		p.mu.Lock()
		p.cache.put(k, rec.Results[ks])
		p.mu.Unlock()
	}
	if len(rec.Results) > 0 {
		p.log.Info("store: results recovered into cache", "count", len(rec.Results))
		p.journal.Record("store.recovered", "results restored into cache", "count", fmt.Sprint(len(rec.Results)))
	}

	for _, pj := range rec.Pending {
		spec, err := specFromRecord(st, pj.Spec)
		if err != nil {
			p.log.Warn("store: interrupted job not recoverable; dropped", "key", pj.Key, "err", err)
			continue
		}
		if got := spec.Key().String(); got != pj.Key {
			p.log.Warn("store: recovered spec signature mismatch; dropped", "key", pj.Key, "resigned", got)
			continue
		}
		var rs *resume
		if len(pj.Checkpoint) > 0 {
			cp, derr := gpusim.DecodeCheckpoint(pj.Checkpoint)
			if derr != nil {
				p.log.Warn("store: recovered checkpoint undecodable; restarting job from frame 0", "key", pj.Key, "err", derr)
			} else {
				rs = &resume{cp: cp, frames: append([]gpusim.Stats(nil), pj.Frames...), recovered: true}
			}
		}
		j, err := p.submit(spec, true, rs)
		if err != nil {
			p.log.Warn("store: interrupted job resubmission failed", "key", pj.Key, "err", err)
			continue
		}
		p.log.Info("store: interrupted job resubmitted", "key", pj.Key, "id", j.ID, "from_frame", pj.Frame)
		p.journal.Record("store.resubmitted", "interrupted job recovered from WAL", "key", pj.Key, "id", j.ID)
	}
}
