// Package jobs is the simulation-job service layer: a bounded worker pool
// that schedules gpusim runs, with Rendering Elimination applied one level
// up — every job is keyed by a CRC32 signature of its *inputs* (the trace
// bytes or workload spec, plus the simulation config), and a key match
// eliminates the whole run, either from the LRU result cache (the previous
// "frame") or by joining an identical in-flight execution (singleflight).
// The same pool schedules both the resvc HTTP service and the reexp batch
// harness, so the service is a live demonstration of the paper's idea:
// redundant work is discarded before it enters the pipeline.
package jobs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"rendelim/internal/api"
	"rendelim/internal/crc"
	"rendelim/internal/energy"
	"rendelim/internal/fault"
	"rendelim/internal/gpusim"
	"rendelim/internal/obs"
	"rendelim/internal/rerr"
	"rendelim/internal/store"
	"rendelim/internal/trace"
	"rendelim/internal/workload"
)

// Spec describes one simulation job. Exactly one input form is used: an
// uploaded trace binary (TraceBin), a custom builder (Build, keyed by
// Alias), or a suite benchmark alias resolved via workload.ByAlias.
type Spec struct {
	// Alias names the workload; with TraceBin empty and Build nil it is
	// resolved through workload.ByAlias.
	Alias  string
	Params workload.Params

	// TraceBin is an encoded internal/trace binary (untrusted upload).
	TraceBin []byte

	// Build overrides alias resolution with a custom trace builder; the
	// Alias string must still uniquely identify it for signing.
	Build func(workload.Params) *api.Trace

	// Tech selects the technique; Mutate customizes the config further and
	// Tag must uniquely identify that customization for signing.
	Tech   gpusim.Technique
	Tag    string
	Mutate func(*gpusim.Config)
}

// Key is a job signature: CRC32 over the job's inputs and CRC32 over its
// configuration — the (trace signature, config hash) pair of the issue, and
// the job-level analogue of the per-tile signature of Section III.
type Key struct {
	TraceSig uint32
	CfgHash  uint32
}

// String renders the key for logs and API payloads.
func (k Key) String() string { return fmt.Sprintf("%08x-%08x", k.TraceSig, k.CfgHash) }

// Key signs the spec. Uploaded traces are signed over their raw bytes;
// builder specs over the canonical (alias, params) encoding.
func (s *Spec) Key() Key {
	var tsig uint32
	if len(s.TraceBin) > 0 {
		tsig = crc.Checksum(s.TraceBin)
	} else {
		tsig = crc.Checksum([]byte(fmt.Sprintf("alias:%s/%dx%d/f%d/s%d",
			s.Alias, s.Params.Width, s.Params.Height, s.Params.Frames, s.Params.Seed)))
	}
	cfg := crc.Checksum([]byte(fmt.Sprintf("tech:%s/tag:%s", s.Tech, s.Tag)))
	return Key{TraceSig: tsig, CfgHash: cfg}
}

// breakerKey buckets the spec for the per-benchmark circuit breaker:
// uploaded traces share one bucket ("upload" — their failure modes are about
// decode and limits, not a named benchmark), alias and custom-builder specs
// are keyed by benchmark name.
func (s *Spec) breakerKey() string {
	if len(s.TraceBin) > 0 {
		return "upload"
	}
	if s.Alias != "" {
		return s.Alias
	}
	return "custom"
}

// transientError marks failures worth retrying.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the pool retries it with backoff.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is retryable. Worker panics and injected
// faults count: a panic is isolated to one attempt (the next attempt resumes
// from the job's last checkpoint), and fault injections model transient
// infrastructure failures by construction.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t) ||
		errors.Is(err, rerr.ErrWorkerPanic) ||
		errors.Is(err, fault.ErrInjected)
}

// ErrClosed is returned by Submit after Close has begun draining.
var ErrClosed = errors.New("jobs: pool closed")

// ErrOverloaded is returned by TrySubmit when the submission queue is full
// (load shedding; the server maps it to HTTP 429).
var ErrOverloaded = errors.New("jobs: queue full")

// panicError converts a recovered panic value into an error wrapping
// rerr.ErrWorkerPanic (and the original error, if the panic carried one).
func panicError(r any) error {
	if err, ok := r.(error); ok {
		return fmt.Errorf("jobs: run panicked: %w: %w", rerr.ErrWorkerPanic, err)
	}
	return fmt.Errorf("jobs: run panicked: %w: %v", rerr.ErrWorkerPanic, r)
}

// State is a job's lifecycle position.
type State int32

// Job states.
const (
	Queued State = iota
	Running
	Done
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// Job is one submission. Deduped jobs share a call with the leader that is
// (or was) actually simulating.
type Job struct {
	ID      string
	Key     Key
	Deduped bool // eliminated by signature match: cache hit or in-flight join
	Created time.Time

	spec  Spec
	call  *call
	state atomic.Int32 // mirrors call completion; Running set by worker

	// resume carries checkpoint state across retry attempts and worker
	// panics, so recovery continues from the last completed frame instead
	// of recomputing from frame 0. Owned by the single worker executing
	// the job (workers never share an in-flight job).
	resume *resume
	// walled is set once the job's submitted record reached the durable
	// WAL; only walled jobs append further lifecycle records. Written
	// before the job is queued, read by the worker that dequeues it.
	walled bool
	// panics counts worker-level panics while this job was in flight,
	// bounding how often it is requeued.
	panics atomic.Int32
}

// resume is a job's recovery state: the last frame-boundary checkpoint and
// the stats of every frame completed before it. recovered marks state that
// crossed a process restart through the store (for the resumed-jobs metric).
type resume struct {
	cp        *gpusim.Checkpoint
	frames    []gpusim.Stats
	recovered bool
}

// Wait blocks until the job completes (or ctx expires — which abandons the
// wait, not the execution) and returns the outcome.
func (j *Job) Wait(ctx context.Context) (gpusim.Result, error) {
	res, err := j.call.wait(ctx)
	return res, err
}

// Done exposes the completion channel for select loops.
func (j *Job) Done() <-chan struct{} { return j.call.done }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	select {
	case <-j.call.done:
		if j.call.err != nil {
			return Failed
		}
		return Done
	default:
		return State(j.state.Load())
	}
}

// Err returns the terminal error, if the job has failed.
func (j *Job) Err() error {
	select {
	case <-j.call.done:
		return j.call.err
	default:
		return nil
	}
}

// Result returns the outcome without blocking; ok is false while the job is
// still pending.
func (j *Job) Result() (res gpusim.Result, err error, ok bool) {
	select {
	case <-j.call.done:
		return j.call.result, j.call.err, true
	default:
		return gpusim.Result{}, nil, false
	}
}

// Cancel aborts the job's execution (and that of every follower sharing it).
func (j *Job) Cancel() {
	if j.call.cancel != nil {
		j.call.cancel()
	}
}

// RunFunc executes one job. observe records per-stage latencies into the
// pool metrics; implementations may ignore it.
type RunFunc func(ctx context.Context, spec Spec, observe func(stage string, d time.Duration)) (gpusim.Result, error)

// Options configures a Pool. Zero values select the documented defaults.
type Options struct {
	Workers    int           // concurrent simulations; default GOMAXPROCS/TileWorkers
	QueueDepth int           // Submit blocks past this many waiting jobs; default 1024
	CacheSize  int           // LRU result entries; default 512
	Timeout    time.Duration // per-attempt deadline; 0 = none
	Retries    int           // transient-failure/timeout retries; default 0
	Backoff    time.Duration // initial retry backoff (doubles); default 50ms
	Run        RunFunc       // job executor; default: built-in resumable runner
	Logger     *slog.Logger  // structured job-lifecycle logs; default slog.Default

	// CheckpointInterval makes the built-in runner snapshot the simulator
	// every n completed frames, so a retried attempt (transient failure,
	// panic, or per-attempt timeout) resumes from the last checkpoint
	// instead of frame 0. 0 disables checkpointing. Ignored when a custom
	// Run is set.
	CheckpointInterval int

	// Fault, when non-nil, injects deterministic faults at the pool's
	// sites (fault.SiteWorker before each attempt, fault.SiteTraceDecode
	// before decoding uploads) and is threaded into each simulation's
	// config (dram.read / dram.write). Nil costs nothing.
	Fault *fault.Plan

	// BreakerThreshold opens a per-benchmark circuit breaker after this
	// many consecutive non-transient terminal failures; submissions for
	// that benchmark are rejected with ErrBreakerOpen until
	// BreakerCooldown passes, then a half-open trial admits one. 0 selects
	// the default (5); negative disables the breaker.
	BreakerThreshold int
	BreakerCooldown  time.Duration // default 30s

	// Journal, when non-nil, receives notable job-lifecycle events
	// (accepted, eliminated, shed, panicked, breaker transitions) for the
	// /debug/events flight recorder. Nil costs nothing.
	Journal *obs.Journal

	// Store, when non-nil, makes job state durable: leader submissions,
	// starts, frame-boundary checkpoints, completions and terminal failures
	// are WAL-logged and snapshotted, and at construction the pool replays
	// the store's recovery set — completed results re-enter the cache and
	// interrupted jobs are resubmitted from their last checkpoint. Nil (the
	// default) keeps the pool memory-only. The caller owns the store's
	// lifecycle and must close it after the pool.
	Store *store.Store

	// TileWorkers sets each simulation's raster-phase parallelism (see
	// gpusim.Config.TileWorkers): 0 or 1 renders serially, n > 1 uses n
	// goroutines per running job, negative uses one per host CPU. When
	// Workers is left zero it defaults to GOMAXPROCS divided by the
	// effective tile-worker count, so the job pool and the per-job tile
	// pools compose without oversubscribing the host. Results never depend
	// on this knob, so it is excluded from job signatures.
	TileWorkers int
}

// effectiveTileWorkers resolves the TileWorkers option the way gpusim does.
func (o Options) effectiveTileWorkers() int {
	tw := o.TileWorkers
	if tw < 0 {
		tw = runtime.GOMAXPROCS(0)
	}
	if tw < 1 {
		tw = 1
	}
	return tw
}

// Pool is the bounded scheduler: a FIFO queue drained by Workers goroutines,
// fronted by the signature cache and singleflight dedup.
type Pool struct {
	opts    Options
	metrics *Metrics
	log     *slog.Logger
	journal *obs.Journal // nil-safe; see Options.Journal

	queue    chan *Job
	draining chan struct{} // closed when Close or Kill begins; aborts retry backoffs
	sendMu   sync.RWMutex  // Submit sends under RLock; Close closes queue under Lock
	wg       sync.WaitGroup
	live     atomic.Int64 // currently-running worker goroutines; never shrinks below Workers
	brk      *breaker     // per-benchmark circuit breaker; nil when disabled

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex // guards cache, registry, ids, closed; ordered before flight.mu
	cache    *lru
	flight   *flight
	reg      map[string]*Job
	regOrder []string
	nextID   uint64
	closed   bool
}

// registryLimit bounds how many finished jobs stay addressable by ID.
const registryLimit = 4096

// New builds a pool and starts its workers.
//
// Deprecated: use NewPool with functional options (WithWorkers,
// WithTileWorkers, WithCheckpointInterval, ...). New remains as a one-call
// compatibility shim and builds an identical pool.
func New(opts Options) *Pool {
	if opts.Workers <= 0 {
		// Share the host between the job pool and each job's tile workers:
		// Workers * TileWorkers ≈ GOMAXPROCS.
		opts.Workers = runtime.GOMAXPROCS(0) / opts.effectiveTileWorkers()
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 1024
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = 512
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 30 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		opts:       opts,
		metrics:    newMetrics(),
		log:        opts.Logger,
		journal:    opts.Journal,
		queue:      make(chan *Job, opts.QueueDepth),
		draining:   make(chan struct{}),
		baseCtx:    ctx,
		baseCancel: cancel,
		cache:      newLRU(opts.CacheSize),
		flight:     newFlight(),
		reg:        make(map[string]*Job),
	}
	if opts.BreakerThreshold > 0 {
		p.brk = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	p.metrics.inflightFn = p.flight.len
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	if opts.Store != nil {
		p.recoverFromStore()
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.opts.Workers }

// WorkerCount returns the number of live worker goroutines. It never drops
// below Workers() for more than the instant between a worker panicking and
// its replacement starting: the panic guard respawns before unwinding.
func (p *Pool) WorkerCount() int { return int(p.live.Load()) }

// Metrics exposes the pool counters.
func (p *Pool) Metrics() *Metrics { return p.metrics }

// CacheLen returns the number of cached results.
func (p *Pool) CacheLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cache.len()
}

// Get returns a previously submitted job by ID.
func (p *Pool) Get(id string) (*Job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.reg[id]
	return j, ok
}

// Submit schedules spec. Identical submissions are eliminated: a cached
// result completes the job immediately, an in-flight identical job is
// joined. Submit blocks only when the queue is full, and fails after Close.
func (p *Pool) Submit(spec Spec) (*Job, error) {
	return p.submit(spec, true, nil)
}

// TrySubmit is Submit with load shedding: when the queue is full it fails
// immediately with ErrOverloaded instead of blocking. The HTTP server uses
// it so overload surfaces as 429 + Retry-After rather than piled-up
// handlers.
func (p *Pool) TrySubmit(spec Spec) (*Job, error) {
	return p.submit(spec, false, nil)
}

// submit is the shared submission path. rs, non-nil only for store-recovered
// jobs, attaches a cross-restart checkpoint before any worker can dequeue
// the job.
func (p *Pool) submit(spec Spec, block bool, rs *resume) (*Job, error) {
	p.metrics.Submitted.Add(1)
	key := spec.Key()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	j := &Job{
		ID:      fmt.Sprintf("j-%06d", p.nextID),
		Key:     key,
		Created: time.Now(),
		spec:    spec,
		resume:  rs,
	}
	p.nextID++

	// Level-1 elimination: the result cache (the "previous frame").
	if res, ok := p.cache.get(key); ok {
		c := newCall(nil, nil)
		c.finish(res, nil)
		j.call = c
		j.Deduped = true
		p.register(j)
		p.mu.Unlock()
		p.metrics.Deduped.Add(1)
		p.metrics.CacheHits.Add(1)
		p.log.Debug("job eliminated", "id", j.ID, "key", key.String(), "via", "cache")
		p.journal.Record("job.eliminated", "served from result cache", "id", j.ID, "key", key.String(), "via", "cache")
		return j, nil
	}

	// Circuit breaker: after repeated non-transient failures of this
	// benchmark, reject fresh executions until the cooldown passes. Checked
	// after the cache (a cached result is free and known good) and before
	// singleflight (an open breaker means nothing identical is in flight).
	if p.brk != nil {
		if retryAfter, open := p.brk.check(spec.breakerKey()); open {
			p.mu.Unlock()
			p.metrics.BreakerRejected.Add(1)
			return nil, &BreakerOpenError{Benchmark: spec.breakerKey(), RetryAfter: retryAfter}
		}
	}

	// Level-2 elimination: join an identical in-flight job (singleflight).
	ctx, cancel := context.WithCancel(p.baseCtx)
	c := newCall(ctx, cancel)
	if leader := p.flight.join(key, c); leader != nil {
		cancel()
		j.call = leader
		j.Deduped = true
		p.register(j)
		p.mu.Unlock()
		p.metrics.Deduped.Add(1)
		p.metrics.Joins.Add(1)
		p.log.Debug("job eliminated", "id", j.ID, "key", key.String(), "via", "inflight-join")
		p.journal.Record("job.eliminated", "joined identical in-flight job", "id", j.ID, "key", key.String(), "via", "inflight-join")
		return j, nil
	}

	// This job is the leader: queue it for a worker. Durable specs hit the
	// WAL first — after the fsynced submitted record lands, a crash at any
	// later point recovers this job.
	j.call = c
	p.register(j)
	p.mu.Unlock()
	p.recordSubmitted(j)
	p.metrics.queueLen.Add(1)

	p.sendMu.RLock()
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		// Raced with Close after registering as leader: fail the call so
		// any follower that joined it is released too.
		p.sendMu.RUnlock()
		p.metrics.queueLen.Add(-1)
		p.mu.Lock()
		p.flight.forget(key)
		p.mu.Unlock()
		cancel()
		c.finish(gpusim.Result{}, ErrClosed)
		return nil, ErrClosed
	}
	if block {
		p.queue <- j
	} else {
		select {
		case p.queue <- j:
		default:
			// Queue full: shed the load instead of blocking the caller.
			p.sendMu.RUnlock()
			p.metrics.queueLen.Add(-1)
			p.metrics.LoadShed.Add(1)
			p.mu.Lock()
			p.flight.forget(key)
			p.mu.Unlock()
			cancel()
			c.finish(gpusim.Result{}, ErrOverloaded)
			p.log.Warn("job shed", "id", j.ID, "key", key.String(), "queue_depth", p.opts.QueueDepth)
			p.journal.Record("job.shed", "queue full; submission rejected", "id", j.ID, "key", key.String())
			return nil, ErrOverloaded
		}
	}
	p.sendMu.RUnlock()
	p.log.Debug("job queued", "id", j.ID, "key", key.String(), "alias", spec.Alias, "tech", spec.Tech.String())
	p.journal.Record("job.accepted", "queued for execution", "id", j.ID, "key", key.String(), "alias", spec.Alias)
	return j, nil
}

// register indexes the job by ID; caller holds p.mu.
func (p *Pool) register(j *Job) {
	p.reg[j.ID] = j
	p.regOrder = append(p.regOrder, j.ID)
	for len(p.regOrder) > registryLimit {
		old := p.regOrder[0]
		if oj, ok := p.reg[old]; ok {
			if oj.State() == Queued || oj.State() == Running {
				break // never drop a live job; registry shrinks once it finishes
			}
			delete(p.reg, old)
		}
		p.regOrder = p.regOrder[1:]
	}
}

// Close drains the pool: no new submissions, queued and running jobs finish.
// When ctx expires first, outstanding executions are cancelled and ctx.Err
// is returned.
func (p *Pool) Close(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.draining)
	p.sendMu.Lock()
	close(p.queue)
	p.sendMu.Unlock()

	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Kill hard-stops the pool without draining — the in-process equivalent of
// kill -9 for crash-recovery tests: queued and running jobs are cancelled
// mid-flight and their waiters released with context.Canceled. Because
// shutdown cancellation never appends a failed record, a store-backed pool
// reopened on the same data dir recovers those jobs and resumes them from
// their last persisted checkpoint. Kill returns once every worker has
// stopped; the pool is unusable afterwards.
func (p *Pool) Kill() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.draining)
	p.baseCancel() // cancel first: running frames stop at the next boundary
	p.sendMu.Lock()
	close(p.queue)
	p.sendMu.Unlock()
	p.wg.Wait()
}

// worker drains the queue. It is panic-isolated: any panic that escapes a
// job's execution path (including injected fault.SiteWorker panics that fire
// outside runOnce's recover) is recovered here, the job is requeued or
// failed, and a replacement goroutine is started before this one unwinds —
// the pool's worker count never decreases.
func (p *Pool) worker() {
	p.live.Add(1)
	var cur *Job
	defer p.wg.Done()
	defer func() {
		if r := recover(); r == nil {
			p.live.Add(-1) // clean exit: queue closed
		} else {
			// Respawn first (wg.Add before the deferred wg.Done runs) so
			// Close's Wait can't slip through a zero-count window, then
			// account for this goroutine's death and handle the job.
			p.wg.Add(1)
			go p.worker()
			p.live.Add(-1)
			p.handleWorkerPanic(cur, r)
		}
	}()
	for j := range p.queue {
		cur = j
		p.execute(j)
		cur = nil
	}
}

// handleWorkerPanic disposes of the job a dying worker was holding: requeue
// it (bounded by Retries) so the replacement worker resumes it from its last
// checkpoint, or fail it terminally.
func (p *Pool) handleWorkerPanic(j *Job, r any) {
	err := panicError(r)
	p.metrics.Panics.Add(1)
	p.log.Error("worker panicked; replaced", "err", err, "stack", string(debug.Stack()))
	if j == nil {
		p.journal.Record("job.panicked", "worker panicked between jobs; replaced")
		return
	}
	p.journal.Record("job.panicked", "worker panicked; replaced", "id", j.ID, "key", j.Key.String())
	if int(j.panics.Add(1)) <= p.opts.Retries && p.requeue(j) {
		p.metrics.Retries.Add(1)
		return
	}
	p.finishFailed(j, err)
}

// requeue puts a panic-interrupted job back on the queue. Returns false if
// the pool is draining or the queue is full (blocking here would deadlock a
// goroutine that is mid-unwind).
func (p *Pool) requeue(j *Job) bool {
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return false
	}
	j.state.Store(int32(Queued))
	p.metrics.queueLen.Add(1)
	select {
	case p.queue <- j:
		return true
	default:
		p.metrics.queueLen.Add(-1)
		j.state.Store(int32(Running))
		return false
	}
}

// finishFailed terminally fails a job outside the normal execute path.
func (p *Pool) finishFailed(j *Job, err error) {
	p.mu.Lock()
	p.flight.forget(j.Key)
	p.mu.Unlock()
	if p.brk != nil && !IsTransient(err) && !errors.Is(err, context.Canceled) {
		if p.brk.onFailure(j.spec.breakerKey()) {
			p.journal.Record("breaker.open", "circuit opened after repeated failures", "benchmark", j.spec.breakerKey())
		}
	}
	p.metrics.Failed.Add(1)
	p.persistFailure(j, err)
	j.call.finish(gpusim.Result{}, err)
	if j.call.cancel != nil {
		j.call.cancel()
	}
}

func (p *Pool) execute(j *Job) {
	p.metrics.queueLen.Add(-1)
	p.metrics.ObserveStage(StageQueue, time.Since(j.Created).Seconds())
	p.metrics.Running.Add(1)
	defer p.metrics.Running.Add(-1) // deferred: must decrement when a panic unwinds
	j.state.Store(int32(Running))
	p.recordStarted(j)

	start := time.Now()
	res, err := p.runWithRetry(j.call.ctx, j)

	p.mu.Lock()
	if err == nil {
		p.cache.put(j.Key, res)
	}
	p.flight.forget(j.Key)
	p.mu.Unlock()

	if err == nil {
		if p.brk != nil && p.brk.onSuccess(j.spec.breakerKey()) {
			p.journal.Record("breaker.close", "half-open trial succeeded; circuit closed", "benchmark", j.spec.breakerKey())
		}
		p.metrics.Completed.Add(1)
		p.metrics.ObserveResult(res)
		p.persistResult(j, res)
		p.log.Debug("job done", "id", j.ID, "key", j.Key.String(),
			"frames", len(res.Frames), "tiles_skipped", res.Total.TilesSkipped,
			"duration", time.Since(start))
	} else {
		if p.brk != nil && !IsTransient(err) && !errors.Is(err, context.Canceled) {
			if p.brk.onFailure(j.spec.breakerKey()) {
				p.journal.Record("breaker.open", "circuit opened after repeated failures", "benchmark", j.spec.breakerKey())
			}
		}
		p.metrics.Failed.Add(1)
		p.persistFailure(j, err)
		p.log.Warn("job failed", "id", j.ID, "key", j.Key.String(),
			"duration", time.Since(start), "err", err)
	}
	j.call.finish(res, err)
	if j.call.cancel != nil {
		j.call.cancel() // release the context chained off baseCtx
	}
}

// runWithRetry executes the job with a per-attempt timeout and retry with
// exponential backoff. Transient failures, injected faults, contained panics
// and per-attempt timeouts all retry (while the job's own context is still
// alive); with checkpointing enabled each retry resumes from the job's last
// completed checkpoint rather than frame 0.
func (p *Pool) runWithRetry(ctx context.Context, j *Job) (gpusim.Result, error) {
	observe := func(stage string, d time.Duration) { p.metrics.ObserveStage(stage, d.Seconds()) }
	backoff := p.opts.Backoff
	var res gpusim.Result
	var err error
	for attempt := 0; ; attempt++ {
		// Injected worker fault: a Panic kind escapes to the worker guard
		// (exercising requeue/respawn); a Transient kind fails this attempt.
		if ferr := p.opts.Fault.Check(fault.SiteWorker); ferr != nil {
			err = Transient(ferr)
		} else {
			res, err = func() (gpusim.Result, error) {
				actx := ctx
				if p.opts.Timeout > 0 {
					var cancel context.CancelFunc
					actx, cancel = context.WithTimeout(ctx, p.opts.Timeout)
					defer cancel()
				}
				return p.runOnce(actx, j, observe)
			}()
		}
		// A deadline that the job's own context did not cause is a
		// per-attempt timeout: count it, and retry (resuming from the last
		// checkpoint) if budget remains.
		timedOut := errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil
		if timedOut {
			p.metrics.Timeouts.Add(1)
		}
		if err == nil || attempt >= p.opts.Retries || ctx.Err() != nil || !(IsTransient(err) || timedOut) {
			return res, err
		}
		p.metrics.Retries.Add(1)
		p.log.Warn("job retrying", "id", j.ID, "attempt", attempt+1, "backoff", backoff, "err", err)
		// Jitter the wait to ±50% so retry storms decorrelate, and abort it
		// when the job is cancelled or the pool starts draining — a job
		// sitting out a backoff must not stall shutdown for the full delay.
		select {
		case <-time.After(backoff/2 + time.Duration(rand.Int63n(int64(backoff)))):
		case <-ctx.Done():
			return res, ctx.Err()
		case <-p.draining:
			return res, err
		}
		backoff *= 2
	}
}

// runOnce executes one attempt with panic containment: a panicking
// simulation fails its attempt (retryably — the error wraps
// rerr.ErrWorkerPanic), never the worker.
func (p *Pool) runOnce(ctx context.Context, j *Job, observe func(string, time.Duration)) (res gpusim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.metrics.Panics.Add(1)
			err = panicError(r)
			p.log.Error("run panicked; contained", "id", j.ID, "err", err, "stack", string(debug.Stack()))
		}
	}()
	if p.opts.Run != nil {
		return p.opts.Run(ctx, j.spec, observe)
	}
	return p.runResumable(ctx, j, observe)
}

// DefaultRun builds the trace (decode upload, custom builder, or suite
// alias), then simulates with cancellation honored at frame boundaries, so
// timeouts and cancellation interrupt long runs. Simulations render
// serially; RunWithTileWorkers parallelizes them.
func DefaultRun(ctx context.Context, spec Spec, observe func(stage string, d time.Duration)) (gpusim.Result, error) {
	return runSpec(ctx, spec, observe, 0)
}

// RunWithTileWorkers returns a RunFunc like DefaultRun whose simulations
// render tiles on the given number of goroutines (gpusim.Config.TileWorkers
// semantics). Results are byte-identical at any worker count.
func RunWithTileWorkers(tileWorkers int) RunFunc {
	return func(ctx context.Context, spec Spec, observe func(stage string, d time.Duration)) (gpusim.Result, error) {
		return runSpec(ctx, spec, observe, tileWorkers)
	}
}

func runSpec(ctx context.Context, spec Spec, observe func(stage string, d time.Duration), tileWorkers int) (gpusim.Result, error) {
	buildStart := time.Now()
	var tr *api.Trace
	switch {
	case len(spec.TraceBin) > 0:
		var err error
		tr, err = trace.Decode(bytes.NewReader(spec.TraceBin))
		if err != nil {
			return gpusim.Result{}, fmt.Errorf("jobs: %w", err)
		}
	case spec.Build != nil:
		tr = spec.Build(spec.Params)
	default:
		b, err := workload.ByAlias(spec.Alias)
		if err != nil {
			return gpusim.Result{}, err
		}
		tr = b.Build(spec.Params)
	}
	cfg := gpusim.DefaultConfig()
	cfg.Technique = spec.Tech
	cfg.TileWorkers = tileWorkers
	if spec.Mutate != nil {
		spec.Mutate(&cfg)
	}
	sim, err := gpusim.New(tr, cfg)
	if err != nil {
		return gpusim.Result{}, err
	}
	observe(StageBuild, time.Since(buildStart))

	simStart := time.Now()
	res, err := sim.RunContext(ctx)
	if err != nil {
		return gpusim.Result{}, err
	}
	observe(StageSimulate, time.Since(simStart))
	return res, nil
}

// ResultSummary is the JSON-friendly digest of a run the service returns —
// including the tile-elimination rate, so the per-job skip fraction and the
// service's job-elimination ratio read the same way.
type ResultSummary struct {
	Name      string `json:"name"`
	Technique string `json:"technique"`
	Frames    int    `json:"frames"`

	Cycles         uint64 `json:"cycles"`
	GeometryCycles uint64 `json:"geometry_cycles"`
	RasterCycles   uint64 `json:"raster_cycles"`

	TilesTotal       uint64  `json:"tiles_total"`
	TilesSkipped     uint64  `json:"tiles_skipped"`
	TileSkipFraction float64 `json:"tile_skip_fraction"`

	FragsShaded uint64  `json:"frags_shaded"`
	DRAMBytes   uint64  `json:"dram_bytes"`
	EnergyMJ    float64 `json:"energy_mj"`
}

// Summarize digests a run result.
func Summarize(res gpusim.Result) ResultSummary {
	t := res.Total
	eb := energy.Default().Compute(t.Activity)
	return ResultSummary{
		Name:             res.Name,
		Technique:        res.Technique.String(),
		Frames:           len(res.Frames),
		Cycles:           t.TotalCycles(),
		GeometryCycles:   t.GeometryCycles,
		RasterCycles:     t.RasterCycles,
		TilesTotal:       t.TilesTotal,
		TilesSkipped:     t.TilesSkipped,
		TileSkipFraction: t.SkipFraction(),
		FragsShaded:      t.FragsShaded,
		DRAMBytes:        t.TotalTraffic(),
		EnergyMJ:         eb.Total() * 1e3,
	}
}
