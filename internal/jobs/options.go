package jobs

import (
	"log/slog"
	"time"

	"rendelim/internal/fault"
	"rendelim/internal/obs"
	"rendelim/internal/store"
)

// Option configures a Pool built with NewPool. The zero configuration is
// usable: NewPool() sizes itself from GOMAXPROCS with the same defaults New
// has always applied. Options compose left to right; later options win.
type Option func(*Options)

// NewPool builds a worker pool from functional options. It is the preferred
// constructor; New(Options{...}) remains as a compatibility shim and both
// produce identical pools (see TestNewPoolOptionsEquivalence).
func NewPool(opts ...Option) *Pool {
	var o Options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return New(o)
}

// WithWorkers sets the number of concurrent simulations. Zero or negative
// selects the default: GOMAXPROCS divided by the effective tile-worker
// count, so job-level and tile-level parallelism compose without
// oversubscribing the host.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithTileWorkers sets each simulation's raster-phase parallelism (see
// gpusim.Config.TileWorkers): 0 or 1 renders serially, n > 1 uses n
// goroutines per running job, negative uses one per host CPU. Results never
// depend on this knob, so it is excluded from job signatures.
func WithTileWorkers(n int) Option { return func(o *Options) { o.TileWorkers = n } }

// WithQueueDepth bounds the number of waiting jobs before Submit blocks.
// Default 1024.
func WithQueueDepth(n int) Option { return func(o *Options) { o.QueueDepth = n } }

// WithCacheSize sets the LRU result-cache capacity in entries. Default 512.
func WithCacheSize(n int) Option { return func(o *Options) { o.CacheSize = n } }

// WithTimeout sets the per-attempt deadline. Zero means no deadline.
func WithTimeout(d time.Duration) Option { return func(o *Options) { o.Timeout = d } }

// WithRetries sets how many times a transient failure or per-attempt
// timeout is retried. Default 0.
func WithRetries(n int) Option { return func(o *Options) { o.Retries = n } }

// WithBackoff sets the initial retry backoff, which doubles per attempt.
// Default 50ms.
func WithBackoff(d time.Duration) Option { return func(o *Options) { o.Backoff = d } }

// WithRun replaces the built-in resumable runner with a custom job
// executor.
func WithRun(fn RunFunc) Option { return func(o *Options) { o.Run = fn } }

// WithLogger sets the structured job-lifecycle logger. Default
// slog.Default().
func WithLogger(l *slog.Logger) Option { return func(o *Options) { o.Logger = l } }

// WithCheckpointInterval makes the built-in runner snapshot the simulator
// every n completed frames, so a retried attempt resumes from the last
// checkpoint instead of frame 0. Zero disables checkpointing. Ignored when
// a custom Run is set.
func WithCheckpointInterval(n int) Option { return func(o *Options) { o.CheckpointInterval = n } }

// WithFault injects deterministic faults at the pool's sites and threads
// the plan into each simulation's config. Nil costs nothing.
func WithFault(p *fault.Plan) Option { return func(o *Options) { o.Fault = p } }

// WithBreaker configures the per-benchmark circuit breaker: it opens after
// threshold consecutive non-transient terminal failures and admits a
// half-open trial after cooldown. threshold 0 selects the default (5),
// negative disables the breaker; cooldown <= 0 selects the default (30s).
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(o *Options) {
		o.BreakerThreshold = threshold
		o.BreakerCooldown = cooldown
	}
}

// WithStore makes job state durable: leader submissions, starts,
// frame-boundary checkpoints, completions and terminal failures are logged
// to the store's WAL, and the new pool replays the store's recovery set —
// completed results re-enter the result cache and interrupted jobs are
// resubmitted from their last persisted checkpoint. Nil keeps the pool
// memory-only. The caller owns the store's lifecycle and must close it
// after the pool.
func WithStore(st *store.Store) Option { return func(o *Options) { o.Store = st } }

// WithJournal routes notable job-lifecycle events (accepted, eliminated,
// shed, panicked, breaker transitions) to the /debug/events flight
// recorder. Nil costs nothing.
func WithJournal(j *obs.Journal) Option { return func(o *Options) { o.Journal = j } }
