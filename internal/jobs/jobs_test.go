package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rendelim/internal/gpusim"
	"rendelim/internal/workload"
)

// fakeRun builds a RunFunc that counts executions and returns a result
// tagged with the spec alias.
func fakeRun(runs *atomic.Int64, delay time.Duration) RunFunc {
	return func(ctx context.Context, spec Spec, observe func(string, time.Duration)) (gpusim.Result, error) {
		runs.Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return gpusim.Result{}, ctx.Err()
			}
		}
		return gpusim.Result{Name: spec.Alias, Technique: spec.Tech}, nil
	}
}

func spec(alias string) Spec {
	return Spec{Alias: alias, Params: workload.Params{Width: 64, Height: 64, Frames: 2, Seed: 1}, Tech: gpusim.RE}
}

func TestKeyDiscriminates(t *testing.T) {
	a, b := spec("ccs"), spec("ccs")
	if a.Key() != b.Key() {
		t.Fatal("identical specs must share a key")
	}
	b.Alias = "mst"
	if a.Key() == b.Key() {
		t.Error("different aliases must differ in TraceSig")
	}
	c := spec("ccs")
	c.Tech = gpusim.Baseline
	if a.Key().CfgHash == c.Key().CfgHash {
		t.Error("different techniques must differ in CfgHash")
	}
	d := spec("ccs")
	d.Tag = "variant"
	if a.Key().CfgHash == d.Key().CfgHash {
		t.Error("different tags must differ in CfgHash")
	}
	e := spec("ccs")
	e.Params.Seed = 2
	if a.Key().TraceSig == e.Key().TraceSig {
		t.Error("different seeds must differ in TraceSig")
	}
	up := Spec{TraceBin: []byte("RDLM....bytes"), Tech: gpusim.RE}
	up2 := Spec{TraceBin: []byte("RDLM....bytes"), Tech: gpusim.RE}
	if up.Key() != up2.Key() {
		t.Error("identical uploads must share a key")
	}
	up2.TraceBin = []byte("RDLM...Xbytes")
	if up.Key().TraceSig == up2.Key().TraceSig {
		t.Error("different uploads must differ in TraceSig")
	}
}

// Concurrent identical submissions must run the simulation exactly once:
// one leader simulates, every other submission joins it (singleflight).
func TestDedupConcurrentSubmissions(t *testing.T) {
	var runs atomic.Int64
	p := New(Options{Workers: 4, Run: fakeRun(&runs, 30*time.Millisecond)})
	defer p.Close(context.Background())

	const n = 16
	var wg sync.WaitGroup
	results := make([]gpusim.Result, n)
	errs := make([]error, n)
	deduped := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := p.Submit(spec("ccs"))
			if err != nil {
				errs[i] = err
				return
			}
			deduped[i] = j.Deduped
			results[i], errs[i] = j.Wait(context.Background())
		}(i)
	}
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("simulation ran %d times, want 1", got)
	}
	nDeduped := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if results[i].Name != "ccs" {
			t.Errorf("submission %d: wrong result %q", i, results[i].Name)
		}
		if deduped[i] {
			nDeduped++
		}
	}
	if nDeduped != n-1 {
		t.Errorf("deduped %d of %d, want %d", nDeduped, n, n-1)
	}
	m := p.Metrics()
	if got := m.Deduped.Load(); got != n-1 {
		t.Errorf("jobs_deduped_total = %d, want %d", got, n-1)
	}
	if got := m.Completed.Load(); got != 1 {
		t.Errorf("jobs_completed_total = %d, want 1", got)
	}
}

// A sequential re-submission after completion must be served from the LRU
// result cache.
func TestCacheHitAfterCompletion(t *testing.T) {
	var runs atomic.Int64
	p := New(Options{Workers: 2, Run: fakeRun(&runs, 0)})
	defer p.Close(context.Background())

	j1, err := p.Submit(spec("cde"))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := j1.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	j2, err := p.Submit(spec("cde"))
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Deduped {
		t.Error("second submission not marked deduped")
	}
	if j2.State() != Done {
		t.Errorf("cache-hit job state %v, want done immediately", j2.State())
	}
	r2, err := j2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Name != r2.Name || r1.Technique != r2.Technique {
		t.Error("cached result differs from original")
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("simulation ran %d times, want 1", got)
	}
	if got := p.Metrics().CacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

func TestTimeoutFires(t *testing.T) {
	var runs atomic.Int64
	p := New(Options{Workers: 1, Timeout: 20 * time.Millisecond, Run: fakeRun(&runs, 5*time.Second)})
	defer p.Close(context.Background())

	j, err := p.Submit(spec("mst"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = j.Wait(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if j.State() != Failed {
		t.Errorf("state %v, want failed", j.State())
	}
	if got := p.Metrics().Timeouts.Load(); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
	// A timed-out job must not populate the cache.
	j2, _ := p.Submit(spec("mst"))
	if j2.Deduped {
		t.Error("resubmission of failed job was served from cache")
	}
	j2.Cancel()
	j2.Wait(context.Background())
}

func TestCancel(t *testing.T) {
	var runs atomic.Int64
	p := New(Options{Workers: 1, Run: fakeRun(&runs, 5*time.Second)})
	defer p.Close(context.Background())

	j, err := p.Submit(spec("ter"))
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	_, err = j.Wait(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

func TestRetryThenSucceed(t *testing.T) {
	var attempts atomic.Int64
	run := func(ctx context.Context, spec Spec, observe func(string, time.Duration)) (gpusim.Result, error) {
		if attempts.Add(1) < 3 {
			return gpusim.Result{}, Transient(fmt.Errorf("flaky backend"))
		}
		return gpusim.Result{Name: spec.Alias}, nil
	}
	p := New(Options{Workers: 1, Retries: 3, Backoff: time.Millisecond, Run: run})
	defer p.Close(context.Background())

	j, err := p.Submit(spec("abi"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatalf("want success after retries, got %v", err)
	}
	if res.Name != "abi" {
		t.Errorf("wrong result %q", res.Name)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if got := p.Metrics().Retries.Load(); got != 2 {
		t.Errorf("retries metric = %d, want 2", got)
	}
}

// Permanent (non-transient) failures must not be retried.
func TestPermanentFailureNoRetry(t *testing.T) {
	var attempts atomic.Int64
	run := func(ctx context.Context, spec Spec, observe func(string, time.Duration)) (gpusim.Result, error) {
		attempts.Add(1)
		return gpusim.Result{}, fmt.Errorf("bad trace")
	}
	p := New(Options{Workers: 1, Retries: 3, Backoff: time.Millisecond, Run: run})
	defer p.Close(context.Background())

	j, _ := p.Submit(spec("tib"))
	_, err := j.Wait(context.Background())
	if err == nil || attempts.Load() != 1 {
		t.Fatalf("attempts = %d (err %v), want 1 permanent failure", attempts.Load(), err)
	}
	if got := p.Metrics().Failed.Load(); got != 1 {
		t.Errorf("failed = %d, want 1", got)
	}
}

// A panicking run must fail its job without killing the worker.
func TestPanicContained(t *testing.T) {
	calls := atomic.Int64{}
	run := func(ctx context.Context, spec Spec, observe func(string, time.Duration)) (gpusim.Result, error) {
		if calls.Add(1) == 1 {
			panic("simulator bug")
		}
		return gpusim.Result{Name: spec.Alias}, nil
	}
	p := New(Options{Workers: 1, Run: run})
	defer p.Close(context.Background())

	j1, _ := p.Submit(spec("hop"))
	if _, err := j1.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("want panic error, got %v", err)
	}
	j2, _ := p.Submit(spec("csn"))
	if _, err := j2.Wait(context.Background()); err != nil {
		t.Fatalf("worker died after panic: %v", err)
	}
}

// Close must drain: every in-flight and queued job completes, and new
// submissions are rejected.
func TestGracefulDrain(t *testing.T) {
	var runs atomic.Int64
	p := New(Options{Workers: 2, Run: fakeRun(&runs, 20*time.Millisecond)})

	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := p.Submit(spec(fmt.Sprintf("bench%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, j := range jobs {
		if res, err, ok := j.Result(); !ok || err != nil || res.Name == "" {
			t.Errorf("job %d not completed by drain (ok=%v err=%v)", i, ok, err)
		}
	}
	if got := runs.Load(); got != 8 {
		t.Errorf("ran %d jobs, want 8", got)
	}
	if _, err := p.Submit(spec("late")); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: err = %v, want ErrClosed", err)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// An expired drain deadline cancels outstanding jobs instead of hanging.
func TestDrainDeadline(t *testing.T) {
	var runs atomic.Int64
	p := New(Options{Workers: 1, Run: fakeRun(&runs, 10*time.Second)})
	j, err := p.Submit(spec("slow"))
	if err != nil {
		t.Fatal(err)
	}
	// Ensure the worker picked it up before draining.
	deadline := time.Now().Add(time.Second)
	for j.State() != Running && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := p.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close: %v, want DeadlineExceeded", err)
	}
	if _, err := j.Wait(context.Background()); err == nil {
		t.Error("job reported success after forced drain")
	}
}

func TestGetRegistry(t *testing.T) {
	var runs atomic.Int64
	p := New(Options{Workers: 1, Run: fakeRun(&runs, 0)})
	defer p.Close(context.Background())

	j, _ := p.Submit(spec("ccs"))
	got, ok := p.Get(j.ID)
	if !ok || got != j {
		t.Fatalf("Get(%q) = %v, %v", j.ID, got, ok)
	}
	if _, ok := p.Get("j-999999"); ok {
		t.Error("Get of unknown ID succeeded")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	k := func(i uint32) Key { return Key{TraceSig: i} }
	c.put(k(1), gpusim.Result{Name: "1"})
	c.put(k(2), gpusim.Result{Name: "2"})
	c.get(k(1)) // refresh 1; 2 becomes LRU
	c.put(k(3), gpusim.Result{Name: "3"})
	if _, ok := c.get(k(2)); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("recently used entry evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	var runs atomic.Int64
	p := New(Options{Workers: 1, Run: fakeRun(&runs, 0)})
	defer p.Close(context.Background())
	j, _ := p.Submit(spec("ccs"))
	j.Wait(context.Background())
	j2, _ := p.Submit(spec("ccs"))
	j2.Wait(context.Background())

	var sb strings.Builder
	p.Metrics().WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"resvc_jobs_submitted_total 2",
		"resvc_jobs_deduped_total 1",
		"resvc_jobs_completed_total 1",
		"resvc_job_elimination_ratio 0.5",
		"resvc_cache_hit_ratio 0.5",
		"# TYPE resvc_stage_latency_seconds histogram",
		`resvc_stage_latency_seconds_bucket{stage="queue",le="+Inf"} 1`,
		"resvc_queue_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
}

// The singleflight in-flight gauge must track the live leader population:
// 1 while a job executes, 0 once it completes — and render in /metrics so
// dashboards read it directly instead of deriving it.
func TestSingleflightInflightGauge(t *testing.T) {
	block := make(chan struct{})
	run := func(ctx context.Context, spec Spec, observe func(string, time.Duration)) (gpusim.Result, error) {
		select {
		case <-block:
			return gpusim.Result{Name: spec.Alias}, nil
		case <-ctx.Done():
			return gpusim.Result{}, ctx.Err()
		}
	}
	p := New(Options{Workers: 1, Run: run})
	defer p.Close(context.Background())

	if got := p.Metrics().InflightKeys(); got != 0 {
		t.Fatalf("idle InflightKeys = %d, want 0", got)
	}
	j, err := p.Submit(spec("ccs"))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics().InflightKeys(); got != 1 {
		t.Errorf("InflightKeys while running = %d, want 1", got)
	}
	var sb strings.Builder
	p.Metrics().WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "resvc_singleflight_inflight 1") {
		t.Errorf("metrics missing resvc_singleflight_inflight 1:\n%s", sb.String())
	}
	close(block)
	if _, err := j.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := p.Metrics().InflightKeys(); got != 0 {
		t.Errorf("InflightKeys after completion = %d, want 0", got)
	}
}

// DefaultRun must actually simulate a real (tiny) workload and produce the
// same result as a direct gpusim run.
func TestDefaultRunRealWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	p := New(Options{Workers: 2})
	defer p.Close(context.Background())

	s := Spec{Alias: "ccs", Params: workload.Params{Width: 96, Height: 64, Frames: 3, Seed: 1}, Tech: gpusim.RE}
	j, err := p.Submit(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.TilesTotal == 0 || len(res.Frames) != 3 {
		t.Fatalf("implausible result: %+v", res.Total)
	}
	sum := Summarize(res)
	if sum.Technique != "re" || sum.Frames != 3 || sum.Cycles == 0 {
		t.Errorf("bad summary: %+v", sum)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Queued: "queued", Running: "running", Done: "done", Failed: "failed"} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}
