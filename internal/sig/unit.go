package sig

import (
	"rendelim/internal/crc"
)

// Config parameterizes the Signature Unit hardware.
type Config struct {
	// OTQueueDepth is the capacity of the Overlapped-Tiles queue in tile
	// entries (ids pushed by the Polygon List Builder).
	OTQueueDepth int
	// AccumCyclesPerTile is the pipelined per-tile cost of the
	// accumulate-combine step (Signature Buffer read, shift-combine,
	// write back). The Shift subunit is a 1-cycle combinational LUT
	// stage, and distinct tiles are independent, so an interleaved
	// pipeline sustains one tile every couple of cycles regardless of
	// the shift amount (Section III-G discusses the latency/storage
	// trade-off).
	AccumCyclesPerTile int
	// Scheme is the signature function (CRC32 in the paper; the hash
	// ablation swaps it).
	Scheme crc.Scheme
}

// DefaultConfig returns the paper's configuration: a 16-entry OT queue
// (matching the Table I queue depths) and the CRC32 scheme.
func DefaultConfig() Config {
	return Config{OTQueueDepth: 16, AccumCyclesPerTile: 1, Scheme: crc.CRC32Scheme{}}
}

// Stats aggregates the Signature Unit's activity for timing and energy.
type Stats struct {
	// StallCycles is geometry-pipeline back-pressure from OT queue
	// overflow (the only execution-time overhead RE adds; ~0.64% in the
	// paper).
	StallCycles uint64
	// BusyCycles is total SU occupancy (overlapped with other geometry
	// stages unless the queue fills).
	BusyCycles uint64
	// CompareCycles is the per-tile signature comparison work at raster
	// scheduling time.
	CompareCycles uint64
	Compute       crc.UnitStats
	Accumulate    crc.UnitStats
	BitmapReads   uint64
	BitmapWrites  uint64
	PrimBlocks    uint64
	ConstBlocks   uint64
	TileUpdates   uint64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.StallCycles += o.StallCycles
	s.BusyCycles += o.BusyCycles
	s.CompareCycles += o.CompareCycles
	s.Compute.Add(o.Compute)
	s.Accumulate.Add(o.Accumulate)
	s.BitmapReads += o.BitmapReads
	s.BitmapWrites += o.BitmapWrites
	s.PrimBlocks += o.PrimBlocks
	s.ConstBlocks += o.ConstBlocks
	s.TileUpdates += o.TileUpdates
}

// Unit is the Signature Unit of Figure 7. During the geometry phase the
// Polygon List Builder feeds it primitive attribute blocks with the list of
// overlapped tiles, and the Command Processor feeds it constants blocks; it
// incrementally maintains one signature per tile in the Signature Buffer.
type Unit struct {
	cfg Config
	buf *Buffer

	compute    crc.ComputeUnit
	accumulate crc.AccumulateUnit

	// Constants CRC register + shift amount (Figure 7) and the per-tile
	// "constants already combined" bitmap.
	constSig   uint32
	constShift int
	haveConst  bool
	bitmap     []bool

	// Two-clock queue model: plbClock is the producer (binning) time,
	// suClock the consumer time, both in geometry-pipeline cycles.
	plbClock uint64
	suClock  uint64

	Stats Stats
}

// NewUnit builds a Signature Unit over the given buffer.
func NewUnit(cfg Config, buf *Buffer) *Unit {
	if cfg.OTQueueDepth <= 0 {
		cfg.OTQueueDepth = 16
	}
	if cfg.AccumCyclesPerTile <= 0 {
		cfg.AccumCyclesPerTile = 2
	}
	if cfg.Scheme == nil {
		cfg.Scheme = crc.CRC32Scheme{}
	}
	return &Unit{cfg: cfg, buf: buf, bitmap: make([]bool, buf.NumTiles())}
}

// Buffer returns the unit's Signature Buffer.
func (u *Unit) Buffer() *Buffer { return u.buf }

// BeginFrame resets per-frame state (signatures under construction, the
// constants register and bitmap, and the queue clocks).
func (u *Unit) BeginFrame() {
	u.buf.BeginFrame()
	u.haveConst = false
	u.clearBitmap()
	u.plbClock = 0
	u.suClock = 0
}

func (u *Unit) clearBitmap() {
	for i := range u.bitmap {
		u.bitmap[i] = false
	}
	u.Stats.BitmapWrites += uint64(len(u.bitmap))
}

// signBlock signs one block through the Compute CRC unit (or the ablation
// scheme), charging the hardware cost either way.
func (u *Unit) signBlock(block []byte) (sigVal uint32, shift int, cycles uint64) {
	if _, isCRC := u.cfg.Scheme.(crc.CRC32Scheme); isCRC {
		sigVal, shift = u.compute.Sign(block)
	} else {
		sigVal, shift = u.cfg.Scheme.SignBlock(block)
		// Charge the same datapath cost so the ablation isolates hash
		// quality from hash cost.
		padded := crc.PaddedLen(len(block)) / crc.SubblockBytes
		u.compute.Stats.Cycles += uint64(padded)
		u.compute.Stats.LUTAccesses += uint64(padded) * 12
		u.compute.Stats.Subblocks += uint64(padded)
	}
	return sigVal, shift, uint64(crc.PaddedLen(len(block)) / crc.SubblockBytes)
}

// SetConstants signs a new constants block (Command Processor path): the
// Constants CRC register is loaded and the bitmap cleared, so each tile
// combines the new constants exactly once (Section III-F).
func (u *Unit) SetConstants(block []byte) {
	if len(block) == 0 {
		return
	}
	var cycles uint64
	u.constSig, u.constShift, cycles = u.signBlock(block)
	u.haveConst = true
	u.clearBitmap()
	u.Stats.ConstBlocks++
	u.Stats.BusyCycles += cycles
	// Constants signing overlaps the Command Processor's own work of
	// decoding and applying the state update — it does not go through the
	// OT queue — so the producer clock advances in step and only makes the
	// SU unavailable for concurrently arriving primitives.
	u.suClock += cycles
	u.plbClock += cycles
}

// AddPrimitive signs a primitive's vertex-attribute block and folds it into
// the signature of every overlapped tile, combining the pending constants
// block first for tiles that have not seen it (Figure 7 / Section III-F).
//
// producerCycles is the geometry front-end's cost of delivering this
// primitive (vertex fetch + shading + assembly + binning): the interval at
// which the PLB can actually push OT-queue entries. Signing overlaps that
// work, so only OT-queue overflow back-pressures the pipeline and shows up
// as StallCycles (Section V measures 0.64% on average).
func (u *Unit) AddPrimitive(block []byte, tiles []int, producerCycles uint64) {
	primSig, primShift, computeCycles := u.signBlock(block)
	u.Stats.PrimBlocks++

	// Producer: the PLB emits one tile id per cycle while binning, and no
	// faster than the upstream pipeline produces primitives.
	prodStart := u.plbClock
	adv := uint64(len(tiles)) + 1
	if producerCycles > adv {
		adv = producerCycles
	}
	u.plbClock += adv

	// Consumer: prim signing must finish before tile updates drain.
	if u.suClock < prodStart {
		u.suClock = prodStart
	}
	u.suClock += computeCycles
	u.Stats.BusyCycles += computeCycles

	for _, tile := range tiles {
		cur := u.buf.Load(tile)

		u.Stats.BitmapReads++
		if u.haveConst && !u.bitmap[tile] {
			// Combine the constants block first, then the primitive. The
			// two XOR-combines chain within the same Signature Buffer
			// read-modify-write, so the pipelined per-tile cost does not
			// grow (only the LUT activity does).
			cur = u.accumulateCombine(cur, u.constSig, u.constShift)
			u.bitmap[tile] = true
			u.Stats.BitmapWrites++
		}
		cur = u.accumulateCombine(cur, primSig, primShift)
		u.buf.Store(tile, cur)
		u.Stats.TileUpdates++

		perTile := uint64(u.cfg.AccumCyclesPerTile)
		u.suClock += perTile
		u.Stats.BusyCycles += perTile
	}

	// OT-queue occupancy: if the consumer lags the producer by more than
	// the queue capacity (in per-tile entries), the producer stalls until
	// space frees up.
	if u.suClock > u.plbClock {
		lagEntries := (u.suClock - u.plbClock) / uint64(u.cfg.AccumCyclesPerTile)
		if lagEntries > uint64(u.cfg.OTQueueDepth) {
			stall := (lagEntries - uint64(u.cfg.OTQueueDepth)) * uint64(u.cfg.AccumCyclesPerTile)
			u.plbClock += stall
			u.Stats.StallCycles += stall
		}
	}
}

// accumulateCombine folds blockSig (of shiftAmount subblocks) into acc via
// the Accumulate CRC unit (Algorithm 3) for the CRC scheme, or the ablation
// scheme's combiner otherwise; hardware activity is charged identically.
func (u *Unit) accumulateCombine(acc, blockSig uint32, shiftAmount int) uint32 {
	if _, isCRC := u.cfg.Scheme.(crc.CRC32Scheme); isCRC {
		return u.accumulate.Shift(acc, shiftAmount) ^ blockSig
	}
	u.accumulate.Stats.Cycles += uint64(shiftAmount)
	u.accumulate.Stats.LUTAccesses += 4 * uint64(shiftAmount)
	u.accumulate.Stats.Subblocks += uint64(shiftAmount)
	return u.cfg.Scheme.Accumulate(acc, blockSig, shiftAmount)
}

// GeometryOverheadCycles returns the extra geometry-pipeline cycles this
// frame caused by the SU: only the stalls, since signing overlaps the other
// geometry stages (Section V reports 0.64% on average).
func (u *Unit) GeometryOverheadCycles() uint64 { return u.Stats.StallCycles }

// CheckTile performs the raster-time comparison for a tile: a Signature
// Buffer read pair and a 32-bit compare ("a few cycles", Section V). It
// returns whether the Raster Pipeline can be bypassed.
func (u *Unit) CheckTile(tile int) (redundant bool) {
	const compareCost = 4
	u.Stats.CompareCycles += compareCost
	match, ok := u.buf.Match(tile)
	return ok && match
}

// EndFrame commits the frame's signatures (see Buffer.EndFrame) and snap-
// shots nothing else; stats accumulate across frames until read.
func (u *Unit) EndFrame() { u.buf.EndFrame() }

// SyncStats folds the CRC unit counters into the exported stats snapshot.
// Call before reading Stats for reporting.
func (u *Unit) SyncStats() {
	u.Stats.Compute = u.compute.Stats
	u.Stats.Accumulate = u.accumulate.Stats
}

// UnitSnapshot captures the Signature Unit's state: the buffer, the CRC
// datapath counters, the constants register/bitmap and queue clocks (per-
// frame scratch, included for completeness), and the aggregate stats.
type UnitSnapshot struct {
	Buf        BufferSnapshot
	Compute    crc.UnitStats
	Accumulate crc.UnitStats
	ConstSig   uint32
	ConstShift int
	HaveConst  bool
	Bitmap     []bool
	PLBClock   uint64
	SUClock    uint64
	Stats      Stats
}

// Snapshot deep-copies the unit state.
func (u *Unit) Snapshot() UnitSnapshot {
	return UnitSnapshot{
		Buf:        u.buf.Snapshot(),
		Compute:    u.compute.Stats,
		Accumulate: u.accumulate.Stats,
		ConstSig:   u.constSig,
		ConstShift: u.constShift,
		HaveConst:  u.haveConst,
		Bitmap:     append([]bool(nil), u.bitmap...),
		PLBClock:   u.plbClock,
		SUClock:    u.suClock,
		Stats:      u.Stats,
	}
}

// Restore overwrites the unit with a snapshot from an identically sized
// unit.
func (u *Unit) Restore(s UnitSnapshot) {
	u.buf.Restore(s.Buf)
	u.compute.Stats = s.Compute
	u.accumulate.Stats = s.Accumulate
	u.constSig = s.ConstSig
	u.constShift = s.ConstShift
	u.haveConst = s.HaveConst
	copy(u.bitmap, s.Bitmap)
	u.plbClock = s.PLBClock
	u.suClock = s.SUClock
	u.Stats = s.Stats
}
