// Package sig implements the Signature Unit of Section III: the on-chip
// Signature Buffer holding per-tile input signatures for the frames in
// flight, the incremental signing datapath built from the Compute CRC and
// Accumulate CRC units, the Overlapped-Tiles (OT) queue with its stall
// behaviour, and the per-drawcall constants CRC with its tile bitmap.
package sig

// Buffer is the Signature Buffer. Because the memory system double-buffers
// the Frame Buffer (Section IV-C), a tile rendered in frame N reuses the
// Back Buffer contents of frame N-2, so its signature must be compared
// against the signature set of the frame two swaps back. The buffer
// therefore holds one signature set per Back/Front buffer plus the set being
// built for the current frame.
type Buffer struct {
	numTiles int
	building []uint32 // signatures under construction (geometry phase)
	prev     [2][]uint32
	valid    [2][]bool
	parity   int // which prev set the current frame compares against
	// Access counters for the energy model.
	Reads  uint64
	Writes uint64
}

// NewBuffer allocates a Signature Buffer for numTiles tiles.
func NewBuffer(numTiles int) *Buffer {
	b := &Buffer{numTiles: numTiles}
	b.building = make([]uint32, numTiles)
	for i := range b.prev {
		b.prev[i] = make([]uint32, numTiles)
		b.valid[i] = make([]bool, numTiles)
	}
	return b
}

// NumTiles returns the buffer's tile capacity.
func (b *Buffer) NumTiles() int { return b.numTiles }

// SizeBytes returns the hardware storage the buffer occupies (three sets of
// 4-byte signatures; validity bits are ignored as sub-1% overhead).
func (b *Buffer) SizeBytes() int { return 3 * 4 * b.numTiles }

// BeginFrame resets the building set for a new frame.
func (b *Buffer) BeginFrame() {
	for i := range b.building {
		b.building[i] = 0
	}
}

// Load returns the signature being built for a tile (a Signature Buffer
// read in hardware).
func (b *Buffer) Load(tile int) uint32 {
	b.Reads++
	return b.building[tile]
}

// Store writes back the updated signature for a tile.
func (b *Buffer) Store(tile int, sig uint32) {
	b.Writes++
	b.building[tile] = sig
}

// Match reports whether the tile's new signature equals the signature of the
// frame that produced the current Back Buffer contents (two swaps ago), and
// whether that baseline is valid. One read of each set in hardware.
func (b *Buffer) Match(tile int) (match, baselineValid bool) {
	b.Reads += 2
	if !b.valid[b.parity][tile] {
		return false, false
	}
	return b.building[tile] == b.prev[b.parity][tile], true
}

// EndFrame commits the building set over the set just compared against and
// flips parity for the next frame.
func (b *Buffer) EndFrame() {
	copy(b.prev[b.parity], b.building)
	for i := range b.valid[b.parity] {
		b.valid[b.parity][i] = true
	}
	b.parity = 1 - b.parity
}

// InvalidateAll marks every stored baseline unusable. The driver calls this
// when global state outside the signature (shaders, textures, render-target
// layout) changes, since stale baselines could otherwise alias new outputs
// (Section III-E).
func (b *Buffer) InvalidateAll() {
	for p := range b.valid {
		for i := range b.valid[p] {
			b.valid[p][i] = false
		}
	}
}

// InvalidateTile drops one tile's baseline in both sets; used by the
// periodic-refresh policy to force re-rendering.
func (b *Buffer) InvalidateTile(tile int) {
	for p := range b.valid {
		b.valid[p][tile] = false
	}
}

// BufferSnapshot captures the Signature Buffer's cross-frame state: both
// committed signature sets with their validity bits, the parity, and the
// access counters. The building set is per-frame scratch but is included so
// mid-frame restores are at least well-defined.
type BufferSnapshot struct {
	Building []uint32
	Prev     [2][]uint32
	Valid    [2][]bool
	Parity   int
	Reads    uint64
	Writes   uint64
}

// Snapshot deep-copies the buffer state.
func (b *Buffer) Snapshot() BufferSnapshot {
	s := BufferSnapshot{
		Building: append([]uint32(nil), b.building...),
		Parity:   b.parity,
		Reads:    b.Reads,
		Writes:   b.Writes,
	}
	for i := range b.prev {
		s.Prev[i] = append([]uint32(nil), b.prev[i]...)
		s.Valid[i] = append([]bool(nil), b.valid[i]...)
	}
	return s
}

// Restore overwrites the buffer with a snapshot taken from a buffer of the
// same tile count; it panics on a size mismatch.
func (b *Buffer) Restore(s BufferSnapshot) {
	if len(s.Building) != b.numTiles {
		panic("sig: buffer restore size mismatch")
	}
	copy(b.building, s.Building)
	for i := range b.prev {
		copy(b.prev[i], s.Prev[i])
		copy(b.valid[i], s.Valid[i])
	}
	b.parity = s.Parity
	b.Reads = s.Reads
	b.Writes = s.Writes
}
