package sig

import (
	"math/rand"
	"testing"

	"rendelim/internal/crc"
)

func randomBlock(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestBufferLifecycle(t *testing.T) {
	b := NewBuffer(4)
	b.BeginFrame()
	b.Store(2, 0xABCD)

	// No baseline yet: never a match.
	if match, ok := b.Match(2); match || ok {
		t.Fatal("match against empty baseline")
	}
	b.EndFrame() // frame 0 committed to parity 0

	// Frame 1 (other parity): baseline still invalid.
	b.BeginFrame()
	b.Store(2, 0xABCD)
	if _, ok := b.Match(2); ok {
		t.Fatal("frame 1 should compare against the (invalid) other set")
	}
	b.EndFrame()

	// Frame 2 compares against frame 0: same signature matches.
	b.BeginFrame()
	b.Store(2, 0xABCD)
	if match, ok := b.Match(2); !ok || !match {
		t.Fatal("frame 2 should match frame 0")
	}
	// A different signature must not match.
	b.Store(2, 0x1111)
	if match, _ := b.Match(2); match {
		t.Fatal("different signature matched")
	}
	b.EndFrame()
}

func TestBufferDoubleBufferSemantics(t *testing.T) {
	// Signatures alternate A,B,A,B... every frame matches the frame two
	// back, never the immediately preceding one.
	b := NewBuffer(1)
	sigOf := func(f int) uint32 {
		if f%2 == 0 {
			return 0xAAAA
		}
		return 0xBBBB
	}
	for f := 0; f < 6; f++ {
		b.BeginFrame()
		b.Store(0, sigOf(f))
		match, ok := b.Match(0)
		if f >= 2 && (!ok || !match) {
			t.Fatalf("frame %d: want match with frame %d", f, f-2)
		}
		if f < 2 && ok {
			t.Fatalf("frame %d: unexpected valid baseline", f)
		}
		b.EndFrame()
	}
}

func TestBufferInvalidate(t *testing.T) {
	b := NewBuffer(2)
	for f := 0; f < 2; f++ {
		b.BeginFrame()
		b.Store(0, 7)
		b.Store(1, 7)
		b.EndFrame()
	}
	b.InvalidateTile(0)
	b.BeginFrame()
	b.Store(0, 7)
	b.Store(1, 7)
	if _, ok := b.Match(0); ok {
		t.Fatal("invalidated tile still matched")
	}
	if match, ok := b.Match(1); !ok || !match {
		t.Fatal("untouched tile should match")
	}
	b.InvalidateAll()
	if _, ok := b.Match(1); ok {
		t.Fatal("InvalidateAll ineffective")
	}
}

func TestBufferSizeBytes(t *testing.T) {
	// Paper scale: 1196x768 at 16x16 tiles = 75*48 = 3600 tiles; three
	// 4-byte sets = ~43 KB of SRAM, consistent with the <1% area claim.
	b := NewBuffer(3600)
	if b.SizeBytes() != 3600*12 {
		t.Fatalf("SizeBytes = %d", b.SizeBytes())
	}
}

// Equal tile-input streams must produce equal signatures, and the unit's
// incremental result must equal the direct CRC of the serialized stream.
func TestUnitMatchesDirectCRC(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	u := NewUnit(DefaultConfig(), NewBuffer(8))
	u.BeginFrame()

	var want [8][]byte
	appendPadded := func(tile int, block []byte) {
		padded := make([]byte, crc.PaddedLen(len(block)))
		copy(padded, block)
		want[tile] = append(want[tile], padded...)
	}

	consts := randomBlock(rng, 64)
	u.SetConstants(consts)
	for p := 0; p < 10; p++ {
		block := randomBlock(rng, 144)
		tiles := []int{rng.Intn(8), rng.Intn(8)}
		if tiles[0] == tiles[1] {
			tiles = tiles[:1]
		}
		for _, tile := range tiles {
			if len(want[tile]) == 0 { // first touch combines constants
				appendPadded(tile, consts)
			}
			appendPadded(tile, block)
		}
		u.AddPrimitive(block, tiles, 40)
	}
	for tile := 0; tile < 8; tile++ {
		got := u.Buffer().Load(tile)
		if len(want[tile]) == 0 {
			if got != 0 {
				t.Fatalf("tile %d untouched but signature %08x", tile, got)
			}
			continue
		}
		if direct := crc.Checksum(want[tile]); got != direct {
			t.Fatalf("tile %d: unit %08x, direct %08x", tile, got, direct)
		}
	}
}

// Constants must be combined exactly once per tile per constants epoch, even
// when several primitives of the drawcall overlap the same tile (Figure 6).
func TestConstantsCombinedOncePerTile(t *testing.T) {
	u := NewUnit(DefaultConfig(), NewBuffer(2))
	u.BeginFrame()
	consts := []byte("constants-block-0123456789abcdef")
	prim := []byte("primitive-attrs-0123456789abcdef0123456789abcdef")
	u.SetConstants(consts)
	u.AddPrimitive(prim, []int{0}, 40)
	u.AddPrimitive(prim, []int{0}, 40) // same tile, same epoch

	padded := func(b []byte) []byte {
		p := make([]byte, crc.PaddedLen(len(b)))
		copy(p, b)
		return p
	}
	var stream []byte
	stream = append(stream, padded(consts)...)
	stream = append(stream, padded(prim)...)
	stream = append(stream, padded(prim)...)
	if got, want := u.Buffer().Load(0), crc.Checksum(stream); got != want {
		t.Fatalf("constants folded more than once: %08x want %08x", got, want)
	}
}

// A new constants epoch re-combines constants (bitmap cleared).
func TestNewConstantsEpochRecombines(t *testing.T) {
	u := NewUnit(DefaultConfig(), NewBuffer(1))
	u.BeginFrame()
	c1 := []byte("cccc1111")
	c2 := []byte("cccc2222")
	p := []byte("pppppppp")
	u.SetConstants(c1)
	u.AddPrimitive(p, []int{0}, 40)
	u.SetConstants(c2)
	u.AddPrimitive(p, []int{0}, 40)

	var stream []byte
	stream = append(stream, c1...)
	stream = append(stream, p...)
	stream = append(stream, c2...)
	stream = append(stream, p...)
	if got, want := u.Buffer().Load(0), crc.Checksum(stream); got != want {
		t.Fatalf("epoch handling wrong: %08x want %08x", got, want)
	}
}

func TestIdenticalFramesAreRedundant(t *testing.T) {
	u := NewUnit(DefaultConfig(), NewBuffer(4))
	frame := func() {
		u.BeginFrame()
		u.SetConstants([]byte("uniforms"))
		u.AddPrimitive([]byte("prim-a-data-prim-a-data!"), []int{0, 1}, 40)
		u.AddPrimitive([]byte("prim-b-data-prim-b-data!"), []int{2}, 40)
		u.EndFrame()
	}
	frame()
	frame()
	u.BeginFrame()
	u.SetConstants([]byte("uniforms"))
	u.AddPrimitive([]byte("prim-a-data-prim-a-data!"), []int{0, 1}, 40)
	u.AddPrimitive([]byte("prim-b-data-prim-b-data!"), []int{2}, 40)
	for tile := 0; tile < 3; tile++ {
		if !u.CheckTile(tile) {
			t.Fatalf("tile %d should be redundant", tile)
		}
	}
	// Tile 3 never touched: signature 0 both frames -> also redundant
	// (an empty tile whose inputs did not change).
	if !u.CheckTile(3) {
		t.Fatal("empty tile should be redundant")
	}
}

func TestChangedPrimitiveBreaksRedundancy(t *testing.T) {
	u := NewUnit(DefaultConfig(), NewBuffer(2))
	for f := 0; f < 2; f++ {
		u.BeginFrame()
		u.AddPrimitive([]byte("stable-primitive-data-xx"), []int{0}, 40)
		u.AddPrimitive([]byte("moving-primitive-frame-0"), []int{1}, 40)
		u.EndFrame()
	}
	u.BeginFrame()
	u.AddPrimitive([]byte("stable-primitive-data-xx"), []int{0}, 40)
	u.AddPrimitive([]byte("moving-primitive-frame-2"), []int{1}, 40)
	if !u.CheckTile(0) {
		t.Fatal("unchanged tile should be redundant")
	}
	if u.CheckTile(1) {
		t.Fatal("changed tile must not be redundant")
	}
}

func TestOTQueueStallsOnHugePrimitive(t *testing.T) {
	// A primitive covering many tiles overruns the 16-entry OT queue and
	// stalls the PLB (Section V: "primitives that cover a large amount of
	// tiles ... overflow of the Overlapped Tiles Queue").
	buf := NewBuffer(512)
	u := NewUnit(DefaultConfig(), buf)
	u.BeginFrame()
	tiles := make([]int, 512)
	for i := range tiles {
		tiles[i] = i
	}
	u.AddPrimitive(make([]byte, 144), tiles, 40)
	if u.Stats.StallCycles == 0 {
		t.Fatal("expected OT queue stall for a full-screen primitive")
	}
	// A deeper queue absorbs more before stalling.
	deep := NewUnit(Config{OTQueueDepth: 4096, AccumCyclesPerTile: 2, Scheme: crc.CRC32Scheme{}}, NewBuffer(512))
	deep.BeginFrame()
	deep.AddPrimitive(make([]byte, 144), tiles, 40)
	if deep.Stats.StallCycles >= u.Stats.StallCycles {
		t.Fatalf("deeper queue should stall less: %d vs %d", deep.Stats.StallCycles, u.Stats.StallCycles)
	}
}

func TestSmallPrimitivesDontStall(t *testing.T) {
	u := NewUnit(DefaultConfig(), NewBuffer(64))
	u.BeginFrame()
	for p := 0; p < 100; p++ {
		u.AddPrimitive(make([]byte, 144), []int{p % 64}, 40)
	}
	if u.Stats.StallCycles != 0 {
		t.Fatalf("1-tile primitives should not stall (got %d)", u.Stats.StallCycles)
	}
}

func TestCheckTileCostAccounting(t *testing.T) {
	u := NewUnit(DefaultConfig(), NewBuffer(4))
	u.BeginFrame()
	u.CheckTile(0)
	u.CheckTile(1)
	if u.Stats.CompareCycles != 8 {
		t.Fatalf("compare cycles = %d", u.Stats.CompareCycles)
	}
}

func TestSyncStatsExposesCRCActivity(t *testing.T) {
	u := NewUnit(DefaultConfig(), NewBuffer(2))
	u.BeginFrame()
	u.SetConstants(make([]byte, 64))
	u.AddPrimitive(make([]byte, 144), []int{0, 1}, 40)
	u.SyncStats()
	if u.Stats.Compute.Cycles != 8+18 {
		t.Fatalf("compute cycles = %d, want 26", u.Stats.Compute.Cycles)
	}
	if u.Stats.Accumulate.Subblocks == 0 {
		t.Fatal("accumulate activity missing")
	}
	if u.Stats.ConstBlocks != 1 || u.Stats.PrimBlocks != 1 || u.Stats.TileUpdates != 2 {
		t.Fatalf("block counts: %+v", u.Stats)
	}
}

// The ablation schemes plug in and still detect plain redundancy.
func TestAlternativeSchemesDetectIdenticalFrames(t *testing.T) {
	for _, s := range crc.Schemes() {
		cfg := DefaultConfig()
		cfg.Scheme = s
		u := NewUnit(cfg, NewBuffer(2))
		for f := 0; f < 3; f++ {
			u.BeginFrame()
			u.SetConstants([]byte("constants"))
			u.AddPrimitive([]byte("primitive-data-primitive"), []int{0, 1}, 40)
			if f == 2 {
				if !u.CheckTile(0) || !u.CheckTile(1) {
					t.Fatalf("%s: identical frames not detected", s.Name())
				}
			}
			u.EndFrame()
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{StallCycles: 1, BusyCycles: 2, CompareCycles: 3, BitmapReads: 4,
		BitmapWrites: 5, PrimBlocks: 6, ConstBlocks: 7, TileUpdates: 8}
	a.Add(a)
	if a.StallCycles != 2 || a.TileUpdates != 16 {
		t.Fatalf("add = %+v", a)
	}
}

func TestEmptyConstantsIgnored(t *testing.T) {
	u := NewUnit(DefaultConfig(), NewBuffer(1))
	u.BeginFrame()
	u.SetConstants(nil)
	u.AddPrimitive([]byte("abcdefgh"), []int{0}, 40)
	if got, want := u.Buffer().Load(0), crc.Checksum([]byte("abcdefgh")); got != want {
		t.Fatalf("empty constants corrupted signature: %08x want %08x", got, want)
	}
}
