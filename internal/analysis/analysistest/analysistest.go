// Package analysistest runs a relint analyzer over a testdata package and
// checks its diagnostics against `// want "regex"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest for the in-repo framework.
//
// A testdata package is a plain directory of Go files (std-library imports
// only; it is not part of the module build because it lives under
// testdata/). Every line that should be flagged carries a want comment:
//
//	for k := range m { // want `map iteration order is random`
//
// A line may carry several quoted regexes when several diagnostics are
// expected. Diagnostics on lines without a want comment fail the test, so
// the same packages double as negative cases: idiomatic patterns the
// analyzer must NOT flag simply appear without want comments.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rendelim/internal/analysis"
)

// expectation is one `// want` regex at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

// Run loads the package rooted at dir, applies the analyzer, and compares
// findings with the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range quotedStrings(text[len("want "):]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		if w := match(wants, d); w != nil {
			w.met = true
			continue
		}
		t.Errorf("unexpected diagnostic %s", d)
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// match finds an unmet expectation for the diagnostic's position.
func match(wants []*expectation, d analysis.Diagnostic) *expectation {
	for _, w := range wants {
		if !w.met && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			return w
		}
	}
	return nil
}

// quotedStrings extracts the Go-quoted or backquoted strings from a want
// comment tail.
func quotedStrings(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '"' && s[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				return out
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, unq)
			}
			s = s[end+1:]
		case '`':
			end := strings.Index(s[1:], "`")
			if end < 0 {
				return out
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		default:
			// Stop at the first non-string token (trailing prose).
			return out
		}
	}
}

// Dir returns the testdata directory for the named case relative to the
// analyzer's package directory.
func Dir(elem ...string) string {
	return filepath.Join(append([]string{"testdata"}, elem...)...)
}
