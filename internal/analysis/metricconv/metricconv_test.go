package metricconv_test

import (
	"testing"

	"rendelim/internal/analysis/analysistest"
	"rendelim/internal/analysis/metricconv"
)

// TestConventions covers all three emission idioms (helper closures,
// # TYPE headers with inline and %s-resolved names, WritePrometheus),
// the suffix and charset rules, the label vocabulary, directive
// suppression, and out-of-scope non-resvc names.
func TestConventions(t *testing.T) {
	analysistest.Run(t, metricconv.Analyzer, analysistest.Dir("metrics"))
}
