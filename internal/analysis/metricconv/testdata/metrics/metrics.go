// Package metrics is metricconv testdata covering the repo's three
// emission idioms: helper closures, fmt.Fprintf # TYPE headers, and
// Histogram.WritePrometheus calls.
package metrics

import (
	"expvar"
	"fmt"
	"io"
)

type histogram struct{}

func (histogram) WritePrometheus(w io.Writer, name, labels string) {}

// helperClosures is the jobs/store idiom: local closures taking the
// metric name first.
func helperClosures(w io.Writer, frames uint64, depth float64) {
	counter := func(name, help string, v uint64) {}
	gaugeF := func(name, help string, v float64) {}

	counter("resvc_sim_frames_total", "frames simulated", frames)
	counter("resvc_sim_frames", "frames simulated", frames) // want `counter "resvc_sim_frames" must end in _total`
	gaugeF("resvc_queue_depth", "queued jobs", depth)
	gaugeF("resvc_queue_depth_total", "queued jobs", depth) // want `gauge "resvc_queue_depth_total" must not end in _total`
	counter("resvc_simFrames_total", "bad charset", frames) // want `metric name "resvc_simFrames_total" does not match`

	//lint:ignore metricconv legacy dashboard name kept until the dashboards migrate
	counter("resvc_sim_Legacy_frames", "legacy", frames)
}

// typeHeaders is the server idiom: hand-written # TYPE lines, with the
// name inline or resolved through a %s verb.
func typeHeaders(w io.Writer, n uint64) {
	fmt.Fprintf(w, "# TYPE resvc_jobs_inflight gauge\nresvc_jobs_inflight %d\n", n)
	fmt.Fprintf(w, "# TYPE resvc_jobs_done counter\nresvc_jobs_done %d\n", n) // want `counter "resvc_jobs_done" must end in _total`

	const good = "resvc_wal_fsync_seconds"
	fmt.Fprintf(w, "# TYPE %s histogram\n", good)
	const bad = "resvc_wal_fsync"
	fmt.Fprintf(w, "# TYPE %s histogram\n", bad) // want `histogram "resvc_wal_fsync" must carry a unit suffix`

	fmt.Fprintf(w, "# TYPE resvc_latency_quantiles summary\n") // want `declared summary`
}

// samples exercises labeled sample fragments in plain literals.
func samples(w io.Writer, peer string, up int) {
	fmt.Fprintf(w, "resvc_cluster_peer_up{peer=%q} %d\n", peer, up)
	fmt.Fprintf(w, "resvc_cluster_peer_up{host=%q} %d\n", peer, up) // want `label "host" is outside the restat vocabulary`
	fmt.Fprintf(w, "resvc_peer__up{peer=%q} %d\n", peer, up)        // want `metric name "resvc_peer__up" does not match`
}

// writePrometheus is the telemetry idiom: the histogram type writes its
// own buckets; name and label set are checked at the call.
func writePrometheus(w io.Writer, b string) {
	var h histogram
	h.WritePrometheus(w, "resvc_shade_latency_seconds", `stage="shade"`)
	h.WritePrometheus(w, "resvc_shade_latency", `stage="shade"`) // want `histogram "resvc_shade_latency" must carry a unit suffix`
	h.WritePrometheus(w, "resvc_sim_frame_eliminated_ratio", fmt.Sprintf("benchmark=%q", b))
	h.WritePrometheus(w, "resvc_sim_frame_eliminated_ratio", fmt.Sprintf("bench=%q", b)) // want `label "bench" is outside the restat vocabulary`
}

// publish covers the expvar surface: charset only, kind unknown.
func publish(v expvar.Var) {
	expvar.Publish("resvc_cluster_ring", v)
	expvar.Publish("resvc_clusterRing", v) // want `metric name "resvc_clusterRing" does not match`
}

// nonMetric literals and helpers with non-resvc names are out of scope.
func nonMetric(w io.Writer) {
	counter := func(name string, v int) {}
	counter("internal_scratch_count", 1)
	fmt.Fprintf(w, "plain {braces=%q} text\n", "x")
}
