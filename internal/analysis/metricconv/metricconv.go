// Package metricconv enforces the Prometheus naming conventions of the
// hand-rolled /metrics surface, so restat and the strict promtext parser
// keep working against every node.
//
// The repo does not use the Prometheus client library; names, HELP/TYPE
// headers and label sets are assembled by hand in several packages (jobs,
// store, cluster, server). The conventions that keep that surface coherent
// and PromQL-friendly:
//
//   - every metric is named resvc_* with [a-z0-9_] words (no camelCase, no
//     double underscores, nothing trailing)
//   - counters end in _total (rate() semantics)
//   - gauges do not end in _total
//   - histograms end in a unit suffix: _seconds (latencies) or _ratio
//     (the per-frame elimination distribution)
//   - label names come from the fixed vocabulary restat knows how to
//     aggregate: benchmark, stage, class, peer, route, status, le
//
// The analyzer recognizes the repo's three emission idioms: local
// counter/gauge*/histogram helper closures taking the name as their first
// argument; fmt.Fprintf formats containing `# TYPE <name> <kind>` headers
// (with the name inline or as a constant %s argument); and
// Histogram.WritePrometheus(w, name, labels) calls. Deliberate exceptions
// carry `//lint:ignore metricconv <why>`.
package metricconv

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"rendelim/internal/analysis"
)

// Analyzer is the metricconv rule set.
var Analyzer = &analysis.Analyzer{
	Name: "metricconv",
	Doc:  "Prometheus metric names, suffixes and labels must follow the resvc_* conventions",
	Run:  run,
}

// allowedLabels is the label vocabulary restat aggregates over.
var allowedLabels = map[string]bool{
	"benchmark": true, "stage": true, "class": true,
	"peer": true, "route": true, "status": true, "le": true,
}

var (
	nameRE     = regexp.MustCompile(`^resvc_[a-z0-9]+(_[a-z0-9]+)*$`)
	typeLineRE = regexp.MustCompile(`# TYPE (\S+) (counter|gauge|histogram|summary|untyped)`)
	// labelRE matches one label assignment inside a sample or format
	// fragment: peer=%q, status="%d", stage="shade".
	labelRE = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)=(?:%q|")`)
	// sampleRE finds labeled sample names in literals: resvc_foo{bar=...
	sampleRE = regexp.MustCompile(`(resvc_[A-Za-z0-9_]*)\{([^}]*)`)
)

// helperKinds maps the local emission-helper names to the metric kind they
// declare.
var helperKinds = map[string]string{
	"counter": "counter", "counterF": "counter",
	"gauge": "gauge", "gaugeF": "gauge", "gaugeI": "gauge", "gaugeU": "gauge",
	"histogram": "histogram",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.BasicLit:
				if n.Kind == token.STRING {
					checkLiteral(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	// counter("resvc_x_total", help, v) helper-closure idiom.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if kind, isHelper := helperKinds[id.Name]; isHelper && len(call.Args) >= 1 {
			if name, ok := analysis.ConstString(pass.TypesInfo, call.Args[0]); ok && strings.HasPrefix(name, "resvc_") {
				checkName(pass, call.Args[0].Pos(), name, kind)
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// hist.WritePrometheus(w, name, labels): histogram by construction.
	if sel.Sel.Name == "WritePrometheus" && len(call.Args) == 3 {
		if name, ok := analysis.ConstString(pass.TypesInfo, call.Args[1]); ok && strings.HasPrefix(name, "resvc_") {
			checkName(pass, call.Args[1].Pos(), name, "histogram")
		}
		checkLabelArg(pass, call.Args[2])
		return
	}
	// expvar.Publish("resvc_x", ...): name charset only (kind unknown).
	if pkg, fn, ok := analysis.PkgFunc(pass.TypesInfo, call); ok && pkg == "expvar" && fn == "Publish" && len(call.Args) >= 1 {
		if name, ok := analysis.ConstString(pass.TypesInfo, call.Args[0]); ok && strings.HasPrefix(name, "resvc_") {
			checkName(pass, call.Args[0].Pos(), name, "")
		}
		return
	}
	// fmt.Fprintf(w, "...# TYPE %s counter...", args): resolve %s names.
	if pkg, fn, ok := analysis.PkgFunc(pass.TypesInfo, call); ok && pkg == "fmt" && strings.HasPrefix(fn, "Fprint") && len(call.Args) >= 2 {
		format, ok := analysis.ConstString(pass.TypesInfo, call.Args[1])
		if !ok {
			return
		}
		for _, m := range typeLineRE.FindAllStringSubmatchIndex(format, -1) {
			name := format[m[2]:m[3]]
			kind := format[m[4]:m[5]]
			pos := call.Args[1].Pos()
			if name == "%s" {
				// The name is a format argument: count the verbs before
				// this %s to find which one.
				idx := verbIndex(format[:m[2]])
				if idx < 0 || 2+idx >= len(call.Args) {
					continue
				}
				resolved, ok := analysis.ConstString(pass.TypesInfo, call.Args[2+idx])
				if !ok {
					continue
				}
				name = resolved
				pos = call.Args[2+idx].Pos()
			}
			if strings.HasPrefix(name, "resvc_") {
				checkName(pass, pos, name, kind)
			}
		}
	}
}

// verbIndex counts the format verbs in prefix, returning the argument index
// of the verb that immediately follows it.
func verbIndex(prefix string) int {
	n := 0
	for i := 0; i < len(prefix); i++ {
		if prefix[i] != '%' {
			continue
		}
		if i+1 < len(prefix) && prefix[i+1] == '%' {
			i++
			continue
		}
		n++
	}
	return n
}

// checkLiteral validates labeled sample fragments appearing directly in
// string literals, e.g. "resvc_cluster_peer_up{peer=%q} %d\n".
func checkLiteral(pass *analysis.Pass, lit *ast.BasicLit) {
	val, ok := analysis.ConstString(pass.TypesInfo, lit)
	if !ok {
		return
	}
	for _, m := range sampleRE.FindAllStringSubmatch(val, -1) {
		name, labels := m[1], m[2]
		if !nameRE.MatchString(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum")) {
			pass.Reportf(lit.Pos(), "metric name %q does not match resvc_[a-z0-9_]+", name)
		}
		checkLabels(pass, lit.Pos(), labels)
	}
}

// checkLabelArg validates the label argument of WritePrometheus: either a
// constant string or a fmt.Sprintf call whose format is constant.
func checkLabelArg(pass *analysis.Pass, arg ast.Expr) {
	if s, ok := analysis.ConstString(pass.TypesInfo, arg); ok {
		checkLabels(pass, arg.Pos(), s)
		return
	}
	if call, ok := arg.(*ast.CallExpr); ok {
		if pkg, fn, ok := analysis.PkgFunc(pass.TypesInfo, call); ok && pkg == "fmt" && fn == "Sprintf" && len(call.Args) >= 1 {
			if s, ok := analysis.ConstString(pass.TypesInfo, call.Args[0]); ok {
				checkLabels(pass, call.Args[0].Pos(), s)
			}
		}
	}
}

func checkLabels(pass *analysis.Pass, pos token.Pos, fragment string) {
	for _, m := range labelRE.FindAllStringSubmatch(fragment, -1) {
		if !allowedLabels[m[1]] {
			pass.Reportf(pos, "label %q is outside the restat vocabulary (benchmark, stage, class, peer, route, status, le)", m[1])
		}
	}
}

func checkName(pass *analysis.Pass, pos token.Pos, name, kind string) {
	if !nameRE.MatchString(name) {
		pass.Reportf(pos, "metric name %q does not match resvc_[a-z0-9_]+ (lowercase words, single underscores)", name)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "counter %q must end in _total", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			pass.Reportf(pos, "gauge %q must not end in _total (reserved for counters)", name)
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_ratio") {
			pass.Reportf(pos, "histogram %q must carry a unit suffix (_seconds or _ratio)", name)
		}
	case "summary", "untyped":
		pass.Reportf(pos, "metric %q declared %s: the resvc surface only emits counters, gauges and histograms", name, kind)
	}
}
