package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("rendelim/internal/gpusim")
	Name  string // package name ("gpusim")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives []directive
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs the go command and decodes its JSON package stream.
func goList(args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns (e.g. "./...") with the go tool and returns every
// matched non-test package parsed and type-checked. Dependencies — the
// standard library included — are imported from compiler export data
// produced by a single `go list -export -deps` call, so only the target
// packages themselves are type-checked from source.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Standard,Error"}, patterns...)
	listed, err := goList(args...)
	if err != nil {
		return nil, err
	}
	// -deps emits dependencies too; the requested targets are exactly the
	// patterns' matches, which `go list` (without -deps) re-resolves cheaply.
	targets := map[string]bool{}
	{
		cmd := exec.Command("go", append([]string{"list"}, patterns...)...)
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			if line != "" {
				targets[line] = true
			}
		}
	}

	exports := map[string]string{}
	byPath := map[string]listedPkg{}
	for _, p := range listed {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)

	var out []*Package
	for _, p := range listed {
		if !targets[p.ImportPath] {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, p.ImportPath, p.Dir, absFiles(p.Dir, p.GoFiles))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir parses and type-checks a standalone directory of Go files (an
// analysistest testdata package). Imports are restricted to what a
// `go list -export -deps` of the files' import paths can resolve — in
// practice the standard library.
func LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	importSet := map[string]bool{}
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
		for _, spec := range af.Imports {
			importSet[strings.Trim(spec.Path.Value, `"`)] = true
		}
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		args := []string{"list", "-export", "-deps", "-json=ImportPath,Export"}
		for p := range importSet {
			args = append(args, p)
		}
		listed, err := goList(args...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := exportImporter(fset, exports)
	return checkParsed(fset, imp, "testdata/"+filepath.Base(dir), dir, parsed)
}

// FromTyped wraps an already parsed and type-checked package (the vet-tool
// driver path, where cmd/go supplies files and export data).
func FromTyped(path, dir string, fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) *Package {
	return &Package{
		Path:       path,
		Name:       tpkg.Name(),
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		directives: parseDirectives(fset, files),
	}
}

// exportImporter builds a types.Importer that reads compiler export data
// from the files `go list -export` reported.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	var parsed []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, af)
	}
	return checkParsed(fset, imp, path, dir, parsed)
}

func checkParsed(fset *token.FileSet, imp types.Importer, path, dir string, parsed []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		Path:       path,
		Name:       tpkg.Name(),
		Dir:        dir,
		Fset:       fset,
		Files:      parsed,
		Types:      tpkg,
		Info:       info,
		directives: parseDirectives(fset, parsed),
	}, nil
}
