package fsyncorder_test

import (
	"testing"

	"rendelim/internal/analysis/analysistest"
	"rendelim/internal/analysis/fsyncorder"
)

// TestRenameDiscipline covers the full good protocol (temp Sync, rename,
// syncDir), both violation shapes (missing temp Sync, missing directory
// sync), the inline directory-handle Sync variant, and the directive-
// suppressed quarantine exception.
func TestRenameDiscipline(t *testing.T) {
	analysistest.Run(t, fsyncorder.Analyzer, analysistest.Dir("store"))
}
