// Package fsyncorder checks the torn-write discipline of the durability
// layer (internal/store): an os.Rename that publishes a snapshot must be
// dominated by a Sync on the temp file, and the rename itself must be made
// durable by a directory fsync afterwards.
//
// The store's atomic-publish protocol (PR 9) is write-temp → fsync(temp) →
// rename → fsync(dir). Skip the first fsync and a crash can publish a file
// whose name is durable but whose bytes are not — exactly the torn write
// the protocol exists to prevent; skip the second and the rename itself may
// vanish on power loss. The crash soaks catch this at runtime with injected
// faults; this analyzer catches it in review.
//
// Within each function in the store package, every os.Rename call must
// have:
//
//   - a preceding `.Sync()` call (on the temp *os.File) earlier in the
//     same function, and
//   - a following directory sync — either the package's syncDir helper or
//     another `.Sync()` — later in the same function.
//
// Renames that do not publish new bytes (e.g. quarantining an
// already-damaged snapshot aside) are deliberate exceptions and carry
// `//lint:ignore fsyncorder <why>`.
package fsyncorder

import (
	"go/ast"
	"go/token"

	"rendelim/internal/analysis"
)

// Analyzer is the fsyncorder rule.
var Analyzer = &analysis.Analyzer{
	Name: "fsyncorder",
	Doc:  "snapshot-publishing renames must be fsync-dominated and followed by a directory sync",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() != "store" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var renames []token.Pos // os.Rename call positions
	var syncs []token.Pos   // .Sync() method calls
	var dirSyncs []token.Pos

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call); ok {
			if pkg == "os" && name == "Rename" {
				renames = append(renames, call.Pos())
			}
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Sync" && len(call.Args) == 0 {
				syncs = append(syncs, call.Pos())
			}
		case *ast.Ident:
			if fun.Name == "syncDir" {
				dirSyncs = append(dirSyncs, call.Pos())
			}
		}
		return true
	})

	for _, r := range renames {
		if !anyBefore(syncs, r) {
			pass.Reportf(r, "os.Rename publishes without a preceding Sync on the temp file: a crash can expose a durable name over non-durable bytes")
			continue
		}
		if !anyAfter(dirSyncs, r) && !anyAfter(syncs, r) {
			pass.Reportf(r, "os.Rename is not followed by a directory sync (syncDir): the rename itself may not survive power loss")
		}
	}
}

func anyBefore(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q < p {
			return true
		}
	}
	return false
}

func anyAfter(positions []token.Pos, p token.Pos) bool {
	for _, q := range positions {
		if q > p {
			return true
		}
	}
	return false
}
