// Package store is fsyncorder testdata: the analyzer applies to this
// package name only, mirroring internal/store's publish protocol.
package store

import (
	"os"
	"path/filepath"
)

// publish is the full, correct protocol: write temp, fsync temp, rename,
// fsync directory. Nothing is flagged.
func publish(path string, body []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(body); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// noTempSync skips the fsync before renaming: the rename can publish a
// durable name over non-durable bytes.
func noTempSync(path string, body []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		return err
	}
	tmp.Close()
	if err := os.Rename(tmp.Name(), path); err != nil { // want `os.Rename publishes without a preceding Sync`
		return err
	}
	return syncDir(filepath.Dir(path))
}

// noDirSync renames durable bytes but never makes the rename durable.
func noDirSync(path string, body []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(body); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	tmp.Close()
	return os.Rename(tmp.Name(), path) // want `os.Rename is not followed by a directory sync`
}

// quarantineLike is the deliberate exception: moving an already-damaged
// file aside publishes no new bytes, and the directive says why.
func quarantineLike(path string) {
	//lint:ignore fsyncorder moving damaged bytes aside needs no durability; a lost move re-quarantines next boot
	os.Rename(path, path+".quarantined")
}

// inlineDirSync uses a plain directory handle Sync instead of the helper;
// the trailing .Sync() counts.
func inlineDirSync(path string, tmp *os.File) error {
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
