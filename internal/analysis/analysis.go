// Package analysis is a self-contained static-analysis framework modeled on
// golang.org/x/tools/go/analysis, scoped to what the relint suite needs. The
// repo builds offline with no module dependencies, so the x/tools driver
// cannot be vendored; this package provides the same shape — an Analyzer
// with a Run(*Pass) hook reporting Diagnostics against a type-checked
// package — plus the //lint:ignore suppression directive the repo's
// deliberate exceptions use.
//
// The relint analyzers enforce invariants that otherwise only fail at
// runtime, sometimes flakily, in long CI soaks:
//
//	nodeterm     no wall clock, global rand, or unordered map iteration in
//	             deterministic (signature-feeding) packages
//	hotpathalloc no allocating constructs in //re:hotpath functions
//	fsyncorder   snapshot-publishing renames are fsync-dominated
//	errwrapre    boundary errors keep their sentinel chain (%w, not %v)
//	metricconv   Prometheus names/suffixes/labels stay parseable
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Run executes the analyzers against pkg, filters findings through the
// package's //lint:ignore directives, and returns the surviving diagnostics
// sorted by position.
func Run(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			if !pkg.ignored(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// directive is one parsed //lint:ignore suppression.
type directive struct {
	file     string
	line     int
	checks   []string // analyzer names the suppression applies to
	hasWhy   bool     // a justification is required; bare ignores do not count
	fileWide bool     // //lint:file-ignore applies to the whole file
}

// parseDirectives extracts //lint:ignore and //lint:file-ignore comments.
//
//	//lint:ignore nodeterm quarantine moves already-damaged bytes aside
//	//lint:file-ignore metricconv generated table
//
// An ignore suppresses matching diagnostics on its own line or the line
// directly below (so it can sit above the flagged statement, the common
// staticcheck placement). A directive without a justification is ignored —
// exceptions must say why.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				var fileWide bool
				switch {
				case strings.HasPrefix(text, "lint:ignore "):
					text = strings.TrimPrefix(text, "lint:ignore ")
				case strings.HasPrefix(text, "lint:file-ignore "):
					text = strings.TrimPrefix(text, "lint:file-ignore ")
					fileWide = true
				default:
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, directive{
					file:     pos.Filename,
					line:     pos.Line,
					checks:   strings.Split(fields[0], ","),
					hasWhy:   len(fields) > 1,
					fileWide: fileWide,
				})
			}
		}
	}
	return out
}

// ignored reports whether a diagnostic from analyzer name at pos is
// suppressed by a directive.
func (pkg *Package) ignored(name string, pos token.Position) bool {
	for _, d := range pkg.directives {
		if !d.hasWhy || d.file != pos.Filename {
			continue
		}
		if !d.fileWide && d.line != pos.Line && d.line != pos.Line-1 {
			continue
		}
		for _, c := range d.checks {
			if c == name {
				return true
			}
		}
	}
	return false
}

// --- shared type/AST helpers used by more than one analyzer ---

// PkgFunc resolves a call target of the form pkgname.Func where pkgname is
// an imported package; it returns the package path and function name.
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// IsMap reports whether e's static type is (or aliases) a map.
func IsMap(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// IsErrorType reports whether t implements the error interface.
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// ConstString returns e's compile-time string value, following constants
// and simple idents, or "", false.
func ConstString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	if s := tv.Value.String(); len(s) >= 2 && s[0] == '"' {
		// constant.Value.String() quotes strings; unquote conservatively
		// via ExactString semantics (values are valid Go literals).
		var out string
		if _, err := fmt.Sscanf(s, "%q", &out); err == nil {
			return out, true
		}
	}
	return "", false
}

// FuncDocHasMarker reports whether the function's doc comment (or a comment
// group immediately above it) contains the given marker line, e.g.
// "//re:hotpath".
func FuncDocHasMarker(fn *ast.FuncDecl, marker string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}
