// Package server is errwrapre testdata: the analyzer applies to boundary
// package names (jobs, server, cluster), mirroring the real HTTP surface.
package server

import (
	"errors"
	"fmt"
)

// Package-level sentinels are exactly the intended use of errors.New.
var (
	errBadSpec   = errors.New("bad spec")
	errExhausted = errors.New("queue exhausted")
)

// flatten loses the chain: %v swallows the sentinel and statusForError
// can no longer classify the error.
func flatten(err error) error {
	return fmt.Errorf("decoding spec: %v", err) // want `fmt.Errorf flattens an error with no %w`
}

// flattenString loses the chain via %s just the same.
func flattenString(err error) error {
	return fmt.Errorf("forwarding: %s", err) // want `fmt.Errorf flattens an error with no %w`
}

// wrap keeps the chain with a direct %w.
func wrap(err error) error {
	return fmt.Errorf("decoding spec: %w", err)
}

// wrapSentinel is the repo idiom: wrap the sentinel with %w, flatten the
// cause with %v. The %w is what statusForError follows.
func wrapSentinel(err error) error {
	return fmt.Errorf("%w: decoding spec: %v", errBadSpec, err)
}

// dynamic creates an unclassifiable error mid-function.
func dynamic(n int) error {
	if n > 8 {
		return errors.New("too many replicas") // want `errors.New inside a boundary function`
	}
	return nil
}

// suppressed documents a deliberate dynamic error.
func suppressed() error {
	//lint:ignore errwrapre panic-recovery text is diagnostic only and never reaches status mapping
	return errors.New("recovered from panic")
}

// noErrorArgs formats only plain values; nothing to preserve.
func noErrorArgs(name string, n int) error {
	return fmt.Errorf("%w: benchmark %q needs %d frames", errBadSpec, name, n)
}
