// Package helper is errwrapre negative testdata: outside the boundary
// packages the analyzer is silent, even for constructs it would flag there.
package helper

import (
	"errors"
	"fmt"
)

// flattenFreely is fine here: internal helpers may flatten; only the
// boundary packages feed statusForError.
func flattenFreely(err error) error {
	return fmt.Errorf("internal detail: %v", err)
}

func dynamicFreely() error {
	return errors.New("scratch error")
}
