// Package errwrapre keeps the error chain intact across the service's API
// boundary packages (jobs, server, cluster).
//
// httpError maps errors to status codes with errors.Is against the rerr
// sentinels (ErrBadTrace/ErrBadConfig/ErrUnknownBenchmark → 400,
// ErrOverloaded → 429, ErrBreakerOpen/ErrClosed/ErrPeerUnavailable → 503,
// ErrPeerBadResponse → 502). That mapping only works while every layer
// preserves the chain: one fmt.Errorf("...: %v", err) between the sentinel
// and the handler silently downgrades a 400 into a 500 — and nothing fails
// until a client hits it. statusForError's table tests cover the mapping;
// this analyzer covers the plumbing.
//
// Rules, in the boundary packages:
//
//   - a call to fmt.Errorf with an error-typed argument must keep a %w
//     somewhere in its format: either wrap the error itself, or wrap a
//     sentinel while flattening the cause (the repo's
//     fmt.Errorf("%w: ...: %v", rerr.ErrBadTrace, err) idiom). A format
//     with no %w at all flattens the chain.
//   - errors.New inside a function body creates an unclassifiable dynamic
//     error; declare a package-level sentinel (or wrap one) instead so
//     statusForError can see it. Package-level sentinel declarations are
//     exactly the intended use and are allowed.
//
// Deliberate exceptions carry `//lint:ignore errwrapre <why>`.
package errwrapre

import (
	"go/ast"
	"strings"

	"rendelim/internal/analysis"
)

// Analyzer is the errwrapre rule set.
var Analyzer = &analysis.Analyzer{
	Name: "errwrapre",
	Doc:  "boundary errors must keep a %w-wrapped sentinel so status mapping cannot regress",
	Run:  run,
}

// boundaryPkgs are the packages whose returned errors cross the HTTP
// surface and reach statusForError.
var boundaryPkgs = map[string]bool{"jobs": true, "server": true, "cluster": true}

func run(pass *analysis.Pass) error {
	if !boundaryPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call)
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call)
	if !ok {
		return
	}
	switch {
	case pkg == "errors" && name == "New":
		pass.Reportf(call.Pos(), "errors.New inside a boundary function: statusForError cannot classify a dynamic error — declare a package-level sentinel or wrap one with %%w")
	case pkg == "fmt" && name == "Errorf":
		checkErrorf(pass, call)
	}
}

func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := analysis.ConstString(pass.TypesInfo, call.Args[0])
	if !ok {
		return
	}
	if strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok {
			continue
		}
		if analysis.IsErrorType(tv.Type) {
			pass.Reportf(call.Pos(), "fmt.Errorf flattens an error with no %%w in the format: the sentinel chain is lost and httpError degrades to 500 — wrap with %%w (or keep a %%w sentinel first)")
			return
		}
	}
}
