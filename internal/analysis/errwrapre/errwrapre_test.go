package errwrapre_test

import (
	"testing"

	"rendelim/internal/analysis/analysistest"
	"rendelim/internal/analysis/errwrapre"
)

// TestBoundaryRules covers both violation shapes (%v-flattened chain,
// in-function errors.New), the allowed idioms (direct %w, the
// "%w: ...: %v" sentinel wrap, package-level sentinels), and directive
// suppression — all in a package named like a boundary package.
func TestBoundaryRules(t *testing.T) {
	analysistest.Run(t, errwrapre.Analyzer, analysistest.Dir("server"))
}

// TestNonBoundaryPackagesAreExempt confirms the analyzer keys on the
// boundary package names and stays silent elsewhere.
func TestNonBoundaryPackagesAreExempt(t *testing.T) {
	analysistest.Run(t, errwrapre.Analyzer, analysistest.Dir("helper"))
}
