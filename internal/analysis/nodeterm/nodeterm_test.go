package nodeterm_test

import (
	"testing"

	"rendelim/internal/analysis/analysistest"
	"rendelim/internal/analysis/nodeterm"
)

// TestDeterministicPackageRules covers the full rule set (wall clock,
// global rand, map iteration) plus the allowed idioms in a package whose
// name is in the deterministic set.
func TestDeterministicPackageRules(t *testing.T) {
	analysistest.Run(t, nodeterm.Analyzer, analysistest.Dir("gpusim"))
}

// TestEmissionRuleOutsideDeterministicPackages covers the repo-wide rule:
// only map ranges that serialize directly are flagged elsewhere.
func TestEmissionRuleOutsideDeterministicPackages(t *testing.T) {
	analysistest.Run(t, nodeterm.Analyzer, analysistest.Dir("app"))
}
