// Package nodeterm forbids nondeterminism in the packages whose output
// feeds job signatures, tile CRCs, stats folds, or serialized results.
//
// Rendering Elimination only discards work that is provably redundant: a
// job keyed by (trace CRC, config hash) may be eliminated because
// re-executing it is byte-identical. Wall-clock reads, the globally seeded
// math/rand source, and unordered map iteration silently break that
// guarantee — results still look plausible, signatures still match, but the
// bytes they stand for drift between runs. Those bugs surface (flakily) in
// the 10-minute determinism soaks; this analyzer surfaces them at lint
// time.
//
// Rules, in the deterministic packages (gpusim, trace, sig, crc, geom,
// rast, tiling, texture):
//
//   - no wall-clock or timer calls (time.Now, time.Since, time.Until,
//     time.Tick, time.After, ...). time.Duration arithmetic is fine.
//   - no globally seeded randomness: math/rand package-level functions
//     (rand.Intn, rand.Float64, rand.Shuffle, ...) and all of crypto/rand.
//     Explicitly seeded generators (rand.New(rand.NewSource(seed))) are
//     deterministic and allowed.
//   - no `range` over a map unless the iteration is order-independent:
//     either the body is a commutative fold (counter/bitmask updates, map
//     rebuilds, deletes), or it only collects keys into a slice that is
//     sorted later in the same function.
//
// Everywhere else, a `range` over a map whose body directly emits bytes
// (fmt.Fprintf, Write*, Encode, ...) is flagged: serialized output must not
// depend on Go's randomized map iteration order. Collect the keys, sort,
// then emit.
//
// Deliberate exceptions carry `//lint:ignore nodeterm <why>`.
package nodeterm

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rendelim/internal/analysis"
)

// Analyzer is the nodeterm rule set.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall clock, global rand, and unordered map iteration where determinism is load-bearing",
	Run:  run,
}

// deterministicPkgs name the packages whose every output feeds signatures,
// CRCs or stats; the full rule set applies there.
var deterministicPkgs = map[string]bool{
	"gpusim": true, "trace": true, "sig": true, "crc": true,
	"geom": true, "rast": true, "tiling": true, "texture": true,
}

// wallClock are the time package functions that read or schedule off the
// wall clock.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Tick": true,
	"After": true, "AfterFunc": true, "NewTicker": true, "NewTimer": true,
}

// seededCtors are the math/rand constructors that take an explicit source
// or seed and are therefore reproducible.
var seededCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func run(pass *analysis.Pass) error {
	det := deterministicPkgs[pass.Pkg.Name()]
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, det)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, det bool) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if det {
				checkCall(pass, n)
			}
		case *ast.RangeStmt:
			if analysis.IsMap(pass.TypesInfo, n.X) {
				checkMapRange(pass, fn, n, det)
			}
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name, ok := analysis.PkgFunc(pass.TypesInfo, call)
	if !ok {
		return
	}
	switch pkg {
	case "time":
		if wallClock[name] {
			pass.Reportf(call.Pos(), "time.%s in a deterministic package: wall-clock values reach signatures or serialized results", name)
		}
	case "math/rand", "math/rand/v2":
		if !seededCtors[name] {
			pass.Reportf(call.Pos(), "rand.%s uses the global seed in a deterministic package: use an explicitly seeded rand.New(rand.NewSource(seed))", name)
		}
	case "crypto/rand":
		pass.Reportf(call.Pos(), "crypto/rand.%s in a deterministic package: cryptographic randomness is never reproducible", name)
	}
}

// checkMapRange applies the map-iteration rules. In deterministic packages
// every map range must be provably order-independent; elsewhere only ranges
// that emit bytes directly are flagged.
func checkMapRange(pass *analysis.Pass, fn *ast.FuncDecl, rng *ast.RangeStmt, det bool) {
	if det {
		if commutativeBody(pass.TypesInfo, rng.Body) {
			return
		}
		if collectThenSort(pass.TypesInfo, fn, rng) {
			return
		}
		pass.Reportf(rng.Pos(), "map iteration order is random in a deterministic package: sort the keys first, or keep the body a commutative fold")
		return
	}
	if pos, emits := emitsBytes(rng.Body); emits {
		pass.Reportf(pos, "emitting inside a map range: output order follows Go's randomized map iteration — collect keys, sort, then emit")
	}
}

// commutativeBody reports whether every statement in the loop body is
// order-independent: compound-assign folds, inc/dec, stores into another
// map, and deletes. Plain assignments (e.g. argmax key tracking) are not —
// ties make the winner iteration-order dependent.
func commutativeBody(info *types.Info, body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if !commutativeStmt(info, st) {
			return false
		}
	}
	return len(body.List) > 0
}

func commutativeStmt(info *types.Info, st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			return true
		case token.ASSIGN:
			// A store into another map is order-independent (last write
			// per key wins and keys are distinct within one range pass).
			if len(st.Lhs) == 1 {
				if ix, ok := st.Lhs[0].(*ast.IndexExpr); ok && analysis.IsMap(info, ix.X) {
					return true
				}
			}
		}
		return false
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		// Guarded folds (e.g. conditional counting) stay commutative as
		// long as every branch is.
		if st.Init != nil || st.Else != nil {
			return false
		}
		return commutativeBody(info, st.Body)
	}
	return false
}

// collectThenSort recognizes the key-collection idiom: the loop body only
// appends the key to a slice, and that slice is sorted later in the same
// function before use.
func collectThenSort(info *types.Info, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
		return false
	}
	// Look for sort.X(dst, ...) / slices.Sort(dst) after the loop.
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || c.Pos() < rng.End() || len(c.Args) == 0 {
			return true
		}
		pkg, name, ok := analysis.PkgFunc(info, c)
		if !ok {
			return true
		}
		if !isSortCall(pkg, name) {
			return true
		}
		if arg, ok := c.Args[0].(*ast.Ident); ok && identObj(info, arg) == identObj(info, dst) {
			sorted = true
		}
		return true
	})
	return sorted
}

// isSortCall recognizes the std sorting entry points.
func isSortCall(pkg, name string) bool {
	switch pkg {
	case "sort":
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(name, "Sort")
	}
	return false
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// emitterNames are call names whose presence inside a map-range body means
// bytes leave the process in iteration order.
func isEmitterName(name string) bool {
	return strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Fprint") ||
		strings.HasPrefix(name, "Print") || name == "Encode" || name == "WriteString"
}

// emitsBytes reports the first direct emission call in the body.
func emitsBytes(body *ast.BlockStmt) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if isEmitterName(fun.Sel.Name) {
				pos, found = call.Pos(), true
			}
		case *ast.Ident:
			if isEmitterName(fun.Name) {
				pos, found = call.Pos(), true
			}
		}
		return !found
	})
	return pos, found
}
