// Package app is nodeterm testdata for the repo-wide rule: outside the
// deterministic packages only map ranges that emit bytes directly are
// flagged.
package app

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Negative: wall clock is fine outside the deterministic packages.
func uptime(start time.Time) time.Duration {
	return time.Since(start)
}

// Violation: emitting inside a map range serializes in random order.
func dumpMetrics(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v) // want `emitting inside a map range`
	}
}

// Negative: the collect-sort-emit idiom keeps output byte-stable.
func dumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}

// Negative: pure accumulation over a map emits nothing.
func total(m map[string]int) (sum int) {
	for _, v := range m {
		sum += v
	}
	return
}
