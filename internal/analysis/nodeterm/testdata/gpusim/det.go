// Package gpusim is nodeterm testdata: its package name places it in the
// deterministic set, so the full rule set applies.
package gpusim

import (
	cryptorand "crypto/rand"
	"math/rand"
	"sort"
	"time"
)

// Violations: wall clock and globally seeded randomness.

func wallClock() time.Duration {
	start := time.Now()      // want `time.Now in a deterministic package`
	return time.Since(start) // want `time.Since in a deterministic package`
}

func timers() {
	<-time.After(time.Millisecond) // want `time.After in a deterministic package`
}

func globalRand() int {
	return rand.Intn(10) // want `rand.Intn uses the global seed`
}

func cryptoRand(buf []byte) {
	cryptorand.Read(buf) // want `crypto/rand.Read in a deterministic package`
}

// Negative: explicitly seeded generators are reproducible and allowed.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Negative: duration arithmetic never reads the clock.
func durations(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

// Violation: plain map iteration whose body is neither a commutative fold
// nor a key collection.
func mapOrder(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration order is random in a deterministic package`
		out = append(out, v*2)
	}
	return out
}

// Negative: commutative fold — counters and bitmasks commute.
func fold(m map[string]uint64) (total uint64, bits uint64, n int) {
	for _, v := range m {
		total += v
		bits |= v
		n++
	}
	return
}

// Negative: guarded fold stays commutative.
func guardedFold(m map[string]int) (big int) {
	for _, v := range m {
		if v > 100 {
			big++
		}
	}
	return
}

// Negative: rebuilding another map is order-independent.
func rebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Negative: the collect-then-sort idiom.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Violation: argmax over a map is order-dependent on ties.
func argmax(m map[string]int) string {
	best, bestV := "", -1
	for k, v := range m { // want `map iteration order is random in a deterministic package`
		if v > bestV {
			best, bestV = k, v
		}
	}
	return best
}

// Negative: a justified directive suppresses a deliberate exception.
func suppressed() time.Time {
	//lint:ignore nodeterm testdata exercises the suppression path
	return time.Now()
}
