package hotpathalloc_test

import (
	"testing"

	"rendelim/internal/analysis/analysistest"
	"rendelim/internal/analysis/hotpathalloc"
)

// TestHotPathRules covers every allocating construct in annotated
// functions, plus the allowed arena idioms (cap-guarded warm-up make,
// truncating re-append, //re:arena sites) and unannotated functions.
func TestHotPathRules(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, analysistest.Dir("hot"))
}
