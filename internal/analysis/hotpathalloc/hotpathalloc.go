// Package hotpathalloc statically flags allocating constructs in functions
// annotated `//re:hotpath`.
//
// The frame loop is allocation-free in steady state (PR 7): per-frame state
// lives in arenas that retain capacity across frames, and the alloc-budget
// tests (TestAllocs* in internal/gpusim) enforce 0 allocs/frame at runtime.
// Those tests only fail after the code runs; this analyzer is their static
// companion — it makes every construct that *could* allocate visible at the
// line where it is introduced, so a careless edit fails `relint` instead of
// a CI soak.
//
// In a function whose doc comment contains a `//re:hotpath` line, the
// following are flagged:
//
//   - make() of a map, slice, or channel, and new(T) — except the arena
//     warm-up idiom `if cap(x) < n { x = make(...) }`, which grows a
//     capacity-retaining buffer once and is allocation-free in steady state
//   - composite literals of map or slice type (struct and array literals
//     are stack-friendly and allowed)
//   - func literals (closure allocation) and `go` / `defer` statements
//   - string(bytes) / []byte(string) / []rune(string) conversions
//   - append, unless the call is visibly growth-safe: either it reuses the
//     backing array (`x = append(x[:0], ...)`) or the site is annotated
//     `//re:arena` on its own line or the line above, asserting that the
//     destination's capacity is arena-managed. The annotation keeps
//     growth-capable appends explicit in review.
//
// The marker is a contract, not a heuristic: annotate the zero-alloc
// steady-state functions only (decide/render/commit tile paths, the serial
// frame loop), not per-frame coordinators that are budgeted a few
// allocations. Deliberate exceptions carry `//lint:ignore hotpathalloc
// <why>`.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rendelim/internal/analysis"
)

// Marker is the doc-comment line that opts a function into enforcement.
const Marker = "//re:hotpath"

// arenaMarker asserts that an append destination's capacity is
// arena-managed and cannot grow in steady state.
const arenaMarker = "//re:arena"

// Analyzer is the hotpathalloc rule set.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //re:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		arenaLines := arenaAnnotatedLines(pass.Fset, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !analysis.FuncDocHasMarker(fn, Marker) {
				continue
			}
			checkFunc(pass, fn, arenaLines)
		}
	}
	return nil
}

// arenaAnnotatedLines collects the line numbers carrying //re:arena.
func arenaAnnotatedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == arenaMarker ||
				strings.HasPrefix(strings.TrimSpace(c.Text), arenaMarker+" ") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, arenaLines map[int]bool) {
	warmup := warmupMakes(fn.Body)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement in a //re:hotpath function allocates a goroutine")
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in a //re:hotpath function can allocate; hoist cleanup out of the hot path")
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "func literal in a //re:hotpath function may allocate a closure")
			return false // contents belong to the closure, not this hot path
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in a //re:hotpath function")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in a //re:hotpath function")
			}
		case *ast.CallExpr:
			checkCall(pass, n, arenaLines, warmup)
		}
		return true
	})
}

// warmupMakes finds make() calls in the cap-guarded grow idiom
//
//	if cap(x) < n { x = make(T, ...) }
//
// which allocates only until the arena buffer reaches its high-water
// capacity and is steady-state free.
func warmupMakes(body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifStmt.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.LSS {
			return true
		}
		capCall, ok := cond.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := capCall.Fun.(*ast.Ident); !ok || id.Name != "cap" {
			return true
		}
		guarded := exprString(capCall.Args[0])
		if guarded == "" {
			return true
		}
		for _, st := range ifStmt.Body.List {
			asg, ok := st.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				continue
			}
			mk, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := mk.Fun.(*ast.Ident); !ok || id.Name != "make" {
				continue
			}
			if exprString(asg.Lhs[0]) == guarded {
				out[mk] = true
			}
		}
		return true
	})
	return out
}

// exprString renders simple ident/selector chains for structural equality.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	default:
		return ""
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, arenaLines map[int]bool, warmup map[*ast.CallExpr]bool) {
	// Allocating conversions: string <-> []byte / []rune copy.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isStringBytesConv(tv.Type, pass.TypesInfo.Types[call.Args[0]].Type) {
			pass.Reportf(call.Pos(), "string/byte-slice conversion copies in a //re:hotpath function")
		}
		return
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	if obj, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || obj == nil {
		return
	}
	switch id.Name {
	case "new":
		pass.Reportf(call.Pos(), "new() allocates in a //re:hotpath function")
	case "make":
		if warmup[call] {
			return
		}
		if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Type != nil {
			switch tv.Type.Underlying().(type) {
			case *types.Map, *types.Slice, *types.Chan:
				pass.Reportf(call.Pos(), "make() allocates in a //re:hotpath function")
			}
		}
	case "append":
		if appendReusesBacking(call) {
			return
		}
		line := pass.Fset.Position(call.Pos()).Line
		if arenaLines[line] || arenaLines[line-1] {
			return
		}
		pass.Reportf(call.Pos(), "append may grow its backing array in a //re:hotpath function; reuse capacity (x = append(x[:0], ...)) or annotate the site //re:arena")
	}
}

// appendReusesBacking recognizes append(x[:0], ...) — truncation that keeps
// the backing array, so steady-state calls stay allocation-free.
func appendReusesBacking(call *ast.CallExpr) bool {
	sl, ok := call.Args[0].(*ast.SliceExpr)
	if !ok || sl.High == nil {
		return false
	}
	hi, ok := sl.High.(*ast.BasicLit)
	return ok && hi.Value == "0" && sl.Low == nil
}

// isStringBytesConv reports a conversion between string and []byte/[]rune.
func isStringBytesConv(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
