// Package hot is hotpathalloc testdata: allocating constructs in
// //re:hotpath functions, and the arena idioms that are allowed.
package hot

type arena struct {
	buf   []byte
	items []int
}

// hot is the annotated steady-state function every rule applies to.
//
//re:hotpath
func hot(a *arena, n int) {
	m := map[string]int{} // want `map literal allocates`
	_ = m
	s := []int{1, 2, 3} // want `slice literal allocates`
	_ = s
	p := new(arena) // want `new\(\) allocates`
	_ = p
	q := make([]byte, n) // want `make\(\) allocates`
	_ = q
	f := func() int { return n } // want `func literal .* may allocate a closure`
	_ = f
	a.items = append(a.items, n) // want `append may grow its backing array`
	b := []byte("hello")         // want `string/byte-slice conversion copies`
	_ = b
	go helper() // want `go statement in a //re:hotpath function`
}

//re:hotpath
func hotDefer(a *arena) {
	defer helper() // want `defer in a //re:hotpath function`
}

// Negative: the arena warm-up idiom grows once to high-water capacity.
//
//re:hotpath
func warmup(a *arena, n int) []byte {
	if cap(a.buf) < n {
		a.buf = make([]byte, n)
	}
	return a.buf[:n]
}

// Negative: truncating re-append reuses the backing array.
//
//re:hotpath
func reuse(a *arena, n int) {
	a.items = append(a.items[:0], n)
}

// Negative: an annotated arena append is a declared contract.
//
//re:hotpath
func arenaAppend(a *arena, n int) {
	//re:arena
	a.items = append(a.items, n)
}

// Negative: struct and array literals are stack-friendly.
//
//re:hotpath
func valueLits() (arena, [4]int) {
	return arena{}, [4]int{1, 2, 3, 4}
}

// Negative: unannotated functions may allocate freely.
func cold(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

func helper() {}
