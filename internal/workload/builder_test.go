package workload

import (
	"testing"

	"rendelim/internal/api"
	"rendelim/internal/geom"
)

func lastDraw(t *testing.T, b *frameBuilder) api.Draw {
	t.Helper()
	f := b.done()
	for i := len(f.Commands) - 1; i >= 0; i-- {
		if d, ok := f.Commands[i].(api.Draw); ok {
			return d
		}
	}
	t.Fatal("no draw emitted")
	return api.Draw{}
}

func TestQuad2DEmitsIndexedQuad(t *testing.T) {
	b := newFrame()
	b.quad2D(10, 20, 30, 40, 0, geom.V4(1, 0, 0, 1))
	d := lastDraw(t, b)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.VertexCount() != 4 || d.TriangleCount() != 2 {
		t.Fatalf("quad: %d verts %d tris", d.VertexCount(), d.TriangleCount())
	}
	// Corner positions present.
	found := 0
	for v := 0; v < 4; v++ {
		p := d.Vertex(v)[0]
		if (p.X == 10 || p.X == 40) && (p.Y == 20 || p.Y == 60) {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("only %d corners placed correctly", found)
	}
}

func TestBox3DGeometry(t *testing.T) {
	b := newFrame()
	b.box3D(geom.V3(1, 2, 3), geom.V3(1, 1, 1))
	d := lastDraw(t, b)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.VertexCount() != 24 || d.TriangleCount() != 12 {
		t.Fatalf("box: %d verts %d tris, want 24/12", d.VertexCount(), d.TriangleCount())
	}
	// All vertices lie on the box surface.
	for v := 0; v < d.VertexCount(); v++ {
		p := d.Vertex(v)[0]
		dx, dy, dz := p.X-1, p.Y-2, p.Z-3
		on := abs1(dx) || abs1(dy) || abs1(dz)
		if !on {
			t.Fatalf("vertex %d (%v) not on box surface", v, p)
		}
	}
	// Normals are unit axis vectors.
	for v := 0; v < d.VertexCount(); v++ {
		n := d.Vertex(v)[1]
		if n.Dot3(n) != 1 {
			t.Fatalf("vertex %d normal %v not unit axis", v, n)
		}
	}
}

func abs1(v float32) bool { return v == 1 || v == -1 }

func TestFlushBatchesAndResets(t *testing.T) {
	b := newFrame()
	b.quad2D(0, 0, 1, 1, 0, geom.V4(1, 1, 1, 1))
	b.quad2D(2, 0, 1, 1, 0, geom.V4(1, 1, 1, 1))
	b.flush()
	b.quad2D(4, 0, 1, 1, 0, geom.V4(1, 1, 1, 1))
	f := b.done()
	draws := 0
	for _, c := range f.Commands {
		if d, ok := c.(api.Draw); ok {
			draws++
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if draws != 2 {
		t.Fatalf("draws = %d, want 2 (batched + trailing)", draws)
	}
}

func TestSetPipelineFlushesPending(t *testing.T) {
	b := newFrame()
	b.quad2D(0, 0, 1, 1, 0, geom.V4(1, 1, 1, 1))
	b.setPipeline(pipe2D(pidFlat, 0, api.BlendNone))
	f := b.done()
	// The draw must precede the pipeline switch.
	var order []string
	for _, c := range f.Commands {
		switch c.(type) {
		case api.Draw:
			order = append(order, "draw")
		case api.SetPipeline:
			order = append(order, "pipe")
		}
	}
	if len(order) != 2 || order[0] != "draw" || order[1] != "pipe" {
		t.Fatalf("order = %v", order)
	}
}

func TestOrtho2DMapsPixels(t *testing.T) {
	m := ortho2D(100, 50)
	bl := m.MulVec(geom.V4(0, 0, 0, 1))
	if bl.X != -1 || bl.Y != -1 {
		t.Fatalf("origin maps to %v", bl)
	}
	tr := m.MulVec(geom.V4(100, 50, 0, 1))
	if tr.X != 1 || tr.Y != 1 {
		t.Fatalf("far corner maps to %v", tr)
	}
}

func TestPipePresets(t *testing.T) {
	p2 := pipe2D(pidTex, 3, api.BlendAlpha)
	if p2.DepthTest || p2.DepthWrite || p2.Blend != api.BlendAlpha || p2.Tex[0] != 3 {
		t.Fatalf("pipe2D = %+v", p2)
	}
	p3 := pipe3D(pidLambert, 1)
	if !p3.DepthTest || !p3.DepthWrite || p3.Blend != api.BlendNone {
		t.Fatalf("pipe3D = %+v", p3)
	}
}
