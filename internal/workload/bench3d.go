package workload

import (
	"math"

	"rendelim/internal/api"
	"rendelim/internal/geom"
	"rendelim/internal/texture"
)

// perspCam returns the projection*view matrix for a standard perspective
// camera.
func perspCam(w, h int, eye, center geom.Vec3) geom.Mat4 {
	aspect := float32(w) / float32(h)
	return geom.Perspective(1.1, aspect, 0.5, 200).Mul(geom.LookAt(eye, center, geom.V3(0, 1, 0)))
}

// object emits one 3D object drawcall: its own constants epoch (combined
// MVP + material) followed by its mesh.
func object(b *frameBuilder, mvp geom.Mat4, tint geom.Vec4, light geom.Vec4, emit func(*frameBuilder)) {
	b.setMVP(mvp)
	b.setUniforms(4, tint)
	b.setUniforms(5, light)
	emit(b)
	b.flush()
}

// buildCOC: Clash of Clans — isometric village with a static camera,
// static buildings, a few walking units, one unit walking behind a large
// wall (occluded mover: equal colors, different inputs), and a short camera
// pan every 30 frames.
func buildCOC(p Params) *api.Trace {
	tr := newTrace("coc", p, geom.V4(0.2, 0.3, 0.15, 1), []api.TextureSpec{
		{Kind: api.TexChecker, W: 256, H: 256, Cell: 16, A: geom.V4(0.35, 0.5, 0.25, 1), B: geom.V4(0.3, 0.45, 0.22, 1), Filter: texture.Nearest},
		{Kind: api.TexNoise, W: 256, H: 256, Cell: 8, Seed: uint64(p.Seed) + 11, A: geom.V4(0.6, 0.5, 0.4, 1), Amp: 0.15, Filter: texture.Nearest},
	})
	light := geom.V4(0.4, 0.8, 0.45, 0.35)
	const panStart, panLen, panPeriod = 36, 3, 40

	for f := 0; f < p.Frames; f++ {
		eye := geom.V3(10, 9, 12)
		if ph := f % panPeriod; ph >= panStart%panPeriod && ph < panStart%panPeriod+panLen {
			d := float32(ph - panStart%panPeriod + 1)
			eye = eye.Add(geom.V3(0.4*d, 0, -0.3*d))
		}
		cam := perspCam(p.Width, p.Height, eye, geom.V3(0, 0, 0))

		b := newFrame()
		pipeG := pipe3D(pidLambert, 0)
		b.setPipeline(pipeG)
		object(b, cam, geom.V4(1, 1, 1, 1), light, func(b *frameBuilder) {
			b.groundPlane(0, 14, 6)
		})

		b.setPipeline(pipe3D(pidLambert, 1))
		// Static buildings ring.
		for i := 0; i < 8; i++ {
			ang := float64(i) / 8 * 2 * math.Pi
			pos := geom.V3(6*cosf(ang), 0.9, 6*sinf(ang))
			object(b, cam, geom.V4(0.9, 0.85, 0.8, 1), light, func(b *frameBuilder) {
				b.box3D(pos, geom.V3(0.8, 0.9, 0.8))
			})
		}
		// Large wall that will occlude a mover.
		object(b, cam, geom.V4(0.8, 0.8, 0.85, 1), light, func(b *frameBuilder) {
			b.box3D(geom.V3(0, 1.2, 2.5), geom.V3(4, 1.2, 0.3))
		})
		// Walking units (visible movers).
		for u := 0; u < 2; u++ {
			t := float64(f)/40 + float64(u)*2
			pos := geom.V3(3.5*cosf(t), 0.3, 3.5*sinf(t))
			object(b, cam, candyColors[u], light, func(b *frameBuilder) {
				b.box3D(pos, geom.V3(0.25, 0.3, 0.25))
			})
		}
		// Occluded mover: walks behind the wall (drawn after it, so early-Z
		// culls every fragment; its tiles keep their colors while their
		// inputs change every frame).
		ox := 2.5 * sinf(float64(f)/7)
		object(b, cam, geom.V4(1, 0.4, 0.2, 1), light, func(b *frameBuilder) {
			b.box3D(geom.V3(ox, 0.8, 3.4), geom.V3(0.3, 0.4, 0.3))
		})

		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}

// buildMST: Modern Strike — an enclosed FPS arena with the camera moving
// and turning every frame: effectively zero redundant tiles (the paper's
// second category).
func buildMST(p Params) *api.Trace {
	tr := newTrace("mst", p, geom.V4(0.1, 0.1, 0.12, 1), []api.TextureSpec{
		{Kind: api.TexNoise, W: 512, H: 512, Cell: 8, Seed: uint64(p.Seed) + 23, A: geom.V4(0.45, 0.42, 0.4, 1), Amp: 0.2, Filter: texture.Nearest},
		{Kind: api.TexChecker, W: 256, H: 256, Cell: 16, A: geom.V4(0.5, 0.48, 0.45, 1), B: geom.V4(0.4, 0.38, 0.36, 1), Filter: texture.Nearest},
	})
	light := geom.V4(0.3, 0.9, 0.3, 0.3)

	for f := 0; f < p.Frames; f++ {
		t := float64(f)
		eye := geom.V3(6*cosf(t/30), 2.2+0.15*sinf(t/3), 6*sinf(t/30))
		look := geom.V3(2*cosf(t/15), 1.8, 2*sinf(t/15))
		cam := perspCam(p.Width, p.Height, eye, look)

		b := newFrame()
		b.setPipeline(pipe3D(pidLambert, 0))
		// Floor and ceiling.
		object(b, cam, geom.V4(1, 1, 1, 1), light, func(b *frameBuilder) {
			b.groundPlane(0, 16, 8)
		})
		object(b, cam, geom.V4(0.6, 0.6, 0.65, 1), light, func(b *frameBuilder) {
			b.box3D(geom.V3(0, 7, 0), geom.V3(16, 0.2, 16))
		})
		// Arena walls.
		b.setPipeline(pipe3D(pidLambert, 1))
		walls := [4]geom.Vec3{{X: 0, Y: 3.5, Z: -12}, {X: 0, Y: 3.5, Z: 12}, {X: -12, Y: 3.5, Z: 0}, {X: 12, Y: 3.5, Z: 0}}
		for i, w := range walls {
			e := geom.V3(12, 3.5, 0.3)
			if i >= 2 {
				e = geom.V3(0.3, 3.5, 12)
			}
			object(b, cam, geom.V4(0.85, 0.85, 0.9, 1), light, func(b *frameBuilder) {
				b.box3D(w, e)
			})
		}
		// Cover crates.
		for i := 0; i < 10; i++ {
			ang := float64(i)/10*2*math.Pi + 0.4
			pos := geom.V3(7*cosf(ang), 0.7, 7*sinf(ang))
			object(b, cam, geom.V4(0.7, 0.6, 0.45, 1), light, func(b *frameBuilder) {
				b.box3D(pos, geom.V3(0.7, 0.7, 0.7))
			})
		}
		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}

// buildCSN: Crazy Snowboard — continuous downhill motion with a static
// screen-space sky band (~40% of tiles stay identical).
func buildCSN(p Params) *api.Trace {
	tr := newTrace("csn", p, geom.V4(0.55, 0.7, 0.9, 1), []api.TextureSpec{
		{Kind: api.TexGradient, W: 32, H: 64, A: geom.V4(0.5, 0.65, 0.9, 1), B: geom.V4(0.75, 0.85, 1, 1), Filter: texture.Nearest},
		{Kind: api.TexNoise, W: 512, H: 512, Cell: 16, Seed: uint64(p.Seed) + 31, A: geom.V4(0.92, 0.94, 1, 1), Amp: 0.05, Filter: texture.Nearest},
		{Kind: api.TexChecker, W: 32, H: 32, Cell: 4, A: geom.V4(0.3, 0.5, 0.3, 1), B: geom.V4(0.25, 0.4, 0.25, 1), Filter: texture.Nearest},
	})
	W, H := float32(p.Width), float32(p.Height)
	light := geom.V4(0.3, 0.9, 0.3, 0.45)

	for f := 0; f < p.Frames; f++ {
		b := newFrame()
		// Screen-space sky: identical commands every frame.
		b.setMVP(ortho2D(p.Width, p.Height))
		b.setUniforms(4, geom.V4(1, 1, 1, 1))
		b.setPipeline(pipe2D(pidTex, 0, api.BlendNone))
		b.quad2D(0, H*0.70, W, H*0.30, 0, geom.V4(1, 1, 1, 1))

		// Slope: camera slides forward; world geometry is static so every
		// constants block changes with the camera.
		z := float32(f) * 0.8
		eye := geom.V3(0, 3, -z)
		cam := perspCam(p.Width, p.Height, eye, eye.Add(geom.V3(0, -0.35, -4)))
		b.setPipeline(pipe3D(pidLambert, 1))
		// Two ground sections leapfrog ahead of the camera.
		for sec := 0; sec < 2; sec++ {
			secZ := -(float32(int(z/40)) + float32(sec)) * 40
			object(b, cam, geom.V4(1, 1, 1, 1), light, func(b *frameBuilder) {
				b.box3D(geom.V3(0, -0.5, secZ-20), geom.V3(12, 0.5, 20))
			})
		}
		// Trees / gates along the slope.
		b.setPipeline(pipe3D(pidLambert, 2))
		for i := 0; i < 12; i++ {
			tz := -(float32(i)*7 + float32(int(z/84)*84))
			side := float32(1)
			if i%2 == 0 {
				side = -1
			}
			object(b, cam, geom.V4(0.6, 0.9, 0.6, 1), light, func(b *frameBuilder) {
				b.box3D(geom.V3(side*3.5, 0.8, tz), geom.V3(0.3, 0.8, 0.3))
			})
		}
		// The snowboarder, fixed relative to the camera.
		object(b, cam, geom.V4(0.9, 0.3, 0.3, 1), light, func(b *frameBuilder) {
			b.box3D(geom.V3(0.9*sinf(float64(f)/9), 0.4, -z-6), geom.V3(0.25, 0.4, 0.25))
		})

		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}

// buildTER: Temple Run — forward runner with a static sky strip and static
// HUD (~30% of tiles), everything else in continuous motion.
func buildTER(p Params) *api.Trace {
	tr := newTrace("ter", p, geom.V4(0.9, 0.6, 0.3, 1), []api.TextureSpec{
		{Kind: api.TexGradient, W: 32, H: 64, A: geom.V4(0.95, 0.65, 0.3, 1), B: geom.V4(0.85, 0.5, 0.35, 1), Filter: texture.Nearest},
		{Kind: api.TexNoise, W: 512, H: 512, Cell: 8, Seed: uint64(p.Seed) + 41, A: geom.V4(0.55, 0.45, 0.3, 1), Amp: 0.2, Filter: texture.Nearest},
		{Kind: api.TexChecker, W: 32, H: 32, Cell: 8, A: geom.V4(0.35, 0.3, 0.25, 1), B: geom.V4(0.3, 0.25, 0.2, 1), Filter: texture.Nearest},
	})
	W, H := float32(p.Width), float32(p.Height)
	light := geom.V4(0.2, 0.9, 0.4, 0.4)

	for f := 0; f < p.Frames; f++ {
		b := newFrame()
		// Sky band + HUD: screen-space, identical every frame.
		b.setMVP(ortho2D(p.Width, p.Height))
		b.setUniforms(4, geom.V4(1, 1, 1, 1))
		b.setPipeline(pipe2D(pidTex, 0, api.BlendNone))
		b.quad2D(0, H*0.78, W, H*0.22, 0, geom.V4(1, 1, 1, 1))
		b.setPipeline(pipe2D(pidVColor, 0, api.BlendNone))
		b.quad2D(4, 4, W*0.25, 16, 0, geom.V4(0.2, 0.2, 0.25, 1))
		b.quad2D(W-4-W*0.18, 4, W*0.18, 16, 0, geom.V4(0.2, 0.2, 0.25, 1))

		// Temple path rushing toward the camera.
		z := float32(f) * 1.1
		eye := geom.V3(0, 2, -z)
		cam := perspCam(p.Width, p.Height, eye, eye.Add(geom.V3(0, -0.25, -4)))
		b.setPipeline(pipe3D(pidLambert, 1))
		for sec := 0; sec < 2; sec++ {
			secZ := -(float32(int(z/30)) + float32(sec)) * 30
			object(b, cam, geom.V4(1, 1, 1, 1), light, func(b *frameBuilder) {
				b.box3D(geom.V3(0, -0.5, secZ-15), geom.V3(3, 0.5, 15))
			})
		}
		// Side walls and gates.
		b.setPipeline(pipe3D(pidLambert, 2))
		for i := 0; i < 10; i++ {
			wz := -(float32(i)*6 + float32(int(z/60)*60))
			object(b, cam, geom.V4(0.8, 0.75, 0.7, 1), light, func(b *frameBuilder) {
				b.box3D(geom.V3(-3.4, 1.2, wz), geom.V3(0.4, 1.2, 1))
				b.box3D(geom.V3(3.4, 1.2, wz), geom.V3(0.4, 1.2, 1))
			})
		}
		// The runner.
		object(b, cam, geom.V4(0.9, 0.8, 0.3, 1), light, func(b *frameBuilder) {
			b.box3D(geom.V3(1.2*sinf(float64(f)/6), 0.5, -z-5), geom.V3(0.25, 0.5, 0.25))
		})

		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}

// buildTIB: Tigerball — static camera physics puzzle: a ball rolls
// continuously, the rest of the scene is static except for short impulse
// bursts; one weight swings behind the main platform (occluded mover).
func buildTIB(p Params) *api.Trace {
	tr := newTrace("tib", p, geom.V4(0.25, 0.2, 0.3, 1), []api.TextureSpec{
		{Kind: api.TexChecker, W: 256, H: 256, Cell: 16, A: geom.V4(0.45, 0.4, 0.55, 1), B: geom.V4(0.4, 0.35, 0.5, 1), Filter: texture.Nearest},
		{Kind: api.TexNoise, W: 256, H: 256, Cell: 8, Seed: uint64(p.Seed) + 53, A: geom.V4(0.9, 0.6, 0.2, 1), Amp: 0.1, Filter: texture.Nearest},
	})
	light := geom.V4(0.4, 0.85, 0.35, 0.35)
	const impulsePeriod, impulseLen = 15, 5

	for f := 0; f < p.Frames; f++ {
		shake := float32(0)
		eye := geom.V3(0, 6, 11)
		if f%impulsePeriod < impulseLen {
			shake = 0.4 * sinf(float64(f)*2.1)
			eye = eye.Add(geom.V3(0.12*sinf(float64(f)*1.7), 0.08*cosf(float64(f)*2.3), 0))
		}
		cam := perspCam(p.Width, p.Height, eye, geom.V3(0, 1, 0))

		b := newFrame()
		b.setPipeline(pipe3D(pidLambert, 0))
		object(b, cam, geom.V4(1, 1, 1, 1), light, func(b *frameBuilder) {
			b.groundPlane(0, 12, 5)
		})
		// Static platforms (they shake during impulses).
		for i := 0; i < 5; i++ {
			pos := geom.V3(float32(i-2)*3, 0.5+shake*float32(i%2), -1)
			object(b, cam, geom.V4(0.8, 0.8, 0.9, 1), light, func(b *frameBuilder) {
				b.box3D(pos, geom.V3(1.1, 0.5, 1.1))
			})
		}
		// Back wall occluder.
		object(b, cam, geom.V4(0.7, 0.7, 0.8, 1), light, func(b *frameBuilder) {
			b.box3D(geom.V3(0, 1.5, -4), geom.V3(5, 1.5, 0.3))
		})
		// The ball, rolling along the platforms.
		b.setPipeline(pipe3D(pidLambert, 1))
		bt := float64(f) / 10
		object(b, cam, geom.V4(1, 0.8, 0.3, 1), light, func(b *frameBuilder) {
			b.box3D(geom.V3(5*sinf(bt), 1.5+0.4*absf(sinf(bt*3)), -0.5), geom.V3(0.7, 0.7, 0.7))
		})
		// Occluded swinging weight behind the back wall.
		object(b, cam, geom.V4(0.3, 0.9, 0.9, 1), light, func(b *frameBuilder) {
			b.box3D(geom.V3(3*sinf(float64(f)/5), 1.2, -4.8), geom.V3(0.35, 0.35, 0.35))
		})

		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}

func absf(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
