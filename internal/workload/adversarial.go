package workload

import (
	"rendelim/internal/api"
	"rendelim/internal/geom"
	"rendelim/internal/texture"
)

// Adversarial returns the hash-ablation stress workload: scenes engineered
// so that weak (order- or position-insensitive) signature functions alias
// genuinely different tile inputs while CRC32 does not. Used by the Section
// III-B / V hash comparison ("CRC32 outperforms well-known hashing
// approaches such as XOR-based schemes").
//
// Construction: two overlapping opaque quads with different colors are drawn
// in an order that flips every two frames. The draw *order* is the only
// difference between a frame and the frame two swaps back, so:
//
//   - the final color flips (the later quad wins),
//   - an order-insensitive signature (xor-fold, add32) is identical →
//     a false positive: RE would reuse stale, wrong colors;
//   - CRC32 differs → the tile renders correctly.
//
// A second region swaps the x/y coordinates of a sprite between frames
// (word-transposition), aliasing under xor-fold but not under CRC32.
func Adversarial(p Params) *api.Trace {
	tr := newTrace("adversarial", p, geom.V4(0, 0, 0, 1), []api.TextureSpec{
		{Kind: api.TexChecker, W: 16, H: 16, Cell: 4, A: geom.V4(1, 1, 1, 1), B: geom.V4(0.8, 0.8, 0.8, 1), Filter: texture.Nearest},
	})
	W, H := float32(p.Width), float32(p.Height)
	red := geom.V4(1, 0.1, 0.1, 1)
	blue := geom.V4(0.1, 0.1, 1, 1)

	for f := 0; f < p.Frames; f++ {
		flip := (f/2)%2 == 1
		b := newFrame()
		b.setMVP(ortho2D(p.Width, p.Height))
		b.setUniforms(4, geom.V4(1, 1, 1, 1))
		b.setPipeline(pipe2D(pidVColor, 0, api.BlendNone))

		// Region 1: order-swap. Both quads cover the same screen area; only
		// submission order changes, so the visible color flips.
		first, second := red, blue
		if flip {
			first, second = blue, red
		}
		b.quad2D(0, 0, W*0.45, H, 0, first)
		b.flush() // separate drawcalls so primitive order is a block order
		b.quad2D(0, 0, W*0.45, H, 0, second)
		b.flush()

		// Region 2: coordinate transposition. A sprite sits at (a,b) in
		// even pairs and (b,a) in odd pairs; the two placements xor-fold to
		// the same word set.
		ax, ay := W*0.60, W*0.70
		if flip {
			ax, ay = ay, ax
		}
		b.quad2D(ax, ay-W*0.5, 24, 24, 0, geom.V4(0.3, 1, 0.3, 1))
		b.flush()

		// Region 3: honest static content, so redundancy detection still
		// has something to find.
		b.quad2D(W*0.5, 10, W*0.45, H*0.25, 0, geom.V4(0.6, 0.6, 0.2, 1))

		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}
