// Package workload synthesizes the benchmark suite of Table II. The ten
// commercial Android games cannot be redistributed, so each alias maps to a
// parameterized synthetic scene whose camera/animation profile reproduces
// the property Rendering Elimination actually depends on — the fraction and
// spatial locality of tile-input redundancy across frames — as well as the
// secondary effects the paper measures: occluded movers (equal colors with
// different inputs), flat-color regions under panning, and the mostly-black
// screens that make hop favor Fragment Memoization (Figure 16).
//
// Coherence classes (Section V / Figure 15a):
//
//	static cameras:   ccs cde coc ctr hop   (>85% equal tiles)
//	continuous:       mst                   (~0% equal tiles)
//	phase-mixed:      abi csn ter tib       (intermediate)
package workload

import (
	"fmt"

	"rendelim/internal/api"
	"rendelim/internal/rerr"
	"rendelim/internal/shader"
)

// Params scales a benchmark build.
type Params struct {
	Width, Height int
	Frames        int
	Seed          int64
}

// DefaultParams returns the experiment defaults: a quarter-scale screen
// (the paper simulates 1196x768; the shape of every result is resolution-
// independent) and the paper's 50-frame windows.
func DefaultParams() Params {
	return Params{Width: 480, Height: 272, Frames: 50, Seed: 1}
}

// Benchmark describes one Table II entry.
type Benchmark struct {
	Alias string
	Name  string
	Genre string
	Type  string // "2D" or "3D"
	Build func(Params) *api.Trace
}

// Shared shader program registry (every trace carries the same table).
const (
	pidVS      = 0 // TransformVS(2)
	pidFlat    = 1
	pidVColor  = 2
	pidTex     = 3
	pidLambert = 4
)

func standardPrograms() []*shader.Program {
	return []*shader.Program{
		shader.TransformVS(2),
		shader.FlatFS(),
		shader.VertexColorFS(),
		shader.TexturedFS(),
		shader.LambertTexFS(),
	}
}

// Suite returns the Table II benchmark suite in paper order.
func Suite() []Benchmark {
	return []Benchmark{
		{"ccs", "Candy Crush Saga", "Puzzle", "2D", buildCCS},
		{"cde", "Castle Defense", "Tower Defense", "2D", buildCDE},
		{"coc", "Clash of Clans", "MMO Strategy", "3D", buildCOC},
		{"ctr", "Cut the Rope", "Puzzle", "2D", buildCTR},
		{"hop", "Hopeless", "Survival Horror", "2D", buildHOP},
		{"mst", "Modern Strike", "First Person Shooter", "3D", buildMST},
		{"abi", "Angry Birds", "Arcade", "2D", buildABI},
		{"csn", "Crazy Snowboard", "Arcade", "3D", buildCSN},
		{"ter", "Temple Run", "Platform", "3D", buildTER},
		{"tib", "Tigerball", "Physics Puzzle", "3D", buildTIB},
	}
}

// ByAlias returns the named benchmark.
func ByAlias(alias string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Alias == alias {
			return b, nil
		}
	}
	for _, b := range Extras() {
		if b.Alias == alias {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workload: %w %q", rerr.ErrUnknownBenchmark, alias)
}

// Extras returns the non-suite reference workloads used by Figure 1:
// the (near-idle) Android desktop and an Antutu-like GPU stress test.
func Extras() []Benchmark {
	return []Benchmark{
		{"desktop", "Android Desktop", "Launcher", "2D", buildDesktop},
		{"antutu", "Antutu 3D", "Synthetic Stress", "3D", buildAntutu},
	}
}
