package workload

import (
	"math"

	"rendelim/internal/api"
	"rendelim/internal/geom"
	"rendelim/internal/texture"
)

// newTrace assembles the common trace skeleton.
func newTrace(name string, p Params, clear geom.Vec4, tex []api.TextureSpec) *api.Trace {
	return &api.Trace{
		Name:       name,
		Width:      p.Width,
		Height:     p.Height,
		ClearColor: clear,
		Programs:   standardPrograms(),
		Textures:   tex,
		Frames:     make([]api.Frame, 0, p.Frames),
	}
}

// candy colors for sprite tints.
var candyColors = []geom.Vec4{
	{X: 1, Y: 0.3, Z: 0.3, W: 1}, {X: 0.3, Y: 1, Z: 0.4, W: 1},
	{X: 0.4, Y: 0.5, Z: 1, W: 1}, {X: 1, Y: 0.9, Z: 0.3, W: 1},
	{X: 1, Y: 0.5, Z: 1, W: 1}, {X: 0.4, Y: 1, Z: 1, W: 1},
}

// buildCCS: Candy Crush Saga — a static puzzle board where one candy pair
// animates at a time. Static camera, tiny moving region: the >90% equal
// tiles class of Figure 2.
func buildCCS(p Params) *api.Trace {
	tr := newTrace("ccs", p, geom.V4(0.1, 0.05, 0.2, 1), []api.TextureSpec{
		{Kind: api.TexNoise, W: 512, H: 512, Cell: 8, Seed: uint64(p.Seed), A: geom.V4(0.3, 0.2, 0.5, 1), Amp: 0.15, Filter: texture.Nearest},
		{Kind: api.TexDisc, W: 32, H: 32, A: geom.V4(1, 1, 1, 1), B: geom.V4(0, 0, 0, 0), Filter: texture.Nearest},
	})
	W, H := float32(p.Width), float32(p.Height)
	const cols, rows = 8, 6
	cellW := W / (cols + 2)
	cellH := H / (rows + 2)
	candy := cellW * 0.8
	const swapPeriod = 16

	for f := 0; f < p.Frames; f++ {
		b := newFrame()
		b.setMVP(ortho2D(p.Width, p.Height))
		b.setUniforms(4, geom.V4(1, 1, 1, 1))

		b.setPipeline(pipe2D(pidTex, 0, api.BlendNone))
		b.quad2D(0, 0, W, H, 0, geom.V4(1, 1, 1, 1))

		b.setPipeline(pipe2D(pidTex, 1, api.BlendAlpha))
		pair := f / swapPeriod
		ai := pair % (cols*rows - 1)
		bi := ai + 1
		t := float64(f%swapPeriod) / swapPeriod
		lift := float32(math.Round(12 * math.Sin(math.Pi*t)))
		for j := 0; j < rows; j++ {
			for i := 0; i < cols; i++ {
				idx := j*cols + i
				x := cellW * (1 + float32(i))
				y := cellH * (1 + float32(j))
				if idx == ai {
					y += lift
				} else if idx == bi {
					y -= lift
				}
				b.quad2D(x, y, candy, candy, 0, candyColors[(i+j)%len(candyColors)])
			}
		}
		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}

// buildCDE: Castle Defense — the most static benchmark: fixed map and
// towers, one small projectile and one walking enemy. Highest RE benefit
// (Figure 14a: up to 86% cycle reduction).
func buildCDE(p Params) *api.Trace {
	tr := newTrace("cde", p, geom.V4(0.1, 0.15, 0.1, 1), []api.TextureSpec{
		{Kind: api.TexChecker, W: 512, H: 512, Cell: 16, A: geom.V4(0.25, 0.4, 0.2, 1), B: geom.V4(0.2, 0.33, 0.16, 1), Filter: texture.Nearest},
		{Kind: api.TexDisc, W: 16, H: 16, A: geom.V4(0.9, 0.2, 0.2, 1), B: geom.V4(0, 0, 0, 0), Filter: texture.Nearest},
		{Kind: api.TexGradient, W: 32, H: 64, A: geom.V4(0.6, 0.6, 0.65, 1), B: geom.V4(0.3, 0.3, 0.35, 1), Filter: texture.Nearest},
	})
	W, H := float32(p.Width), float32(p.Height)

	for f := 0; f < p.Frames; f++ {
		b := newFrame()
		b.setMVP(ortho2D(p.Width, p.Height))
		b.setUniforms(4, geom.V4(1, 1, 1, 1))

		b.setPipeline(pipe2D(pidTex, 0, api.BlendNone))
		b.quad2D(0, 0, W, H, 0, geom.V4(1, 1, 1, 1))

		// Static towers.
		b.setPipeline(pipe2D(pidTex, 2, api.BlendNone))
		for i := 0; i < 6; i++ {
			x := W * (0.12 + 0.14*float32(i))
			b.quad2D(x, H*0.55, W*0.05, H*0.2, 0, geom.V4(1, 1, 1, 1))
		}

		// One projectile and one enemy.
		b.setPipeline(pipe2D(pidTex, 1, api.BlendAlpha))
		px, py := stepPath(f, 25, W*0.2, H*0.6, W*0.7, H*0.3)
		b.quad2D(px, py, 10, 10, 0, geom.V4(1, 1, 0.4, 1))
		ex, _ := stepPath(f, 60, W*0.05, H*0.25, W*0.9, H*0.25)
		b.quad2D(ex, H*0.25, 18, 18, 0, geom.V4(1, 1, 1, 1))

		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}

// buildCTR: Cut the Rope — static background with a swinging rope+candy.
func buildCTR(p Params) *api.Trace {
	tr := newTrace("ctr", p, geom.V4(0.15, 0.1, 0.08, 1), []api.TextureSpec{
		{Kind: api.TexNoise, W: 512, H: 512, Cell: 16, Seed: uint64(p.Seed) + 7, A: geom.V4(0.5, 0.35, 0.25, 1), Amp: 0.1, Filter: texture.Nearest},
		{Kind: api.TexDisc, W: 32, H: 32, A: geom.V4(0.9, 0.7, 0.3, 1), B: geom.V4(0, 0, 0, 0), Filter: texture.Nearest},
	})
	W, H := float32(p.Width), float32(p.Height)
	pivotX, pivotY := W*0.5, H*0.9
	ropeLen := H * 0.35
	const segs = 8

	for f := 0; f < p.Frames; f++ {
		b := newFrame()
		b.setMVP(ortho2D(p.Width, p.Height))
		b.setUniforms(4, geom.V4(1, 1, 1, 1))

		b.setPipeline(pipe2D(pidTex, 0, api.BlendNone))
		b.quad2D(0, 0, W, H, 0, geom.V4(1, 1, 1, 1))

		// Swinging rope segments + candy at the end.
		ang := 0.6 * math.Sin(2*math.Pi*float64(f)/40)
		b.setPipeline(pipe2D(pidVColor, 0, api.BlendNone))
		for sTmp := 1; sTmp <= segs; sTmp++ {
			r := ropeLen * float32(sTmp) / segs
			x := pivotX + r*sinf(ang)
			y := pivotY - r*cosf(ang)
			x = float32(math.Round(float64(x)))
			y = float32(math.Round(float64(y)))
			b.quad2D(x-2, y-2, 5, 5, 0, geom.V4(0.8, 0.75, 0.6, 1))
		}
		b.setPipeline(pipe2D(pidTex, 1, api.BlendAlpha))
		cx := pivotX + ropeLen*sinf(ang)
		cy := pivotY - ropeLen*cosf(ang)
		b.quad2D(float32(math.Round(float64(cx)))-12, float32(math.Round(float64(cy)))-12, 24, 24, 0, geom.V4(1, 1, 1, 1))

		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}

// buildHOP: Hopeless — a survival-horror scene that is mostly black. A
// flicker overlay updates an *unused* uniform every frame, so roughly a
// third of the screen has different inputs but identical (black) colors —
// RE false negatives — while the flat-shaded darkness consists of a handful
// of repeated fragment inputs, which is exactly why Fragment Memoization
// beats RE on this benchmark (Figure 16) despite >90% color equality.
func buildHOP(p Params) *api.Trace {
	tr := newTrace("hop", p, geom.V4(0, 0, 0, 1), []api.TextureSpec{
		{Kind: api.TexDisc, W: 64, H: 64, A: geom.V4(0.9, 0.8, 0.5, 0.6), B: geom.V4(0, 0, 0, 0), Filter: texture.Nearest},
	})
	W, H := float32(p.Width), float32(p.Height)
	dark := geom.V4(0.02, 0.02, 0.03, 1)

	for f := 0; f < p.Frames; f++ {
		b := newFrame()
		b.setMVP(ortho2D(p.Width, p.Height))

		// Static darkness base.
		b.setUniforms(4, dark)
		b.setPipeline(pipe2D(pidFlat, 0, api.BlendNone))
		b.quad2D(0, 0, W, H, 0, geom.V4(1, 1, 1, 1))

		// Flicker overlay: c6 (read by no shader) changes every frame, so
		// the covered tiles' inputs differ while their color stays black.
		b.setUniforms(4, dark)
		b.setUniforms(6, geom.V4(float32(f), float32(f)*0.13, 0, 0))
		b.setPipeline(pipe2D(pidFlat, 0, api.BlendNone))
		b.quad2D(W*0.12, H*0.12, W*0.72, H*0.72, 0, geom.V4(1, 1, 1, 1))

		// The survivor and a small swaying lantern glow.
		b.setUniforms(4, geom.V4(1, 1, 1, 1))
		b.setUniforms(6, geom.V4(0, 0, 0, 0))
		cx, cy := stepPath(f, 80, W*0.3, H*0.3, W*0.6, H*0.35)
		b.setPipeline(pipe2D(pidVColor, 0, api.BlendNone))
		b.quad2D(cx, cy, 14, 22, 0, geom.V4(0.35, 0.3, 0.28, 1))
		b.setPipeline(pipe2D(pidTex, 0, api.BlendAlpha))
		b.quad2D(cx-24, cy-18, 60, 60, 0, geom.V4(1, 1, 1, 1))

		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}

// buildABI: Angry Birds — phase-mixed: 12 static aiming frames alternate
// with 8 camera-panning frames; the sky's flat color keeps many panned
// tiles color-equal while their inputs change.
func buildABI(p Params) *api.Trace {
	tr := newTrace("abi", p, geom.V4(0.45, 0.7, 0.95, 1), []api.TextureSpec{
		// Flat sky color: panning does not change sampled colors.
		{Kind: api.TexChecker, W: 8, H: 8, Cell: 8, A: geom.V4(0.45, 0.7, 0.95, 1), B: geom.V4(0.45, 0.7, 0.95, 1), Filter: texture.Nearest},
		{Kind: api.TexNoise, W: 512, H: 256, Cell: 8, Seed: uint64(p.Seed) + 3, A: geom.V4(0.3, 0.6, 0.25, 1), Amp: 0.2, Filter: texture.Nearest},
		{Kind: api.TexDisc, W: 32, H: 32, A: geom.V4(0.85, 0.2, 0.2, 1), B: geom.V4(0, 0, 0, 0), Filter: texture.Nearest},
	})
	W, H := float32(p.Width), float32(p.Height)
	const period = 20
	const staticFrames = 6

	for f := 0; f < p.Frames; f++ {
		phase := f % period
		panning := phase >= staticFrames
		var scroll float32
		if panning {
			scroll = float32(math.Round(float64(W) * 0.04 * float64(phase-staticFrames+1)))
		}

		b := newFrame()
		b.setMVP(ortho2D(p.Width, p.Height))
		b.setUniforms(4, geom.V4(1, 1, 1, 1))

		// Sky (upper 55%): flat color. It parallax-scrolls during pans, so
		// its inputs change while its sampled colors stay identical — the
		// "equal colors, different inputs" class that favors TE over RE on
		// this benchmark (Section V-A).
		b.setPipeline(pipe2D(pidTex, 0, api.BlendNone))
		b.quad2D(-scroll*0.25-W*0.5, H*0.45, W*2, H*0.55, 0, geom.V4(1, 1, 1, 1))
		// Ground strip scrolls during pans (two copies for wraparound).
		b.setPipeline(pipe2D(pidTex, 1, api.BlendNone))
		gx := -scroll
		b.quad2D(gx, 0, W, H*0.45, 0, geom.V4(1, 1, 1, 1))
		b.quad2D(gx+W, 0, W, H*0.45, 0, geom.V4(1, 1, 1, 1))

		// Slingshot structure (static) and the bird (flies while panning).
		b.setPipeline(pipe2D(pidVColor, 0, api.BlendNone))
		b.quad2D(W*0.15-scroll*0.5, H*0.45, 8, H*0.12, 0, geom.V4(0.4, 0.25, 0.15, 1))
		b.setPipeline(pipe2D(pidTex, 2, api.BlendAlpha))
		if panning {
			t := float64(phase-staticFrames) / float64(period-staticFrames)
			bx := float32(math.Round(float64(W) * (0.2 + 0.6*t)))
			by := float32(math.Round(float64(H) * (0.5 + 0.35*t*(1-t)*4*0.5)))
			b.quad2D(bx, by, 20, 20, 0, geom.V4(1, 1, 1, 1))
		} else {
			b.quad2D(W*0.16, H*0.5, 20, 20, 0, geom.V4(1, 1, 1, 1))
		}

		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}
