package workload

import (
	"math"

	"rendelim/internal/api"
	"rendelim/internal/geom"
)

// frameBuilder assembles one frame's command stream with small-sprite
// batching. 2D sprites are CPU-transformed into vertex positions (the way
// mobile sprite batchers actually submit geometry), so animation shows up
// as changed vertex attributes exactly where the sprite is — the locality
// Rendering Elimination exploits. 3D objects instead carry their combined
// model-view-projection in the drawcall's constants.
type frameBuilder struct {
	cmds  []api.Command
	batch []geom.Vec4 // pending vertex data (3 vec4 attrs per vertex)
	index []uint16    // pending triangle indices into the batch
	pipe  api.SetPipeline
}

func newFrame() *frameBuilder { return &frameBuilder{} }

// setPipeline flushes the batch and switches pipeline state.
func (b *frameBuilder) setPipeline(p api.SetPipeline) {
	b.flush()
	b.pipe = p
	b.cmds = append(b.cmds, p)
}

// setUniforms flushes the batch and updates constants.
func (b *frameBuilder) setUniforms(first int, vals ...geom.Vec4) {
	b.flush()
	b.cmds = append(b.cmds, api.SetUniforms{First: first, Values: vals})
}

// setMVP uploads a matrix to the conventional c0..c3 registers.
func (b *frameBuilder) setMVP(m geom.Mat4) {
	b.setUniforms(0, m.Row(0), m.Row(1), m.Row(2), m.Row(3))
}

// vertex appends one unique vertex (pos, colorOrNormal, uv) and returns its
// index within the pending batch.
func (b *frameBuilder) vertex(pos geom.Vec4, cn, uv geom.Vec4) uint16 {
	idx := uint16(len(b.batch) / 3)
	b.batch = append(b.batch, pos, cn, uv)
	return idx
}

// emit appends one indexed triangle.
func (b *frameBuilder) emit(i0, i1, i2 uint16) {
	b.index = append(b.index, i0, i1, i2)
}

// tri appends one free-standing triangle.
func (b *frameBuilder) tri(p0, p1, p2 geom.Vec4, cn geom.Vec4, uv0, uv1, uv2 geom.Vec4) {
	b.emit(b.vertex(p0, cn, uv0), b.vertex(p1, cn, uv1), b.vertex(p2, cn, uv2))
}

// quad emits an indexed quad (4 shared vertices, 2 triangles) from explicit
// corners — how sprite batchers actually submit geometry.
func (b *frameBuilder) quad(p00, p10, p11, p01 geom.Vec4, cn geom.Vec4, uv00, uv10, uv11, uv01 geom.Vec4) {
	i00 := b.vertex(p00, cn, uv00)
	i10 := b.vertex(p10, cn, uv10)
	i11 := b.vertex(p11, cn, uv11)
	i01 := b.vertex(p01, cn, uv01)
	b.emit(i00, i10, i11)
	b.emit(i00, i11, i01)
}

// quad2D appends an axis-aligned quad at depth z covering [x,x+w]x[y,y+h]
// in world units, with full-texture UVs and a per-vertex color.
func (b *frameBuilder) quad2D(x, y, w, h, z float32, color geom.Vec4) {
	b.quadUV(x, y, w, h, z, color, 0, 0, 1, 1)
}

// quadUV is quad2D with explicit texture coordinates (for scrolling UVs).
func (b *frameBuilder) quadUV(x, y, w, h, z float32, color geom.Vec4, u0, v0, u1, v1 float32) {
	b.quad(
		geom.V4(x, y, z, 1), geom.V4(x+w, y, z, 1), geom.V4(x+w, y+h, z, 1), geom.V4(x, y+h, z, 1),
		color,
		geom.V4(u0, v0, 0, 0), geom.V4(u1, v0, 0, 0), geom.V4(u1, v1, 0, 0), geom.V4(u0, v1, 0, 0))
}

// flush emits the pending batch as one indexed drawcall.
func (b *frameBuilder) flush() {
	if len(b.batch) == 0 {
		return
	}
	data := make([]geom.Vec4, len(b.batch))
	copy(data, b.batch)
	idx := make([]uint16, len(b.index))
	copy(idx, b.index)
	b.cmds = append(b.cmds, api.Draw{NumAttrs: 3, Data: data, Indices: idx})
	b.batch = b.batch[:0]
	b.index = b.index[:0]
}

// done finalizes the frame.
func (b *frameBuilder) done() api.Frame {
	b.flush()
	return api.Frame{Commands: b.cmds}
}

// box3D appends the 12 triangles of an axis-aligned box centered at c with
// half-extents e, with face normals in the color/normal attribute.
func (b *frameBuilder) box3D(c, e geom.Vec3) {
	faces := [6]struct {
		n    geom.Vec3
		a, d geom.Vec3 // two in-face axes
	}{
		{geom.V3(1, 0, 0), geom.V3(0, 1, 0), geom.V3(0, 0, 1)},
		{geom.V3(-1, 0, 0), geom.V3(0, 0, 1), geom.V3(0, 1, 0)},
		{geom.V3(0, 1, 0), geom.V3(0, 0, 1), geom.V3(1, 0, 0)},
		{geom.V3(0, -1, 0), geom.V3(1, 0, 0), geom.V3(0, 0, 1)},
		{geom.V3(0, 0, 1), geom.V3(1, 0, 0), geom.V3(0, 1, 0)},
		{geom.V3(0, 0, -1), geom.V3(0, 1, 0), geom.V3(1, 0, 0)},
	}
	uv := [4]geom.Vec4{
		geom.V4(0, 0, 0, 0), geom.V4(1, 0, 0, 0), geom.V4(1, 1, 0, 0), geom.V4(0, 1, 0, 0),
	}
	for _, f := range faces {
		center := c.Add(geom.V3(f.n.X*e.X, f.n.Y*e.Y, f.n.Z*e.Z))
		ax := geom.V3(f.a.X*e.X, f.a.Y*e.Y, f.a.Z*e.Z)
		dx := geom.V3(f.d.X*e.X, f.d.Y*e.Y, f.d.Z*e.Z)
		n4 := f.n.Vec4(0)
		p := [4]geom.Vec4{
			center.Sub(ax).Sub(dx).Vec4(1),
			center.Add(ax).Sub(dx).Vec4(1),
			center.Add(ax).Add(dx).Vec4(1),
			center.Sub(ax).Add(dx).Vec4(1),
		}
		b.quad(p[0], p[1], p[2], p[3], n4, uv[0], uv[1], uv[2], uv[3])
	}
}

// groundPlane appends a large textured quad at height y with normal +Y.
func (b *frameBuilder) groundPlane(y, half float32, uvRepeat float32) {
	n := geom.V4(0, 1, 0, 0)
	b.quad(
		geom.V4(-half, y, -half, 1), geom.V4(half, y, -half, 1),
		geom.V4(half, y, half, 1), geom.V4(-half, y, half, 1),
		n,
		geom.V4(0, 0, 0, 0), geom.V4(uvRepeat, 0, 0, 0),
		geom.V4(uvRepeat, uvRepeat, 0, 0), geom.V4(0, uvRepeat, 0, 0))
}

// Common pipeline presets.

func pipe2D(fs api.ProgramID, tex api.TextureID, blend api.BlendMode) api.SetPipeline {
	return api.SetPipeline{
		VS: pidVS, FS: fs,
		Tex:       [api.MaxTexUnits]api.TextureID{tex},
		Blend:     blend,
		DepthTest: false, DepthWrite: false, CullBack: false,
	}
}

func pipe3D(fs api.ProgramID, tex api.TextureID) api.SetPipeline {
	return api.SetPipeline{
		VS: pidVS, FS: fs,
		Tex:       [api.MaxTexUnits]api.TextureID{tex},
		Blend:     api.BlendNone,
		DepthTest: true, DepthWrite: true, CullBack: false,
	}
}

// ortho2D returns the standard pixel-space projection for a screen.
func ortho2D(w, h int) geom.Mat4 {
	return geom.Ortho(0, float32(w), 0, float32(h), -10, 10)
}

func sinf(x float64) float32 { return float32(math.Sin(x)) }
func cosf(x float64) float32 { return float32(math.Cos(x)) }

// stepPath returns a deterministic position along a looping path, quantized
// to whole pixels so that a pausing object reproduces bit-identical
// geometry.
func stepPath(f int, period int, ax, ay, bx, by float32) (x, y float32) {
	t := float64(f%period) / float64(period)
	x = float32(math.Round(float64(ax + (bx-ax)*float32(t))))
	y = float32(math.Round(float64(ay + (by-ay)*float32(0.5-0.5*math.Cos(2*math.Pi*t)))))
	return x, y
}
