package workload

import (
	"math"

	"rendelim/internal/api"
	"rendelim/internal/geom"
	"rendelim/internal/texture"
)

// buildDesktop: the Android desktop without animations (Figure 1's
// near-idle reference): a static wallpaper and icon grid, identical every
// frame, so the GPU does minimal work and static power dominates.
func buildDesktop(p Params) *api.Trace {
	tr := newTrace("desktop", p, geom.V4(0.1, 0.12, 0.2, 1), []api.TextureSpec{
		{Kind: api.TexGradient, W: 64, H: 64, A: geom.V4(0.15, 0.2, 0.35, 1), B: geom.V4(0.05, 0.08, 0.15, 1), Filter: texture.Nearest},
		{Kind: api.TexDisc, W: 32, H: 32, A: geom.V4(0.9, 0.9, 0.9, 1), B: geom.V4(0, 0, 0, 0), Filter: texture.Nearest},
	})
	W, H := float32(p.Width), float32(p.Height)
	for f := 0; f < p.Frames; f++ {
		b := newFrame()
		// Without animations the compositor only redraws when something
		// changes: the wallpaper and icons are submitted on the first two
		// frames (filling both swap-chain buffers) and every later frame
		// is empty, leaving the GPU essentially idle.
		if f < 2 {
			b.setMVP(ortho2D(p.Width, p.Height))
			b.setUniforms(4, geom.V4(1, 1, 1, 1))
			b.setPipeline(pipe2D(pidTex, 0, api.BlendNone))
			b.quad2D(0, 0, W, H, 0, geom.V4(1, 1, 1, 1))
			b.setPipeline(pipe2D(pidTex, 1, api.BlendAlpha))
			for j := 0; j < 4; j++ {
				for i := 0; i < 5; i++ {
					b.quad2D(W*(0.1+0.18*float32(i)), H*(0.15+0.2*float32(j)), 24, 24, 0, candyColors[(i+j)%len(candyColors)])
				}
			}
		}
		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}

// buildAntutu: a GPU stress test in the spirit of Antutu3D: a rotating
// camera over many lit, textured objects with heavy overdraw — maximum
// sustained load, no frame-to-frame redundancy.
func buildAntutu(p Params) *api.Trace {
	tr := newTrace("antutu", p, geom.V4(0.05, 0.05, 0.08, 1), []api.TextureSpec{
		{Kind: api.TexNoise, W: 128, H: 128, Cell: 4, Seed: uint64(p.Seed) + 97, A: geom.V4(0.5, 0.5, 0.55, 1), Amp: 0.25, Filter: texture.Bilinear},
		{Kind: api.TexChecker, W: 128, H: 128, Cell: 8, A: geom.V4(0.7, 0.3, 0.2, 1), B: geom.V4(0.2, 0.3, 0.7, 1), Filter: texture.Bilinear},
	})
	light := geom.V4(0.3, 0.8, 0.5, 0.25)
	for f := 0; f < p.Frames; f++ {
		t := float64(f)
		eye := geom.V3(9*cosf(t/20), 4+1.5*sinf(t/11), 9*sinf(t/20))
		cam := perspCam(p.Width, p.Height, eye, geom.V3(0, 1, 0))
		b := newFrame()
		b.setPipeline(pipe3D(pidLambert, 0))
		object(b, cam, geom.V4(1, 1, 1, 1), light, func(b *frameBuilder) {
			b.groundPlane(0, 18, 10)
		})
		// Stacked translucent layers and dense object rings give the
		// sustained whole-screen overdraw a GPU stress test is built for.
		for layer := 0; layer < 3; layer++ {
			y := 4.5 + 0.8*float32(layer)
			object(b, cam, geom.V4(0.9, 0.9, 1, 1), light, func(b *frameBuilder) {
				b.box3D(geom.V3(0, y, 0), geom.V3(14, 0.2, 14))
			})
		}
		b.setPipeline(pipe3D(pidLambert, 1))
		for i := 0; i < 56; i++ {
			ang := float64(i)/56*2*math.Pi + t/9
			r := 2.5 + float32(i%6)
			pos := geom.V3(r*cosf(ang), 0.6+float32(i%3)*1.1, r*sinf(ang))
			object(b, cam, candyColors[i%len(candyColors)], light, func(b *frameBuilder) {
				b.box3D(pos, geom.V3(0.8, 0.8, 0.8))
			})
		}
		tr.Frames = append(tr.Frames, b.done())
	}
	return tr
}
