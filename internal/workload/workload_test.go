package workload

import (
	"testing"

	"rendelim/internal/api"
)

func small() Params { return Params{Width: 128, Height: 96, Frames: 6, Seed: 1} }

func TestSuiteMatchesTableII(t *testing.T) {
	s := Suite()
	if len(s) != 10 {
		t.Fatalf("suite has %d entries, want 10", len(s))
	}
	wantOrder := []string{"ccs", "cde", "coc", "ctr", "hop", "mst", "abi", "csn", "ter", "tib"}
	types := map[string]string{
		"ccs": "2D", "cde": "2D", "coc": "3D", "ctr": "2D", "hop": "2D",
		"mst": "3D", "abi": "2D", "csn": "3D", "ter": "3D", "tib": "3D",
	}
	for i, b := range s {
		if b.Alias != wantOrder[i] {
			t.Fatalf("position %d: %s, want %s", i, b.Alias, wantOrder[i])
		}
		if b.Type != types[b.Alias] {
			t.Fatalf("%s: type %s, want %s (Table II)", b.Alias, b.Type, types[b.Alias])
		}
		if b.Name == "" || b.Genre == "" || b.Build == nil {
			t.Fatalf("%s: incomplete entry", b.Alias)
		}
	}
}

func TestByAlias(t *testing.T) {
	if _, err := ByAlias("ccs"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByAlias("desktop"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByAlias("nope"); err == nil {
		t.Fatal("unknown alias should error")
	}
}

func TestAllTracesValidate(t *testing.T) {
	all := append(Suite(), Extras()...)
	for _, b := range all {
		tr := b.Build(small())
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Alias, err)
		}
		if len(tr.Frames) != small().Frames {
			t.Fatalf("%s: %d frames", b.Alias, len(tr.Frames))
		}
		if tr.Name != b.Alias {
			t.Fatalf("%s: trace named %q", b.Alias, tr.Name)
		}
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	for _, b := range Suite() {
		t1 := b.Build(small())
		t2 := b.Build(small())
		if len(t1.Frames) != len(t2.Frames) {
			t.Fatalf("%s: frame count differs", b.Alias)
		}
		for f := range t1.Frames {
			c1, c2 := t1.Frames[f].Commands, t2.Frames[f].Commands
			if len(c1) != len(c2) {
				t.Fatalf("%s frame %d: command count differs", b.Alias, f)
			}
			for i := range c1 {
				d1, ok1 := c1[i].(api.Draw)
				d2, ok2 := c2[i].(api.Draw)
				if ok1 != ok2 {
					t.Fatalf("%s frame %d cmd %d: kind differs", b.Alias, f, i)
				}
				if !ok1 {
					continue
				}
				if len(d1.Data) != len(d2.Data) {
					t.Fatalf("%s frame %d cmd %d: draw size differs", b.Alias, f, i)
				}
				for k := range d1.Data {
					if d1.Data[k] != d2.Data[k] {
						t.Fatalf("%s frame %d cmd %d: vertex %d differs", b.Alias, f, i, k)
					}
				}
			}
		}
	}
}

// Static-camera benchmarks must repeat most drawcall bytes across a 2-frame
// distance (the redundancy RE exploits); mst must repeat almost nothing.
func TestCoherenceClassesAtCommandLevel(t *testing.T) {
	// A drawcall is "effectively identical" across a 2-frame distance when
	// both its vertex payload AND its preceding MVP upload match; 3D
	// workloads animate through per-drawcall constants, 2D workloads
	// through vertex data, and either breaks tile redundancy.
	type unit struct {
		mvp  []api.Command // most recent SetUniforms{First:0} before the draw
		draw api.Draw
	}
	units := func(cmds []api.Command) []unit {
		var out []unit
		var lastMVP api.Command
		for _, c := range cmds {
			switch cc := c.(type) {
			case api.SetUniforms:
				if cc.First == 0 {
					lastMVP = cc
				}
			case api.Draw:
				out = append(out, unit{mvp: []api.Command{lastMVP}, draw: cc})
			}
		}
		return out
	}
	unitEqual := func(a, b unit) bool {
		ua, okA := a.mvp[0].(api.SetUniforms)
		ub, okB := b.mvp[0].(api.SetUniforms)
		if okA != okB {
			return false
		}
		if okA {
			if len(ua.Values) != len(ub.Values) {
				return false
			}
			for k := range ua.Values {
				if ua.Values[k] != ub.Values[k] {
					return false
				}
			}
		}
		if len(a.draw.Data) != len(b.draw.Data) {
			return false
		}
		for k := range a.draw.Data {
			if a.draw.Data[k] != b.draw.Data[k] {
				return false
			}
		}
		return true
	}
	identicalFraction := func(alias string) float64 {
		b, err := ByAlias(alias)
		if err != nil {
			t.Fatal(err)
		}
		p := small()
		p.Frames = 8
		tr := b.Build(p)
		same, total := 0, 0
		for f := 2; f < len(tr.Frames); f++ {
			ua := units(tr.Frames[f].Commands)
			ub := units(tr.Frames[f-2].Commands)
			if len(ua) != len(ub) {
				continue
			}
			for i := range ua {
				total++
				if unitEqual(ua[i], ub[i]) {
					same++
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s: no comparable commands", alias)
		}
		return float64(same) / float64(total)
	}

	// Command-level identity is a *lower bound* on tile-level redundancy
	// (a huge draw with one moved sprite still leaves most tiles equal).
	if f := identicalFraction("cde"); f < 0.5 {
		t.Fatalf("cde: identical-command fraction %.2f too low", f)
	}
	if f := identicalFraction("mst"); f > 0.05 {
		t.Fatalf("mst: identical-command fraction %.2f too high", f)
	}
}

func TestStepPathQuantizedAndPeriodic(t *testing.T) {
	x1, y1 := stepPath(3, 20, 0, 0, 100, 50)
	x2, y2 := stepPath(23, 20, 0, 0, 100, 50)
	if x1 != x2 || y1 != y2 {
		t.Fatal("stepPath not periodic")
	}
	if x1 != float32(int(x1)) || y1 != float32(int(y1)) {
		t.Fatal("stepPath not pixel-quantized")
	}
}

func TestStandardProgramsValidate(t *testing.T) {
	for _, p := range standardPrograms() {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExtrasBuild(t *testing.T) {
	for _, b := range Extras() {
		tr := b.Build(small())
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Alias, err)
		}
	}
}
