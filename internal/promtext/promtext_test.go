package promtext

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rendelim/internal/stats"
)

const sample = `# HELP resvc_jobs_submitted_total Jobs submitted to the pool.
# TYPE resvc_jobs_submitted_total counter
resvc_jobs_submitted_total 42

# HELP resvc_cluster_peer_up Peer liveness (1 up, 0 down).
# TYPE resvc_cluster_peer_up gauge
resvc_cluster_peer_up{peer="127.0.0.1:8001"} 1
resvc_cluster_peer_up{peer="127.0.0.1:8002"} 0
`

func TestParseCountersAndGauges(t *testing.T) {
	m, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f := m.Families["resvc_jobs_submitted_total"]; f.Type != "counter" || !strings.Contains(f.Help, "submitted") {
		t.Errorf("family = %+v", f)
	}
	if v, ok := m.Value("resvc_jobs_submitted_total", nil); !ok || v != 42 {
		t.Errorf("submitted = %v, %v", v, ok)
	}
	if v, ok := m.Value("resvc_cluster_peer_up", map[string]string{"peer": "127.0.0.1:8002"}); !ok || v != 0 {
		t.Errorf("peer 8002 = %v, %v", v, ok)
	}
	if got := m.Sum("resvc_cluster_peer_up", nil); got != 1 {
		t.Errorf("Sum(peer_up) = %v, want 1", got)
	}
	if _, ok := m.Value("nope", nil); ok {
		t.Error("Value on missing metric reported ok")
	}
}

// A histogram written by stats.Histogram.WritePrometheus must round-trip
// through Parse + Metrics.Histogram into an equivalent snapshot, including
// across multiple label sets (summed), so restat's quantiles match the
// node's own.
func TestHistogramRoundTrip(t *testing.T) {
	h1 := stats.NewHistogram(0.1, 0.5, 1, 5)
	h2 := stats.NewHistogram(0.1, 0.5, 1, 5)
	for _, v := range []float64{0.05, 0.3, 0.7, 2, 9} {
		h1.Observe(v)
	}
	for _, v := range []float64{0.2, 0.4} {
		h2.Observe(v)
	}
	var buf bytes.Buffer
	buf.WriteString("# HELP d latency\n# TYPE d histogram\n")
	h1.WritePrometheus(&buf, "d", `route="/jobs"`)
	h2.WritePrometheus(&buf, "d", `route="/healthz"`)

	m, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	one, ok := m.Histogram("d", map[string]string{"route": "/jobs"})
	if !ok {
		t.Fatal("no buckets for route=/jobs")
	}
	want := h1.Snapshot()
	if one.Count != want.Count || one.Sum != want.Sum {
		t.Errorf("single-route snapshot = %+v, want %+v", one, want)
	}
	if got, wantQ := one.Quantile(0.5), want.Quantile(0.5); math.Abs(got-wantQ) > 1e-9 {
		t.Errorf("p50 = %v, want %v", got, wantQ)
	}

	all, ok := m.Histogram("d", nil)
	if !ok {
		t.Fatal("no buckets for merged histogram")
	}
	if all.Count != 7 {
		t.Errorf("merged count = %d, want 7", all.Count)
	}
	if math.Abs(all.Sum-(want.Sum+h2.Sum())) > 1e-9 {
		t.Errorf("merged sum = %v", all.Sum)
	}
	if _, ok := m.Histogram("missing", nil); ok {
		t.Error("Histogram on missing family reported ok")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"name_without_value\n",
		`m{key} 1` + "\n",
		`m{k="v} 1` + "\n",
		"m not-a-number\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) accepted malformed input", bad)
		}
	}
}

// Label values containing escapes must unquote correctly.
func TestParseEscapedLabels(t *testing.T) {
	m, err := Parse(strings.NewReader(`m{k="a\"b\\c"} 3` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Value("m", map[string]string{"k": `a"b\c`}); !ok || v != 3 {
		t.Errorf("escaped label lookup = %v, %v", v, ok)
	}
}
