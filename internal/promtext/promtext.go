// Package promtext parses the Prometheus text exposition format — the
// inverse of the hand-rolled WritePrometheus emitters across the repo — so
// cmd/restat can scrape /metrics off live nodes and aggregate the results
// without any client library. It covers the subset the repo emits: HELP and
// TYPE comment lines, and series lines with optional quoted labels. It does
// not handle exemplars, timestamps, escaped newlines inside HELP text, or
// the OpenMetrics extensions.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"rendelim/internal/stats"
)

// Sample is one series sample: a metric name, its label set, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the named label value ("" when absent).
func (s Sample) Label(k string) string { return s.Labels[k] }

// Family is one metric family's metadata from its HELP/TYPE lines.
type Family struct {
	Name string
	Type string // counter | gauge | histogram | untyped
	Help string
}

// Metrics is one parsed exposition.
type Metrics struct {
	Families map[string]Family
	Samples  []Sample
}

// Parse reads one text exposition. Malformed lines are errors, not skips:
// restat doubles as an end-to-end check that the emitters stay well-formed.
func Parse(r io.Reader) (*Metrics, error) {
	m := &Metrics{Families: make(map[string]Family)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := m.parseComment(line); err != nil {
				return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("promtext: line %d: %w", lineNo, err)
		}
		m.Samples = append(m.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("promtext: %w", err)
	}
	return m, nil
}

func (m *Metrics) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("HELP line without metric name: %q", line)
		}
		f := m.Families[fields[2]]
		f.Name = fields[2]
		if len(fields) == 4 {
			f.Help = fields[3]
		}
		m.Families[fields[2]] = f
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("TYPE line needs name and type: %q", line)
		}
		f := m.Families[fields[2]]
		f.Name = fields[2]
		f.Type = fields[3]
		m.Families[fields[2]] = f
	}
	return nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return s, fmt.Errorf("unbalanced braces: %q", line)
		}
		s.Name = line[:i]
		var err error
		if s.Labels, err = parseLabels(line[i+1 : j]); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return s, fmt.Errorf("want `name value`: %q", line)
		}
		s.Name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels splits `k1="v1",k2="v2"` respecting quotes and \-escapes.
func parseLabels(body string) (map[string]string, error) {
	labels := map[string]string{}
	for i := 0; i < len(body); {
		eq := strings.IndexByte(body[i:], '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without =")
		}
		key := strings.TrimSpace(body[i : i+eq])
		i += eq + 1
		if i >= len(body) || body[i] != '"' {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		j := i + 1
		for j < len(body) {
			if body[j] == '\\' {
				j += 2
				continue
			}
			if body[j] == '"' {
				break
			}
			j++
		}
		if j >= len(body) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		val, err := strconv.Unquote(body[i : j+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value for %q: %w", key, err)
		}
		labels[key] = val
		i = j + 1
		if i < len(body) && body[i] == ',' {
			i++
		}
	}
	return labels, nil
}

// matches reports whether the sample carries every label in sel.
func (s Sample) matches(sel map[string]string) bool {
	for k, v := range sel {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Value returns the first sample of name matching sel (nil sel matches any
// label set). ok is false when no sample matches.
func (m *Metrics) Value(name string, sel map[string]string) (float64, bool) {
	for _, s := range m.Samples {
		if s.Name == name && s.matches(sel) {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample of name matching sel — the scrape-side analogue of
// sum() over a label dimension.
func (m *Metrics) Sum(name string, sel map[string]string) float64 {
	var total float64
	for _, s := range m.Samples {
		if s.Name == name && s.matches(sel) {
			total += s.Value
		}
	}
	return total
}

// Histogram reassembles name's _bucket/_sum/_count series into a
// stats.HistSnapshot, summing across every label set matching sel (so
// quantiles can be taken over all routes, or one). ok is false when the
// exposition carries no buckets for name.
func (m *Metrics) Histogram(name string, sel map[string]string) (stats.HistSnapshot, bool) {
	byLE := map[float64]float64{}
	var sum, count float64
	found := false
	for _, s := range m.Samples {
		if !s.matches(sel) {
			continue
		}
		switch s.Name {
		case name + "_bucket":
			le := s.Label("le")
			if le == "+Inf" {
				continue // implicit: equals _count
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			byLE[b] += s.Value
			found = true
		case name + "_sum":
			sum += s.Value
		case name + "_count":
			count += s.Value
		}
	}
	if !found {
		return stats.HistSnapshot{}, false
	}
	bounds := make([]float64, 0, len(byLE))
	for b := range byLE {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	snap := stats.HistSnapshot{
		Bounds: bounds,
		Counts: make([]uint64, len(bounds)),
		Sum:    sum,
		Count:  uint64(count),
	}
	for i, b := range bounds {
		snap.Counts[i] = uint64(byLE[b])
	}
	return snap, true
}
