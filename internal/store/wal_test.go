package store

import (
	"os"
	"path/filepath"
	"testing"
)

// replayed reopens the WAL at path and returns every intact payload.
func replayed(t *testing.T, path string, m *Metrics) [][]byte {
	t.Helper()
	var got [][]byte
	w, err := openWAL(path, nil, m, func(p []byte) {
		got = append(got, append([]byte(nil), p...))
	})
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	t.Cleanup(func() { w.close() })
	return got
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path, nil, newMetrics(), func([]byte) { t.Fatal("fresh wal replayed a record") })
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", `{"t":"submitted","key":"k"}`, ""}
	for _, p := range want {
		if err := w.append([]byte(p)); err != nil {
			t.Fatalf("append(%q): %v", p, err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	m := newMetrics()
	got := replayed(t, path, m)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, p := range got {
		if string(p) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, p, want[i])
		}
	}
	if n := m.TornTailTruncations.Load(); n != 0 {
		t.Fatalf("clean log reported %d torn-tail truncations", n)
	}
	if n := m.RecordsReplayed.Load(); n != uint64(len(want)) {
		t.Fatalf("RecordsReplayed = %d, want %d", n, len(want))
	}
}

// A crash mid-append leaves a partial frame; the next open must replay
// everything before it, truncate the tail, quantify the damage, and accept
// new appends at the clean boundary.
func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path, nil, newMetrics(), func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"one", "two"} {
		if err := w.append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	w.close()

	// Tear the tail: a torn header plus garbage, as if the process died
	// mid-write.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	intactSize, _ := os.Stat(path)

	m := newMetrics()
	got := replayed(t, path, m)
	if len(got) != 2 || string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("replay after torn tail = %q, want [one two]", got)
	}
	if n := m.TornTailTruncations.Load(); n != 1 {
		t.Fatalf("TornTailTruncations = %d, want 1", n)
	}
	if n := m.TornTailBytes.Load(); n != uint64(len(torn)) {
		t.Fatalf("TornTailBytes = %d, want %d", n, len(torn))
	}
	if st, err := os.Stat(path); err != nil || st.Size() != intactSize.Size()-int64(len(torn)) {
		t.Fatalf("file not truncated back to last good record: %d bytes", st.Size())
	}
}

// A bit flip in the last record's payload fails its CRC: replay keeps the
// prefix, drops the flipped record, and truncates.
func TestWALBitFlippedTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path, nil, newMetrics(), func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"keep-me", "flip-me"} {
		if err := w.append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	w.close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0x04 // inside "flip-me"'s payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	m := newMetrics()
	got := replayed(t, path, m)
	if len(got) != 1 || string(got[0]) != "keep-me" {
		t.Fatalf("replay after bit flip = %q, want [keep-me]", got)
	}
	if n := m.TornTailTruncations.Load(); n != 1 {
		t.Fatalf("TornTailTruncations = %d, want 1", n)
	}
}

// After a torn-tail recovery the log must keep working: new appends land at
// the truncation point and survive the next replay.
func TestWALAppendAfterRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path, nil, newMetrics(), func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	w.append([]byte("before"))
	w.close()

	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0xff, 0xff}) // torn header
	f.Close()

	w2, err := openWAL(path, nil, newMetrics(), func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	w2.close()

	got := replayed(t, path, newMetrics())
	if len(got) != 2 || string(got[0]) != "before" || string(got[1]) != "after" {
		t.Fatalf("replay = %q, want [before after]", got)
	}
}

// An implausibly large length field ends replay the same way a torn header
// does — without attempting the allocation.
func TestWALImplausibleLengthEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), walName)
	w, err := openWAL(path, nil, newMetrics(), func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	w.append([]byte("good"))
	w.close()

	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // length = ~2 GiB
	f.Close()

	got := replayed(t, path, newMetrics())
	if len(got) != 1 || string(got[0]) != "good" {
		t.Fatalf("replay = %q, want [good]", got)
	}
}
