package store

import (
	"errors"
	"fmt"
	"io"
	"os"

	"rendelim/internal/crc"
	"rendelim/internal/fault"
	"rendelim/internal/wire"
)

// WAL framing: every record is
//
//	u32 payload length | u32 CRC32(payload) | payload bytes
//
// (little-endian, lengths capped at walMaxRecord). Records are appended with
// write+fsync, so everything before the last fsync survives kill -9. A torn
// tail — a partial length/CRC header, a short payload, or a CRC mismatch —
// marks the end of the valid log: replay stops there and the file is
// truncated back to the last good record, because a crash mid-append is an
// expected event, not corruption worth refusing to boot over. Damage
// *before* the tail (a CRC mismatch followed by more valid records) would
// mean real bit rot; it is still handled tail-first because record framing
// cannot be trusted past the first bad frame.
const (
	walName      = "wal.log"
	walHeaderLen = 8
	// walMaxRecord bounds one record's payload. Job specs reference trace
	// uploads by blob, so records stay small; 1 MiB is generous headroom.
	walMaxRecord = 1 << 20
)

// wal is the append side of the log. Replay happens once in openWAL; after
// that the file is append-only until Close.
type wal struct {
	f     *os.File
	fault *fault.Plan
	m     *Metrics
}

// openWAL opens (creating if needed) dir's WAL, replays every intact
// record into cb, truncates a torn tail, and leaves the file positioned for
// appends.
func openWAL(path string, plan *fault.Plan, m *Metrics, cb func(payload []byte)) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	goodEnd, err := replayWAL(f, m, cb)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Truncate the torn tail (if any) so the next append starts at a clean
	// frame boundary; an append after a torn tail would otherwise be
	// unreachable forever.
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seek wal: %w", err)
	}
	if size > goodEnd {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
		}
		if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: seek wal: %w", err)
		}
		m.TornTailTruncations.Add(1)
		m.TornTailBytes.Add(uint64(size - goodEnd))
	}
	return &wal{f: f, fault: plan, m: m}, nil
}

// replayWAL scans the log from the start, invoking cb for every intact
// record, and returns the offset just past the last good one.
func replayWAL(f *os.File, m *Metrics, cb func([]byte)) (int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: seek wal: %w", err)
	}
	var off int64
	hdr := make([]byte, walHeaderLen)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			// Clean EOF ends the log; a partial header is a torn tail.
			return off, nil
		}
		r := wire.NewReader(hdr)
		length, sum := r.U32(), r.U32()
		if length > walMaxRecord {
			return off, nil // implausible length: treat as torn/corrupt tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return off, nil // short payload: torn tail
		}
		if crc.Checksum(payload) != sum {
			return off, nil // bad CRC: torn or bit-flipped tail
		}
		cb(payload)
		m.RecordsReplayed.Add(1)
		off += walHeaderLen + int64(length)
	}
}

// append frames, writes and fsyncs one record. An error leaves the file
// position where it was so the next append overwrites the partial frame —
// the same recovery a restart would perform.
func (w *wal) append(payload []byte) error {
	if len(payload) > walMaxRecord {
		return fmt.Errorf("store: wal record of %d bytes exceeds %d-byte cap", len(payload), walMaxRecord)
	}
	buf := make([]byte, 0, walHeaderLen+len(payload))
	buf = wire.AppendU32(buf, uint32(len(payload)))
	buf = wire.AppendU32(buf, crc.Checksum(payload))
	buf = append(buf, payload...)

	pos, err := w.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("store: wal position: %w", err)
	}
	rewind := func() {
		// Best effort: cut the partial frame so the log stays parseable
		// without relying on the next boot's torn-tail scan.
		_ = w.f.Truncate(pos)
		_, _ = w.f.Seek(pos, io.SeekStart)
	}
	if ferr := w.fault.Check(fault.SiteStoreWrite); ferr != nil {
		w.m.WriteErrors.Add(1)
		return fmt.Errorf("store: wal write: %w", ferr)
	}
	if _, err := w.f.Write(buf); err != nil {
		w.m.WriteErrors.Add(1)
		rewind()
		return fmt.Errorf("store: wal write: %w", err)
	}
	if ferr := w.fault.Check(fault.SiteStoreSync); ferr != nil {
		w.m.SyncErrors.Add(1)
		rewind()
		return fmt.Errorf("store: wal sync: %w", ferr)
	}
	if err := w.f.Sync(); err != nil {
		w.m.SyncErrors.Add(1)
		rewind()
		return fmt.Errorf("store: wal sync: %w", err)
	}
	w.m.RecordsAppended.Add(1)
	return nil
}

// close releases the file handle. Appends already fsynced per record, so
// close adds no durability.
func (w *wal) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	if err != nil && !errors.Is(err, os.ErrClosed) {
		return fmt.Errorf("store: close wal: %w", err)
	}
	return nil
}
