package store

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics counts what the durability layer did — both the steady-state
// append path and, crucially, what recovery found on disk: how many records
// replayed, how much torn tail was cut, how many snapshots had to be
// quarantined, and how many jobs/results/checkpoints came back. Exposed on
// /metrics as resvc_store_* so a restart's damage report is observable, not
// just logged.
type Metrics struct {
	// WAL append path.
	RecordsAppended  atomic.Uint64 // lifecycle records durably appended
	WriteErrors      atomic.Uint64 // failed file writes (WAL + snapshots), injected faults included
	SyncErrors       atomic.Uint64 // failed fsyncs (file + directory)
	RenameErrors     atomic.Uint64 // failed atomic snapshot publishes
	SnapshotsWritten atomic.Uint64

	// Recovery path.
	RecordsReplayed      atomic.Uint64 // intact WAL records replayed at open
	RecordsUnparseable   atomic.Uint64 // CRC-valid records whose JSON did not parse
	TornTailTruncations  atomic.Uint64 // opens that found and cut a torn WAL tail
	TornTailBytes        atomic.Uint64 // bytes discarded by torn-tail truncation
	SnapshotsQuarantined atomic.Uint64 // corrupt snapshot files renamed aside
	ResultsRecovered     atomic.Uint64 // completed results reloaded into the cache
	CheckpointsRecovered atomic.Uint64 // frame-boundary checkpoints reloaded intact
	JobsRecovered        atomic.Uint64 // interrupted jobs handed back for resubmission

	// Post-recovery outcomes, incremented by the jobs layer.
	JobsResumed atomic.Uint64 // recovered jobs that actually resumed from their checkpoint
}

func newMetrics() *Metrics { return &Metrics{} }

// WritePrometheus renders the store counters in the Prometheus text
// exposition format, matching the hand-rolled style of the jobs metrics.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("resvc_store_records_appended_total", "Job lifecycle records durably appended to the WAL.", m.RecordsAppended.Load())
	counter("resvc_store_records_replayed_total", "Intact WAL records replayed at startup.", m.RecordsReplayed.Load())
	counter("resvc_store_records_unparseable_total", "CRC-valid WAL records whose payload did not parse.", m.RecordsUnparseable.Load())
	counter("resvc_store_torn_tail_truncations_total", "Startups that found and truncated a torn WAL tail.", m.TornTailTruncations.Load())
	counter("resvc_store_torn_tail_bytes_total", "Bytes discarded by torn-tail truncation.", m.TornTailBytes.Load())
	counter("resvc_store_write_errors_total", "Failed durability-layer file writes (injected faults included).", m.WriteErrors.Load())
	counter("resvc_store_sync_errors_total", "Failed durability-layer fsyncs (injected faults included).", m.SyncErrors.Load())
	counter("resvc_store_rename_errors_total", "Failed atomic snapshot publishes (injected faults included).", m.RenameErrors.Load())
	counter("resvc_store_snapshots_written_total", "Snapshot files atomically published.", m.SnapshotsWritten.Load())
	counter("resvc_store_snapshots_quarantined_total", "Corrupt snapshot files quarantined during recovery.", m.SnapshotsQuarantined.Load())
	counter("resvc_store_results_recovered_total", "Completed results reloaded into the cache at startup.", m.ResultsRecovered.Load())
	counter("resvc_store_checkpoints_recovered_total", "Frame-boundary checkpoints reloaded intact at startup.", m.CheckpointsRecovered.Load())
	counter("resvc_store_jobs_recovered_total", "Interrupted jobs handed back for resubmission at startup.", m.JobsRecovered.Load())
	counter("resvc_store_jobs_resumed_total", "Recovered jobs that resumed from their persisted checkpoint.", m.JobsResumed.Load())
}
