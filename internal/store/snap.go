package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rendelim/internal/crc"
	"rendelim/internal/fault"
	"rendelim/internal/wire"
)

// Snapshot files (completed results, frame-boundary checkpoints, trace
// upload blobs) are published atomically: the body is written to a temp file
// in the same directory, fsynced, renamed over the final name, and the
// directory fsynced — so a reader (including a recovering process) only
// ever sees absent or complete files, never partial ones. Each file is
// self-checking:
//
//	"RESN" | u16 version | u32 CRC32(body) | body
//
// A snapshot whose magic, version or CRC does not hold is quarantined on
// read — renamed to <name>.quarantined and skipped — rather than aborting
// recovery: one rotten file must not take down everything else on the disk.
const (
	snapMagic   = "RESN"
	snapVersion = uint16(1)
	snapHdrLen  = 4 + 2 + 4

	// QuarantineSuffix marks snapshot files that failed integrity checks;
	// they are kept (renamed, not deleted) for postmortems and CI
	// artifacts.
	QuarantineSuffix = ".quarantined"
)

// writeSnapshot atomically publishes body (wrapped in the self-checking
// header) at path.
func (s *Store) writeSnapshot(path string, body []byte) error {
	hdr := make([]byte, 0, snapHdrLen)
	hdr = append(hdr, snapMagic...)
	hdr = wire.AppendU16(hdr, snapVersion)
	hdr = wire.AppendU32(hdr, crc.Checksum(body))

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed

	fail := func(stage string, err error) error {
		tmp.Close()
		return fmt.Errorf("store: snapshot %s: %w", stage, err)
	}
	if ferr := s.fault.Check(fault.SiteStoreWrite); ferr != nil {
		s.metrics.WriteErrors.Add(1)
		return fail("write", ferr)
	}
	if _, err := tmp.Write(hdr); err != nil {
		s.metrics.WriteErrors.Add(1)
		return fail("write", err)
	}
	if _, err := tmp.Write(body); err != nil {
		s.metrics.WriteErrors.Add(1)
		return fail("write", err)
	}
	if ferr := s.fault.Check(fault.SiteStoreSync); ferr != nil {
		s.metrics.SyncErrors.Add(1)
		return fail("sync", ferr)
	}
	if err := tmp.Sync(); err != nil {
		s.metrics.SyncErrors.Add(1)
		return fail("sync", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if ferr := s.fault.Check(fault.SiteStoreRename); ferr != nil {
		s.metrics.RenameErrors.Add(1)
		return fmt.Errorf("store: snapshot rename: %w", ferr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		s.metrics.RenameErrors.Add(1)
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	// Make the rename itself durable: fsync the containing directory.
	if err := syncDir(filepath.Dir(path)); err != nil {
		s.metrics.SyncErrors.Add(1)
		return err
	}
	s.metrics.SnapshotsWritten.Add(1)
	return nil
}

// readSnapshot loads and verifies the snapshot at path. A missing file
// returns (nil, os.ErrNotExist-wrapping error); a damaged one is quarantined
// and reported as an error.
func (s *Store) readSnapshot(path string) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	body, err := parseSnapshot(raw)
	if err != nil {
		s.quarantine(path, err)
		return nil, err
	}
	return body, nil
}

// parseSnapshot validates the self-checking wrapper and returns the body.
func parseSnapshot(raw []byte) ([]byte, error) {
	if len(raw) < snapHdrLen {
		return nil, fmt.Errorf("store: snapshot too short (%d bytes)", len(raw))
	}
	if string(raw[:4]) != snapMagic {
		return nil, fmt.Errorf("store: snapshot bad magic %q", raw[:4])
	}
	r := wire.NewReader(raw[4:snapHdrLen])
	if v := r.U16(); v != snapVersion {
		return nil, fmt.Errorf("store: snapshot unknown version %d", v)
	}
	sum := r.U32()
	body := raw[snapHdrLen:]
	if crc.Checksum(body) != sum {
		return nil, fmt.Errorf("store: snapshot CRC mismatch (computed %08x, stored %08x)", crc.Checksum(body), sum)
	}
	return body, nil
}

// quarantine renames a damaged snapshot aside so recovery can proceed and
// the evidence survives for inspection.
func (s *Store) quarantine(path string, cause error) {
	q := path + QuarantineSuffix
	//lint:ignore fsyncorder quarantine publishes no new bytes — it moves an already-damaged file aside, and losing the move on power loss just re-quarantines on the next boot
	if err := os.Rename(path, q); err != nil {
		s.log.Error("store: quarantine rename failed", "path", path, "err", err)
		return
	}
	s.metrics.SnapshotsQuarantined.Add(1)
	s.log.Warn("store: quarantined corrupt snapshot", "path", path, "quarantined_as", q, "cause", cause)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// isQuarantined reports whether a directory entry is a quarantined (or
// temp) file that listings must skip.
func isQuarantined(name string) bool {
	return strings.HasSuffix(name, QuarantineSuffix) || strings.Contains(name, ".tmp-")
}
