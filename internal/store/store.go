// Package store is the durability layer under the resvc job service: a
// CRC-protected, length-prefixed write-ahead log of job lifecycle records
// plus an on-disk snapshot store for completed results, frame-boundary
// simulator checkpoints, and uploaded trace blobs — all written with
// temp-file + fsync + atomic-rename discipline.
//
// The point is that Rendering Elimination's memoization survives kill -9:
// on startup the WAL is replayed (truncating a torn tail at the first bad
// CRC instead of refusing to boot, and quarantining corrupt snapshot files
// instead of aborting), completed results re-populate the jobs result cache
// so cross-restart submissions are eliminated as cache hits, and jobs that
// were mid-flight when the process died are handed back with their last
// persisted checkpoint so they resume from that frame boundary rather than
// frame 0.
//
// Directory layout under the data dir:
//
//	wal.log                  job lifecycle records (appended, fsynced)
//	results/<key>.snap       completed gpusim.Result (JSON body)
//	checkpoints/<key>.snap   spec + per-frame stats (JSON) + encoded checkpoint
//	traces/<crc32>.snap      content-addressed uploaded trace binaries
//
// Keys are jobs.Key strings ("%08x-%08x"), which are filesystem-safe by
// construction. The store never imports internal/jobs (jobs imports store);
// specs cross the boundary as the serializable JobSpec subset — jobs built
// from in-process closures (custom Build/Mutate funcs) are not durable and
// are simply never recorded.
package store

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"rendelim/internal/crc"
	"rendelim/internal/fault"
	"rendelim/internal/gpusim"
	"rendelim/internal/wire"
)

// Record types, in lifecycle order.
const (
	RecSubmitted    = "submitted"
	RecStarted      = "started"
	RecCheckpointed = "checkpointed"
	RecCompleted    = "completed"
	RecFailed       = "failed"
)

// Record is one WAL entry (JSON payload inside the CRC'd frame).
type Record struct {
	Type  string   `json:"t"`
	Key   string   `json:"key"`
	Spec  *JobSpec `json:"spec,omitempty"`  // on submitted
	Frame int      `json:"frame,omitempty"` // on checkpointed
	Err   string   `json:"err,omitempty"`   // on failed
}

// JobSpec is the serializable identity of a job — enough to rebuild and
// re-run it in a fresh process. Trace uploads are referenced by the CRC32 of
// their bytes (the content address of the blob in traces/), never inlined.
type JobSpec struct {
	Alias    string `json:"alias,omitempty"`
	Width    int    `json:"width,omitempty"`
	Height   int    `json:"height,omitempty"`
	Frames   int    `json:"frames,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	TraceCRC uint32 `json:"trace_crc,omitempty"`
	Tech     string `json:"tech"`
	Tag      string `json:"tag,omitempty"`
}

// PendingJob is an interrupted job recovered from the WAL: it was submitted
// (and possibly started and checkpointed) but neither completed nor failed
// before the process died.
type PendingJob struct {
	Key  string
	Spec JobSpec
	// Frame is the last persisted frame-boundary checkpoint (0 = resume
	// from scratch); Frames carries the per-frame stats completed before
	// it and Checkpoint the encoded gpusim checkpoint blob.
	Frame      int
	Frames     []gpusim.Stats
	Checkpoint []byte
}

// Recovery is everything Open reconstructed from disk.
type Recovery struct {
	// Results maps job keys to their recovered completed results, for
	// re-populating the jobs LRU cache.
	Results map[string]gpusim.Result
	// ResultOrder lists Results' keys oldest-completion-first (WAL order),
	// so cache re-population preserves LRU recency.
	ResultOrder []string
	// Pending lists interrupted jobs to resubmit, in WAL submission order.
	Pending []PendingJob
}

// Options configures Open.
type Options struct {
	// Fault, when non-nil, arms the store.write / store.sync /
	// store.rename injection sites. Nil costs nothing.
	Fault *fault.Plan
	// Logger receives recovery and quarantine events; default slog.Default.
	Logger *slog.Logger
}

// Store is the durability layer. All methods are safe for concurrent use.
type Store struct {
	dir     string
	fault   *fault.Plan
	log     *slog.Logger
	metrics *Metrics

	mu  sync.Mutex // serializes WAL appends and close
	wal *wal

	recovered Recovery
}

// Open opens (creating if needed) the data directory, replays the WAL,
// loads and verifies result/checkpoint snapshots, and returns the store
// ready for appends. Damage is absorbed, quantified in Metrics, and logged —
// a torn WAL tail is truncated, corrupt snapshots are quarantined, and a
// completed job whose result snapshot is unreadable is downgraded to a
// pending job (re-simulated) when its spec survives.
func Open(dir string, opts Options) (*Store, error) {
	log := opts.Logger
	if log == nil {
		log = slog.Default()
	}
	for _, d := range []string{dir, filepath.Join(dir, "results"), filepath.Join(dir, "checkpoints"), filepath.Join(dir, "traces")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: mkdir %s: %w", d, err)
		}
	}
	s := &Store{dir: dir, fault: opts.Fault, log: log, metrics: newMetrics()}

	// Replay: fold lifecycle records into a per-key state machine. Replay
	// order is authoritative — the last record for a key wins.
	type keyState struct {
		last    string
		spec    *JobSpec
		frame   int
		seenAt  int // record index of last transition, for stable ordering
		doneAt  int
		pending bool
	}
	states := make(map[string]*keyState)
	idx := 0
	w, err := openWAL(filepath.Join(dir, walName), opts.Fault, s.metrics, func(payload []byte) {
		idx++
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil || rec.Key == "" {
			// A CRC-valid but semantically broken record would take a
			// serializer bug; count it and move on.
			s.metrics.RecordsUnparseable.Add(1)
			return
		}
		st := states[rec.Key]
		if st == nil {
			st = &keyState{}
			states[rec.Key] = st
		}
		st.last = rec.Type
		st.seenAt = idx
		switch rec.Type {
		case RecSubmitted:
			st.spec = rec.Spec
			st.pending = true
			st.frame = 0
		case RecStarted:
			st.pending = true
		case RecCheckpointed:
			st.pending = true
			st.frame = rec.Frame
		case RecCompleted:
			st.pending = false
			st.doneAt = idx
		case RecFailed:
			st.pending = false
			st.doneAt = 0
		}
	})
	if err != nil {
		return nil, err
	}
	s.wal = w

	// Load completed results (oldest first, preserving LRU recency) and
	// assemble the pending set.
	s.recovered.Results = make(map[string]gpusim.Result)
	type done struct {
		key string
		at  int
	}
	var dones []done
	var pendings []*keyState
	pendingKey := make(map[*keyState]string)
	for key, st := range states {
		switch {
		case st.last == RecCompleted:
			dones = append(dones, done{key, st.doneAt})
		case st.pending:
			pendings = append(pendings, st)
			pendingKey[st] = key
		}
	}
	sort.Slice(dones, func(i, j int) bool { return dones[i].at < dones[j].at })
	sort.Slice(pendings, func(i, j int) bool { return pendings[i].seenAt < pendings[j].seenAt })

	for _, d := range dones {
		res, err := s.loadResult(d.key)
		if err != nil {
			st := states[d.key]
			if st.spec != nil {
				// The WAL says done but the proof is gone: fall back to
				// re-running the job rather than silently forgetting it.
				s.log.Warn("store: completed result unreadable; will re-run", "key", d.key, "err", err)
				pendings = append(pendings, st)
				pendingKey[st] = d.key
				st.frame = 0
			} else {
				s.log.Warn("store: completed result unreadable and spec unknown; dropped", "key", d.key, "err", err)
			}
			continue
		}
		s.recovered.Results[d.key] = res
		s.recovered.ResultOrder = append(s.recovered.ResultOrder, d.key)
		s.metrics.ResultsRecovered.Add(1)
	}

	for _, st := range pendings {
		key := pendingKey[st]
		if st.spec == nil {
			s.log.Warn("store: interrupted job has no recorded spec; dropped", "key", key)
			continue
		}
		pj := PendingJob{Key: key, Spec: *st.spec}
		if st.frame > 0 {
			frames, blob, err := s.loadCheckpoint(key)
			if err != nil {
				s.log.Warn("store: checkpoint unreadable; resuming from frame 0", "key", key, "err", err)
			} else {
				pj.Frame = st.frame
				pj.Frames = frames
				pj.Checkpoint = blob
				s.metrics.CheckpointsRecovered.Add(1)
			}
		}
		s.recovered.Pending = append(s.recovered.Pending, pj)
		s.metrics.JobsRecovered.Add(1)
	}
	return s, nil
}

// Dir returns the data directory the store was opened on.
func (s *Store) Dir() string { return s.dir }

// Metrics exposes the store counters.
func (s *Store) Metrics() *Metrics { return s.metrics }

// Recovered returns what Open reconstructed. The caller owns the value;
// the store never mutates it after Open.
func (s *Store) Recovered() Recovery { return s.recovered }

// Close releases the WAL handle. Every append was already fsynced.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.wal.close()
	s.wal = nil
	return err
}

// appendRecord marshals and appends one WAL record.
func (s *Store) appendRecord(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal record: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("store: closed")
	}
	return s.wal.append(payload)
}

// RecordSubmitted logs that key's leader execution was accepted, carrying
// the serializable spec recovery needs to re-run it.
func (s *Store) RecordSubmitted(key string, spec JobSpec) error {
	return s.appendRecord(Record{Type: RecSubmitted, Key: key, Spec: &spec})
}

// RecordStarted logs that a worker picked key up.
func (s *Store) RecordStarted(key string) error {
	return s.appendRecord(Record{Type: RecStarted, Key: key})
}

// RecordFailed logs key's terminal failure, closing its recovery window.
func (s *Store) RecordFailed(key string, cause string) error {
	return s.appendRecord(Record{Type: RecFailed, Key: key, Err: cause})
}

// SaveResult atomically persists a completed result, then logs the
// completion — in that order, so a crash between the two re-runs the job
// instead of trusting a completion record with no result behind it. The
// job's checkpoint snapshot, now superseded, is removed.
func (s *Store) SaveResult(key string, res gpusim.Result) error {
	body, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: marshal result: %w", err)
	}
	if err := s.writeSnapshot(s.resultPath(key), body); err != nil {
		return err
	}
	if err := s.appendRecord(Record{Type: RecCompleted, Key: key}); err != nil {
		return err
	}
	os.Remove(s.checkpointPath(key))
	return nil
}

// loadResult reads and verifies a completed result snapshot.
func (s *Store) loadResult(key string) (gpusim.Result, error) {
	body, err := s.readSnapshot(s.resultPath(key))
	if err != nil {
		return gpusim.Result{}, err
	}
	var res gpusim.Result
	if err := json.Unmarshal(body, &res); err != nil {
		s.quarantineResultJSON(key, err)
		return gpusim.Result{}, fmt.Errorf("store: result decode: %w", err)
	}
	return res, nil
}

// quarantineResultJSON handles the CRC-valid-but-unparseable case the same
// way as CRC damage: move the file aside.
func (s *Store) quarantineResultJSON(key string, cause error) {
	s.quarantine(s.resultPath(key), cause)
}

// checkpointBody frames the checkpoint snapshot body: JSON meta (per-frame
// stats) then the opaque encoded simulator checkpoint.
func checkpointBody(frames []gpusim.Stats, ckpt []byte) ([]byte, error) {
	meta, err := json.Marshal(frames)
	if err != nil {
		return nil, fmt.Errorf("store: marshal checkpoint meta: %w", err)
	}
	body := make([]byte, 0, 8+len(meta)+len(ckpt))
	body = wire.AppendBytes(body, meta)
	body = wire.AppendBytes(body, ckpt)
	return body, nil
}

// SaveCheckpoint atomically persists key's frame-boundary checkpoint (the
// encoded simulator state plus the stats of every frame completed before
// it), then logs the checkpointed record.
func (s *Store) SaveCheckpoint(key string, frame int, frames []gpusim.Stats, ckpt []byte) error {
	body, err := checkpointBody(frames, ckpt)
	if err != nil {
		return err
	}
	if err := s.writeSnapshot(s.checkpointPath(key), body); err != nil {
		return err
	}
	return s.appendRecord(Record{Type: RecCheckpointed, Key: key, Frame: frame})
}

// loadCheckpoint reads and verifies a checkpoint snapshot.
func (s *Store) loadCheckpoint(key string) ([]gpusim.Stats, []byte, error) {
	body, err := s.readSnapshot(s.checkpointPath(key))
	if err != nil {
		return nil, nil, err
	}
	r := wire.NewReader(body)
	meta := r.Bytes()
	ckpt := r.Bytes()
	if err := r.Err(); err != nil {
		s.quarantine(s.checkpointPath(key), err)
		return nil, nil, fmt.Errorf("store: checkpoint frame: %w", err)
	}
	var frames []gpusim.Stats
	if err := json.Unmarshal(meta, &frames); err != nil {
		s.quarantine(s.checkpointPath(key), err)
		return nil, nil, fmt.Errorf("store: checkpoint meta decode: %w", err)
	}
	return frames, ckpt, nil
}

// SaveTrace persists an uploaded trace binary content-addressed by its
// CRC32 (the same checksum that forms the job signature) and returns that
// address. Saving bytes already present is a cheap no-op.
func (s *Store) SaveTrace(bin []byte) (uint32, error) {
	sum := crc.Checksum(bin)
	path := s.tracePath(sum)
	if _, err := os.Stat(path); err == nil {
		return sum, nil
	}
	if err := s.writeSnapshot(path, bin); err != nil {
		return 0, err
	}
	return sum, nil
}

// LoadTrace fetches a trace blob by content address, verifying both the
// snapshot CRC and the content address itself.
func (s *Store) LoadTrace(sum uint32) ([]byte, error) {
	path := s.tracePath(sum)
	body, err := s.readSnapshot(path)
	if err != nil {
		return nil, err
	}
	if got := crc.Checksum(body); got != sum {
		err := fmt.Errorf("store: trace blob content CRC %08x != address %08x", got, sum)
		s.quarantine(path, err)
		return nil, err
	}
	return body, nil
}

// QuarantinedFiles lists every quarantined file under the data dir —
// evidence for postmortems and CI artifacts.
func (s *Store) QuarantinedFiles() []string {
	var out []string
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && isQuarantined(d.Name()) {
			out = append(out, path)
		}
		return nil
	})
	sort.Strings(out)
	return out
}

func (s *Store) resultPath(key string) string {
	return filepath.Join(s.dir, "results", sanitizeKey(key)+".snap")
}

func (s *Store) checkpointPath(key string) string {
	return filepath.Join(s.dir, "checkpoints", sanitizeKey(key)+".snap")
}

func (s *Store) tracePath(sum uint32) string {
	return filepath.Join(s.dir, "traces", fmt.Sprintf("%08x.snap", sum))
}

// sanitizeKey defends the path namespace: jobs.Key strings are hex-and-dash
// by construction, but the store cannot see that type, so anything else is
// flattened rather than trusted as a path component.
func sanitizeKey(key string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, key)
	if clean == "" || clean != key {
		// Collision-proof the flattened name with the original's checksum.
		clean = fmt.Sprintf("%s-%08x", clean, crc.Checksum([]byte(key)))
	}
	return clean
}
