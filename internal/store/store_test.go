package store

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"rendelim/internal/fault"
	"rendelim/internal/gpusim"
)

func quietOpts() Options {
	return Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

func testResult(n int) gpusim.Result {
	res := gpusim.Result{Technique: gpusim.RE, Name: fmt.Sprintf("res-%d", n), FBCRC: uint32(n) * 0x9e37}
	for i := 0; i < 3; i++ {
		res.Frames = append(res.Frames, gpusim.Stats{Frames: 1, TilesTotal: uint64(n*10 + i)})
		res.Total.Add(res.Frames[i])
	}
	return res
}

// The headline contract: a store reopened on the same directory hands back
// completed results verbatim, interrupted jobs with their checkpoints, and
// nothing for failed jobs.
func TestStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}

	specA := JobSpec{Alias: "ccs", Width: 64, Height: 48, Frames: 4, Seed: 1, Tech: "re"}
	resA := testResult(1)
	if err := s.RecordSubmitted("aaaa0001-bbbb0001", specA); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordStarted("aaaa0001-bbbb0001"); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveResult("aaaa0001-bbbb0001", resA); err != nil {
		t.Fatal(err)
	}

	specB := JobSpec{Alias: "mot", Width: 32, Height: 32, Frames: 8, Seed: 2, Tech: "memo"}
	ckptB := []byte("pretend-encoded-checkpoint")
	framesB := []gpusim.Stats{{Frames: 1, TilesTotal: 7}, {Frames: 1, TilesTotal: 9}}
	if err := s.RecordSubmitted("aaaa0002-bbbb0002", specB); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint("aaaa0002-bbbb0002", 2, framesB, ckptB); err != nil {
		t.Fatal(err)
	}

	if err := s.RecordSubmitted("aaaa0003-bbbb0003", JobSpec{Alias: "ccs", Tech: "re"}); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordFailed("aaaa0003-bbbb0003", "boom"); err != nil {
		t.Fatal(err)
	}

	specD := JobSpec{Alias: "fly", Width: 16, Height: 16, Frames: 2, Seed: 4, Tech: "te"}
	if err := s.RecordSubmitted("aaaa0004-bbbb0004", specD); err != nil {
		t.Fatal(err)
	}
	s.Close()

	r, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec := r.Recovered()

	if got, ok := rec.Results["aaaa0001-bbbb0001"]; !ok {
		t.Fatal("completed result not recovered")
	} else if !reflect.DeepEqual(got, resA) {
		t.Fatalf("recovered result differs:\n got %+v\nwant %+v", got, resA)
	}
	if len(rec.ResultOrder) != 1 || rec.ResultOrder[0] != "aaaa0001-bbbb0001" {
		t.Fatalf("ResultOrder = %v", rec.ResultOrder)
	}
	if len(rec.Pending) != 2 {
		t.Fatalf("recovered %d pending jobs, want 2 (checkpointed B + submitted-only D): %+v", len(rec.Pending), rec.Pending)
	}
	// WAL submission order: B before D.
	b, d := rec.Pending[0], rec.Pending[1]
	if b.Key != "aaaa0002-bbbb0002" || b.Spec != specB || b.Frame != 2 ||
		!reflect.DeepEqual(b.Frames, framesB) || string(b.Checkpoint) != string(ckptB) {
		t.Fatalf("pending B = %+v", b)
	}
	if d.Key != "aaaa0004-bbbb0004" || d.Spec != specD || d.Frame != 0 || d.Checkpoint != nil {
		t.Fatalf("pending D = %+v", d)
	}

	m := r.Metrics()
	if m.ResultsRecovered.Load() != 1 || m.CheckpointsRecovered.Load() != 1 || m.JobsRecovered.Load() != 2 {
		t.Fatalf("recovery metrics: results=%d ckpts=%d jobs=%d",
			m.ResultsRecovered.Load(), m.CheckpointsRecovered.Load(), m.JobsRecovered.Load())
	}
	if m.TornTailTruncations.Load() != 0 || m.SnapshotsQuarantined.Load() != 0 {
		t.Fatal("clean recovery reported damage")
	}
}

// SaveResult removes the superseded checkpoint, and a completed job beats
// its stale checkpoint record on replay.
func TestStoreCompletionSupersedesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	key := "cafe0001-cafe0002"
	s.RecordSubmitted(key, JobSpec{Alias: "ccs", Tech: "re"})
	s.SaveCheckpoint(key, 3, []gpusim.Stats{{Frames: 1}}, []byte("ckpt"))
	if err := s.SaveResult(key, testResult(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.checkpointPath(key)); !os.IsNotExist(err) {
		t.Fatal("checkpoint snapshot not removed after completion")
	}
	s.Close()

	r, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec := r.Recovered()
	if len(rec.Pending) != 0 {
		t.Fatalf("completed job recovered as pending: %+v", rec.Pending)
	}
	if _, ok := rec.Results[key]; !ok {
		t.Fatal("completed result missing")
	}
}

// A corrupt result snapshot is quarantined and — because the WAL still
// holds the spec — the job is downgraded to pending rather than forgotten.
func TestStoreQuarantineDowngradesToPending(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	key := "dead0001-beef0001"
	spec := JobSpec{Alias: "ccs", Width: 48, Height: 32, Frames: 3, Seed: 5, Tech: "re"}
	s.RecordSubmitted(key, spec)
	s.SaveResult(key, testResult(2))
	path := s.resultPath(key)
	s.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec := r.Recovered()
	if len(rec.Results) != 0 {
		t.Fatalf("corrupt result served anyway: %+v", rec.Results)
	}
	if len(rec.Pending) != 1 || rec.Pending[0].Key != key || rec.Pending[0].Spec != spec || rec.Pending[0].Frame != 0 {
		t.Fatalf("job not downgraded to pending: %+v", rec.Pending)
	}
	if n := r.Metrics().SnapshotsQuarantined.Load(); n != 1 {
		t.Fatalf("SnapshotsQuarantined = %d, want 1", n)
	}
	q := r.QuarantinedFiles()
	if len(q) != 1 || !strings.HasSuffix(q[0], QuarantineSuffix) {
		t.Fatalf("QuarantinedFiles = %v", q)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot left in place")
	}
}

// A corrupt checkpoint costs only the checkpoint: the job resumes from
// frame 0 instead of being dropped.
func TestStoreCorruptCheckpointFallsBackToFrameZero(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	key := "feed0001-f00d0001"
	spec := JobSpec{Alias: "mot", Width: 32, Height: 32, Frames: 6, Seed: 3, Tech: "memo"}
	s.RecordSubmitted(key, spec)
	s.SaveCheckpoint(key, 4, []gpusim.Stats{{Frames: 1}}, []byte("encoded"))
	path := s.checkpointPath(key)
	s.Close()

	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	r, err := Open(dir, quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rec := r.Recovered()
	if len(rec.Pending) != 1 {
		t.Fatalf("pending = %+v", rec.Pending)
	}
	p := rec.Pending[0]
	if p.Key != key || p.Spec != spec || p.Frame != 0 || p.Checkpoint != nil {
		t.Fatalf("corrupt checkpoint not degraded to frame 0: %+v", p)
	}
	if r.Metrics().CheckpointsRecovered.Load() != 0 || r.Metrics().SnapshotsQuarantined.Load() != 1 {
		t.Fatal("checkpoint damage not quantified")
	}
}

// Trace blobs are content-addressed; damage is detected both by the
// snapshot CRC and the address itself.
func TestStoreTraceBlobs(t *testing.T) {
	s, err := Open(t.TempDir(), quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bin := []byte("not really a trace but content is content")
	sum, err := s.SaveTrace(bin)
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent re-save.
	if sum2, err := s.SaveTrace(bin); err != nil || sum2 != sum {
		t.Fatalf("re-save: sum=%08x err=%v", sum2, err)
	}
	got, err := s.LoadTrace(sum)
	if err != nil || string(got) != string(bin) {
		t.Fatalf("LoadTrace = %q, %v", got, err)
	}
	if _, err := s.LoadTrace(sum ^ 1); err == nil {
		t.Fatal("LoadTrace of absent blob succeeded")
	}
}

// Seeded store.* faults make writes fail, but failed writes must never
// corrupt what a later open recovers: every successfully-saved result comes
// back verbatim, every failed save is absent, nothing in between.
func TestStoreFaultInjectionNeverCorruptsState(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			plan := fault.New(seed).
				With(fault.SiteStoreWrite, fault.Site{Prob: 0.25}).
				With(fault.SiteStoreSync, fault.Site{Prob: 0.25}).
				With(fault.SiteStoreRename, fault.Site{Prob: 0.25})
			opts := quietOpts()
			opts.Fault = plan
			s, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}

			want := make(map[string]gpusim.Result)
			const n = 40
			for i := 0; i < n; i++ {
				key := fmt.Sprintf("%08x-%08x", i, i*3)
				res := testResult(i)
				// Lifecycle appends may fail under injection; only a
				// successful SaveResult (snapshot + completed record)
				// promises recovery.
				s.RecordSubmitted(key, JobSpec{Alias: "ccs", Tech: "re", Seed: int64(i)})
				if i%3 == 0 {
					s.SaveCheckpoint(key, 1, []gpusim.Stats{{Frames: 1}}, []byte("ck"))
				}
				if err := s.SaveResult(key, res); err == nil {
					want[key] = res
				}
			}
			injected := plan.Fired(fault.SiteStoreWrite) + plan.Fired(fault.SiteStoreSync) + plan.Fired(fault.SiteStoreRename)
			if injected == 0 {
				t.Fatalf("seed %d injected no faults; test is vacuous", seed)
			}
			s.Close()

			r, err := Open(dir, quietOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			rec := r.Recovered()
			for key, res := range want {
				got, ok := rec.Results[key]
				if !ok {
					t.Fatalf("successfully saved result %s lost", key)
				}
				if !reflect.DeepEqual(got, res) {
					t.Fatalf("recovered result %s differs", key)
				}
			}
			for key := range rec.Results {
				if _, ok := want[key]; !ok {
					t.Fatalf("recovered result %s was never successfully saved", key)
				}
			}
			// Failed writes never leave damage for recovery to quarantine —
			// the atomic-publish discipline means a fault loses the write,
			// not the store.
			if n := r.Metrics().SnapshotsQuarantined.Load(); n != 0 {
				t.Fatalf("recovery quarantined %d snapshots after clean-failure faults", n)
			}
		})
	}
}

// Keys that are not filesystem-safe are flattened, collision-proofed, and
// still round-trip.
func TestStoreSanitizesHostileKeys(t *testing.T) {
	s, err := Open(t.TempDir(), quietOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, key := range []string{"../../etc/passwd", "a/b", "", "nul\x00byte"} {
		p := s.resultPath(key)
		if rel, err := filepath.Rel(filepath.Join(s.Dir(), "results"), p); err != nil || strings.Contains(rel, "..") || strings.ContainsRune(rel, os.PathSeparator) {
			t.Fatalf("hostile key %q escaped: %s", key, p)
		}
	}
	if s.resultPath("../../x") == s.resultPath("____x") {
		t.Fatal("sanitized keys collide")
	}
}
