package fb

import (
	"bytes"
	"image/png"
	"testing"
)

func TestToImageChannels(t *testing.T) {
	pix := []uint32{
		0x000000FF, // red (R in low byte)
		0x0000FF00, // green
		0x00FF0000, // blue
		0xFF102030,
	}
	img := ToImage(pix, 2, 2)
	c := img.NRGBAAt(0, 0)
	if c.R != 0xFF || c.G != 0 || c.B != 0 {
		t.Fatalf("red pixel = %+v", c)
	}
	c = img.NRGBAAt(1, 0)
	if c.G != 0xFF {
		t.Fatalf("green pixel = %+v", c)
	}
	c = img.NRGBAAt(0, 1)
	if c.B != 0xFF {
		t.Fatalf("blue pixel = %+v", c)
	}
	c = img.NRGBAAt(1, 1)
	if c.R != 0x30 || c.G != 0x20 || c.B != 0x10 || c.A != 0xFF {
		t.Fatalf("mixed pixel = %+v", c)
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	pix := make([]uint32, 8*4)
	for i := range pix {
		pix[i] = uint32(i * 7)
	}
	var buf bytes.Buffer
	if err := WritePNG(&buf, pix, 8, 4); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 8 || img.Bounds().Dy() != 4 {
		t.Fatalf("decoded bounds = %v", img.Bounds())
	}
}
