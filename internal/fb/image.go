package fb

import (
	"image"
	"image/color"
	"image/png"
	"io"
)

// ToImage converts a packed-RGBA8 pixel buffer (as returned by
// Simulator.FrameBufferSnapshot) into an image.Image.
func ToImage(pix []uint32, w, h int) *image.NRGBA {
	img := image.NewNRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p := pix[y*w+x]
			img.SetNRGBA(x, y, color.NRGBA{
				R: uint8(p),
				G: uint8(p >> 8),
				B: uint8(p >> 16),
				A: 0xFF, // frames are opaque once composed
			})
		}
	}
	return img
}

// WritePNG encodes a packed-RGBA8 frame as PNG.
func WritePNG(w io.Writer, pix []uint32, width, height int) error {
	return png.Encode(w, ToImage(pix, width, height))
}
