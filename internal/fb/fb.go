// Package fb provides the framebuffer machinery of the baseline TBR GPU
// (Section II): the small on-chip Color/Depth buffers a tile is rendered
// into, and the system-memory Frame Buffer with the Front/Back double
// buffering that Section IV-C makes explicit — signatures and tile-equality
// comparisons are against the frame *two* swaps back, because the GPU writes
// the Back Buffer while the display scans the Front Buffer.
package fb

import (
	"fmt"

	"rendelim/internal/geom"
)

// TileSize is the tile edge in pixels (Table I: 16x16).
const TileSize = 16

// TileBuffer is the on-chip color+depth store for one tile in flight.
type TileBuffer struct {
	Color [TileSize * TileSize]uint32
	Depth [TileSize * TileSize]float32
}

// Clear resets the tile to the clear color and maximum depth.
func (t *TileBuffer) Clear(color uint32) {
	for i := range t.Color {
		t.Color[i] = color
		t.Depth[i] = 1
	}
}

// Idx returns the linear index of in-tile pixel (x,y).
func Idx(x, y int) int { return y*TileSize + x }

// FrameBuffer is the double-buffered system-memory frame store. Addresses
// are simulated: Base locates the buffers in the GPU's address map so color
// traffic is attributable in the DRAM model.
type FrameBuffer struct {
	W, H  int
	Base  uint64
	bufs  [2][]uint32
	front int // index of the buffer being displayed
}

// NewFrameBuffer allocates both buffers, cleared to black.
func NewFrameBuffer(w, h int, base uint64) *FrameBuffer {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("fb: invalid size %dx%d", w, h))
	}
	return &FrameBuffer{
		W: w, H: h, Base: base,
		bufs: [2][]uint32{make([]uint32, w*h), make([]uint32, w*h)},
	}
}

// TilesX returns the number of tile columns (partial tiles included).
func (f *FrameBuffer) TilesX() int { return (f.W + TileSize - 1) / TileSize }

// TilesY returns the number of tile rows.
func (f *FrameBuffer) TilesY() int { return (f.H + TileSize - 1) / TileSize }

// NumTiles returns the tile count of one frame.
func (f *FrameBuffer) NumTiles() int { return f.TilesX() * f.TilesY() }

// TileRect returns the pixel rectangle of tile id, clipped to the screen.
func (f *FrameBuffer) TileRect(tile int) geom.Rect {
	tx := tile % f.TilesX()
	ty := tile / f.TilesX()
	r := geom.Rect{
		X0: tx * TileSize, Y0: ty * TileSize,
		X1: tx*TileSize + TileSize, Y1: ty*TileSize + TileSize,
	}
	return r.Intersect(geom.Rect{X0: 0, Y0: 0, X1: f.W, Y1: f.H})
}

// TileAt returns the tile id containing pixel (x,y).
func (f *FrameBuffer) TileAt(x, y int) int {
	return (y/TileSize)*f.TilesX() + x/TileSize
}

// Back returns the buffer the GPU is currently rendering into.
func (f *FrameBuffer) Back() []uint32 { return f.bufs[1-f.front] }

// Front returns the buffer being displayed.
func (f *FrameBuffer) Front() []uint32 { return f.bufs[f.front] }

// Swap exchanges front and back at end of frame.
func (f *FrameBuffer) Swap() { f.front = 1 - f.front }

// PixelAddr returns the simulated memory address of pixel (x,y) in the back
// buffer.
func (f *FrameBuffer) PixelAddr(x, y int) uint64 {
	off := uint64(y*f.W+x) * 4
	if f.front == 0 {
		off += uint64(f.W*f.H) * 4
	}
	return f.Base + off
}

// TileEqualsBack reports whether the tile's freshly rendered contents (in
// tb) are identical to what the back buffer already holds — i.e. to the
// frame two swaps ago. This is the ground-truth "equal colors" oracle of
// Figures 2 and 15a.
func (f *FrameBuffer) TileEqualsBack(tile int, tb *TileBuffer) bool {
	r := f.TileRect(tile)
	back := f.Back()
	for y := r.Y0; y < r.Y1; y++ {
		row := y * f.W
		ty := y - r.Y0
		for x := r.X0; x < r.X1; x++ {
			if back[row+x] != tb.Color[Idx(x-r.X0, ty)] {
				return false
			}
		}
	}
	return true
}

// FlushTile copies the tile buffer into the back buffer (the Tile Flush
// stage) and returns the number of bytes written.
func (f *FrameBuffer) FlushTile(tile int, tb *TileBuffer) int {
	r := f.TileRect(tile)
	back := f.Back()
	for y := r.Y0; y < r.Y1; y++ {
		row := y * f.W
		ty := y - r.Y0
		for x := r.X0; x < r.X1; x++ {
			back[row+x] = tb.Color[Idx(x-r.X0, ty)]
		}
	}
	return r.Area() * 4
}

// Snapshot captures both buffers and the display orientation, for
// frame-boundary checkpointing.
type Snapshot struct {
	Bufs  [2][]uint32
	Front int
}

// Snapshot deep-copies the framebuffer state.
func (f *FrameBuffer) Snapshot() Snapshot {
	var s Snapshot
	for i := range f.bufs {
		s.Bufs[i] = append([]uint32(nil), f.bufs[i]...)
	}
	s.Front = f.front
	return s
}

// Restore overwrites the framebuffer with a snapshot taken from an
// identically sized framebuffer; it panics on a size mismatch (checkpoint
// compatibility is the caller's contract).
func (f *FrameBuffer) Restore(s Snapshot) {
	for i := range f.bufs {
		if len(s.Bufs[i]) != len(f.bufs[i]) {
			panic(fmt.Sprintf("fb: restore size mismatch: %d != %d", len(s.Bufs[i]), len(f.bufs[i])))
		}
		copy(f.bufs[i], s.Bufs[i])
	}
	f.front = s.Front
}

// TileColors copies the back buffer contents of a tile into dst (row-major
// within the tile rect) and returns the pixel count; used by Transaction
// Elimination to sign rendered colors.
func (f *FrameBuffer) TileColors(tile int, dst []uint32) int {
	r := f.TileRect(tile)
	back := f.Back()
	n := 0
	for y := r.Y0; y < r.Y1; y++ {
		row := y * f.W
		for x := r.X0; x < r.X1; x++ {
			dst[n] = back[row+x]
			n++
		}
	}
	return n
}
