package fb

import (
	"testing"
	"testing/quick"
)

func TestTileBufferClear(t *testing.T) {
	var tb TileBuffer
	tb.Clear(0xFF00FF00)
	for i := range tb.Color {
		if tb.Color[i] != 0xFF00FF00 || tb.Depth[i] != 1 {
			t.Fatalf("clear failed at %d: %08x %v", i, tb.Color[i], tb.Depth[i])
		}
	}
}

func TestTileGeometry(t *testing.T) {
	f := NewFrameBuffer(100, 40, 0) // 7x3 tiles, right/bottom partial
	if f.TilesX() != 7 || f.TilesY() != 3 || f.NumTiles() != 21 {
		t.Fatalf("tiles = %dx%d", f.TilesX(), f.TilesY())
	}
	r := f.TileRect(0)
	if r.Area() != 256 {
		t.Fatalf("tile 0 rect = %+v", r)
	}
	// Rightmost column tile: 100 - 6*16 = 4 px wide.
	r = f.TileRect(6)
	if r.X1-r.X0 != 4 || r.Y1-r.Y0 != 16 {
		t.Fatalf("partial tile rect = %+v", r)
	}
	// Bottom-right tile: 4 x 8.
	r = f.TileRect(20)
	if r.X1-r.X0 != 4 || r.Y1-r.Y0 != 8 {
		t.Fatalf("corner tile rect = %+v", r)
	}
}

func TestTileAtInverseOfTileRect(t *testing.T) {
	f := NewFrameBuffer(80, 48, 0)
	for tile := 0; tile < f.NumTiles(); tile++ {
		r := f.TileRect(tile)
		if got := f.TileAt(r.X0, r.Y0); got != tile {
			t.Fatalf("TileAt(%d,%d) = %d, want %d", r.X0, r.Y0, got, tile)
		}
		if got := f.TileAt(r.X1-1, r.Y1-1); got != tile {
			t.Fatalf("TileAt corner = %d, want %d", got, tile)
		}
	}
}

func TestSwapAlternatesBuffers(t *testing.T) {
	f := NewFrameBuffer(16, 16, 0)
	back := f.Back()
	back[0] = 42
	f.Swap()
	if f.Front()[0] != 42 {
		t.Fatal("swap did not surface the back buffer")
	}
	if f.Back()[0] == 42 {
		t.Fatal("swap returned the same buffer")
	}
	f.Swap()
	if f.Back()[0] != 42 {
		t.Fatal("double swap should restore")
	}
}

func TestFlushAndEquality(t *testing.T) {
	f := NewFrameBuffer(32, 32, 0)
	var tb TileBuffer
	tb.Clear(0x11223344)

	if f.TileEqualsBack(0, &tb) {
		t.Fatal("fresh fb should differ from colored tile")
	}
	n := f.FlushTile(0, &tb)
	if n != 1024 {
		t.Fatalf("flush bytes = %d", n)
	}
	if !f.TileEqualsBack(0, &tb) {
		t.Fatal("tile should equal back after flush")
	}
	// A single pixel difference must be detected.
	tb.Color[Idx(7, 9)] ^= 1
	if f.TileEqualsBack(0, &tb) {
		t.Fatal("one-pixel difference missed")
	}
}

func TestFlushPartialTile(t *testing.T) {
	f := NewFrameBuffer(20, 20, 0) // right/bottom tiles are 4px
	var tb TileBuffer
	tb.Clear(0xAA)
	n := f.FlushTile(f.NumTiles()-1, &tb) // 4x4 corner tile
	if n != 4*4*4 {
		t.Fatalf("partial flush bytes = %d", n)
	}
	// The neighbouring tile's pixels must be untouched.
	if f.Back()[0] != 0 {
		t.Fatal("partial flush leaked outside its rect")
	}
}

func TestTileColorsRoundTrip(t *testing.T) {
	f := NewFrameBuffer(32, 16, 0)
	var tb TileBuffer
	for i := range tb.Color {
		tb.Color[i] = uint32(i) * 2654435761
	}
	f.FlushTile(1, &tb)
	buf := make([]uint32, TileSize*TileSize)
	n := f.TileColors(1, buf)
	if n != 256 {
		t.Fatalf("tile colors count = %d", n)
	}
	for i := 0; i < n; i++ {
		if buf[i] != tb.Color[i] {
			t.Fatalf("color %d mismatch", i)
		}
	}
}

func TestPixelAddrDistinctPerBuffer(t *testing.T) {
	f := NewFrameBuffer(16, 16, 0x8000)
	a := f.PixelAddr(3, 4)
	f.Swap()
	b := f.PixelAddr(3, 4)
	if a == b {
		t.Fatal("front/back pixel addresses must differ")
	}
	f.Swap()
	if f.PixelAddr(3, 4) != a {
		t.Fatal("address should return after double swap")
	}
}

func TestNewFrameBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrameBuffer(0, 10, 0)
}

// Property: flushing a tile then comparing is always equal, for any tile id
// and contents.
func TestQuickFlushThenEqual(t *testing.T) {
	f := NewFrameBuffer(72, 40, 0)
	fquick := func(tileSeed uint16, fill uint32) bool {
		tile := int(tileSeed) % f.NumTiles()
		var tb TileBuffer
		for i := range tb.Color {
			tb.Color[i] = fill + uint32(i)
		}
		f.FlushTile(tile, &tb)
		return f.TileEqualsBack(tile, &tb)
	}
	if err := quick.Check(fquick, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TileRect covers every pixel exactly once across all tiles.
func TestTilePartition(t *testing.T) {
	f := NewFrameBuffer(52, 36, 0)
	seen := make([]int, f.W*f.H)
	for tile := 0; tile < f.NumTiles(); tile++ {
		r := f.TileRect(tile)
		for y := r.Y0; y < r.Y1; y++ {
			for x := r.X0; x < r.X1; x++ {
				seen[y*f.W+x]++
			}
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("pixel %d covered %d times", i, n)
		}
	}
}
