package shader

// ReadMasks returns which input registers (bit i = v_i) and constant
// registers (bit i = c_i) the program actually reads. Fragment Memoization
// hashes "all shader inputs" [17], which means the inputs the program
// consumes — an unread register cannot affect the output, so it must not
// defeat memoization (while Rendering Elimination, which signs the raw
// command data without inspecting shader dataflow, conservatively treats it
// as input; that asymmetry produces the paper's "equal colors, different
// inputs" tiles).
func (p *Program) ReadMasks() (inputs uint16, consts uint32) {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		for s := 0; s < nsrc[in.Op]; s++ {
			src := in.Src[s]
			switch src.File {
			case FileInput:
				inputs |= 1 << src.Idx
			case FileConst:
				consts |= 1 << src.Idx
			}
		}
	}
	return inputs, consts
}
