package shader

// Standard programs shared by the workload generator and the examples. The
// uniform register conventions are fixed so that the tile-input signature
// (which covers the uniform data, not the program text) stays meaningful
// across drawcalls:
//
//	c0..c3   model-view-projection matrix rows
//	c4       tint / material color
//	c5       light direction (xyz) and ambient strength (w)
//	c6       misc animation parameters
//
// Vertex inputs: v0 = position (xyz,1), v1 = color or normal, v2 = uv.
// Vertex outputs: o0 = clip position, o1 = color/normal varying, o2 = uv.
// Fragment inputs: v1, v2 as interpolated varyings; output o0 = color.

// TransformVS returns the canonical vertex shader: clip position = MVP * v0
// with nVaryings extra attributes (v1..) passed through to o1.. .
func TransformVS(nVaryings int) *Program {
	p := &Program{Name: "transform-vs", Instrs: []Instr{
		{Op: OpDP4, Dst: RD(0).Masked(MaskX), Src: [3]Src{C(0), V(0)}},
		{Op: OpDP4, Dst: RD(0).Masked(MaskY), Src: [3]Src{C(1), V(0)}},
		{Op: OpDP4, Dst: RD(0).Masked(MaskZ), Src: [3]Src{C(2), V(0)}},
		{Op: OpDP4, Dst: RD(0).Masked(MaskW), Src: [3]Src{C(3), V(0)}},
		{Op: OpMov, Dst: OD(0), Src: [3]Src{R(0)}},
	}}
	for i := 0; i < nVaryings; i++ {
		p.Instrs = append(p.Instrs, Instr{Op: OpMov, Dst: OD(uint8(i + 1)), Src: [3]Src{V(uint8(i + 1))}})
	}
	return p
}

// FlatFS returns a fragment shader emitting the constant color in c4.
func FlatFS() *Program {
	return &Program{Name: "flat-fs", Instrs: []Instr{
		{Op: OpMov, Dst: OD(0), Src: [3]Src{C(4)}},
	}}
}

// VertexColorFS returns a fragment shader emitting the interpolated vertex
// color (varying v1) modulated by the tint c4.
func VertexColorFS() *Program {
	return &Program{Name: "vcolor-fs", Instrs: []Instr{
		{Op: OpMul, Dst: RD(0), Src: [3]Src{V(1), C(4)}},
		{Op: OpSat, Dst: OD(0), Src: [3]Src{R(0)}},
	}}
}

// TexturedFS returns the common sprite shader: sample texture unit 0 at the
// interpolated uv (varying v2) and modulate by tint c4.
func TexturedFS() *Program {
	return &Program{Name: "tex-fs", Instrs: []Instr{
		{Op: OpTex, Dst: RD(0), Src: [3]Src{V(2)}, TexUnit: 0},
		{Op: OpMul, Dst: RD(0), Src: [3]Src{R(0), C(4)}},
		{Op: OpSat, Dst: OD(0), Src: [3]Src{R(0)}},
	}}
}

// LambertTexFS returns the lit 3D shader: diffuse = max(N·L, ambient) with
// N in varying v1 and light in c5, applied to a texture sample and tint.
func LambertTexFS() *Program {
	return &Program{Name: "lambert-tex-fs", Instrs: []Instr{
		{Op: OpTex, Dst: RD(0), Src: [3]Src{V(2)}, TexUnit: 0},
		{Op: OpDP3, Dst: RD(1), Src: [3]Src{V(1), C(5)}},
		{Op: OpMax, Dst: RD(1), Src: [3]Src{R(1), C(5).Swizzled(Swz(3, 3, 3, 3))}},
		{Op: OpMul, Dst: RD(0), Src: [3]Src{R(0), R(1)}},
		{Op: OpMul, Dst: RD(0), Src: [3]Src{R(0), C(4)}},
		{Op: OpSat, Dst: OD(0), Src: [3]Src{R(0)}},
	}}
}

// StdPrograms returns every standard program, for registry-style lookup by
// the trace format and for validation sweeps in tests.
func StdPrograms() []*Program {
	return []*Program{
		TransformVS(0), TransformVS(1), TransformVS(2),
		FlatFS(), VertexColorFS(), TexturedFS(), LambertTexFS(),
	}
}
