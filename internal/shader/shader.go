// Package shader implements the programmable-stage model of the simulated
// GPU: a small vec4 register bytecode that both the Vertex Processors and
// the Fragment Processors execute (paper Section II, "programs called
// shaders ... shared among all vertices of a drawcall"). The interpreter
// renders real colors — the functional half of the simulator — and counts
// executed instructions and texture samples for the timing and energy
// models.
package shader

import (
	"fmt"
	"math"

	"rendelim/internal/geom"
)

// Register-file size limits. They mirror the small register budgets of a
// Mali-class shader core and bound Exec's fixed storage.
const (
	MaxInputs  = 8  // vertex attributes / interpolated varyings
	MaxTemps   = 8  // scratch registers
	MaxConsts  = 32 // uniform registers ("scene constants")
	MaxOutputs = 4  // o0 = position (VS) or color (FS), o1.. = varyings
	MaxTexUnit = 4
)

// Op enumerates the VM opcodes.
type Op uint8

// Supported operations. All execute in one cycle of a shader processor.
const (
	OpMov Op = iota // d = a
	OpAdd           // d = a + b
	OpSub           // d = a - b
	OpMul           // d = a * b
	OpMad           // d = a*b + c
	OpDP3           // d = splat(a.xyz · b.xyz)
	OpDP4           // d = splat(a · b)
	OpMin           // d = min(a, b)
	OpMax           // d = max(a, b)
	OpRcp           // d = splat(1 / a.x)
	OpRsq           // d = splat(1 / sqrt(|a.x|))
	OpFrc           // d = a - floor(a)
	OpFlr           // d = floor(a)
	OpSat           // d = clamp(a, 0, 1)
	OpCmp           // d_i = a_i >= 0 ? b_i : c_i
	OpTex           // d = sample(TexUnit, a.xy)
	opCount
)

var opNames = [opCount]string{
	"mov", "add", "sub", "mul", "mad", "dp3", "dp4", "min", "max",
	"rcp", "rsq", "frc", "flr", "sat", "cmp", "tex",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// nsrc[op] is the number of source operands the op reads.
var nsrc = [opCount]int{
	OpMov: 1, OpAdd: 2, OpSub: 2, OpMul: 2, OpMad: 3, OpDP3: 2, OpDP4: 2,
	OpMin: 2, OpMax: 2, OpRcp: 1, OpRsq: 1, OpFrc: 1, OpFlr: 1, OpSat: 1,
	OpCmp: 3, OpTex: 1,
}

// File selects a register bank.
type File uint8

// Register banks.
const (
	FileTemp   File = iota // r0..r7, read/write
	FileInput              // v0..v7, read-only
	FileConst              // c0..c31, read-only uniforms
	FileOutput             // o0..o3, write-only
)

// String implements fmt.Stringer.
func (f File) String() string {
	switch f {
	case FileTemp:
		return "r"
	case FileInput:
		return "v"
	case FileConst:
		return "c"
	case FileOutput:
		return "o"
	}
	return "?"
}

// Swizzle selects, per destination component, which source component to
// read. The identity swizzle is {0,1,2,3} (".xyzw").
type Swizzle [4]uint8

// SwzXYZW is the identity swizzle.
var SwzXYZW = Swizzle{0, 1, 2, 3}

// Swz builds a swizzle from component indices (0=x .. 3=w).
func Swz(x, y, z, w uint8) Swizzle { return Swizzle{x, y, z, w} }

// Src is a source operand: a register reference with swizzle and negation.
type Src struct {
	File File
	Idx  uint8
	Swz  Swizzle
	Neg  bool
}

// R, V, C construct plain temp/input/const sources with identity swizzle.
func R(i uint8) Src { return Src{File: FileTemp, Idx: i, Swz: SwzXYZW} }

// V returns input register i as a source.
func V(i uint8) Src { return Src{File: FileInput, Idx: i, Swz: SwzXYZW} }

// C returns constant register i as a source.
func C(i uint8) Src { return Src{File: FileConst, Idx: i, Swz: SwzXYZW} }

// Swizzled returns s with the given swizzle.
func (s Src) Swizzled(sw Swizzle) Src { s.Swz = sw; return s }

// Negated returns s with the sign flipped.
func (s Src) Negated() Src { s.Neg = !s.Neg; return s }

// Write-mask bits for Dst.Mask. A zero mask means "all lanes" so that the
// zero value of Dst writes the whole register.
const (
	MaskX = 1 << iota
	MaskY
	MaskZ
	MaskW
	MaskXYZW = MaskX | MaskY | MaskZ | MaskW
)

// Dst is a destination operand: a temp or output register with an optional
// per-component write mask (as in ARB/DX shader assembly).
type Dst struct {
	File File
	Idx  uint8
	Mask uint8
}

// RD and OD construct temp and output destinations.
func RD(i uint8) Dst { return Dst{File: FileTemp, Idx: i} }

// OD returns output register i as a destination.
func OD(i uint8) Dst { return Dst{File: FileOutput, Idx: i} }

// Masked returns d writing only the lanes in mask.
func (d Dst) Masked(mask uint8) Dst { d.Mask = mask; return d }

// Instr is one VM instruction.
type Instr struct {
	Op      Op
	Dst     Dst
	Src     [3]Src
	TexUnit uint8 // for OpTex
}

// Program is a validated sequence of instructions with a name for reports.
type Program struct {
	Name   string
	Instrs []Instr
}

// Len returns the instruction count (the per-invocation cycle cost on one
// shader processor).
func (p *Program) Len() int { return len(p.Instrs) }

// Validate checks every register reference against the bank limits.
func (p *Program) Validate() error {
	for i, in := range p.Instrs {
		if in.Op >= opCount {
			return fmt.Errorf("shader %q instr %d: bad opcode %d", p.Name, i, in.Op)
		}
		switch in.Dst.File {
		case FileTemp:
			if in.Dst.Idx >= MaxTemps {
				return fmt.Errorf("shader %q instr %d: temp dst %d out of range", p.Name, i, in.Dst.Idx)
			}
		case FileOutput:
			if in.Dst.Idx >= MaxOutputs {
				return fmt.Errorf("shader %q instr %d: output dst %d out of range", p.Name, i, in.Dst.Idx)
			}
		default:
			return fmt.Errorf("shader %q instr %d: dst file %v not writable", p.Name, i, in.Dst.File)
		}
		for s := 0; s < nsrc[in.Op]; s++ {
			src := in.Src[s]
			var limit uint8
			switch src.File {
			case FileTemp:
				limit = MaxTemps
			case FileInput:
				limit = MaxInputs
			case FileConst:
				limit = MaxConsts
			default:
				return fmt.Errorf("shader %q instr %d: src file %v not readable", p.Name, i, src.File)
			}
			if src.Idx >= limit {
				return fmt.Errorf("shader %q instr %d: src %v%d out of range", p.Name, i, src.File, src.Idx)
			}
			for _, c := range src.Swz {
				if c > 3 {
					return fmt.Errorf("shader %q instr %d: bad swizzle component %d", p.Name, i, c)
				}
			}
		}
		if in.Op == OpTex && in.TexUnit >= MaxTexUnit {
			return fmt.Errorf("shader %q instr %d: texture unit %d out of range", p.Name, i, in.TexUnit)
		}
	}
	return nil
}

// Sampler provides texture lookups to the VM. The GPU integrator wraps the
// texture store with cache-traffic recording behind this interface.
type Sampler interface {
	Sample(unit int, u, v float32) geom.Vec4
}

// Counts accumulates the dynamic activity of shader invocations.
type Counts struct {
	Instructions uint64
	TexSamples   uint64
	Invocations  uint64
}

// Add accumulates o into c.
func (c *Counts) Add(o Counts) {
	c.Instructions += o.Instructions
	c.TexSamples += o.TexSamples
	c.Invocations += o.Invocations
}

// Exec is a reusable execution context. Set In and Consts, call Run, read
// Out. Exec is not safe for concurrent use; allocate one per goroutine.
type Exec struct {
	In      [MaxInputs]geom.Vec4
	Out     [MaxOutputs]geom.Vec4
	Consts  []geom.Vec4
	Sampler Sampler
	Counts  Counts

	temps [MaxTemps]geom.Vec4
}

func (e *Exec) read(s Src) geom.Vec4 {
	var reg geom.Vec4
	switch s.File {
	case FileTemp:
		reg = e.temps[s.Idx]
	case FileInput:
		reg = e.In[s.Idx]
	case FileConst:
		if int(s.Idx) < len(e.Consts) {
			reg = e.Consts[s.Idx]
		}
	}
	out := geom.Vec4{
		X: reg.Comp(int(s.Swz[0])),
		Y: reg.Comp(int(s.Swz[1])),
		Z: reg.Comp(int(s.Swz[2])),
		W: reg.Comp(int(s.Swz[3])),
	}
	if s.Neg {
		out = out.Scale(-1)
	}
	return out
}

func (e *Exec) write(d Dst, v geom.Vec4) {
	var reg *geom.Vec4
	if d.File == FileOutput {
		reg = &e.Out[d.Idx]
	} else {
		reg = &e.temps[d.Idx]
	}
	mask := d.Mask
	if mask == 0 || mask == MaskXYZW {
		*reg = v
		return
	}
	if mask&MaskX != 0 {
		reg.X = v.X
	}
	if mask&MaskY != 0 {
		reg.Y = v.Y
	}
	if mask&MaskZ != 0 {
		reg.Z = v.Z
	}
	if mask&MaskW != 0 {
		reg.W = v.W
	}
}

func splat(v float32) geom.Vec4 { return geom.Vec4{X: v, Y: v, Z: v, W: v} }

// Run executes p against the current inputs/constants. The temporaries are
// zeroed first so invocations are independent and deterministic.
func (e *Exec) Run(p *Program) {
	e.temps = [MaxTemps]geom.Vec4{}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		a := e.read(in.Src[0])
		var b, c geom.Vec4
		if nsrc[in.Op] > 1 {
			b = e.read(in.Src[1])
		}
		if nsrc[in.Op] > 2 {
			c = e.read(in.Src[2])
		}
		var r geom.Vec4
		switch in.Op {
		case OpMov:
			r = a
		case OpAdd:
			r = a.Add(b)
		case OpSub:
			r = a.Sub(b)
		case OpMul:
			r = a.Mul(b)
		case OpMad:
			r = a.Mul(b).Add(c)
		case OpDP3:
			r = splat(a.Dot3(b))
		case OpDP4:
			r = splat(a.Dot(b))
		case OpMin:
			r = geom.Vec4{X: minf(a.X, b.X), Y: minf(a.Y, b.Y), Z: minf(a.Z, b.Z), W: minf(a.W, b.W)}
		case OpMax:
			r = geom.Vec4{X: maxf(a.X, b.X), Y: maxf(a.Y, b.Y), Z: maxf(a.Z, b.Z), W: maxf(a.W, b.W)}
		case OpRcp:
			r = splat(rcp(a.X))
		case OpRsq:
			r = splat(rsq(a.X))
		case OpFrc:
			r = geom.Vec4{X: frc(a.X), Y: frc(a.Y), Z: frc(a.Z), W: frc(a.W)}
		case OpFlr:
			r = geom.Vec4{X: flr(a.X), Y: flr(a.Y), Z: flr(a.Z), W: flr(a.W)}
		case OpSat:
			r = a.Clamp01()
		case OpCmp:
			r = geom.Vec4{X: cmp(a.X, b.X, c.X), Y: cmp(a.Y, b.Y, c.Y), Z: cmp(a.Z, b.Z, c.Z), W: cmp(a.W, b.W, c.W)}
		case OpTex:
			r = e.Sampler.Sample(int(in.TexUnit), a.X, a.Y)
			e.Counts.TexSamples++
		}
		e.write(in.Dst, r)
	}
	e.Counts.Instructions += uint64(len(p.Instrs))
	e.Counts.Invocations++
}

func minf(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func rcp(v float32) float32 {
	if v == 0 {
		return float32(math.Inf(1))
	}
	return 1 / v
}

func rsq(v float32) float32 {
	av := float64(v)
	if av < 0 {
		av = -av
	}
	if av == 0 {
		return float32(math.Inf(1))
	}
	return float32(1 / math.Sqrt(av))
}

func frc(v float32) float32 { return v - flr(v) }

func flr(v float32) float32 { return float32(math.Floor(float64(v))) }

func cmp(a, b, c float32) float32 {
	if a >= 0 {
		return b
	}
	return c
}
