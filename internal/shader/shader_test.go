package shader

import (
	"math"
	"testing"
	"testing/quick"

	"rendelim/internal/geom"
)

type fixedSampler struct{ v geom.Vec4 }

func (s fixedSampler) Sample(unit int, u, v float32) geom.Vec4 {
	return s.v.Add(geom.V4(float32(unit), u, v, 0))
}

func run(t *testing.T, p *Program, setup func(*Exec)) *Exec {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	e := &Exec{Sampler: fixedSampler{geom.V4(0.5, 0.5, 0.5, 1)}}
	if setup != nil {
		setup(e)
	}
	e.Run(p)
	return e
}

func TestOpSemantics(t *testing.T) {
	a := geom.V4(1, -2, 3, 0.5)
	b := geom.V4(2, 2, -1, 4)
	c := geom.V4(10, 20, 30, 40)
	cases := []struct {
		op   Op
		want geom.Vec4
	}{
		{OpMov, a},
		{OpAdd, a.Add(b)},
		{OpSub, a.Sub(b)},
		{OpMul, a.Mul(b)},
		{OpMad, a.Mul(b).Add(c)},
		{OpDP3, splat(a.Dot3(b))},
		{OpDP4, splat(a.Dot(b))},
		{OpMin, geom.V4(1, -2, -1, 0.5)},
		{OpMax, geom.V4(2, 2, 3, 4)},
		{OpRcp, splat(1)},
		{OpRsq, splat(1)},
		{OpFrc, geom.V4(0, 0, 0, 0.5)},
		{OpFlr, geom.V4(1, -2, 3, 0)},
		{OpSat, geom.V4(1, 0, 1, 0.5)},
		{OpCmp, geom.V4(2, 20, -1, 4)},
	}
	for _, tc := range cases {
		p := &Program{Name: "t", Instrs: []Instr{
			{Op: tc.op, Dst: OD(0), Src: [3]Src{V(0), V(1), V(2)}},
		}}
		e := run(t, p, func(e *Exec) { e.In[0], e.In[1], e.In[2] = a, b, c })
		if tc.op == OpRcp || tc.op == OpRsq {
			// a.X == 1 so both are exactly 1.
		}
		if e.Out[0] != tc.want {
			t.Errorf("%v: got %v, want %v", tc.op, e.Out[0], tc.want)
		}
	}
}

func TestOpTexCountsSamples(t *testing.T) {
	p := &Program{Name: "t", Instrs: []Instr{
		{Op: OpTex, Dst: OD(0), Src: [3]Src{V(0)}, TexUnit: 2},
	}}
	e := run(t, p, func(e *Exec) { e.In[0] = geom.V4(0.25, 0.75, 0, 0) })
	want := geom.V4(0.5+2, 0.5+0.25, 0.5+0.75, 1)
	if e.Out[0] != want {
		t.Fatalf("tex result %v, want %v", e.Out[0], want)
	}
	if e.Counts.TexSamples != 1 || e.Counts.Instructions != 1 || e.Counts.Invocations != 1 {
		t.Fatalf("counts = %+v", e.Counts)
	}
}

func TestSwizzleAndNegate(t *testing.T) {
	p := &Program{Name: "t", Instrs: []Instr{
		{Op: OpMov, Dst: OD(0), Src: [3]Src{V(0).Swizzled(Swz(3, 2, 1, 0)).Negated()}},
	}}
	e := run(t, p, func(e *Exec) { e.In[0] = geom.V4(1, 2, 3, 4) })
	if e.Out[0] != geom.V4(-4, -3, -2, -1) {
		t.Fatalf("swizzle+neg = %v", e.Out[0])
	}
}

func TestWriteMask(t *testing.T) {
	p := &Program{Name: "t", Instrs: []Instr{
		{Op: OpMov, Dst: RD(0), Src: [3]Src{V(0)}},
		{Op: OpMov, Dst: RD(0).Masked(MaskY | MaskW), Src: [3]Src{V(1)}},
		{Op: OpMov, Dst: OD(0), Src: [3]Src{R(0)}},
	}}
	e := run(t, p, func(e *Exec) {
		e.In[0] = geom.V4(1, 2, 3, 4)
		e.In[1] = geom.V4(9, 9, 9, 9)
	})
	if e.Out[0] != geom.V4(1, 9, 3, 9) {
		t.Fatalf("masked write = %v", e.Out[0])
	}
}

func TestRcpRsqSpecialValues(t *testing.T) {
	if !math.IsInf(float64(rcp(0)), 1) {
		t.Fatal("rcp(0) should be +Inf")
	}
	if !math.IsInf(float64(rsq(0)), 1) {
		t.Fatal("rsq(0) should be +Inf")
	}
	if got := rsq(-4); got != 0.5 {
		t.Fatalf("rsq(-4) = %v, want 0.5 (abs semantics)", got)
	}
}

func TestTempsZeroedBetweenRuns(t *testing.T) {
	p := &Program{Name: "t", Instrs: []Instr{
		{Op: OpAdd, Dst: RD(0), Src: [3]Src{R(0), V(0)}},
		{Op: OpMov, Dst: OD(0), Src: [3]Src{R(0)}},
	}}
	e := run(t, p, func(e *Exec) { e.In[0] = geom.V4(1, 1, 1, 1) })
	e.Run(p)
	if e.Out[0] != geom.V4(1, 1, 1, 1) {
		t.Fatalf("temps leaked across invocations: %v", e.Out[0])
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	bad := []*Program{
		{Name: "badop", Instrs: []Instr{{Op: opCount, Dst: OD(0)}}},
		{Name: "baddst", Instrs: []Instr{{Op: OpMov, Dst: Dst{File: FileConst}, Src: [3]Src{V(0)}}}},
		{Name: "dstrange", Instrs: []Instr{{Op: OpMov, Dst: RD(MaxTemps), Src: [3]Src{V(0)}}}},
		{Name: "outrange", Instrs: []Instr{{Op: OpMov, Dst: OD(MaxOutputs), Src: [3]Src{V(0)}}}},
		{Name: "srcfile", Instrs: []Instr{{Op: OpMov, Dst: OD(0), Src: [3]Src{{File: FileOutput, Swz: SwzXYZW}}}}},
		{Name: "srcrange", Instrs: []Instr{{Op: OpMov, Dst: OD(0), Src: [3]Src{V(MaxInputs)}}}},
		{Name: "swz", Instrs: []Instr{{Op: OpMov, Dst: OD(0), Src: [3]Src{V(0).Swizzled(Swz(0, 1, 2, 9))}}}},
		{Name: "texunit", Instrs: []Instr{{Op: OpTex, Dst: OD(0), Src: [3]Src{V(0)}, TexUnit: MaxTexUnit}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", p.Name)
		}
	}
}

func TestStdProgramsValidateAndCount(t *testing.T) {
	for _, p := range StdPrograms() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Len() == 0 {
			t.Errorf("%s: empty program", p.Name)
		}
	}
}

func TestTransformVSTransformsPosition(t *testing.T) {
	mvp := geom.Translate(geom.V3(10, 20, 30))
	p := TransformVS(2)
	e := run(t, p, func(e *Exec) {
		e.Consts = []geom.Vec4{mvp.Row(0), mvp.Row(1), mvp.Row(2), mvp.Row(3)}
		e.In[0] = geom.V4(1, 2, 3, 1)
		e.In[1] = geom.V4(0.1, 0.2, 0.3, 0.4)
		e.In[2] = geom.V4(0.5, 0.6, 0, 0)
	})
	if e.Out[0] != geom.V4(11, 22, 33, 1) {
		t.Fatalf("position = %v", e.Out[0])
	}
	if e.Out[1] != geom.V4(0.1, 0.2, 0.3, 0.4) || e.Out[2] != geom.V4(0.5, 0.6, 0, 0) {
		t.Fatalf("varyings = %v %v", e.Out[1], e.Out[2])
	}
}

func TestFlatFSAndTexturedFS(t *testing.T) {
	tint := geom.V4(0.5, 1, 0.25, 1)
	e := run(t, FlatFS(), func(e *Exec) {
		e.Consts = make([]geom.Vec4, 8)
		e.Consts[4] = tint
	})
	if e.Out[0] != tint {
		t.Fatalf("flat = %v", e.Out[0])
	}

	e = run(t, TexturedFS(), func(e *Exec) {
		e.Consts = make([]geom.Vec4, 8)
		e.Consts[4] = geom.V4(1, 1, 1, 1)
		e.In[2] = geom.V4(0.5, 0.5, 0, 0)
	})
	want := geom.V4(0.5, 1, 1, 1) // fixedSampler(unit 0, 0.5, 0.5) saturated
	if e.Out[0] != want {
		t.Fatalf("textured = %v, want %v", e.Out[0], want)
	}
	if e.Counts.TexSamples != 1 {
		t.Fatalf("tex samples = %d", e.Counts.TexSamples)
	}
}

func TestLambertDarkAndLit(t *testing.T) {
	consts := make([]geom.Vec4, 8)
	consts[4] = geom.V4(1, 1, 1, 1)
	consts[5] = geom.V4(0, 0, 1, 0.25) // light +z, ambient 0.25

	lit := run(t, LambertTexFS(), func(e *Exec) {
		e.Consts = consts
		e.In[1] = geom.V4(0, 0, 1, 0) // normal facing light
		e.In[2] = geom.V4(0, 0, 0, 0)
	})
	dark := run(t, LambertTexFS(), func(e *Exec) {
		e.Consts = consts
		e.In[1] = geom.V4(0, 0, -1, 0) // facing away -> ambient only
		e.In[2] = geom.V4(0, 0, 0, 0)
	})
	if lit.Out[0].X <= dark.Out[0].X {
		t.Fatalf("lit %v not brighter than dark %v", lit.Out[0], dark.Out[0])
	}
	if dark.Out[0].X == 0 {
		t.Fatal("ambient floor missing")
	}
}

// Property: the VM is a pure function of (program, inputs, consts).
func TestQuickDeterminism(t *testing.T) {
	p := LambertTexFS()
	f := func(in1, in2 [4]float32, tint [4]float32) bool {
		mk := func() geom.Vec4 {
			e := &Exec{Sampler: fixedSampler{geom.V4(0.5, 0.5, 0.5, 1)}}
			e.Consts = make([]geom.Vec4, 8)
			e.Consts[4] = geom.V4(tint[0], tint[1], tint[2], tint[3])
			e.Consts[5] = geom.V4(0.3, 0.3, 0.9, 0.2)
			e.In[1] = geom.V4(in1[0], in1[1], in1[2], in1[3])
			e.In[2] = geom.V4(in2[0], in2[1], in2[2], in2[3])
			e.Run(p)
			return e.Out[0]
		}
		a, b := mk(), mk()
		return a == b || (a != a) == (b != b) // NaN-tolerant equality
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpAndFileStrings(t *testing.T) {
	if OpMad.String() != "mad" || OpTex.String() != "tex" {
		t.Fatal("op names wrong")
	}
	if Op(200).String() == "" {
		t.Fatal("unknown op should still format")
	}
	if FileTemp.String() != "r" || FileConst.String() != "c" || File(9).String() != "?" {
		t.Fatal("file names wrong")
	}
}
