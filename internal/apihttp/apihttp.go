// Package apihttp is the single home of the resvc HTTP surface: the
// versioned route paths and the JSON wire types shared by the server, the
// cluster forwarding client, and the restat scraper. Before this package the
// three talked to each other through duplicated struct literals and bare
// path strings; now a field added to JobResponse, or a route moved, is one
// edit that every side of the wire sees.
//
// The API is versioned under /v1. The unversioned routes ("/jobs",
// "/healthz", "/metrics") remain as deprecated aliases — the server answers
// them identically but logs the first hit per route and stamps a
// Deprecation header, so operators can find stale clients before the
// aliases are ever removed.
package apihttp

import (
	"strings"

	"rendelim/internal/jobs"
)

// Versioned route paths. These are the canonical surface; new clients use
// only these.
const (
	PathJobs    = "/v1/jobs"
	PathHealthz = "/v1/healthz"
	PathMetrics = "/v1/metrics"
)

// Legacy unversioned aliases, kept for compatibility with pre-v1 clients.
//
// Deprecated: use the /v1 paths.
const (
	LegacyPathJobs    = "/jobs"
	LegacyPathHealthz = "/healthz"
	LegacyPathMetrics = "/metrics"
)

// JobPath renders the status URL for a job id under the versioned API.
func JobPath(id string) string { return PathJobs + "/" + id }

// JobID extracts the job id from a request path under either the versioned
// or the legacy jobs route; ok is false for any other path.
func JobID(path string) (id string, ok bool) {
	for _, prefix := range []string{PathJobs + "/", LegacyPathJobs + "/"} {
		if rest, found := strings.CutPrefix(path, prefix); found {
			return rest, true
		}
	}
	return "", false
}

// JobsPrefix returns the jobs collection path matching the version of the
// incoming request path, so Location fields send a client back through the
// same API generation it called in on.
func JobsPrefix(requestPath string) string {
	if strings.HasPrefix(requestPath, "/v1/") {
		return PathJobs
	}
	return LegacyPathJobs
}

// SubmitRequest is the JSON body of POST /v1/jobs for workload-spec jobs.
type SubmitRequest struct {
	Alias  string `json:"alias"`
	Tech   string `json:"tech"`             // base | re | te | memo; default re
	Width  int    `json:"width,omitempty"`  // default 480
	Height int    `json:"height,omitempty"` // default 272
	Frames int    `json:"frames,omitempty"` // default 50
	Seed   int64  `json:"seed,omitempty"`   // default 1
	Tag    string `json:"tag,omitempty"`
}

// JobResponse is the JSON shape of POST /v1/jobs and GET /v1/jobs/{id},
// and of every cluster-forwarded reply.
type JobResponse struct {
	ID       string              `json:"id"`
	Key      string              `json:"key"` // trace-signature/config-hash pair
	State    string              `json:"state"`
	Deduped  bool                `json:"deduped"` // eliminated by signature match
	Error    string              `json:"error,omitempty"`
	Result   *jobs.ResultSummary `json:"result,omitempty"`
	Detail   string              `json:"detail,omitempty"`
	Location string              `json:"location,omitempty"`
	Node     string              `json:"node,omitempty"`  // owning cluster node, when forwarded
	Trace    string              `json:"trace,omitempty"` // trace id of the request that produced this response
}

// HealthResponse is the JSON shape of GET /v1/healthz.
type HealthResponse struct {
	Status     string `json:"status"` // "ok" | "draining"
	Workers    int    `json:"workers"`
	QueueDepth int64  `json:"queue_depth"`
	UptimeSec  int64  `json:"uptime_sec"`
}
