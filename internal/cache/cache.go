// Package cache models the set-associative on-chip caches of Table I
// (vertex, texture, tile, L2, and the direct-mapped color/depth buffers).
// Caches are functional only in the address domain: they track tags, LRU
// state and dirtiness to produce hit/miss/writeback streams for the DRAM and
// energy models; data contents live in the functional renderer.
package cache

import (
	"fmt"
	"math/bits"

	"rendelim/internal/wire"
)

// Config describes one cache per the Table I format.
type Config struct {
	Name      string
	LineBytes int
	Ways      int
	SizeBytes int
	Banks     int
	Latency   int // access latency in cycles
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Validate checks that the geometry is well-formed and power-of-two indexed.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.Ways <= 0 || c.SizeBytes <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by line*ways", c.Name, c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %s: sets %d not a power of two", c.Name, s)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.Banks <= 0 {
		return fmt.Errorf("cache %s: banks must be positive", c.Name)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64 // dirty lines evicted
	ReadBytes  uint64 // bytes fetched from the next level
	WriteBytes uint64 // bytes written back to the next level
}

// HitRate returns hits/accesses, or 0 for an idle cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Writebacks += o.Writebacks
	s.ReadBytes += o.ReadBytes
	s.WriteBytes += o.WriteBytes
}

// NextLevel receives the miss/writeback traffic of a cache: either another
// cache or the DRAM model.
type NextLevel interface {
	// Read fetches size bytes at addr; returns the added latency in cycles.
	Read(addr uint64, size int) int
	// Write sends size bytes at addr down the hierarchy; returns added
	// latency in cycles (write buffers usually hide it).
	Write(addr uint64, size int) int
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint32 // lower = older
}

// Cache is a set-associative write-back, write-allocate cache with true-LRU
// replacement.
type Cache struct {
	cfg      Config
	next     NextLevel
	sets     [][]line
	setShift uint
	setMask  uint64
	lruTick  uint32
	Stats    Stats
}

// New builds a cache; it panics on invalid geometry (a configuration bug,
// not a runtime condition).
func New(cfg Config, next NextLevel) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]line, cfg.Sets())
	backing := make([]line, cfg.Sets()*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{
		cfg:      cfg,
		next:     next,
		sets:     sets,
		setShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:  uint64(cfg.Sets() - 1),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access performs one read or write of up to a line at addr. It returns the
// total latency in cycles (cache latency plus any next-level fill time).
// Accesses that straddle a line boundary are split.
func (c *Cache) Access(addr uint64, size int, write bool) int {
	if size <= 0 {
		return 0
	}
	total := 0
	for size > 0 {
		lineOff := int(addr) & (c.cfg.LineBytes - 1)
		chunk := c.cfg.LineBytes - lineOff
		if chunk > size {
			chunk = size
		}
		total += c.accessLine(addr, write)
		addr += uint64(chunk)
		size -= chunk
	}
	return total
}

func (c *Cache) accessLine(addr uint64, write bool) int {
	c.Stats.Accesses++
	lineAddr := addr >> c.setShift
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> uint(bits.TrailingZeros(uint(c.cfg.Sets())))

	c.lruTick++
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Stats.Hits++
			set[i].lru = c.lruTick
			if write {
				set[i].dirty = true
			}
			return c.cfg.Latency
		}
	}
	// Miss: pick the LRU victim.
	c.Stats.Misses++
	victim := 0
	for i := 1; i < len(set); i++ {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	lat := c.cfg.Latency
	if set[victim].valid && set[victim].dirty {
		c.Stats.Writebacks++
		c.Stats.WriteBytes += uint64(c.cfg.LineBytes)
		victimAddr := c.lineBase(set[victim].tag, lineAddr&c.setMask)
		lat += c.next.Write(victimAddr, c.cfg.LineBytes)
	}
	c.Stats.ReadBytes += uint64(c.cfg.LineBytes)
	lat += c.next.Read(addr&^uint64(c.cfg.LineBytes-1), c.cfg.LineBytes)
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.lruTick}
	return lat
}

func (c *Cache) lineBase(tag, setIdx uint64) uint64 {
	return (tag<<uint(bits.TrailingZeros(uint(c.cfg.Sets())))|setIdx)<<c.setShift | 0
}

// Read is a NextLevel adapter so caches can stack (e.g. tile cache -> L2).
func (c *Cache) Read(addr uint64, size int) int { return c.Access(addr, size, false) }

// Write is the NextLevel write adapter.
func (c *Cache) Write(addr uint64, size int) int { return c.Access(addr, size, true) }

// Flush writes back every dirty line and invalidates the cache, returning
// the number of lines written back. Used between frames when required.
func (c *Cache) Flush() int {
	wb := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.dirty {
				wb++
				c.Stats.Writebacks++
				c.Stats.WriteBytes += uint64(c.cfg.LineBytes)
				c.next.Write(c.lineBase(l.tag, uint64(si)), c.cfg.LineBytes)
			}
			*l = line{}
		}
	}
	return wb
}

// ResetStats zeroes the counters while keeping cache contents.
func (c *Cache) ResetStats() { c.Stats = Stats{} }

// Snapshot captures the cache's full replacement state — every line's tag,
// validity, dirtiness and LRU stamp, plus the LRU clock and counters — so a
// restored cache produces the same hit/miss/writeback stream (and therefore
// the same simulated timing) as the original.
type Snapshot struct {
	Lines   []line // flattened sets, cfg.Ways entries per set
	LRUTick uint32
	Stats   Stats
}

// Snapshot copies the cache state.
func (c *Cache) Snapshot() Snapshot {
	lines := make([]line, 0, len(c.sets)*c.cfg.Ways)
	for _, set := range c.sets {
		lines = append(lines, set...)
	}
	return Snapshot{Lines: lines, LRUTick: c.lruTick, Stats: c.Stats}
}

// Restore overwrites the cache state with a snapshot from an identically
// configured cache; it panics on a geometry mismatch.
func (c *Cache) Restore(s Snapshot) {
	if len(s.Lines) != len(c.sets)*c.cfg.Ways {
		panic(fmt.Sprintf("cache %s: restore geometry mismatch: %d lines != %d", c.cfg.Name, len(s.Lines), len(c.sets)*c.cfg.Ways))
	}
	for i, set := range c.sets {
		copy(set, s.Lines[i*c.cfg.Ways:(i+1)*c.cfg.Ways])
	}
	c.lruTick = s.LRUTick
	c.Stats = s.Stats
}

// AppendBinary serializes the snapshot in the durability layer's wire
// format: every line's replacement state followed by the LRU clock and
// counters.
func (s Snapshot) AppendBinary(b []byte) []byte {
	b = wire.AppendU32(b, uint32(len(s.Lines)))
	for _, ln := range s.Lines {
		b = wire.AppendU64(b, ln.tag)
		b = wire.AppendBool(b, ln.valid)
		b = wire.AppendBool(b, ln.dirty)
		b = wire.AppendU32(b, ln.lru)
	}
	b = wire.AppendU32(b, s.LRUTick)
	b = wire.AppendU64(b, s.Stats.Accesses)
	b = wire.AppendU64(b, s.Stats.Hits)
	b = wire.AppendU64(b, s.Stats.Misses)
	b = wire.AppendU64(b, s.Stats.Writebacks)
	b = wire.AppendU64(b, s.Stats.ReadBytes)
	b = wire.AppendU64(b, s.Stats.WriteBytes)
	return b
}

// DecodeSnapshot is the inverse of AppendBinary; errors are latched on r.
func DecodeSnapshot(r *wire.Reader) Snapshot {
	var s Snapshot
	n := int(r.U32())
	if r.Err() != nil || n < 0 || n*14 > r.Len() {
		return s
	}
	s.Lines = make([]line, n)
	for i := range s.Lines {
		s.Lines[i].tag = r.U64()
		s.Lines[i].valid = r.Bool()
		s.Lines[i].dirty = r.Bool()
		s.Lines[i].lru = r.U32()
	}
	s.LRUTick = r.U32()
	s.Stats.Accesses = r.U64()
	s.Stats.Hits = r.U64()
	s.Stats.Misses = r.U64()
	s.Stats.Writebacks = r.U64()
	s.Stats.ReadBytes = r.U64()
	s.Stats.WriteBytes = r.U64()
	return s
}
