package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// recorder is a NextLevel that records traffic.
type recorder struct {
	reads, writes     int
	readB, writeB     int
	lastRead          uint64
	latRead, latWrite int
}

func (r *recorder) Read(addr uint64, size int) int {
	r.reads++
	r.readB += size
	r.lastRead = addr
	return r.latRead
}

func (r *recorder) Write(addr uint64, size int) int {
	r.writes++
	r.writeB += size
	return r.latWrite
}

func small(next NextLevel) *Cache {
	return New(Config{Name: "t", LineBytes: 64, Ways: 2, SizeBytes: 1024, Banks: 1, Latency: 1}, next)
}

func TestConfigValidate(t *testing.T) {
	good := Config{Name: "ok", LineBytes: 64, Ways: 2, SizeBytes: 4096, Banks: 1, Latency: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Sets() != 32 {
		t.Fatalf("sets = %d", good.Sets())
	}
	bad := []Config{
		{Name: "zero", LineBytes: 0, Ways: 1, SizeBytes: 64, Banks: 1},
		{Name: "indiv", LineBytes: 64, Ways: 3, SizeBytes: 1000, Banks: 1},
		{Name: "pow2", LineBytes: 64, Ways: 1, SizeBytes: 64 * 3, Banks: 1},
		{Name: "line", LineBytes: 48, Ways: 1, SizeBytes: 48 * 4, Banks: 1},
		{Name: "banks", LineBytes: 64, Ways: 2, SizeBytes: 1024, Banks: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected error", c.Name)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	r := &recorder{latRead: 50}
	c := small(r)
	lat := c.Access(0x100, 4, false)
	if lat != 51 {
		t.Fatalf("miss latency = %d, want 51", lat)
	}
	if c.Stats.Misses != 1 || r.reads != 1 || r.readB != 64 {
		t.Fatalf("miss accounting: %+v next=%+v", c.Stats, r)
	}
	if r.lastRead != 0x100 { // line-aligned
		t.Fatalf("fill address = %#x", r.lastRead)
	}
	lat = c.Access(0x104, 4, false) // same line
	if lat != 1 || c.Stats.Hits != 1 {
		t.Fatalf("hit latency = %d stats=%+v", lat, c.Stats)
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	r := &recorder{}
	c := small(r) // 1024B, 64B lines, 2 ways -> 8 sets
	// Write to a line, then evict it with two more conflicting lines.
	c.Access(0x0000, 4, true)
	c.Access(0x0200, 4, false) // same set (set stride = 8*64 = 512)
	c.Access(0x0400, 4, false) // evicts the dirty line at 0x0000
	if c.Stats.Writebacks != 1 || r.writes != 1 || r.writeB != 64 {
		t.Fatalf("writeback accounting: %+v next=%+v", c.Stats, r)
	}
	// The written-back line must come back dirty-free: re-reading misses.
	c.Access(0x0000, 4, false)
	if c.Stats.Misses != 4 {
		t.Fatalf("misses = %d, want 4", c.Stats.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	r := &recorder{}
	c := small(r)
	c.Access(0x0000, 4, false) // way A
	c.Access(0x0200, 4, false) // way B
	c.Access(0x0000, 4, false) // touch A -> B is LRU
	c.Access(0x0400, 4, false) // evicts B
	c.Access(0x0000, 4, false) // still a hit if A survived
	if c.Stats.Hits != 2 {
		t.Fatalf("hits = %d, want 2 (LRU broken)", c.Stats.Hits)
	}
}

func TestStraddlingAccessSplits(t *testing.T) {
	r := &recorder{}
	c := small(r)
	c.Access(60, 8, false) // crosses the 64B boundary
	if c.Stats.Accesses != 2 || c.Stats.Misses != 2 {
		t.Fatalf("straddle stats: %+v", c.Stats)
	}
}

func TestZeroSizeAccessIsFree(t *testing.T) {
	c := small(&recorder{})
	if c.Access(0, 0, false) != 0 || c.Stats.Accesses != 0 {
		t.Fatal("zero-size access should be a no-op")
	}
}

func TestFlushWritesBackDirtyLines(t *testing.T) {
	r := &recorder{}
	c := small(r)
	c.Access(0x000, 4, true)
	c.Access(0x040, 4, true)
	c.Access(0x080, 4, false)
	if wb := c.Flush(); wb != 2 {
		t.Fatalf("flush wrote back %d lines, want 2", wb)
	}
	if r.writeB != 128 {
		t.Fatalf("flush bytes = %d", r.writeB)
	}
	// After flush everything misses again.
	c.Access(0x000, 4, false)
	if c.Stats.Hits != 0 {
		t.Fatal("flush did not invalidate")
	}
}

func TestWritebackAddressRoundTrips(t *testing.T) {
	r := &recorder{}
	c := small(r)
	addr := uint64(0x12340)
	c.Access(addr, 4, true)
	// Evict by filling the set.
	c.Access(addr+0x200, 4, false)
	c.Access(addr+0x400, 4, false)
	if r.writes != 1 {
		t.Fatalf("expected 1 writeback, got %d", r.writes)
	}
}

func TestCacheStacking(t *testing.T) {
	dram := &recorder{latRead: 80}
	l2 := New(Config{Name: "l2", LineBytes: 64, Ways: 8, SizeBytes: 8192, Banks: 8, Latency: 2}, dram)
	l1 := New(Config{Name: "l1", LineBytes: 64, Ways: 2, SizeBytes: 1024, Banks: 1, Latency: 1}, l2)
	lat := l1.Access(0x1000, 4, false)
	if lat != 1+2+80 {
		t.Fatalf("cold stacked latency = %d, want 83", lat)
	}
	// L1 eviction that still hits L2 costs only L1+L2.
	for i := uint64(0); i < 3; i++ {
		l1.Access(0x1000+i*0x200, 4, false)
	}
	lat = l1.Access(0x1000, 4, false)
	if lat != 1+2 {
		t.Fatalf("L2-hit latency = %d, want 3", lat)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("idle hit rate should be 0")
	}
	s = Stats{Accesses: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Accesses: 1, Hits: 2, Misses: 3, Writebacks: 4, ReadBytes: 5, WriteBytes: 6}
	a.Add(a)
	if a != (Stats{Accesses: 2, Hits: 4, Misses: 6, Writebacks: 8, ReadBytes: 10, WriteBytes: 12}) {
		t.Fatalf("Add = %+v", a)
	}
}

// Property: hits + misses == accesses, and a second identical access stream
// on a warmed cache can only raise the hit rate.
func TestQuickConservationAndWarmth(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := small(&recorder{})
		addrs := make([]uint64, int(n)+1)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(4096))
		}
		for _, a := range addrs {
			c.Access(a, 1, rng.Intn(2) == 0)
		}
		if c.Stats.Hits+c.Stats.Misses != c.Stats.Accesses {
			return false
		}
		cold := c.Stats
		for _, a := range addrs {
			c.Access(a, 1, false)
		}
		warmHits := c.Stats.Hits - cold.Hits
		return warmHits >= cold.Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: traffic to the next level is always whole cache lines.
func TestQuickLineGranularityTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := &recorder{}
		c := small(r)
		for i := 0; i < 200; i++ {
			c.Access(uint64(rng.Intn(1<<16)), 1+rng.Intn(16), rng.Intn(2) == 0)
		}
		c.Flush()
		return r.readB%64 == 0 && r.writeB%64 == 0 &&
			uint64(r.readB) == c.Stats.ReadBytes && uint64(r.writeB) == c.Stats.WriteBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := small(&recorder{})
	c.Access(0x100, 4, false)
	c.ResetStats()
	c.Access(0x100, 4, false)
	if c.Stats.Hits != 1 || c.Stats.Accesses != 1 {
		t.Fatalf("stats after reset: %+v", c.Stats)
	}
}
