package tiling

import (
	"math/rand"
	"testing"

	"rendelim/internal/fb"
	"rendelim/internal/geom"
	"rendelim/internal/rast"
)

// Exact binning must (a) be a subset of bbox binning, (b) still contain
// every tile where the rasterizer actually produces fragments.
func TestExactBinningSoundAndTighter(t *testing.T) {
	const W, H = 96, 96
	rng := rand.New(rand.NewSource(5))
	bboxB := NewBinner(W, H, 0)
	exactB := NewBinner(W, H, 0)
	exactB.SetExact(true)

	tighterSomewhere := false
	for trial := 0; trial < 200; trial++ {
		var tr rast.Triangle
		for i := 0; i < 3; i++ {
			x := rng.Float32()*140 - 20
			y := rng.Float32()*140 - 20
			tr.V[i].Pos = geom.V4(2*x/W-1, 1-2*y/H, 0, 1)
		}
		st, ok := rast.Setup(tr, W, H, false)
		if !ok {
			continue
		}
		bbox := append([]int(nil), bboxB.OverlappedTiles(&st)...)
		exact := append([]int(nil), exactB.OverlappedTiles(&st)...)

		bboxSet := map[int]bool{}
		for _, tile := range bbox {
			bboxSet[tile] = true
		}
		exactSet := map[int]bool{}
		for _, tile := range exact {
			if !bboxSet[tile] {
				t.Fatalf("trial %d: exact tile %d not in bbox set", trial, tile)
			}
			exactSet[tile] = true
		}
		if len(exact) < len(bbox) {
			tighterSomewhere = true
		}

		// Soundness: every tile with a covered fragment must be binned.
		covered := map[int]bool{}
		st.Rasterize(geom.Rect{X0: 0, Y0: 0, X1: W, Y1: H}, nil, func(f *rast.Fragment) {
			covered[(f.Y/fb.TileSize)*(W/fb.TileSize)+f.X/fb.TileSize] = true
		})
		for tile := range covered {
			if !exactSet[tile] {
				t.Fatalf("trial %d: covered tile %d missing from exact bins", trial, tile)
			}
		}
	}
	if !tighterSomewhere {
		t.Fatal("exact binning never beat bbox binning over 200 random triangles")
	}
}

// A thin diagonal sliver across the screen: bbox binning touches every tile
// in its bounding box, exact binning only the diagonal band.
func TestExactBinningSliver(t *testing.T) {
	const W, H = 96, 96
	var tr rast.Triangle
	pts := [3][2]float32{{0, 0}, {95, 95}, {94, 95}}
	for i, p := range pts {
		tr.V[i].Pos = geom.V4(2*p[0]/W-1, 1-2*p[1]/H, 0, 1)
	}
	st, ok := rast.Setup(tr, W, H, false)
	if !ok {
		t.Fatal("setup failed")
	}
	bboxB := NewBinner(W, H, 0)
	exactB := NewBinner(W, H, 0)
	exactB.SetExact(true)
	nb := len(bboxB.OverlappedTiles(&st))
	ne := len(exactB.OverlappedTiles(&st))
	if nb != 36 {
		t.Fatalf("bbox bins = %d, want all 36", nb)
	}
	if ne >= nb {
		t.Fatalf("exact bins = %d, want fewer than %d", ne, nb)
	}
	if ne < 6 {
		t.Fatalf("exact bins = %d, diagonal band should touch >= 6 tiles", ne)
	}
}
