package tiling

import (
	"testing"

	"rendelim/internal/geom"
	"rendelim/internal/rast"
)

// tri builds a screen-space triangle over a w x h screen.
func tri(t *testing.T, w, h int, pts [3][2]float32) rast.ScreenTri {
	t.Helper()
	var tr rast.Triangle
	for i, p := range pts {
		tr.V[i].Pos = geom.V4(2*p[0]/float32(w)-1, 1-2*p[1]/float32(h), 0, 1)
	}
	st, ok := rast.Setup(tr, w, h, false)
	if !ok {
		t.Fatal("setup failed")
	}
	return st
}

func TestOverlappedTilesSingleTile(t *testing.T) {
	b := NewBinner(64, 64, 0) // 4x4 tiles
	st := tri(t, 64, 64, [3][2]float32{{2, 2}, {10, 2}, {2, 10}})
	tiles := b.OverlappedTiles(&st)
	if len(tiles) != 1 || tiles[0] != 0 {
		t.Fatalf("tiles = %v", tiles)
	}
}

func TestOverlappedTilesSpanning(t *testing.T) {
	b := NewBinner(64, 64, 0)
	// Bbox spans x 8..40 (tiles 0..2), y 8..24 (tiles 0..1).
	st := tri(t, 64, 64, [3][2]float32{{8, 8}, {40, 8}, {8, 24}})
	tiles := b.OverlappedTiles(&st)
	want := map[int]bool{0: true, 1: true, 2: true, 4: true, 5: true, 6: true}
	if len(tiles) != len(want) {
		t.Fatalf("tiles = %v", tiles)
	}
	for _, tile := range tiles {
		if !want[tile] {
			t.Fatalf("unexpected tile %d in %v", tile, tiles)
		}
	}
}

func TestOverlappedTilesOffscreen(t *testing.T) {
	b := NewBinner(64, 64, 0)
	st := tri(t, 64, 64, [3][2]float32{{-50, -50}, {-10, -50}, {-50, -10}})
	if tiles := b.OverlappedTiles(&st); len(tiles) != 0 {
		t.Fatalf("offscreen triangle binned to %v", tiles)
	}
}

func TestInsertAccountsTraffic(t *testing.T) {
	b := NewBinner(64, 64, 0x100000)
	st := tri(t, 64, 64, [3][2]float32{{8, 8}, {40, 8}, {8, 24}})
	tiles := b.Insert(&st, PrimRef{Draw: 1, Tri: 2}, 3, 144)
	if len(tiles) != 6 {
		t.Fatalf("tiles = %v", tiles)
	}
	if b.PrimDataBytes != 144 {
		t.Fatalf("prim data bytes = %d", b.PrimDataBytes)
	}
	if b.PtrBytes != 6*PtrEntryBytes || b.TilePairs != 6 {
		t.Fatalf("ptr accounting: %d bytes, %d pairs", b.PtrBytes, b.TilePairs)
	}
	if b.WrittenBytes() != 144+48 {
		t.Fatalf("written = %d", b.WrittenBytes())
	}
	for _, tile := range tiles {
		bin := b.Bin(tile)
		if len(bin) != 1 || bin[0].Ref != (PrimRef{Draw: 1, Tri: 2}) || bin[0].Bytes != 144 {
			t.Fatalf("bin %d = %+v", tile, bin)
		}
	}
}

func TestPrimitiveDataSharedAcrossTiles(t *testing.T) {
	b := NewBinner(64, 64, 0)
	st := tri(t, 64, 64, [3][2]float32{{0, 0}, {63, 0}, {0, 63}})
	tiles := b.Insert(&st, PrimRef{}, 3, 144)
	if len(tiles) != 16 {
		t.Fatalf("full-screen triangle bbox should hit all 16 tiles, got %d", len(tiles))
	}
	// Attribute data is written once; tiles share the same PB address.
	addr := b.Bin(tiles[0])[0].Addr
	for _, tile := range tiles[1:] {
		if b.Bin(tile)[0].Addr != addr {
			t.Fatal("primitive data duplicated per tile")
		}
	}
	if b.PrimDataBytes != 144 {
		t.Fatalf("prim data bytes = %d", b.PrimDataBytes)
	}
}

func TestResetClears(t *testing.T) {
	b := NewBinner(64, 64, 0)
	st := tri(t, 64, 64, [3][2]float32{{2, 2}, {10, 2}, {2, 10}})
	b.Insert(&st, PrimRef{}, 3, 144)
	b.Reset()
	if b.WrittenBytes() != 0 || len(b.Bin(0)) != 0 || b.TilePairs != 0 {
		t.Fatal("reset incomplete")
	}
	// Address allocation restarts.
	tiles := b.Insert(&st, PrimRef{}, 3, 96)
	if b.Bin(tiles[0])[0].Addr != 0 {
		t.Fatalf("PB cursor not reset: %#x", b.Bin(tiles[0])[0].Addr)
	}
}

func TestSequentialPBAddresses(t *testing.T) {
	b := NewBinner(64, 64, 0)
	st := tri(t, 64, 64, [3][2]float32{{2, 2}, {10, 2}, {2, 10}})
	b.Insert(&st, PrimRef{Tri: 0}, 3, 144)
	b.Insert(&st, PrimRef{Tri: 1}, 3, 144)
	bin := b.Bin(0)
	if bin[1].Addr-bin[0].Addr != 144 {
		t.Fatalf("addresses not sequential: %#x %#x", bin[0].Addr, bin[1].Addr)
	}
}

func TestNumTilesPartialScreen(t *testing.T) {
	b := NewBinner(100, 40, 0)
	if b.NumTiles() != 7*3 {
		t.Fatalf("tiles = %d", b.NumTiles())
	}
}

func TestPtrAddrDistinct(t *testing.T) {
	b := NewBinner(64, 64, 0)
	seen := map[uint64]bool{}
	for tile := 0; tile < b.NumTiles(); tile++ {
		a := b.PtrAddr(tile)
		if seen[a] {
			t.Fatalf("duplicate pointer list address %#x", a)
		}
		seen[a] = true
	}
}
