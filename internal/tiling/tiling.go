// Package tiling implements the Tiling Engine of the baseline architecture
// (Section II): the Polygon List Builder, which sorts assembled screen-space
// primitives into per-tile bins and lays them out in the Parameter Buffer,
// and the address arithmetic the Tile Scheduler uses to fetch a tile's
// primitives back during the raster phase.
package tiling

import (
	"rendelim/internal/fb"
	"rendelim/internal/geom"
	"rendelim/internal/rast"
)

// PrimRef identifies a binned primitive: drawcall index within the frame
// and triangle index within the drawcall's post-clip triangle list.
type PrimRef struct {
	Draw int
	Tri  int
}

// Entry is one bin element: the primitive, plus its Parameter Buffer
// address/extent for traffic modeling.
type Entry struct {
	Ref      PrimRef
	Addr     uint64
	Bytes    int
	NumAttrs int
}

// PtrEntryBytes is the Parameter Buffer footprint of one per-tile pointer
// entry (tile lists store pointers to shared primitive data).
const PtrEntryBytes = 8

// Binner sorts primitives into tile bins for one frame.
type Binner struct {
	tilesX, tilesY int
	screen         geom.Rect
	bins           [][]Entry

	// Parameter Buffer allocation cursor and base address.
	pbBase uint64
	pbCur  uint64

	// Stats for the frame.
	PrimDataBytes uint64 // attribute data written to the Parameter Buffer
	PtrBytes      uint64 // per-tile pointer entries written
	TilePairs     uint64 // total (primitive, tile) pairs

	tileScratch []int
	exact       bool
}

// NewBinner builds a binner for a screen of w x h pixels; pbBase locates the
// Parameter Buffer in the simulated address map.
func NewBinner(w, h int, pbBase uint64) *Binner {
	tx := (w + fb.TileSize - 1) / fb.TileSize
	ty := (h + fb.TileSize - 1) / fb.TileSize
	return &Binner{
		tilesX: tx,
		tilesY: ty,
		screen: geom.Rect{X0: 0, Y0: 0, X1: w, Y1: h},
		bins:   make([][]Entry, tx*ty),
		pbBase: pbBase,
	}
}

// SetExact switches the binner to exact triangle-tile overlap tests instead
// of bounding-box binning. Bbox binning is what simple PLBs do; it binds
// sliver triangles into tiles they never cover, polluting those tiles'
// signatures and raster bins. Exact binning trades three edge-function
// evaluations per candidate tile for tighter bins — the ablation
// `reexp -figs binning` quantifies the effect on RE.
func (b *Binner) SetExact(on bool) { b.exact = on }

// NumTiles returns the tile count.
func (b *Binner) NumTiles() int { return len(b.bins) }

// Reset clears the bins and Parameter Buffer cursor for a new frame.
func (b *Binner) Reset() {
	for i := range b.bins {
		b.bins[i] = b.bins[i][:0]
	}
	b.pbCur = b.pbBase
	b.PrimDataBytes = 0
	b.PtrBytes = 0
	b.TilePairs = 0
}

// OverlappedTiles computes the tile ids the triangle overlaps: by screen
// bounding box (the conservative binning simple PLBs use) or, with SetExact,
// by testing each candidate tile against the triangle's edges. The returned
// slice is valid until the next call.
func (b *Binner) OverlappedTiles(st *rast.ScreenTri) []int {
	bb := st.BBox(b.screen)
	b.tileScratch = b.tileScratch[:0]
	if bb.Empty() {
		return b.tileScratch
	}
	tx0 := bb.X0 / fb.TileSize
	ty0 := bb.Y0 / fb.TileSize
	tx1 := (bb.X1 - 1) / fb.TileSize
	ty1 := (bb.Y1 - 1) / fb.TileSize
	for ty := ty0; ty <= ty1; ty++ {
		for tx := tx0; tx <= tx1; tx++ {
			if b.exact && !triOverlapsTile(st, tx, ty) {
				continue
			}
			b.tileScratch = append(b.tileScratch, ty*b.tilesX+tx)
		}
	}
	return b.tileScratch
}

// triOverlapsTile reports whether the triangle's area can intersect the
// tile rectangle: for each triangle edge, the tile's most-interior corner
// must not be fully outside. This is the standard conservative
// edge-vs-box test (exact for convex shapes up to float rounding).
func triOverlapsTile(st *rast.ScreenTri, tx, ty int) bool {
	x0 := float32(tx * fb.TileSize)
	y0 := float32(ty * fb.TileSize)
	x1 := x0 + fb.TileSize
	y1 := y0 + fb.TileSize
	// Orient edges so the interior is on the positive side.
	flip := float32(1)
	if st.Area2 < 0 {
		flip = -1
	}
	for i := 0; i < 3; i++ {
		j := (i + 1) % 3
		ax, ay := st.X[i], st.Y[i]
		ex := (st.X[j] - ax) * flip
		ey := (st.Y[j] - ay) * flip
		// Inward edge normal is n = (-ey, ex); evaluate the edge function
		// at the box corner farthest along n. If even that corner is
		// outside, the whole tile is outside this edge.
		nx, ny := -ey, ex
		cx, cy := x0, y0
		if nx > 0 {
			cx = x1
		}
		if ny > 0 {
			cy = y1
		}
		if nx*(cx-ax)+ny*(cy-ay) < 0 {
			return false
		}
	}
	return true
}

// Insert stores a primitive's attribute data in the Parameter Buffer and
// appends pointer entries to every overlapped tile's bin. attrBytes is the
// primitive's attribute payload (3 vertices x NumAttrs x 16 B). It returns
// the overlapped tile list (valid until the next OverlappedTiles/Insert).
func (b *Binner) Insert(st *rast.ScreenTri, ref PrimRef, numAttrs, attrBytes int) []int {
	tiles := b.OverlappedTiles(st)
	if len(tiles) == 0 {
		return tiles
	}
	addr := b.pbCur
	b.pbCur += uint64(attrBytes)
	b.PrimDataBytes += uint64(attrBytes)
	for _, tile := range tiles {
		b.bins[tile] = append(b.bins[tile], Entry{Ref: ref, Addr: addr, Bytes: attrBytes, NumAttrs: numAttrs})
		b.PtrBytes += PtrEntryBytes
		b.TilePairs++
	}
	return tiles
}

// Bin returns tile's primitive list in submission order.
func (b *Binner) Bin(tile int) []Entry { return b.bins[tile] }

// WrittenBytes returns the total Parameter Buffer write traffic this frame.
func (b *Binner) WrittenBytes() uint64 { return b.PrimDataBytes + b.PtrBytes }

// PtrAddr returns the simulated address of a tile's pointer list; the tile
// lists live after the primitive data region.
func (b *Binner) PtrAddr(tile int) uint64 {
	return b.pbBase + (1 << 26) + uint64(tile)*4096
}
