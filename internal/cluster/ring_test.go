package cluster

import (
	"fmt"
	"math"
	"testing"

	"rendelim/internal/jobs"
)

func testKey(i int) jobs.Key {
	return jobs.Key{TraceSig: uint32(i * 2654435761), CfgHash: uint32(i)}
}

// Every node must derive the same owner for the same key regardless of the
// order its -peer flags happened to list the membership in.
func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a := newRing([]string{"n1:1", "n2:1", "n3:1"}, 64)
	b := newRing([]string{"n3:1", "n1:1", "n2:1"}, 64)
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		if oa, ob := a.owner(k, nil), b.owner(k, nil); oa != ob {
			t.Fatalf("key %v: owner %q vs %q across member orders", k, oa, ob)
		}
	}
}

// Keys must spread across members roughly evenly: with 128 vnodes each, no
// member of a 3-node ring should own less than half or more than double its
// fair share over a large key sample.
func TestRingBalance(t *testing.T) {
	members := []string{"n1:1", "n2:1", "n3:1"}
	r := newRing(members, 0) // default replicas
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.owner(testKey(i), nil)]++
	}
	fair := float64(n) / float64(len(members))
	for _, m := range members {
		got := float64(counts[m])
		if got < fair/2 || got > fair*2 {
			t.Errorf("member %s owns %d keys, fair share %.0f: imbalance too high (%v)", m, counts[m], fair, counts)
		}
	}
}

// A down member's keys must move to other members — and only the down
// member's keys: every key owned by a live member keeps its owner.
func TestRingDownPeerRebalance(t *testing.T) {
	r := newRing([]string{"n1:1", "n2:1", "n3:1"}, 64)
	down := "n2:1"
	alive := func(m string) bool { return m != down }
	moved := 0
	for i := 0; i < 2000; i++ {
		k := testKey(i)
		before := r.owner(k, nil)
		after := r.owner(k, alive)
		if after == down {
			t.Fatalf("key %v still routed to down member", k)
		}
		if before != down && before != after {
			t.Fatalf("key %v owned by live %q moved to %q when %q went down", k, before, after, down)
		}
		if before == down {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the down member; test is vacuous")
	}
	// All members down: no owner.
	if got := r.owner(testKey(1), func(string) bool { return false }); got != "" {
		t.Fatalf("owner with all members down = %q, want \"\"", got)
	}
}

// Ownership fractions must cover the whole circle.
func TestRingOwnershipSumsToOne(t *testing.T) {
	r := newRing([]string{"n1:1", "n2:1", "n3:1", "n4:1"}, 0)
	sum := 0.0
	for _, f := range r.ownership() {
		if f <= 0 {
			t.Fatalf("non-positive ownership fraction: %v", r.ownership())
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ownership fractions sum to %v, want 1", sum)
	}
}

// A single-member ring owns everything.
func TestRingSingleMember(t *testing.T) {
	r := newRing([]string{"solo:1"}, 8)
	for i := 0; i < 100; i++ {
		if got := r.owner(testKey(i), nil); got != "solo:1" {
			t.Fatalf("owner = %q, want solo:1", got)
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	members := make([]string, 16)
	for i := range members {
		members[i] = fmt.Sprintf("node%d:8080", i)
	}
	r := newRing(members, 0)
	alive := func(string) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.owner(testKey(i), alive)
	}
}
