package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rendelim/internal/jobs"
	"rendelim/internal/obs"
)

// ErrBadPeer reports an invalid -peer configuration: a malformed address, a
// duplicate, or the node listed as its own peer. Configuration errors are
// fatal at startup — a duplicate ring member would silently double-count
// ring slots and skew ownership, so it is rejected instead.
var ErrBadPeer = errors.New("cluster: bad peer")

// Options configures a Cluster. Self and Peers are required; everything else
// has working defaults.
type Options struct {
	// Self is this node's advertised address (host:port) — the address
	// peers use to reach it, which must match how they list it in their
	// own -peer flags so every node derives the same ring.
	Self string

	// Peers are the other members' advertised addresses. Order does not
	// matter (the ring sorts); duplicates and Self are rejected.
	Peers []string

	// Replicas is the virtual-node count per member; default 128.
	Replicas int

	// HealthInterval is the gap between /healthz probes of each peer;
	// default 2s. HealthTimeout bounds one probe; default 1s.
	HealthInterval time.Duration
	HealthTimeout  time.Duration

	// ResultTTL bounds how long a non-owner serves a completed result it
	// fetched from the owner without re-asking (the read-through cache).
	// Default 30s; 0 selects the default, negative disables read-through.
	ResultTTL time.Duration

	// ReadThroughSize caps the read-through cache entries; default 256.
	ReadThroughSize int

	// ForwardTimeout bounds one forwarded submit/status round trip,
	// *excluding* any ?wait deadline the client asked for (the owner holds
	// the request while the job runs). Default 15 minutes.
	ForwardTimeout time.Duration

	// Client issues forwarded requests and health probes; default: a
	// dedicated client with sane connection pooling.
	Client *http.Client

	// Logger receives membership transitions; default slog.Default.
	Logger *slog.Logger

	// Tracer, when non-nil, records one span per forwarded hop
	// ("cluster.forward" / "cluster.status") so remote time is visible in
	// the same Chrome-trace timeline as the simulator's pipeline spans.
	Tracer *obs.Tracer

	// Journal, when non-nil, receives peer up/down transitions for the
	// /debug/events flight recorder. Nil-safe throughout.
	Journal *obs.Journal
}

// peerState is one peer's health record.
type peerState struct {
	addr string
	up   atomic.Bool
}

// Cluster is a node's view of the fleet: the ring, each peer's liveness,
// the forwarding client and the read-through result cache.
type Cluster struct {
	self    string
	ring    *ring
	peers   map[string]*peerState // excludes self
	client  *http.Client
	log     *slog.Logger
	metrics *Metrics
	rt      *readThrough
	tracer  *obs.Tracer
	spans   *obs.SpanPool
	journal *obs.Journal

	healthInterval time.Duration
	healthTimeout  time.Duration
	forwardTimeout time.Duration

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NormalizeAddr canonicalizes a peer address: scheme stripped, host:port
// required, host lowercased. Returns an error wrapping ErrBadPeer when the
// address is malformed.
func NormalizeAddr(addr string) (string, error) {
	a := strings.TrimSpace(addr)
	a = strings.TrimPrefix(a, "http://")
	a = strings.TrimPrefix(a, "https://")
	a = strings.TrimSuffix(a, "/")
	host, port, err := net.SplitHostPort(a)
	if err != nil {
		return "", fmt.Errorf("%w: %q: want host:port: %v", ErrBadPeer, addr, err)
	}
	if host == "" || port == "" {
		return "", fmt.Errorf("%w: %q: empty host or port", ErrBadPeer, addr)
	}
	return strings.ToLower(host) + ":" + port, nil
}

// ValidatePeers normalizes and deduplicates peer addresses against self.
// Duplicates and self-peering are configuration mistakes (they would
// double-count ring slots or forward requests back to the sender) and are
// rejected with a clear error rather than silently folded.
func ValidatePeers(self string, peers []string) (normSelf string, normPeers []string, err error) {
	normSelf, err = NormalizeAddr(self)
	if err != nil {
		return "", nil, fmt.Errorf("self address: %w", err)
	}
	seen := map[string]string{normSelf: self}
	for _, p := range peers {
		np, err := NormalizeAddr(p)
		if err != nil {
			return "", nil, err
		}
		if np == normSelf {
			return "", nil, fmt.Errorf("%w: %q is this node's own address (self-peering)", ErrBadPeer, p)
		}
		if prev, dup := seen[np]; dup {
			return "", nil, fmt.Errorf("%w: duplicate peer %q (already given as %q)", ErrBadPeer, p, prev)
		}
		seen[np] = p
		normPeers = append(normPeers, np)
	}
	return normSelf, normPeers, nil
}

// New validates the membership and builds the cluster. The health loop does
// not start until Start; before the first probe completes every peer is
// assumed up (optimistic routing — a wrong guess degrades to local
// simulation, never to an error).
func New(opts Options) (*Cluster, error) {
	self, peers, err := ValidatePeers(opts.Self, opts.Peers)
	if err != nil {
		return nil, err
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 2 * time.Second
	}
	if opts.HealthTimeout <= 0 {
		opts.HealthTimeout = time.Second
	}
	if opts.ForwardTimeout <= 0 {
		opts.ForwardTimeout = 15 * time.Minute
	}
	ttl := opts.ResultTTL
	if ttl == 0 {
		ttl = 30 * time.Second
	}
	if opts.ReadThroughSize <= 0 {
		opts.ReadThroughSize = 256
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	c := &Cluster{
		self:           self,
		ring:           newRing(append([]string{self}, peers...), opts.Replicas),
		peers:          make(map[string]*peerState, len(peers)),
		client:         opts.Client,
		log:            opts.Logger,
		metrics:        newMetrics(),
		tracer:         opts.Tracer,
		spans:          obs.NewSpanPool(opts.Tracer, "cluster-hop"),
		journal:        opts.Journal,
		healthInterval: opts.HealthInterval,
		healthTimeout:  opts.HealthTimeout,
		forwardTimeout: opts.ForwardTimeout,
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
	if ttl > 0 {
		c.rt = newReadThrough(opts.ReadThroughSize, ttl)
	}
	for _, p := range peers {
		ps := &peerState{addr: p}
		ps.up.Store(true)
		c.peers[p] = ps
	}
	return c, nil
}

// Self returns this node's normalized advertised address.
func (c *Cluster) Self() string { return c.self }

// Members returns every ring member (self included), sorted.
func (c *Cluster) Members() []string { return append([]string(nil), c.ring.members...) }

// Metrics exposes the cluster counters for /metrics.
func (c *Cluster) Metrics() *Metrics { return c.metrics }

// Owner returns the address of the node owning key, considering only live
// members (self is always live from its own point of view). Falls back to
// self when every other member is down.
func (c *Cluster) Owner(key jobs.Key) string {
	owner := c.ring.owner(key, c.peerAlive)
	if owner == "" {
		return c.self
	}
	return owner
}

// IsSelf reports whether addr names this node.
func (c *Cluster) IsSelf(addr string) bool { return addr == c.self }

// PeerUp reports a peer's last observed health (true for self).
func (c *Cluster) PeerUp(addr string) bool { return c.peerAlive(addr) }

func (c *Cluster) peerAlive(addr string) bool {
	if addr == c.self {
		return true
	}
	ps, ok := c.peers[addr]
	return ok && ps.up.Load()
}

// MemberOwnership describes one ring member in the /debug/vars dump: its
// circle fraction plus current liveness.
type MemberOwnership struct {
	Member   string  `json:"member"`
	Fraction float64 `json:"fraction"`
	Up       bool    `json:"up"`
	Self     bool    `json:"self"`
}

// OwnershipView describes the ring for /debug/vars. Members are sorted by
// address so the serialized view is byte-stable by construction: the
// previous map[string]any shape had no schema and left ordering to
// whatever the encoder chose, so nothing pinned stability — any consumer
// ranging over it (a non-JSON renderer, a test) inherited Go's randomized
// map iteration.
type OwnershipView struct {
	Self     string            `json:"self"`
	Replicas int               `json:"replicas"`
	Members  []MemberOwnership `json:"members"`
}

// Ownership returns the ring dump for /debug/vars.
func (c *Cluster) Ownership() OwnershipView {
	frac := c.ring.ownership()
	v := OwnershipView{
		Self:     c.self,
		Replicas: c.ring.replicas,
		Members:  make([]MemberOwnership, 0, len(frac)),
	}
	for m, f := range frac {
		v.Members = append(v.Members, MemberOwnership{
			Member:   m,
			Fraction: f,
			Up:       c.peerAlive(m),
			Self:     m == c.self,
		})
	}
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].Member < v.Members[j].Member })
	return v
}

// Start launches the health-check loop. Every peer is probed once
// immediately, then every HealthInterval.
func (c *Cluster) Start() {
	go func() {
		defer close(c.done)
		c.checkAll()
		t := time.NewTicker(c.healthInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.checkAll()
			}
		}
	}()
}

// Stop terminates the health loop; idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// checkAll probes every peer concurrently (one slow peer must not delay the
// verdict on the others past HealthTimeout).
func (c *Cluster) checkAll() {
	var wg sync.WaitGroup
	for _, ps := range c.peers {
		wg.Add(1)
		go func(ps *peerState) {
			defer wg.Done()
			up := c.probe(ps.addr)
			if ps.up.Swap(up) != up {
				if up {
					c.log.Info("peer up", "peer", ps.addr)
					c.journal.Record("peer.up", "peer passed a health probe", "peer", ps.addr)
				} else {
					c.log.Warn("peer down", "peer", ps.addr)
					c.journal.Record("peer.down", "peer failed a health probe (or is draining)", "peer", ps.addr)
				}
			}
		}(ps)
	}
	wg.Wait()
	c.metrics.HealthChecks.Add(1)
}

// probe reports whether one peer is routable: /healthz answering 200. A 503
// — which is what a draining peer reports — counts as down, so a drain
// rebalances that peer's key range onto its ring successors before its
// listener ever closes.
func (c *Cluster) probe(addr string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.healthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// MarkPeer overrides one peer's health state. Exported for tests that need
// a deterministic ring view without waiting out a probe interval.
func (c *Cluster) MarkPeer(addr string, up bool) {
	if ps, ok := c.peers[addr]; ok {
		ps.up.Store(up)
	}
}
