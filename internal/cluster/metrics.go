package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"rendelim/internal/stats"
)

// forwardBuckets are the forward round-trip histogram bounds in seconds:
// loopback hops sit in the sub-millisecond buckets, a ?wait=1 forward can
// legitimately hold for the whole simulation.
var forwardBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// Metrics aggregates the cluster-layer counters for /metrics. The gauges
// (peer liveness) are read live off the cluster state at scrape time.
type Metrics struct {
	Forwarded       atomic.Uint64 // submissions proxied to their owner
	StatusForwarded atomic.Uint64 // status lookups proxied to their owner
	RemoteHits      atomic.Uint64 // jobs eliminated by another node's cache (owner dedup or read-through)
	ReadThroughHits atomic.Uint64 // subset of RemoteHits served from the local read-through cache
	ForwardErrors   atomic.Uint64 // forwarded hops that failed at transport level
	Degraded        atomic.Uint64 // submissions simulated locally because the owner was unreachable
	HealthChecks    atomic.Uint64 // completed health-check sweeps

	// ForwardSeconds distributes forwarded-hop round-trip time (submit and
	// status hops alike, including failures), the cluster's contribution to
	// end-to-end latency.
	ForwardSeconds *stats.Histogram
}

func newMetrics() *Metrics {
	return &Metrics{ForwardSeconds: stats.NewHistogram(forwardBuckets...)}
}

// WritePrometheus renders the cluster metrics in the Prometheus text
// exposition format, matching the hand-rolled style of jobs.Metrics.
func (c *Cluster) WritePrometheus(w io.Writer) {
	m := c.metrics
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("resvc_cluster_forwarded_total", "Job submissions forwarded to their ring owner.", m.Forwarded.Load())
	counter("resvc_cluster_status_forwarded_total", "Job status lookups forwarded to their ring owner.", m.StatusForwarded.Load())
	counter("resvc_cluster_remote_hits_total", "Jobs eliminated by a result another node had already computed.", m.RemoteHits.Load())
	counter("resvc_cluster_readthrough_hits_total", "Remote hits served from the local read-through cache without a hop.", m.ReadThroughHits.Load())
	counter("resvc_cluster_forward_errors_total", "Forwarded hops that failed at the transport level.", m.ForwardErrors.Load())
	counter("resvc_cluster_degraded_total", "Submissions simulated locally because their owner was unreachable.", m.Degraded.Load())
	counter("resvc_cluster_health_checks_total", "Completed peer health-check sweeps.", m.HealthChecks.Load())

	fmt.Fprintf(w, "# HELP resvc_cluster_forward_seconds Forwarded-hop round-trip time (submit and status hops, including failures).\n# TYPE resvc_cluster_forward_seconds histogram\n")
	m.ForwardSeconds.WritePrometheus(w, "resvc_cluster_forward_seconds", "")

	fmt.Fprintf(w, "# HELP resvc_cluster_peer_up Peer liveness as of the last health check (1 up, 0 down).\n# TYPE resvc_cluster_peer_up gauge\n")
	addrs := make([]string, 0, len(c.peers))
	for a := range c.peers {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		v := 0
		if c.peers[a].up.Load() {
			v = 1
		}
		fmt.Fprintf(w, "resvc_cluster_peer_up{peer=%q} %d\n", a, v)
	}
	fmt.Fprintf(w, "# HELP resvc_cluster_members Ring members (static membership), self included.\n# TYPE resvc_cluster_members gauge\nresvc_cluster_members %d\n", len(c.ring.members))
	fmt.Fprintf(w, "# HELP resvc_cluster_readthrough_entries Read-through cache entries held locally.\n# TYPE resvc_cluster_readthrough_entries gauge\nresvc_cluster_readthrough_entries %d\n", c.ReadThroughLen())
}
