// Package cluster shards the resvc job service across a static set of
// nodes. Every job signature — the (trace CRC32, config hash) pair the jobs
// package already eliminates on — hashes onto a consistent-hash ring whose
// members are the cluster's node addresses; the ring names exactly one
// *owner* per signature, and every node forwards submissions it does not own
// to that owner. The owner's singleflight and LRU result cache thereby
// become cluster-wide: an identical job submitted to *any* node is
// eliminated if *any* node has already rendered it, which is Rendering
// Elimination lifted from tiles to jobs to the whole fleet (frame coherence
// is a property of the workload, not of the node that receives it).
//
// Membership is static (the -peer flags at startup) but routing is not:
// peers are health-checked over their /healthz endpoint, and a peer that is
// down — or draining, which reports 503 — is skipped on the ring walk so its
// key range rebalances onto its successors until it returns.
package cluster

import (
	"fmt"
	"sort"

	"rendelim/internal/crc"
	"rendelim/internal/jobs"
)

// defaultReplicas is the number of virtual nodes per member. 128 points per
// member keeps the ownership imbalance of a small static cluster within a
// few percent without making ring rebuilds or walks measurable.
const defaultReplicas = 128

// ring is an immutable consistent-hash ring: members are hashed onto a
// uint32 circle at replicas points each, and a key is owned by the first
// member point at or clockwise-after the key's hash. Rebuilt only when
// membership changes (never at steady state), so reads need no lock.
type ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	members  []string    // sorted, deduplicated
}

type ringPoint struct {
	hash  uint32
	owner string
}

// newRing places every member on the circle. Members must already be
// normalized and deduplicated (New enforces that).
func newRing(members []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{
		replicas: replicas,
		members:  append([]string(nil), members...),
		points:   make([]ringPoint, 0, len(members)*replicas),
	}
	sort.Strings(r.members)
	for _, m := range r.members {
		for i := 0; i < replicas; i++ {
			h := crc.Checksum([]byte(fmt.Sprintf("%s#%d", m, i)))
			r.points = append(r.points, ringPoint{hash: h, owner: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on owner so the ring order is deterministic across
		// nodes even in the (astronomically unlikely) event of a collision.
		return r.points[i].owner < r.points[j].owner
	})
	return r
}

// keyHash maps a job signature onto the circle. The signature pair is
// re-hashed (rather than used raw) so similar signatures don't cluster.
func keyHash(key jobs.Key) uint32 {
	return crc.Checksum([]byte(key.String()))
}

// owner returns the member owning key, walking clockwise from the key's
// point and skipping members for which alive returns false. Returns "" only
// when no member is alive (alive==nil means all are).
func (r *ring) owner(key jobs.Key, alive func(string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.members))
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.owner] {
			continue
		}
		seen[p.owner] = true
		if alive == nil || alive(p.owner) {
			return p.owner
		}
		if len(seen) == len(r.members) {
			break
		}
	}
	return ""
}

// ownership returns each member's fraction of the hash circle — the
// /debug/vars view of how keys would distribute with every member alive.
func (r *ring) ownership() map[string]float64 {
	out := make(map[string]float64, len(r.members))
	if len(r.points) == 0 {
		return out
	}
	const circle = float64(1 << 32)
	for i, p := range r.points {
		next := r.points[(i+1)%len(r.points)]
		// The arc from this point (exclusive) to the next (inclusive)
		// belongs to the next point's owner under "first point at or after
		// h" ownership; uint32 subtraction handles the wraparound arc.
		span := next.hash - p.hash
		out[next.owner] += float64(span) / circle
	}
	return out
}
