package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"rendelim/internal/apihttp"
	"rendelim/internal/jobs"
	"rendelim/internal/obs"
)

// Typed forwarding errors. The server maps them onto HTTP statuses that
// tell the truth about *where* the failure happened: an unreachable peer is
// a retryable 503 (with Retry-After), a peer that answered garbage is a 502
// — neither is a mislabeled 500 blaming this node.
var (
	// ErrPeerUnavailable reports a transport-level failure reaching the
	// owner: connection refused, reset, or the forward deadline expiring.
	// The submit path falls back to local simulation on it (degraded
	// mode); the status path surfaces it as 503 + Retry-After.
	ErrPeerUnavailable = errors.New("cluster: peer unavailable")

	// ErrPeerBadResponse reports an owner that was reachable but answered
	// with something that is not a job response (a non-JSON body, say).
	// Surfaced as 502.
	ErrPeerBadResponse = errors.New("cluster: bad peer response")
)

// ForwardHeader marks a request as already forwarded once. The owner
// processes such a request locally no matter what its own ring says, so a
// transiently divergent ring view (mid health transition) can never bounce
// a request around the fleet.
const ForwardHeader = "X-Resvc-Forwarded"

// Reply is the owner's verbatim answer to a forwarded request: the HTTP
// status, the response body (a server.JobResponse in JSON), and the
// Retry-After hint if the owner sent one. The body is relayed untouched
// except for routing fields, so a result is byte-identical no matter which
// node the client happened to reach.
type Reply struct {
	StatusCode int
	Body       []byte
	RetryAfter string
	Owner      string
}

// ForwardSubmit proxies one POST /jobs to the owner. body and contentType
// are the client's original payload; query is relayed so ?wait and ?tech
// survive the hop. key is the job signature being routed — it rides into
// error wrap messages (satisfying "which key failed against which peer")
// and the forwarded-hop trace span.
func (c *Cluster) ForwardSubmit(ctx context.Context, owner string, key jobs.Key, body []byte, contentType string, query url.Values) (*Reply, error) {
	c.metrics.Forwarded.Add(1)
	u := "http://" + owner + apihttp.PathJobs
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequest(http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: peer %s: key %s: %v", ErrPeerBadResponse, owner, key, err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return c.roundTrip(ctx, req, owner, "key "+key.String(), "cluster.forward")
}

// ForwardStatus proxies one GET /v1/jobs/{id} to the owner; query relays ?wait.
func (c *Cluster) ForwardStatus(ctx context.Context, owner, id string, query url.Values) (*Reply, error) {
	c.metrics.StatusForwarded.Add(1)
	u := "http://" + owner + apihttp.PathJobs + "/" + url.PathEscape(id)
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: peer %s: job %s: %v", ErrPeerBadResponse, owner, id, err)
	}
	return c.roundTrip(ctx, req, owner, "job "+id, "cluster.status")
}

// roundTrip executes one forwarded hop with the forward deadline, the
// loop-prevention header, the propagated trace context, and a tracer span
// carrying the peer address. what names the routed object ("key <sig>" or
// "job <id>") for error wrap messages, so a forwarded-failure log line
// identifies both the peer and what was being asked of it.
func (c *Cluster) roundTrip(ctx context.Context, req *http.Request, owner, what, span string) (*Reply, error) {
	ctx, cancel := context.WithTimeout(ctx, c.forwardTimeout)
	defer cancel()
	req = req.WithContext(ctx)
	req.Header.Set(ForwardHeader, c.self)

	// Distributed tracing: the request's trace context crosses the hop as a
	// W3C traceparent header with a fresh span id, so the receiving node's
	// spans and log lines join the same trace.
	tc, traced := obs.TraceFromContext(ctx)
	if traced {
		tc = tc.Child()
		req.Header.Set(obs.TraceparentHeader, tc.Traceparent())
	}

	th := c.spans.Get()
	if traced {
		th.BeginArgStr(span+" "+owner, "trace_id", tc.TraceIDString())
	} else {
		th.Begin(span + " " + owner)
	}
	start := time.Now()
	resp, err := c.client.Do(req)
	elapsed := time.Since(start)
	th.End()
	c.spans.Put(th)
	c.metrics.ForwardSeconds.Observe(elapsed.Seconds())

	if err != nil {
		c.metrics.ForwardErrors.Add(1)
		c.log.Warn("forward failed", "peer", owner, "what", what, "path", req.URL.Path,
			"elapsed", elapsed, "err", err)
		return nil, fmt.Errorf("%w: peer %s: %s: %v", ErrPeerUnavailable, owner, what, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		c.metrics.ForwardErrors.Add(1)
		return nil, fmt.Errorf("%w: peer %s: %s: reading body: %v", ErrPeerUnavailable, owner, what, err)
	}
	if ct := resp.Header.Get("Content-Type"); resp.StatusCode != http.StatusNotFound &&
		ct != "" && !isJSON(ct) {
		return nil, fmt.Errorf("%w: peer %s: %s: content-type %q", ErrPeerBadResponse, owner, what, ct)
	}
	return &Reply{
		StatusCode: resp.StatusCode,
		Body:       body,
		RetryAfter: resp.Header.Get("Retry-After"),
		Owner:      owner,
	}, nil
}

func isJSON(ct string) bool {
	return strings.HasPrefix(ct, "application/json")
}

// ---------------------------------------------------------------------------
// Read-through result cache

// rtEntry is one cached completed-job reply.
type rtEntry struct {
	key     jobs.Key
	reply   *Reply
	expires time.Time
}

// readThrough is a TTL+LRU cache of *completed* replies a non-owner has
// seen from owners, so repeated submissions of a hot signature are served
// locally without even a forwarded hop. Entries expire after the TTL — the
// owner remains the source of truth; this is a bounded staleness window,
// the cluster analogue of the simulator's refresh interval.
type readThrough struct {
	mu    sync.Mutex
	cap   int
	ttl   time.Duration
	order []jobs.Key // FIFO eviction order; cheap and good enough at this size
	index map[jobs.Key]*rtEntry
}

func newReadThrough(capacity int, ttl time.Duration) *readThrough {
	return &readThrough{cap: capacity, ttl: ttl, index: make(map[jobs.Key]*rtEntry, capacity)}
}

// get returns a fresh cached reply, or nil.
func (r *readThrough) get(key jobs.Key) *Reply {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.index[key]
	if !ok {
		return nil
	}
	if time.Now().After(e.expires) {
		delete(r.index, key)
		return nil
	}
	return e.reply
}

// put caches a completed reply under key.
func (r *readThrough) put(key jobs.Key, reply *Reply) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.index[key]; !ok {
		r.order = append(r.order, key)
		for len(r.index) >= r.cap && len(r.order) > 0 {
			old := r.order[0]
			r.order = r.order[1:]
			if old != key {
				delete(r.index, old)
			}
		}
	}
	r.index[key] = &rtEntry{key: key, reply: reply, expires: time.Now().Add(r.ttl)}
}

func (r *readThrough) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.index)
}

// CachedResult returns a fresh read-through reply for key, or nil when
// read-through is disabled or the entry is missing/expired.
func (c *Cluster) CachedResult(key jobs.Key) *Reply {
	if c.rt == nil {
		return nil
	}
	if rep := c.rt.get(key); rep != nil {
		c.metrics.ReadThroughHits.Add(1)
		c.metrics.RemoteHits.Add(1)
		return rep
	}
	return nil
}

// StoreResult caches a completed reply for key at this (non-owner) node.
func (c *Cluster) StoreResult(key jobs.Key, rep *Reply) {
	if c.rt == nil || rep == nil {
		return
	}
	c.rt.put(key, rep)
}

// ReadThroughLen reports the read-through cache size, for /debug/vars.
func (c *Cluster) ReadThroughLen() int {
	if c.rt == nil {
		return 0
	}
	return c.rt.len()
}
