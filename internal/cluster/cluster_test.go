package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rendelim/internal/obs"
)

func TestNormalizeAddr(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{in: "127.0.0.1:8080", want: "127.0.0.1:8080"},
		{in: "http://127.0.0.1:8080", want: "127.0.0.1:8080"},
		{in: "https://Node-A.local:9000/", want: "node-a.local:9000"},
		{in: " 10.0.0.1:80 ", want: "10.0.0.1:80"},
		{in: "nohost", wantErr: true},
		{in: ":8080", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, c := range cases {
		got, err := NormalizeAddr(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("NormalizeAddr(%q) = %q, want error", c.in, got)
			} else if !errors.Is(err, ErrBadPeer) {
				t.Errorf("NormalizeAddr(%q) error %v does not wrap ErrBadPeer", c.in, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("NormalizeAddr(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("NormalizeAddr(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Self-peering and duplicate peers are startup errors, not silent ring
// skew: a duplicate would double the member's vnode count, self-peering
// would forward requests back to the sender.
func TestValidatePeersRejectsSelfAndDuplicates(t *testing.T) {
	if _, _, err := ValidatePeers("127.0.0.1:1", []string{"127.0.0.1:2", "127.0.0.1:1"}); !errors.Is(err, ErrBadPeer) || !strings.Contains(err.Error(), "self") {
		t.Errorf("self-peering: got %v, want ErrBadPeer mentioning self", err)
	}
	// Duplicates are caught even across different spellings of one address.
	if _, _, err := ValidatePeers("127.0.0.1:1", []string{"127.0.0.1:2", "http://127.0.0.1:2"}); !errors.Is(err, ErrBadPeer) || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate peer: got %v, want ErrBadPeer mentioning duplicate", err)
	}
	self, peers, err := ValidatePeers("http://127.0.0.1:1", []string{"127.0.0.1:2", "127.0.0.1:3"})
	if err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if self != "127.0.0.1:1" || len(peers) != 2 {
		t.Errorf("normalized to %q / %v", self, peers)
	}
}

// The health loop must mark a peer down when /healthz reports 503 (the
// draining state) or the connection fails, and back up when it recovers.
func TestHealthCheckHonorsDraining(t *testing.T) {
	var status atomic.Int32
	status.Store(http.StatusOK)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		w.WriteHeader(int(status.Load()))
	}))
	defer peer.Close()
	addr := strings.TrimPrefix(peer.URL, "http://")

	c, err := New(Options{
		Self:           "127.0.0.1:1",
		Peers:          []string{addr},
		HealthInterval: 10 * time.Millisecond,
		HealthTimeout:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	waitFor := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if c.PeerUp(addr) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("peer never became %s", what)
	}
	waitFor(true, "up")
	status.Store(http.StatusServiceUnavailable) // draining
	waitFor(false, "down (draining)")
	status.Store(http.StatusOK)
	waitFor(true, "up again")
}

// With the only peer down, the ring must route everything to self.
func TestOwnerFallsBackToSelfWhenPeersDown(t *testing.T) {
	c, err := New(Options{Self: "127.0.0.1:1", Peers: []string{"127.0.0.1:2"}})
	if err != nil {
		t.Fatal(err)
	}
	c.MarkPeer("127.0.0.1:2", false)
	for i := 0; i < 200; i++ {
		if o := c.Owner(testKey(i)); o != "127.0.0.1:1" {
			t.Fatalf("key %d routed to down peer %q", i, o)
		}
	}
}

// ForwardSubmit against a dead address must return ErrPeerUnavailable (the
// degraded-mode trigger), never a raw transport error.
func TestForwardSubmitPeerUnavailable(t *testing.T) {
	c, err := New(Options{
		Self:           "127.0.0.1:1",
		Peers:          []string{"127.0.0.1:9"},
		ForwardTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Port 9 (discard) is almost certainly closed; a refused connection is
	// the expected transport failure either way.
	key := testKey(7)
	_, ferr := c.ForwardSubmit(context.Background(), "127.0.0.1:9", key, []byte(`{}`), "application/json", nil)
	if !errors.Is(ferr, ErrPeerUnavailable) {
		t.Fatalf("got %v, want ErrPeerUnavailable", ferr)
	}
	// Forwarded-failure messages must identify the peer and the attempted
	// key, so the log line alone is actionable.
	for _, want := range []string{"127.0.0.1:9", key.String()} {
		if !strings.Contains(ferr.Error(), want) {
			t.Errorf("error %q does not mention %q", ferr, want)
		}
	}
	if c.Metrics().ForwardErrors.Load() != 1 {
		t.Errorf("ForwardErrors = %d, want 1", c.Metrics().ForwardErrors.Load())
	}
	if c.Metrics().ForwardSeconds.Count() != 1 {
		t.Errorf("ForwardSeconds count = %d, want 1 (failed hops are observed too)", c.Metrics().ForwardSeconds.Count())
	}
}

// A reachable peer answering non-JSON is a bad gateway, not a 500.
func TestForwardSubmitBadResponse(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get(ForwardHeader); got != "127.0.0.1:1" {
			t.Errorf("forward header = %q, want self address", got)
		}
		w.Header().Set("Content-Type", "text/html")
		w.Write([]byte("<html>not a job</html>"))
	}))
	defer peer.Close()
	addr := strings.TrimPrefix(peer.URL, "http://")
	c, err := New(Options{Self: "127.0.0.1:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	_, ferr := c.ForwardSubmit(context.Background(), addr, testKey(1), []byte(`{}`), "application/json", nil)
	if !errors.Is(ferr, ErrPeerBadResponse) {
		t.Fatalf("got %v, want ErrPeerBadResponse", ferr)
	}
	if !strings.Contains(ferr.Error(), addr) {
		t.Errorf("error %q does not mention peer %q", ferr, addr)
	}
}

// A forwarded hop must carry the request's trace context across the wire as
// a W3C traceparent header — same trace id, fresh span id.
func TestForwardPropagatesTraceContext(t *testing.T) {
	tc := obs.NewTraceContext()
	var gotHeader atomic.Value
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get(obs.TraceparentHeader))
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"id":"j-000001","state":"done"}`))
	}))
	defer peer.Close()
	addr := strings.TrimPrefix(peer.URL, "http://")
	c, err := New(Options{Self: "127.0.0.1:1", Peers: []string{addr}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.ContextWithTrace(context.Background(), tc)
	if _, err := c.ForwardSubmit(ctx, addr, testKey(3), []byte(`{}`), "application/json", nil); err != nil {
		t.Fatal(err)
	}
	hdr, _ := gotHeader.Load().(string)
	if hdr == "" {
		t.Fatal("forwarded request carried no traceparent header")
	}
	hopTC, err := obs.ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("peer received malformed traceparent %q: %v", hdr, err)
	}
	if hopTC.TraceID != tc.TraceID {
		t.Errorf("trace id changed across the hop: %s != %s", hopTC.TraceIDString(), tc.TraceIDString())
	}
	if hopTC.SpanID == tc.SpanID {
		t.Error("hop reused the parent span id; want a child span")
	}

	// Without a trace in the context, no header is sent.
	gotHeader.Store("")
	if _, err := c.ForwardSubmit(context.Background(), addr, testKey(3), []byte(`{}`), "application/json", nil); err != nil {
		t.Fatal(err)
	}
	if hdr, _ := gotHeader.Load().(string); hdr != "" {
		t.Errorf("untraced forward sent traceparent %q", hdr)
	}
}

// Read-through entries must expire after the TTL and stay bounded by the
// capacity.
func TestReadThroughTTLAndBounds(t *testing.T) {
	rt := newReadThrough(2, 30*time.Millisecond)
	k1, k2, k3 := testKey(1), testKey(2), testKey(3)
	rt.put(k1, &Reply{StatusCode: 200})
	rt.put(k2, &Reply{StatusCode: 200})
	rt.put(k3, &Reply{StatusCode: 200}) // evicts k1 (FIFO)
	if rt.get(k1) != nil {
		t.Error("k1 survived past capacity")
	}
	if rt.get(k3) == nil {
		t.Error("k3 missing right after put")
	}
	if rt.len() > 2 {
		t.Errorf("len = %d, want <= 2", rt.len())
	}
	time.Sleep(40 * time.Millisecond)
	if rt.get(k3) != nil {
		t.Error("k3 survived past TTL")
	}
}

// CachedResult must count both the remote-hit and read-through counters.
func TestCachedResultCounters(t *testing.T) {
	c, err := New(Options{Self: "127.0.0.1:1", Peers: []string{"127.0.0.1:2"}, ResultTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(7)
	if c.CachedResult(k) != nil {
		t.Fatal("hit on empty cache")
	}
	c.StoreResult(k, &Reply{StatusCode: 200, Body: []byte(`{}`)})
	if c.CachedResult(k) == nil {
		t.Fatal("miss right after store")
	}
	if got := c.Metrics().RemoteHits.Load(); got != 1 {
		t.Errorf("RemoteHits = %d, want 1", got)
	}
	if got := c.Metrics().ReadThroughHits.Load(); got != 1 {
		t.Errorf("ReadThroughHits = %d, want 1", got)
	}
}

// Ownership exposes every member, sorted by address, with self marked.
func TestOwnershipView(t *testing.T) {
	c, err := New(Options{Self: "127.0.0.1:1", Peers: []string{"127.0.0.1:3", "127.0.0.1:2"}})
	if err != nil {
		t.Fatal(err)
	}
	v := c.Ownership()
	if len(v.Members) != 3 {
		t.Fatalf("members = %#v, want 3 entries", v.Members)
	}
	if !sort.SliceIsSorted(v.Members, func(i, j int) bool { return v.Members[i].Member < v.Members[j].Member }) {
		t.Errorf("members not sorted by address: %#v", v.Members)
	}
	if v.Self != "127.0.0.1:1" || v.Replicas != 128 {
		t.Errorf("self=%q replicas=%d, want 127.0.0.1:1 / 128", v.Self, v.Replicas)
	}
	var total float64
	for _, m := range v.Members {
		if m.Self != (m.Member == "127.0.0.1:1") {
			t.Errorf("member %s: self=%v", m.Member, m.Self)
		}
		total += m.Fraction
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("fractions sum to %v, want 1", total)
	}
}

// TestOwnershipViewByteStable guards the /debug/vars dump against map-order
// nondeterminism regressing: the serialized view must be byte-identical
// across repeated renders (the old map[string]any view was not).
func TestOwnershipViewByteStable(t *testing.T) {
	c, err := New(Options{Self: "127.0.0.1:1", Peers: []string{"127.0.0.1:2", "127.0.0.1:3", "127.0.0.1:4"}})
	if err != nil {
		t.Fatal(err)
	}
	first, err := json.Marshal(c.Ownership())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		got, err := json.Marshal(c.Ownership())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, first) {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, got, first)
		}
	}
}
