// Package crc implements the CRC32 machinery Rendering Elimination builds
// its tile signatures on (paper Sections III-C and III-D):
//
//   - a "raw" CRC32: the pure polynomial remainder with zero initial state
//     and no final XOR. Unlike the pre/post-conditioned IEEE variant in
//     hash/crc32, the raw CRC is linear over GF(2), which is exactly the
//     property Algorithm 1 of the paper needs:
//
//     crc(A ‖ B) = crc(A ≪ |B|) ⊕ crc(B)
//
//   - ShiftZeros, the "left shift by b zero bits" operator (appending zero
//     bytes to a message), implemented three ways: byte-table iteration,
//     GF(2) matrix squaring (O(log n)), and the hardware LUT subunits of
//     Figures 10 and 11 (see parallel.go);
//
//   - Combine, the submessage combination step of Algorithm 1.
//
// The reflected IEEE polynomial 0xEDB88320 is used, so results can be
// cross-checked against hash/crc32 modulo its init/final conditioning (see
// the package tests).
package crc

// Poly is the reflected CRC-32 (IEEE 802.3) polynomial.
const Poly uint32 = 0xEDB88320

// byteTable[b] is the raw CRC32 of the single byte b, i.e. the state after
// feeding b into a zero-initialized register. It is the classic
// byte-at-a-time table.
var byteTable [256]uint32

// zeroTable[b] maps a CRC state byte to its contribution after shifting the
// state through one zero byte; used by ShiftZeros.
var zeroTable [256]uint32

func init() {
	for i := 0; i < 256; i++ {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = (c >> 1) ^ Poly
			} else {
				c >>= 1
			}
		}
		byteTable[i] = c
	}
	for i := 0; i < 256; i++ {
		// Shifting state s through a zero byte is Update(s, [0]):
		// table[s&0xff] ^ s>>8, whose low-byte-dependent part is byteTable.
		zeroTable[i] = byteTable[i]
	}
	initMatrices()
	initSubunitTables()
}

// Update feeds data into the raw CRC state crc and returns the new state.
// Update(0, m) is the raw CRC32 of message m.
func Update(crc uint32, data []byte) uint32 {
	for _, b := range data {
		crc = byteTable[byte(crc)^b] ^ (crc >> 8)
	}
	return crc
}

// UpdateBitwise is the shift-register reference implementation of Update
// (paper [22]); it exists to validate the table and LUT paths.
func UpdateBitwise(crc uint32, data []byte) uint32 {
	for _, b := range data {
		crc ^= uint32(b)
		for k := 0; k < 8; k++ {
			if crc&1 != 0 {
				crc = (crc >> 1) ^ Poly
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// Checksum returns the raw CRC32 of data.
func Checksum(data []byte) uint32 { return Update(0, data) }

// ShiftZeros returns the CRC state after appending n zero bytes to a message
// whose raw CRC is crc; this is the "crc(A ≪ b)" operator of Algorithm 1 with
// b = 8n bits. It iterates the zero-byte table, costing O(n).
func ShiftZeros(crc uint32, n int) uint32 {
	for ; n > 0; n-- {
		crc = zeroTable[byte(crc)] ^ (crc >> 8)
	}
	return crc
}

// Combine implements one loop iteration of Algorithm 1: given the CRC of a
// prefix A and the CRC of a submessage B of lenB bytes, it returns the CRC of
// the concatenation A ‖ B.
func Combine(crcA, crcB uint32, lenB int) uint32 {
	return ShiftZerosFast(crcA, lenB) ^ crcB
}

// --- GF(2) matrix fast path -------------------------------------------------

// gf2Matrix is a 32x32 bit matrix over GF(2); row i is the image of bit i.
type gf2Matrix [32]uint32

func (m *gf2Matrix) mulVec(v uint32) uint32 {
	var sum uint32
	for i := 0; v != 0; i, v = i+1, v>>1 {
		if v&1 != 0 {
			sum ^= m[i]
		}
	}
	return sum
}

func (m *gf2Matrix) mulMat(n *gf2Matrix) gf2Matrix {
	var out gf2Matrix
	for i := 0; i < 32; i++ {
		out[i] = m.mulVec(n[i])
	}
	return out
}

// shiftPow[k] advances a CRC state across 2^k zero bytes.
var shiftPow [32]gf2Matrix

func initMatrices() {
	// shiftPow[0]: one zero byte. Column/row i is ShiftZeros(1<<i, 1).
	var one gf2Matrix
	for i := 0; i < 32; i++ {
		one[i] = ShiftZeros(1<<uint(i), 1)
	}
	shiftPow[0] = one
	for k := 1; k < 32; k++ {
		shiftPow[k] = shiftPow[k-1].mulMat(&shiftPow[k-1])
	}
}

// ShiftZerosFast is ShiftZeros computed in O(log n) via matrix powers. It is
// the software fast path; the hardware model in parallel.go uses the paper's
// iterative LUT design instead.
func ShiftZerosFast(crc uint32, n int) uint32 {
	if n < 0 {
		panic("crc: negative zero-shift length")
	}
	for k := 0; n != 0 && k < 32; k, n = k+1, n>>1 {
		if n&1 != 0 {
			crc = shiftPow[k].mulVec(crc)
		}
	}
	return crc
}
