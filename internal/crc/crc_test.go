package crc

import (
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUpdateMatchesBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(64)
		data := make([]byte, n)
		rng.Read(data)
		init := rng.Uint32()
		if got, want := Update(init, data), UpdateBitwise(init, data); got != want {
			t.Fatalf("trial %d: Update=%08x bitwise=%08x", trial, got, want)
		}
	}
}

// The raw CRC relates to the IEEE-conditioned hash/crc32 value by
// ieee(m) = raw(m) ^ raw(0xFFFFFFFF ≪ |m|) ^ 0xFFFFFFFF, because the IEEE
// variant initializes the register to all-ones (equivalent to XORing the
// first 4 message bytes with 0xFFFFFFFF) and complements the output.
func TestRawVsIEEE(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(128)
		data := make([]byte, n)
		rng.Read(data)
		raw := Checksum(data)
		initEffect := ShiftZeros(0xFFFFFFFF, n)
		got := raw ^ initEffect ^ 0xFFFFFFFF
		if want := crc32.ChecksumIEEE(data); got != want {
			t.Fatalf("n=%d: reconstructed IEEE %08x, want %08x", n, got, want)
		}
	}
}

func TestShiftZerosMatchesUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	zeros := make([]byte, 300)
	for trial := 0; trial < 100; trial++ {
		c := rng.Uint32()
		n := rng.Intn(300)
		if got, want := ShiftZeros(c, n), Update(c, zeros[:n]); got != want {
			t.Fatalf("ShiftZeros(%08x,%d)=%08x, want %08x", c, n, got, want)
		}
	}
}

func TestShiftZerosFastMatchesSlow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		c := rng.Uint32()
		n := rng.Intn(5000)
		if got, want := ShiftZerosFast(c, n), ShiftZeros(c, n); got != want {
			t.Fatalf("fast(%08x,%d)=%08x, want %08x", c, n, got, want)
		}
	}
}

func TestShiftZerosFastNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative length")
		}
	}()
	ShiftZerosFast(1, -1)
}

// Algorithm 1: crc(A ‖ B) == Combine(crc(A), crc(B), len(B)).
func TestCombineAlgorithm1(t *testing.T) {
	f := func(a, b []byte) bool {
		whole := Checksum(append(append([]byte{}, a...), b...))
		return Combine(Checksum(a), Checksum(b), len(b)) == whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Chained combination over many submessages of random lengths equals the
// direct CRC of the concatenation — the full incremental procedure of
// Algorithm 1.
func TestIncrementalChain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var whole []byte
		var acc uint32
		for i := 0; i < 1+rng.Intn(10); i++ {
			sub := make([]byte, rng.Intn(40))
			rng.Read(sub)
			whole = append(whole, sub...)
			acc = Combine(acc, Checksum(sub), len(sub))
		}
		if want := Checksum(whole); acc != want {
			t.Fatalf("trial %d: incremental %08x, direct %08x", trial, acc, want)
		}
	}
}

// Linearity over GF(2): for equal-length messages, crc(a ⊕ b) = crc(a) ⊕ crc(b).
func TestQuickLinearity(t *testing.T) {
	f := func(a, b []byte) bool {
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]
		x := make([]byte, n)
		for i := range x {
			x[i] = a[i] ^ b[i]
		}
		return Checksum(x) == Checksum(a)^Checksum(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeUnitMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var u ComputeUnit
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(100)
		data := make([]byte, n)
		rng.Read(data)
		padded := make([]byte, PaddedLen(n))
		copy(padded, data)

		crc, shift := u.Sign(data)
		if want := Checksum(padded); crc != want {
			t.Fatalf("n=%d: unit %08x, direct %08x", n, crc, want)
		}
		if want := PaddedLen(n) / SubblockBytes; shift != want {
			t.Fatalf("n=%d: shift %d, want %d", n, shift, want)
		}
	}
}

func TestComputeUnitLatencyPaperExamples(t *testing.T) {
	// Section III-G: the average constants command updates 16 values
	// (64 bytes) => 8 cycles; the average primitive carries 3 attributes of
	// 48 bytes (144 bytes) => 18 cycles.
	var u ComputeUnit
	if _, shift := u.Sign(make([]byte, 64)); shift != 8 {
		t.Fatalf("constants block shift = %d, want 8", shift)
	}
	if u.Stats.Cycles != 8 {
		t.Fatalf("constants cycles = %d, want 8", u.Stats.Cycles)
	}
	u.Stats = UnitStats{}
	if _, shift := u.Sign(make([]byte, 144)); shift != 18 {
		t.Fatalf("primitive shift = %d, want 18", shift)
	}
	if u.Stats.Cycles != 18 {
		t.Fatalf("primitive cycles = %d, want 18", u.Stats.Cycles)
	}
	if u.Stats.LUTAccesses != 18*(SubblockBytes+4) {
		t.Fatalf("LUT accesses = %d", u.Stats.LUTAccesses)
	}
}

func TestAccumulateUnitMatchesShiftZeros(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var u AccumulateUnit
	for trial := 0; trial < 100; trial++ {
		c := rng.Uint32()
		k := rng.Intn(30)
		if got, want := u.Shift(c, k), ShiftZeros(c, k*SubblockBytes); got != want {
			t.Fatalf("Shift(%08x,%d)=%08x, want %08x", c, k, got, want)
		}
	}
	if u.Stats.LUTAccesses != 4*u.Stats.Subblocks {
		t.Fatalf("accumulate LUT accounting inconsistent: %+v", u.Stats)
	}
}

// The full hardware path (Compute unit + Accumulate unit, Algorithms 1-3)
// must reproduce the direct CRC of a concatenated tile-input message.
func TestHardwarePathEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var cu ComputeUnit
	var au AccumulateUnit
	for trial := 0; trial < 50; trial++ {
		var whole []byte
		var tileCRC uint32
		for b := 0; b < 1+rng.Intn(8); b++ {
			block := make([]byte, 1+rng.Intn(60))
			rng.Read(block)
			padded := make([]byte, PaddedLen(len(block)))
			copy(padded, block)
			whole = append(whole, padded...)

			blockCRC, shift := cu.Sign(block)
			tileCRC = au.Shift(tileCRC, shift) ^ blockCRC
		}
		if want := Checksum(whole); tileCRC != want {
			t.Fatalf("trial %d: hardware %08x, direct %08x", trial, tileCRC, want)
		}
	}
}

func TestUnitStatsAdd(t *testing.T) {
	a := UnitStats{Cycles: 1, LUTAccesses: 2, Subblocks: 3}
	a.Add(UnitStats{Cycles: 10, LUTAccesses: 20, Subblocks: 30})
	if a != (UnitStats{Cycles: 11, LUTAccesses: 22, Subblocks: 33}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestPaddedLen(t *testing.T) {
	cases := map[int]int{0: 0, 1: 8, 7: 8, 8: 8, 9: 16, 64: 64, 65: 72}
	for n, want := range cases {
		if got := PaddedLen(n); got != want {
			t.Fatalf("PaddedLen(%d)=%d, want %d", n, got, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
