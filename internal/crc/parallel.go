package crc

// This file models the table-based hardware of Section III-D and Figures
// 8-11: the Sign subunit (eight 1 KB LUTs signing one 64-bit subblock per
// cycle), the Shift subunit (advancing a 32-bit CRC state across one 64-bit
// subblock of zeros per cycle), and the Compute / Accumulate CRC units built
// from them (Algorithms 2 and 3). Each unit counts cycles and LUT accesses so
// the timing and energy models can charge for them.

// SubblockBytes is the width of one hardware subblock (8 bytes). Section
// III-G justifies this choice: wider subblocks need more LUT storage, and
// narrower ones raise signing latency.
const SubblockBytes = 8

// signLUT[i][v] is the raw CRC32 of the 8-byte message with byte v at
// position i and zeros elsewhere. Eight LUTs of 256 x 4 B = 1 KB each
// (Figure 10); the CRC of a full subblock is the XOR of the eight lookups,
// by GF(2) linearity of the raw CRC.
var signLUT [SubblockBytes][256]uint32

// shiftLUT[j][v] is the raw CRC state reached by shifting state byte v (at
// byte position j of the 32-bit state) across 8 zero bytes (Figure 11). The
// shift of a full state is the XOR of four lookups.
var shiftLUT [4][256]uint32

func initSubunitTables() {
	var msg [SubblockBytes]byte
	for i := 0; i < SubblockBytes; i++ {
		for v := 0; v < 256; v++ {
			msg = [SubblockBytes]byte{}
			msg[i] = byte(v)
			signLUT[i][v] = Update(0, msg[:])
		}
	}
	for j := 0; j < 4; j++ {
		for v := 0; v < 256; v++ {
			shiftLUT[j][v] = ShiftZeros(uint32(v)<<(8*uint(j)), SubblockBytes)
		}
	}
}

// UnitStats counts the activity of a hardware CRC unit for the energy model.
type UnitStats struct {
	Cycles      uint64 // occupancy in cycles (1 per subblock / iteration)
	LUTAccesses uint64 // individual 1 KB LUT reads
	Subblocks   uint64 // 64-bit subblocks processed
}

// Add accumulates o into s.
func (s *UnitStats) Add(o UnitStats) {
	s.Cycles += o.Cycles
	s.LUTAccesses += o.LUTAccesses
	s.Subblocks += o.Subblocks
}

// signSubblock signs one full 64-bit subblock with the eight sign LUTs.
func signSubblock(b []byte) uint32 {
	_ = b[SubblockBytes-1]
	return signLUT[0][b[0]] ^ signLUT[1][b[1]] ^ signLUT[2][b[2]] ^
		signLUT[3][b[3]] ^ signLUT[4][b[4]] ^ signLUT[5][b[5]] ^
		signLUT[6][b[6]] ^ signLUT[7][b[7]]
}

// shiftState advances a CRC state across one subblock of zeros with the four
// shift LUTs.
func shiftState(c uint32) uint32 {
	return shiftLUT[0][byte(c)] ^ shiftLUT[1][byte(c>>8)] ^
		shiftLUT[2][byte(c>>16)] ^ shiftLUT[3][byte(c>>24)]
}

// ComputeUnit is the Compute CRC unit of Figure 8. It signs a variable-length
// data block by iterating Algorithm 2 over 64-bit subblocks, producing the
// block's CRC and its length in subblocks (the "Shift Amount" register).
//
// Blocks whose length is not a multiple of 8 bytes are zero-padded to the
// next subblock; the padding convention is applied identically in every
// frame, so signature comparisons are unaffected.
type ComputeUnit struct {
	Stats UnitStats
}

// Sign signs block and returns its CRC and shift amount (subblock count).
// The hardware cost is one cycle and twelve LUT reads (8 sign + 4 shift) per
// subblock.
func (u *ComputeUnit) Sign(block []byte) (crc uint32, shiftAmount int) {
	var pad [SubblockBytes]byte
	for len(block) > 0 {
		var sb []byte
		if len(block) >= SubblockBytes {
			sb = block[:SubblockBytes]
			block = block[SubblockBytes:]
		} else {
			pad = [SubblockBytes]byte{}
			copy(pad[:], block)
			sb = pad[:]
			block = nil
		}
		crc = signSubblock(sb) ^ shiftState(crc)
		shiftAmount++
	}
	u.Stats.Cycles += uint64(shiftAmount)
	u.Stats.LUTAccesses += uint64(shiftAmount) * (SubblockBytes + 4)
	u.Stats.Subblocks += uint64(shiftAmount)
	return crc, shiftAmount
}

// PaddedLen returns the number of bytes Sign effectively processes for a
// block of n bytes (n rounded up to a whole subblock).
func PaddedLen(n int) int {
	return (n + SubblockBytes - 1) / SubblockBytes * SubblockBytes
}

// AccumulateUnit is the Accumulate CRC unit of Figure 9: a bare Shift subunit
// iterated shiftAmount times (Algorithm 3), used to left-shift a tile's
// stored CRC past a newly signed block before XOR-combining.
type AccumulateUnit struct {
	Stats UnitStats
}

// Shift advances crc across shiftAmount subblocks of zeros. Latency is
// shiftAmount cycles with four LUT reads each. Distinct tiles are
// independent, so a pipelined implementation sustains roughly one tile per
// cycle; the Signature Unit's timing model accounts for that separately.
func (u *AccumulateUnit) Shift(crc uint32, shiftAmount int) uint32 {
	for i := 0; i < shiftAmount; i++ {
		crc = shiftState(crc)
	}
	u.Stats.Cycles += uint64(shiftAmount)
	u.Stats.LUTAccesses += 4 * uint64(shiftAmount)
	u.Stats.Subblocks += uint64(shiftAmount)
	return crc
}
