package crc

import "math/bits"

// Scheme abstracts the signature function used by the Signature Unit, so the
// hash ablation of Section V ("CRC32 outperforms well-known hashing
// approaches such as XOR-based schemes") can swap implementations without
// touching the unit. A scheme signs a data block into a 32-bit value plus a
// shift amount (block length in subblocks) and folds block signatures into a
// running tile signature.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// SignBlock hashes one block (zero-padded to whole subblocks) and
	// returns its signature and length in subblocks.
	SignBlock(block []byte) (sig uint32, shiftAmount int)
	// Accumulate folds a block signature into the running signature acc,
	// where the block was shiftAmount subblocks long.
	Accumulate(acc, blockSig uint32, shiftAmount int) uint32
}

// CRC32Scheme is the paper's signature function: raw CRC32 combined with the
// zero-shift operator of Algorithm 1. It is position- and order-sensitive.
type CRC32Scheme struct{}

// Name implements Scheme.
func (CRC32Scheme) Name() string { return "crc32" }

// SignBlock implements Scheme using the fast software path (the hardware LUT
// path in ComputeUnit produces identical values; tests assert this).
func (CRC32Scheme) SignBlock(block []byte) (uint32, int) {
	n := PaddedLen(len(block))
	sig := Update(0, block)
	sig = ShiftZerosFast(sig, n-len(block))
	return sig, n / SubblockBytes
}

// Accumulate implements Scheme: crc(A ‖ B) = crc(A ≪ |B|) ⊕ crc(B).
func (CRC32Scheme) Accumulate(acc, blockSig uint32, shiftAmount int) uint32 {
	return ShiftZerosFast(acc, shiftAmount*SubblockBytes) ^ blockSig
}

// XORFoldScheme is the weakest comparison point: the XOR of all 32-bit words.
// It is insensitive to both word order and word position, so swapping two
// primitives or moving a sprite by a whole word pattern collides.
type XORFoldScheme struct{}

// Name implements Scheme.
func (XORFoldScheme) Name() string { return "xor-fold" }

// SignBlock implements Scheme.
func (XORFoldScheme) SignBlock(block []byte) (uint32, int) {
	var sig uint32
	for len(block) >= 4 {
		sig ^= word(block)
		block = block[4:]
	}
	sig ^= partialWord(block)
	return sig, 1 // length-insensitive: everything folds flat
}

// Accumulate implements Scheme.
func (XORFoldScheme) Accumulate(acc, blockSig uint32, _ int) uint32 {
	return acc ^ blockSig
}

// RotXORScheme is a stronger XOR-based scheme: rotate-left-5 then XOR per
// word, which is position-sensitive within a block, with a rotate-by-length
// fold between blocks. Still markedly weaker than CRC32 on structured data.
type RotXORScheme struct{}

// Name implements Scheme.
func (RotXORScheme) Name() string { return "rot-xor" }

// SignBlock implements Scheme.
func (RotXORScheme) SignBlock(block []byte) (uint32, int) {
	var sig uint32
	n := 0
	for len(block) >= 4 {
		sig = bits.RotateLeft32(sig, 5) ^ word(block)
		block = block[4:]
		n += 4
	}
	if len(block) > 0 {
		sig = bits.RotateLeft32(sig, 5) ^ partialWord(block)
		n += len(block)
	}
	return sig, (PaddedLen(n)) / SubblockBytes
}

// Accumulate implements Scheme.
func (RotXORScheme) Accumulate(acc, blockSig uint32, shiftAmount int) uint32 {
	return bits.RotateLeft32(acc, shiftAmount%31+1) ^ blockSig
}

// Add32Scheme folds words with modular addition; order-insensitive.
type Add32Scheme struct{}

// Name implements Scheme.
func (Add32Scheme) Name() string { return "add32" }

// SignBlock implements Scheme.
func (Add32Scheme) SignBlock(block []byte) (uint32, int) {
	var sig uint32
	for len(block) >= 4 {
		sig += word(block)
		block = block[4:]
	}
	sig += partialWord(block)
	return sig, 1
}

// Accumulate implements Scheme.
func (Add32Scheme) Accumulate(acc, blockSig uint32, _ int) uint32 {
	return acc + blockSig
}

// Schemes lists every available signature scheme, CRC32 first.
func Schemes() []Scheme {
	return []Scheme{CRC32Scheme{}, RotXORScheme{}, XORFoldScheme{}, Add32Scheme{}}
}

func word(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func partialWord(b []byte) uint32 {
	var w uint32
	for i, v := range b {
		w |= uint32(v) << (8 * uint(i))
	}
	return w
}
