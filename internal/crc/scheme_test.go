package crc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Every scheme must be deterministic: signing the same blocks in the same
// order yields the same signature.
func TestSchemesDeterministic(t *testing.T) {
	for _, s := range Schemes() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			f := func(blocks [][]byte) bool {
				run := func() uint32 {
					var acc uint32
					for _, b := range blocks {
						sig, shift := s.SignBlock(b)
						acc = s.Accumulate(acc, sig, shift)
					}
					return acc
				}
				return run() == run()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The CRC32 scheme must agree exactly with the hardware unit path.
func TestCRC32SchemeMatchesHardware(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	s := CRC32Scheme{}
	var cu ComputeUnit
	var au AccumulateUnit
	for trial := 0; trial < 100; trial++ {
		var swAcc, hwAcc uint32
		for b := 0; b < 1+rng.Intn(6); b++ {
			block := make([]byte, 1+rng.Intn(70))
			rng.Read(block)
			sig, shift := s.SignBlock(block)
			swAcc = s.Accumulate(swAcc, sig, shift)
			hsig, hshift := cu.Sign(block)
			hwAcc = au.Shift(hwAcc, hshift) ^ hsig
			if sig != hsig || shift != hshift {
				t.Fatalf("block sig mismatch: sw %08x/%d hw %08x/%d", sig, shift, hsig, hshift)
			}
		}
		if swAcc != hwAcc {
			t.Fatalf("accumulated mismatch: sw %08x hw %08x", swAcc, hwAcc)
		}
	}
}

// CRC32 distinguishes reordered blocks; xor-fold and add32 do not. This is
// the structural weakness behind the paper's "CRC32 outperforms XOR-based
// schemes" claim, pinned down as a unit test.
func TestOrderSensitivity(t *testing.T) {
	a := []byte("primitive-A-attributes-0123456789abcdef")
	b := []byte("primitive-B-attributes-fedcba9876543210")

	run := func(s Scheme, blocks ...[]byte) uint32 {
		var acc uint32
		for _, blk := range blocks {
			sig, shift := s.SignBlock(blk)
			acc = s.Accumulate(acc, sig, shift)
		}
		return acc
	}

	if run(CRC32Scheme{}, a, b) == run(CRC32Scheme{}, b, a) {
		t.Fatal("crc32 failed to distinguish block order")
	}
	if run(RotXORScheme{}, a, b) == run(RotXORScheme{}, b, a) {
		t.Fatal("rot-xor should distinguish block order for distinct blocks")
	}
	if run(XORFoldScheme{}, a, b) != run(XORFoldScheme{}, b, a) {
		t.Fatal("xor-fold unexpectedly order-sensitive")
	}
	if run(Add32Scheme{}, a, b) != run(Add32Scheme{}, b, a) {
		t.Fatal("add32 unexpectedly order-sensitive")
	}
}

// xor-fold collides when a value toggles twice (self-inverse), e.g. a sprite
// moving away and an identical sprite appearing elsewhere in the stream.
func TestXORFoldSelfInverseCollision(t *testing.T) {
	s := XORFoldScheme{}
	x := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	sigX, sh := s.SignBlock(x)
	acc := s.Accumulate(0, sigX, sh)
	acc = s.Accumulate(acc, sigX, sh)
	if acc != 0 {
		t.Fatalf("xor-fold double-insert = %08x, want 0 (collision with empty)", acc)
	}
	// CRC32 does not collapse the same way.
	c := CRC32Scheme{}
	sigC, shC := c.SignBlock(x)
	accC := c.Accumulate(c.Accumulate(0, sigC, shC), sigC, shC)
	if accC == 0 {
		t.Fatal("crc32 unexpectedly collapsed double-insert to empty signature")
	}
}

// Measure random-collision behaviour: over random distinct block streams the
// schemes should almost never collide; the point of the ablation harness is
// structured (adversarial) data, but sanity-check randomness here.
func TestRandomCollisionRates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const trials = 2000
	for _, s := range Schemes() {
		seen := make(map[uint32]int, trials)
		collisions := 0
		for i := 0; i < trials; i++ {
			block := make([]byte, 48)
			rng.Read(block)
			sig, shift := s.SignBlock(block)
			acc := s.Accumulate(0, sig, shift)
			if _, dup := seen[acc]; dup {
				collisions++
			}
			seen[acc] = i
		}
		// Birthday bound: expected ~ trials^2/2^33 < 1; allow small slack.
		if collisions > 3 {
			t.Fatalf("%s: %d random collisions in %d trials", s.Name(), collisions, trials)
		}
	}
}

func TestPartialWord(t *testing.T) {
	if partialWord(nil) != 0 {
		t.Fatal("partialWord(nil) != 0")
	}
	if got := partialWord([]byte{0xAB}); got != 0xAB {
		t.Fatalf("partialWord 1 byte = %08x", got)
	}
	if got := partialWord([]byte{0x01, 0x02, 0x03}); got != 0x030201 {
		t.Fatalf("partialWord 3 bytes = %08x", got)
	}
}
