package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// Two plans with the same seed must make identical decisions at every site,
// independent of how other sites are interleaved.
func TestDeterministicAcrossInterleavings(t *testing.T) {
	build := func() *Plan {
		return New(42).
			With("a", Site{Prob: 0.3, Kinds: []Kind{Transient}}).
			With("b", Site{Prob: 0.5, Kinds: []Kind{Transient, Corrupt}})
	}
	draw := func(p *Plan, site string, n int) []string {
		var out []string
		for i := 0; i < n; i++ {
			if err := p.Check(site); err != nil {
				out = append(out, err.Error())
			} else {
				out = append(out, "")
			}
		}
		return out
	}

	// Plan 1: all of a, then all of b. Plan 2: interleaved.
	p1 := build()
	a1 := draw(p1, "a", 50)
	b1 := draw(p1, "b", 50)

	p2 := build()
	var a2, b2 []string
	for i := 0; i < 50; i++ {
		a2 = append(a2, draw(p2, "a", 1)...)
		b2 = append(b2, draw(p2, "b", 1)...)
	}

	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] {
			t.Fatalf("draw %d differs across interleavings: a %q vs %q, b %q vs %q",
				i, a1[i], a2[i], b1[i], b2[i])
		}
	}
}

func TestLimitBoundsInjections(t *testing.T) {
	p := New(1).With("s", Site{Prob: 1, Limit: 3, Kinds: []Kind{Transient}})
	fired := 0
	for i := 0; i < 100; i++ {
		if p.Check("s") != nil {
			fired++
		}
	}
	if fired != 3 || p.Fired("s") != 3 {
		t.Fatalf("fired %d (Fired()=%d), want 3", fired, p.Fired("s"))
	}
}

func TestErrorMatchesSentinel(t *testing.T) {
	p := New(1).With("s", Site{Prob: 1, Limit: 1, Kinds: []Kind{Transient}})
	err := p.Check("s")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected match", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != "s" || fe.Seq != 1 {
		t.Fatalf("bad fault error %+v", err)
	}
}

func TestPanicKind(t *testing.T) {
	p := New(1).With("s", Site{Prob: 1, Limit: 1, Kinds: []Kind{Panic}})
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Kind != Panic {
			t.Fatalf("recovered %v, want *Error with Panic kind", r)
		}
	}()
	p.Check("s")
	t.Fatal("Check did not panic")
}

func TestLatencyKindSleepsAndReturnsNil(t *testing.T) {
	p := New(1).With("s", Site{Prob: 1, Limit: 1, Kinds: []Kind{Latency}, Latency: 20 * time.Millisecond})
	start := time.Now()
	if err := p.Check("s"); err != nil {
		t.Fatalf("latency fault returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slept only %v, want >= 20ms", d)
	}
}

func TestMangleDeterministicAndNonIdentity(t *testing.T) {
	e := &Error{Site: "trace.decode", Kind: Corrupt, Seq: 1}
	in := bytes.Repeat([]byte{0xAB}, 256)
	m1 := e.Mangle(in)
	m2 := e.Mangle(in)
	if !bytes.Equal(m1, m2) {
		t.Fatal("Mangle is not deterministic")
	}
	if bytes.Equal(m1, in) {
		t.Fatal("Mangle returned identical bytes")
	}
	if !bytes.Equal(in, bytes.Repeat([]byte{0xAB}, 256)) {
		t.Fatal("Mangle modified its input")
	}
}

func TestParse(t *testing.T) {
	p, err := Parse(7, "dram.read:panic:0.5:2,jobs.worker:latency:1:0:5ms")
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Fatal("nil plan for non-empty spec")
	}
	p.mu.Lock()
	dr, jw := p.sites["dram.read"], p.sites["jobs.worker"]
	p.mu.Unlock()
	if dr == nil || dr.Prob != 0.5 || dr.Limit != 2 || dr.Kinds[0] != Panic {
		t.Fatalf("dram.read site = %+v", dr)
	}
	if jw == nil || jw.Kinds[0] != Latency || jw.Latency != 5*time.Millisecond {
		t.Fatalf("jobs.worker site = %+v", jw)
	}

	if p, err := Parse(1, ""); err != nil || p != nil {
		t.Fatalf("empty spec: plan %v err %v, want nil/nil", p, err)
	}
	for _, bad := range []string{"x", "a:b:c", "s:transient:2", "s:panic:0.1:-1", "s:panic:0.1:0:zz"} {
		if _, err := Parse(1, bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

// The disabled (nil-plan) path must cost nothing: the production hooks stay
// wired unconditionally, like the obs tracer's nil path.
func TestDisabledZeroAlloc(t *testing.T) {
	var p *Plan
	if n := testing.AllocsPerRun(1000, func() {
		if p.Check(SiteDRAMRead) != nil {
			t.Fatal("nil plan injected")
		}
	}); n != 0 {
		t.Fatalf("nil-plan Check allocates %v times per op, want 0", n)
	}
	// A live plan with the site unregistered must not allocate either.
	live := New(1).With("other", Site{Prob: 1})
	if n := testing.AllocsPerRun(1000, func() {
		if live.Check(SiteDRAMRead) != nil {
			t.Fatal("unregistered site injected")
		}
	}); n != 0 {
		t.Fatalf("unregistered-site Check allocates %v times per op, want 0", n)
	}
}

func BenchmarkCheckDisabled(b *testing.B) {
	var p *Plan
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p.Check(SiteDRAMRead) != nil {
			b.Fatal("nil plan injected")
		}
	}
}
