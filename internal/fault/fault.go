// Package fault is a seeded, deterministic fault-injection framework for
// chaos-testing the simulation stack. A Plan maps instrumented sites (by
// name) to a probability, a bounded budget, and a set of fault kinds; each
// site draws from its own PRNG seeded from (plan seed, site name), so the
// decision sequence at one site never depends on how often other sites are
// exercised or on goroutine interleaving — the totals a chaos test observes
// are reproducible from the seed alone.
//
// The disabled path is free: a nil *Plan is a valid receiver and Check
// returns immediately without allocating (benchmarked at 0 allocs/op, like
// the obs tracer's nil path), so production code can keep the hooks wired
// unconditionally.
//
// # Instrumented sites
//
// These are every built-in hook in the stack, usable in -inject specs
// (site:kind:prob[:limit[:latency]]):
//
//	dram.read      DRAM model read path. Panic = uncorrectable memory
//	               fault; Latency = saturated memory controller (host time
//	               only, never changes simulated results).
//	dram.write     DRAM model write path; same kinds as dram.read.
//	trace.decode   Before a job decodes an uploaded trace binary. Corrupt
//	               additionally runs a deterministically mangled copy
//	               through the decoder, which must fail gracefully.
//	jobs.worker    In the job pool between dequeue and execution. Panic
//	               escapes per-attempt recovery and exercises worker
//	               replacement.
//	server.accept  In the HTTP handler before routing. Transient/Corrupt
//	               shed the request with 503; Panic exercises handler
//	               recovery.
//	store.write    Durability-layer file writes (WAL appends, snapshot
//	               bodies). Transient models a full or failing disk.
//	store.sync     Durability-layer fsync calls. Transient models an fsync
//	               error — the write may or may not have reached the
//	               platter.
//	store.rename   The atomic rename that publishes a snapshot. Transient
//	               models a crash between temp write and publish.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Instrumented site names. Sites are just strings — these constants cover
// the stack's built-in hooks.
const (
	// SiteDRAMRead / SiteDRAMWrite fire inside the DRAM model's access
	// path. Injected panics model uncorrectable memory faults; latency
	// spikes model a saturated memory controller (host-time only — they
	// never change simulated results).
	SiteDRAMRead  = "dram.read"
	SiteDRAMWrite = "dram.write"
	// SiteTraceDecode fires before a job decodes an uploaded trace binary;
	// the Corrupt kind hands the decoder deterministically mangled bytes.
	SiteTraceDecode = "trace.decode"
	// SiteWorker fires in the job pool between dequeue and execution; the
	// Panic kind escapes per-attempt recovery and exercises worker
	// replacement.
	SiteWorker = "jobs.worker"
	// SiteServerAccept fires in the HTTP handler before routing.
	SiteServerAccept = "server.accept"
	// SiteStoreWrite / SiteStoreSync / SiteStoreRename fire in the
	// durability layer (internal/store) before file writes, fsyncs and the
	// atomic snapshot-publishing rename respectively, so seeded plans can
	// exercise disk failures. Transient is the natural kind for all three;
	// recovered state must stay uncorrupted no matter where they fire.
	SiteStoreWrite  = "store.write"
	SiteStoreSync   = "store.sync"
	SiteStoreRename = "store.rename"
)

// Kind is the failure mode an injection takes.
type Kind uint8

// Fault kinds.
const (
	Transient Kind = iota // an error worth retrying
	Panic                 // a panic thrown from the site
	Latency               // a host-time sleep (triggers deadlines, changes no results)
	Corrupt               // deterministically mangled bytes (see Error.Mangle)
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Panic:
		return "panic"
	case Latency:
		return "latency"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind is the inverse of String, for flag values.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "transient":
		return Transient, nil
	case "panic":
		return Panic, nil
	case "latency":
		return Latency, nil
	case "corrupt":
		return Corrupt, nil
	}
	return Transient, fmt.Errorf("fault: unknown kind %q (want transient, panic, latency or corrupt)", s)
}

// Site configures injection at one site.
type Site struct {
	// Prob is the per-draw injection probability in [0, 1].
	Prob float64
	// Kinds are the candidate failure modes; an injection picks one
	// uniformly. Empty defaults to Transient only.
	Kinds []Kind
	// Limit bounds how many faults the site may inject in total; 0 means
	// unlimited. Chaos tests use it to keep retry budgets sufficient.
	Limit int
	// Latency is the sleep duration for Latency-kind faults; default 1ms.
	Latency time.Duration
}

// ErrInjected is the sentinel every injected fault error matches with
// errors.Is, so retry policies can treat injections as transient.
var ErrInjected = errors.New("fault: injected")

// Error is one injected fault. Its fields identify the injection
// deterministically: Seq is the site's 1-based fired count.
type Error struct {
	Site string
	Kind Kind
	Seq  int
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s at %s (#%d)", e.Kind, e.Site, e.Seq)
}

// Is matches ErrInjected.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Mangle returns a corrupted copy of b, deterministic in the error's
// identity: a handful of byte positions XORed with non-zero values. The
// input is never modified.
func (e *Error) Mangle(b []byte) []byte {
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(int64(e.Seq)*7919 + int64(len(b))))
	n := 1 + rng.Intn(8)
	for i := 0; i < n; i++ {
		out[rng.Intn(len(out))] ^= byte(1 + rng.Intn(255))
	}
	return out
}

// siteState is one registered site's mutable state.
type siteState struct {
	Site
	rng   *rand.Rand
	fired int
}

// Plan is a registry of sites to inject faults at. The zero value of the
// pointer (nil) is a valid, disabled plan. Check is safe for concurrent use.
type Plan struct {
	seed int64

	mu    sync.Mutex
	sites map[string]*siteState
}

// New creates an empty plan with the given seed.
func New(seed int64) *Plan {
	return &Plan{seed: seed, sites: make(map[string]*siteState)}
}

// Seed returns the plan's seed, for logging reproduction instructions.
func (p *Plan) Seed() int64 {
	if p == nil {
		return 0
	}
	return p.seed
}

// With registers (or replaces) a site and returns the plan for chaining.
// The site's PRNG is seeded from the plan seed and the site name, so
// registration order and cross-site interleaving never change a site's
// decision sequence.
func (p *Plan) With(name string, s Site) *Plan {
	if len(s.Kinds) == 0 {
		s.Kinds = []Kind{Transient}
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	p.mu.Lock()
	p.sites[name] = &siteState{
		Site: s,
		rng:  rand.New(rand.NewSource(p.seed ^ int64(h.Sum64()))),
	}
	p.mu.Unlock()
	return p
}

// Check draws once at the named site. It returns nil on a nil plan, an
// unregistered site, an exhausted budget, or a no-fault draw. Otherwise it
// injects: Panic panics with a *Error, Latency sleeps and returns nil, and
// Transient/Corrupt return a *Error (matching ErrInjected) for the caller
// to surface.
func (p *Plan) Check(site string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	st := p.sites[site]
	if st == nil || (st.Limit > 0 && st.fired >= st.Limit) || st.Prob <= 0 {
		p.mu.Unlock()
		return nil
	}
	if st.rng.Float64() >= st.Prob {
		p.mu.Unlock()
		return nil
	}
	st.fired++
	e := &Error{Site: site, Kind: st.Kinds[st.rng.Intn(len(st.Kinds))], Seq: st.fired}
	lat := st.Latency
	p.mu.Unlock()

	switch e.Kind {
	case Latency:
		if lat <= 0 {
			lat = time.Millisecond
		}
		time.Sleep(lat)
		return nil
	case Panic:
		panic(e)
	}
	return e
}

// Fired returns how many faults the named site has injected so far
// (latency spikes included).
func (p *Plan) Fired(site string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if st := p.sites[site]; st != nil {
		return st.fired
	}
	return 0
}

// Parse builds a plan from a comma-separated flag value of
// site:kind:prob[:limit[:latency]] entries, e.g.
//
//	dram.read:panic:0.001:2,jobs.worker:transient:0.3,server.accept:latency:0.1:0:50ms
//
// An empty spec returns a nil (disabled) plan.
func Parse(seed int64, spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := New(seed)
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 3 || len(parts) > 5 {
			return nil, fmt.Errorf("fault: bad spec entry %q (want site:kind:prob[:limit[:latency]])", entry)
		}
		kind, err := ParseKind(parts[1])
		if err != nil {
			return nil, err
		}
		prob, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault: bad probability %q in %q", parts[2], entry)
		}
		s := Site{Prob: prob, Kinds: []Kind{kind}}
		if len(parts) >= 4 {
			if s.Limit, err = strconv.Atoi(parts[3]); err != nil || s.Limit < 0 {
				return nil, fmt.Errorf("fault: bad limit %q in %q", parts[3], entry)
			}
		}
		if len(parts) == 5 {
			if s.Latency, err = time.ParseDuration(parts[4]); err != nil {
				return nil, fmt.Errorf("fault: bad latency %q in %q", parts[4], entry)
			}
		}
		p.With(parts[0], s)
	}
	return p, nil
}
