package gpusim

import (
	"testing"

	"rendelim/internal/api"
	"rendelim/internal/workload"
)

// The zero-allocation contract of the frame hot path (see DESIGN.md "Memory
// discipline"): after warm-up, the steady-state frame loop performs
//
//   - 0 allocations per tile in the decide and render stages, under every
//     technique — pooled access logs, worker fragment scratch and memo
//     tables absorb all per-tile work;
//   - 0 allocations per frame with serial raster execution;
//   - only O(workers) bounded allocations per frame with parallel raster
//     execution (the goroutine spawns and their closures).
//
// These tests are the enforcement teeth: they fail the build if a change
// reintroduces allocator churn into the frame loop, before it ever shows up
// as a rebench regression.

// warmSim builds a simulator and runs the whole trace through it twice, so
// every pooled buffer (access logs, binner bins, geometry scratch, memo
// tables) has grown to the workload's high-water mark.
func warmSim(t testing.TB, tech Technique, workers int) (*Simulator, *workloadTrace) {
	t.Helper()
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: 4, Seed: 1})
	cfg := DefaultConfig()
	cfg.Technique = tech
	cfg.TileWorkers = workers
	sim, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for i := range tr.Frames {
			sim.RunFrame(&tr.Frames[i])
		}
	}
	return sim, &workloadTrace{tr: tr}
}

// workloadTrace cycles trace frames for steady-state measurement.
type workloadTrace struct {
	tr *api.Trace
	i  int
}

func (w *workloadTrace) next() *api.Frame {
	f := &w.tr.Frames[w.i%len(w.tr.Frames)]
	w.i++
	return f
}

// TestAllocsPerTileDecideRender asserts the core budget: the decide+render
// stages allocate nothing per tile in steady state, for every technique.
func TestAllocsPerTileDecideRender(t *testing.T) {
	for _, tech := range []Technique{Baseline, RE, TE, Memo} {
		t.Run(tech.String(), func(t *testing.T) {
			s, _ := warmSim(t, tech, 1)
			n := s.fbuf.NumTiles()
			w := s.workers[0]
			pass := func() {
				tiles := s.arena.tiles(n)
				for tile := 0; tile < n; tile++ {
					res := &tiles[tile]
					s.decideTile(tile, res)
					if !res.skipped {
						w.renderTile(tile, res, nil)
					}
				}
			}
			// The bare decide/render loop differs from a full frame (no
			// frameIdx advance, so Memo sees no cross-frame reuse and
			// inserts more); two passes let the pooled tables reach this
			// loop's own high-water mark before measuring.
			pass()
			pass()
			avg := testing.AllocsPerRun(10, pass)
			if avg != 0 {
				t.Errorf("decide+render over %d tiles: %.1f allocs, want 0 (%.4f/tile)",
					n, avg, avg/float64(n))
			}
		})
	}
}

// TestAllocsPerFrameSerial asserts the whole frame loop — geometry, raster,
// commit, stats — is allocation-free in steady state with serial raster
// execution.
func TestAllocsPerFrameSerial(t *testing.T) {
	for _, tech := range []Technique{Baseline, RE, TE, Memo} {
		t.Run(tech.String(), func(t *testing.T) {
			s, frames := warmSim(t, tech, 1)
			avg := testing.AllocsPerRun(8, func() {
				s.RunFrame(frames.next())
			})
			if avg != 0 {
				t.Errorf("RunFrame: %.1f allocs/frame, want 0", avg)
			}
		})
	}
}

// TestAllocsPerFrameParallel asserts the parallel raster phase stays within
// its bounded per-frame budget: the only allocations permitted are the
// worker goroutine spawns and the coordination state they capture, which is
// O(workers) and independent of tile count or scene complexity.
func TestAllocsPerFrameParallel(t *testing.T) {
	const workers = 4
	for _, tech := range []Technique{Baseline, RE} {
		t.Run(tech.String(), func(t *testing.T) {
			s, frames := warmSim(t, tech, workers)
			avg := testing.AllocsPerRun(8, func() {
				s.RunFrame(frames.next())
			})
			// goroutine + closure per worker, plus the shared WaitGroup and
			// work counter; generous slack for runtime bookkeeping.
			budget := float64(2*workers + 4)
			if avg > budget {
				t.Errorf("RunFrame(workers=%d): %.1f allocs/frame, budget %.0f", workers, avg, budget)
			}
		})
	}
}

// TestAllocsFrameBufferCRC: per-frame CRC checks ride the arena's pooled
// serialization buffer, so determinism soaks can sign every frame for free.
func TestAllocsFrameBufferCRC(t *testing.T) {
	s, _ := warmSim(t, Baseline, 1)
	s.FrameBufferCRC() // size the pooled buffer
	if avg := testing.AllocsPerRun(10, func() { s.FrameBufferCRC() }); avg != 0 {
		t.Errorf("FrameBufferCRC: %.1f allocs, want 0", avg)
	}
}
