package gpusim

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"rendelim/internal/api"
	"rendelim/internal/crc"
	"rendelim/internal/fb"
	"rendelim/internal/geom"
	"rendelim/internal/obs"
	"rendelim/internal/rast"
	"rendelim/internal/shader"
	"rendelim/internal/texture"
	"rendelim/internal/tiling"
	"rendelim/internal/timing"
)

// The raster phase runs as a three-stage per-frame pipeline so tiles can be
// rendered on host worker goroutines without changing a single simulated
// number:
//
//  1. decide (serial, tile order): the RE signature check. It mutates shared
//     Signature Unit counters, so it runs exactly where the hardware would
//     perform it — before any tile is scheduled.
//  2. render (parallel): the expensive functional work — Parameter Buffer
//     walk, rasterization, early-Z, fragment shading, blending, memoization,
//     TE color signing and the ground-truth color compare — using only
//     per-worker and per-tile state. Instead of touching the shared
//     (stateful, order-sensitive) cache and DRAM models, a worker records
//     every simulated memory access into the tile's access log.
//  3. commit (serial, tile order): replays each tile's access log through
//     the shared tile/texture/L2/DRAM hierarchy — the LRU stacks and DRAM
//     row buffers therefore observe exactly the access order of a serial
//     run — then performs the TE store/match, flushes the tile to the Frame
//     Buffer, and folds the tile's stats shard into the frame's Stats.
//
// Functional results are independent of the memory models (caches are
// address-domain only; texel values come from the texture store), so the
// render stage needs no memory-system state, and the commit replay
// reproduces timing, traffic and energy activity bit-for-bit. With
// TileWorkers <= 1 the three stages run inline per tile, which is the
// pre-existing serial execution order.

// tileAccess is one recorded simulated memory access of the render stage.
type tileAccess struct {
	addr uint64
	size int32
	unit int8 // texUnitPB for a Parameter Buffer read, else the texture unit
}

// texUnitPB marks an access to the Parameter Buffer through the Tile Cache.
const texUnitPB int8 = -1

// tileShard is the per-tile slice of frame statistics the render stage
// produces; commit folds it into the frame's Stats in tile order.
type tileShard struct {
	quadsTested     uint64
	fragsEarlyZKill uint64
	fragsRasterized uint64
	fragsShaded     uint64
	fragsMemoReused uint64
	depthBufAcc     uint64
	colorBufAcc     uint64
	memoLookups     uint64
	memoHits        uint64
}

// tileResult carries everything one tile's render produced that commit
// needs. Entries are reused across frames; access logs keep their capacity.
type tileResult struct {
	skipped bool // RE bypassed the tile; nothing was rendered

	tw       timing.TileWork
	shard    tileShard
	accesses []tileAccess
	tb       fb.TileBuffer
	eqColor  bool // ground-truth color compare against the back buffer

	teSig      uint32
	teCRCStats crc.UnitStats
}

// reset prepares the entry for a new frame, keeping allocated capacity.
//
//re:hotpath
func (r *tileResult) reset() {
	r.skipped = false
	r.tw = timing.TileWork{}
	r.shard = tileShard{}
	r.accesses = r.accesses[:0]
	r.eqColor = false
	r.teSig = 0
	r.teCRCStats = crc.UnitStats{}
}

// rasterWorker is the private mutable state one raster goroutine needs: a
// fragment-shader VM, a recording texture sampler, the memo hasher and a
// private CRC unit for TE color signing. Workers persist across frames.
type rasterWorker struct {
	s  *Simulator
	id int

	fsExec    shader.Exec
	sampler   workerSampler
	hasher    fragmentHasher
	frag      rast.Fragment // rasterizer fragment scratch (RasterizeInto)
	teCRC     crc.ComputeUnit
	teByteBuf [fb.TileSize * fb.TileSize * 4]byte

	// tr is the worker's own trace track ("raster worker N"); lazily opened
	// so untraced runs pay nothing.
	tr *obs.Thread
}

// workerSampler adapts the texture store to the shader VM, recording each
// texel address into the current tile's access log instead of charging the
// shared texture caches (commit replays the log).
type workerSampler struct {
	res *tileResult
	tex [api.MaxTexUnits]*texture.Texture
}

// Sample implements shader.Sampler. The address-recording callback is a
// capture-free closure over the receiver, so it does not allocate per call;
// the access log append is arena-backed (capacity survives reset).
//
//re:hotpath
func (ws *workerSampler) Sample(unit int, u, v float32) geom.Vec4 {
	t := ws.tex[unit]
	if t == nil {
		return geom.Vec4{}
	}
	//lint:ignore hotpathalloc the closure captures only ws and unit, both live across the call already; escape analysis keeps it on the stack (alloc tests prove 0/tile)
	return t.Sample(u, v, func(addr uint64) {
		//re:arena
		ws.res.accesses = append(ws.res.accesses, tileAccess{addr: addr, size: 4, unit: int8(unit)})
	})
}

// thread returns the worker's trace track, opening it on first use.
func (w *rasterWorker) thread() *obs.Thread {
	if w.tr == nil && w.s.tracer != nil {
		w.tr = w.s.tracer.Thread(fmt.Sprintf("raster worker %d", w.id))
	}
	return w.tr
}

// newRasterWorker builds one worker bound to the simulator's shared
// read-only tables.
func newRasterWorker(s *Simulator, id int) *rasterWorker {
	w := &rasterWorker{s: s, id: id}
	w.fsExec.Sampler = &w.sampler
	return w
}

// decideTile is the serial pre-raster stage: the RE signature check for one
// tile, charging Signature Unit costs in tile order exactly like the
// hardware's raster scheduler.
//
//re:hotpath
func (s *Simulator) decideTile(tile int, res *tileResult) {
	res.reset()
	if s.cfg.Technique == RE && !s.re.Disabled() {
		res.tw.CompareCycles = 4
		if s.tr != nil {
			s.tr.BeginArg("re-check", "tile", int64(tile))
		}
		res.skipped = s.re.ShouldSkip(tile)
		if s.tr != nil {
			s.tr.End() // re-check
		}
	}
}

// renderTile is the parallel stage: the whole functional Raster Pipeline for
// one tile, against per-worker and per-tile state only. tr is the trace
// track to emit spans on (the worker's own track under parallel execution).
//
//re:hotpath
func (w *rasterWorker) renderTile(tile int, res *tileResult, tr *obs.Thread) {
	s := w.s
	rect := s.fbuf.TileRect(tile)
	res.tb.Clear(s.clearColor)
	bin := s.binner.Bin(tile)
	if tr != nil {
		tr.BeginArg("raster-tile", "tile", int64(tile))
	}

	// Tile Scheduler: record the pointer-list and primitive fetches for the
	// commit replay through the Tile Cache.
	for i, e := range bin {
		//re:arena
		res.accesses = append(res.accesses,
			tileAccess{addr: s.binner.PtrAddr(tile) + uint64(i)*tiling.PtrEntryBytes, size: tiling.PtrEntryBytes, unit: texUnitPB},
			tileAccess{addr: e.Addr, size: int32(e.Bytes), unit: texUnitPB})
		res.tw.FetchBytes += uint64(e.Bytes) + tiling.PtrEntryBytes
	}

	fsBefore := w.fsExec.Counts.Instructions
	if tr != nil {
		tr.Begin("fragment-shading")
	}
	// PFR pairing: the second frame of each pair may reuse the first's
	// same-tile entries; the first of a pair only reuses intra-frame.
	crossFrame := s.frameIdx%2 == 1
	var memoCur *memoTable
	if s.cfg.Technique == Memo {
		memoCur = s.memo.tileTable(tile)
	}
	var tileFrags uint64
	st := &res.shard
	w.sampler.res = res

	for _, e := range bin {
		tri := &s.arena.tris[e.Ref.Tri]
		draw := &s.arena.draws[e.Ref.Draw]
		fsProg := s.programs[draw.pipe.FS]
		for u := range w.sampler.tex {
			w.sampler.tex[u] = s.textures[draw.pipe.Tex[u]]
		}
		w.fsExec.Consts = draw.uniforms[:]
		res.tw.SetupAttrs += uint64(3 * e.NumAttrs * 4)

		depthTest := draw.pipe.DepthTest
		depthWrite := draw.pipe.DepthWrite
		blend := draw.pipe.Blend

		tri.st.RasterizeInto(rect, &w.frag,
			//lint:ignore hotpathalloc the quad closure is consumed inside the call and never stored; escape analysis stack-allocates it (alloc tests prove 0/tile)
			func(qx, qy int, mask uint8) {
				res.tw.Quads++
				st.quadsTested++
				st.depthBufAcc += 2 // test + conditional update
			},
			//lint:ignore hotpathalloc the fragment closure is consumed inside the call and never stored; escape analysis stack-allocates it (alloc tests prove 0/tile)
			func(f *rast.Fragment) {
				idx := fb.Idx(f.X-rect.X0, f.Y-rect.Y0)
				if depthTest {
					if f.Z >= res.tb.Depth[idx] {
						st.fragsEarlyZKill++
						return
					}
					if depthWrite {
						res.tb.Depth[idx] = f.Z
					}
				}
				st.fragsRasterized++
				tileFrags++

				var color geom.Vec4
				reused := false
				if s.cfg.Technique == Memo {
					mask := s.fsMasks[draw.pipe.FS]
					h := w.hasher.hash(uint8(draw.pipe.FS), [4]uint8{
						uint8(draw.pipe.Tex[0]), uint8(draw.pipe.Tex[1]),
						uint8(draw.pipe.Tex[2]), uint8(draw.pipe.Tex[3]),
					}, mask.in, mask.consts, draw.uniforms[:], &f.Var)
					st.memoLookups++
					if c, ok := s.memo.lookup(memoCur, tile, h, crossFrame); ok {
						color = c
						reused = true
						st.memoHits++
						st.fragsMemoReused++
					}
					if !reused {
						color = w.shadeFragment(fsProg, f)
						st.fragsShaded++
						s.memo.insert(memoCur, h, color)
					}
				} else {
					color = w.shadeFragment(fsProg, f)
					st.fragsShaded++
				}

				packed := texture.PackColor(color)
				if blend == api.BlendAlpha {
					dst := texture.UnpackColor(res.tb.Color[idx])
					a := color.W
					out := color.Scale(a).Add(dst.Scale(1 - a))
					out.W = a + dst.W*(1-a)
					packed = texture.PackColor(out)
					st.colorBufAcc++ // destination read
				}
				res.tb.Color[idx] = packed
				st.colorBufAcc++
			})
	}
	if s.cfg.Technique == Memo {
		s.memo.commitTile(tile, memoCur)
	}
	res.tw.FSInstructions = w.fsExec.Counts.Instructions - fsBefore
	res.tw.BlendFrags = tileFrags
	if tr != nil {
		tr.End() // fragment-shading
	}

	// Ground-truth classification reads the back buffer, which only commit
	// mutates — and only a tile's own commit touches its rect, after this.
	if s.cfg.TrackGroundTruth {
		res.eqColor = s.fbuf.TileEqualsBack(tile, &res.tb)
	}

	// Transaction Elimination: sign the rendered colors with the worker's
	// private CRC unit; commit merges the stats delta and does store/match.
	if s.cfg.Technique == TE {
		tilew := rect.X1 - rect.X0
		npx := rect.Area()
		for i := 0; i < npx; i++ {
			binary.LittleEndian.PutUint32(w.teByteBuf[i*4:], res.tb.Color[fb.Idx(i%tilew, i/tilew)])
		}
		before := w.teCRC.Stats
		res.teSig, _ = w.teCRC.Sign(w.teByteBuf[:npx*4])
		res.teCRCStats = w.teCRC.Stats
		res.teCRCStats.Cycles -= before.Cycles
		res.teCRCStats.LUTAccesses -= before.LUTAccesses
		res.teCRCStats.Subblocks -= before.Subblocks
	}
	if tr != nil {
		tr.End() // raster-tile
	}
}

// shadeFragment runs the fragment shader VM on one rasterized fragment.
//
//re:hotpath
func (w *rasterWorker) shadeFragment(p *shader.Program, f *rast.Fragment) geom.Vec4 {
	for i := 0; i < rast.MaxVaryings; i++ {
		w.fsExec.In[i+1] = f.Var[i]
	}
	w.fsExec.Run(p)
	return w.fsExec.Out[0]
}

// commitTile is the serial post-raster stage: it replays the tile's recorded
// memory accesses through the shared cache hierarchy (in tile order, i.e.
// the serial access order), performs the order-sensitive TE and Frame Buffer
// updates, and folds the tile's shard into the frame's statistics.
//
//re:hotpath
func (s *Simulator) commitTile(tile int, res *tileResult, st *Stats) {
	st.TilesTotal++

	if res.skipped {
		// Rendering Elimination bypass: the whole Raster Pipeline is
		// skipped and the Frame Buffer keeps the previous colors.
		res.tw.Skipped = true
		st.TilesSkipped++
		s.skipCounts[tile]++
		st.TileClasses[TileEqColorEqInput]++
		st.TilesClassified++
		st.StageCycles[StageSigCheck] += res.tw.CompareCycles
		st.RasterCycles += s.cfg.Timing.TileCycles(res.tw)
		if s.tr != nil {
			s.tr.Instant("tile-eliminated", "tile", int64(tile))
		}
		return
	}

	tw := &res.tw

	// Replay the render stage's memory accesses through the shared caches.
	for _, a := range res.accesses {
		if a.unit == texUnitPB {
			s.curClass = TrafficPBRead
			tw.FetchMissCycles += s.accessExtra(s.tilecache, a.addr, int(a.size), false)
		} else {
			s.curClass = TrafficTexel
			c := s.tcache[int(a.unit)%len(s.tcache)]
			lat := c.Access(a.addr, int(a.size), false)
			if extra := lat - c.Config().Latency; extra > 0 {
				tw.TexMissCycles += uint64(extra)
			}
		}
	}

	// Fold the tile's stats shard.
	sh := &res.shard
	st.QuadsTested += sh.quadsTested
	st.FragsEarlyZKill += sh.fragsEarlyZKill
	st.FragsRasterized += sh.fragsRasterized
	st.FragsShaded += sh.fragsShaded
	st.FragsMemoReused += sh.fragsMemoReused
	st.Activity.DepthBufferAccesses += sh.depthBufAcc
	st.Activity.ColorBufferAccesses += sh.colorBufAcc
	st.Activity.FSInstructions += tw.FSInstructions
	s.memo.Lookups += sh.memoLookups
	s.memo.Hits += sh.memoHits

	// Ground-truth classification against the frame two swaps back.
	if s.cfg.TrackGroundTruth {
		if match, valid := s.re.BaselineMatch(tile); valid {
			st.TilesClassified++
			switch {
			case res.eqColor && match:
				st.TileClasses[TileEqColorEqInput]++
			case res.eqColor && !match:
				st.TileClasses[TileEqColorDiffInput]++
			case !res.eqColor && match:
				st.TileClasses[TileEqInputDiffColor]++ // CRC collision
			default:
				st.TileClasses[TileDiffColor]++
			}
		}
	}

	// Transaction Elimination: store the color signature and skip the flush
	// when it matches the Back Buffer's previous contents (Section IV-C).
	doFlush := true
	if s.cfg.Technique == TE {
		s.teCRC.Stats.Add(res.teCRCStats)
		s.teBuf.Store(tile, res.teSig)
		if match, valid := s.teBuf.Match(tile); valid && match {
			doFlush = false
		}
	}

	// Tile flush: write the Color Buffer out to the Frame Buffer in DRAM.
	if doFlush {
		if s.tr != nil {
			s.tr.Begin("dram-flush")
		}
		rect := s.fbuf.TileRect(tile)
		st.FlushesDone++
		bytes := s.fbuf.FlushTile(tile, &res.tb)
		tw.FlushBytes = uint64(bytes)
		st.Activity.ColorBufferAccesses += uint64((bytes + 63) / 64)
		s.curClass = TrafficColor
		for y := rect.Y0; y < rect.Y1; y++ {
			s.dramWrite(s.fbuf.PixelAddr(rect.X0, y), (rect.X1-rect.X0)*4)
		}
		if s.tr != nil {
			s.tr.End() // dram-flush
		}
	} else {
		st.FlushesSkipped++
	}

	sigC, rastC, fragC, flushC := s.cfg.Timing.TileStageCycles(*tw)
	st.StageCycles[StageSigCheck] += sigC
	st.StageCycles[StageRaster] += rastC
	st.StageCycles[StageFragment] += fragC
	st.StageCycles[StageFlush] += flushC
	st.RasterCycles += s.cfg.Timing.TileCycles(*tw)
}

// rasterPhase executes the frame's raster pipeline over all tiles. With one
// worker the three stages run inline per tile (the serial execution order);
// with more, decisions are made up front, tiles render concurrently on the
// worker pool, and commits replay in tile order — simulated results are
// byte-identical either way.
func (s *Simulator) rasterPhase(st *Stats) {
	n := s.fbuf.NumTiles()
	tiles := s.arena.tiles(n)

	nw := s.tileWorkers
	if nw > n {
		nw = n
	}
	if nw <= 1 {
		w := s.workers[0]
		for tile := 0; tile < n; tile++ {
			res := &tiles[tile]
			s.decideTile(tile, res)
			if !res.skipped {
				w.renderTile(tile, res, s.tr)
			}
			s.commitTile(tile, res, st)
		}
		return
	}

	for tile := 0; tile < n; tile++ {
		s.decideTile(tile, &tiles[tile])
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		w := s.workers[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr := w.thread()
			for {
				tile := int(next.Add(1)) - 1
				if tile >= n {
					return
				}
				res := &tiles[tile]
				if !res.skipped {
					w.renderTile(tile, res, tr)
				}
			}
		}()
	}
	wg.Wait()

	for tile := 0; tile < n; tile++ {
		s.commitTile(tile, &tiles[tile], st)
	}
}
