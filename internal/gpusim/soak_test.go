package gpusim

import (
	"fmt"
	"testing"

	"rendelim/internal/workload"
)

// TestDeterminismSoakArenaReuse is the pooling-never-leaks guarantee behind
// the zero-allocation hot path: a simulator that runs frames back-to-back
// through its reused frame arena (pooled tile results, access logs, memo
// tables, geometry scratch) must be byte-identical — per-frame Stats and
// full-framebuffer CRC after every frame — to a fresh simulator whose
// buffers have never held another frame's data. Any state leaking between
// frames through a pooled buffer shows up as a diverging CRC or stat at the
// first frame it pollutes. Raced in CI (go test -race) so the per-worker
// ownership claims are checked, too.
func TestDeterminismSoakArenaReuse(t *testing.T) {
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: 4, Seed: 1})

	for _, tech := range []Technique{Baseline, RE, TE, Memo} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tech, workers), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Technique = tech
				cfg.TileWorkers = workers

				// Continuous run: every frame rides the same arena.
				cont, err := New(tr, cfg)
				if err != nil {
					t.Fatal(err)
				}
				contStats := make([]Stats, len(tr.Frames))
				contCRCs := make([]uint32, len(tr.Frames))
				for i := range tr.Frames {
					contStats[i] = cont.RunFrame(&tr.Frames[i])
					contCRCs[i] = cont.FrameBufferCRC()
				}

				// Reference: for every prefix length, a fresh simulator with
				// virgin buffers replays from the start.
				for k := range tr.Frames {
					fresh, err := New(tr, cfg)
					if err != nil {
						t.Fatal(err)
					}
					var last Stats
					for i := 0; i <= k; i++ {
						last = fresh.RunFrame(&tr.Frames[i])
					}
					if got, want := fresh.FrameBufferCRC(), contCRCs[k]; got != want {
						t.Errorf("frame %d: framebuffer CRC %08x (fresh) != %08x (reused arena)", k, got, want)
					}
					if last != contStats[k] {
						t.Errorf("frame %d: stats diverge:\n fresh  %+v\n reused %+v", k, last, contStats[k])
					}
				}
			})
		}
	}
}
