package gpusim

import (
	"fmt"

	"rendelim/internal/api"
	"rendelim/internal/cache"
	"rendelim/internal/crc"
	"rendelim/internal/dram"
	"rendelim/internal/geom"
	"rendelim/internal/shader"
	"rendelim/internal/sig"
	"rendelim/internal/texture"
	"rendelim/internal/wire"
)

// Checkpoint wire format. The magic and version lead the blob so a decoder
// can reject foreign files and future formats before touching anything else;
// a trailing CRC32 over everything prior catches torn writes and bit rot
// independently of whatever integrity the store layer adds. Version bumps
// are append-only history: a v1 decoder must refuse v2 bytes (see
// TestCheckpointCodecVersionRejected), never misparse them.
const (
	ckptMagic   = "RECK"
	ckptVersion = uint16(1)
)

// ErrCheckpointFormat is wrapped by every DecodeCheckpoint failure: bad
// magic, unknown version, CRC mismatch, or truncated/corrupt contents.
var ErrCheckpointFormat = fmt.Errorf("gpusim: bad checkpoint format")

// EncodeBinary serializes the checkpoint into a self-contained blob that
// DecodeCheckpoint can restore in a fresh process. Together with the
// determinism of the simulator this is the crash-recovery contract: build a
// new Simulator from the same trace and config, Resume the decoded
// checkpoint, and the continued run is byte-identical to one that never
// stopped.
func (cp *Checkpoint) EncodeBinary() []byte {
	b := make([]byte, 0, cp.encodedSizeHint())
	b = append(b, ckptMagic...)
	b = wire.AppendU16(b, ckptVersion)

	b = wire.AppendI64(b, int64(cp.frameIdx))
	b = wire.AppendI64(b, int64(cp.width))
	b = wire.AppendI64(b, int64(cp.height))
	b = wire.AppendU8(b, uint8(cp.technique))
	b = wire.AppendU32(b, cp.traceSig)

	// Framebuffer.
	b = wire.AppendI64(b, int64(cp.fbuf.Front))
	b = wire.AppendU32s(b, cp.fbuf.Bufs[0])
	b = wire.AppendU32s(b, cp.fbuf.Bufs[1])

	// API state.
	b = appendPipeline(b, cp.stateVal.Pipeline)
	for _, v := range cp.stateVal.Uniforms {
		b = appendVec4(b, v)
	}
	b = wire.AppendI64(b, int64(cp.stateVal.RenderTargets))
	b = wire.AppendBool(b, cp.stateVal.UploadsThisFrame)

	// RE controller.
	b = appendUnitSnapshot(b, cp.re.Unit)
	b = wire.AppendI64(b, int64(cp.re.FrameIdx))
	b = wire.AppendBool(b, cp.re.Disabled)
	b = wire.AppendBool(b, cp.re.Refresh)
	b = wire.AppendU64(b, cp.re.TilesChecked)
	b = wire.AppendU64(b, cp.re.TilesSkipped)

	// TE signature buffer + CRC unit counters.
	b = appendBufferSnapshot(b, cp.teBuf)
	b = appendUnitStats(b, cp.teCRC)

	// Memoization baselines.
	b = wire.AppendU32(b, uint32(len(cp.memoPrev)))
	for _, entries := range cp.memoPrev {
		b = wire.AppendU32(b, uint32(len(entries)))
		for _, e := range entries {
			b = wire.AppendU32(b, e.H)
			b = appendVec4(b, e.C)
		}
	}
	b = wire.AppendU64(b, cp.memoLookups)
	b = wire.AppendU64(b, cp.memoHits)

	// DRAM + caches.
	b = cp.dram.AppendBinary(b)
	b = wire.AppendU32(b, uint32(len(cp.caches)))
	for _, cs := range cp.caches {
		b = cs.AppendBinary(b)
	}

	// Upload-mutable tables.
	b = wire.AppendU32(b, uint32(len(cp.programs)))
	for _, p := range cp.programs {
		b = appendProgram(b, p)
	}
	b = wire.AppendU32(b, uint32(len(cp.fsMasks)))
	for _, m := range cp.fsMasks {
		b = wire.AppendU16(b, m.in)
		b = wire.AppendU32(b, m.consts)
	}
	b = wire.AppendU32(b, uint32(len(cp.textures)))
	for _, t := range cp.textures {
		b = appendTexture(b, t)
	}

	// Counters.
	b = wire.AppendU64(b, cp.vsCounts.Instructions)
	b = wire.AppendU64(b, cp.vsCounts.TexSamples)
	b = wire.AppendU64(b, cp.vsCounts.Invocations)
	b = wire.AppendU32s(b, cp.skipCounts)

	// Integrity seal over everything prior.
	return wire.AppendU32(b, crc.Checksum(b))
}

// encodedSizeHint estimates the blob size to avoid re-allocation churn; the
// framebuffer and textures dominate.
func (cp *Checkpoint) encodedSizeHint() int {
	n := 4096 + 4*(len(cp.fbuf.Bufs[0])+len(cp.fbuf.Bufs[1]))
	for _, t := range cp.textures {
		if t != nil {
			n += 4 * len(t.Pix)
		}
	}
	return n
}

// DecodeCheckpoint parses a blob produced by EncodeBinary. Every failure
// wraps ErrCheckpointFormat; a nil error guarantees the trailing CRC
// matched, so the decoded checkpoint is exactly what was encoded.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < len(ckptMagic)+2+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrCheckpointFormat, len(b))
	}
	if string(b[:len(ckptMagic)]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCheckpointFormat, b[:len(ckptMagic)])
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if got, want := crc.Checksum(body), wire.NewReader(tail).U32(); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch: computed %08x, stored %08x", ErrCheckpointFormat, got, want)
	}
	r := wire.NewReader(body[len(ckptMagic):])
	if v := r.U16(); v != ckptVersion {
		return nil, fmt.Errorf("%w: unknown version %d (this build reads version %d)", ErrCheckpointFormat, v, ckptVersion)
	}

	cp := &Checkpoint{
		frameIdx:  int(r.I64()),
		width:     int(r.I64()),
		height:    int(r.I64()),
		technique: Technique(r.U8()),
		traceSig:  r.U32(),
	}

	cp.fbuf.Front = int(r.I64())
	cp.fbuf.Bufs[0] = r.U32s()
	cp.fbuf.Bufs[1] = r.U32s()

	cp.stateVal.Pipeline = decodePipeline(r)
	for i := range cp.stateVal.Uniforms {
		cp.stateVal.Uniforms[i] = decodeVec4(r)
	}
	cp.stateVal.RenderTargets = int(r.I64())
	cp.stateVal.UploadsThisFrame = r.Bool()

	cp.re.Unit = decodeUnitSnapshot(r)
	cp.re.FrameIdx = int(r.I64())
	cp.re.Disabled = r.Bool()
	cp.re.Refresh = r.Bool()
	cp.re.TilesChecked = r.U64()
	cp.re.TilesSkipped = r.U64()

	cp.teBuf = decodeBufferSnapshot(r)
	cp.teCRC = decodeUnitStats(r)

	if n, ok := decodeCount(r, 4); ok {
		cp.memoPrev = make([][]memoEntry, n)
		for i := range cp.memoPrev {
			m, ok := decodeCount(r, 20)
			if !ok {
				break
			}
			if m == 0 {
				continue
			}
			entries := make([]memoEntry, m)
			for j := range entries {
				entries[j].H = r.U32()
				entries[j].C = decodeVec4(r)
			}
			cp.memoPrev[i] = entries
		}
	}
	cp.memoLookups = r.U64()
	cp.memoHits = r.U64()

	cp.dram = dram.DecodeSnapshot(r)
	if n, ok := decodeCount(r, 4); ok {
		cp.caches = make([]cache.Snapshot, 0, n)
		for i := 0; i < n; i++ {
			cp.caches = append(cp.caches, cache.DecodeSnapshot(r))
		}
	}

	if n, ok := decodeCount(r, 1); ok {
		cp.programs = make([]*shader.Program, n)
		for i := range cp.programs {
			cp.programs[i] = decodeProgram(r)
		}
	}
	if n, ok := decodeCount(r, 6); ok {
		cp.fsMasks = make([]progMask, n)
		for i := range cp.fsMasks {
			cp.fsMasks[i].in = r.U16()
			cp.fsMasks[i].consts = r.U32()
		}
	}
	if n, ok := decodeCount(r, 1); ok {
		cp.textures = make([]*texture.Texture, n)
		for i := range cp.textures {
			cp.textures[i] = decodeTexture(r)
		}
	}

	cp.vsCounts.Instructions = r.U64()
	cp.vsCounts.TexSamples = r.U64()
	cp.vsCounts.Invocations = r.U64()
	cp.skipCounts = r.U32s()

	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointFormat, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpointFormat, r.Len())
	}
	return cp, nil
}

// decodeCount reads a u32 element count and sanity-checks it against the
// remaining input (elemSize = minimum encoded bytes per element), so a
// corrupted count cannot drive a huge allocation. The CRC makes this
// unreachable in practice; it is defense in depth.
func decodeCount(r *wire.Reader, elemSize int) (int, bool) {
	n := int(r.U32())
	if r.Err() != nil || n < 0 || n*elemSize > r.Len() {
		return 0, false
	}
	return n, true
}

func appendVec4(b []byte, v geom.Vec4) []byte {
	b = wire.AppendF32(b, v.X)
	b = wire.AppendF32(b, v.Y)
	b = wire.AppendF32(b, v.Z)
	return wire.AppendF32(b, v.W)
}

func decodeVec4(r *wire.Reader) geom.Vec4 {
	return geom.Vec4{X: r.F32(), Y: r.F32(), Z: r.F32(), W: r.F32()}
}

func appendPipeline(b []byte, p api.SetPipeline) []byte {
	b = wire.AppendU8(b, uint8(p.VS))
	b = wire.AppendU8(b, uint8(p.FS))
	for _, t := range p.Tex {
		b = wire.AppendU8(b, uint8(t))
	}
	b = wire.AppendU8(b, uint8(p.Blend))
	b = wire.AppendBool(b, p.DepthTest)
	b = wire.AppendBool(b, p.DepthWrite)
	return wire.AppendBool(b, p.CullBack)
}

func decodePipeline(r *wire.Reader) api.SetPipeline {
	var p api.SetPipeline
	p.VS = api.ProgramID(r.U8())
	p.FS = api.ProgramID(r.U8())
	for i := range p.Tex {
		p.Tex[i] = api.TextureID(r.U8())
	}
	p.Blend = api.BlendMode(r.U8())
	p.DepthTest = r.Bool()
	p.DepthWrite = r.Bool()
	p.CullBack = r.Bool()
	return p
}

func appendUnitStats(b []byte, s crc.UnitStats) []byte {
	b = wire.AppendU64(b, s.Cycles)
	b = wire.AppendU64(b, s.LUTAccesses)
	return wire.AppendU64(b, s.Subblocks)
}

func decodeUnitStats(r *wire.Reader) crc.UnitStats {
	return crc.UnitStats{Cycles: r.U64(), LUTAccesses: r.U64(), Subblocks: r.U64()}
}

func appendBufferSnapshot(b []byte, s sig.BufferSnapshot) []byte {
	b = wire.AppendU32s(b, s.Building)
	b = wire.AppendU32s(b, s.Prev[0])
	b = wire.AppendU32s(b, s.Prev[1])
	b = wire.AppendBools(b, s.Valid[0])
	b = wire.AppendBools(b, s.Valid[1])
	b = wire.AppendI64(b, int64(s.Parity))
	b = wire.AppendU64(b, s.Reads)
	return wire.AppendU64(b, s.Writes)
}

func decodeBufferSnapshot(r *wire.Reader) sig.BufferSnapshot {
	var s sig.BufferSnapshot
	s.Building = r.U32s()
	s.Prev[0] = r.U32s()
	s.Prev[1] = r.U32s()
	s.Valid[0] = r.Bools()
	s.Valid[1] = r.Bools()
	s.Parity = int(r.I64())
	s.Reads = r.U64()
	s.Writes = r.U64()
	return s
}

func appendSigStats(b []byte, s sig.Stats) []byte {
	b = wire.AppendU64(b, s.StallCycles)
	b = wire.AppendU64(b, s.BusyCycles)
	b = wire.AppendU64(b, s.CompareCycles)
	b = appendUnitStats(b, s.Compute)
	b = appendUnitStats(b, s.Accumulate)
	b = wire.AppendU64(b, s.BitmapReads)
	b = wire.AppendU64(b, s.BitmapWrites)
	b = wire.AppendU64(b, s.PrimBlocks)
	b = wire.AppendU64(b, s.ConstBlocks)
	return wire.AppendU64(b, s.TileUpdates)
}

func decodeSigStats(r *wire.Reader) sig.Stats {
	var s sig.Stats
	s.StallCycles = r.U64()
	s.BusyCycles = r.U64()
	s.CompareCycles = r.U64()
	s.Compute = decodeUnitStats(r)
	s.Accumulate = decodeUnitStats(r)
	s.BitmapReads = r.U64()
	s.BitmapWrites = r.U64()
	s.PrimBlocks = r.U64()
	s.ConstBlocks = r.U64()
	s.TileUpdates = r.U64()
	return s
}

func appendUnitSnapshot(b []byte, s sig.UnitSnapshot) []byte {
	b = appendBufferSnapshot(b, s.Buf)
	b = appendUnitStats(b, s.Compute)
	b = appendUnitStats(b, s.Accumulate)
	b = wire.AppendU32(b, s.ConstSig)
	b = wire.AppendI64(b, int64(s.ConstShift))
	b = wire.AppendBool(b, s.HaveConst)
	b = wire.AppendBools(b, s.Bitmap)
	b = wire.AppendU64(b, s.PLBClock)
	b = wire.AppendU64(b, s.SUClock)
	return appendSigStats(b, s.Stats)
}

func decodeUnitSnapshot(r *wire.Reader) sig.UnitSnapshot {
	var s sig.UnitSnapshot
	s.Buf = decodeBufferSnapshot(r)
	s.Compute = decodeUnitStats(r)
	s.Accumulate = decodeUnitStats(r)
	s.ConstSig = r.U32()
	s.ConstShift = int(r.I64())
	s.HaveConst = r.Bool()
	s.Bitmap = r.Bools()
	s.PLBClock = r.U64()
	s.SUClock = r.U64()
	s.Stats = decodeSigStats(r)
	return s
}

func appendProgram(b []byte, p *shader.Program) []byte {
	if p == nil {
		return wire.AppendBool(b, false)
	}
	b = wire.AppendBool(b, true)
	b = wire.AppendString(b, p.Name)
	b = wire.AppendU32(b, uint32(len(p.Instrs)))
	for _, in := range p.Instrs {
		b = wire.AppendU8(b, uint8(in.Op))
		b = wire.AppendU8(b, uint8(in.Dst.File))
		b = wire.AppendU8(b, in.Dst.Idx)
		b = wire.AppendU8(b, in.Dst.Mask)
		for _, src := range in.Src {
			b = wire.AppendU8(b, uint8(src.File))
			b = wire.AppendU8(b, src.Idx)
			b = append(b, src.Swz[0], src.Swz[1], src.Swz[2], src.Swz[3])
			b = wire.AppendBool(b, src.Neg)
		}
		b = wire.AppendU8(b, in.TexUnit)
	}
	return b
}

func decodeProgram(r *wire.Reader) *shader.Program {
	if !r.Bool() {
		return nil
	}
	p := &shader.Program{Name: r.String()}
	n, ok := decodeCount(r, 26)
	if !ok {
		return p
	}
	p.Instrs = make([]shader.Instr, n)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		in.Op = shader.Op(r.U8())
		in.Dst.File = shader.File(r.U8())
		in.Dst.Idx = r.U8()
		in.Dst.Mask = r.U8()
		for s := range in.Src {
			in.Src[s].File = shader.File(r.U8())
			in.Src[s].Idx = r.U8()
			in.Src[s].Swz = shader.Swizzle{r.U8(), r.U8(), r.U8(), r.U8()}
			in.Src[s].Neg = r.Bool()
		}
		in.TexUnit = r.U8()
	}
	return p
}

func appendTexture(b []byte, t *texture.Texture) []byte {
	if t == nil {
		return wire.AppendBool(b, false)
	}
	b = wire.AppendBool(b, true)
	b = wire.AppendI64(b, int64(t.ID))
	b = wire.AppendI64(b, int64(t.W))
	b = wire.AppendI64(b, int64(t.H))
	b = wire.AppendU32s(b, t.Pix)
	b = wire.AppendU8(b, uint8(t.Filter))
	return wire.AppendU64(b, t.Base)
}

func decodeTexture(r *wire.Reader) *texture.Texture {
	if !r.Bool() {
		return nil
	}
	t := &texture.Texture{ID: int(r.I64()), W: int(r.I64()), H: int(r.I64())}
	t.Pix = r.U32s()
	t.Filter = texture.Filter(r.U8())
	t.Base = r.U64()
	return t
}
