package gpusim

// Failure-injection tests: deliberately weaken parts of the design and
// assert the failure the paper predicts actually occurs — the complement of
// the happy-path suite.

import (
	"testing"

	"rendelim/internal/crc"
	"rendelim/internal/workload"
)

// A weak (order-insensitive) signature function makes RE reuse stale tiles:
// visible corruption. This is the experimental justification for CRC32
// (Section III-B) expressed as a test.
func TestWeakHashCorruptsPixelsUnderRE(t *testing.T) {
	p := workload.Params{Width: 128, Height: 96, Frames: 8, Seed: 1}
	tr := workload.Adversarial(p)

	run := func(scheme crc.Scheme, tech Technique) *Simulator {
		cfg := DefaultConfig()
		cfg.Technique = tech
		cfg.Sig.Scheme = scheme
		sim, err := New(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for f := range tr.Frames {
			sim.RunFrame(&tr.Frames[f])
		}
		return sim
	}

	base := run(crc.CRC32Scheme{}, Baseline)
	good := run(crc.CRC32Scheme{}, RE)
	bad := run(crc.XORFoldScheme{}, RE)

	baseFB := base.FrameBufferSnapshot()
	goodFB := good.FrameBufferSnapshot()
	badFB := bad.FrameBufferSnapshot()

	for i := range baseFB {
		if baseFB[i] != goodFB[i] {
			t.Fatalf("CRC32 RE corrupted pixel %d on the adversarial workload", i)
		}
	}
	diff := 0
	for i := range baseFB {
		if baseFB[i] != badFB[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("xor-fold RE should visibly corrupt the adversarial workload (false positives)")
	}
}

// An OT queue of depth 1 must still produce correct results — only slower.
func TestTinyOTQueueIsSlowButCorrect(t *testing.T) {
	p := workload.Params{Width: 128, Height: 96, Frames: 6, Seed: 1}
	b, _ := workload.ByAlias("ccs")
	tr := b.Build(p)

	mk := func(depth int) (Result, []uint32) {
		cfg := DefaultConfig()
		cfg.Technique = RE
		cfg.Sig.OTQueueDepth = depth
		sim, err := New(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		return res, sim.FrameBufferSnapshot()
	}
	wide, wideFB := mk(1 << 16)
	tiny, tinyFB := mk(1)
	for i := range wideFB {
		if wideFB[i] != tinyFB[i] {
			t.Fatal("queue depth changed rendering output")
		}
	}
	if tiny.Total.SUStallCycles < wide.Total.SUStallCycles {
		t.Fatalf("1-entry queue should stall at least as much: %d vs %d",
			tiny.Total.SUStallCycles, wide.Total.SUStallCycles)
	}
	if tiny.Total.TilesSkipped != wide.Total.TilesSkipped {
		t.Fatal("queue depth must not change skip decisions")
	}
}

// Refreshing every frame degenerates RE to the baseline's work (plus
// signature overhead) without breaking anything.
func TestRefreshEveryFrameEqualsNoSkipping(t *testing.T) {
	p := workload.Params{Width: 128, Height: 96, Frames: 6, Seed: 1}
	b, _ := workload.ByAlias("cde")
	tr := b.Build(p)
	cfg := DefaultConfig()
	cfg.Technique = RE
	cfg.RefreshInterval = 1
	sim, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if res.Total.TilesSkipped != 0 {
		t.Fatalf("refresh=1 should render everything, skipped %d", res.Total.TilesSkipped)
	}
}

// Corrupting the Signature Buffer baseline (simulated SRAM fault) must never
// cause a *wrong* skip — an arbitrary flipped signature can only force extra
// rendering, never reuse of stale data... unless the flip happens to equal
// the new signature. Here we flip to a sentinel that cannot match.
func TestSignatureFaultForcesRender(t *testing.T) {
	p := workload.Params{Width: 128, Height: 96, Frames: 5, Seed: 1}
	b, _ := workload.ByAlias("ccs")
	tr := b.Build(p)
	cfg := DefaultConfig()
	cfg.Technique = RE
	sim, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	baseline := sim.Run()
	if baseline.Frames[4].TilesSkipped == 0 {
		t.Fatal("expected skips on ccs")
	}
	// The public API deliberately offers no way to corrupt the buffer; use
	// a fresh run with InvalidateTile through the controller to model the
	// ECC-style response: invalid baseline -> render.
	sim2, _ := New(tr, cfg)
	for f := range tr.Frames {
		if f == 3 {
			for tile := 0; tile < sim2.NumTiles(); tile++ {
				sim2.re.Unit().Buffer().InvalidateTile(tile)
			}
		}
		sim2.RunFrame(&tr.Frames[f])
	}
	a := sim.FrameBufferSnapshot()
	bb := sim2.FrameBufferSnapshot()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatal("baseline invalidation changed pixels")
		}
	}
}
