package gpusim

import (
	"context"
	"fmt"
	"runtime"

	"rendelim/internal/api"
	"rendelim/internal/cache"
	"rendelim/internal/core"
	"rendelim/internal/crc"
	"rendelim/internal/dram"
	"rendelim/internal/fb"
	"rendelim/internal/geom"
	"rendelim/internal/obs"
	"rendelim/internal/rast"
	"rendelim/internal/rerr"
	"rendelim/internal/shader"
	"rendelim/internal/sig"
	"rendelim/internal/texture"
	"rendelim/internal/tiling"
	"rendelim/internal/timing"
)

// drawRec snapshots the pipeline state a drawcall was issued under, so the
// raster phase (which runs after the whole geometry phase) shades with the
// right programs, textures and constants.
type drawRec struct {
	pipe     api.SetPipeline
	uniforms [api.SignedUniforms]geom.Vec4
	numAttrs int
}

// triRec is one binned screen-space triangle.
type triRec struct {
	st   rast.ScreenTri
	draw int
}

// progMask caches a program's read sets.
type progMask struct {
	in     uint16
	consts uint32
}

// dramPort routes all traffic into the DRAM model while attributing bytes
// to the simulator's current traffic class.
type dramPort struct{ s *Simulator }

func (p dramPort) Read(addr uint64, size int) int {
	p.s.frame.Traffic[p.s.curClass] += uint64(size)
	return p.s.dram.Read(addr, size)
}

func (p dramPort) Write(addr uint64, size int) int {
	p.s.frame.Traffic[p.s.curClass] += uint64(size)
	return p.s.dram.Write(addr, size)
}

// Simulator replays a trace on the modeled GPU. Create one per (trace,
// config) pair; it is not safe for concurrent use (the tile-worker
// parallelism it manages internally is invisible to callers and never
// changes simulated results — see parallel.go).
type Simulator struct {
	cfg   Config
	trace *api.Trace

	fbuf      *fb.FrameBuffer
	state     *api.State
	binner    *tiling.Binner
	re        *core.Controller
	teBuf     *sig.Buffer
	teCRC     crc.ComputeUnit
	memo      *memoState
	dram      *dram.DRAM
	vcache    *cache.Cache
	tcache    [4]*cache.Cache
	tilecache *cache.Cache
	l2        *cache.Cache

	programs []*shader.Program
	// fsMasks[i] caches programs[i].ReadMasks() for the memo hash.
	fsMasks  []progMask
	textures []*texture.Texture

	vsExec shader.Exec

	// Raster-phase execution (parallel.go): resolved worker count and the
	// persistent workers holding all per-goroutine mutable state.
	tileWorkers int
	workers     []*rasterWorker

	// arena owns all per-frame scratch, reused across frames (arena.go);
	// frame points at its Stats while RunFrame is executing.
	arena      frameArena
	frame      *Stats
	curClass   TrafficClass
	frameIdx   int
	clearColor uint32
	skipCounts []uint32
	signedPipe api.SetPipeline
	pipeSigned bool

	// tracer is the shared sink worker threads register tracks on; tr is the
	// pipeline-stage tracing track. Both are nil when tracing is off, and
	// every emission site is gated on that nil so the disabled path costs
	// nothing (see obs.BenchmarkTracerDisabled).
	tracer *obs.Tracer
	tr     *obs.Thread
}

// New builds a simulator for the trace. The trace is validated; textures are
// synthesized and placed in the simulated address map.
func New(trace *api.Trace, cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := trace.Validate(); err != nil {
		return nil, fmt.Errorf("gpusim: %w: %v", rerr.ErrBadTrace, err)
	}
	s := &Simulator{cfg: cfg, trace: trace}
	s.dram = dram.New(cfg.DRAM)
	// DRAM accesses happen only on serial phases (geometry and raster
	// commit), never inside parallel render workers, so injected panics
	// always unwind through RunFrame on the calling goroutine.
	s.dram.Fault = cfg.Fault
	port := dramPort{s}
	s.l2 = cache.New(cfg.L2Cache, port)
	s.vcache = cache.New(cfg.VertexCache, s.l2)
	for i := range s.tcache {
		tc := cfg.TextureCache
		tc.Name = fmt.Sprintf("texture%d", i)
		s.tcache[i] = cache.New(tc, s.l2)
	}
	s.tilecache = cache.New(cfg.TileCache, s.l2)

	s.fbuf = fb.NewFrameBuffer(trace.Width, trace.Height, addrFBBase)
	s.state = api.NewState()
	s.binner = tiling.NewBinner(trace.Width, trace.Height, addrParamBase)
	s.binner.SetExact(cfg.ExactBinning)
	s.re = core.New(core.Config{Sig: cfg.Sig, RefreshInterval: cfg.RefreshInterval}, s.fbuf.NumTiles())
	s.teBuf = sig.NewBuffer(s.fbuf.NumTiles())
	s.memo = newMemoState(s.fbuf.NumTiles(), cfg.MemoLUTEntries)

	s.programs = append([]*shader.Program(nil), trace.Programs...)
	s.fsMasks = make([]progMask, len(s.programs))
	for i, p := range s.programs {
		in, consts := p.ReadMasks()
		s.fsMasks[i] = progMask{in: in, consts: consts}
	}
	s.textures = make([]*texture.Texture, len(trace.Textures))
	for i, spec := range trace.Textures {
		s.textures[i] = spec.Build(i)
		s.textures[i].Base = addrTexBase + uint64(i)<<24
	}
	s.clearColor = texture.PackColor(trace.ClearColor)
	s.skipCounts = make([]uint32, s.fbuf.NumTiles())

	// Resolve the tile-worker count: <0 means one worker per host CPU, 0 and
	// 1 mean serial. Worker state persists across frames.
	nw := cfg.TileWorkers
	if nw < 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if nw < 1 {
		nw = 1
	}
	s.tileWorkers = nw
	s.workers = make([]*rasterWorker, nw)
	for i := range s.workers {
		s.workers[i] = newRasterWorker(s, i)
	}

	if cfg.Tracer != nil {
		s.tracer = cfg.Tracer
		s.tr = cfg.Tracer.Thread("sim " + trace.Name + " [" + cfg.Technique.String() + "]")
	}
	return s, nil
}

// SetTracer (re)binds the simulator to a trace sink, opening a new track.
// A nil tracer disables tracing.
func (s *Simulator) SetTracer(t *obs.Tracer) {
	s.tracer = t
	s.tr = t.Thread("sim " + s.trace.Name + " [" + s.cfg.Technique.String() + "]")
	for _, w := range s.workers {
		w.tr = nil // re-register lazily on the new sink
	}
}

// SkipCounts returns how many times each tile was bypassed so far, indexed
// by tile id — the data behind skip heat-maps (cmd/resim -heatmap).
func (s *Simulator) SkipCounts() []uint32 {
	out := make([]uint32, len(s.skipCounts))
	copy(out, s.skipCounts)
	return out
}

// TilesX returns the tile-grid width, for rendering skip maps.
func (s *Simulator) TilesX() int { return s.fbuf.TilesX() }

// NumTiles returns the screen's tile count.
func (s *Simulator) NumTiles() int { return s.fbuf.NumTiles() }

// FrameBufferSnapshot copies the currently displayed frame (front buffer),
// for image-diff tests and examples.
func (s *Simulator) FrameBufferSnapshot() []uint32 {
	out := make([]uint32, len(s.fbuf.Front()))
	copy(out, s.fbuf.Front())
	return out
}

// Result is a whole-run outcome.
type Result struct {
	Technique Technique
	Name      string
	Frames    []Stats
	Total     Stats

	// FBCRC is the CRC32 of the displayed framebuffer after the final
	// frame, set when a run completes every frame. It extends result
	// comparisons (chaos soak, determinism tests) to the rendered pixels
	// without carrying the framebuffer itself.
	FBCRC uint32
}

// Run replays every frame of the trace and aggregates statistics.
func (s *Simulator) Run() Result {
	res, _ := s.RunContext(context.Background())
	return res
}

// RunContext replays frames until the trace ends or ctx is done, checking
// cancellation cooperatively at frame boundaries (a frame is the smallest
// unit of simulated work; mid-frame state is never left half-committed).
// The partial Result accumulated so far is returned alongside ctx.Err().
func (s *Simulator) RunContext(ctx context.Context) (Result, error) {
	res := Result{Technique: s.cfg.Technique, Name: s.trace.Name}
	res.Frames = make([]Stats, 0, len(s.trace.Frames))
	for i := range s.trace.Frames {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		fs := s.RunFrame(&s.trace.Frames[i])
		res.Frames = append(res.Frames, fs)
		res.Total.Add(fs)
	}
	res.FBCRC = s.FrameBufferCRC()
	return res, nil
}

// FrameBufferCRC signs the displayed (front) buffer; see Result.FBCRC. The
// serialization scratch lives in the frame arena so per-frame CRC checks
// (determinism soaks, chaos tests) do not allocate.
//
//re:hotpath
func (s *Simulator) FrameBufferCRC() uint32 {
	front := s.fbuf.Front()
	if cap(s.arena.crcBuf) < len(front)*4 {
		s.arena.crcBuf = make([]byte, len(front)*4)
	}
	buf := s.arena.crcBuf[:len(front)*4]
	for i, px := range front {
		buf[i*4] = byte(px)
		buf[i*4+1] = byte(px >> 8)
		buf[i*4+2] = byte(px >> 16)
		buf[i*4+3] = byte(px >> 24)
	}
	return crc.Checksum(buf)
}

// RunFrame executes one frame and returns its statistics.
//
//re:hotpath
func (s *Simulator) RunFrame(frame *api.Frame) Stats {
	s.arena.beginFrame()
	st := &s.arena.stats
	s.frame = st
	if s.tr != nil {
		s.tr.BeginArg("frame", "frame", int64(s.frameIdx))
	}

	// Snapshot cumulative counters to diff at frame end.
	dramBefore := s.dram.Stats
	suBefore := s.re.Unit().Stats
	sbBefore := s.re.Unit().Buffer().Reads + s.re.Unit().Buffer().Writes
	teCRCBefore := s.teCRC.Stats
	teBufBefore := s.teBuf.Reads + s.teBuf.Writes
	vsBefore := s.vsExec.Counts
	cacheBefore := [4]cache.Stats{s.vcache.Stats, s.tcache[0].Stats, s.tilecache.Stats, s.l2.Stats}
	var tcacheBefore cache.Stats
	for _, tc := range s.tcache {
		tcacheBefore.Add(tc.Stats)
	}

	s.state.BeginFrame()
	s.re.BeginFrame()
	s.binner.Reset()
	s.pipeSigned = false // sign the first bound pipeline of each frame

	var geo timing.GeometryWork
	mrt := false
	if s.tr != nil {
		s.tr.Begin("geometry")
	}
	for _, cmd := range frame.Commands {
		switch c := cmd.(type) {
		case api.Draw:
			s.processDraw(c, st, &geo)
		case api.UploadProgram:
			s.state.Apply(cmd)
			for int(c.ID) >= len(s.programs) {
				// Both tables persist across frames and grow once to the
				// trace's program-ID high-water mark.
				//re:arena
				s.programs = append(s.programs, nil)
				//re:arena
				s.fsMasks = append(s.fsMasks, progMask{})
			}
			s.programs[c.ID] = c.Program
			in, consts := c.Program.ReadMasks()
			s.fsMasks[c.ID] = progMask{in: in, consts: consts}
		case api.UploadTexture:
			s.state.Apply(cmd)
			for int(c.ID) >= len(s.textures) {
				// Persists across frames; grows once per new texture ID.
				//re:arena
				s.textures = append(s.textures, nil)
			}
			t := c.Spec.Build(int(c.ID))
			t.Base = addrTexBase + uint64(c.ID)<<24
			s.textures[c.ID] = t
		case api.SetRenderTargets:
			s.state.Apply(cmd)
			if c.N > 1 {
				mrt = true
			}
		case api.SetUniforms:
			s.state.Apply(cmd)
			s.arena.pendingConsts = api.AppendUniformRecord(s.arena.pendingConsts, c)
		default:
			s.state.Apply(cmd)
		}
	}

	// RE disable rules (Section III-E): shader/texture uploads invalidate
	// stale baselines and render normally; MRT frames render normally.
	if s.state.UploadsThisFrame {
		s.re.OnGlobalStateChange()
	}
	if mrt {
		s.re.DisableFrame()
	}

	geo.PBWriteBytes = s.binner.WrittenBytes()
	if s.cfg.Technique == RE {
		geo.SUStallCycles = s.re.Unit().Stats.StallCycles - suBefore.StallCycles
		st.SUStallCycles = geo.SUStallCycles
	}
	st.GeometryCycles = s.cfg.Timing.GeometryCycles(geo)
	vtx, til := s.cfg.Timing.GeometryStageCycles(geo)
	st.StageCycles[StageVertex] += vtx
	st.StageCycles[StageTiling] += til
	st.StageCycles[StageSigCheck] += geo.SUStallCycles
	if s.tr != nil {
		s.tr.End() // geometry
		s.tr.Begin("raster")
	}

	s.rasterPhase(st)
	if s.tr != nil {
		s.tr.End() // raster
	}

	s.re.EndFrame()
	if s.cfg.Technique == TE {
		s.teBuf.EndFrame()
	}
	s.fbuf.Swap()

	// Assemble the energy-model activity from counter deltas.
	// (FSInstructions is accumulated per tile by the raster commit stage —
	// fragment shaders run on per-worker VMs, so there is no single
	// cumulative counter to diff.)
	a := &st.Activity
	a.VSInstructions = s.vsExec.Counts.Instructions - vsBefore.Instructions
	a.VertexCacheAccesses = s.vcache.Stats.Accesses - cacheBefore[0].Accesses
	var tcacheNow cache.Stats
	for _, tc := range s.tcache {
		tcacheNow.Add(tc.Stats)
	}
	a.TextureCacheAccesses = tcacheNow.Accesses - tcacheBefore.Accesses
	a.TileCacheAccesses = s.tilecache.Stats.Accesses - cacheBefore[2].Accesses
	a.L2Accesses = s.l2.Stats.Accesses - cacheBefore[3].Accesses
	a.VerticesFetched = st.Vertices
	a.TrianglesSetup = st.Triangles
	a.QuadsTested = st.QuadsTested
	a.FragmentsBlended = st.FragsRasterized

	switch s.cfg.Technique {
	case RE:
		su := s.re.Unit()
		su.SyncStats()
		a.SigBufferAccesses = su.Buffer().Reads + su.Buffer().Writes - sbBefore
		a.CRCLUTAccesses = (su.Stats.Compute.LUTAccesses + su.Stats.Accumulate.LUTAccesses) -
			(suBefore.Compute.LUTAccesses + suBefore.Accumulate.LUTAccesses)
		a.BitmapAccesses = (su.Stats.BitmapReads + su.Stats.BitmapWrites) -
			(suBefore.BitmapReads + suBefore.BitmapWrites)
		a.OTQueueAccesses = su.Stats.TileUpdates - suBefore.TileUpdates
	case TE:
		a.SigBufferAccesses = s.teBuf.Reads + s.teBuf.Writes - teBufBefore
		a.CRCLUTAccesses = s.teCRC.Stats.LUTAccesses - teCRCBefore.LUTAccesses
	}

	dNow := s.dram.Stats
	a.DRAMBytes = dNow.TotalBytes() - dramBefore.TotalBytes()
	a.DRAMActivations = dNow.RowMisses - dramBefore.RowMisses
	a.DRAMRequests = (dNow.Reads + dNow.Writes) - (dramBefore.Reads + dramBefore.Writes)
	a.Cycles = st.TotalCycles()

	if s.tr != nil {
		s.tr.Counter("tiles-skipped", "skipped", int64(st.TilesSkipped))
		// Per-frame elimination ratio in permille (counter args are ints):
		// the live, per-frame form of the Figure 15a distribution that the
		// service also aggregates into resvc_sim_frame_eliminated_ratio.
		s.tr.Counter("eliminated-ratio", "permille", int64(st.SkipFraction()*1000))
		s.tr.End() // frame
	}
	s.frameIdx++
	s.frame = nil
	return *st
}

// accessExtra performs a cache access and returns the latency beyond the
// pipelined hit time, i.e. the stall contribution.
func (s *Simulator) accessExtra(c *cache.Cache, addr uint64, size int, write bool) uint64 {
	lat := c.Access(addr, size, write)
	lines := 0
	lb := c.Config().LineBytes
	for size > 0 {
		chunk := lb - int(addr)%lb
		if chunk > size {
			chunk = size
		}
		lines++
		addr += uint64(chunk)
		size -= chunk
	}
	base := lines * c.Config().Latency
	if lat > base {
		return uint64(lat - base)
	}
	return 0
}

// processDraw runs the geometry pipeline for one draw command.
//
//re:hotpath
func (s *Simulator) processDraw(d api.Draw, st *Stats, geo *timing.GeometryWork) {
	if d.Validate() != nil || d.TriangleCount() == 0 {
		return
	}
	// The record is built in place in the arena (not in a local first):
	// rec.uniforms[:] is later handed to the vertex-shader VM, and a slice
	// of a local's array would force a per-draw heap escape.
	drawIdx := len(s.arena.draws)
	//re:arena
	s.arena.draws = append(s.arena.draws, drawRec{})
	rec := &s.arena.draws[drawIdx]
	rec.pipe = s.state.Pipeline
	rec.numAttrs = d.NumAttrs
	copy(rec.uniforms[:], s.state.SignedConstants())

	// Render-state changes are signed alongside the constants: rebinding a
	// program/texture/blend/depth mode changes tile outputs just like a
	// uniform does.
	if !s.pipeSigned || s.signedPipe != rec.pipe {
		s.arena.pendingConsts = api.AppendPipelineRecord(s.arena.pendingConsts, rec.pipe)
		s.signedPipe = rec.pipe
		s.pipeSigned = true
	}

	// A pending uniform or state update opens a new constants epoch in the
	// Signature Unit.
	if len(s.arena.pendingConsts) > 0 {
		s.re.OnConstants(s.arena.pendingConsts)
		s.arena.pendingConsts = s.arena.pendingConsts[:0]
	}

	// Vertex fetch through the vertex cache (static VBO layout: the same
	// simulated addresses every frame).
	if s.tr != nil {
		s.tr.BeginArg("vertex-shading", "draw", int64(drawIdx))
	}
	nv := d.VertexCount()
	st.Vertices += uint64(nv)
	vbase := uint64(addrVertexBase) + uint64(drawIdx)*addrVertexStride
	vbytes := nv * d.VertexBytes()
	geo.VertexBytes += uint64(vbytes)
	s.curClass = TrafficVertex
	for off := 0; off < vbytes; off += 64 {
		n := 64
		if vbytes-off < n {
			n = vbytes - off
		}
		geo.VertexMissCycles += s.accessExtra(s.vcache, vbase+uint64(off), n, false)
	}

	// Vertex shading.
	vs := s.programs[rec.pipe.VS]
	s.vsExec.Consts = rec.uniforms[:]
	shaded := s.arena.shaded(nv)
	for v := 0; v < nv; v++ {
		attrs := d.Vertex(v)
		for i := range attrs {
			s.vsExec.In[i] = attrs[i]
		}
		s.vsExec.Run(vs)
		shaded[v].Pos = s.vsExec.Out[0]
		for i := 0; i < rast.MaxVaryings; i++ {
			shaded[v].Var[i] = s.vsExec.Out[i+1]
		}
	}
	geo.VSInstructions += uint64(nv * vs.Len())
	if s.tr != nil {
		s.tr.End() // vertex-shading
		s.tr.BeginArg("tiling", "draw", int64(drawIdx))
	}

	// Primitive assembly: clip, cull, bin, and sign.
	producer := uint64(vs.Len()*3 + 4)
	nVaryings := d.NumAttrs - 1
	pbBytesPerTri := 3 * (1 + nVaryings) * 16
	for tri := 0; tri < d.TriangleCount(); tri++ {
		st.Triangles++
		s.arena.clipScratch = rast.ClipNear(s.arena.clipScratch[:0],
			rast.Triangle{V: [3]rast.Vertex{
				shaded[d.TriVertexIndex(tri, 0)],
				shaded[d.TriVertexIndex(tri, 1)],
				shaded[d.TriVertexIndex(tri, 2)],
			}})
		for ci := range s.arena.clipScratch {
			stri, ok := rast.Setup(s.arena.clipScratch[ci], s.trace.Width, s.trace.Height, rec.pipe.CullBack)
			if !ok {
				continue
			}
			ref := tiling.PrimRef{Draw: drawIdx, Tri: len(s.arena.tris)}
			tiles := s.binner.Insert(&stri, ref, d.NumAttrs, pbBytesPerTri)
			if len(tiles) == 0 {
				continue
			}
			//re:arena
			s.arena.tris = append(s.arena.tris, triRec{st: stri, draw: drawIdx})
			st.Binned++
			geo.BinTilePairs += uint64(len(tiles))

			// Parameter Buffer writes through the L2.
			s.curClass = TrafficPBWrite
			entry := s.binner.Bin(tiles[0])
			s.l2.Access(entry[len(entry)-1].Addr, pbBytesPerTri, true)
			for _, tile := range tiles {
				s.l2.Access(s.binner.PtrAddr(tile)+uint64(len(s.binner.Bin(tile)))*tiling.PtrEntryBytes, tiling.PtrEntryBytes, true)
			}

			// Sign the primitive's submitted attributes (Section III-E).
			s.arena.primScratch = api.AppendPrimitive(s.arena.primScratch[:0], d, tri)
			s.re.OnPrimitive(s.arena.primScratch, tiles, producer)
		}
	}
	if s.tr != nil {
		s.tr.End() // tiling
	}
}

// dramWrite issues a classified direct-to-DRAM write (tile flush path).
func (s *Simulator) dramWrite(addr uint64, size int) {
	s.frame.Traffic[s.curClass] += uint64(size)
	s.dram.Write(addr, size)
}
