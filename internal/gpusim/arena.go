package gpusim

import (
	"rendelim/internal/rast"
)

// frameArena owns every piece of per-frame scratch the simulator reuses
// across frames: the geometry phase's draw/triangle lists and signing
// buffers, the raster phase's per-tile result entries, and the frame's
// Stats accumulator. It exists so the frame hot path performs no steady-
// state allocations — each slice keeps its capacity across frames and only
// ever grows (amortized, workload-bounded), and the Stats value lives here
// rather than on RunFrame's stack so taking its address never forces a
// per-frame heap escape.
//
// Ownership rules (see DESIGN.md "Memory discipline"):
//
//   - The arena belongs to the Simulator and is reset — never reallocated —
//     at the top of RunFrame via beginFrame.
//   - Everything in it is dead outside the frame that filled it. RunFrame
//     returns Stats by value; nothing else escapes.
//   - tileRes entries are handed to raster workers one tile each; a worker
//     touches only its own entry, so the arena needs no locking.
type frameArena struct {
	// stats accumulates the frame's statistics; RunFrame returns a copy.
	stats Stats

	// Raster phase: one reusable entry per tile; access logs keep capacity.
	tileRes []tileResult

	// Geometry phase scratch.
	draws         []drawRec
	tris          []triRec
	pendingConsts []byte
	primScratch   []byte
	clipScratch   []rast.Triangle
	shadedScratch []rast.Vertex

	// crcBuf is the byte-serialization scratch for FrameBufferCRC.
	crcBuf []byte
}

// beginFrame resets the arena for a new frame, keeping all capacity.
func (a *frameArena) beginFrame() {
	a.stats = Stats{Frames: 1}
	a.draws = a.draws[:0]
	a.tris = a.tris[:0]
	a.pendingConsts = a.pendingConsts[:0]
}

// tiles returns the per-tile result entries for an n-tile frame, growing the
// backing array only when the tile count does (i.e. never, for a fixed
// framebuffer). Entries are reset individually by decideTile.
func (a *frameArena) tiles(n int) []tileResult {
	if cap(a.tileRes) < n {
		a.tileRes = make([]tileResult, n)
	}
	return a.tileRes[:n]
}

// shaded returns vertex-shading scratch for nv vertices.
func (a *frameArena) shaded(nv int) []rast.Vertex {
	if cap(a.shadedScratch) < nv {
		a.shadedScratch = make([]rast.Vertex, nv)
	}
	return a.shadedScratch[:nv]
}
