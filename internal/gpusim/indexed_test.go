package gpusim

import (
	"testing"

	"rendelim/internal/api"
	"rendelim/internal/geom"
	"rendelim/internal/shader"
	"rendelim/internal/texture"
)

// buildQuadTrace renders one screen-filling quad per frame, either as an
// indexed 4-vertex draw or a flat 6-vertex draw.
func buildQuadTrace(indexed bool, frames int) *api.Trace {
	const W, H = 64, 48
	tr := &api.Trace{
		Name: "quad", Width: W, Height: H,
		Programs: []*shader.Program{shader.TransformVS(2), shader.TexturedFS()},
		Textures: []api.TextureSpec{
			{Kind: api.TexChecker, W: 16, H: 16, Cell: 4,
				A: geom.V4(1, 0, 0, 1), B: geom.V4(0, 0, 1, 1), Filter: texture.Nearest},
		},
	}
	ortho := geom.Ortho(0, W, 0, H, -1, 1)
	c := geom.V4(1, 1, 1, 1)
	v := func(x, y, u, vv float32) []geom.Vec4 {
		return []geom.Vec4{geom.V4(x, y, 0, 1), c, geom.V4(u, vv, 0, 0)}
	}
	corners := [][]geom.Vec4{v(0, 0, 0, 0), v(W, 0, 1, 0), v(W, H, 1, 1), v(0, H, 0, 1)}
	for f := 0; f < frames; f++ {
		var d api.Draw
		d.NumAttrs = 3
		if indexed {
			for _, vv := range corners {
				d.Data = append(d.Data, vv...)
			}
			d.Indices = []uint16{0, 1, 2, 0, 2, 3}
		} else {
			for _, k := range []int{0, 1, 2, 0, 2, 3} {
				d.Data = append(d.Data, corners[k]...)
			}
		}
		tr.Frames = append(tr.Frames, api.Frame{Commands: []api.Command{
			api.SetUniforms{First: 0, Values: []geom.Vec4{ortho.Row(0), ortho.Row(1), ortho.Row(2), ortho.Row(3)}},
			api.SetUniforms{First: 4, Values: []geom.Vec4{c}},
			api.SetPipeline{VS: 0, FS: 1},
			d,
		}})
	}
	return tr
}

func TestIndexedDrawMatchesFlatPixels(t *testing.T) {
	flat := buildQuadTrace(false, 3)
	idx := buildQuadTrace(true, 3)
	simA, err := New(flat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	simB, err := New(idx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ra := simA.Run()
	rb := simB.Run()
	fa := simA.FrameBufferSnapshot()
	fb := simB.FrameBufferSnapshot()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("pixel %d differs between indexed and flat", i)
		}
	}
	// Indexed submission shades 4 vertices per frame instead of 6.
	if rb.Total.Vertices >= ra.Total.Vertices {
		t.Fatalf("indexed vertices %d should be fewer than flat %d",
			rb.Total.Vertices, ra.Total.Vertices)
	}
	if ra.Total.Triangles != rb.Total.Triangles {
		t.Fatal("triangle counts must match")
	}
}

// Indexed and flat submissions of identical geometry must produce identical
// tile-input signatures, so RE treats them the same.
func TestIndexedDrawSignsIdentically(t *testing.T) {
	flatTr := buildQuadTrace(false, 1)
	idxTr := buildQuadTrace(true, 1)
	var flatD, idxD api.Draw
	for _, cmd := range flatTr.Frames[0].Commands {
		if d, ok := cmd.(api.Draw); ok {
			flatD = d
		}
	}
	for _, cmd := range idxTr.Frames[0].Commands {
		if d, ok := cmd.(api.Draw); ok {
			idxD = d
		}
	}
	for tri := 0; tri < 2; tri++ {
		a := api.AppendPrimitive(nil, flatD, tri)
		b := api.AppendPrimitive(nil, idxD, tri)
		if string(a) != string(b) {
			t.Fatalf("triangle %d signs differently", tri)
		}
	}
}

func TestIndexedDrawValidation(t *testing.T) {
	d := api.Draw{NumAttrs: 1, Data: make([]geom.Vec4, 4),
		Indices: []uint16{0, 1, 2, 0, 2, 3}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.TriangleCount() != 2 || d.VertexCount() != 4 {
		t.Fatalf("counts: %d tris %d verts", d.TriangleCount(), d.VertexCount())
	}
	bad := api.Draw{NumAttrs: 1, Data: make([]geom.Vec4, 3), Indices: []uint16{0, 1, 5}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range index accepted")
	}
	ragged := api.Draw{NumAttrs: 1, Data: make([]geom.Vec4, 3), Indices: []uint16{0, 1}}
	if ragged.Validate() == nil {
		t.Fatal("non-triangle index list accepted")
	}
}
