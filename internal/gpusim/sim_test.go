package gpusim

import (
	"testing"

	"rendelim/internal/api"
	"rendelim/internal/geom"
	"rendelim/internal/shader"
	"rendelim/internal/texture"
	"rendelim/internal/workload"
)

// smallParams keeps unit-test runs fast.
func smallParams() workload.Params {
	return workload.Params{Width: 128, Height: 96, Frames: 8, Seed: 1}
}

func runTrace(t *testing.T, tr *api.Trace, tech Technique) Result {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Technique = tech
	sim, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run()
}

// staticTrace renders identical content every frame: a textured background
// plus a grid of sprites, never moving.
func staticTrace(frames int) *api.Trace {
	const W, H = 128, 96
	tr := &api.Trace{
		Name: "static", Width: W, Height: H,
		ClearColor: geom.V4(0.1, 0.1, 0.1, 1),
		Programs:   []*shader.Program{shader.TransformVS(2), shader.TexturedFS()},
		Textures: []api.TextureSpec{
			{Kind: api.TexChecker, W: 32, H: 32, Cell: 8,
				A: geom.V4(0.8, 0.2, 0.2, 1), B: geom.V4(0.2, 0.2, 0.8, 1), Filter: texture.Nearest},
		},
	}
	ortho := geom.Ortho(0, W, 0, H, -1, 1)
	quad := func(data []geom.Vec4, x, y, w, h float32, c geom.Vec4) []geom.Vec4 {
		p00, p10 := geom.V4(x, y, 0, 1), geom.V4(x+w, y, 0, 1)
		p01, p11 := geom.V4(x, y+h, 0, 1), geom.V4(x+w, y+h, 0, 1)
		uv0, uv1, uv2, uv3 := geom.V4(0, 0, 0, 0), geom.V4(1, 0, 0, 0), geom.V4(1, 1, 0, 0), geom.V4(0, 1, 0, 0)
		data = append(data, p00, c, uv0, p10, c, uv1, p11, c, uv2)
		return append(data, p00, c, uv0, p11, c, uv2, p01, c, uv3)
	}
	for f := 0; f < frames; f++ {
		var data []geom.Vec4
		data = quad(data, 0, 0, W, H, geom.V4(1, 1, 1, 1))
		for i := 0; i < 4; i++ {
			data = quad(data, 10+float32(i)*28, 30, 20, 20, geom.V4(0.5, 1, 0.5, 1))
		}
		tr.Frames = append(tr.Frames, api.Frame{Commands: []api.Command{
			api.SetUniforms{First: 0, Values: []geom.Vec4{ortho.Row(0), ortho.Row(1), ortho.Row(2), ortho.Row(3)}},
			api.SetUniforms{First: 4, Values: []geom.Vec4{geom.V4(1, 1, 1, 1)}},
			api.SetPipeline{VS: 0, FS: 1},
			api.Draw{NumAttrs: 3, Data: data},
		}})
	}
	return tr
}

func TestTechniqueStrings(t *testing.T) {
	if Baseline.String() != "base" || RE.String() != "re" || TE.String() != "te" || Memo.String() != "memo" {
		t.Fatal("technique names wrong")
	}
	if len(RE.SkippedStages()) <= len(TE.SkippedStages()) {
		t.Fatal("Figure 3: RE must skip more stages than TE")
	}
	if len(Baseline.SkippedStages()) != 0 {
		t.Fatal("baseline skips nothing")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.MemoLUTEntries = 0
	if bad.Validate() == nil {
		t.Fatal("bad memo geometry accepted")
	}
	bad = cfg
	bad.RefreshInterval = -1
	if bad.Validate() == nil {
		t.Fatal("negative refresh accepted")
	}
}

func TestBaselineRendersDeterministically(t *testing.T) {
	tr := staticTrace(3)
	a := runTrace(t, tr, Baseline)
	b := runTrace(t, tr, Baseline)
	if a.Total.TotalCycles() != b.Total.TotalCycles() ||
		a.Total.Activity.FSInstructions != b.Total.Activity.FSInstructions {
		t.Fatal("simulation not deterministic")
	}
}

func TestStaticSceneFullyRedundantAfterWarmup(t *testing.T) {
	tr := staticTrace(6)
	res := runTrace(t, tr, RE)
	// Frames 0 and 1 have no baseline; frames 2..5 must skip every tile.
	for f := 2; f < 6; f++ {
		fs := res.Frames[f]
		if fs.TilesSkipped != fs.TilesTotal {
			t.Fatalf("frame %d: skipped %d of %d tiles", f, fs.TilesSkipped, fs.TilesTotal)
		}
	}
	if res.Frames[0].TilesSkipped != 0 || res.Frames[1].TilesSkipped != 0 {
		t.Fatal("warmup frames must render")
	}
}

// The core safety invariant: RE must produce exactly the same displayed
// pixels as the baseline, frame by frame.
func TestREPixelExactVsBaseline(t *testing.T) {
	for _, alias := range []string{"desktop", "ccs", "cde", "coc", "ctr", "hop", "mst", "abi", "csn", "ter", "tib"} {
		b, err := workload.ByAlias(alias)
		if err != nil {
			t.Fatal(err)
		}
		tr := b.Build(smallParams())
		cfgA := DefaultConfig()
		cfgB := DefaultConfig()
		cfgB.Technique = RE
		simA, _ := New(tr, cfgA)
		simB, _ := New(tr, cfgB)
		for f := range tr.Frames {
			simA.RunFrame(&tr.Frames[f])
			simB.RunFrame(&tr.Frames[f])
			fa := simA.FrameBufferSnapshot()
			fb := simB.FrameBufferSnapshot()
			for i := range fa {
				if fa[i] != fb[i] {
					t.Fatalf("%s frame %d: pixel %d differs base=%08x re=%08x", alias, f, i, fa[i], fb[i])
				}
			}
		}
	}
}

// Equal inputs must imply equal colors: zero tiles in the collision class.
func TestNoEqualInputDifferentColor(t *testing.T) {
	for _, alias := range []string{"ccs", "cde", "coc", "mst", "hop", "tib"} {
		b, err := workload.ByAlias(alias)
		if err != nil {
			t.Fatal(err)
		}
		res := runTrace(t, b.Build(smallParams()), Baseline)
		if n := res.Total.TileClasses[TileEqInputDiffColor]; n != 0 {
			t.Fatalf("%s: %d equal-input different-color tiles (CRC collision or nondeterminism)", alias, n)
		}
	}
}

func TestREFasterOnStaticSlowerNowhere(t *testing.T) {
	tr := staticTrace(8)
	base := runTrace(t, tr, Baseline)
	re := runTrace(t, tr, RE)
	if re.Total.TotalCycles() >= base.Total.TotalCycles() {
		t.Fatalf("RE %d cycles >= baseline %d on a static scene", re.Total.TotalCycles(), base.Total.TotalCycles())
	}

	// On a no-redundancy scene the overhead must stay tiny (<1%, Section V).
	b, _ := workload.ByAlias("mst")
	mst := b.Build(smallParams())
	baseM := runTrace(t, mst, Baseline)
	reM := runTrace(t, mst, RE)
	ratio := float64(reM.Total.TotalCycles()) / float64(baseM.Total.TotalCycles())
	if ratio > 1.01 {
		t.Fatalf("RE overhead on mst = %.3fx (want <= 1.01x)", ratio)
	}
}

func TestTESkipsFlushesOnStaticScene(t *testing.T) {
	tr := staticTrace(6)
	res := runTrace(t, tr, TE)
	if res.Frames[5].FlushesSkipped != res.Frames[5].TilesTotal {
		t.Fatalf("static frame should skip all flushes: %d of %d",
			res.Frames[5].FlushesSkipped, res.Frames[5].TilesTotal)
	}
	// TE still renders everything: no tile skips, fragments shaded as base.
	base := runTrace(t, tr, Baseline)
	if res.Total.FragsShaded != base.Total.FragsShaded {
		t.Fatal("TE must not change shading work")
	}
	if res.Total.Traffic[TrafficColor] >= base.Total.Traffic[TrafficColor] {
		t.Fatal("TE should reduce color traffic")
	}
}

func TestTEPixelExactVsBaseline(t *testing.T) {
	b, _ := workload.ByAlias("ccs")
	tr := b.Build(smallParams())
	simA, _ := New(tr, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Technique = TE
	simB, _ := New(tr, cfg)
	for f := range tr.Frames {
		simA.RunFrame(&tr.Frames[f])
		simB.RunFrame(&tr.Frames[f])
	}
	fa := simA.FrameBufferSnapshot()
	fb := simB.FrameBufferSnapshot()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func TestMemoReusesAndStaysPixelExact(t *testing.T) {
	tr := staticTrace(6)
	base := runTrace(t, tr, Baseline)
	memo := runTrace(t, tr, Memo)
	if memo.Total.FragsMemoReused == 0 {
		t.Fatal("memoization never hit on a static scene")
	}
	if memo.Total.FragsShaded >= base.Total.FragsShaded {
		t.Fatal("memoization did not reduce shading")
	}
	// Functional equivalence.
	cfgM := DefaultConfig()
	cfgM.Technique = Memo
	simA, _ := New(tr, DefaultConfig())
	simB, _ := New(tr, cfgM)
	for f := range tr.Frames {
		simA.RunFrame(&tr.Frames[f])
		simB.RunFrame(&tr.Frames[f])
	}
	fa := simA.FrameBufferSnapshot()
	fb := simB.FrameBufferSnapshot()
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("pixel %d differs under memoization", i)
		}
	}
}

func TestMemoOddFramesCannotReuseCrossFrame(t *testing.T) {
	tr := staticTrace(5)
	cfg := DefaultConfig()
	cfg.Technique = Memo
	sim, _ := New(tr, cfg)
	var frames []Stats
	for f := range tr.Frames {
		frames = append(frames, sim.RunFrame(&tr.Frames[f]))
	}
	// Even (first-of-pair) frames only reuse intra-frame; odd frames also
	// reuse the previous frame. On a static scene odd frames must reuse
	// strictly more.
	if frames[1].FragsMemoReused <= frames[2].FragsMemoReused {
		t.Fatalf("PFR pairing broken: odd frame reused %d, even frame %d",
			frames[1].FragsMemoReused, frames[2].FragsMemoReused)
	}
}

func TestUploadDisablesREForFrame(t *testing.T) {
	tr := staticTrace(8)
	// Inject a texture upload into frame 4.
	up := api.UploadTexture{ID: 9, Spec: api.TextureSpec{
		Kind: api.TexChecker, W: 8, H: 8, Cell: 2,
		A: geom.V4(1, 0, 0, 1), B: geom.V4(0, 0, 1, 1), Filter: texture.Nearest},
	}
	tr.Frames[4].Commands = append([]api.Command{up}, tr.Frames[4].Commands...)
	res := runTrace(t, tr, RE)
	if res.Frames[4].TilesSkipped != 0 {
		t.Fatal("upload frame must render everything")
	}
	// Frame 5 compares against pre-upload frame 3, whose baseline was
	// invalidated: it must render. Frame 6 compares against frame 4, which
	// already used the new texture, so skipping is safe again.
	if res.Frames[5].TilesSkipped != 0 {
		t.Fatalf("stale pre-upload baseline used: frame 5 skipped %d", res.Frames[5].TilesSkipped)
	}
	if res.Frames[6].TilesSkipped != res.Frames[6].TilesTotal {
		t.Fatalf("frame 6 should be fully redundant vs post-upload frame 4, skipped %d", res.Frames[6].TilesSkipped)
	}
	if res.Frames[7].TilesSkipped != res.Frames[7].TilesTotal {
		t.Fatalf("frame 7 should be fully redundant, skipped %d", res.Frames[7].TilesSkipped)
	}
}

func TestMRTDisablesRE(t *testing.T) {
	tr := staticTrace(6)
	tr.Frames[4].Commands = append([]api.Command{api.SetRenderTargets{N: 2}}, tr.Frames[4].Commands...)
	tr.Frames[5].Commands = append([]api.Command{api.SetRenderTargets{N: 1}}, tr.Frames[5].Commands...)
	res := runTrace(t, tr, RE)
	if res.Frames[4].TilesSkipped != 0 {
		t.Fatal("MRT frame must render everything")
	}
	if res.Frames[5].TilesSkipped == 0 {
		t.Fatal("RE should resume after MRT ends (baselines remain valid)")
	}
}

func TestRefreshIntervalForcesRender(t *testing.T) {
	tr := staticTrace(9)
	cfg := DefaultConfig()
	cfg.Technique = RE
	cfg.RefreshInterval = 4
	sim, _ := New(tr, cfg)
	var frames []Stats
	for f := range tr.Frames {
		frames = append(frames, sim.RunFrame(&tr.Frames[f]))
	}
	if frames[4].TilesSkipped != 0 || frames[8].TilesSkipped != 0 {
		t.Fatalf("refresh frames must render: f4=%d f8=%d", frames[4].TilesSkipped, frames[8].TilesSkipped)
	}
	if frames[5].TilesSkipped == 0 {
		t.Fatal("non-refresh frame should skip again")
	}
}

func TestTrafficClassification(t *testing.T) {
	b, _ := workload.ByAlias("ccs")
	res := runTrace(t, b.Build(smallParams()), Baseline)
	tot := res.Total
	if tot.Traffic[TrafficColor] == 0 || tot.Traffic[TrafficTexel] == 0 ||
		tot.Traffic[TrafficPBWrite] == 0 || tot.Traffic[TrafficVertex] == 0 {
		t.Fatalf("traffic classes missing: %+v", tot.Traffic)
	}
	if tot.TotalTraffic() != tot.Activity.DRAMBytes {
		t.Fatalf("classified %d bytes, DRAM moved %d", tot.TotalTraffic(), tot.Activity.DRAMBytes)
	}
}

func TestREReducesTrafficAndEnergyActivity(t *testing.T) {
	b, _ := workload.ByAlias("cde")
	tr := b.Build(smallParams())
	base := runTrace(t, tr, Baseline)
	re := runTrace(t, tr, RE)
	if re.Total.RasterTraffic() >= base.Total.RasterTraffic() {
		t.Fatal("RE should cut raster traffic on cde")
	}
	if re.Total.FragsShaded >= base.Total.FragsShaded {
		t.Fatal("RE should cut shaded fragments on cde")
	}
	if re.Total.Activity.SigBufferAccesses == 0 {
		t.Fatal("RE runs must charge Signature Buffer energy")
	}
	if base.Total.Activity.SigBufferAccesses != 0 {
		t.Fatal("baseline must not charge RE structures")
	}
}

func TestStatsAddAndDerived(t *testing.T) {
	var s Stats
	s.TilesClassified = 10
	s.TileClasses[TileEqColorEqInput] = 4
	s.TileClasses[TileEqColorDiffInput] = 2
	if s.EqualColorFraction() != 0.6 {
		t.Fatalf("equal-color fraction = %v", s.EqualColorFraction())
	}
	s.TilesTotal = 20
	s.TilesSkipped = 5
	if s.SkipFraction() != 0.25 {
		t.Fatalf("skip fraction = %v", s.SkipFraction())
	}
	var zero Stats
	if zero.EqualColorFraction() != 0 || zero.SkipFraction() != 0 {
		t.Fatal("zero stats should not divide by zero")
	}
}

func TestShaderUploadMidTrace(t *testing.T) {
	tr := staticTrace(4)
	newFS := shader.FlatFS()
	tr.Frames[2].Commands = append([]api.Command{api.UploadProgram{ID: 9, Program: newFS}}, tr.Frames[2].Commands...)
	res := runTrace(t, tr, RE)
	if res.Frames[2].TilesSkipped != 0 {
		t.Fatal("program upload frame must render")
	}
}
