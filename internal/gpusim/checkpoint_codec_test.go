package gpusim

import (
	"errors"
	"reflect"
	"testing"

	"rendelim/internal/crc"
	"rendelim/internal/wire"
	"rendelim/internal/workload"
)

// The crash-recovery contract: a checkpoint that crosses a process boundary
// (encode → bytes → decode, with no shared memory) must restore a fresh
// simulator so exactly that the continued run is byte-identical — per-frame
// stats and final pixels — to one that never stopped. The fresh simulator
// here stands in for the restarted process: it shares nothing with the one
// that took the checkpoint except the trace and config, which is all a
// recovering resvc has.
func TestCheckpointCodecRoundTrip(t *testing.T) {
	params := workload.Params{Width: 96, Height: 64, Frames: 8, Seed: 1}
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []Technique{Baseline, RE, TE, Memo} {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			tr := b.Build(params)
			cfg := DefaultConfig()
			cfg.Technique = tech

			const k = 3
			ref, err := New(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var blob []byte
			var refStats []Stats
			for i := range tr.Frames {
				if i == k {
					blob = ref.Checkpoint().EncodeBinary()
				}
				refStats = append(refStats, ref.RunFrame(&tr.Frames[i]))
			}
			refCRC := ref.FrameBufferCRC()

			cp, err := DecodeCheckpoint(blob)
			if err != nil {
				t.Fatalf("DecodeCheckpoint: %v", err)
			}
			if cp.Frame() != k {
				t.Fatalf("decoded checkpoint frame = %d, want %d", cp.Frame(), k)
			}

			// The "restarted process": a simulator built from scratch.
			res, err := New(b.Build(params), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Resume(cp); err != nil {
				t.Fatalf("Resume(decoded): %v", err)
			}
			for i := k; i < len(tr.Frames); i++ {
				got := res.RunFrame(&tr.Frames[i])
				if !reflect.DeepEqual(got, refStats[i]) {
					t.Fatalf("frame %d stats diverge after decoded resume:\n got %+v\nwant %+v", i, got, refStats[i])
				}
			}
			if got := res.FrameBufferCRC(); got != refCRC {
				t.Fatalf("framebuffer CRC after decoded resume = %08x, want %08x", got, refCRC)
			}
		})
	}
}

// A future (unknown) version tag must be rejected outright — decoding a v2
// blob with v1 field layout would corrupt a recovery silently.
func TestCheckpointCodecVersionRejected(t *testing.T) {
	blob := testCheckpointBlob(t)
	// Bump the version field (right after the 4-byte magic) and re-seal the
	// CRC so only the version differs from a valid blob.
	mut := append([]byte(nil), blob...)
	mut[4]++
	body := mut[:len(mut)-4]
	reseal := wire.AppendU32(body[:len(body):len(body)], crc.Checksum(body))
	if _, err := DecodeCheckpoint(reseal); !errors.Is(err, ErrCheckpointFormat) {
		t.Fatalf("future version decoded: err = %v, want ErrCheckpointFormat", err)
	}
}

func TestCheckpointCodecRejectsDamage(t *testing.T) {
	blob := testCheckpointBlob(t)

	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), blob...)
		mut[0] ^= 0xff
		if _, err := DecodeCheckpoint(mut); !errors.Is(err, ErrCheckpointFormat) {
			t.Fatalf("err = %v, want ErrCheckpointFormat", err)
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		mut := append([]byte(nil), blob...)
		mut[len(mut)/2] ^= 0x10
		if _, err := DecodeCheckpoint(mut); !errors.Is(err, ErrCheckpointFormat) {
			t.Fatalf("err = %v, want ErrCheckpointFormat", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeCheckpoint(blob[:len(blob)*2/3]); !errors.Is(err, ErrCheckpointFormat) {
			t.Fatalf("err = %v, want ErrCheckpointFormat", err)
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeCheckpoint(nil); !errors.Is(err, ErrCheckpointFormat) {
			t.Fatalf("err = %v, want ErrCheckpointFormat", err)
		}
	})
}

// A decoded checkpoint from one trace must not restore a simulator built
// over a different one.
func TestCheckpointCodecTraceMismatch(t *testing.T) {
	blob := testCheckpointBlob(t)
	cp, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	other, err := New(b.Build(workload.Params{Width: 64, Height: 48, Frames: 3, Seed: 9}), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Resume(cp); err == nil {
		t.Fatal("Resume accepted a checkpoint from a different trace")
	}
}

// testCheckpointBlob runs two frames of the suite's ccs workload under RE
// and returns the encoded frame-2 checkpoint.
func testCheckpointBlob(t *testing.T) []byte {
	t.Helper()
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: 4, Seed: 1})
	cfg := DefaultConfig()
	cfg.Technique = RE
	sim, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFrame(&tr.Frames[0])
	sim.RunFrame(&tr.Frames[1])
	return sim.Checkpoint().EncodeBinary()
}
