package gpusim

import (
	"bytes"
	"encoding/json"
	"testing"

	"rendelim/internal/obs"
	"rendelim/internal/workload"
)

func runTraced(t *testing.T, tech Technique) (*obs.Tracer, Result) {
	t.Helper()
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: 5, Seed: 1})
	cfg := DefaultConfig()
	cfg.Technique = tech
	cfg.Tracer = obs.NewTracer()
	sim, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg.Tracer, sim.Run()
}

// TestPipelineTrace runs a redundant workload under RE with tracing on and
// validates the emitted timeline: one span per frame, nested per-stage
// spans in pipeline order, tile-elimination instant events, and balanced
// nesting throughout.
func TestPipelineTrace(t *testing.T) {
	tracer, res := runTraced(t, RE)

	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf obs.TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}

	var stack []string
	frames, eliminations := 0, 0
	stagesSeen := map[string]bool{}
	for i, e := range tf.TraceEvents {
		switch e.Ph {
		case "B":
			if e.Name == "frame" {
				frames++
				if len(stack) != 0 {
					t.Fatalf("event %d: frame span opened inside %v", i, stack)
				}
			} else if len(stack) == 0 {
				t.Fatalf("event %d: stage span %q outside any frame", i, e.Name)
			}
			stack = append(stack, e.Name)
			stagesSeen[e.Name] = true
		case "E":
			if len(stack) == 0 || stack[len(stack)-1] != e.Name {
				t.Fatalf("event %d: E %q does not match stack %v", i, e.Name, stack)
			}
			stack = stack[:len(stack)-1]
		case "i":
			if e.Name == "tile-eliminated" {
				eliminations++
				if len(stack) == 0 || stack[len(stack)-1] != "raster" {
					t.Errorf("event %d: elimination outside raster span (stack %v)", i, stack)
				}
			}
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed spans: %v", stack)
	}
	if frames != len(res.Frames) {
		t.Errorf("frame spans %d, want %d", frames, len(res.Frames))
	}
	if uint64(eliminations) != res.Total.TilesSkipped {
		t.Errorf("elimination instants %d, want %d (TilesSkipped)", eliminations, res.Total.TilesSkipped)
	}
	if res.Total.TilesSkipped == 0 {
		t.Error("ccs under RE should skip tiles — trace has nothing to show")
	}
	for _, want := range []string{"frame", "geometry", "vertex-shading", "tiling", "raster", "re-check", "raster-tile", "fragment-shading", "dram-flush"} {
		if !stagesSeen[want] {
			t.Errorf("missing stage span %q", want)
		}
	}
}

// TestTracingDoesNotPerturbResults: a traced run and an untraced run of the
// same workload must produce identical statistics.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	_, traced := runTraced(t, RE)

	b, _ := workload.ByAlias("ccs")
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: 5, Seed: 1})
	cfg := DefaultConfig()
	cfg.Technique = RE
	sim, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	plain := sim.Run()
	if traced.Total != plain.Total {
		t.Errorf("tracing changed results:\ntraced %+v\nplain  %+v", traced.Total, plain.Total)
	}
}

// TestStageCycles checks the per-stage cycle attribution: every pipeline
// stage a run exercises reports cycles, RE runs attribute signature-check
// cycles, and Add aggregates the array.
func TestStageCycles(t *testing.T) {
	_, re := runTraced(t, RE)
	sc := re.Total.StageCycles
	for _, stage := range []PipeStage{StageVertex, StageTiling, StageSigCheck, StageRaster, StageFragment, StageFlush} {
		if sc[stage] == 0 {
			t.Errorf("stage %s reports 0 cycles under RE", stage)
		}
	}

	_, base := runTraced(t, Baseline)
	if base.Total.StageCycles[StageSigCheck] != 0 {
		t.Errorf("baseline attributes %d sig-check cycles, want 0", base.Total.StageCycles[StageSigCheck])
	}

	// Add must accumulate the array: the total equals the per-frame sum.
	var sum Stats
	for _, f := range re.Frames {
		sum.Add(f)
	}
	if sum.StageCycles != re.Total.StageCycles {
		t.Errorf("Add dropped stage cycles: %v vs %v", sum.StageCycles, re.Total.StageCycles)
	}
	// Skipped tiles must be cheap: RE spends fewer raster-stage cycles
	// than baseline on this redundant workload.
	if re.Total.StageCycles[StageRaster] >= base.Total.StageCycles[StageRaster] {
		t.Errorf("RE raster stage cycles %d not below baseline %d", re.Total.StageCycles[StageRaster], base.Total.StageCycles[StageRaster])
	}
}

// TestPipeStageStrings pins the metric label names.
func TestPipeStageStrings(t *testing.T) {
	want := map[PipeStage]string{
		StageVertex: "vertex", StageTiling: "tiling", StageSigCheck: "sig-check",
		StageRaster: "raster", StageFragment: "fragment", StageFlush: "flush",
	}
	for st, name := range want {
		if st.String() != name {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), name)
		}
	}
	wantClass := map[TileClass]string{
		TileEqColorEqInput: "eq-color-eq-input", TileEqColorDiffInput: "eq-color-diff-input",
		TileDiffColor: "diff-color", TileEqInputDiffColor: "eq-input-diff-color",
	}
	for c, name := range wantClass {
		if c.String() != name {
			t.Errorf("class %d.String() = %q, want %q", c, c.String(), name)
		}
	}
}
