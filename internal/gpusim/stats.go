package gpusim

import "rendelim/internal/energy"

// TrafficClass attributes DRAM bytes to their architectural source, the
// split of Figure 15b (colors / texels / primitives) plus the geometry-side
// classes.
type TrafficClass int

// Traffic classes.
const (
	TrafficVertex  TrafficClass = iota // vertex attribute fetch
	TrafficPBWrite                     // Parameter Buffer writes (geometry)
	TrafficPBRead                      // Parameter Buffer reads (Tile Cache)
	TrafficTexel                       // texture fetch
	TrafficColor                       // Color Buffer flush to Frame Buffer
	NumTrafficClasses
)

// String implements fmt.Stringer.
func (t TrafficClass) String() string {
	switch t {
	case TrafficVertex:
		return "vertex"
	case TrafficPBWrite:
		return "pb-write"
	case TrafficPBRead:
		return "primitives"
	case TrafficTexel:
		return "texels"
	case TrafficColor:
		return "colors"
	}
	return "?"
}

// TileClass is the Figure 15a classification of a tile against the frame
// two swaps back.
type TileClass int

// Tile classes.
const (
	TileEqColorEqInput   TileClass = iota // redundant and detected by RE
	TileEqColorDiffInput                  // RE false negative (12% avg in paper)
	TileDiffColor                         // genuinely changed
	TileEqInputDiffColor                  // must be zero (hash collision!)
	NumTileClasses
)

// String names the class for metrics labels and tables.
func (c TileClass) String() string {
	switch c {
	case TileEqColorEqInput:
		return "eq-color-eq-input"
	case TileEqColorDiffInput:
		return "eq-color-diff-input"
	case TileDiffColor:
		return "diff-color"
	case TileEqInputDiffColor:
		return "eq-input-diff-color"
	}
	return "?"
}

// PipeStage identifies one stage of the modeled pipeline for per-stage
// cycle attribution — the axis of the paper's overhead analysis, exposed
// through tracing spans and the resvc /metrics endpoint.
type PipeStage int

// Pipeline stages, in execution order.
const (
	StageVertex   PipeStage = iota // vertex fetch + vertex shading
	StageTiling                    // primitive assembly, binning, PB writes
	StageSigCheck                  // RE signature compute/compare + SU stalls
	StageRaster                    // PB fetch, triangle setup, quad traversal
	StageFragment                  // fragment shading + blending
	StageFlush                     // Color Buffer flush to DRAM
	NumPipeStages
)

// String implements fmt.Stringer.
func (p PipeStage) String() string {
	switch p {
	case StageVertex:
		return "vertex"
	case StageTiling:
		return "tiling"
	case StageSigCheck:
		return "sig-check"
	case StageRaster:
		return "raster"
	case StageFragment:
		return "fragment"
	case StageFlush:
		return "flush"
	}
	return "?"
}

// Stats aggregates one frame (or a whole run, via Add).
type Stats struct {
	Frames uint64

	GeometryCycles uint64
	RasterCycles   uint64
	SUStallCycles  uint64 // Signature Unit back-pressure included in GeometryCycles

	// StageCycles attributes cycles to individual pipeline stages
	// (timing.GeometryStageCycles / TileStageCycles). Stages overlap in
	// the pipeline model, so the array does not sum to TotalCycles.
	StageCycles [NumPipeStages]uint64

	// Tile accounting.
	TilesTotal   uint64
	TilesSkipped uint64 // RE bypassed the Raster Pipeline
	TileClasses  [NumTileClasses]uint64
	// TilesClassified counts tiles with both ground truth and signature
	// available (rendered tiles in TrackGroundTruth runs plus RE-skipped
	// tiles, which are equal-by-invariant).
	TilesClassified uint64

	// Fragment accounting.
	FragsRasterized uint64 // survived early-Z, entered shading decision
	FragsShaded     uint64 // actually executed the fragment shader
	FragsMemoReused uint64 // Memo LUT hits
	FragsEarlyZKill uint64
	QuadsTested     uint64

	// Geometry accounting.
	Vertices  uint64
	Triangles uint64 // post-clip, pre-cull
	Binned    uint64 // primitives binned (visible after cull)

	// Flush accounting (TE).
	FlushesDone    uint64
	FlushesSkipped uint64

	// Traffic per class, in DRAM bytes.
	Traffic [NumTrafficClasses]uint64

	// Energy-model activity.
	Activity energy.Activity
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Frames += o.Frames
	s.GeometryCycles += o.GeometryCycles
	s.RasterCycles += o.RasterCycles
	s.SUStallCycles += o.SUStallCycles
	for i := range s.StageCycles {
		s.StageCycles[i] += o.StageCycles[i]
	}
	s.TilesTotal += o.TilesTotal
	s.TilesSkipped += o.TilesSkipped
	for i := range s.TileClasses {
		s.TileClasses[i] += o.TileClasses[i]
	}
	s.TilesClassified += o.TilesClassified
	s.FragsRasterized += o.FragsRasterized
	s.FragsShaded += o.FragsShaded
	s.FragsMemoReused += o.FragsMemoReused
	s.FragsEarlyZKill += o.FragsEarlyZKill
	s.QuadsTested += o.QuadsTested
	s.Vertices += o.Vertices
	s.Triangles += o.Triangles
	s.Binned += o.Binned
	s.FlushesDone += o.FlushesDone
	s.FlushesSkipped += o.FlushesSkipped
	for i := range s.Traffic {
		s.Traffic[i] += o.Traffic[i]
	}
	s.Activity.Add(o.Activity)
}

// TotalCycles returns geometry + raster cycles.
func (s Stats) TotalCycles() uint64 { return s.GeometryCycles + s.RasterCycles }

// TotalTraffic returns total DRAM bytes.
func (s Stats) TotalTraffic() uint64 {
	var t uint64
	for _, v := range s.Traffic {
		t += v
	}
	return t
}

// RasterTraffic returns the Figure 15b subset: primitives read + texels +
// colors.
func (s Stats) RasterTraffic() uint64 {
	return s.Traffic[TrafficPBRead] + s.Traffic[TrafficTexel] + s.Traffic[TrafficColor]
}

// EqualColorFraction returns the Figure 2 metric: the fraction of classified
// tiles whose color matches the previous same-parity frame.
func (s Stats) EqualColorFraction() float64 {
	if s.TilesClassified == 0 {
		return 0
	}
	eq := s.TileClasses[TileEqColorEqInput] + s.TileClasses[TileEqColorDiffInput]
	return float64(eq) / float64(s.TilesClassified)
}

// SkipFraction returns the fraction of tiles RE bypassed.
func (s Stats) SkipFraction() float64 {
	if s.TilesTotal == 0 {
		return 0
	}
	return float64(s.TilesSkipped) / float64(s.TilesTotal)
}
