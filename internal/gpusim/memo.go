package gpusim

import (
	"encoding/binary"
	"math"

	"rendelim/internal/crc"
	"rendelim/internal/geom"
)

// Fragment Memoization (Arnau et al. [17]) as configured in Section V-A: a
// 32-bit hash of all fragment-shader inputs with screen coordinates
// discarded, a 2048-entry 4-way LUT, on top of Parallel Frame Rendering.
//
// PFR renders two consecutive frames in parallel with tiles kept
// synchronized, so frame 2k+1's tile T is shaded immediately after frame
// 2k's tile T — the reuse distance is one tile, not one frame. memoState
// models exactly that: per tile it keeps the hash→color pairs inserted
// while shading the previous frame's same tile (capped at the LUT size).
// Lookups hit (a) fragments already shaded in the current tile (intra-frame
// repetition — the effect that makes hop favor memoization), and (b) on the
// second frame of each pair only, the previous frame's same-tile entries;
// first-of-pair frames cannot reuse across frames because their candidates
// were evicted a whole frame ago (the PFR limitation Section I describes).

// memoState is the PFR-synchronized memoization model. The current tile's
// hash→color map is passed in explicitly (it lives on the rendering worker),
// so that concurrent tile renders never share mutable state: prev[tile] is
// only ever read and written by tile's own render, which keeps it safely
// per-tile-disjoint under parallel raster execution. The Lookups/Hits
// counters are folded in by the commit stage from per-tile shards.
type memoState struct {
	cap  int
	prev []map[uint32]geom.Vec4 // per tile: entries from the previous frame

	Lookups uint64
	Hits    uint64
}

func newMemoState(tiles, lutEntries int) *memoState {
	return &memoState{cap: lutEntries, prev: make([]map[uint32]geom.Vec4, tiles)}
}

// commitTile records the tile's entries as the baseline for the next frame.
func (m *memoState) commitTile(tile int, cur map[uint32]geom.Vec4) {
	m.prev[tile] = cur
}

// lookup returns a memoized color from the current tile's entries, or — when
// crossFrame permits it (second frame of a PFR pair) — from the previous
// frame's same tile.
func (m *memoState) lookup(cur map[uint32]geom.Vec4, tile int, h uint32, crossFrame bool) (geom.Vec4, bool) {
	if c, ok := cur[h]; ok {
		return c, true
	}
	if crossFrame {
		if c, ok := m.prev[tile][h]; ok {
			return c, true
		}
	}
	return geom.Vec4{}, false
}

// insert memoizes a shaded color, respecting the LUT capacity.
func (m *memoState) insert(cur map[uint32]geom.Vec4, h uint32, color geom.Vec4) {
	if len(cur) >= m.cap {
		return
	}
	cur[h] = color
}

// memoLUT is the plain global LUT (no PFR tile synchronization) used by the
// ablation harness to show why [17] needs PFR: with whole-frame reuse
// distances a 2048-entry LUT thrashes and inter-frame hits vanish.
type memoLUT struct {
	sets int
	ways int
	tag  []uint32
	val  []geom.Vec4
	ok   []bool
	age  []uint32
	tick uint32

	Lookups uint64
	Hits    uint64
}

func newMemoLUT(entries, ways int) *memoLUT {
	sets := entries / ways
	return &memoLUT{
		sets: sets,
		ways: ways,
		tag:  make([]uint32, entries),
		val:  make([]geom.Vec4, entries),
		ok:   make([]bool, entries),
		age:  make([]uint32, entries),
	}
}

// lookup returns the memoized color for hash h, if present.
func (m *memoLUT) lookup(h uint32) (geom.Vec4, bool) {
	m.Lookups++
	base := int(h) % m.sets * m.ways
	for w := 0; w < m.ways; w++ {
		if m.ok[base+w] && m.tag[base+w] == h {
			m.tick++
			m.age[base+w] = m.tick
			m.Hits++
			return m.val[base+w], true
		}
	}
	return geom.Vec4{}, false
}

// insert memoizes a color under hash h with LRU replacement.
func (m *memoLUT) insert(h uint32, color geom.Vec4) {
	base := int(h) % m.sets * m.ways
	victim := base
	for w := 0; w < m.ways; w++ {
		i := base + w
		if m.ok[i] && m.tag[i] == h {
			victim = i
			break
		}
		if !m.ok[i] {
			victim = i
			break
		}
		if m.age[i] < m.age[victim] {
			victim = i
		}
	}
	m.tick++
	m.tag[victim] = h
	m.val[victim] = color
	m.ok[victim] = true
	m.age[victim] = m.tick
}

// fragmentHasher builds the 32-bit memoization key from the inputs the
// fragment shader actually reads: the program, the textures it can sample,
// the read uniform registers and the read varyings. Screen coordinates are
// deliberately excluded (Section V-A).
type fragmentHasher struct {
	buf [8 + 32*16 + 3*16]byte
}

func (fh *fragmentHasher) hash(fsID uint8, texIDs [4]uint8, inMask uint16, constMask uint32,
	uniforms []geom.Vec4, varyings *[3]geom.Vec4) uint32 {
	b := fh.buf[:0]
	b = append(b, fsID, texIDs[0], texIDs[1], texIDs[2], texIDs[3], 0, 0, 0)
	for i, u := range uniforms {
		if constMask&(1<<uint(i)) != 0 {
			b = appendVec(b, u)
		}
	}
	for i := range varyings {
		// Varying v_{i+1} corresponds to rast.Fragment.Var[i].
		if inMask&(1<<uint(i+1)) != 0 {
			b = appendVec(b, varyings[i])
		}
	}
	return crc.Checksum(b)
}

func appendVec(b []byte, v geom.Vec4) []byte {
	var w [16]byte
	binary.LittleEndian.PutUint32(w[0:], math.Float32bits(v.X))
	binary.LittleEndian.PutUint32(w[4:], math.Float32bits(v.Y))
	binary.LittleEndian.PutUint32(w[8:], math.Float32bits(v.Z))
	binary.LittleEndian.PutUint32(w[12:], math.Float32bits(v.W))
	return append(b, w[:]...)
}
