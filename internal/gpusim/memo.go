package gpusim

import (
	"encoding/binary"
	"math"

	"rendelim/internal/crc"
	"rendelim/internal/geom"
)

// Fragment Memoization (Arnau et al. [17]) as configured in Section V-A: a
// 32-bit hash of all fragment-shader inputs with screen coordinates
// discarded, a 2048-entry 4-way LUT, on top of Parallel Frame Rendering.
//
// PFR renders two consecutive frames in parallel with tiles kept
// synchronized, so frame 2k+1's tile T is shaded immediately after frame
// 2k's tile T — the reuse distance is one tile, not one frame. memoState
// models exactly that: per tile it keeps the hash→color pairs inserted
// while shading the previous frame's same tile (capped at the LUT size).
// Lookups hit (a) fragments already shaded in the current tile (intra-frame
// repetition — the effect that makes hop favor memoization), and (b) on the
// second frame of each pair only, the previous frame's same-tile entries;
// first-of-pair frames cannot reuse across frames because their candidates
// were evicted a whole frame ago (the PFR limitation Section I describes).

// memoTable is one tile's pooled hash→color table: open addressing with
// linear probing and epoch-tagged slots, so the per-frame reset is a counter
// bump instead of a clear or a fresh allocation. A slot is live iff its
// epoch tag equals the table's current epoch; stale slots (from earlier
// frames) terminate probes exactly like empty ones. Tables are never
// iterated by the model, only probed by key, so they are drop-in
// replacements for the maps they pool — and once a table has grown to its
// steady-state size the Memo render path allocates nothing per tile.
type memoTable struct {
	epoch  uint32
	n      int // live entries in the current epoch
	epochs []uint32
	keys   []uint32
	vals   []geom.Vec4
}

// memoTableMinSlots is the initial table size (power of two, ≥ the old
// maps' 64-entry size hint at the 3/4 load factor).
const memoTableMinSlots = 128

// reset opens a new epoch, logically emptying the table in O(1).
func (t *memoTable) reset() {
	t.n = 0
	t.epoch++
	if t.epoch == 0 { // wrapped: stale tags could alias the new epoch
		for i := range t.epochs {
			t.epochs[i] = 0
		}
		t.epoch = 1
	}
}

// lookup probes for h among the current epoch's entries.
func (t *memoTable) lookup(h uint32) (geom.Vec4, bool) {
	if len(t.keys) == 0 {
		return geom.Vec4{}, false
	}
	mask := uint32(len(t.keys) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		if t.epochs[i] != t.epoch {
			return geom.Vec4{}, false
		}
		if t.keys[i] == h {
			return t.vals[i], true
		}
	}
}

// insert stores h→v. h must be absent (callers always look up first), so no
// overwrite path exists.
func (t *memoTable) insert(h uint32, v geom.Vec4) {
	if t.n*4 >= len(t.keys)*3 {
		t.grow()
	}
	mask := uint32(len(t.keys) - 1)
	i := h & mask
	for t.epochs[i] == t.epoch {
		i = (i + 1) & mask
	}
	t.epochs[i] = t.epoch
	t.keys[i] = h
	t.vals[i] = v
	t.n++
}

// grow doubles the table and rehashes the live entries. Growth stops once
// the tile's working set fits (bounded by the LUT capacity), after which
// frames are allocation-free.
func (t *memoTable) grow() {
	size := memoTableMinSlots
	if len(t.keys) > 0 {
		size = len(t.keys) * 2
	}
	oldEpoch, oldEpochs, oldKeys, oldVals := t.epoch, t.epochs, t.keys, t.vals
	t.epoch = 1
	t.n = 0
	t.epochs = make([]uint32, size)
	t.keys = make([]uint32, size)
	t.vals = make([]geom.Vec4, size)
	mask := uint32(size - 1)
	for i := range oldKeys {
		if oldEpochs[i] != oldEpoch {
			continue
		}
		j := oldKeys[i] & mask
		for t.epochs[j] == t.epoch {
			j = (j + 1) & mask
		}
		t.epochs[j] = t.epoch
		t.keys[j] = oldKeys[i]
		t.vals[j] = oldVals[i]
		t.n++
	}
}

// entries appends the live (hash, color) pairs to dst, for checkpoints.
func (t *memoTable) entries(dst []memoEntry) []memoEntry {
	for i, e := range t.epochs {
		if e == t.epoch {
			dst = append(dst, memoEntry{H: t.keys[i], C: t.vals[i]})
		}
	}
	return dst
}

// memoEntry is one checkpointed hash→color pair.
type memoEntry struct {
	H uint32
	C geom.Vec4
}

// memoState is the PFR-synchronized memoization model. The current tile's
// hash→color table is handed out explicitly (tileTable) and passed back at
// commit, so that concurrent tile renders never share mutable state:
// cur[tile] and prev[tile] are only ever touched by tile's own render, which
// keeps them safely per-tile-disjoint under parallel raster execution. Each
// tile owns two pooled tables whose roles swap every frame — the frame
// being rendered inserts into one while reading the other (previous frame's
// entries). The Lookups/Hits counters are folded in by the commit stage
// from per-tile shards.
type memoState struct {
	cap  int
	cur  []*memoTable // per tile: table for the frame being rendered
	prev []*memoTable // per tile: entries committed by the previous frame

	Lookups uint64
	Hits    uint64
}

func newMemoState(tiles, lutEntries int) *memoState {
	return &memoState{
		cap:  lutEntries,
		cur:  make([]*memoTable, tiles),
		prev: make([]*memoTable, tiles),
	}
}

// tileTable returns tile's reset current-frame table, allocating it on first
// use (each tile reaches its steady two tables within two frames).
func (m *memoState) tileTable(tile int) *memoTable {
	t := m.cur[tile]
	if t == nil {
		t = new(memoTable)
		m.cur[tile] = t
	}
	t.reset()
	return t
}

// commitTile records the tile's entries as the baseline for the next frame
// and recycles the old baseline table as the tile's next scratch.
func (m *memoState) commitTile(tile int, cur *memoTable) {
	m.cur[tile], m.prev[tile] = m.prev[tile], cur
}

// lookup returns a memoized color from the current tile's entries, or — when
// crossFrame permits it (second frame of a PFR pair) — from the previous
// frame's same tile.
func (m *memoState) lookup(cur *memoTable, tile int, h uint32, crossFrame bool) (geom.Vec4, bool) {
	if c, ok := cur.lookup(h); ok {
		return c, true
	}
	if crossFrame {
		if p := m.prev[tile]; p != nil {
			if c, ok := p.lookup(h); ok {
				return c, true
			}
		}
	}
	return geom.Vec4{}, false
}

// insert memoizes a shaded color, respecting the LUT capacity.
func (m *memoState) insert(cur *memoTable, h uint32, color geom.Vec4) {
	if cur.n >= m.cap {
		return
	}
	cur.insert(h, color)
}

// snapshotPrev deep-copies the per-tile baselines for a checkpoint. The
// pooled tables are mutated again two frames later (their roles swap), so —
// unlike the old per-frame maps — sharing them with a checkpoint is not
// safe; the compact entry list is the stable form.
func (m *memoState) snapshotPrev() [][]memoEntry {
	out := make([][]memoEntry, len(m.prev))
	for i, t := range m.prev {
		if t != nil && t.n > 0 {
			out[i] = t.entries(make([]memoEntry, 0, t.n))
		}
	}
	return out
}

// restorePrev rebuilds the per-tile baselines from a checkpoint. Entry order
// within a tile is irrelevant: tables are probed by key only.
func (m *memoState) restorePrev(prev [][]memoEntry) {
	for i := range m.prev {
		if len(prev[i]) == 0 {
			m.prev[i] = nil
			continue
		}
		t := m.prev[i]
		if t == nil {
			t = new(memoTable)
			m.prev[i] = t
		}
		t.reset()
		for _, e := range prev[i] {
			t.insert(e.H, e.C)
		}
	}
}

// memoLUT is the plain global LUT (no PFR tile synchronization) used by the
// ablation harness to show why [17] needs PFR: with whole-frame reuse
// distances a 2048-entry LUT thrashes and inter-frame hits vanish.
type memoLUT struct {
	sets int
	ways int
	tag  []uint32
	val  []geom.Vec4
	ok   []bool
	age  []uint32
	tick uint32

	Lookups uint64
	Hits    uint64
}

func newMemoLUT(entries, ways int) *memoLUT {
	sets := entries / ways
	return &memoLUT{
		sets: sets,
		ways: ways,
		tag:  make([]uint32, entries),
		val:  make([]geom.Vec4, entries),
		ok:   make([]bool, entries),
		age:  make([]uint32, entries),
	}
}

// lookup returns the memoized color for hash h, if present.
func (m *memoLUT) lookup(h uint32) (geom.Vec4, bool) {
	m.Lookups++
	base := int(h) % m.sets * m.ways
	for w := 0; w < m.ways; w++ {
		if m.ok[base+w] && m.tag[base+w] == h {
			m.tick++
			m.age[base+w] = m.tick
			m.Hits++
			return m.val[base+w], true
		}
	}
	return geom.Vec4{}, false
}

// insert memoizes a color under hash h with LRU replacement.
func (m *memoLUT) insert(h uint32, color geom.Vec4) {
	base := int(h) % m.sets * m.ways
	victim := base
	for w := 0; w < m.ways; w++ {
		i := base + w
		if m.ok[i] && m.tag[i] == h {
			victim = i
			break
		}
		if !m.ok[i] {
			victim = i
			break
		}
		if m.age[i] < m.age[victim] {
			victim = i
		}
	}
	m.tick++
	m.tag[victim] = h
	m.val[victim] = color
	m.ok[victim] = true
	m.age[victim] = m.tick
}

// fragmentHasher builds the 32-bit memoization key from the inputs the
// fragment shader actually reads: the program, the textures it can sample,
// the read uniform registers and the read varyings. Screen coordinates are
// deliberately excluded (Section V-A).
type fragmentHasher struct {
	buf [8 + 32*16 + 3*16]byte
}

func (fh *fragmentHasher) hash(fsID uint8, texIDs [4]uint8, inMask uint16, constMask uint32,
	uniforms []geom.Vec4, varyings *[3]geom.Vec4) uint32 {
	b := fh.buf[:0]
	b = append(b, fsID, texIDs[0], texIDs[1], texIDs[2], texIDs[3], 0, 0, 0)
	for i, u := range uniforms {
		if constMask&(1<<uint(i)) != 0 {
			b = appendVec(b, u)
		}
	}
	for i := range varyings {
		// Varying v_{i+1} corresponds to rast.Fragment.Var[i].
		if inMask&(1<<uint(i+1)) != 0 {
			b = appendVec(b, varyings[i])
		}
	}
	return crc.Checksum(b)
}

func appendVec(b []byte, v geom.Vec4) []byte {
	var w [16]byte
	binary.LittleEndian.PutUint32(w[0:], math.Float32bits(v.X))
	binary.LittleEndian.PutUint32(w[4:], math.Float32bits(v.Y))
	binary.LittleEndian.PutUint32(w[8:], math.Float32bits(v.Z))
	binary.LittleEndian.PutUint32(w[12:], math.Float32bits(v.W))
	return append(b, w[:]...)
}
