// Package gpusim integrates every substrate into the full TBR GPU simulator
// of Figure 4: it replays an api.Trace through the Geometry and Raster
// pipelines, rendering real pixels while accounting cycles (internal/timing),
// cache and DRAM traffic (internal/cache, internal/dram) and energy
// (internal/energy), under one of four techniques — the Baseline GPU,
// Rendering Elimination (the paper's contribution), Transaction Elimination,
// and PFR-aided Fragment Memoization.
package gpusim

import (
	"fmt"

	"rendelim/internal/cache"
	"rendelim/internal/dram"
	"rendelim/internal/energy"
	"rendelim/internal/fault"
	"rendelim/internal/obs"
	"rendelim/internal/rerr"
	"rendelim/internal/sig"
	"rendelim/internal/timing"
)

// Technique selects the redundancy-elimination scheme under evaluation.
type Technique uint8

// Techniques.
const (
	Baseline Technique = iota // conventional TBR GPU
	RE                        // Rendering Elimination (this paper)
	TE                        // Transaction Elimination (ARM) [16]
	Memo                      // PFR-aided Fragment Memoization [17]
)

// String implements fmt.Stringer.
func (t Technique) String() string {
	switch t {
	case Baseline:
		return "base"
	case RE:
		return "re"
	case TE:
		return "te"
	case Memo:
		return "memo"
	}
	return fmt.Sprintf("technique(%d)", uint8(t))
}

// ParseTechnique is the inverse of String, for flags and request payloads.
func ParseTechnique(s string) (Technique, error) {
	switch s {
	case "base", "baseline":
		return Baseline, nil
	case "re":
		return RE, nil
	case "te":
		return TE, nil
	case "memo":
		return Memo, nil
	}
	return Baseline, fmt.Errorf("unknown technique %q (want base, re, te or memo)", s)
}

// SkippedStages returns the Raster Pipeline stages the technique bypasses on
// a redundant tile/fragment, encoding Figure 3.
func (t Technique) SkippedStages() []string {
	switch t {
	case RE:
		return []string{"tile-scheduler", "rasterizer", "early-depth", "fragment-processing", "blend", "tile-flush"}
	case TE:
		return []string{"tile-flush"}
	case Memo:
		return []string{"fragment-processing"}
	}
	return nil
}

// Config parameterizes one simulation.
type Config struct {
	// Technique under test.
	Technique Technique

	// Timing and energy models.
	Timing timing.Params
	Energy energy.Params
	DRAM   dram.Config

	// Cache geometries (Table I).
	VertexCache  cache.Config
	TextureCache cache.Config // one of the four identical texture caches
	TileCache    cache.Config
	L2Cache      cache.Config

	// Signature Unit configuration (used by RE and, for color signing, TE).
	Sig sig.Config

	// RefreshInterval forces a full render every n-th frame when > 0, the
	// Frame Buffer refresh guarantee of Section III-E.
	RefreshInterval int

	// ExactBinning switches the Polygon List Builder from bounding-box to
	// exact triangle-tile overlap tests; tighter bins mean fewer polluted
	// signatures (fewer RE false negatives) at extra binning cost.
	ExactBinning bool

	// Fragment Memoization parameters (Section V-A: 2048-entry 4-way LUT,
	// 32-bit hash discarding screen coordinates, 2 frames in parallel).
	MemoLUTEntries int
	MemoLUTWays    int

	// EnableEqualInputDiffColorCheck controls the (expensive) invariant
	// assertion that a signature match never pairs with a color change;
	// only meaningful for Baseline runs, where everything renders.
	TrackGroundTruth bool

	// Tracer, when non-nil, records a Chrome trace-event timeline of the
	// run: one span per frame with nested per-stage spans and instant
	// events for tile eliminations. Nil (the default) costs nothing on the
	// simulation hot path. Excluded from the job signature: tracing never
	// changes results.
	Tracer *obs.Tracer

	// Fault, when non-nil, threads a fault-injection plan into the
	// simulator (currently the DRAM model's dram.read / dram.write sites).
	// Injection is host-level chaos: a run that completes despite faults
	// is byte-identical to a fault-free run, so — like Tracer and
	// TileWorkers — the plan is excluded from the job signature.
	Fault *fault.Plan

	// TileWorkers sets how many host goroutines render tiles concurrently
	// during the raster phase: 0 or 1 runs serially, n > 1 uses exactly n
	// workers, and a negative value uses one worker per host CPU
	// (runtime.GOMAXPROCS). This is host parallelism only — simulated
	// cycles, traffic, classifications and pixels are byte-identical at any
	// worker count (see parallel.go) — so it is excluded from the job
	// signature, like Tracer.
	TileWorkers int
}

// DefaultConfig returns the Table I configuration.
func DefaultConfig() Config {
	return Config{
		Technique: Baseline,
		Timing:    timing.Default(),
		Energy:    energy.Default(),
		DRAM:      dram.Default(),
		VertexCache: cache.Config{
			Name: "vertex", LineBytes: 64, Ways: 2, SizeBytes: 4 << 10, Banks: 1, Latency: 1,
		},
		TextureCache: cache.Config{
			Name: "texture", LineBytes: 64, Ways: 2, SizeBytes: 8 << 10, Banks: 1, Latency: 1,
		},
		TileCache: cache.Config{
			Name: "tile", LineBytes: 64, Ways: 8, SizeBytes: 128 << 10, Banks: 8, Latency: 1,
		},
		L2Cache: cache.Config{
			Name: "l2", LineBytes: 64, Ways: 8, SizeBytes: 256 << 10, Banks: 8, Latency: 2,
		},
		Sig:              sig.DefaultConfig(),
		RefreshInterval:  0,
		MemoLUTEntries:   2048,
		MemoLUTWays:      4,
		TrackGroundTruth: true,
	}
}

// Validate checks the configuration. Failures wrap rerr.ErrBadConfig
// (exported as rendelim.ErrBadConfig) for errors.Is matching.
func (c Config) Validate() error {
	if err := c.DRAM.Validate(); err != nil {
		return fmt.Errorf("gpusim: %w: %v", rerr.ErrBadConfig, err)
	}
	for _, cc := range []cache.Config{c.VertexCache, c.TextureCache, c.TileCache, c.L2Cache} {
		if err := cc.Validate(); err != nil {
			return fmt.Errorf("gpusim: %w: %v", rerr.ErrBadConfig, err)
		}
	}
	if c.MemoLUTEntries <= 0 || c.MemoLUTWays <= 0 || c.MemoLUTEntries%c.MemoLUTWays != 0 {
		return fmt.Errorf("gpusim: %w: bad memo LUT geometry %d/%d", rerr.ErrBadConfig, c.MemoLUTEntries, c.MemoLUTWays)
	}
	if c.RefreshInterval < 0 {
		return fmt.Errorf("gpusim: %w: negative refresh interval", rerr.ErrBadConfig)
	}
	return nil
}

// Simulated address map: disjoint regions so traffic classes never alias.
const (
	addrVertexBase   = 0x0000_0000
	addrVertexStride = 1 << 20 // per-drawcall vertex buffer region
	addrParamBase    = 0x4000_0000
	addrTexBase      = 0x8000_0000
	addrFBBase       = 0xC000_0000
)
