package gpusim

import (
	"reflect"
	"testing"

	"rendelim/internal/workload"
)

// For every technique, a run that checkpoints at frame k, finishes, and is
// then replayed by a fresh simulator resuming from that checkpoint must
// produce byte-identical per-frame stats and pixels for the remaining
// frames — checkpoint/resume is exact, not approximate.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	params := workload.Params{Width: 96, Height: 64, Frames: 8, Seed: 1}
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []Technique{Baseline, RE, TE, Memo} {
		tech := tech
		t.Run(tech.String(), func(t *testing.T) {
			tr := b.Build(params)
			cfg := DefaultConfig()
			cfg.Technique = tech

			// Reference: straight run, collecting per-frame stats and a
			// checkpoint at the boundary after frame k.
			const k = 3
			ref, err := New(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var cp *Checkpoint
			var refStats []Stats
			for i := range tr.Frames {
				if i == k {
					cp = ref.Checkpoint()
				}
				refStats = append(refStats, ref.RunFrame(&tr.Frames[i]))
			}
			refFB := ref.FrameBufferSnapshot()

			// Fresh simulator, resumed from the checkpoint.
			res, err := New(tr, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Resume(cp); err != nil {
				t.Fatal(err)
			}
			if cp.Frame() != k {
				t.Fatalf("checkpoint frame = %d, want %d", cp.Frame(), k)
			}
			for i := k; i < len(tr.Frames); i++ {
				got := res.RunFrame(&tr.Frames[i])
				if !reflect.DeepEqual(got, refStats[i]) {
					t.Fatalf("frame %d stats diverge after resume:\n got %+v\nwant %+v", i, got, refStats[i])
				}
			}
			if gotFB := res.FrameBufferSnapshot(); !reflect.DeepEqual(gotFB, refFB) {
				t.Fatal("framebuffer diverges after resume")
			}
			if res.FrameBufferCRC() != ref.FrameBufferCRC() {
				t.Fatal("framebuffer CRC diverges after resume")
			}
		})
	}
}

// Rewinding the same simulator (restore in place, not onto a fresh one)
// must work too: run to the end, resume back to frame k, re-run the tail.
func TestCheckpointRewindInPlace(t *testing.T) {
	params := workload.Params{Width: 96, Height: 64, Frames: 6, Seed: 1}
	b, err := workload.ByAlias("hop")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(params)
	cfg := DefaultConfig()
	cfg.Technique = RE

	sim, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	var cp *Checkpoint
	var refStats []Stats
	for i := range tr.Frames {
		if i == k {
			cp = sim.Checkpoint()
		}
		refStats = append(refStats, sim.RunFrame(&tr.Frames[i]))
	}
	refCRC := sim.FrameBufferCRC()

	if err := sim.Resume(cp); err != nil {
		t.Fatal(err)
	}
	for i := k; i < len(tr.Frames); i++ {
		got := sim.RunFrame(&tr.Frames[i])
		if !reflect.DeepEqual(got, refStats[i]) {
			t.Fatalf("frame %d stats diverge after rewind", i)
		}
	}
	if sim.FrameBufferCRC() != refCRC {
		t.Fatal("framebuffer diverges after rewind")
	}
}

// A checkpoint from a different trace or technique must be rejected.
func TestResumeRejectsMismatch(t *testing.T) {
	params := workload.Params{Width: 96, Height: 64, Frames: 4, Seed: 1}
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(params)
	cfg := DefaultConfig()
	cfg.Technique = RE
	simA, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp := simA.Checkpoint()

	cfgB := cfg
	cfgB.Technique = TE
	simB, err := New(tr, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if err := simB.Resume(cp); err == nil {
		t.Fatal("Resume accepted a checkpoint from a different technique")
	}
	if err := simB.Resume(nil); err == nil {
		t.Fatal("Resume accepted a nil checkpoint")
	}
}
