package gpusim

// Property tests over randomly generated command streams: whatever the
// scene, Rendering Elimination must render pixel-identically to the
// baseline, and equal inputs must never pair with different colors. This
// covers corners the curated workloads might miss (degenerate triangles,
// offscreen geometry, deep overdraw, blending).

import (
	"math/rand"
	"testing"

	"rendelim/internal/api"
	"rendelim/internal/geom"
	"rendelim/internal/shader"
	"rendelim/internal/texture"
)

// randomTrace builds a seeded random workload: a handful of quads and free
// triangles per frame, a subset of which animate; some frames are exact
// repeats to create redundancy.
func randomTrace(seed int64, frames int) *api.Trace {
	rng := rand.New(rand.NewSource(seed))
	const W, H = 96, 64
	tr := &api.Trace{
		Name: "random", Width: W, Height: H,
		ClearColor: geom.V4(rng.Float32(), rng.Float32(), rng.Float32(), 1),
		Programs: []*shader.Program{
			shader.TransformVS(2), shader.FlatFS(), shader.VertexColorFS(), shader.TexturedFS(),
		},
		Textures: []api.TextureSpec{
			{Kind: api.TexChecker, W: 16, H: 16, Cell: 4,
				A: geom.V4(1, 1, 0, 1), B: geom.V4(0, 1, 1, 1), Filter: texture.Nearest},
		},
	}
	type prim struct {
		verts  [9]geom.Vec4 // 3 verts x 3 attrs
		moving bool
	}
	prims := make([]prim, 4+rng.Intn(8))
	for i := range prims {
		for v := 0; v < 3; v++ {
			// Positions may fall offscreen or build degenerate triangles.
			prims[i].verts[v*3+0] = geom.V4(rng.Float32()*140-20, rng.Float32()*100-20, rng.Float32(), 1)
			prims[i].verts[v*3+1] = geom.V4(rng.Float32(), rng.Float32(), rng.Float32(), 1)
			prims[i].verts[v*3+2] = geom.V4(rng.Float32(), rng.Float32(), 0, 0)
		}
		prims[i].moving = rng.Intn(3) == 0
	}
	ortho := geom.Ortho(0, W, 0, H, -1, 1)
	for f := 0; f < frames; f++ {
		var cmds []api.Command
		cmds = append(cmds, api.SetUniforms{First: 0, Values: []geom.Vec4{
			ortho.Row(0), ortho.Row(1), ortho.Row(2), ortho.Row(3),
		}})
		cmds = append(cmds, api.SetUniforms{First: 4, Values: []geom.Vec4{geom.V4(1, 1, 1, 1)}})
		blend := api.BlendNone
		if f%2 == 0 {
			blend = api.BlendAlpha
		}
		cmds = append(cmds, api.SetPipeline{
			VS: 0, FS: api.ProgramID(1 + f%3), Blend: blend,
			DepthTest: f%3 == 0, DepthWrite: true,
		})
		var data []geom.Vec4
		for i := range prims {
			vs := prims[i].verts
			if prims[i].moving {
				dx := float32((f / 2) * 3) // changes every other frame
				for v := 0; v < 3; v++ {
					vs[v*3] = vs[v*3].Add(geom.V4(dx, 0, 0, 0))
				}
			}
			data = append(data, vs[:]...)
		}
		cmds = append(cmds, api.Draw{NumAttrs: 3, Data: data})
		tr.Frames = append(tr.Frames, api.Frame{Commands: cmds})
	}
	return tr
}

func TestQuickRandomTracesREPixelExact(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		tr := randomTrace(seed, 7)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfgA := DefaultConfig()
		cfgB := DefaultConfig()
		cfgB.Technique = RE
		simA, _ := New(tr, cfgA)
		simB, _ := New(tr, cfgB)
		var skipped uint64
		for f := range tr.Frames {
			sa := simA.RunFrame(&tr.Frames[f])
			sb := simB.RunFrame(&tr.Frames[f])
			skipped += sb.TilesSkipped
			if sa.TileClasses[TileEqInputDiffColor] != 0 {
				t.Fatalf("seed %d frame %d: equal-input different-color tile", seed, f)
			}
			fa := simA.FrameBufferSnapshot()
			fb := simB.FrameBufferSnapshot()
			for i := range fa {
				if fa[i] != fb[i] {
					t.Fatalf("seed %d frame %d: pixel %d differs", seed, f, i)
				}
			}
		}
		// Moving-every-other-frame primitives leave some redundancy for RE
		// to find in most seeds; just require the machinery engaged.
		if skipped == 0 && seed == 1 {
			t.Log("seed 1 found no redundancy (acceptable, informational)")
		}
	}
}

func TestQuickRandomTracesTEAndMemoPixelExact(t *testing.T) {
	for seed := int64(20); seed <= 25; seed++ {
		tr := randomTrace(seed, 6)
		base, _ := New(tr, DefaultConfig())
		cfgTE := DefaultConfig()
		cfgTE.Technique = TE
		te, _ := New(tr, cfgTE)
		cfgM := DefaultConfig()
		cfgM.Technique = Memo
		memo, _ := New(tr, cfgM)
		for f := range tr.Frames {
			base.RunFrame(&tr.Frames[f])
			te.RunFrame(&tr.Frames[f])
			memo.RunFrame(&tr.Frames[f])
		}
		fa := base.FrameBufferSnapshot()
		fb := te.FrameBufferSnapshot()
		fc := memo.FrameBufferSnapshot()
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("seed %d: TE pixel %d differs", seed, i)
			}
			if fa[i] != fc[i] {
				t.Fatalf("seed %d: memo pixel %d differs", seed, i)
			}
		}
	}
}

// Determinism across runs at a different granularity: replaying the same
// trace twice on fresh simulators yields identical stats and pixels.
func TestQuickReplayDeterminism(t *testing.T) {
	tr := randomTrace(99, 5)
	run := func() (Result, []uint32) {
		sim, err := New(tr, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res := sim.Run()
		return res, sim.FrameBufferSnapshot()
	}
	r1, f1 := run()
	r2, f2 := run()
	if r1.Total != r2.Total {
		t.Fatal("stats differ across replays")
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("pixels differ across replays")
		}
	}
}
