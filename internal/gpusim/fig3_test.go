package gpusim

import "testing"

// TestFig03SkippedStages encodes Figure 3: which Raster Pipeline stages each
// technique bypasses on a redundant tile/fragment.
func TestFig03SkippedStages(t *testing.T) {
	re := map[string]bool{}
	for _, s := range RE.SkippedStages() {
		re[s] = true
	}
	// RE skips the whole Raster Pipeline.
	for _, stage := range []string{
		"tile-scheduler", "rasterizer", "early-depth",
		"fragment-processing", "blend", "tile-flush",
	} {
		if !re[stage] {
			t.Errorf("RE should skip %s", stage)
		}
	}
	// TE skips only the flush; Memo only fragment processing.
	if got := TE.SkippedStages(); len(got) != 1 || got[0] != "tile-flush" {
		t.Errorf("TE skips %v, want only tile-flush", got)
	}
	if got := Memo.SkippedStages(); len(got) != 1 || got[0] != "fragment-processing" {
		t.Errorf("Memo skips %v, want only fragment-processing", got)
	}
	// Every stage TE or Memo skips, RE skips too (RE subsumes both).
	for _, other := range []Technique{TE, Memo} {
		for _, s := range other.SkippedStages() {
			if !re[s] {
				t.Errorf("RE should subsume %s's skipped stage %s", other, s)
			}
		}
	}
}
