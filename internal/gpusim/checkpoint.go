package gpusim

import (
	"fmt"

	"rendelim/internal/api"
	"rendelim/internal/cache"
	"rendelim/internal/core"
	"rendelim/internal/crc"
	"rendelim/internal/dram"
	"rendelim/internal/fb"
	"rendelim/internal/shader"
	"rendelim/internal/sig"
	"rendelim/internal/texture"
)

// Checkpoint is a frame-boundary snapshot of every piece of cross-frame
// simulator state: the double-buffered framebuffer, the RE controller with
// its Signature Buffer, the TE signature buffer and CRC counters, the
// memoization baselines, the DRAM row-buffer state, all cache tag/LRU
// arrays, the upload-mutable program/texture tables, the API state, and the
// counters. A run restored from a checkpoint is byte-identical — same
// per-frame stats, same pixels — to one that ran straight through, because
// frame statistics are computed as deltas of these counters and every
// timing-relevant structure (cache LRU clocks, DRAM open rows, signature
// parity) is captured.
//
// Frame boundaries are the natural checkpoint for the same reason they are
// RE's comparison point: RunFrame never leaves state half-committed
// (RunContext documents this), so a checkpoint taken between frames is
// always consistent. Per-frame scratch (binner, draw/triangle lists, tile
// results) is rebuilt from zero each frame and needs no capture.
//
// Checkpoints are restorable onto the simulator they came from (rewind) or
// onto a fresh Simulator built from the same trace and config (the job
// pool's recovery path — a mid-frame panic leaves the original simulator's
// internals unusable, so recovery always rebuilds).
type Checkpoint struct {
	frameIdx  int
	width     int
	height    int
	technique Technique
	traceSig  uint32 // guards against restoring across different traces

	fbuf     fb.Snapshot
	stateVal api.State // value copy; api.State holds no reference types
	re       core.Snapshot
	teBuf    sig.BufferSnapshot
	teCRC    crc.UnitStats

	// memoPrev is a compact deep copy of the per-tile memoization
	// baselines. The live tables are pooled and mutated again on later
	// frames (memoState swaps their roles), so the checkpoint extracts the
	// entries rather than sharing the tables.
	memoPrev    [][]memoEntry
	memoLookups uint64
	memoHits    uint64

	dram   dram.Snapshot
	caches []cache.Snapshot // vcache, tcache[0..3], tilecache, l2

	programs []*shader.Program
	fsMasks  []progMask
	textures []*texture.Texture

	vsCounts   shader.Counts
	skipCounts []uint32
}

// Frame returns the number of completed frames the checkpoint covers:
// resuming replays the trace from frame index Frame().
func (cp *Checkpoint) Frame() int { return cp.frameIdx }

// traceIdentity signs what checkpoint compatibility depends on.
func (s *Simulator) traceIdentity() uint32 {
	return crc.Checksum([]byte(fmt.Sprintf("%s/%dx%d/%d/%s",
		s.trace.Name, s.trace.Width, s.trace.Height, len(s.trace.Frames), s.cfg.Technique)))
}

// Checkpoint snapshots the simulator at a frame boundary. Calling it
// mid-frame (from inside RunFrame) is not supported.
func (s *Simulator) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		frameIdx:  s.frameIdx,
		width:     s.trace.Width,
		height:    s.trace.Height,
		technique: s.cfg.Technique,
		traceSig:  s.traceIdentity(),

		fbuf:  s.fbuf.Snapshot(),
		re:    s.re.Snapshot(),
		teBuf: s.teBuf.Snapshot(),
		teCRC: s.teCRC.Stats,

		memoPrev:    s.memo.snapshotPrev(),
		memoLookups: s.memo.Lookups,
		memoHits:    s.memo.Hits,

		dram: s.dram.Snapshot(),

		programs: append([]*shader.Program(nil), s.programs...),
		fsMasks:  append([]progMask(nil), s.fsMasks...),
		textures: append([]*texture.Texture(nil), s.textures...),

		vsCounts:   s.vsExec.Counts,
		skipCounts: append([]uint32(nil), s.skipCounts...),
	}
	for _, c := range s.checkpointCaches() {
		cp.caches = append(cp.caches, c.Snapshot())
	}
	cp.stateVal = *s.state
	return cp
}

// Resume restores the simulator to the checkpointed frame boundary. The
// checkpoint must come from a simulator over the same trace and technique
// (same dimensions, frame count and cache geometry); otherwise an error
// wrapping nothing in particular is returned and the simulator is left
// untouched. After a successful Resume, RunFrame(&trace.Frames[cp.Frame()])
// continues the run exactly where the checkpoint left off.
func (s *Simulator) Resume(cp *Checkpoint) error {
	if cp == nil {
		return fmt.Errorf("gpusim: nil checkpoint")
	}
	if cp.traceSig != s.traceIdentity() {
		return fmt.Errorf("gpusim: checkpoint mismatch: snapshot of a %dx%d %s run cannot restore this simulator",
			cp.width, cp.height, cp.technique)
	}
	// Structural guards for checkpoints that crossed a process boundary
	// (DecodeCheckpoint): the CRC seal makes these unreachable for honest
	// corruption, but a mismatched cache geometry or tile count must error
	// here rather than panic inside a Restore.
	if got, want := len(cp.caches), len(s.checkpointCaches()); got != want {
		return fmt.Errorf("gpusim: checkpoint carries %d cache snapshots, simulator has %d caches", got, want)
	}
	if got, want := len(cp.memoPrev), len(s.memo.prev); got != want {
		return fmt.Errorf("gpusim: checkpoint carries %d memo tiles, simulator has %d", got, want)
	}
	if got, want := len(cp.fbuf.Bufs[0]), s.trace.Width*s.trace.Height; got != want {
		return fmt.Errorf("gpusim: checkpoint framebuffer has %d pixels, simulator has %d", got, want)
	}
	s.fbuf.Restore(cp.fbuf)
	s.re.Restore(cp.re)
	s.teBuf.Restore(cp.teBuf)
	s.teCRC.Stats = cp.teCRC

	s.memo.restorePrev(cp.memoPrev)
	s.memo.Lookups = cp.memoLookups
	s.memo.Hits = cp.memoHits

	s.dram.Restore(cp.dram)
	for i, c := range s.checkpointCaches() {
		c.Restore(cp.caches[i])
	}

	s.programs = append(s.programs[:0], cp.programs...)
	s.fsMasks = append(s.fsMasks[:0], cp.fsMasks...)
	s.textures = append(s.textures[:0], cp.textures...)

	s.vsExec.Counts = cp.vsCounts
	copy(s.skipCounts, cp.skipCounts)
	*s.state = cp.stateVal
	s.frameIdx = cp.frameIdx
	return nil
}

// checkpointCaches lists every cache in a fixed order shared by Checkpoint
// and Resume.
func (s *Simulator) checkpointCaches() []*cache.Cache {
	return []*cache.Cache{s.vcache, s.tcache[0], s.tcache[1], s.tcache[2], s.tcache[3], s.tilecache, s.l2}
}
