package gpusim

import (
	"fmt"
	"testing"

	"rendelim/internal/obs"
	"rendelim/internal/workload"
)

// runWorkers runs one benchmark under one technique with the given tile-worker
// count and returns the run result plus the final displayed frame.
func runWorkers(t testing.TB, alias string, tech Technique, workers int) (Result, []uint32, []uint32) {
	t.Helper()
	b, err := workload.ByAlias(alias)
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: 4, Seed: 1})
	cfg := DefaultConfig()
	cfg.Technique = tech
	cfg.TileWorkers = workers
	sim, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	return res, sim.FrameBufferSnapshot(), sim.SkipCounts()
}

// TestRasterParallelDeterminism is the core guarantee of the parallel raster
// phase: host parallelism must not change simulated results. For every Table
// II benchmark under all four techniques, an N-worker run must produce
// bit-identical per-frame Stats, Result totals, framebuffer pixels and skip
// counts to the serial run.
func TestRasterParallelDeterminism(t *testing.T) {
	suite := workload.Suite()
	if testing.Short() {
		suite = suite[:3]
	}
	for _, bm := range suite {
		for _, tech := range []Technique{Baseline, RE, TE, Memo} {
			t.Run(bm.Alias+"/"+tech.String(), func(t *testing.T) {
				ref, refFB, refSkips := runWorkers(t, bm.Alias, tech, 1)
				for _, workers := range []int{2, 8} {
					res, fbres, skips := runWorkers(t, bm.Alias, tech, workers)
					if res.Total != ref.Total {
						t.Errorf("workers=%d: Total diverges from serial:\n got %+v\nwant %+v", workers, res.Total, ref.Total)
					}
					if len(res.Frames) != len(ref.Frames) {
						t.Fatalf("workers=%d: frame count %d, want %d", workers, len(res.Frames), len(ref.Frames))
					}
					for i := range ref.Frames {
						if res.Frames[i] != ref.Frames[i] {
							t.Errorf("workers=%d frame %d: Stats diverge:\n got %+v\nwant %+v", workers, i, res.Frames[i], ref.Frames[i])
						}
					}
					for i := range refFB {
						if fbres[i] != refFB[i] {
							t.Errorf("workers=%d: pixel %d = %08x, want %08x", workers, i, fbres[i], refFB[i])
							break
						}
					}
					for i := range refSkips {
						if skips[i] != refSkips[i] {
							t.Errorf("workers=%d: skip count tile %d = %d, want %d", workers, i, skips[i], refSkips[i])
							break
						}
					}
				}
			})
		}
	}
}

// TestRasterParallelMoreWorkersThanTiles: a worker count beyond the tile
// count is clamped, not an error, and still reproduces the serial run.
func TestRasterParallelMoreWorkersThanTiles(t *testing.T) {
	ref, refFB, _ := runWorkers(t, "ccs", RE, 1)
	res, fbres, _ := runWorkers(t, "ccs", RE, 999)
	if res.Total != ref.Total {
		t.Errorf("workers=999: Total diverges from serial:\n got %+v\nwant %+v", res.Total, ref.Total)
	}
	for i := range refFB {
		if fbres[i] != refFB[i] {
			t.Fatalf("workers=999: pixel %d = %08x, want %08x", i, fbres[i], refFB[i])
		}
	}
}

// TestRasterParallelAutoWorkers: TileWorkers < 0 resolves to the host CPU
// count and matches the serial run bit for bit.
func TestRasterParallelAutoWorkers(t *testing.T) {
	ref, refFB, _ := runWorkers(t, "abi", Baseline, 1)
	res, fbres, _ := runWorkers(t, "abi", Baseline, -1)
	if res.Total != ref.Total {
		t.Errorf("auto workers: Total diverges from serial:\n got %+v\nwant %+v", res.Total, ref.Total)
	}
	for i := range refFB {
		if fbres[i] != refFB[i] {
			t.Fatalf("auto workers: pixel %d = %08x, want %08x", i, fbres[i], refFB[i])
		}
	}
}

// TestRasterParallelTraceBalanced: under parallel execution each raster
// worker emits spans on its own track; every track's Begin/End nesting must
// balance, and per-tile spans must land on worker tracks, not the pipeline
// track.
func TestRasterParallelTraceBalanced(t *testing.T) {
	b, err := workload.ByAlias("mst")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: 3, Seed: 1})
	cfg := DefaultConfig()
	cfg.Technique = Baseline
	cfg.TileWorkers = 4
	cfg.Tracer = obs.NewTracer()
	sim, err := New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()

	depth := map[int]int{}
	workerTIDs := map[int]bool{}
	tileSpans := 0
	for _, e := range cfg.Tracer.Events() {
		switch e.Ph {
		case "M":
			if name, ok := e.Args["name"].(string); ok && len(name) > 13 && name[:13] == "raster worker" {
				workerTIDs[e.TID] = true
			}
		case "B":
			depth[e.TID]++
			if e.Name == "raster-tile" {
				tileSpans++
				if !workerTIDs[e.TID] {
					t.Errorf("raster-tile span on non-worker track tid=%d", e.TID)
				}
			}
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("unbalanced End on tid=%d", e.TID)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %d: %d unclosed spans", tid, d)
		}
	}
	if len(workerTIDs) == 0 {
		t.Error("no raster worker tracks registered")
	}
	if tileSpans == 0 {
		t.Error("no raster-tile spans recorded")
	}
}

// benchRunFrame measures whole-frame simulation throughput. mst is the
// continuous-motion scene — no tile is ever eliminated, so the raster phase
// carries the full load the workers are meant to spread.
func benchRunFrame(b *testing.B, workers int) {
	bm, err := workload.ByAlias("mst")
	if err != nil {
		b.Fatal(err)
	}
	tr := bm.Build(workload.Params{Width: 480, Height: 272, Frames: 2, Seed: 1})
	cfg := DefaultConfig()
	cfg.Technique = Baseline
	cfg.TileWorkers = workers
	sim, err := New(tr, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunFrame(&tr.Frames[i%len(tr.Frames)])
	}
}

// BenchmarkRunFrame compares frame throughput across tile-worker counts
// (the speedup requires a multi-core host; results stay identical anywhere).
func BenchmarkRunFrame(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchRunFrame(b, w) })
	}
}
