package energy

import (
	"math"
	"testing"
)

func TestZeroActivityZeroEnergy(t *testing.T) {
	b := Default().Compute(Activity{})
	if b.Total() != 0 {
		t.Fatalf("zero activity gives %v J", b.Total())
	}
}

func TestStaticScalesWithCycles(t *testing.T) {
	p := Default()
	a := Activity{Cycles: uint64(p.FreqHz)} // one second
	b := p.Compute(a)
	if math.Abs(b.GPUStatic-p.StaticGPU) > 1e-12 {
		t.Fatalf("static GPU = %v, want %v", b.GPUStatic, p.StaticGPU)
	}
	if math.Abs(b.MemStatic-p.StaticDRAM) > 1e-12 {
		t.Fatalf("static mem = %v", b.MemStatic)
	}
}

func TestDynamicLinearity(t *testing.T) {
	p := Default()
	a := Activity{
		VSInstructions: 100, FSInstructions: 1000,
		TextureCacheAccesses: 500, DRAMBytes: 4096, DRAMActivations: 3,
		QuadsTested: 64, FragmentsBlended: 256, Cycles: 1000,
	}
	b1 := p.Compute(a)
	double := a
	double.Add(a)
	b2 := p.Compute(double)
	if math.Abs(b2.Total()-2*b1.Total()) > 1e-15 {
		t.Fatalf("energy not linear: %v vs %v", b2.Total(), 2*b1.Total())
	}
}

func TestREOverheadIsolated(t *testing.T) {
	p := Default()
	a := Activity{SigBufferAccesses: 1000, CRCLUTAccesses: 5000, BitmapAccesses: 100, OTQueueAccesses: 100}
	b := p.Compute(a)
	if b.REOverhead <= 0 {
		t.Fatal("RE overhead missing")
	}
	if math.Abs(b.GPUDynamic-b.REOverhead) > 1e-18 {
		t.Fatalf("RE-only activity should be entirely RE overhead: %v vs %v", b.GPUDynamic, b.REOverhead)
	}
	if b.MemDynamic != 0 {
		t.Fatal("RE structures are on-chip, not DRAM")
	}
}

func TestDRAMActivationAsymmetry(t *testing.T) {
	p := Default()
	hit := p.Compute(Activity{DRAMBytes: 64, DRAMRequests: 1})
	miss := p.Compute(Activity{DRAMBytes: 64, DRAMRequests: 1, DRAMActivations: 1})
	if miss.MemDynamic <= hit.MemDynamic {
		t.Fatal("row activation should cost extra energy")
	}
}

func TestAvgPower(t *testing.T) {
	p := Default()
	if p.AvgPowerWatts(Activity{}) != 0 {
		t.Fatal("zero cycles should give zero power")
	}
	a := Activity{Cycles: uint64(p.FreqHz)} // 1 s, static only
	want := p.StaticGPU + p.StaticDRAM
	if got := p.AvgPowerWatts(a); math.Abs(got-want) > 1e-9 {
		t.Fatalf("avg power = %v, want %v", got, want)
	}
}

func TestBreakdownAccessors(t *testing.T) {
	b := Breakdown{GPUDynamic: 1, GPUStatic: 2, MemDynamic: 3, MemStatic: 4}
	if b.GPU() != 3 || b.Memory() != 7 || b.Total() != 10 {
		t.Fatalf("accessors wrong: %+v", b)
	}
}

func TestActivityAddCoversAllFields(t *testing.T) {
	a := Activity{
		VSInstructions: 1, FSInstructions: 2, VertexCacheAccesses: 3,
		TextureCacheAccesses: 4, TileCacheAccesses: 5, L2Accesses: 6,
		ColorBufferAccesses: 7, DepthBufferAccesses: 8, VerticesFetched: 9,
		TrianglesSetup: 10, QuadsTested: 11, FragmentsBlended: 12,
		SigBufferAccesses: 13, CRCLUTAccesses: 14, BitmapAccesses: 15,
		OTQueueAccesses: 16, DRAMBytes: 17, DRAMActivations: 18,
		DRAMRequests: 19, Cycles: 20,
	}
	sum := a
	sum.Add(a)
	if sum.VSInstructions != 2 || sum.Cycles != 40 || sum.DRAMRequests != 38 ||
		sum.OTQueueAccesses != 32 || sum.FragmentsBlended != 24 {
		t.Fatalf("Add missed fields: %+v", sum)
	}
}
