// Package energy is the McPAT/CACTI-style power model of the evaluation
// (Section IV-A): per-event dynamic energies for the processors, caches,
// SRAMs and the Rendering Elimination structures (Signature Buffer, CRC
// LUTs, OT queue, bitmap), per-burst and per-activation DRAM energies, and
// static power integrated over execution time. All dynamic values are in
// picojoules; results are reported in joules split between "GPU" and "main
// memory", matching Figure 14b's two bars.
package energy

// Params holds per-event energies (pJ) and static power (W).
type Params struct {
	// Programmable stages.
	ShaderInstr float64 // per executed VS/FS instruction

	// Caches and on-chip SRAM, per access.
	VertexCache  float64
	TextureCache float64
	TileCache    float64
	L2Cache      float64
	ColorBuffer  float64
	DepthBuffer  float64

	// Fixed-function per-item costs.
	VertexFetch float64 // per vertex assembled
	PrimSetup   float64 // per triangle through setup/assembly
	QuadTest    float64 // per quad through rasterizer+early-Z logic
	BlendOp     float64 // per blended fragment

	// Rendering Elimination structures (Section V: <0.5% energy overhead).
	SigBufferAccess float64 // per Signature Buffer read/write
	CRCLUTAccess    float64 // per 1KB LUT read
	BitmapAccess    float64 // per bitmap read/write
	OTQueueAccess   float64 // per OT queue push/pop pair

	// DRAM (LPDDR3).
	DRAMPerByte  float64 // per byte moved on a channel
	DRAMActivate float64 // per row activation
	DRAMQueueOp  float64 // controller overhead per request

	// Static power in watts.
	StaticGPU  float64
	StaticDRAM float64

	FreqHz float64
}

// Default returns the calibrated 32 nm / 400 MHz parameter set. Absolute
// values are in the range McPAT reports for small mobile designs; the
// evaluation only uses normalized energies, so the ratios are what matter.
func Default() Params {
	return Params{
		ShaderInstr:  10,
		VertexCache:  8,
		TextureCache: 10,
		TileCache:    18,
		L2Cache:      28,
		ColorBuffer:  4,
		DepthBuffer:  4,

		VertexFetch: 6,
		PrimSetup:   12,
		QuadTest:    5,
		BlendOp:     6,

		SigBufferAccess: 2.5,
		CRCLUTAccess:    0.6,
		BitmapAccess:    0.1,
		OTQueueAccess:   0.4,

		DRAMPerByte:  45,
		DRAMActivate: 1800,
		DRAMQueueOp:  90,

		StaticGPU:  0.085,
		StaticDRAM: 0.028,

		FreqHz: 400e6,
	}
}

// Activity aggregates the dynamic event counts of a simulation interval.
// The GPU integrator fills it from the per-unit stats.
type Activity struct {
	VSInstructions uint64
	FSInstructions uint64

	VertexCacheAccesses  uint64
	TextureCacheAccesses uint64
	TileCacheAccesses    uint64
	L2Accesses           uint64
	ColorBufferAccesses  uint64
	DepthBufferAccesses  uint64

	VerticesFetched  uint64
	TrianglesSetup   uint64
	QuadsTested      uint64
	FragmentsBlended uint64

	SigBufferAccesses uint64
	CRCLUTAccesses    uint64
	BitmapAccesses    uint64
	OTQueueAccesses   uint64

	DRAMBytes       uint64
	DRAMActivations uint64
	DRAMRequests    uint64

	Cycles uint64
}

// Add accumulates o into a.
func (a *Activity) Add(o Activity) {
	a.VSInstructions += o.VSInstructions
	a.FSInstructions += o.FSInstructions
	a.VertexCacheAccesses += o.VertexCacheAccesses
	a.TextureCacheAccesses += o.TextureCacheAccesses
	a.TileCacheAccesses += o.TileCacheAccesses
	a.L2Accesses += o.L2Accesses
	a.ColorBufferAccesses += o.ColorBufferAccesses
	a.DepthBufferAccesses += o.DepthBufferAccesses
	a.VerticesFetched += o.VerticesFetched
	a.TrianglesSetup += o.TrianglesSetup
	a.QuadsTested += o.QuadsTested
	a.FragmentsBlended += o.FragmentsBlended
	a.SigBufferAccesses += o.SigBufferAccesses
	a.CRCLUTAccesses += o.CRCLUTAccesses
	a.BitmapAccesses += o.BitmapAccesses
	a.OTQueueAccesses += o.OTQueueAccesses
	a.DRAMBytes += o.DRAMBytes
	a.DRAMActivations += o.DRAMActivations
	a.DRAMRequests += o.DRAMRequests
	a.Cycles += o.Cycles
}

// Breakdown is an energy result in joules.
type Breakdown struct {
	GPUDynamic float64
	GPUStatic  float64
	MemDynamic float64
	MemStatic  float64
	REOverhead float64 // subset of GPUDynamic spent in RE structures
}

// GPU returns total GPU-side energy.
func (b Breakdown) GPU() float64 { return b.GPUDynamic + b.GPUStatic }

// Memory returns total main-memory energy.
func (b Breakdown) Memory() float64 { return b.MemDynamic + b.MemStatic }

// Total returns system (GPU + memory) energy.
func (b Breakdown) Total() float64 { return b.GPU() + b.Memory() }

const pJ = 1e-12

// Compute evaluates the model over an activity interval.
func (p Params) Compute(a Activity) Breakdown {
	var b Breakdown
	b.GPUDynamic = pJ * (float64(a.VSInstructions+a.FSInstructions)*p.ShaderInstr +
		float64(a.VertexCacheAccesses)*p.VertexCache +
		float64(a.TextureCacheAccesses)*p.TextureCache +
		float64(a.TileCacheAccesses)*p.TileCache +
		float64(a.L2Accesses)*p.L2Cache +
		float64(a.ColorBufferAccesses)*p.ColorBuffer +
		float64(a.DepthBufferAccesses)*p.DepthBuffer +
		float64(a.VerticesFetched)*p.VertexFetch +
		float64(a.TrianglesSetup)*p.PrimSetup +
		float64(a.QuadsTested)*p.QuadTest +
		float64(a.FragmentsBlended)*p.BlendOp)

	b.REOverhead = pJ * (float64(a.SigBufferAccesses)*p.SigBufferAccess +
		float64(a.CRCLUTAccesses)*p.CRCLUTAccess +
		float64(a.BitmapAccesses)*p.BitmapAccess +
		float64(a.OTQueueAccesses)*p.OTQueueAccess)
	b.GPUDynamic += b.REOverhead

	b.MemDynamic = pJ * (float64(a.DRAMBytes)*p.DRAMPerByte +
		float64(a.DRAMActivations)*p.DRAMActivate +
		float64(a.DRAMRequests)*p.DRAMQueueOp)

	seconds := float64(a.Cycles) / p.FreqHz
	b.GPUStatic = p.StaticGPU * seconds
	b.MemStatic = p.StaticDRAM * seconds
	return b
}

// AvgPowerWatts returns total energy divided by execution time — the
// quantity Figure 1 plots per application.
func (p Params) AvgPowerWatts(a Activity) float64 {
	if a.Cycles == 0 {
		return 0
	}
	seconds := float64(a.Cycles) / p.FreqHz
	return p.Compute(a).Total() / seconds
}
