// Package timing is the cycle model of the Mali-450-like baseline (Table I).
// The two decoupled pipelines are modeled at stage-throughput granularity:
// each stage's occupancy for a frame (geometry) or a tile (raster) is
// computed from measured work counts, the pipeline runs at the pace of its
// slowest stage, and memory stalls that the pipeline cannot hide are added
// on top. Skipped (redundant) tiles collapse to the signature-compare cost,
// which is how Rendering Elimination's speedup emerges.
package timing

// Params holds the Table I throughput parameters.
type Params struct {
	FreqHz             float64
	VertexProcessors   int
	FragmentProcessors int
	// Non-programmable stage throughputs.
	TrianglesPerCycle      int // primitive assembly
	RasterAttrsPerCycle    int // triangle setup: interpolant setup rate
	QuadsPerCycle          int // rasterizer traversal + early-Z
	BlendFragsPerCycle     int // blending into the on-chip color buffer
	VFetchBytesPerCycle    int // vertex fetcher
	TileFetchBytesPerCycle int // tile scheduler reading the Parameter Buffer
	FlushBytesPerCycle     int // color buffer flush to DRAM (bandwidth bound)
	// MissOverlap is the fraction of memory-miss latency the pipeline
	// hides (prefetch, multithreading). Geometry and raster pipelines
	// use GeomOverlap and FragOverlap respectively.
	GeomOverlap float64
	FragOverlap float64
}

// Default returns the Table I configuration at 400 MHz.
func Default() Params {
	return Params{
		FreqHz:                 400e6,
		VertexProcessors:       1,
		FragmentProcessors:     4,
		TrianglesPerCycle:      1,
		RasterAttrsPerCycle:    16,
		QuadsPerCycle:          1,
		BlendFragsPerCycle:     4,
		VFetchBytesPerCycle:    16,
		TileFetchBytesPerCycle: 16,
		FlushBytesPerCycle:     4,
		GeomOverlap:            0.6,
		FragOverlap:            0.75,
	}
}

// GeometryWork is a frame's geometry-phase activity.
type GeometryWork struct {
	VSInstructions   uint64
	VertexBytes      uint64 // attribute bytes fetched by the Vertex Fetcher
	VertexMissCycles uint64 // vertex-cache miss latency (beyond hit time)
	Triangles        uint64 // through primitive assembly
	BinTilePairs     uint64 // (primitive, tile) pairs the PLB emits
	PBWriteBytes     uint64 // Parameter Buffer write traffic
	SUStallCycles    uint64 // Signature Unit OT-queue back-pressure (RE)
}

// GeometryCycles returns the geometry-pipeline occupancy for a frame. The
// pipelined stages run concurrently, so the frame takes as long as its
// busiest stage plus unhidden memory stalls and SU stalls.
func (p Params) GeometryCycles(w GeometryWork) uint64 {
	vs := divCeil(w.VSInstructions, uint64(p.VertexProcessors))
	fetch := divCeil(w.VertexBytes, uint64(p.VFetchBytesPerCycle))
	pa := divCeil(w.Triangles, uint64(p.TrianglesPerCycle))
	bin := w.BinTilePairs // 1 tile id per cycle
	pbBW := divCeil(w.PBWriteBytes, 4)
	busiest := maxU64(vs, fetch, pa, bin, pbBW)
	stall := uint64(float64(w.VertexMissCycles) * (1 - p.GeomOverlap))
	return busiest + stall + w.SUStallCycles
}

// TileWork is one tile's raster-phase activity.
type TileWork struct {
	FetchBytes      uint64 // Parameter Buffer bytes the Tile Scheduler reads
	FetchMissCycles uint64 // tile-cache miss latency beyond hit time
	SetupAttrs      uint64 // triangle-setup interpolants (3 verts x attrs)
	Quads           uint64 // quads traversed / early-Z tested
	FSInstructions  uint64
	TexMissCycles   uint64 // texture-cache miss latency beyond hit time
	BlendFrags      uint64
	FlushBytes      uint64 // color flush to the Frame Buffer (0 if skipped)
	CompareCycles   uint64 // RE signature check (a few cycles)
	Skipped         bool   // RE bypassed the tile entirely
}

// TileCycles returns the raster-pipeline occupancy for one tile.
func (p Params) TileCycles(w TileWork) uint64 {
	if w.Skipped {
		return w.CompareCycles
	}
	fetch := divCeil(w.FetchBytes, uint64(p.TileFetchBytesPerCycle))
	setup := divCeil(w.SetupAttrs, uint64(p.RasterAttrsPerCycle))
	quads := divCeil(w.Quads, uint64(p.QuadsPerCycle))
	fs := divCeil(w.FSInstructions, uint64(p.FragmentProcessors))
	blend := divCeil(w.BlendFrags, uint64(p.BlendFragsPerCycle))
	flush := divCeil(w.FlushBytes, uint64(p.FlushBytesPerCycle))
	busiest := maxU64(fetch, setup, quads, fs, blend, flush)
	stall := uint64(float64(w.FetchMissCycles)*(1-p.GeomOverlap) +
		float64(w.TexMissCycles)*(1-p.FragOverlap))
	return busiest + stall + w.CompareCycles
}

// GeometryStageCycles splits a frame's geometry work into per-stage
// occupancies for attribution (tracing, /metrics): vertex covers the
// programmable front end (fetch + shading, with unhidden miss stalls),
// tiling covers primitive assembly, binning and Parameter Buffer writes.
// The pipeline model overlaps these stages, so the split does not sum to
// GeometryCycles — it answers "where would time go without overlap".
func (p Params) GeometryStageCycles(w GeometryWork) (vertex, tiling uint64) {
	vs := divCeil(w.VSInstructions, uint64(p.VertexProcessors))
	fetch := divCeil(w.VertexBytes, uint64(p.VFetchBytesPerCycle))
	stall := uint64(float64(w.VertexMissCycles) * (1 - p.GeomOverlap))
	vertex = maxU64(vs, fetch) + stall

	pa := divCeil(w.Triangles, uint64(p.TrianglesPerCycle))
	bin := w.BinTilePairs
	pbBW := divCeil(w.PBWriteBytes, 4)
	tiling = maxU64(pa, bin, pbBW)
	return vertex, tiling
}

// TileStageCycles splits one tile's raster work into per-stage occupancies:
// sig is the RE signature compare, raster covers Parameter Buffer fetch,
// triangle setup and quad traversal (with unhidden fetch stalls), fragment
// covers shading and blending (with unhidden texture stalls), and flush the
// Color Buffer writeback. For a skipped tile only sig is non-zero. As with
// GeometryStageCycles the stages overlap in the pipeline model, so the
// split attributes rather than sums to TileCycles.
func (p Params) TileStageCycles(w TileWork) (sig, raster, fragment, flush uint64) {
	sig = w.CompareCycles
	if w.Skipped {
		return sig, 0, 0, 0
	}
	fetch := divCeil(w.FetchBytes, uint64(p.TileFetchBytesPerCycle))
	setup := divCeil(w.SetupAttrs, uint64(p.RasterAttrsPerCycle))
	quads := divCeil(w.Quads, uint64(p.QuadsPerCycle))
	raster = maxU64(fetch, setup, quads) + uint64(float64(w.FetchMissCycles)*(1-p.GeomOverlap))

	fs := divCeil(w.FSInstructions, uint64(p.FragmentProcessors))
	blend := divCeil(w.BlendFrags, uint64(p.BlendFragsPerCycle))
	fragment = maxU64(fs, blend) + uint64(float64(w.TexMissCycles)*(1-p.FragOverlap))

	flush = divCeil(w.FlushBytes, uint64(p.FlushBytesPerCycle))
	return sig, raster, fragment, flush
}

// Seconds converts cycles to wall-clock time at the configured frequency.
func (p Params) Seconds(cycles uint64) float64 { return float64(cycles) / p.FreqHz }

func divCeil(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return (a + b - 1) / b
}

func maxU64(vs ...uint64) uint64 {
	var m uint64
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
