package timing

import "testing"

func TestGeometryBusiestStageWins(t *testing.T) {
	p := Default()
	// Vertex shading dominates here: 4000 instructions on 1 VP.
	w := GeometryWork{VSInstructions: 4000, VertexBytes: 800, Triangles: 100, BinTilePairs: 200}
	if got := p.GeometryCycles(w); got != 4000 {
		t.Fatalf("geometry cycles = %d, want 4000", got)
	}
	// Binning dominates when a frame has huge tile fan-out.
	w = GeometryWork{VSInstructions: 10, BinTilePairs: 9000}
	if got := p.GeometryCycles(w); got != 9000 {
		t.Fatalf("geometry cycles = %d, want 9000", got)
	}
}

func TestGeometryStallsAdd(t *testing.T) {
	p := Default()
	base := p.GeometryCycles(GeometryWork{VSInstructions: 1000})
	stalled := p.GeometryCycles(GeometryWork{VSInstructions: 1000, SUStallCycles: 50, VertexMissCycles: 100})
	if stalled <= base+50 {
		t.Fatalf("stalls not additive: %d vs %d", stalled, base)
	}
	// Overlap hides part of the miss latency.
	if stalled >= base+50+100 {
		t.Fatalf("miss overlap not applied: %d", stalled)
	}
}

func TestTileSkippedCostsOnlyCompare(t *testing.T) {
	p := Default()
	w := TileWork{FSInstructions: 100000, Quads: 64, CompareCycles: 4, Skipped: true}
	if got := p.TileCycles(w); got != 4 {
		t.Fatalf("skipped tile = %d cycles, want 4", got)
	}
}

func TestTileFragmentBoundTile(t *testing.T) {
	p := Default()
	// 256 fragments x 10 instructions / 4 FPs = 640 cycles dominate.
	w := TileWork{
		FetchBytes: 1024, SetupAttrs: 90, Quads: 64,
		FSInstructions: 2560, BlendFrags: 256, FlushBytes: 1024,
	}
	if got := p.TileCycles(w); got != 640 {
		t.Fatalf("tile cycles = %d, want 640", got)
	}
}

func TestTileFlushBoundWhenShadingTrivial(t *testing.T) {
	p := Default()
	// Flat-shaded tile: flush 1 KB at 4 B/cycle = 256 cycles dominates.
	w := TileWork{Quads: 64, FSInstructions: 256, BlendFrags: 256, FlushBytes: 1024}
	if got := p.TileCycles(w); got != 256 {
		t.Fatalf("tile cycles = %d, want 256", got)
	}
}

func TestTileStallsAdded(t *testing.T) {
	p := Default()
	w := TileWork{FSInstructions: 400, TexMissCycles: 400}
	base := p.TileCycles(TileWork{FSInstructions: 400})
	got := p.TileCycles(w)
	if got != base+uint64(float64(400)*(1-p.FragOverlap)) {
		t.Fatalf("tex stall = %d (base %d)", got, base)
	}
}

func TestTileCompareOverheadOnRenderedTile(t *testing.T) {
	p := Default()
	w := TileWork{FSInstructions: 400, CompareCycles: 4}
	if p.TileCycles(w) != p.TileCycles(TileWork{FSInstructions: 400})+4 {
		t.Fatal("compare cost should add to rendered tiles too")
	}
}

func TestSeconds(t *testing.T) {
	p := Default()
	if p.Seconds(uint64(p.FreqHz)) != 1 {
		t.Fatal("seconds conversion wrong")
	}
}

func TestDivCeilGuards(t *testing.T) {
	if divCeil(10, 0) != 10 {
		t.Fatal("divCeil by zero should pass through")
	}
	if divCeil(10, 4) != 3 {
		t.Fatal("divCeil wrong")
	}
	if maxU64() != 0 {
		t.Fatal("empty max should be 0")
	}
}

func TestGeometryStageCycles(t *testing.T) {
	p := Default()
	w := GeometryWork{
		VSInstructions: 1000, VertexBytes: 640, VertexMissCycles: 100,
		Triangles: 50, BinTilePairs: 200, PBWriteBytes: 4000, SUStallCycles: 7,
	}
	vertex, tiling := p.GeometryStageCycles(w)
	// vertex = max(1000/1, 640/16) + 100*(1-0.6) = 1000 + 40
	if vertex != 1040 {
		t.Fatalf("vertex stage = %d, want 1040", vertex)
	}
	// tiling = max(50, 200, 1000)
	if tiling != 1000 {
		t.Fatalf("tiling stage = %d, want 1000", tiling)
	}
	// Attribution never exceeds what the un-overlapped stages could cost;
	// each stage alone must be <= the modeled frame total's work terms.
	total := p.GeometryCycles(w)
	if vertex > total+w.SUStallCycles && tiling > total {
		t.Fatalf("stage attribution (%d, %d) implausible vs total %d", vertex, tiling, total)
	}
}

func TestTileStageCycles(t *testing.T) {
	p := Default()
	w := TileWork{
		FetchBytes: 320, FetchMissCycles: 10, SetupAttrs: 48, Quads: 64,
		FSInstructions: 400, TexMissCycles: 40, BlendFrags: 128, FlushBytes: 1024,
		CompareCycles: 4,
	}
	sig, raster, fragment, flush := p.TileStageCycles(w)
	if sig != 4 {
		t.Fatalf("sig = %d, want 4", sig)
	}
	// raster = max(320/16, 48/16, 64/1) + 10*(1-0.6) = 64 + 4
	if raster != 68 {
		t.Fatalf("raster = %d, want 68", raster)
	}
	// fragment = max(400/4, 128/4) + 40*(1-0.75) = 100 + 10
	if fragment != 110 {
		t.Fatalf("fragment = %d, want 110", fragment)
	}
	// flush = 1024/4
	if flush != 256 {
		t.Fatalf("flush = %d, want 256", flush)
	}

	// A skipped tile collapses to the signature compare.
	sig, raster, fragment, flush = p.TileStageCycles(TileWork{CompareCycles: 4, Skipped: true})
	if sig != 4 || raster != 0 || fragment != 0 || flush != 0 {
		t.Fatalf("skipped tile stages = (%d,%d,%d,%d), want (4,0,0,0)", sig, raster, fragment, flush)
	}
}
