package dram

import (
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{Channels: 1, BanksPerChannel: 1, RowBytes: 0, BytesPerCycle: 1},
		{Channels: 1, BanksPerChannel: 1, RowBytes: 1024, BytesPerCycle: 1, CASLat: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLatencyBandMatchesTableI(t *testing.T) {
	// Table I: main memory latency 50-100 cycles.
	d := New(Default())
	cold := d.Read(0, 64) // row miss
	if cold < 50 || cold > 120 {
		t.Fatalf("row-miss latency %d outside Table I band", cold)
	}
	warm := d.Read(64, 64) // same row
	if warm >= cold {
		t.Fatalf("row hit (%d) should be faster than row miss (%d)", warm, cold)
	}
	if warm < 50 {
		t.Fatalf("row-hit latency %d below Table I band", warm)
	}
}

func TestRowBufferTracking(t *testing.T) {
	d := New(Default())
	d.Read(0, 64)
	d.Read(128, 64)  // same 2 KB row
	d.Read(1024, 64) // still same row
	if d.Stats.RowMisses != 1 || d.Stats.RowHits != 2 {
		t.Fatalf("row stats: %+v", d.Stats)
	}
	d.Read(uint64(d.Config().RowBytes)*16, 64) // same channel? different row regardless
	if d.Stats.RowMisses < 2 {
		t.Fatalf("expected a second activation: %+v", d.Stats)
	}
}

func TestChannelInterleavingSpreadsRows(t *testing.T) {
	d := New(Default())
	// Consecutive rows land on alternating channels, so both get opened.
	d.Read(0, 64)
	d.Read(uint64(d.Config().RowBytes), 64)
	if d.Stats.RowMisses != 2 {
		t.Fatalf("adjacent rows should open banks on both channels: %+v", d.Stats)
	}
	// Returning to the first row must still hit: its bank kept the row open.
	d.Read(64, 64)
	if d.Stats.RowHits != 1 {
		t.Fatalf("row buffer lost across channels: %+v", d.Stats)
	}
}

func TestWriteReturnsZeroLatencyButCharges(t *testing.T) {
	d := New(Default())
	if lat := d.Write(0, 64); lat != 0 {
		t.Fatalf("buffered write latency = %d", lat)
	}
	if d.Stats.Writes != 1 || d.Stats.WriteBytes != 64 || d.Stats.BusBusyCycles == 0 {
		t.Fatalf("write accounting: %+v", d.Stats)
	}
}

func TestZeroSizeFree(t *testing.T) {
	d := New(Default())
	if d.Read(0, 0) != 0 || d.Stats.Reads != 0 {
		t.Fatal("zero-size access should be free")
	}
}

func TestMinTransferCycles(t *testing.T) {
	d := New(Default()) // aggregate 4 B/cycle
	cases := map[uint64]uint64{0: 0, 1: 1, 4: 1, 5: 2, 4096: 1024}
	for n, want := range cases {
		if got := d.MinTransferCycles(n); got != want {
			t.Fatalf("MinTransferCycles(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBusBusyMatchesBytes(t *testing.T) {
	d := New(Default())
	d.Read(0, 64)
	d.Write(4096, 32)
	want := uint64(64/2 + 32/2) // per-channel 2 B/cycle
	if d.Stats.BusBusyCycles != want {
		t.Fatalf("bus busy = %d, want %d", d.Stats.BusBusyCycles, want)
	}
}

// Property: latency is always within [QueueLat+CAS, QueueLat+CAS+RowCycle] +
// burst time, and stats conserve (reads+writes counted once per access).
func TestQuickLatencyBounds(t *testing.T) {
	cfg := Default()
	d := New(cfg)
	var n uint64
	f := func(addr uint64, sz uint8) bool {
		size := int(sz%128) + 1
		lat := d.Read(addr%(1<<30), size)
		n++
		burst := (size + cfg.BytesPerCycle - 1) / cfg.BytesPerCycle
		lo := cfg.QueueLat + cfg.CASLat + burst
		hi := lo + cfg.RowCycleLat
		return lat >= lo && lat <= hi && d.Stats.Reads == n &&
			d.Stats.RowHits+d.Stats.RowMisses == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAddAndTotal(t *testing.T) {
	a := Stats{Reads: 1, Writes: 2, ReadBytes: 3, WriteBytes: 4, RowHits: 5, RowMisses: 6, BusBusyCycles: 7}
	a.Add(a)
	if a.TotalBytes() != 14 {
		t.Fatalf("total = %d", a.TotalBytes())
	}
	if a.Reads != 2 || a.BusBusyCycles != 14 {
		t.Fatalf("add = %+v", a)
	}
}

func TestResetStats(t *testing.T) {
	d := New(Default())
	d.Read(0, 64)
	d.ResetStats()
	if d.Stats != (Stats{}) {
		t.Fatal("stats not reset")
	}
	// Row buffer survives reset.
	d.Read(64, 64)
	if d.Stats.RowHits != 1 {
		t.Fatal("row state should survive ResetStats")
	}
}
