// Package dram models the main-memory system of Table I: a dual-channel
// LPDDR3 with per-bank row buffers and an open-page policy, in the spirit of
// DRAMSim2 (paper [27]) but reduced to what the evaluation needs — a
// latency in the 50–100 cycle band that depends on row locality, a hard
// aggregate bandwidth of 4 bytes per GPU cycle, and per-access energy with
// the row-activate asymmetry that dominates DRAM power.
package dram

import (
	"fmt"

	"rendelim/internal/fault"
	"rendelim/internal/wire"
)

// Config describes the memory system.
type Config struct {
	Channels        int
	BanksPerChannel int
	RowBytes        int
	// Latencies in GPU cycles.
	CASLat      int // column access on an open row
	RowCycleLat int // precharge + activate added on a row miss
	QueueLat    int // fixed controller/queue traversal
	// BytesPerCycle is the per-channel burst bandwidth. Two channels at
	// 2 B/cycle give the aggregate 4 B/cycle of Table I.
	BytesPerCycle int
}

// Default returns the Table I memory system.
func Default() Config {
	return Config{
		Channels:        2,
		BanksPerChannel: 8,
		RowBytes:        2048,
		CASLat:          14,
		RowCycleLat:     36,
		QueueLat:        36,
		BytesPerCycle:   2,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChannel <= 0 || c.RowBytes <= 0 || c.BytesPerCycle <= 0 {
		return fmt.Errorf("dram: non-positive geometry %+v", c)
	}
	if c.CASLat < 0 || c.RowCycleLat < 0 || c.QueueLat < 0 {
		return fmt.Errorf("dram: negative latency %+v", c)
	}
	return nil
}

// Stats counts DRAM activity for the bandwidth and energy models.
type Stats struct {
	Reads         uint64
	Writes        uint64
	ReadBytes     uint64
	WriteBytes    uint64
	RowHits       uint64
	RowMisses     uint64 // row activations
	BusBusyCycles uint64 // channel-cycles spent bursting
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadBytes += o.ReadBytes
	s.WriteBytes += o.WriteBytes
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.BusBusyCycles += o.BusBusyCycles
}

// TotalBytes returns the total traffic.
func (s Stats) TotalBytes() uint64 { return s.ReadBytes + s.WriteBytes }

type bank struct {
	openRow uint64
	valid   bool
}

// DRAM is the memory model. It implements cache.NextLevel so caches can use
// it directly as their backing store.
type DRAM struct {
	cfg   Config
	banks [][]bank
	Stats Stats

	// Fault, when non-nil, injects faults on every access (sites
	// fault.SiteDRAMRead / SiteDRAMWrite). Transient and Panic kinds both
	// panic with the fault error — the cache.NextLevel interface has no
	// error channel, so an injected fault models an uncorrectable memory
	// fault and surfaces through the job pool's panic isolation. Latency
	// kinds sleep host time only and never change simulated results.
	Fault *fault.Plan
}

// New builds the DRAM model; it panics on invalid configuration.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	banks := make([][]bank, cfg.Channels)
	for i := range banks {
		banks[i] = make([]bank, cfg.BanksPerChannel)
	}
	return &DRAM{cfg: cfg, banks: banks}
}

// Config returns the model's configuration.
func (d *DRAM) Config() Config { return d.cfg }

// access serves one request and returns its latency in GPU cycles.
func (d *DRAM) access(addr uint64, size int, write bool) int {
	if size <= 0 {
		return 0
	}
	if d.Fault != nil {
		site := fault.SiteDRAMRead
		if write {
			site = fault.SiteDRAMWrite
		}
		if err := d.Fault.Check(site); err != nil {
			panic(err)
		}
	}
	// Address mapping: channel-interleaved at row granularity so that
	// streaming fills spread across channels, then bank, then row.
	row := addr / uint64(d.cfg.RowBytes)
	ch := int(row % uint64(d.cfg.Channels))
	bk := int((row / uint64(d.cfg.Channels)) % uint64(d.cfg.BanksPerChannel))
	b := &d.banks[ch][bk]

	lat := d.cfg.QueueLat + d.cfg.CASLat
	if b.valid && b.openRow == row {
		d.Stats.RowHits++
	} else {
		d.Stats.RowMisses++
		lat += d.cfg.RowCycleLat
		b.openRow = row
		b.valid = true
	}
	burst := (size + d.cfg.BytesPerCycle - 1) / d.cfg.BytesPerCycle
	lat += burst
	d.Stats.BusBusyCycles += uint64(burst)

	if write {
		d.Stats.Writes++
		d.Stats.WriteBytes += uint64(size)
	} else {
		d.Stats.Reads++
		d.Stats.ReadBytes += uint64(size)
	}
	return lat
}

// Read implements cache.NextLevel.
func (d *DRAM) Read(addr uint64, size int) int { return d.access(addr, size, false) }

// Write implements cache.NextLevel. Writes are buffered by the controller;
// the caller sees only the queue traversal, but bandwidth and energy are
// charged in full.
func (d *DRAM) Write(addr uint64, size int) int {
	d.access(addr, size, true)
	return 0
}

// MinTransferCycles returns the minimum number of GPU cycles needed to move
// n bytes given the aggregate bandwidth — the bandwidth wall the timing
// model enforces on each pipeline phase.
func (d *DRAM) MinTransferCycles(n uint64) uint64 {
	agg := uint64(d.cfg.Channels * d.cfg.BytesPerCycle)
	return (n + agg - 1) / agg
}

// ResetStats zeroes the counters while keeping row-buffer state.
func (d *DRAM) ResetStats() { d.Stats = Stats{} }

// Snapshot captures the open-row state of every bank plus the counters, so
// a restored model reproduces the same row hit/miss (and therefore latency)
// sequence as the original.
type Snapshot struct {
	Banks []bank // flattened channels, BanksPerChannel entries per channel
	Stats Stats
}

// Snapshot copies the model's state.
func (d *DRAM) Snapshot() Snapshot {
	banks := make([]bank, 0, d.cfg.Channels*d.cfg.BanksPerChannel)
	for _, ch := range d.banks {
		banks = append(banks, ch...)
	}
	return Snapshot{Banks: banks, Stats: d.Stats}
}

// Restore overwrites the model's state with a snapshot from an identically
// configured model; it panics on a geometry mismatch.
func (d *DRAM) Restore(s Snapshot) {
	if len(s.Banks) != d.cfg.Channels*d.cfg.BanksPerChannel {
		panic(fmt.Sprintf("dram: restore geometry mismatch: %d banks != %d", len(s.Banks), d.cfg.Channels*d.cfg.BanksPerChannel))
	}
	for i, ch := range d.banks {
		copy(ch, s.Banks[i*d.cfg.BanksPerChannel:(i+1)*d.cfg.BanksPerChannel])
	}
	d.Stats = s.Stats
}

// AppendBinary serializes the snapshot in the durability layer's wire
// format: bank open-row state followed by the counters.
func (s Snapshot) AppendBinary(b []byte) []byte {
	b = wire.AppendU32(b, uint32(len(s.Banks)))
	for _, bk := range s.Banks {
		b = wire.AppendU64(b, bk.openRow)
		b = wire.AppendBool(b, bk.valid)
	}
	b = wire.AppendU64(b, s.Stats.Reads)
	b = wire.AppendU64(b, s.Stats.Writes)
	b = wire.AppendU64(b, s.Stats.ReadBytes)
	b = wire.AppendU64(b, s.Stats.WriteBytes)
	b = wire.AppendU64(b, s.Stats.RowHits)
	b = wire.AppendU64(b, s.Stats.RowMisses)
	b = wire.AppendU64(b, s.Stats.BusBusyCycles)
	return b
}

// DecodeSnapshot is the inverse of AppendBinary; errors are latched on r.
func DecodeSnapshot(r *wire.Reader) Snapshot {
	var s Snapshot
	n := int(r.U32())
	if r.Err() != nil || n < 0 || n*9 > r.Len() {
		return s
	}
	s.Banks = make([]bank, n)
	for i := range s.Banks {
		s.Banks[i].openRow = r.U64()
		s.Banks[i].valid = r.Bool()
	}
	s.Stats.Reads = r.U64()
	s.Stats.Writes = r.U64()
	s.Stats.ReadBytes = r.U64()
	s.Stats.WriteBytes = r.U64()
	s.Stats.RowHits = r.U64()
	s.Stats.RowMisses = r.U64()
	s.Stats.BusBusyCycles = r.U64()
	return s
}
