// Package core implements Rendering Elimination (RE), the paper's primary
// contribution: early discard of redundant tiles in a tile-based-rendering
// GPU.
//
// RE observes that the Raster Pipeline's output for a tile is a pure
// function of the tile's inputs — the vertex attributes of every primitive
// overlapping the tile plus the scene constants of their drawcalls. If those
// inputs are identical to the previous frame's, the colors will be too, so
// the tile's entire Raster Pipeline execution (primitive fetch,
// rasterization, early-depth, fragment shading, texturing, blending and the
// flush to the Frame Buffer) can be skipped and the Frame Buffer contents
// reused.
//
// The Controller glues the pieces together the way Figure 5 shows:
//
//   - during the geometry phase it feeds the Signature Unit (internal/sig)
//     with constants blocks from the Command Processor and primitive blocks
//     from the Polygon List Builder, building an incremental CRC32 per tile
//     in the on-chip Signature Buffer;
//   - at raster scheduling it compares each tile's fresh signature with the
//     one of the frame two swaps back (the Back Buffer's producer, Section
//     IV-C) and authorizes the bypass;
//   - it enforces the driver-level disable rules of Section III-E: frames
//     with shader/texture uploads or multiple render targets render
//     normally, uploads invalidate stale baselines, and an optional
//     periodic refresh bounds how long a tile may go unrendered.
package core

import (
	"rendelim/internal/sig"
)

// Config parameterizes the controller.
type Config struct {
	// Sig configures the Signature Unit hardware.
	Sig sig.Config
	// RefreshInterval forces a full render every n-th frame when > 0
	// (Frame Buffer refresh guarantee). 0 disables refreshes.
	RefreshInterval int
}

// Controller is the Rendering Elimination engine for one GPU.
type Controller struct {
	cfg      Config
	unit     *sig.Unit
	frameIdx int
	// disabled marks the current frame as render-everything.
	disabled bool
	// refresh marks the current frame as a forced refresh.
	refresh bool

	// TilesChecked / TilesSkipped count raster-time decisions.
	TilesChecked uint64
	TilesSkipped uint64
}

// New builds a controller for a screen of numTiles tiles.
func New(cfg Config, numTiles int) *Controller {
	return &Controller{cfg: cfg, unit: sig.NewUnit(cfg.Sig, sig.NewBuffer(numTiles))}
}

// Unit exposes the Signature Unit for stats and energy accounting.
func (c *Controller) Unit() *sig.Unit { return c.unit }

// BeginFrame starts a frame's geometry phase.
func (c *Controller) BeginFrame() {
	c.unit.BeginFrame()
	c.disabled = false
	c.refresh = c.cfg.RefreshInterval > 0 && c.frameIdx > 0 &&
		c.frameIdx%c.cfg.RefreshInterval == 0
}

// OnConstants feeds a new scene-constants block (a drawcall's uniform
// updates) into the Signature Unit, opening a constants epoch.
func (c *Controller) OnConstants(block []byte) { c.unit.SetConstants(block) }

// OnPrimitive feeds one binned primitive's attribute block and its
// overlapped tiles. producerCycles is the geometry front-end's delivery
// interval for the primitive (see sig.Unit.AddPrimitive).
func (c *Controller) OnPrimitive(block []byte, tiles []int, producerCycles uint64) {
	c.unit.AddPrimitive(block, tiles, producerCycles)
}

// OnGlobalStateChange reports a change the signature does not cover —
// shader or texture uploads. The frame is disabled and every stored
// baseline is dropped, because "same signature" no longer implies "same
// colors" across the change.
func (c *Controller) OnGlobalStateChange() {
	c.disabled = true
	c.unit.Buffer().InvalidateAll()
}

// DisableFrame forces the current frame to render fully without dropping
// baselines (multiple render targets).
func (c *Controller) DisableFrame() { c.disabled = true }

// Disabled reports whether the current frame bypasses are suppressed.
func (c *Controller) Disabled() bool { return c.disabled }

// ShouldSkip is the raster-scheduling decision for one tile: true when the
// tile's Raster Pipeline execution can be bypassed. It charges the
// signature-compare cost to the Signature Unit's stats.
func (c *Controller) ShouldSkip(tile int) bool {
	if c.disabled {
		return false
	}
	c.TilesChecked++
	redundant := c.unit.CheckTile(tile)
	if redundant && !c.refresh {
		c.TilesSkipped++
		return true
	}
	return false
}

// BaselineMatch exposes the raw signature comparison without charging
// hardware costs or making a decision; the ground-truth classifier of the
// evaluation (Figure 15a) uses it in every technique.
func (c *Controller) BaselineMatch(tile int) (match, valid bool) {
	return c.unit.Buffer().Match(tile)
}

// GeometryOverheadCycles returns the SU stall cycles accumulated so far.
func (c *Controller) GeometryOverheadCycles() uint64 {
	return c.unit.Stats.StallCycles
}

// EndFrame commits the frame's signatures and advances the frame counter.
func (c *Controller) EndFrame() {
	c.unit.EndFrame()
	c.frameIdx++
}

// Snapshot captures the controller's cross-frame state: the Signature Unit
// (buffer contents, datapath counters), the frame counter that drives the
// periodic-refresh policy, and the decision counters.
type Snapshot struct {
	Unit         sig.UnitSnapshot
	FrameIdx     int
	Disabled     bool
	Refresh      bool
	TilesChecked uint64
	TilesSkipped uint64
}

// Snapshot deep-copies the controller state.
func (c *Controller) Snapshot() Snapshot {
	return Snapshot{
		Unit:         c.unit.Snapshot(),
		FrameIdx:     c.frameIdx,
		Disabled:     c.disabled,
		Refresh:      c.refresh,
		TilesChecked: c.TilesChecked,
		TilesSkipped: c.TilesSkipped,
	}
}

// Restore overwrites the controller with a snapshot from an identically
// sized controller.
func (c *Controller) Restore(s Snapshot) {
	c.unit.Restore(s.Unit)
	c.frameIdx = s.FrameIdx
	c.disabled = s.Disabled
	c.refresh = s.Refresh
	c.TilesChecked = s.TilesChecked
	c.TilesSkipped = s.TilesSkipped
}
