package core

import (
	"testing"

	"rendelim/internal/sig"
)

func newCtl(tiles, refresh int) *Controller {
	return New(Config{Sig: sig.DefaultConfig(), RefreshInterval: refresh}, tiles)
}

// playFrame feeds one synthetic frame: a constants block and two primitives.
func playFrame(c *Controller, constants string, primA, primB string) {
	c.BeginFrame()
	c.OnConstants([]byte(constants))
	c.OnPrimitive([]byte(primA), []int{0, 1}, 40)
	c.OnPrimitive([]byte(primB), []int{2, 3}, 40)
}

func TestSkipAfterTwoIdenticalFrames(t *testing.T) {
	c := newCtl(4, 0)
	for f := 0; f < 2; f++ {
		playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
		for tile := 0; tile < 4; tile++ {
			if c.ShouldSkip(tile) {
				t.Fatalf("frame %d tile %d skipped without a baseline", f, tile)
			}
		}
		c.EndFrame()
	}
	playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
	for tile := 0; tile < 4; tile++ {
		if !c.ShouldSkip(tile) {
			t.Fatalf("tile %d should skip on identical frame 2", tile)
		}
	}
	if c.TilesSkipped != 4 || c.TilesChecked != 12 {
		t.Fatalf("decision counters: %+v / %+v", c.TilesSkipped, c.TilesChecked)
	}
}

func TestChangedConstantsBlockSkipping(t *testing.T) {
	c := newCtl(4, 0)
	playFrame(c, "consts-0", "prim-aaaa", "prim-bbbb")
	c.EndFrame()
	playFrame(c, "consts-0", "prim-aaaa", "prim-bbbb")
	c.EndFrame()
	playFrame(c, "consts-X", "prim-aaaa", "prim-bbbb")
	for tile := 0; tile < 4; tile++ {
		if c.ShouldSkip(tile) {
			t.Fatalf("tile %d skipped despite changed constants", tile)
		}
	}
}

func TestPartialChangeSkipsOnlyUnchangedTiles(t *testing.T) {
	c := newCtl(4, 0)
	playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
	c.EndFrame()
	playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
	c.EndFrame()
	playFrame(c, "consts", "prim-aaaa", "prim-MOVED")
	if !c.ShouldSkip(0) || !c.ShouldSkip(1) {
		t.Fatal("unchanged tiles 0,1 should skip")
	}
	if c.ShouldSkip(2) || c.ShouldSkip(3) {
		t.Fatal("changed tiles 2,3 must render")
	}
}

func TestGlobalStateChangeDropsBaselines(t *testing.T) {
	c := newCtl(4, 0)
	for f := 0; f < 2; f++ {
		playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
		c.EndFrame()
	}
	playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
	c.OnGlobalStateChange()
	if !c.Disabled() {
		t.Fatal("upload should disable the frame")
	}
	if c.ShouldSkip(0) {
		t.Fatal("disabled frame must not skip")
	}
	c.EndFrame()
	// Next frame: baseline (pre-upload frame) was invalidated.
	playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
	if c.ShouldSkip(0) {
		t.Fatal("stale baseline used after upload")
	}
	c.EndFrame()
	// Two frames after the upload, post-upload baselines are valid again.
	playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
	if !c.ShouldSkip(0) {
		t.Fatal("RE should resume two frames after the upload")
	}
}

func TestDisableFrameKeepsBaselines(t *testing.T) {
	c := newCtl(4, 0)
	for f := 0; f < 2; f++ {
		playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
		c.EndFrame()
	}
	playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
	c.DisableFrame()
	if c.ShouldSkip(0) {
		t.Fatal("MRT frame must render")
	}
	c.EndFrame()
	playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
	if !c.ShouldSkip(0) {
		t.Fatal("baselines should survive a plain disable")
	}
}

func TestRefreshInterval(t *testing.T) {
	c := newCtl(4, 3)
	skips := make([]bool, 9)
	for f := 0; f < 9; f++ {
		playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
		skips[f] = c.ShouldSkip(0)
		c.EndFrame()
	}
	// Frames 3 and 6 are refreshes; 2,4,5,7,8 skip.
	for f, want := range []bool{false, false, true, false, true, true, false, true, true} {
		if skips[f] != want {
			t.Fatalf("frame %d skip=%v, want %v (refresh interval)", f, skips[f], want)
		}
	}
}

func TestBaselineMatchDoesNotDecide(t *testing.T) {
	c := newCtl(4, 0)
	playFrame(c, "consts", "prim-aaaa", "prim-bbbb")
	if _, valid := c.BaselineMatch(0); valid {
		t.Fatal("no baseline should exist in frame 0")
	}
	if c.TilesChecked != 0 {
		t.Fatal("BaselineMatch must not count as a decision")
	}
}

func TestGeometryOverheadExposed(t *testing.T) {
	c := newCtl(512, 0)
	c.BeginFrame()
	tiles := make([]int, 512)
	for i := range tiles {
		tiles[i] = i
	}
	c.OnPrimitive(make([]byte, 144), tiles, 40)
	if c.GeometryOverheadCycles() == 0 {
		t.Fatal("full-screen primitive should stall the OT queue")
	}
}
