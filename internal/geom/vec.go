// Package geom provides the small fixed-size linear-algebra types used
// throughout the simulator: float32 vectors, 4x4 matrices and axis-aligned
// boxes. All operations are deterministic (no math/rand, no FMA contraction
// assumptions) so that identical scene inputs always produce bit-identical
// colors, which the Rendering Elimination invariant "equal inputs => equal
// outputs" relies on.
package geom

import "math"

// Vec2 is a two-component float32 vector.
type Vec2 struct{ X, Y float32 }

// Vec3 is a three-component float32 vector.
type Vec3 struct{ X, Y, Z float32 }

// Vec4 is a four-component float32 vector. It doubles as the register word of
// the shader VM and as the unit of a vertex attribute (16 bytes).
type Vec4 struct{ X, Y, Z, W float32 }

// V2 constructs a Vec2.
func V2(x, y float32) Vec2 { return Vec2{x, y} }

// V3 constructs a Vec3.
func V3(x, y, z float32) Vec3 { return Vec3{x, y, z} }

// V4 constructs a Vec4.
func V4(x, y, z, w float32) Vec4 { return Vec4{x, y, z, w} }

// Add returns a+b.
func (a Vec2) Add(b Vec2) Vec2 { return Vec2{a.X + b.X, a.Y + b.Y} }

// Sub returns a-b.
func (a Vec2) Sub(b Vec2) Vec2 { return Vec2{a.X - b.X, a.Y - b.Y} }

// Scale returns a*s.
func (a Vec2) Scale(s float32) Vec2 { return Vec2{a.X * s, a.Y * s} }

// Add returns a+b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a-b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a*s.
func (a Vec3) Scale(s float32) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product of a and b.
func (a Vec3) Dot(b Vec3) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a x b.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean length of a.
func (a Vec3) Len() float32 { return float32(math.Sqrt(float64(a.Dot(a)))) }

// Normalize returns a scaled to unit length, or the zero vector if a is zero.
func (a Vec3) Normalize() Vec3 {
	l := a.Len()
	if l == 0 {
		return Vec3{}
	}
	return a.Scale(1 / l)
}

// Vec4 returns the homogeneous extension of a with the given w.
func (a Vec3) Vec4(w float32) Vec4 { return Vec4{a.X, a.Y, a.Z, w} }

// Add returns a+b.
func (a Vec4) Add(b Vec4) Vec4 { return Vec4{a.X + b.X, a.Y + b.Y, a.Z + b.Z, a.W + b.W} }

// Sub returns a-b.
func (a Vec4) Sub(b Vec4) Vec4 { return Vec4{a.X - b.X, a.Y - b.Y, a.Z - b.Z, a.W - b.W} }

// Mul returns the component-wise product of a and b.
func (a Vec4) Mul(b Vec4) Vec4 { return Vec4{a.X * b.X, a.Y * b.Y, a.Z * b.Z, a.W * b.W} }

// Scale returns a*s.
func (a Vec4) Scale(s float32) Vec4 { return Vec4{a.X * s, a.Y * s, a.Z * s, a.W * s} }

// Dot returns the four-component dot product.
func (a Vec4) Dot(b Vec4) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z + a.W*b.W }

// Dot3 returns the dot product of the xyz components only.
func (a Vec4) Dot3(b Vec4) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// XYZ returns the first three components as a Vec3.
func (a Vec4) XYZ() Vec3 { return Vec3{a.X, a.Y, a.Z} }

// Comp returns component i (0..3) of a.
func (a Vec4) Comp(i int) float32 {
	switch i {
	case 0:
		return a.X
	case 1:
		return a.Y
	case 2:
		return a.Z
	default:
		return a.W
	}
}

// WithComp returns a copy of a with component i set to v.
func (a Vec4) WithComp(i int, v float32) Vec4 {
	switch i {
	case 0:
		a.X = v
	case 1:
		a.Y = v
	case 2:
		a.Z = v
	default:
		a.W = v
	}
	return a
}

// Lerp returns a + t*(b-a), component-wise.
func (a Vec4) Lerp(b Vec4, t float32) Vec4 {
	return Vec4{
		a.X + t*(b.X-a.X),
		a.Y + t*(b.Y-a.Y),
		a.Z + t*(b.Z-a.Z),
		a.W + t*(b.W-a.W),
	}
}

// Clamp01 clamps every component of a into [0,1].
func (a Vec4) Clamp01() Vec4 {
	return Vec4{clamp01(a.X), clamp01(a.Y), clamp01(a.Z), clamp01(a.W)}
}

func clamp01(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Rect is an integer half-open rectangle [X0,X1) x [Y0,Y1).
type Rect struct{ X0, Y0, X1, Y1 int }

// Empty reports whether r contains no pixels.
func (r Rect) Empty() bool { return r.X0 >= r.X1 || r.Y0 >= r.Y1 }

// Intersect returns the intersection of r and s.
func (r Rect) Intersect(s Rect) Rect {
	if s.X0 > r.X0 {
		r.X0 = s.X0
	}
	if s.Y0 > r.Y0 {
		r.Y0 = s.Y0
	}
	if s.X1 < r.X1 {
		r.X1 = s.X1
	}
	if s.Y1 < r.Y1 {
		r.Y1 = s.Y1
	}
	return r
}

// Area returns the number of pixels in r, or 0 if r is empty.
func (r Rect) Area() int {
	if r.Empty() {
		return 0
	}
	return (r.X1 - r.X0) * (r.Y1 - r.Y0)
}
