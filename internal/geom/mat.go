package geom

import "math"

// Mat4 is a 4x4 float32 matrix in row-major order: element (r,c) is M[r*4+c].
// Row-major storage means each row is directly usable as a shader uniform
// vec4, matching how the workload generator uploads matrices as four
// consecutive constant registers.
type Mat4 [16]float32

// Identity returns the identity matrix.
func Identity() Mat4 {
	return Mat4{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}
}

// Row returns row r of m as a Vec4.
func (m Mat4) Row(r int) Vec4 {
	return Vec4{m[r*4], m[r*4+1], m[r*4+2], m[r*4+3]}
}

// Mul returns the matrix product m*n.
func (m Mat4) Mul(n Mat4) Mat4 {
	var out Mat4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var s float32
			for k := 0; k < 4; k++ {
				s += m[r*4+k] * n[k*4+c]
			}
			out[r*4+c] = s
		}
	}
	return out
}

// MulVec returns m*v treating v as a column vector.
func (m Mat4) MulVec(v Vec4) Vec4 {
	return Vec4{
		m.Row(0).Dot(v),
		m.Row(1).Dot(v),
		m.Row(2).Dot(v),
		m.Row(3).Dot(v),
	}
}

// Translate returns a translation matrix.
func Translate(t Vec3) Mat4 {
	m := Identity()
	m[3] = t.X
	m[7] = t.Y
	m[11] = t.Z
	return m
}

// Scale returns a scaling matrix.
func Scale(s Vec3) Mat4 {
	m := Identity()
	m[0] = s.X
	m[5] = s.Y
	m[10] = s.Z
	return m
}

// RotateX returns a rotation of a radians about the X axis.
func RotateX(a float32) Mat4 {
	s, c := sincos(a)
	m := Identity()
	m[5], m[6] = c, -s
	m[9], m[10] = s, c
	return m
}

// RotateY returns a rotation of a radians about the Y axis.
func RotateY(a float32) Mat4 {
	s, c := sincos(a)
	m := Identity()
	m[0], m[2] = c, s
	m[8], m[10] = -s, c
	return m
}

// RotateZ returns a rotation of a radians about the Z axis.
func RotateZ(a float32) Mat4 {
	s, c := sincos(a)
	m := Identity()
	m[0], m[1] = c, -s
	m[4], m[5] = s, c
	return m
}

func sincos(a float32) (sin, cos float32) {
	s, c := math.Sincos(float64(a))
	return float32(s), float32(c)
}

// Perspective returns a right-handed perspective projection with the given
// vertical field of view (radians), aspect ratio and near/far planes, mapping
// depth into [-1,1] clip space like OpenGL.
func Perspective(fovY, aspect, near, far float32) Mat4 {
	f := float32(1 / math.Tan(float64(fovY)/2))
	var m Mat4
	m[0] = f / aspect
	m[5] = f
	m[10] = (far + near) / (near - far)
	m[11] = 2 * far * near / (near - far)
	m[14] = -1
	return m
}

// Ortho returns an orthographic projection mapping the given box to clip
// space, matching glOrtho.
func Ortho(left, right, bottom, top, near, far float32) Mat4 {
	var m Mat4
	m[0] = 2 / (right - left)
	m[3] = -(right + left) / (right - left)
	m[5] = 2 / (top - bottom)
	m[7] = -(top + bottom) / (top - bottom)
	m[10] = -2 / (far - near)
	m[11] = -(far + near) / (far - near)
	m[15] = 1
	return m
}

// LookAt returns a right-handed view matrix placing the camera at eye,
// looking at center, with the given up vector.
func LookAt(eye, center, up Vec3) Mat4 {
	f := center.Sub(eye).Normalize()
	s := f.Cross(up.Normalize()).Normalize()
	u := s.Cross(f)
	m := Identity()
	m[0], m[1], m[2] = s.X, s.Y, s.Z
	m[4], m[5], m[6] = u.X, u.Y, u.Z
	m[8], m[9], m[10] = -f.X, -f.Y, -f.Z
	m[3] = -s.Dot(eye)
	m[7] = -u.Dot(eye)
	m[11] = f.Dot(eye)
	return m
}
