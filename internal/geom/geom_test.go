package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float32) bool {
	return float32(math.Abs(float64(a-b))) <= eps
}

func vecApprox(a, b Vec4, eps float32) bool {
	return approx(a.X, b.X, eps) && approx(a.Y, b.Y, eps) &&
		approx(a.Z, b.Z, eps) && approx(a.W, b.W, eps)
}

func TestVec3CrossOrthogonal(t *testing.T) {
	a := V3(1, 2, 3)
	b := V3(-4, 1, 0.5)
	c := a.Cross(b)
	if !approx(c.Dot(a), 0, 1e-4) || !approx(c.Dot(b), 0, 1e-4) {
		t.Fatalf("cross product not orthogonal: %v", c)
	}
}

func TestVec3NormalizeLength(t *testing.T) {
	v := V3(3, 4, 12).Normalize()
	if !approx(v.Len(), 1, 1e-6) {
		t.Fatalf("normalize length = %v, want 1", v.Len())
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Fatalf("normalize zero = %v, want zero", got)
	}
}

func TestVec4CompRoundTrip(t *testing.T) {
	v := V4(1, 2, 3, 4)
	for i := 0; i < 4; i++ {
		if v.Comp(i) != float32(i+1) {
			t.Fatalf("Comp(%d) = %v", i, v.Comp(i))
		}
		w := v.WithComp(i, 9)
		if w.Comp(i) != 9 {
			t.Fatalf("WithComp(%d) failed: %v", i, w)
		}
	}
}

func TestVec4LerpEndpoints(t *testing.T) {
	a, b := V4(0, 1, 2, 3), V4(4, 5, 6, 7)
	if a.Lerp(b, 0) != a {
		t.Fatal("lerp(0) != a")
	}
	if a.Lerp(b, 1) != b {
		t.Fatal("lerp(1) != b")
	}
	mid := a.Lerp(b, 0.5)
	if !vecApprox(mid, V4(2, 3, 4, 5), 1e-6) {
		t.Fatalf("lerp(0.5) = %v", mid)
	}
}

func TestClamp01(t *testing.T) {
	v := V4(-1, 0.5, 2, 1).Clamp01()
	if v != V4(0, 0.5, 1, 1) {
		t.Fatalf("clamp = %v", v)
	}
}

func TestMat4IdentityMulVec(t *testing.T) {
	v := V4(1, -2, 3, 1)
	if got := Identity().MulVec(v); got != v {
		t.Fatalf("I*v = %v, want %v", got, v)
	}
}

func TestMat4MulAssociativeWithVec(t *testing.T) {
	// (A*B)*v == A*(B*v) up to float tolerance.
	a := Translate(V3(1, 2, 3)).Mul(RotateY(0.7))
	b := Scale(V3(2, 2, 2)).Mul(RotateZ(-0.3))
	v := V4(0.5, -1, 4, 1)
	lhs := a.Mul(b).MulVec(v)
	rhs := a.MulVec(b.MulVec(v))
	if !vecApprox(lhs, rhs, 1e-4) {
		t.Fatalf("(AB)v = %v, A(Bv) = %v", lhs, rhs)
	}
}

func TestTranslatePoint(t *testing.T) {
	m := Translate(V3(10, 20, 30))
	got := m.MulVec(V4(1, 1, 1, 1))
	if !vecApprox(got, V4(11, 21, 31, 1), 1e-6) {
		t.Fatalf("translate = %v", got)
	}
	// Direction vectors (w=0) are unaffected by translation.
	dir := m.MulVec(V4(1, 0, 0, 0))
	if !vecApprox(dir, V4(1, 0, 0, 0), 1e-6) {
		t.Fatalf("translated direction = %v", dir)
	}
}

func TestRotateZQuarterTurn(t *testing.T) {
	m := RotateZ(float32(math.Pi / 2))
	got := m.MulVec(V4(1, 0, 0, 1))
	if !vecApprox(got, V4(0, 1, 0, 1), 1e-6) {
		t.Fatalf("rotZ(90)*(1,0,0) = %v", got)
	}
}

func TestPerspectiveMapsNearFar(t *testing.T) {
	p := Perspective(1.0, 1.5, 1, 100)
	near := p.MulVec(V4(0, 0, -1, 1))
	far := p.MulVec(V4(0, 0, -100, 1))
	if !approx(near.Z/near.W, -1, 1e-5) {
		t.Fatalf("near plane maps to %v, want -1", near.Z/near.W)
	}
	if !approx(far.Z/far.W, 1, 1e-4) {
		t.Fatalf("far plane maps to %v, want 1", far.Z/far.W)
	}
}

func TestOrthoMapsCorners(t *testing.T) {
	o := Ortho(0, 100, 0, 50, -1, 1)
	bl := o.MulVec(V4(0, 0, 0, 1))
	tr := o.MulVec(V4(100, 50, 0, 1))
	if !vecApprox(bl, V4(-1, -1, 0, 1), 1e-5) {
		t.Fatalf("bottom-left = %v", bl)
	}
	if !vecApprox(tr, V4(1, 1, 0, 1), 1e-5) {
		t.Fatalf("top-right = %v", tr)
	}
}

func TestLookAtEyeMapsToOrigin(t *testing.T) {
	eye := V3(5, 3, 8)
	m := LookAt(eye, V3(0, 0, 0), V3(0, 1, 0))
	got := m.MulVec(eye.Vec4(1))
	if !vecApprox(got, V4(0, 0, 0, 1), 1e-4) {
		t.Fatalf("lookAt(eye) = %v, want origin", got)
	}
	// The look direction should map to -Z.
	fwd := m.MulVec(V4(0, 0, 0, 1))
	_ = fwd
	center := m.MulVec(V4(0, 0, 0, 1))
	if center.Z >= 0 {
		t.Fatalf("center not in front of camera: %v", center)
	}
}

func TestRectIntersectArea(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 20, 20}
	got := a.Intersect(b)
	if got != (Rect{5, 5, 10, 10}) {
		t.Fatalf("intersect = %v", got)
	}
	if got.Area() != 25 {
		t.Fatalf("area = %d", got.Area())
	}
	if !a.Intersect(Rect{50, 50, 60, 60}).Empty() {
		t.Fatal("disjoint rects should intersect empty")
	}
	if (Rect{3, 3, 3, 9}).Area() != 0 {
		t.Fatal("degenerate rect area should be 0")
	}
}

// Property: matrix-vector multiplication distributes over vector addition.
func TestQuickMulVecDistributes(t *testing.T) {
	f := func(tx, ty, tz, ang float32, v1, v2 [4]float32) bool {
		if anyNaN(tx, ty, tz, ang) || anyNaN(v1[:]...) || anyNaN(v2[:]...) {
			return true
		}
		// Bound magnitudes so float error stays proportional.
		m := Translate(V3(bound(tx), bound(ty), bound(tz))).Mul(RotateY(bound(ang)))
		a := V4(bound(v1[0]), bound(v1[1]), bound(v1[2]), bound(v1[3]))
		b := V4(bound(v2[0]), bound(v2[1]), bound(v2[2]), bound(v2[3]))
		lhs := m.MulVec(a.Add(b))
		rhs := m.MulVec(a).Add(m.MulVec(b))
		return vecApprox(lhs, rhs, 1e-2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: rotations preserve vector length.
func TestQuickRotationPreservesLength(t *testing.T) {
	f := func(ang float32, x, y, z float32) bool {
		if anyNaN(ang, x, y, z) {
			return true
		}
		v := V3(bound(x), bound(y), bound(z))
		r := RotateX(bound(ang)).Mul(RotateY(bound(2 * ang))).MulVec(v.Vec4(0))
		return approx(r.XYZ().Len(), v.Len(), v.Len()*1e-4+1e-4)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// bound squashes any float32 (including NaN and ±Inf, which arithmetic on
// quick-generated values can produce, e.g. 2*ang overflowing) into [-100,100].
func bound(v float32) float32 {
	if v != v || math.IsInf(float64(v), 0) {
		return 0
	}
	for v > 100 || v < -100 {
		v /= 1024
	}
	return v
}

func anyNaN(vs ...float32) bool {
	for _, v := range vs {
		if v != v || math.IsInf(float64(v), 0) {
			return true
		}
	}
	return false
}
