// Package server exposes the jobs pool over HTTP: POST /jobs submits a
// workload spec (JSON) or an uploaded internal/trace binary, GET /jobs/{id}
// reports status and results, GET /healthz liveness, and GET /metrics the
// Prometheus-text pool counters — including the job-elimination ratio (the
// service-level twin of the paper's tile skip fraction) and the simulator's
// per-pipeline-stage cycle and tile-class totals. Runtime introspection
// rides along at /debug/pprof (net/http/pprof) and /debug/vars (expvar).
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rendelim/internal/apihttp"
	"rendelim/internal/cluster"
	"rendelim/internal/fault"
	"rendelim/internal/gpusim"
	"rendelim/internal/jobs"
	"rendelim/internal/obs"
	"rendelim/internal/rerr"
	"rendelim/internal/stats"
	"rendelim/internal/trace"
	"rendelim/internal/workload"
)

// Limits bound untrusted inputs.
type Limits struct {
	MaxBodyBytes  int64 // trace upload size; default 64 MiB
	MaxPixels     int   // Width*Height; default 4096*4096
	MaxFrames     int   // default 1000
	MaxWaitableMS int64 // cap on ?wait deadline; default 10 minutes
}

func (l *Limits) setDefaults() {
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = 64 << 20
	}
	if l.MaxPixels <= 0 {
		l.MaxPixels = 4096 * 4096
	}
	if l.MaxFrames <= 0 {
		l.MaxFrames = 1000
	}
	if l.MaxWaitableMS <= 0 {
		l.MaxWaitableMS = 10 * 60 * 1000
	}
}

// Server routes HTTP requests to a jobs.Pool — and, when clustered, to the
// ring owner of each job's signature.
type Server struct {
	pool   *jobs.Pool
	limits Limits
	start  time.Time
	log    *slog.Logger

	// cluster, when non-nil, shards job ownership across the fleet: a
	// submission whose signature this node does not own is proxied to its
	// owner, so the owner's singleflight and LRU cache eliminate identical
	// jobs cluster-wide. Set once at startup (SetCluster), read-only after.
	cluster *cluster.Cluster

	// tracer/spans emit one span per HTTP request into the Chrome trace;
	// journal feeds the /debug/events flight recorder. All nil-safe, set
	// once at startup (SetTracer / SetJournal), read-only after.
	tracer  *obs.Tracer
	spans   *obs.SpanPool
	journal *obs.Journal

	requests atomic.Uint64
	draining atomic.Bool
	fplan    atomic.Pointer[fault.Plan]

	// httpHists distributes request latency per (route, status) — routes are
	// normalized patterns ("/jobs/{id}"), never raw paths, so cardinality
	// stays bounded.
	httpMu    sync.Mutex
	httpHists map[httpLabel]*stats.Histogram

	// legacyWarned dedups the per-route deprecation warning for the
	// unversioned route aliases (keyed by normalized route label, so job-id
	// paths cannot grow it without bound).
	legacyWarned sync.Map
}

// httpLabel keys one HTTP latency series.
type httpLabel struct {
	route  string
	status int
}

// httpBuckets bound HTTP request latency in seconds: metrics scrapes sit in
// the sub-millisecond buckets, a ?wait=1 submit can hold for a simulation.
var httpBuckets = []float64{0.0005, 0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// expvar names are process-global and may only be published once, but tests
// spin up many Servers; the published Funcs read through this pointer to
// whichever pool the newest Server wraps.
var (
	expvarPool    atomic.Pointer[jobs.Pool]
	expvarCluster atomic.Pointer[cluster.Cluster]
	expvarOnce    sync.Once
)

func publishExpvars() {
	expvarOnce.Do(func() {
		obs.PublishBuildInfo()
		expvar.Publish("resvc_queue_depth", expvar.Func(func() any {
			if p := expvarPool.Load(); p != nil {
				return p.Metrics().QueueDepth()
			}
			return 0
		}))
		expvar.Publish("resvc_cache_entries", expvar.Func(func() any {
			if p := expvarPool.Load(); p != nil {
				return p.CacheLen()
			}
			return 0
		}))
		// Ring ownership: which member owns what fraction of the signature
		// space, with current liveness — the at-a-glance sharding view.
		expvar.Publish("resvc_cluster_ring", expvar.Func(func() any {
			if c := expvarCluster.Load(); c != nil {
				return c.Ownership()
			}
			return nil
		}))
	})
}

// New wraps pool; zero limits select defaults.
func New(pool *jobs.Pool, limits Limits) *Server {
	limits.setDefaults()
	expvarPool.Store(pool)
	publishExpvars()
	return &Server{
		pool:      pool,
		limits:    limits,
		start:     time.Now(),
		log:       slog.Default(),
		httpHists: make(map[httpLabel]*stats.Histogram),
	}
}

// SetLogger redirects the server's request log (default: slog.Default).
func (s *Server) SetLogger(l *slog.Logger) {
	if l != nil {
		s.log = l
	}
}

// SetCluster joins the server to a cluster: submissions this node does not
// own are forwarded to their ring owner, owned submissions run locally.
// Must be called before the server starts handling requests.
func (s *Server) SetCluster(c *cluster.Cluster) {
	s.cluster = c
	expvarCluster.Store(c)
}

// SetTracer emits one span per HTTP request into t's Chrome trace, tagged
// with the request's trace id. Must be called before the server starts
// handling requests; nil leaves tracing off.
func (s *Server) SetTracer(t *obs.Tracer) {
	s.tracer = t
	s.spans = obs.NewSpanPool(t, "http")
}

// SetJournal routes notable request events (forwarded, degraded) to j and
// serves it at /debug/events. Must be called before the server starts
// handling requests; nil leaves the journal off.
func (s *Server) SetJournal(j *obs.Journal) { s.journal = j }

// SetFaultPlan arms fault injection at the server.accept site (and nothing
// else — the pool carries its own plan). Safe to call concurrently with
// request serving; nil disarms.
func (s *Server) SetFaultPlan(p *fault.Plan) { s.fplan.Store(p) }

// StartDraining flips /healthz to 503 {"status":"draining"} so load
// balancers stop routing here while in-flight jobs finish. Submissions are
// still accepted until the listener closes: draining is advisory,
// shutdown-ordering (Shutdown, then Pool.Close) does the real work.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Draining reports whether StartDraining has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusWriter captures the response code for the request log, and whether
// anything was written (so the panic recovery knows a 500 can still be sent).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Handler returns the service mux, including the /debug/pprof, /debug/vars
// and /debug/events introspection endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(apihttp.PathJobs, s.handleJobs)
	mux.HandleFunc(apihttp.PathJobs+"/", s.handleJobByID)
	mux.HandleFunc(apihttp.PathHealthz, s.handleHealthz)
	mux.HandleFunc(apihttp.PathMetrics, s.handleMetrics)
	// Unversioned aliases: same handlers, but stamped with deprecation
	// headers and logged on first hit so stale clients are discoverable.
	mux.HandleFunc(apihttp.LegacyPathJobs, s.legacy(apihttp.PathJobs, s.handleJobs))
	mux.HandleFunc(apihttp.LegacyPathJobs+"/", s.legacy(apihttp.PathJobs+"/{id}", s.handleJobByID))
	mux.HandleFunc(apihttp.LegacyPathHealthz, s.legacy(apihttp.PathHealthz, s.handleHealthz))
	mux.HandleFunc(apihttp.LegacyPathMetrics, s.legacy(apihttp.PathMetrics, s.handleMetrics))
	mux.HandleFunc("/debug/events", s.handleEvents)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		// Trace context: honor an inbound W3C traceparent (a cluster hop, or
		// a tracing-aware client) by continuing its trace with a fresh span;
		// otherwise this request is a trace root.
		tc, err := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		if err == nil && tc.Valid() {
			tc = tc.Child()
		} else {
			tc = obs.NewTraceContext()
		}
		r = r.WithContext(obs.ContextWithTrace(r.Context(), tc))
		route := routeLabel(r.URL.Path)
		var th *obs.Thread
		if s.spans != nil {
			if th = s.spans.Get(); th != nil {
				th.BeginArgStr(r.Method+" "+route, "trace_id", tc.TraceIDString())
			}
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		// Handler-level panic isolation: one failed request must never take
		// the process (net/http would only catch panics below ServeHTTP).
		defer func() {
			if rec := recover(); rec != nil {
				s.log.Error("handler panicked", "path", r.URL.Path, "panic", rec,
					"stack", string(debug.Stack()))
				if !sw.wrote {
					httpError(sw, http.StatusInternalServerError, "internal error")
				}
			}
			s.observeHTTP(route, sw.status, time.Since(start).Seconds())
			if th != nil {
				th.End()
				s.spans.Put(th)
			}
			s.log.Debug("http request", "method", r.Method, "path", r.URL.Path,
				"status", sw.status, "duration", time.Since(start), "remote", r.RemoteAddr,
				"trace_id", tc.TraceIDString(), "span_id", tc.SpanIDString())
		}()
		// Injected accept-path fault: Latency sleeps inside Check, Panic
		// unwinds into the recover above, Transient/Corrupt shed the request.
		if err := s.fplan.Load().Check(fault.SiteServerAccept); err != nil {
			w.Header().Set("Retry-After", "1")
			httpError(sw, http.StatusServiceUnavailable, "injected fault: "+err.Error())
			return
		}
		mux.ServeHTTP(sw, r)
	})
}

// legacy wraps a handler reached through a deprecated unversioned route:
// every reply carries Deprecation and successor-version Link headers, and
// the first hit per route logs a warning naming the /v1 replacement.
func (s *Server) legacy(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		route := routeLabel(r.URL.Path)
		if _, warned := s.legacyWarned.LoadOrStore(route, true); !warned {
			s.log.Warn("deprecated unversioned route", "route", route, "successor", successor)
		}
		h(w, r)
	}
}

// routeLabel normalizes a request path to a bounded label set for the
// latency histogram — raw paths (job ids, pprof profiles) would explode
// series cardinality.
func routeLabel(path string) string {
	switch {
	case path == apihttp.LegacyPathJobs:
		return "/jobs"
	case path == apihttp.PathJobs:
		return "/v1/jobs"
	case strings.HasPrefix(path, apihttp.PathJobs+"/"):
		return "/v1/jobs/{id}"
	case strings.HasPrefix(path, apihttp.LegacyPathJobs+"/"):
		return "/jobs/{id}"
	case path == apihttp.PathHealthz, path == apihttp.PathMetrics:
		return path
	case path == "/healthz", path == "/metrics", path == "/debug/vars", path == "/debug/events":
		return path
	case strings.HasPrefix(path, "/debug/pprof"):
		return "/debug/pprof"
	}
	return "other"
}

// observeHTTP records one request latency into its (route, status) series.
func (s *Server) observeHTTP(route string, status int, seconds float64) {
	l := httpLabel{route: route, status: status}
	s.httpMu.Lock()
	h, ok := s.httpHists[l]
	if !ok {
		h = stats.NewHistogram(httpBuckets...)
		s.httpHists[l] = h
	}
	s.httpMu.Unlock()
	h.Observe(seconds)
}

// handleEvents serves the journal ring buffer — the node's flight recorder —
// as a JSON array, oldest first. Always an array, even with no journal wired.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	evs := s.journal.Events()
	if evs == nil {
		evs = []obs.JournalEvent{}
	}
	writeJSON(w, http.StatusOK, evs)
}

// SubmitRequest and JobResponse are the wire types of the jobs API. They
// live in internal/apihttp (shared with the cluster client and restat);
// the aliases keep this package's exported surface intact.
type (
	SubmitRequest = apihttp.SubmitRequest
	JobResponse   = apihttp.JobResponse
)

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	ct := r.Header.Get("Content-Type")
	var spec jobs.Spec
	var body []byte
	var err error
	switch {
	case strings.HasPrefix(ct, "application/json"), ct == "":
		body, spec, err = s.specFromJSON(r)
	default: // binary trace upload (application/octet-stream or similar)
		body, spec, err = s.specFromTrace(r)
	}
	if err != nil {
		httpError(w, statusForError(err), err.Error())
		return
	}

	// Cluster routing: a signature this node does not own goes to its ring
	// owner, whose singleflight + cache eliminate identical jobs fleet-wide.
	// A request that already carries the forward header is processed locally
	// unconditionally — divergent ring views must never bounce a job around.
	if s.cluster != nil && r.Header.Get(cluster.ForwardHeader) == "" {
		if owner := s.cluster.Owner(spec.Key()); !s.cluster.IsSelf(owner) {
			if s.forwardSubmit(w, r, owner, spec.Key(), body, ct) {
				return
			}
			// Owner unreachable: degraded mode — fall through and simulate
			// locally rather than failing the request.
		}
	}
	s.submitLocal(w, r, spec)
}

// submitLocal runs the submission against this node's own pool.
func (s *Server) submitLocal(w http.ResponseWriter, r *http.Request, spec jobs.Spec) {
	job, err := s.pool.TrySubmit(spec)
	if err != nil {
		status := statusForError(err)
		if ra := retryAfter(err); ra > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ra))
		}
		httpError(w, status, err.Error())
		return
	}

	status := http.StatusAccepted
	if wait := r.URL.Query().Get("wait"); wait != "" && wait != "0" && wait != "false" {
		ctx, cancel := timeoutCtx(r, s.limits.MaxWaitableMS)
		defer cancel()
		job.Wait(ctx)
	}
	resp := s.jobResponse(job, traceIDFrom(r.Context()))
	if resp.State == "done" || resp.State == "failed" {
		status = http.StatusOK
	}
	resp.Location = apihttp.JobsPrefix(r.URL.Path) + "/" + job.ID
	writeJSON(w, status, resp)
}

// specFromJSON parses a workload-spec submission. The raw body rides along
// for cluster forwarding, which re-sends the client's payload verbatim.
func (s *Server) specFromJSON(r *http.Request) ([]byte, jobs.Spec, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		return nil, jobs.Spec{}, fmt.Errorf("%w: read body: %v", rerr.ErrBadConfig, err)
	}
	var req SubmitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, jobs.Spec{}, fmt.Errorf("%w: bad JSON: %v", rerr.ErrBadConfig, err)
	}
	if req.Alias == "" {
		return nil, jobs.Spec{}, fmt.Errorf("%w: missing alias", rerr.ErrBadConfig)
	}
	if _, err := workload.ByAlias(req.Alias); err != nil {
		return nil, jobs.Spec{}, err // wraps rerr.ErrUnknownBenchmark
	}
	if req.Tech == "" {
		req.Tech = "re"
	}
	tech, err := gpusim.ParseTechnique(req.Tech)
	if err != nil {
		return nil, jobs.Spec{}, fmt.Errorf("%w: %v", rerr.ErrBadConfig, err)
	}
	p := workload.DefaultParams()
	if req.Width > 0 {
		p.Width = req.Width
	}
	if req.Height > 0 {
		p.Height = req.Height
	}
	if req.Frames > 0 {
		p.Frames = req.Frames
	}
	if req.Seed != 0 {
		p.Seed = req.Seed
	}
	if p.Width*p.Height > s.limits.MaxPixels {
		return nil, jobs.Spec{}, fmt.Errorf("%w: resolution %dx%d over limit", rerr.ErrBadConfig, p.Width, p.Height)
	}
	if p.Frames > s.limits.MaxFrames {
		return nil, jobs.Spec{}, fmt.Errorf("%w: frames %d over limit %d", rerr.ErrBadConfig, p.Frames, s.limits.MaxFrames)
	}
	return body, jobs.Spec{Alias: req.Alias, Params: p, Tech: tech, Tag: req.Tag}, nil
}

// specFromTrace validates a binary trace upload. The raw bytes become the
// job's signature input; technique and tag come from query parameters.
func (s *Server) specFromTrace(r *http.Request) ([]byte, jobs.Spec, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.limits.MaxBodyBytes+1))
	if err != nil {
		return nil, jobs.Spec{}, fmt.Errorf("%w: read body: %v", rerr.ErrBadTrace, err)
	}
	if int64(len(body)) > s.limits.MaxBodyBytes {
		return nil, jobs.Spec{}, fmt.Errorf("%w: trace over %d-byte limit", rerr.ErrBadTrace, s.limits.MaxBodyBytes)
	}
	tr, err := trace.Decode(bytes.NewReader(body))
	if err != nil {
		return nil, jobs.Spec{}, err // wraps rerr.ErrBadTrace
	}
	if tr.Width*tr.Height > s.limits.MaxPixels {
		return nil, jobs.Spec{}, fmt.Errorf("%w: trace resolution %dx%d over limit", rerr.ErrBadTrace, tr.Width, tr.Height)
	}
	if len(tr.Frames) > s.limits.MaxFrames {
		return nil, jobs.Spec{}, fmt.Errorf("%w: trace frame count %d over limit %d", rerr.ErrBadTrace, len(tr.Frames), s.limits.MaxFrames)
	}
	techStr := r.URL.Query().Get("tech")
	if techStr == "" {
		techStr = "re"
	}
	tech, err := gpusim.ParseTechnique(techStr)
	if err != nil {
		return nil, jobs.Spec{}, fmt.Errorf("%w: %v", rerr.ErrBadConfig, err)
	}
	return body, jobs.Spec{TraceBin: body, Tech: tech, Tag: r.URL.Query().Get("tag")}, nil
}

// forwardSubmit proxies a submission to its ring owner, serving from the
// local read-through cache when possible. Reports whether the request was
// handled; false means the owner was unreachable and the caller should fall
// back to local simulation (degraded mode — availability over strict
// ownership; the jobs run twice in the worst case, never zero times).
func (s *Server) forwardSubmit(w http.ResponseWriter, r *http.Request, owner string, key jobs.Key, body []byte, contentType string) bool {
	// Read-through: a completed result this node recently fetched for the
	// same signature is served locally — elimination without even a hop.
	if rep := s.cluster.CachedResult(key); rep != nil {
		s.relayReply(w, r, rep, key, relayReadThrough)
		return true
	}
	rep, err := s.cluster.ForwardSubmit(r.Context(), owner, key, body, contentType, r.URL.Query())
	if err != nil {
		if errors.Is(err, cluster.ErrPeerUnavailable) {
			s.cluster.Metrics().Degraded.Add(1)
			s.log.Warn("owner unreachable; degrading to local simulation",
				"owner", owner, "key", key.String(), "err", err)
			s.journal.Record("job.degraded", "owner unreachable; simulating locally", "owner", owner, "key", key.String())
			return false
		}
		httpError(w, statusForError(err), err.Error())
		return true
	}
	s.journal.Record("job.forwarded", "submission proxied to ring owner", "owner", owner, "key", key.String())
	s.relayReply(w, r, rep, key, relayForwarded)
	return true
}

// relayMode says how a peer reply reached this node, which decides the
// elimination accounting and caching relayReply applies.
type relayMode int

const (
	relayForwarded   relayMode = iota // fresh reply to a forwarded submit
	relayReadThrough                  // served from the local read-through cache
	relayStatus                       // proxied GET /jobs/{id}
)

// relayReply writes a forwarded (or read-through-cached) owner reply to the
// client, rewriting the routing fields so follow-up GETs reach the owner.
func (s *Server) relayReply(w http.ResponseWriter, r *http.Request, rep *cluster.Reply, key jobs.Key, mode relayMode) {
	if rep.RetryAfter != "" {
		w.Header().Set("Retry-After", rep.RetryAfter)
	}
	var resp JobResponse
	if err := json.Unmarshal(rep.Body, &resp); err != nil || resp.ID == "" {
		if rep.StatusCode >= 200 && rep.StatusCode < 300 {
			httpError(w, http.StatusBadGateway, cluster.ErrPeerBadResponse.Error())
			return
		}
		// Error replies (429, 503, 400...) relay as-is even when their
		// shape is not a job response.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(rep.StatusCode)
		w.Write(rep.Body)
		return
	}
	resp.Node = rep.Owner
	resp.Location = apihttp.JobsPrefix(r.URL.Path) + "/" + resp.ID + "?peer=" + url.QueryEscape(rep.Owner)
	// The reply's trace id is the *owner's view* of the hop that produced it
	// (a read-through hit may carry a long-finished trace). Overwrite with
	// this request's trace id so clients always correlate to their own call.
	resp.Trace = traceIDFrom(r.Context())
	switch mode {
	case relayReadThrough:
		// A read-through hit is an elimination from the submitter's point
		// of view even though the owner's original reply was the leader run.
		resp.Deduped = true
	case relayForwarded:
		if resp.Deduped {
			// The owner eliminated this job with a result (or in-flight
			// execution) some earlier submission — possibly through another
			// node — had produced: a cluster-wide cache hit.
			s.cluster.Metrics().RemoteHits.Add(1)
		}
		if resp.State == jobs.Done.String() && rep.StatusCode == http.StatusOK {
			s.cluster.StoreResult(key, rep)
		}
	}
	writeJSON(w, rep.StatusCode, resp)
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id, _ := apihttp.JobID(r.URL.Path)
	// ?peer= names the owning node of a forwarded job (the Location a
	// clustered POST handed back). Proxy the lookup there — unlike submit,
	// a status lookup has no degraded fallback (the job state exists only
	// on the owner), so peer failures surface as typed 502/503.
	if peer := r.URL.Query().Get("peer"); peer != "" && s.cluster != nil &&
		r.Header.Get(cluster.ForwardHeader) == "" {
		np, err := cluster.NormalizeAddr(peer)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		if !s.cluster.IsSelf(np) {
			q := r.URL.Query()
			q.Del("peer")
			rep, err := s.cluster.ForwardStatus(r.Context(), np, id, q)
			if err != nil {
				status := statusForError(err)
				if ra := retryAfter(err); ra > 0 {
					w.Header().Set("Retry-After", strconv.Itoa(ra))
				}
				httpError(w, status, err.Error())
				return
			}
			s.relayReply(w, r, rep, jobs.Key{}, relayStatus)
			return
		}
	}
	job, ok := s.pool.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return
	}
	if wait := r.URL.Query().Get("wait"); wait != "" && wait != "0" && wait != "false" {
		ctx, cancel := timeoutCtx(r, s.limits.MaxWaitableMS)
		defer cancel()
		job.Wait(ctx)
	}
	writeJSON(w, http.StatusOK, s.jobResponse(job, traceIDFrom(r.Context())))
}

// traceIDFrom extracts the request's trace id for response payloads and
// journal entries; empty when the request is untraced.
func traceIDFrom(ctx context.Context) string {
	if tc, ok := obs.TraceFromContext(ctx); ok {
		return tc.TraceIDString()
	}
	return ""
}

func (s *Server) jobResponse(j *jobs.Job, traceID string) JobResponse {
	resp := JobResponse{
		ID:      j.ID,
		Key:     j.Key.String(),
		State:   j.State().String(),
		Deduped: j.Deduped,
		Trace:   traceID,
	}
	if res, err, ok := j.Result(); ok {
		if err != nil {
			resp.Error = err.Error()
		} else {
			sum := jobs.Summarize(res)
			resp.Result = &sum
		}
	}
	return resp
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// 503 tells load balancers to stop routing here; in-flight work
		// still completes during the drain window.
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, apihttp.HealthResponse{
		Status:     status,
		Workers:    s.pool.Workers(),
		QueueDepth: s.pool.Metrics().QueueDepth(),
		UptimeSec:  int64(time.Since(s.start).Seconds()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.pool.Metrics().WritePrometheus(w)
	if st := s.pool.Store(); st != nil {
		st.Metrics().WritePrometheus(w)
	}
	if s.cluster != nil {
		s.cluster.WritePrometheus(w)
	}
	fmt.Fprintf(w, "# HELP resvc_http_requests_total HTTP requests served.\n# TYPE resvc_http_requests_total counter\nresvc_http_requests_total %d\n", s.requests.Load())
	// Per-route/status request latency. Label sets are copied under the lock,
	// then rendered outside it (WritePrometheus locks each histogram itself).
	const rdname = "resvc_http_request_duration_seconds"
	fmt.Fprintf(w, "# HELP %s HTTP request latency by normalized route and status code.\n# TYPE %s histogram\n", rdname, rdname)
	s.httpMu.Lock()
	labels := make([]httpLabel, 0, len(s.httpHists))
	for l := range s.httpHists {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if labels[i].route != labels[j].route {
			return labels[i].route < labels[j].route
		}
		return labels[i].status < labels[j].status
	})
	hists := make([]*stats.Histogram, len(labels))
	for i, l := range labels {
		hists[i] = s.httpHists[l]
	}
	s.httpMu.Unlock()
	for i, l := range labels {
		hists[i].WritePrometheus(w, rdname, fmt.Sprintf("route=%q,status=\"%d\"", l.route, l.status))
	}
	fmt.Fprintf(w, "# HELP resvc_result_cache_entries Cached simulation results.\n# TYPE resvc_result_cache_entries gauge\nresvc_result_cache_entries %d\n", s.pool.CacheLen())
	// Per-benchmark breaker gauge: emitted here (not in jobs.Metrics)
	// because the breaker state lives on the pool, not the counters.
	fmt.Fprintf(w, "# HELP resvc_breaker_open Whether the per-benchmark circuit breaker is open (1) or closed (0).\n# TYPE resvc_breaker_open gauge\n")
	states := s.pool.BreakerState()
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := 0
		if states[k] {
			v = 1
		}
		fmt.Fprintf(w, "resvc_breaker_open{benchmark=%q} %d\n", k, v)
	}
}

// timeoutCtx bounds a ?wait request by the request context and the
// server-wide cap.
func timeoutCtx(r *http.Request, maxMS int64) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), time.Duration(maxMS)*time.Millisecond)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// statusForError maps error classes to HTTP statuses: client mistakes (bad
// trace, bad config, unknown benchmark) are 400, overload is 429, an open
// breaker or a draining pool is 503. Cluster-layer failures are gateway
// statuses — 503 + Retry-After for an unreachable peer, 502 for a peer that
// answered garbage. Anything unclassified is a server-side 500 — never
// blamed on the client.
func statusForError(err error) int {
	switch {
	case errors.Is(err, rerr.ErrBadTrace),
		errors.Is(err, rerr.ErrBadConfig),
		errors.Is(err, rerr.ErrUnknownBenchmark):
		return http.StatusBadRequest
	case errors.Is(err, jobs.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, jobs.ErrBreakerOpen), errors.Is(err, jobs.ErrClosed),
		errors.Is(err, cluster.ErrPeerUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, cluster.ErrPeerBadResponse):
		return http.StatusBadGateway
	}
	return http.StatusInternalServerError
}

// retryAfter suggests a client back-off in whole seconds for retryable
// rejections; 0 means no Retry-After header.
func retryAfter(err error) int {
	var bo *jobs.BreakerOpenError
	if errors.As(err, &bo) {
		sec := int(bo.RetryAfter / time.Second)
		if sec < 1 {
			sec = 1
		}
		return sec
	}
	if errors.Is(err, jobs.ErrOverloaded) || errors.Is(err, cluster.ErrPeerUnavailable) {
		return 1
	}
	return 0
}
