package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"rendelim/internal/apihttp"
)

// TestV1Routes: the versioned surface answers identically to the legacy
// routes, and Location fields keep a client on the API generation it called
// in on.
func TestV1Routes(t *testing.T) {
	srv, _ := newTestServer(t)

	// Submit through /v1/jobs; Location must be versioned.
	code, jr := postJSON(t, srv.URL+apihttp.PathJobs+"?wait=1",
		`{"alias": "ccs", "tech": "re", "width": 96, "height": 64, "frames": 2}`)
	if code != http.StatusOK {
		t.Fatalf("POST %s: status %d", apihttp.PathJobs, code)
	}
	if jr.Location != apihttp.JobPath(jr.ID) {
		t.Errorf("v1 submit Location = %q, want %q", jr.Location, apihttp.JobPath(jr.ID))
	}

	// The versioned status route resolves the same job.
	resp, err := http.Get(srv.URL + apihttp.JobPath(jr.ID))
	if err != nil {
		t.Fatal(err)
	}
	var jr2 JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || jr2.ID != jr.ID || jr2.State != "done" {
		t.Errorf("GET %s: status %d, id %q state %q", apihttp.JobPath(jr.ID), resp.StatusCode, jr2.ID, jr2.State)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Errorf("versioned route carries a Deprecation header")
	}

	// A legacy submit of the same job gets a legacy Location...
	code, jl := postJSON(t, srv.URL+"/jobs?wait=1",
		`{"alias": "ccs", "tech": "re", "width": 96, "height": 64, "frames": 2}`)
	if code != http.StatusOK {
		t.Fatalf("POST /jobs: status %d", code)
	}
	if !jl.Deduped {
		t.Errorf("legacy re-submit of the same spec was not eliminated")
	}
	if jl.Location != "/jobs/"+jl.ID {
		t.Errorf("legacy submit Location = %q, want %q", jl.Location, "/jobs/"+jl.ID)
	}

	// /v1/healthz decodes into the shared typed response.
	hresp, err := http.Get(srv.URL + apihttp.PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	var h apihttp.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if h.Status != "ok" || h.Workers < 1 {
		t.Errorf("GET %s: %+v", apihttp.PathHealthz, h)
	}

	// /v1/metrics serves the Prometheus text surface.
	mresp, err := http.Get(srv.URL + apihttp.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK || !strings.Contains(string(mraw), "resvc_jobs_submitted_total") {
		t.Errorf("GET %s: status %d, body %.80s", apihttp.PathMetrics, mresp.StatusCode, mraw)
	}
}

// TestLegacyRoutesDeprecationHeaders: unversioned aliases still work but
// announce their replacement on every reply.
func TestLegacyRoutesDeprecationHeaders(t *testing.T) {
	srv, _ := newTestServer(t)
	for legacy, successor := range map[string]string{
		"/healthz": apihttp.PathHealthz,
		"/metrics": apihttp.PathMetrics,
	} {
		resp, err := http.Get(srv.URL + legacy)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", legacy, resp.StatusCode)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("GET %s: missing Deprecation header", legacy)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, successor) {
			t.Errorf("GET %s: Link %q does not name successor %s", legacy, link, successor)
		}
	}
}
