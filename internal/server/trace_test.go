package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rendelim/internal/obs"
)

// TestClusterTracePropagation is the end-to-end acceptance check for the
// distributed-tracing plane: a job submitted to a node that does NOT own its
// signature must yield ONE trace id that is visible in the JobResponse, in
// both the sender's and the owner's request logs, and whose two nodes' span
// streams merge into a single valid Chrome trace with both node pids.
func TestClusterTracePropagation(t *testing.T) {
	nodes := startCluster(t, 3, 0, 0)
	body, key := clusterSpec()

	var owner, sender *clusterNode
	for _, nd := range nodes {
		if nd.clus.IsSelf(nd.clus.Owner(key)) {
			owner = nd
			break
		}
	}
	if owner == nil {
		t.Fatal("no node owns the test key")
	}
	for _, nd := range nodes {
		if nd != owner {
			sender = nd
			break
		}
	}

	status, jr := postJob(t, sender, body)
	if status != http.StatusOK || jr.State != "done" {
		t.Fatalf("forwarded submit: status %d, state %q", status, jr.State)
	}
	if jr.Node != owner.addr {
		t.Fatalf("job ran on %q, want owner %q", jr.Node, owner.addr)
	}
	if len(jr.Trace) != 32 {
		t.Fatalf("JobResponse.Trace = %q, want a 32-hex trace id", jr.Trace)
	}

	// The same trace id must appear in both nodes' request logs: the sender
	// minted it, the owner honored the forwarded traceparent header.
	for _, nd := range []*clusterNode{sender, owner} {
		if !strings.Contains(nd.logs.String(), jr.Trace) {
			t.Errorf("node %s log does not mention trace id %s:\n%s", nd.addr, jr.Trace, nd.logs.String())
		}
	}

	// A status lookup proxied back to the owner continues the same pattern:
	// whatever trace that request runs under is reported back to the caller.
	resp, err := http.Get(sender.ts.URL + jr.Location)
	if err != nil {
		t.Fatal(err)
	}
	var follow JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&follow); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(follow.Trace) != 32 || follow.Trace == jr.Trace {
		t.Errorf("status lookup trace = %q, want a fresh 32-hex id (submit used %s)", follow.Trace, jr.Trace)
	}

	// Merge the two nodes' span streams into one Chrome trace: it must be
	// valid JSON and carry events from both node pids plus both
	// process_name metadata records.
	merged := obs.MergeTraces(sender.tracer.TraceFileOf(), owner.tracer.TraceFileOf())
	raw, err := json.Marshal(merged)
	if err != nil {
		t.Fatalf("merged trace does not serialize: %v", err)
	}
	var decoded struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	names := 0
	for _, ev := range decoded.TraceEvents {
		if pid, ok := ev["pid"].(float64); ok {
			pids[pid] = true
		}
		if ev["name"] == "process_name" {
			names++
		}
	}
	if len(pids) != 2 || names != 2 {
		t.Errorf("merged trace has pids %v and %d process_name records, want 2 and 2", pids, names)
	}

	// CI uploads the merged trace as a workflow artifact when asked.
	if dir := os.Getenv("TRACE_ARTIFACT_DIR"); dir != "" {
		if err := os.WriteFile(filepath.Join(dir, "cluster-trace.json"), raw, 0o644); err != nil {
			t.Logf("writing trace artifact: %v", err)
		}
	}

	// The journals saw the hop from both sides: the sender recorded the
	// forward, the owner accepted and ran the job.
	kinds := func(nd *clusterNode) map[string]bool {
		out := map[string]bool{}
		for _, ev := range nd.journal.Events() {
			out[ev.Kind] = true
		}
		return out
	}
	if k := kinds(sender); !k["job.forwarded"] {
		t.Errorf("sender journal kinds %v missing job.forwarded", k)
	}
	if k := kinds(owner); !k["job.accepted"] {
		t.Errorf("owner journal kinds %v missing job.accepted", k)
	}

	// And /debug/events serves the same stream over HTTP.
	eresp, err := http.Get(sender.ts.URL + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(eresp.Body).Decode(&events); err != nil {
		t.Fatalf("/debug/events not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("/debug/events empty after a forwarded submit")
	}
}
