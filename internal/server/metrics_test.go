package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

var seriesLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? [^ ]+$`)

// parsePromText is a strict parser for the Prometheus text exposition
// format: it verifies HELP/TYPE pairing, that every series belongs to a
// declared family, and that every declared family carries at least one
// series (an empty family usually means an emitter lost its data source).
// It returns the set of series keys seen and each family's declared type.
func parsePromText(t *testing.T, body string) (map[string]bool, map[string]string) {
	t.Helper()
	helped := map[string]bool{}
	typed := map[string]bool{}
	families := map[string]string{}
	populated := map[string]bool{}
	series := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, "# HELP "):
			fields := strings.SplitN(strings.TrimPrefix(text, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				t.Errorf("line %d: HELP without text: %q", line, text)
			}
			if helped[fields[0]] {
				t.Errorf("line %d: duplicate HELP for %s", line, fields[0])
			}
			helped[fields[0]] = true
		case strings.HasPrefix(text, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", line, text)
			}
			name, kind := fields[0], fields[1]
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Errorf("line %d: unknown metric type %q", line, kind)
			}
			if !helped[name] {
				t.Errorf("line %d: TYPE %s without preceding HELP", line, name)
			}
			if typed[name] {
				t.Errorf("line %d: duplicate TYPE for %s", line, name)
			}
			typed[name] = true
			families[name] = kind
		case strings.HasPrefix(text, "#"):
			t.Errorf("line %d: unexpected comment %q", line, text)
		default:
			m := seriesLine.FindStringSubmatch(text)
			if m == nil {
				t.Errorf("line %d: malformed series line %q", line, text)
				continue
			}
			name := m[1]
			// Histogram child series belong to the declared family name.
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, suffix); base != name && typed[base] {
					family = base
				}
			}
			if !typed[family] {
				t.Errorf("line %d: series %s has no TYPE declaration", line, name)
			}
			populated[family] = true
			key := name + m[2]
			if series[key] {
				t.Errorf("line %d: duplicate series %s", line, key)
			}
			series[key] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for name := range typed {
		if !populated[name] {
			t.Errorf("family %s declared but carries no series", name)
		}
	}
	return series, families
}

// TestMetricsWellFormed runs one job, scrapes /metrics, and asserts every
// exposed line parses as well-formed Prometheus text — HELP/TYPE pairing,
// no duplicate series — including the per-stage cycle and tile-class
// counters the simulator feeds in.
func TestMetricsWellFormed(t *testing.T) {
	srv, _ := newTestServer(t)
	_, jr := postJSON(t, srv.URL+"/jobs?wait=1", `{"alias": "ccs", "tech": "re", "width": 96, "height": 64, "frames": 3}`)
	if jr.State != "done" {
		t.Fatalf("job did not finish: %+v", jr)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	series, families := parsePromText(t, string(raw))

	// The telemetry-plane histograms must expose with the histogram type and
	// full _bucket/_sum/_count series (including +Inf).
	for _, name := range []string{
		"resvc_http_request_duration_seconds",
		"resvc_sim_frame_eliminated_ratio",
		"resvc_stage_latency_seconds",
	} {
		if families[name] != "histogram" {
			t.Errorf("family %s type = %q, want histogram", name, families[name])
		}
	}
	if !series[`resvc_http_request_duration_seconds_bucket{route="/jobs",status="200",le="+Inf"}`] {
		t.Error(`missing +Inf bucket for route="/jobs",status="200" (the completed ?wait=1 submit)`)
	}
	if !series[`resvc_sim_frame_eliminated_ratio_count`] || !series[`resvc_sim_frame_eliminated_ratio_sum`] {
		t.Error("frame-elimination histogram missing _count/_sum series")
	}

	for _, stage := range []string{"vertex", "tiling", "sig-check", "raster", "fragment", "flush"} {
		key := fmt.Sprintf(`resvc_sim_stage_cycles_total{stage="%s"}`, stage)
		if !series[key] {
			t.Errorf("missing per-stage series %s", key)
		}
	}
	for _, class := range []string{"eq-color-eq-input", "eq-color-diff-input", "diff-color", "eq-input-diff-color"} {
		key := fmt.Sprintf(`resvc_sim_tile_class_total{class="%s"}`, class)
		if !series[key] {
			t.Errorf("missing tile-class series %s", key)
		}
	}
	for _, name := range []string{
		"resvc_sim_frames_total", "resvc_sim_tiles_total", "resvc_sim_tiles_skipped_total",
		"resvc_http_requests_total",
		// Failure-model counters: panics contained, checkpoint resumes,
		// load shedding, breaker rejections, frames actually executed.
		"resvc_jobs_panics_total", "resvc_jobs_resumed_total",
		"resvc_load_shed_total", "resvc_breaker_rejected_total",
		"resvc_sim_frames_executed_total",
	} {
		if !series[name] {
			t.Errorf("missing series %s", name)
		}
	}
	// The completed ccs job registers a (closed) per-benchmark breaker
	// circuit in the gauge.
	if !series[`resvc_breaker_open{benchmark="ccs"}`] {
		t.Error(`missing series resvc_breaker_open{benchmark="ccs"}`)
	}
	if v := metricValue(t, srv.URL, `resvc_breaker_open{benchmark="ccs"}`); v != 0 {
		t.Errorf("resvc_breaker_open{ccs} = %v, want 0 (closed)", v)
	}

	// The RE run on a redundant workload must actually report stage cycles
	// and skipped tiles, not just declare the families.
	if v := metricValue(t, srv.URL, `resvc_sim_stage_cycles_total{stage="sig-check"}`); v <= 0 {
		t.Errorf("sig-check cycles = %v, want > 0 after an RE run", v)
	}
	if v := metricValue(t, srv.URL, "resvc_sim_tiles_skipped_total"); v <= 0 {
		t.Errorf("tiles skipped = %v, want > 0 on ccs under RE", v)
	}
}

// TestDebugEndpoints covers the runtime-introspection satellite: expvar at
// /debug/vars (with build info, queue depth, cache size) and pprof.
func TestDebugEndpoints(t *testing.T) {
	srv, _ := newTestServer(t)

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	for _, key := range []string{"rendelim_build_info", "resvc_queue_depth", "resvc_cache_entries", "memstats"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
	var build map[string]string
	if err := json.Unmarshal(vars["rendelim_build_info"], &build); err != nil {
		t.Fatalf("build info not an object: %v", err)
	}
	if build["go_version"] == "" || build["module"] != "rendelim" {
		t.Errorf("implausible build info %v", build)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: %d", path, resp.StatusCode)
		}
	}
}
