package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"rendelim/internal/cluster"
	"rendelim/internal/fault"
	"rendelim/internal/gpusim"
	"rendelim/internal/jobs"
	"rendelim/internal/rerr"
	"rendelim/internal/trace"
	"rendelim/internal/workload"
)

func newTestServer(t *testing.T) (*httptest.Server, *jobs.Pool) {
	t.Helper()
	pool := jobs.NewPool(jobs.WithWorkers(2), jobs.WithCacheSize(32))
	t.Cleanup(func() { pool.Close(context.Background()) })
	srv := httptest.NewServer(New(pool, Limits{}).Handler())
	t.Cleanup(srv.Close)
	return srv, pool
}

func postJSON(t *testing.T, url string, body string) (int, JobResponse) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	raw, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatalf("bad response %s: %v", raw, err)
	}
	return resp.StatusCode, jr
}

func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` ([0-9.eE+-]+)$`)
	m := re.FindSubmatch(raw)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, raw)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// The acceptance scenario: POST the same spec twice; the second submission
// is eliminated by the signature cache — no re-simulation, identical result
// payload, and jobs_deduped_total ticks up.
func TestEndToEndJobElimination(t *testing.T) {
	srv, _ := newTestServer(t)
	body := `{"alias": "ccs", "tech": "re", "width": 96, "height": 64, "frames": 3}`

	code1, jr1 := postJSON(t, srv.URL+"/jobs?wait=1", body)
	if code1 != http.StatusOK {
		t.Fatalf("first POST: status %d (%+v)", code1, jr1)
	}
	if jr1.State != "done" || jr1.Result == nil {
		t.Fatalf("first job not done: %+v", jr1)
	}
	if jr1.Deduped {
		t.Error("first submission must not be deduped")
	}

	code2, jr2 := postJSON(t, srv.URL+"/jobs?wait=1", body)
	if code2 != http.StatusOK {
		t.Fatalf("second POST: status %d", code2)
	}
	if !jr2.Deduped {
		t.Error("second identical submission not eliminated")
	}
	if jr1.Key != jr2.Key {
		t.Errorf("keys differ: %s vs %s", jr1.Key, jr2.Key)
	}
	if jr1.ID == jr2.ID {
		t.Error("submissions must get distinct job IDs")
	}
	r1, _ := json.Marshal(jr1.Result)
	r2, _ := json.Marshal(jr2.Result)
	if !bytes.Equal(r1, r2) {
		t.Errorf("result payloads differ:\n%s\n%s", r1, r2)
	}

	if v := metricValue(t, srv.URL, "resvc_jobs_deduped_total"); v < 1 {
		t.Errorf("resvc_jobs_deduped_total = %v, want >= 1", v)
	}
	if v := metricValue(t, srv.URL, "resvc_jobs_completed_total"); v != 1 {
		t.Errorf("resvc_jobs_completed_total = %v, want 1 (second run eliminated)", v)
	}
	if v := metricValue(t, srv.URL, "resvc_job_elimination_ratio"); v != 0.5 {
		t.Errorf("resvc_job_elimination_ratio = %v, want 0.5", v)
	}

	// A different technique must NOT be eliminated (config hash differs).
	_, jr3 := postJSON(t, srv.URL+"/jobs?wait=1", `{"alias": "ccs", "tech": "base", "width": 96, "height": 64, "frames": 3}`)
	if jr3.Deduped {
		t.Error("different config wrongly eliminated")
	}
}

func TestTraceUpload(t *testing.T) {
	srv, _ := newTestServer(t)

	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: 2, Seed: 1})
	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	post := func() (int, JobResponse) {
		resp, err := http.Post(srv.URL+"/jobs?wait=1&tech=re", "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, jr
	}
	code, jr := post()
	if code != http.StatusOK || jr.State != "done" || jr.Result == nil {
		t.Fatalf("upload run failed: %d %+v", code, jr)
	}
	if jr.Result.Frames != 2 || jr.Result.TilesTotal == 0 {
		t.Errorf("implausible result %+v", jr.Result)
	}
	// Identical bytes -> identical trace signature -> eliminated.
	_, jr2 := post()
	if !jr2.Deduped {
		t.Error("identical trace upload not eliminated")
	}

	// Malformed upload must 400, not crash.
	resp, err := http.Post(srv.URL+"/jobs", "application/octet-stream", bytes.NewReader(raw[:37]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated trace: status %d, want 400", resp.StatusCode)
	}
}

func TestJobStatusEndpoint(t *testing.T) {
	srv, _ := newTestServer(t)
	_, jr := postJSON(t, srv.URL+"/jobs", `{"alias": "cde", "width": 96, "height": 64, "frames": 2}`)
	if jr.ID == "" || jr.Location != "/jobs/"+jr.ID {
		t.Fatalf("bad submit response %+v", jr)
	}

	resp, err := http.Get(srv.URL + jr.Location + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != jr.ID || got.State != "done" || got.Result == nil {
		t.Errorf("status: %+v", got)
	}

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/jobs/j-999999", http.StatusNotFound},
		{"/jobs/", http.StatusNotFound},
	} {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s: status %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestHealthz(t *testing.T) {
	srv, pool := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != pool.Workers() {
		t.Errorf("healthz payload %+v", h)
	}
}

func TestBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	cases := []struct {
		name string
		do   func() (*http.Response, error)
		want int
	}{
		{"GET /jobs", func() (*http.Response, error) { return http.Get(srv.URL + "/jobs") }, http.StatusMethodNotAllowed},
		{"bad JSON", func() (*http.Response, error) {
			return http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{"))
		}, http.StatusBadRequest},
		{"missing alias", func() (*http.Response, error) {
			return http.Post(srv.URL+"/jobs", "application/json", strings.NewReader("{}"))
		}, http.StatusBadRequest},
		{"unknown alias", func() (*http.Response, error) {
			return http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"alias": "nope"}`))
		}, http.StatusBadRequest},
		{"unknown tech", func() (*http.Response, error) {
			return http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"alias": "ccs", "tech": "quantum"}`))
		}, http.StatusBadRequest},
		{"over-limit resolution", func() (*http.Response, error) {
			return http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"alias": "ccs", "width": 100000, "height": 100000}`))
		}, http.StatusBadRequest},
		{"over-limit frames", func() (*http.Response, error) {
			return http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"alias": "ccs", "frames": 100000}`))
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := tc.do()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// The async path: POST without wait returns 202 and the job converges via
// polling GET /jobs/{id}.
func TestAsyncSubmit(t *testing.T) {
	srv, _ := newTestServer(t)
	code, jr := postJSON(t, srv.URL+"/jobs", `{"alias": "ctr", "width": 96, "height": 64, "frames": 2}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("async POST: status %d", code)
	}
	resp, err := http.Get(fmt.Sprintf("%s/jobs/%s?wait=1", srv.URL, jr.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != "done" {
		t.Errorf("job state %q after wait", got.State)
	}
}

// statusForError is the contract between the pool's error taxonomy and HTTP:
// client mistakes are 4xx, capacity conditions are 429/503, anything
// unclassified is 500 — never a client-blaming 400.
func TestStatusForError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"bad trace", fmt.Errorf("wrap: %w", rerr.ErrBadTrace), http.StatusBadRequest},
		{"bad config", fmt.Errorf("wrap: %w", rerr.ErrBadConfig), http.StatusBadRequest},
		{"unknown benchmark", fmt.Errorf("wrap: %w", rerr.ErrUnknownBenchmark), http.StatusBadRequest},
		{"overloaded", jobs.ErrOverloaded, http.StatusTooManyRequests},
		{"breaker open", &jobs.BreakerOpenError{Benchmark: "ccs", RetryAfter: time.Second}, http.StatusServiceUnavailable},
		{"pool closed", jobs.ErrClosed, http.StatusServiceUnavailable},
		{"peer unreachable", fmt.Errorf("forward to 10.0.0.2:80: %w: dial refused", cluster.ErrPeerUnavailable), http.StatusServiceUnavailable},
		{"peer garbage", fmt.Errorf("forward to 10.0.0.2:80: %w: status 500", cluster.ErrPeerBadResponse), http.StatusBadGateway},
		{"double wrap", fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", rerr.ErrBadTrace)), http.StatusBadRequest},
		{"flattened chain", fmt.Errorf("outer: %v", rerr.ErrBadTrace), http.StatusInternalServerError},
		{"unclassified", errors.New("mystery"), http.StatusInternalServerError},
		{"nil-adjacent", io.EOF, http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := statusForError(tc.err); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
}

// Every spec-validation error must reach the client as a 400 whose body
// matches a sentinel — the errors.Is sweep of the bugfix satellite.
func TestSpecErrorsWrapSentinels(t *testing.T) {
	srv := &Server{limits: Limits{}, log: slog.Default()}
	srv.limits.setDefaults()

	jsonCases := []struct {
		name string
		body string
	}{
		{"bad JSON", "{"},
		{"missing alias", "{}"},
		{"bad tech", `{"alias": "ccs", "tech": "quantum"}`},
		{"over-limit resolution", `{"alias": "ccs", "width": 100000, "height": 100000}`},
		{"over-limit frames", `{"alias": "ccs", "frames": 100000}`},
	}
	for _, tc := range jsonCases {
		r := httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader(tc.body))
		_, _, err := srv.specFromJSON(r)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, rerr.ErrBadConfig) && !errors.Is(err, rerr.ErrUnknownBenchmark) {
			t.Errorf("%s: %v does not wrap ErrBadConfig/ErrUnknownBenchmark", tc.name, err)
		}
		if statusForError(err) != http.StatusBadRequest {
			t.Errorf("%s: maps to %d, want 400", tc.name, statusForError(err))
		}
	}
	r := httptest.NewRequest(http.MethodPost, "/jobs", strings.NewReader(`{"alias": "nope"}`))
	if _, _, err := srv.specFromJSON(r); !errors.Is(err, rerr.ErrUnknownBenchmark) {
		t.Errorf("unknown alias: %v does not wrap ErrUnknownBenchmark", err)
	}

	traceCases := []struct {
		name string
		body []byte
	}{
		{"garbage bytes", []byte("definitely not a trace")},
		{"empty body", nil},
	}
	for _, tc := range traceCases {
		r := httptest.NewRequest(http.MethodPost, "/jobs", bytes.NewReader(tc.body))
		_, _, err := srv.specFromTrace(r)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !errors.Is(err, rerr.ErrBadTrace) {
			t.Errorf("%s: %v does not wrap ErrBadTrace", tc.name, err)
		}
		if statusForError(err) != http.StatusBadRequest {
			t.Errorf("%s: maps to %d, want 400", tc.name, statusForError(err))
		}
	}
	// Bad tech on a valid trace upload wraps ErrBadConfig.
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, b.Build(workload.Params{Width: 64, Height: 48, Frames: 1, Seed: 1})); err != nil {
		t.Fatal(err)
	}
	r = httptest.NewRequest(http.MethodPost, "/jobs?tech=quantum", bytes.NewReader(buf.Bytes()))
	if _, _, err := srv.specFromTrace(r); !errors.Is(err, rerr.ErrBadConfig) {
		t.Errorf("bad upload tech: %v does not wrap ErrBadConfig", err)
	}
}

// A full queue must shed load with 429 + Retry-After, not block the handler.
func TestOverloadSheds429(t *testing.T) {
	block := make(chan struct{})
	run := func(ctx context.Context, spec jobs.Spec, observe func(string, time.Duration)) (gpusim.Result, error) {
		select {
		case <-block:
			return gpusim.Result{Name: spec.Alias}, nil
		case <-ctx.Done():
			return gpusim.Result{}, ctx.Err()
		}
	}
	pool := jobs.NewPool(jobs.WithWorkers(1), jobs.WithQueueDepth(1), jobs.WithRun(run))
	t.Cleanup(func() { close(block); pool.Close(context.Background()) })
	srv := httptest.NewServer(New(pool, Limits{}).Handler())
	t.Cleanup(srv.Close)

	// First job occupies the worker, second the queue slot.
	code, jr := postJSON(t, srv.URL+"/jobs", `{"alias": "ccs"}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(srv.URL + "/jobs/" + jr.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got JobResponse
		json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if got.State == "running" {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, _ := postJSON(t, srv.URL+"/jobs", `{"alias": "mst"}`); code != http.StatusAccepted {
		t.Fatalf("queue-filling submit: %d", code)
	}

	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"alias": "hop"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// StartDraining must flip /healthz to 503 {"status":"draining"}.
func TestHealthzDraining(t *testing.T) {
	pool := jobs.NewPool(jobs.WithWorkers(1), jobs.WithCacheSize(8))
	t.Cleanup(func() { pool.Close(context.Background()) })
	s := New(pool, Limits{})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	s.StartDraining()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDraining")
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", resp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("status %q, want draining", h.Status)
	}
}

// The handler middleware must recover injected accept-path panics (500, the
// process survives) and shed injected transient faults (503 + Retry-After).
func TestHandlerFaultInjection(t *testing.T) {
	pool := jobs.NewPool(jobs.WithWorkers(1), jobs.WithCacheSize(8))
	t.Cleanup(func() { pool.Close(context.Background()) })
	s := New(pool, Limits{})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	s.SetFaultPlan(fault.New(5).
		With(fault.SiteServerAccept, fault.Site{Prob: 1, Limit: 1, Kinds: []fault.Kind{fault.Panic}}))
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking request: %d, want 500", resp.StatusCode)
	}

	s.SetFaultPlan(fault.New(5).
		With(fault.SiteServerAccept, fault.Site{Prob: 1, Limit: 1, Kinds: []fault.Kind{fault.Transient}}))
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected 503 without Retry-After")
	}

	// Plan exhausted (Limit 1 each): the server must be healthy again.
	s.SetFaultPlan(nil)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered healthz: %d, want 200", resp.StatusCode)
	}
}
