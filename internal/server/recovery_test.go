package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rendelim/internal/cluster"
	"rendelim/internal/jobs"
	"rendelim/internal/store"
	"rendelim/internal/trace"
	"rendelim/internal/workload"
)

func quietSlog() *slog.Logger { return slog.New(slog.NewTextHandler(io.Discard, nil)) }

func openRecoveryStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{Logger: quietSlog()})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestartRecoveryOverHTTP is the service-level restart story: results
// computed by one process are served — eliminated, byte-identical — by a
// new process opened on the same data dir, for both JSON-spec and
// uploaded-trace submissions, with the recovery quantified on /metrics.
func TestRestartRecoveryOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("restart recovery simulates jobs; skipped in -short")
	}
	dir := t.TempDir()
	jsonBody := `{"alias": "ccs", "tech": "re", "width": 96, "height": 64, "frames": 3}`
	b, err := workload.ByAlias("ctr")
	if err != nil {
		t.Fatal(err)
	}
	var traceBuf bytes.Buffer
	if err := trace.Encode(&traceBuf, b.Build(workload.Params{Width: 64, Height: 48, Frames: 2, Seed: 3})); err != nil {
		t.Fatal(err)
	}

	// Process one: compute both jobs, then die without a graceful drain.
	st := openRecoveryStore(t, dir)
	pool := jobs.NewPool(jobs.WithWorkers(2), jobs.WithStore(st), jobs.WithLogger(quietSlog()))
	ts := httptest.NewServer(New(pool, Limits{}).Handler())

	code, firstJSON := postJSON(t, ts.URL+"/jobs?wait=1", jsonBody)
	if code != http.StatusOK || firstJSON.State != "done" {
		t.Fatalf("json submission: code %d, %+v", code, firstJSON)
	}
	resp, err := http.Post(ts.URL+"/jobs?wait=1", "application/octet-stream", bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var firstTrace JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&firstTrace); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if firstTrace.State != "done" {
		t.Fatalf("trace submission: %+v", firstTrace)
	}
	ts.Close()
	pool.Kill()
	st.Close()

	// Process two: same data dir, fresh everything else.
	st2 := openRecoveryStore(t, dir)
	defer st2.Close()
	pool2 := jobs.NewPool(jobs.WithWorkers(2), jobs.WithStore(st2), jobs.WithLogger(quietSlog()))
	defer pool2.Close(context.Background())
	ts2 := httptest.NewServer(New(pool2, Limits{}).Handler())
	defer ts2.Close()

	code, again := postJSON(t, ts2.URL+"/jobs?wait=1", jsonBody)
	if code != http.StatusOK || again.State != "done" {
		t.Fatalf("post-restart json submission: code %d, %+v", code, again)
	}
	if !again.Deduped {
		t.Fatal("post-restart submission not eliminated by recovered cache")
	}
	r1, _ := json.Marshal(firstJSON.Result)
	r2, _ := json.Marshal(again.Result)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("post-restart result differs:\n%s\n%s", r1, r2)
	}

	resp, err = http.Post(ts2.URL+"/jobs?wait=1", "application/octet-stream", bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var againTrace JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&againTrace); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !againTrace.Deduped {
		t.Fatal("post-restart trace submission not eliminated by recovered cache")
	}
	t1, _ := json.Marshal(firstTrace.Result)
	t2raw, _ := json.Marshal(againTrace.Result)
	if !bytes.Equal(t1, t2raw) {
		t.Fatal("post-restart trace result differs")
	}

	if n := pool2.Metrics().FramesSimulated.Load(); n != 0 {
		t.Fatalf("restarted process re-simulated %d frames", n)
	}
	if v := metricValue(t, ts2.URL, "resvc_store_results_recovered_total"); v != 2 {
		t.Fatalf("resvc_store_results_recovered_total = %v, want 2", v)
	}
	if v := metricValue(t, ts2.URL, "resvc_store_records_replayed_total"); v < 4 {
		t.Fatalf("resvc_store_records_replayed_total = %v, want >= 4", v)
	}
}

// TestClusterServesRecoveredResultsRemotely: a result recovered from disk
// by one node is a cluster-wide asset — a submission entering through a
// peer is forwarded to the recovered owner and eliminated there, with zero
// frames simulated anywhere after the restart.
func TestClusterServesRecoveredResultsRemotely(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation in -short mode")
	}
	body, key := clusterSpec()

	// Phase 1: a lone store-backed node computes the result, then dies.
	dir := t.TempDir()
	st := openRecoveryStore(t, dir)
	pool := jobs.NewPool(jobs.WithWorkers(2), jobs.WithStore(st), jobs.WithLogger(quietSlog()))
	ts := httptest.NewServer(New(pool, Limits{}).Handler())
	code, first := postJSON(t, ts.URL+"/jobs?wait=1", body)
	if code != http.StatusOK || first.State != "done" {
		t.Fatalf("pre-crash submission: code %d, %+v", code, first)
	}
	ts.Close()
	pool.Kill()
	st.Close()

	// Phase 2: the node restarts on its data dir as one member of a
	// two-node cluster.
	st2 := openRecoveryStore(t, dir)
	defer st2.Close()
	pool0 := jobs.NewPool(jobs.WithWorkers(2), jobs.WithStore(st2), jobs.WithLogger(quietSlog()))
	defer pool0.Close(context.Background())
	srv0 := New(pool0, Limits{})
	ts0 := httptest.NewServer(srv0.Handler())
	defer ts0.Close()
	addr0 := strings.TrimPrefix(ts0.URL, "http://")

	// The peer's listener address decides ring ownership; re-roll the peer
	// until the key lands on the recovered node so the remote-hit path is
	// the one under test.
	var (
		pool1 *jobs.Pool
		ts1   *httptest.Server
		c0    *cluster.Cluster
		c1    *cluster.Cluster
	)
	for attempt := 0; ; attempt++ {
		if attempt >= 64 {
			t.Fatal("could not place key ownership on the recovered node in 64 tries")
		}
		pool1 = jobs.NewPool(jobs.WithWorkers(2), jobs.WithLogger(quietSlog()))
		srv1 := New(pool1, Limits{})
		ts1 = httptest.NewServer(srv1.Handler())
		addr1 := strings.TrimPrefix(ts1.URL, "http://")

		var err error
		c0, err = cluster.New(cluster.Options{
			Self: addr0, Peers: []string{addr1},
			HealthTimeout: time.Second, ResultTTL: time.Minute, ForwardTimeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		c1, err = cluster.New(cluster.Options{
			Self: addr1, Peers: []string{addr0},
			HealthTimeout: time.Second, ResultTTL: time.Minute, ForwardTimeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if c0.Owner(key) == addr0 {
			srv0.SetCluster(c0)
			srv1.SetCluster(c1)
			defer ts1.Close()
			defer pool1.Close(context.Background())
			break
		}
		ts1.Close()
		pool1.Close(context.Background())
	}

	// Enter through the peer: forwarded to the recovered owner, served
	// from the cache the store rebuilt, no simulation anywhere.
	code, jr := postJSON(t, ts1.URL+"/jobs?wait=1", body)
	if code != http.StatusOK || jr.State != "done" {
		t.Fatalf("post-restart submission via peer: code %d, %+v", code, jr)
	}
	if !jr.Deduped {
		t.Fatal("remote submission not eliminated by the recovered owner cache")
	}
	if jr.Node != addr0 {
		t.Fatalf("served by %q, want recovered owner %q", jr.Node, addr0)
	}
	r1, _ := json.Marshal(first.Result)
	r2, _ := json.Marshal(jr.Result)
	if !bytes.Equal(r1, r2) {
		t.Fatalf("remote recovered result differs:\n%s\n%s", r1, r2)
	}
	if n := pool0.Metrics().FramesSimulated.Load() + pool1.Metrics().FramesSimulated.Load(); n != 0 {
		t.Fatalf("post-restart cluster simulated %d frames", n)
	}
	if got := c1.Metrics().RemoteHits.Load(); got != 1 {
		t.Fatalf("peer RemoteHits = %d, want 1", got)
	}
}
