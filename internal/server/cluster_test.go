package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rendelim/internal/cluster"
	"rendelim/internal/gpusim"
	"rendelim/internal/jobs"
	"rendelim/internal/obs"
	"rendelim/internal/workload"
)

// clusterNode is one in-process resvc node: its own pool, server, listener
// and cluster view, plus the node's telemetry plane (tracer, journal, and a
// captured debug-level request log) so tests can follow a request across
// the fleet.
type clusterNode struct {
	pool    *jobs.Pool
	srv     *Server
	ts      *httptest.Server
	clus    *cluster.Cluster
	addr    string
	tracer  *obs.Tracer
	journal *obs.Journal
	logs    *syncBuf
}

// syncBuf is a goroutine-safe log sink for per-node slog handlers.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startCluster boots n fully-meshed nodes over real loopback listeners.
// Health loops only start when healthInterval > 0; otherwise every peer
// stays in its optimistic initial "up" state, which makes routing
// deterministic for the elimination tests.
func startCluster(t *testing.T, n int, healthInterval, resultTTL time.Duration) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		tracer := obs.NewTracer()
		journal := obs.NewJournal(0)
		logs := &syncBuf{}
		pool := jobs.NewPool(
			jobs.WithWorkers(2),
			jobs.WithJournal(journal),
			jobs.WithLogger(slog.New(slog.NewTextHandler(logs, &slog.HandlerOptions{Level: slog.LevelDebug}))),
		)
		srv := New(pool, Limits{})
		srv.SetLogger(slog.New(slog.NewTextHandler(logs, &slog.HandlerOptions{Level: slog.LevelDebug})))
		srv.SetTracer(tracer)
		srv.SetJournal(journal)
		ts := httptest.NewServer(srv.Handler())
		addr := strings.TrimPrefix(ts.URL, "http://")
		// Node-tagged pids make the merged Chrome trace render one labeled
		// track group per node.
		tracer.SetProcess(i+1, "resvc "+addr)
		nodes[i] = &clusterNode{
			pool:    pool,
			srv:     srv,
			ts:      ts,
			addr:    addr,
			tracer:  tracer,
			journal: journal,
			logs:    logs,
		}
	}
	for i, nd := range nodes {
		var peers []string
		for j, other := range nodes {
			if j != i {
				peers = append(peers, other.addr)
			}
		}
		c, err := cluster.New(cluster.Options{
			Self:           nd.addr,
			Peers:          peers,
			HealthInterval: healthInterval,
			HealthTimeout:  time.Second,
			ResultTTL:      resultTTL,
			ForwardTimeout: 30 * time.Second,
			Tracer:         nd.tracer,
			Journal:        nd.journal,
		})
		if err != nil {
			t.Fatal(err)
		}
		nd.clus = c
		nd.srv.SetCluster(c)
		if healthInterval > 0 {
			c.Start()
		}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			if nd.clus != nil && healthInterval > 0 {
				nd.clus.Stop()
			}
			nd.ts.Close()
			nd.pool.Close(context.Background())
		}
	})
	return nodes
}

// clusterSpec is the job every cluster test submits; its jobs.Key decides
// which node owns it.
func clusterSpec() (string, jobs.Key) {
	body := `{"alias": "ccs", "tech": "re", "width": 96, "height": 64, "frames": 2}`
	spec := jobs.Spec{
		Alias:  "ccs",
		Params: workload.Params{Width: 96, Height: 64, Frames: 2, Seed: 1},
		Tech:   gpusim.RE,
	}
	return body, spec.Key()
}

// postJob submits body to node and decodes the response.
func postJob(t *testing.T, node *clusterNode, body string) (int, JobResponse) {
	t.Helper()
	resp, err := http.Post(node.ts.URL+"/jobs?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decoding job response: %v", err)
	}
	return resp.StatusCode, jr
}

// scrape fetches a node's /metrics text.
func scrape(t *testing.T, node *clusterNode) string {
	t.Helper()
	resp, err := http.Get(node.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// totalFramesExecuted sums the frames actually simulated across the fleet.
func totalFramesExecuted(nodes []*clusterNode) uint64 {
	var total uint64
	for _, nd := range nodes {
		total += nd.nodeFrames()
	}
	return total
}

func (n *clusterNode) nodeFrames() uint64 { return n.pool.Metrics().FramesSimulated.Load() }

// resultJSON canonicalizes the result payload for byte-identity comparison.
func resultJSON(t *testing.T, jr JobResponse) string {
	t.Helper()
	if jr.Result == nil {
		t.Fatalf("job response carries no result: %+v", jr)
	}
	b, err := json.Marshal(jr.Result)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The headline property: identical jobs submitted through *different* nodes
// are simulated exactly once cluster-wide, return byte-identical results,
// and the repeats count as remote hits — the owner's cache acting as a
// cluster-wide elimination cache.
func TestClusterCrossNodeElimination(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation in -short mode")
	}
	nodes := startCluster(t, 3, 0, time.Minute)
	body, key := clusterSpec()

	// Every node must agree on the owner (same ring, same membership).
	owner := nodes[0].clus.Owner(key)
	ownerIdx := -1
	for i, nd := range nodes {
		if got := nd.clus.Owner(key); got != owner {
			t.Fatalf("node %d derives owner %q, node 0 derived %q", i, got, owner)
		}
		if nd.addr == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %q is not a cluster member", owner)
	}
	entry1, entry2 := nodes[(ownerIdx+1)%3], nodes[(ownerIdx+2)%3]

	// First submission through the owner itself: a plain local run.
	code, first := postJob(t, nodes[ownerIdx], body)
	if code != http.StatusOK || first.State != "done" {
		t.Fatalf("first submission: code %d, %+v", code, first)
	}
	if first.Deduped {
		t.Fatalf("first submission cannot be deduped: %+v", first)
	}
	framesAfterFirst := totalFramesExecuted(nodes)
	if framesAfterFirst == 0 {
		t.Fatal("no frames executed by the first submission")
	}

	// Second submission via a different node: forwarded to the owner, whose
	// result cache eliminates it. Zero additional frames anywhere.
	code, second := postJob(t, entry1, body)
	if code != http.StatusOK || second.State != "done" {
		t.Fatalf("second submission: code %d, %+v", code, second)
	}
	if !second.Deduped {
		t.Fatalf("second submission via %s not eliminated: %+v", entry1.addr, second)
	}
	if second.Node != owner {
		t.Errorf("second submission node = %q, want owner %q", second.Node, owner)
	}
	if got := totalFramesExecuted(nodes); got != framesAfterFirst {
		t.Errorf("cross-node repeat re-simulated: frames %d -> %d", framesAfterFirst, got)
	}
	if got := entry1.clus.Metrics().RemoteHits.Load(); got != 1 {
		t.Errorf("entry node RemoteHits = %d, want 1", got)
	}
	if !strings.Contains(scrape(t, entry1), "resvc_cluster_remote_hits_total 1") {
		t.Error("entry node /metrics missing resvc_cluster_remote_hits_total 1")
	}
	if !strings.Contains(scrape(t, entry1), "resvc_cluster_forwarded_total 1") {
		t.Error("entry node /metrics missing resvc_cluster_forwarded_total 1")
	}

	// Third submission via the remaining node: same story.
	code, third := postJob(t, entry2, body)
	if code != http.StatusOK || !third.Deduped {
		t.Fatalf("third submission: code %d, %+v", code, third)
	}
	if got := totalFramesExecuted(nodes); got != framesAfterFirst {
		t.Errorf("third submission re-simulated: frames %d -> %d", framesAfterFirst, got)
	}

	// Results are byte-identical no matter which node the client reached.
	want := resultJSON(t, first)
	for i, jr := range []JobResponse{second, third} {
		if got := resultJSON(t, jr); got != want {
			t.Errorf("submission %d result differs:\n got %s\nwant %s", i+2, got, want)
		}
	}

	// The repeat's Location routes a status GET back to the owner through
	// the entry node.
	if second.Location == "" || !strings.Contains(second.Location, "peer=") {
		t.Fatalf("forwarded Location %q lacks peer routing", second.Location)
	}
	resp, err := http.Get(entry1.ts.URL + second.Location)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || status.State != "done" {
		t.Errorf("proxied status: code %d, %+v", resp.StatusCode, status)
	}
	if got := resultJSON(t, status); got != want {
		t.Errorf("proxied status result differs:\n got %s\nwant %s", got, want)
	}

	// A second submission through the same entry node is eliminated by the
	// local read-through cache — no extra hop, still a remote hit.
	forwardedBefore := entry1.clus.Metrics().Forwarded.Load()
	code, fourth := postJob(t, entry1, body)
	if code != http.StatusOK || !fourth.Deduped {
		t.Fatalf("read-through repeat: code %d, %+v", code, fourth)
	}
	if got := resultJSON(t, fourth); got != want {
		t.Errorf("read-through result differs:\n got %s\nwant %s", got, want)
	}
	if got := entry1.clus.Metrics().Forwarded.Load(); got != forwardedBefore {
		t.Errorf("read-through repeat still forwarded (%d -> %d)", forwardedBefore, got)
	}
	if got := entry1.clus.Metrics().ReadThroughHits.Load(); got != 1 {
		t.Errorf("ReadThroughHits = %d, want 1", got)
	}
}

// Killing the owner must not produce a 5xx storm: with the health checker
// too slow to notice (the worst case), submissions through a live node
// degrade to local simulation and still succeed.
func TestClusterOwnerDeathDegradesLocally(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation in -short mode")
	}
	// Health interval 0: no health loop, dead owner stays "up" in the ring.
	nodes := startCluster(t, 3, 0, time.Minute)
	body, key := clusterSpec()

	owner := nodes[0].clus.Owner(key)
	ownerIdx, entryIdx := -1, -1
	for i, nd := range nodes {
		if nd.addr == owner {
			ownerIdx = i
		} else if entryIdx < 0 {
			entryIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("owner %q not a member", owner)
	}
	nodes[ownerIdx].ts.Close() // kill the owner's listener

	entry := nodes[entryIdx]
	code, jr := postJob(t, entry, body)
	if code != http.StatusOK || jr.State != "done" {
		t.Fatalf("degraded submission: code %d, %+v", code, jr)
	}
	if jr.Result == nil {
		t.Fatalf("degraded submission returned no result: %+v", jr)
	}
	if got := entry.clus.Metrics().Degraded.Load(); got != 1 {
		t.Errorf("Degraded = %d, want 1", got)
	}
	if entry.nodeFrames() == 0 {
		t.Error("degraded submission did not simulate locally")
	}
	if !strings.Contains(scrape(t, entry), "resvc_cluster_degraded_total 1") {
		t.Error("/metrics missing resvc_cluster_degraded_total 1")
	}
}

// The health checker must flip resvc_cluster_peer_up within one interval of
// a peer dying — and treat a *draining* peer (healthz 503) as down, so its
// key range rebalances before the listener ever closes.
func TestClusterHealthAndDrainRebalance(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster simulation in -short mode")
	}
	const interval = 25 * time.Millisecond
	nodes := startCluster(t, 3, interval, time.Minute)

	waitPeer := func(viewer *clusterNode, peer string, want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if viewer.clus.PeerUp(peer) == want {
				return
			}
			time.Sleep(interval / 2)
		}
		t.Fatalf("%s never saw %s as up=%v", viewer.addr, peer, want)
	}

	// All peers seen up initially.
	for _, peer := range []*clusterNode{nodes[1], nodes[2]} {
		waitPeer(nodes[0], peer.addr, true)
	}
	gauge := fmt.Sprintf("resvc_cluster_peer_up{peer=%q} 1", nodes[1].addr)
	if !strings.Contains(scrape(t, nodes[0]), gauge) {
		t.Errorf("/metrics missing %s", gauge)
	}

	// Draining flips the peer down (healthz 503) while it still serves.
	nodes[1].srv.StartDraining()
	waitPeer(nodes[0], nodes[1].addr, false)
	gauge = fmt.Sprintf("resvc_cluster_peer_up{peer=%q} 0", nodes[1].addr)
	if !strings.Contains(scrape(t, nodes[0]), gauge) {
		t.Errorf("/metrics missing %s after drain", gauge)
	}

	// While node 1 drains, nothing routes to it: every key's owner is one
	// of the two live members from node 0's point of view.
	body, key := clusterSpec()
	if owner := nodes[0].clus.Owner(key); owner == nodes[1].addr {
		t.Errorf("draining peer still owns key %v", key)
	}
	if code, jr := postJob(t, nodes[0], body); code != http.StatusOK || jr.State != "done" {
		t.Errorf("submission during drain: code %d, %+v", code, jr)
	}

	// Hard-killing node 2 flips its gauge too (connection refused).
	nodes[2].ts.Close()
	waitPeer(nodes[0], nodes[2].addr, false)
}
