package rendelim

import (
	"rendelim/internal/api"
	"rendelim/internal/geom"
	"rendelim/internal/shader"
)

// Command-stream surface: everything needed to author custom traces against
// the simulator without touching internal packages. See examples/spritegame
// and examples/fpsgame for end-to-end uses.
type (
	// Frame is one frame's command stream.
	Frame = api.Frame
	// Command is a command-stream element.
	Command = api.Command
	// SetPipeline binds shaders, textures and fixed-function state.
	SetPipeline = api.SetPipeline
	// SetUniforms updates scene constants (part of the signed tile input).
	SetUniforms = api.SetUniforms
	// Draw submits a triangle list of interleaved vec4 attributes.
	Draw = api.Draw
	// UploadTexture models glTexImage2D (disables RE for the frame).
	UploadTexture = api.UploadTexture
	// UploadProgram models shader source upload (disables RE for the frame).
	UploadProgram = api.UploadProgram
	// SetRenderTargets switches MRT mode (RE disabled while >1).
	SetRenderTargets = api.SetRenderTargets
	// TextureSpec describes a procedural texture.
	TextureSpec = api.TextureSpec
	// Program is a shader program for the vec4 bytecode VM.
	Program = shader.Program
	// ProgramID and TextureID reference trace registries.
	ProgramID = api.ProgramID
	// TextureID references a texture registered with the trace.
	TextureID = api.TextureID

	// Vec3 and Vec4 are float32 vectors; Mat4 is a row-major 4x4 matrix.
	Vec3 = geom.Vec3
	Vec4 = geom.Vec4
	// Mat4 is a row-major 4x4 matrix.
	Mat4 = geom.Mat4
)

// Blend modes for SetPipeline.
const (
	BlendNone  = api.BlendNone
	BlendAlpha = api.BlendAlpha
)

// Texture kinds for TextureSpec.
const (
	TexChecker  = api.TexChecker
	TexGradient = api.TexGradient
	TexNoise    = api.TexNoise
	TexDisc     = api.TexDisc
)

// V3 and V4 construct vectors.
func V3(x, y, z float32) Vec3 { return geom.V3(x, y, z) }

// V4 constructs a Vec4.
func V4(x, y, z, w float32) Vec4 { return geom.V4(x, y, z, w) }

// Ortho, Perspective and LookAt build the usual camera matrices.
func Ortho(l, r, b, t, n, f float32) Mat4 { return geom.Ortho(l, r, b, t, n, f) }

// Perspective builds a GL-style perspective projection.
func Perspective(fovY, aspect, near, far float32) Mat4 {
	return geom.Perspective(fovY, aspect, near, far)
}

// LookAt builds a right-handed view matrix.
func LookAt(eye, center, up Vec3) Mat4 { return geom.LookAt(eye, center, up) }

// MVPUniforms returns the SetUniforms command uploading m to the
// conventional c0..c3 registers read by the standard vertex shader.
func MVPUniforms(m Mat4) SetUniforms {
	return SetUniforms{First: 0, Values: []Vec4{m.Row(0), m.Row(1), m.Row(2), m.Row(3)}}
}

// Standard shader programs (the registry the synthetic suite uses):
// index 0 is the transform vertex shader, the rest are fragment shaders.
const (
	ProgTransformVS = 0
	ProgFlatFS      = 1
	ProgVColorFS    = 2
	ProgTexFS       = 3
	ProgLambertFS   = 4
)

// StandardPrograms returns fresh copies of the standard program registry for
// embedding in a custom trace.
func StandardPrograms() []*Program {
	return []*Program{
		shader.TransformVS(2),
		shader.FlatFS(),
		shader.VertexColorFS(),
		shader.TexturedFS(),
		shader.LambertTexFS(),
	}
}

// QuadVerts appends the two triangles of an axis-aligned quad to data,
// using the standard 3-attribute layout (position, color, uv), and returns
// the extended slice. Convenience for hand-built traces.
func QuadVerts(data []Vec4, x, y, w, h, z float32, color Vec4) []Vec4 {
	p00 := V4(x, y, z, 1)
	p10 := V4(x+w, y, z, 1)
	p01 := V4(x, y+h, z, 1)
	p11 := V4(x+w, y+h, z, 1)
	uv00, uv10 := V4(0, 0, 0, 0), V4(1, 0, 0, 0)
	uv01, uv11 := V4(0, 1, 0, 0), V4(1, 1, 0, 0)
	data = append(data, p00, color, uv00, p10, color, uv10, p11, color, uv11)
	data = append(data, p00, color, uv00, p11, color, uv11, p01, color, uv01)
	return data
}
