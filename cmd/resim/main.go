// Command resim replays one recorded trace on the simulated GPU under a
// chosen technique and prints the run's headline statistics — the
// single-workload counterpart of reexp.
//
// Usage:
//
//	resim -trace traces/ccs.rdlm [-tech base|re|te|memo] [-v]
//	      [-tracefile out.trace.json] [-cpuprofile cpu.pprof] [-log-level info]
//	      [-timeout 30s] [-inject PLAN] [-inject-seed 1]
//
// -tracefile records a per-frame, per-pipeline-stage timeline in Chrome
// trace-event JSON; open it in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. -cpuprofile records a Go CPU profile of the simulator
// itself for `go tool pprof`.
//
// -inject arms deterministic fault injection (fault.Parse syntax, e.g.
// 'dram.read:panic:0.05:3'); the replay then checkpoints every frame and
// recovers a mid-frame panic by rebuilding the simulator and resuming from
// the last frame boundary, so the printed statistics still cover the whole
// trace and are byte-identical to a fault-free run.
//
// Exit codes:
//
//	0  replay completed
//	1  usage or I/O error
//	3  -timeout expired; the printed statistics cover only the frames that
//	   completed before the deadline
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime/pprof"

	"rendelim/internal/api"
	"rendelim/internal/energy"
	"rendelim/internal/fault"
	"rendelim/internal/fb"
	"rendelim/internal/gpusim"
	"rendelim/internal/obs"
	"rendelim/internal/trace"
)

// errAborted marks a -timeout partial-result abort: the stats printed cover
// only the completed frames. main maps it to exit code 3 (documented above)
// so scripts can tell "partial results" from hard failures.
var errAborted = errors.New("resim: aborted by timeout")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if err == nil {
		return
	}
	if errors.Is(err, errAborted) {
		os.Exit(3) // partial stats already printed
	}
	fmt.Fprintln(os.Stderr, "resim:", err)
	os.Exit(1)
}

// run is the whole command, factored out of main so tests can drive it.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("resim", flag.ContinueOnError)
	path := fs.String("trace", "", "trace file (required)")
	tech := fs.String("tech", "re", "technique: base, re, te, memo")
	refresh := fs.Int("refresh", 0, "RE periodic refresh interval (0 = off)")
	tileWorkers := fs.Int("tile-workers", 0, "raster-phase goroutines (0/1 = serial, -1 = one per CPU); never changes results")
	timeout := fs.Duration("timeout", 0, "abort the replay after this long (0 = none); partial stats are printed")
	verbose := fs.Bool("v", false, "print per-frame statistics")
	heatmap := fs.String("heatmap", "", "write a PGM skip heat-map to this file (RE only)")
	dump := fs.String("dump", "", "write rendered frames as PNGs into this directory")
	tracefile := fs.String("tracefile", "", "write a Chrome trace-event pipeline timeline to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a Go CPU profile to this file")
	inject := fs.String("inject", "", "fault-injection plan, e.g. 'dram.read:panic:0.05:3' (replay recovers from checkpoints); store.write/store.sync/store.rename target resvc's durable store")
	injectSeed := fs.Int64("inject-seed", 1, "fault-injection PRNG seed")
	logLevel := fs.String("log-level", "", "log level: debug, info, warn, error (default info; env "+obs.EnvLogLevel+")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := obs.Setup(*logLevel, "")
	if err != nil {
		return err
	}

	if *path == "" {
		fs.Usage()
		return fmt.Errorf("missing -trace")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	tr, err := trace.Decode(f)
	f.Close()
	if err != nil {
		return err
	}

	cfg := gpusim.DefaultConfig()
	cfg.RefreshInterval = *refresh
	cfg.TileWorkers = *tileWorkers
	technique, err := gpusim.ParseTechnique(*tech)
	if err != nil {
		return err
	}
	cfg.Technique = technique
	plan, err := fault.Parse(*injectSeed, *inject)
	if err != nil {
		return err
	}
	cfg.Fault = plan

	var tracer *obs.Tracer
	if *tracefile != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	sim, err := gpusim.New(tr, cfg)
	if err != nil {
		return err
	}
	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			return err
		}
	}
	log.Debug("replaying trace", "name", tr.Name, "frames", len(tr.Frames),
		"technique", cfg.Technique.String(), "tracing", *tracefile != "",
		"tile_workers", *tileWorkers)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var perFrame func(int, *gpusim.Simulator) error
	if *dump != "" {
		perFrame = func(i int, s *gpusim.Simulator) error { return dumpFrame(*dump, i, s, tr) }
	}
	var res gpusim.Result
	switch {
	case plan != nil:
		// Fault injection: checkpoint every frame and recover mid-frame
		// panics by rebuilding the simulator from the last boundary.
		res, sim, err = replayResilient(ctx, sim, tr, cfg, log, perFrame)
		if err == nil {
			log.Info("resilient replay done", "faults_recovered", plan.Fired(fault.SiteDRAMRead)+plan.Fired(fault.SiteDRAMWrite))
		}
	case perFrame == nil:
		// Cancellation is checked at frame boundaries; on timeout the
		// partial result covers the frames that completed.
		res, err = sim.RunContext(ctx)
	default:
		// Frame dumping needs the framebuffer between frames, so replay
		// manually with the same frame-boundary cancellation.
		res = gpusim.Result{Technique: cfg.Technique, Name: tr.Name}
		for i := range tr.Frames {
			if err = ctx.Err(); err != nil {
				break
			}
			st := sim.RunFrame(&tr.Frames[i])
			res.Frames = append(res.Frames, st)
			res.Total.Add(st)
			if derr := perFrame(i, sim); derr != nil {
				return derr
			}
		}
	}
	aborted := false
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		aborted = true
		fmt.Fprintf(stdout, "aborted    %v after %d of %d frames\n", err, len(res.Frames), len(tr.Frames))
	} else if err != nil {
		return err
	}
	if *verbose {
		for i, st := range res.Frames {
			fmt.Fprintf(stdout, "frame %3d: cycles=%d (geom %d, raster %d) skipped=%d/%d frags=%d\n",
				i, st.TotalCycles(), st.GeometryCycles, st.RasterCycles,
				st.TilesSkipped, st.TilesTotal, st.FragsShaded)
		}
	}

	t := res.Total
	em := energy.Default()
	eb := em.Compute(t.Activity)
	fmt.Fprintf(stdout, "trace      %s (%dx%d, %d frames)\n", tr.Name, tr.Width, tr.Height, len(tr.Frames))
	fmt.Fprintf(stdout, "technique  %s\n", cfg.Technique)
	fmt.Fprintf(stdout, "cycles     %d (geometry %d, raster %d)\n", t.TotalCycles(), t.GeometryCycles, t.RasterCycles)
	fmt.Fprintf(stdout, "time       %.3f ms @ 400 MHz\n", float64(t.TotalCycles())/400e3)
	fmt.Fprintf(stdout, "tiles      %d total, %d skipped (%.1f%%)\n", t.TilesTotal, t.TilesSkipped, t.SkipFraction()*100)
	fmt.Fprintf(stdout, "fragments  %d shaded, %d memo-reused, %d early-Z killed\n",
		t.FragsShaded, t.FragsMemoReused, t.FragsEarlyZKill)
	fmt.Fprintf(stdout, "flushes    %d done, %d skipped\n", t.FlushesDone, t.FlushesSkipped)
	fmt.Fprintf(stdout, "DRAM       %d bytes (colors %d, texels %d, primitives %d)\n",
		t.TotalTraffic(), t.Traffic[gpusim.TrafficColor],
		t.Traffic[gpusim.TrafficTexel], t.Traffic[gpusim.TrafficPBRead])
	fmt.Fprintf(stdout, "energy     %.3f mJ (GPU %.3f, memory %.3f)\n",
		eb.Total()*1e3, eb.GPU()*1e3, eb.Memory()*1e3)
	fmt.Fprintf(stdout, "avg power  %.1f mW\n", em.AvgPowerWatts(t.Activity)*1e3)

	if *heatmap != "" {
		if err := writeHeatmap(*heatmap, sim, len(tr.Frames)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "heatmap    %s (bright = often skipped)\n", *heatmap)
	}
	if tracer != nil {
		if err := tracer.WriteFile(*tracefile); err != nil {
			return err
		}
		log.Info("pipeline trace written", slog.String("file", *tracefile),
			slog.Int("events", tracer.Len()))
		fmt.Fprintf(stdout, "trace file %s (%d events; open in Perfetto or chrome://tracing)\n",
			*tracefile, tracer.Len())
	}
	if aborted {
		return errAborted
	}
	return nil
}

// replayResilient replays the trace one frame at a time under a fault plan,
// taking a checkpoint at every frame boundary. An injected mid-frame panic
// (e.g. at dram.read) leaves the simulator's internals half-mutated and
// unusable, so recovery rebuilds a fresh simulator, resumes it from the last
// checkpoint, and retries the frame — the final statistics and pixels are
// byte-identical to a fault-free run. Returns the (possibly rebuilt)
// simulator for the heatmap/dump paths.
func replayResilient(ctx context.Context, sim *gpusim.Simulator, tr *api.Trace, cfg gpusim.Config, log *slog.Logger, perFrame func(int, *gpusim.Simulator) error) (gpusim.Result, *gpusim.Simulator, error) {
	const maxRecoveries = 1000 // guard against an unbounded always-panic plan
	res := gpusim.Result{Technique: cfg.Technique, Name: tr.Name}
	cp := sim.Checkpoint()
	recoveries := 0
	for i := 0; i < len(tr.Frames); {
		if err := ctx.Err(); err != nil {
			return res, sim, err
		}
		st, err := runFrameRecover(sim, &tr.Frames[i])
		if err != nil {
			recoveries++
			if recoveries > maxRecoveries {
				return res, sim, fmt.Errorf("resim: gave up after %d fault recoveries: %w", maxRecoveries, err)
			}
			log.Warn("frame panicked; resuming from checkpoint", "frame", i, "err", err)
			ns, nerr := gpusim.New(tr, cfg)
			if nerr != nil {
				return res, sim, nerr
			}
			if rerr := ns.Resume(cp); rerr != nil {
				return res, sim, rerr
			}
			sim = ns
			continue // retry frame i on the rebuilt simulator
		}
		res.Frames = append(res.Frames, st)
		res.Total.Add(st)
		cp = sim.Checkpoint()
		if perFrame != nil {
			if err := perFrame(i, sim); err != nil {
				return res, sim, err
			}
		}
		i++
	}
	res.FBCRC = sim.FrameBufferCRC()
	return res, sim, nil
}

// runFrameRecover executes one frame with panic containment.
func runFrameRecover(sim *gpusim.Simulator, f *api.Frame) (st gpusim.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("frame panicked: %v", r)
		}
	}()
	return sim.RunFrame(f), nil
}

// dumpFrame writes the just-displayed frame as PNG.
func dumpFrame(dir string, idx int, sim *gpusim.Simulator, tr *api.Trace) error {
	f, err := os.Create(fmt.Sprintf("%s/frame%03d.png", dir, idx))
	if err != nil {
		return err
	}
	defer f.Close()
	return fb.WritePNG(f, sim.FrameBufferSnapshot(), tr.Width, tr.Height)
}

// writeHeatmap renders the per-tile skip counts as a plain PGM image, one
// pixel per tile, brightness = skip frequency.
func writeHeatmap(path string, sim *gpusim.Simulator, frames int) error {
	counts := sim.SkipCounts()
	tx := sim.TilesX()
	ty := (len(counts) + tx - 1) / tx
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P2\n%d %d\n255\n", tx, ty); err != nil {
		return err
	}
	for y := 0; y < ty; y++ {
		for x := 0; x < tx; x++ {
			v := 0
			if i := y*tx + x; i < len(counts) && frames > 0 {
				v = int(counts[i]) * 255 / frames
				if v > 255 {
					v = 255
				}
			}
			if _, err := fmt.Fprintf(f, "%d ", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return nil
}
