// Command resim replays one recorded trace on the simulated GPU under a
// chosen technique and prints the run's headline statistics — the
// single-workload counterpart of reexp.
//
// Usage:
//
//	resim -trace traces/ccs.rdlm [-tech base|re|te|memo] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"rendelim/internal/api"
	"rendelim/internal/energy"
	"rendelim/internal/fb"
	"rendelim/internal/gpusim"
	"rendelim/internal/trace"
)

func main() {
	path := flag.String("trace", "", "trace file (required)")
	tech := flag.String("tech", "re", "technique: base, re, te, memo")
	refresh := flag.Int("refresh", 0, "RE periodic refresh interval (0 = off)")
	verbose := flag.Bool("v", false, "print per-frame statistics")
	heatmap := flag.String("heatmap", "", "write a PGM skip heat-map to this file (RE only)")
	dump := flag.String("dump", "", "write rendered frames as PNGs into this directory")
	flag.Parse()

	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resim:", err)
		os.Exit(1)
	}
	tr, err := trace.Decode(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "resim:", err)
		os.Exit(1)
	}

	cfg := gpusim.DefaultConfig()
	cfg.RefreshInterval = *refresh
	technique, err := gpusim.ParseTechnique(*tech)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resim:", err)
		os.Exit(2)
	}
	cfg.Technique = technique

	sim, err := gpusim.New(tr, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resim:", err)
		os.Exit(1)
	}
	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "resim:", err)
			os.Exit(1)
		}
	}
	res := gpusim.Result{Technique: cfg.Technique, Name: tr.Name}
	for i := range tr.Frames {
		fs := sim.RunFrame(&tr.Frames[i])
		res.Frames = append(res.Frames, fs)
		res.Total.Add(fs)
		if *dump != "" {
			if err := dumpFrame(*dump, i, sim, tr); err != nil {
				fmt.Fprintln(os.Stderr, "resim:", err)
				os.Exit(1)
			}
		}
	}
	if *verbose {
		for i, fs := range res.Frames {
			fmt.Printf("frame %3d: cycles=%d (geom %d, raster %d) skipped=%d/%d frags=%d\n",
				i, fs.TotalCycles(), fs.GeometryCycles, fs.RasterCycles,
				fs.TilesSkipped, fs.TilesTotal, fs.FragsShaded)
		}
	}

	t := res.Total
	em := energy.Default()
	eb := em.Compute(t.Activity)
	fmt.Printf("trace      %s (%dx%d, %d frames)\n", tr.Name, tr.Width, tr.Height, len(tr.Frames))
	fmt.Printf("technique  %s\n", cfg.Technique)
	fmt.Printf("cycles     %d (geometry %d, raster %d)\n", t.TotalCycles(), t.GeometryCycles, t.RasterCycles)
	fmt.Printf("time       %.3f ms @ 400 MHz\n", float64(t.TotalCycles())/400e3)
	fmt.Printf("tiles      %d total, %d skipped (%.1f%%)\n", t.TilesTotal, t.TilesSkipped, t.SkipFraction()*100)
	fmt.Printf("fragments  %d shaded, %d memo-reused, %d early-Z killed\n",
		t.FragsShaded, t.FragsMemoReused, t.FragsEarlyZKill)
	fmt.Printf("flushes    %d done, %d skipped\n", t.FlushesDone, t.FlushesSkipped)
	fmt.Printf("DRAM       %d bytes (colors %d, texels %d, primitives %d)\n",
		t.TotalTraffic(), t.Traffic[gpusim.TrafficColor],
		t.Traffic[gpusim.TrafficTexel], t.Traffic[gpusim.TrafficPBRead])
	fmt.Printf("energy     %.3f mJ (GPU %.3f, memory %.3f)\n",
		eb.Total()*1e3, eb.GPU()*1e3, eb.Memory()*1e3)
	fmt.Printf("avg power  %.1f mW\n", em.AvgPowerWatts(t.Activity)*1e3)

	if *heatmap != "" {
		if err := writeHeatmap(*heatmap, sim, len(tr.Frames)); err != nil {
			fmt.Fprintln(os.Stderr, "resim:", err)
			os.Exit(1)
		}
		fmt.Printf("heatmap    %s (bright = often skipped)\n", *heatmap)
	}
}

// dumpFrame writes the just-displayed frame as PNG.
func dumpFrame(dir string, idx int, sim *gpusim.Simulator, tr *api.Trace) error {
	f, err := os.Create(fmt.Sprintf("%s/frame%03d.png", dir, idx))
	if err != nil {
		return err
	}
	defer f.Close()
	return fb.WritePNG(f, sim.FrameBufferSnapshot(), tr.Width, tr.Height)
}

// writeHeatmap renders the per-tile skip counts as a plain PGM image, one
// pixel per tile, brightness = skip frequency.
func writeHeatmap(path string, sim *gpusim.Simulator, frames int) error {
	counts := sim.SkipCounts()
	tx := sim.TilesX()
	ty := (len(counts) + tx - 1) / tx
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P2\n%d %d\n255\n", tx, ty); err != nil {
		return err
	}
	for y := 0; y < ty; y++ {
		for x := 0; x < tx; x++ {
			v := 0
			if i := y*tx + x; i < len(counts) && frames > 0 {
				v = int(counts[i]) * 255 / frames
				if v > 255 {
					v = 255
				}
			}
			if _, err := fmt.Fprintf(f, "%d ", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return nil
}
