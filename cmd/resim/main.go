// Command resim replays one recorded trace on the simulated GPU under a
// chosen technique and prints the run's headline statistics — the
// single-workload counterpart of reexp.
//
// Usage:
//
//	resim -trace traces/ccs.rdlm [-tech base|re|te|memo] [-v]
//	      [-tracefile out.trace.json] [-cpuprofile cpu.pprof] [-log-level info]
//
// -tracefile records a per-frame, per-pipeline-stage timeline in Chrome
// trace-event JSON; open it in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. -cpuprofile records a Go CPU profile of the simulator
// itself for `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime/pprof"

	"rendelim/internal/api"
	"rendelim/internal/energy"
	"rendelim/internal/fb"
	"rendelim/internal/gpusim"
	"rendelim/internal/obs"
	"rendelim/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "resim:", err)
		os.Exit(1)
	}
}

// run is the whole command, factored out of main so tests can drive it.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("resim", flag.ContinueOnError)
	path := fs.String("trace", "", "trace file (required)")
	tech := fs.String("tech", "re", "technique: base, re, te, memo")
	refresh := fs.Int("refresh", 0, "RE periodic refresh interval (0 = off)")
	tileWorkers := fs.Int("tile-workers", 0, "raster-phase goroutines (0/1 = serial, -1 = one per CPU); never changes results")
	timeout := fs.Duration("timeout", 0, "abort the replay after this long (0 = none); partial stats are printed")
	verbose := fs.Bool("v", false, "print per-frame statistics")
	heatmap := fs.String("heatmap", "", "write a PGM skip heat-map to this file (RE only)")
	dump := fs.String("dump", "", "write rendered frames as PNGs into this directory")
	tracefile := fs.String("tracefile", "", "write a Chrome trace-event pipeline timeline to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a Go CPU profile to this file")
	logLevel := fs.String("log-level", "", "log level: debug, info, warn, error (default info; env "+obs.EnvLogLevel+")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := obs.Setup(*logLevel, "")
	if err != nil {
		return err
	}

	if *path == "" {
		fs.Usage()
		return fmt.Errorf("missing -trace")
	}
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	tr, err := trace.Decode(f)
	f.Close()
	if err != nil {
		return err
	}

	cfg := gpusim.DefaultConfig()
	cfg.RefreshInterval = *refresh
	cfg.TileWorkers = *tileWorkers
	technique, err := gpusim.ParseTechnique(*tech)
	if err != nil {
		return err
	}
	cfg.Technique = technique

	var tracer *obs.Tracer
	if *tracefile != "" {
		tracer = obs.NewTracer()
		cfg.Tracer = tracer
	}
	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	sim, err := gpusim.New(tr, cfg)
	if err != nil {
		return err
	}
	if *dump != "" {
		if err := os.MkdirAll(*dump, 0o755); err != nil {
			return err
		}
	}
	log.Debug("replaying trace", "name", tr.Name, "frames", len(tr.Frames),
		"technique", cfg.Technique.String(), "tracing", *tracefile != "",
		"tile_workers", *tileWorkers)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var res gpusim.Result
	if *dump == "" {
		// Cancellation is checked at frame boundaries; on timeout the
		// partial result covers the frames that completed.
		res, err = sim.RunContext(ctx)
	} else {
		// Frame dumping needs the framebuffer between frames, so replay
		// manually with the same frame-boundary cancellation.
		res = gpusim.Result{Technique: cfg.Technique, Name: tr.Name}
		for i := range tr.Frames {
			if err = ctx.Err(); err != nil {
				break
			}
			st := sim.RunFrame(&tr.Frames[i])
			res.Frames = append(res.Frames, st)
			res.Total.Add(st)
			if derr := dumpFrame(*dump, i, sim, tr); derr != nil {
				return derr
			}
		}
	}
	if err != nil {
		fmt.Fprintf(stdout, "aborted    %v after %d of %d frames\n", err, len(res.Frames), len(tr.Frames))
	}
	if *verbose {
		for i, st := range res.Frames {
			fmt.Fprintf(stdout, "frame %3d: cycles=%d (geom %d, raster %d) skipped=%d/%d frags=%d\n",
				i, st.TotalCycles(), st.GeometryCycles, st.RasterCycles,
				st.TilesSkipped, st.TilesTotal, st.FragsShaded)
		}
	}

	t := res.Total
	em := energy.Default()
	eb := em.Compute(t.Activity)
	fmt.Fprintf(stdout, "trace      %s (%dx%d, %d frames)\n", tr.Name, tr.Width, tr.Height, len(tr.Frames))
	fmt.Fprintf(stdout, "technique  %s\n", cfg.Technique)
	fmt.Fprintf(stdout, "cycles     %d (geometry %d, raster %d)\n", t.TotalCycles(), t.GeometryCycles, t.RasterCycles)
	fmt.Fprintf(stdout, "time       %.3f ms @ 400 MHz\n", float64(t.TotalCycles())/400e3)
	fmt.Fprintf(stdout, "tiles      %d total, %d skipped (%.1f%%)\n", t.TilesTotal, t.TilesSkipped, t.SkipFraction()*100)
	fmt.Fprintf(stdout, "fragments  %d shaded, %d memo-reused, %d early-Z killed\n",
		t.FragsShaded, t.FragsMemoReused, t.FragsEarlyZKill)
	fmt.Fprintf(stdout, "flushes    %d done, %d skipped\n", t.FlushesDone, t.FlushesSkipped)
	fmt.Fprintf(stdout, "DRAM       %d bytes (colors %d, texels %d, primitives %d)\n",
		t.TotalTraffic(), t.Traffic[gpusim.TrafficColor],
		t.Traffic[gpusim.TrafficTexel], t.Traffic[gpusim.TrafficPBRead])
	fmt.Fprintf(stdout, "energy     %.3f mJ (GPU %.3f, memory %.3f)\n",
		eb.Total()*1e3, eb.GPU()*1e3, eb.Memory()*1e3)
	fmt.Fprintf(stdout, "avg power  %.1f mW\n", em.AvgPowerWatts(t.Activity)*1e3)

	if *heatmap != "" {
		if err := writeHeatmap(*heatmap, sim, len(tr.Frames)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "heatmap    %s (bright = often skipped)\n", *heatmap)
	}
	if tracer != nil {
		if err := tracer.WriteFile(*tracefile); err != nil {
			return err
		}
		log.Info("pipeline trace written", slog.String("file", *tracefile),
			slog.Int("events", tracer.Len()))
		fmt.Fprintf(stdout, "trace file %s (%d events; open in Perfetto or chrome://tracing)\n",
			*tracefile, tracer.Len())
	}
	return nil
}

// dumpFrame writes the just-displayed frame as PNG.
func dumpFrame(dir string, idx int, sim *gpusim.Simulator, tr *api.Trace) error {
	f, err := os.Create(fmt.Sprintf("%s/frame%03d.png", dir, idx))
	if err != nil {
		return err
	}
	defer f.Close()
	return fb.WritePNG(f, sim.FrameBufferSnapshot(), tr.Width, tr.Height)
}

// writeHeatmap renders the per-tile skip counts as a plain PGM image, one
// pixel per tile, brightness = skip frequency.
func writeHeatmap(path string, sim *gpusim.Simulator, frames int) error {
	counts := sim.SkipCounts()
	tx := sim.TilesX()
	ty := (len(counts) + tx - 1) / tx
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P2\n%d %d\n255\n", tx, ty); err != nil {
		return err
	}
	for y := 0; y < ty; y++ {
		for x := 0; x < tx; x++ {
			v := 0
			if i := y*tx + x; i < len(counts) && frames > 0 {
				v = int(counts[i]) * 255 / frames
				if v > 255 {
					v = 255
				}
			}
			if _, err := fmt.Fprintf(f, "%d ", v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return nil
}
