package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rendelim/internal/gpusim"
	"rendelim/internal/obs"
	"rendelim/internal/trace"
	"rendelim/internal/workload"
)

func TestWriteHeatmap(t *testing.T) {
	p := workload.Params{Width: 96, Height: 64, Frames: 5, Seed: 1}
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(p)
	cfg := gpusim.DefaultConfig()
	cfg.Technique = gpusim.RE
	sim, err := gpusim.New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()

	path := filepath.Join(t.TempDir(), "heat.pgm")
	if err := writeHeatmap(path, sim, len(tr.Frames)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "P2\n6 4\n255\n") {
		t.Fatalf("bad PGM header: %q", s[:20])
	}
	// ccs skips most tiles after warm-up, so some non-zero values exist.
	if !strings.ContainsAny(strings.TrimPrefix(s, "P2\n6 4\n255\n"), "123456789") {
		t.Fatal("heatmap all zero on a redundant workload")
	}
}

// TestRunTracefile is the acceptance check for -tracefile: replaying a
// synthetic scene emits valid Chrome trace-event JSON with at least one
// frame span, nested pipeline-stage spans, and tile-elimination instants.
func TestRunTracefile(t *testing.T) {
	// Encode a synthetic redundant scene to a trace file.
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: 5, Seed: 1})
	dir := t.TempDir()
	in := filepath.Join(dir, "scene.rdlm")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "out.trace.json")
	var stdout bytes.Buffer
	if err := run([]string{"-trace", in, "-tech", "re", "-tracefile", out}, &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "trace file") {
		t.Errorf("report does not mention the trace file:\n%s", stdout.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var tf obs.TraceFile
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("%s is not valid Chrome trace JSON: %v", out, err)
	}

	var stack []string
	frames, eliminations := 0, 0
	nested := map[string]bool{}
	lastTS := -1.0
	for i, e := range tf.TraceEvents {
		if e.Ph != "M" {
			if e.TS < lastTS {
				t.Fatalf("event %d: non-monotonic timestamp %v < %v", i, e.TS, lastTS)
			}
			lastTS = e.TS
		}
		switch e.Ph {
		case "B":
			if e.Name == "frame" {
				frames++
			} else if len(stack) > 0 {
				nested[e.Name] = true
			}
			stack = append(stack, e.Name)
		case "E":
			if len(stack) == 0 || stack[len(stack)-1] != e.Name {
				t.Fatalf("event %d: unbalanced E %q (stack %v)", i, e.Name, stack)
			}
			stack = stack[:len(stack)-1]
		case "i":
			if e.Name == "tile-eliminated" {
				eliminations++
			}
		}
	}
	if len(stack) != 0 {
		t.Fatalf("unclosed spans %v", stack)
	}
	if frames < 1 {
		t.Error("no frame spans in trace")
	}
	if eliminations == 0 {
		t.Error("no tile-elimination instant events on a redundant scene")
	}
	for _, stage := range []string{"geometry", "vertex-shading", "tiling", "raster", "re-check", "fragment-shading", "dram-flush"} {
		if !nested[stage] {
			t.Errorf("missing nested stage span %q", stage)
		}
	}
}

// TestRunCPUProfile exercises -cpuprofile end to end.
func TestRunCPUProfile(t *testing.T) {
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: 2, Seed: 1})
	dir := t.TempDir()
	in := filepath.Join(dir, "scene.rdlm")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	prof := filepath.Join(dir, "cpu.pprof")
	if err := run([]string{"-trace", in, "-cpuprofile", prof}, io.Discard); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(prof)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("empty CPU profile")
	}
}

// encodeScene writes a small synthetic trace to disk and returns its path.
func encodeScene(t *testing.T, frames int) string {
	t.Helper()
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(workload.Params{Width: 96, Height: 64, Frames: frames, Seed: 1})
	in := filepath.Join(t.TempDir(), "scene.rdlm")
	f, err := os.Create(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Encode(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return in
}

// A -timeout abort must return errAborted (main maps it to exit code 3, the
// documented "partial results" code) after printing the partial stats.
func TestTimeoutAbortReturnsErrAborted(t *testing.T) {
	in := encodeScene(t, 50)
	var stdout bytes.Buffer
	err := run([]string{"-trace", in, "-timeout", "1ns"}, &stdout)
	if !errors.Is(err, errAborted) {
		t.Fatalf("err = %v, want errAborted", err)
	}
	if !strings.Contains(stdout.String(), "aborted") {
		t.Errorf("partial-result banner missing:\n%s", stdout.String())
	}
	// The stats block must still be printed so partial results are usable.
	if !strings.Contains(stdout.String(), "cycles") {
		t.Errorf("partial stats missing:\n%s", stdout.String())
	}
}

// Under an always-panic DRAM fault plan, the resilient replay must recover
// via checkpoints and print statistics byte-identical to a fault-free run.
func TestInjectResilientReplayByteIdentical(t *testing.T) {
	in := encodeScene(t, 5)
	var clean, chaotic bytes.Buffer
	if err := run([]string{"-trace", in, "-tech", "re"}, &clean); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", in, "-tech", "re", "-v",
		"-inject", "dram.read:panic:1:3", "-inject-seed", "7"}, &chaotic); err != nil {
		t.Fatal(err)
	}
	// The chaotic run prints per-frame lines too (-v); compare only the
	// summary block, which both runs share.
	if !strings.Contains(chaotic.String(), cleanSummary(clean.String())) {
		t.Fatalf("stats diverge under fault injection:\nclean:\n%s\nchaotic:\n%s", clean.String(), chaotic.String())
	}
}

// cleanSummary strips everything before the "trace " headline.
func cleanSummary(s string) string {
	if i := strings.Index(s, "trace "); i >= 0 {
		return s[i:]
	}
	return s
}

// TestRunBadFlags: bad inputs must error, not exit the process.
func TestRunBadFlags(t *testing.T) {
	if err := run([]string{}, io.Discard); err == nil {
		t.Error("missing -trace accepted")
	}
	if err := run([]string{"-trace", "x", "-log-level", "nope"}, io.Discard); err == nil {
		t.Error("bad log level accepted")
	}
	if err := run([]string{"-trace", "/does/not/exist"}, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}
