package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rendelim/internal/gpusim"
	"rendelim/internal/workload"
)

func TestWriteHeatmap(t *testing.T) {
	p := workload.Params{Width: 96, Height: 64, Frames: 5, Seed: 1}
	b, err := workload.ByAlias("ccs")
	if err != nil {
		t.Fatal(err)
	}
	tr := b.Build(p)
	cfg := gpusim.DefaultConfig()
	cfg.Technique = gpusim.RE
	sim, err := gpusim.New(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()

	path := filepath.Join(t.TempDir(), "heat.pgm")
	if err := writeHeatmap(path, sim, len(tr.Frames)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "P2\n6 4\n255\n") {
		t.Fatalf("bad PGM header: %q", s[:20])
	}
	// ccs skips most tiles after warm-up, so some non-zero values exist.
	if !strings.ContainsAny(strings.TrimPrefix(s, "P2\n6 4\n255\n"), "123456789") {
		t.Fatal("heatmap all zero on a redundant workload")
	}
}
