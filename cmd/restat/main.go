// Command restat is a live terminal dashboard for a resvc fleet: it polls
// /metrics and /debug/vars on every node, reassembles the Prometheus
// histograms client-side, and renders per-node queue depth, peer health and
// request-latency quantiles next to the cluster-wide job-elimination and
// tile-skip ratios — the service's two Rendering Elimination numbers, live.
//
// Usage:
//
//	restat -node 127.0.0.1:8080 [-node 127.0.0.1:8081 ...]
//	       [-interval 2s] [-timeout 5s] [-once] [-json]
//
// Without -once it refreshes in place every -interval. -once prints a single
// snapshot and exits; with -json the snapshot is machine-readable (one JSON
// document per refresh), for scripting and CI artifacts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"rendelim/internal/apihttp"
	"rendelim/internal/cluster"
	"rendelim/internal/promtext"
)

// NodeStat is one node's slice of the dashboard.
type NodeStat struct {
	Node  string `json:"node"`
	Up    bool   `json:"up"`
	Error string `json:"error,omitempty"`

	// Health is the node's own /v1/healthz self-report (status, workers,
	// uptime) — the typed apihttp view, where everything below is scraped
	// from the Prometheus text surface.
	Health *apihttp.HealthResponse `json:"health,omitempty"`

	QueueDepth   int64   `json:"queue_depth"`
	Running      int64   `json:"running"`
	Submitted    uint64  `json:"submitted"`
	Deduped      uint64  `json:"deduped"`
	ElimRatio    float64 `json:"job_elimination_ratio"`
	TilesTotal   uint64  `json:"tiles_total"`
	TilesSkipped uint64  `json:"tiles_skipped"`
	CacheEntries int64   `json:"cache_entries"`
	PeersUp      int     `json:"peers_up"`
	Peers        int     `json:"peers"`

	// Request-latency quantiles in seconds, estimated from the scraped
	// resvc_http_request_duration_seconds buckets across all routes.
	P50 float64 `json:"p50_seconds"`
	P95 float64 `json:"p95_seconds"`
	P99 float64 `json:"p99_seconds"`

	// Durable-store recovery counters (resvc_store_*); all zero on nodes
	// running without -data-dir. TornTruncations > 0 means the node booted
	// past a torn WAL tail; Quarantined > 0 means corrupt snapshots were
	// set aside on replay — both are damage survived, not damage hidden.
	ResultsRecovered uint64 `json:"store_results_recovered"`
	JobsRecovered    uint64 `json:"store_jobs_recovered"`
	JobsResumed      uint64 `json:"store_jobs_resumed"`
	TornTruncations  uint64 `json:"store_torn_tail_truncations"`
	Quarantined      uint64 `json:"store_snapshots_quarantined"`
}

// ClusterStat aggregates the fleet: ratios are computed over summed
// counters, not averaged per-node ratios, so they match what a single giant
// node would have reported.
type ClusterStat struct {
	NodesUp      int     `json:"nodes_up"`
	Nodes        int     `json:"nodes"`
	Submitted    uint64  `json:"submitted"`
	Deduped      uint64  `json:"deduped"`
	QueueDepth   int64   `json:"queue_depth"`
	ElimRatio    float64 `json:"job_elimination_ratio"`
	TilesTotal   uint64  `json:"tiles_total"`
	TilesSkipped uint64  `json:"tiles_skipped"`
	TileRatio    float64 `json:"tile_skip_ratio"`
}

// Snapshot is one dashboard refresh (the -json document).
type Snapshot struct {
	Taken   time.Time   `json:"taken"`
	Nodes   []NodeStat  `json:"nodes"`
	Cluster ClusterStat `json:"cluster"`
}

// nodeList collects repeated -node flags.
type nodeList []string

func (n *nodeList) String() string     { return strings.Join(*n, ",") }
func (n *nodeList) Set(v string) error { *n = append(*n, v); return nil }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "restat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("restat", flag.ContinueOnError)
	var nodes nodeList
	fs.Var(&nodes, "node", "node address host:port (repeatable)")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	timeout := fs.Duration("timeout", 5*time.Second, "per-node scrape timeout")
	once := fs.Bool("once", false, "print one snapshot and exit")
	asJSON := fs.Bool("json", false, "emit snapshots as JSON documents")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(nodes) == 0 {
		return fmt.Errorf("at least one -node is required")
	}
	for i, n := range nodes {
		addr, err := cluster.NormalizeAddr(n)
		if err != nil {
			return err
		}
		nodes[i] = addr
	}
	client := &http.Client{Timeout: *timeout}

	for {
		snap := collect(client, nodes)
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				return err
			}
		} else {
			if !*once {
				fmt.Fprint(stdout, "\x1b[2J\x1b[H") // clear + home
			}
			render(stdout, snap)
		}
		if *once {
			return nil
		}
		time.Sleep(*interval)
	}
}

// collect scrapes every node and aggregates the fleet view. Scrape failures
// mark the node down but never fail the snapshot: a dashboard that dies with
// its first unreachable node is useless during exactly the incidents it is
// for.
func collect(client *http.Client, nodes []string) Snapshot {
	snap := Snapshot{Taken: time.Now().UTC()}
	for _, node := range nodes {
		ns := scrapeNode(client, node)
		snap.Nodes = append(snap.Nodes, ns)
		snap.Cluster.Nodes++
		if !ns.Up {
			continue
		}
		snap.Cluster.NodesUp++
		snap.Cluster.Submitted += ns.Submitted
		snap.Cluster.Deduped += ns.Deduped
		snap.Cluster.QueueDepth += ns.QueueDepth
		snap.Cluster.TilesTotal += ns.TilesTotal
		snap.Cluster.TilesSkipped += ns.TilesSkipped
	}
	if snap.Cluster.Submitted > 0 {
		snap.Cluster.ElimRatio = float64(snap.Cluster.Deduped) / float64(snap.Cluster.Submitted)
	}
	if snap.Cluster.TilesTotal > 0 {
		snap.Cluster.TileRatio = float64(snap.Cluster.TilesSkipped) / float64(snap.Cluster.TilesTotal)
	}
	return snap
}

func scrapeNode(client *http.Client, node string) NodeStat {
	ns := NodeStat{Node: node}
	m, err := fetchMetrics(client, node)
	if err != nil {
		ns.Error = err.Error()
		return ns
	}
	ns.Up = true
	// The healthz self-report shares its wire type with the server
	// (apihttp.HealthResponse), so a field added there shows up here with
	// no decoding glue. A draining node still counts as up — it is
	// answering — but the status column says so.
	if h, err := fetchHealth(client, node); err == nil {
		ns.Health = h
	}
	gi := func(name string) int64 { v, _ := m.Value(name, nil); return int64(v) }
	gu := func(name string) uint64 { v, _ := m.Value(name, nil); return uint64(v) }
	ns.QueueDepth = gi("resvc_queue_depth")
	ns.Running = gi("resvc_jobs_running")
	ns.Submitted = gu("resvc_jobs_submitted_total")
	ns.Deduped = gu("resvc_jobs_deduped_total")
	ns.ElimRatio, _ = m.Value("resvc_job_elimination_ratio", nil)
	ns.TilesTotal = gu("resvc_sim_tiles_total")
	ns.TilesSkipped = gu("resvc_sim_tiles_skipped_total")
	ns.CacheEntries = gi("resvc_result_cache_entries")
	ns.ResultsRecovered = gu("resvc_store_results_recovered_total")
	ns.JobsRecovered = gu("resvc_store_jobs_recovered_total")
	ns.JobsResumed = gu("resvc_store_jobs_resumed_total")
	ns.TornTruncations = gu("resvc_store_torn_tail_truncations_total")
	ns.Quarantined = gu("resvc_store_snapshots_quarantined_total")
	for _, s := range m.Samples {
		if s.Name == "resvc_cluster_peer_up" {
			ns.Peers++
			if s.Value > 0 {
				ns.PeersUp++
			}
		}
	}
	if h, ok := m.Histogram("resvc_http_request_duration_seconds", nil); ok {
		ns.P50, ns.P95, ns.P99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	}
	// /debug/vars is the cross-check source: its cache gauge reads the pool
	// directly, so a divergence from the /metrics value flags a stale scrape.
	if vars, err := fetchVars(client, node); err == nil {
		if v, ok := vars["resvc_cache_entries"].(float64); ok {
			ns.CacheEntries = int64(v)
		}
	}
	return ns
}

func fetchMetrics(client *http.Client, node string) (*promtext.Metrics, error) {
	resp, err := client.Get("http://" + node + apihttp.PathMetrics)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s %s: %s", node, apihttp.PathMetrics, resp.Status)
	}
	return promtext.Parse(resp.Body)
}

func fetchHealth(client *http.Client, node string) (*apihttp.HealthResponse, error) {
	resp, err := client.Get("http://" + node + apihttp.PathHealthz)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// A draining node answers 503 with a valid body; decode either way.
	var h apihttp.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("%s %s: %v", node, apihttp.PathHealthz, err)
	}
	return &h, nil
}

func fetchVars(client *http.Client, node string) (map[string]any, error) {
	resp, err := client.Get("http://" + node + "/debug/vars")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s /debug/vars: %s", node, resp.Status)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		return nil, err
	}
	return vars, nil
}

// render draws the fleet table.
func render(w io.Writer, snap Snapshot) {
	fmt.Fprintf(w, "resvc cluster — %s\n\n", snap.Taken.Format(time.RFC3339))
	fmt.Fprintf(w, "%-22s %-5s %6s %4s %9s %8s %6s %6s %8s %8s %8s\n",
		"NODE", "UP", "QUEUE", "RUN", "SUBMIT", "ELIM%", "PEERS", "CACHE", "p50(ms)", "p95(ms)", "p99(ms)")
	for _, ns := range snap.Nodes {
		if !ns.Up {
			fmt.Fprintf(w, "%-22s %-5s %s\n", ns.Node, "DOWN", ns.Error)
			continue
		}
		fmt.Fprintf(w, "%-22s %-5s %6d %4d %9d %7.1f%% %3d/%-2d %6d %8.2f %8.2f %8.2f\n",
			ns.Node, "up", ns.QueueDepth, ns.Running, ns.Submitted, ns.ElimRatio*100,
			ns.PeersUp, ns.Peers, ns.CacheEntries,
			ns.P50*1000, ns.P95*1000, ns.P99*1000)
		// The store sub-line only appears on nodes that actually recovered
		// or repaired something — quiet fleets keep a quiet dashboard.
		if ns.ResultsRecovered+ns.JobsRecovered+ns.JobsResumed+ns.TornTruncations+ns.Quarantined > 0 {
			fmt.Fprintf(w, "%-22s store: %d results + %d jobs recovered (%d resumed), %d torn-tail truncations, %d quarantined\n",
				"", ns.ResultsRecovered, ns.JobsRecovered, ns.JobsResumed, ns.TornTruncations, ns.Quarantined)
		}
	}
	c := snap.Cluster
	fmt.Fprintf(w, "\ncluster: %d/%d nodes up, queue %d, jobs %d submitted / %d eliminated (%.1f%%), tiles %d / %d skipped (%.1f%%)\n",
		c.NodesUp, c.Nodes, c.QueueDepth, c.Submitted, c.Deduped, c.ElimRatio*100,
		c.TilesTotal, c.TilesSkipped, c.TileRatio*100)
}
