package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rendelim/internal/cluster"
	"rendelim/internal/jobs"
	"rendelim/internal/server"
	"rendelim/internal/store"
)

// startNodes boots n fully-meshed in-process resvc nodes on loopback, the
// same shape the internal/server cluster tests use.
func startNodes(t *testing.T, n int) []string {
	t.Helper()
	type node struct {
		pool *jobs.Pool
		ts   *httptest.Server
		addr string
	}
	nodes := make([]*node, n)
	servers := make([]*server.Server, n)
	for i := range nodes {
		pool := jobs.NewPool(jobs.WithWorkers(2))
		srv := server.New(pool, server.Limits{})
		ts := httptest.NewServer(srv.Handler())
		nodes[i] = &node{pool: pool, ts: ts, addr: strings.TrimPrefix(ts.URL, "http://")}
		servers[i] = srv
	}
	addrs := make([]string, n)
	for i, nd := range nodes {
		addrs[i] = nd.addr
	}
	for i, nd := range nodes {
		var peers []string
		for j, other := range nodes {
			if j != i {
				peers = append(peers, other.addr)
			}
		}
		c, err := cluster.New(cluster.Options{
			Self:           nd.addr,
			Peers:          peers,
			ForwardTimeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i].SetCluster(c)
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.ts.Close()
			nd.pool.Close(context.Background())
		}
	})
	return addrs
}

// restat -once -json against a live cluster must report a cluster-wide
// job-elimination ratio consistent with the nodes' summed counters — the
// acceptance check for the dashboard's aggregation math.
func TestRestatOnceJSONAgainstCluster(t *testing.T) {
	addrs := startNodes(t, 3)

	// Submit the same job through every node; the ring routes all three to
	// one owner, whose cache/singleflight eliminates the repeats, so the
	// fleet-wide deduped counter must be ≥ 2 out of 3 submissions.
	body := `{"alias": "ccs", "tech": "re", "width": 96, "height": 64, "frames": 2}`
	for _, addr := range addrs {
		resp, err := http.Post("http://"+addr+"/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit via %s: status %d", addr, resp.StatusCode)
		}
	}

	args := []string{"-once", "-json"}
	for _, addr := range addrs {
		args = append(args, "-node", addr)
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("restat: %v\n%s", err, out.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("restat -json emitted invalid JSON: %v\n%s", err, out.String())
	}

	if snap.Cluster.NodesUp != 3 || len(snap.Nodes) != 3 {
		t.Fatalf("nodes up = %d/%d, want 3/3", snap.Cluster.NodesUp, len(snap.Nodes))
	}
	var submitted, deduped uint64
	var queue int64
	for _, ns := range snap.Nodes {
		if !ns.Up {
			t.Fatalf("node %s down: %s", ns.Node, ns.Error)
		}
		submitted += ns.Submitted
		deduped += ns.Deduped
		queue += ns.QueueDepth
	}
	if snap.Cluster.Submitted != submitted || snap.Cluster.Deduped != deduped || snap.Cluster.QueueDepth != queue {
		t.Errorf("cluster totals %+v do not match summed node counters (submitted %d, deduped %d, queue %d)",
			snap.Cluster, submitted, deduped, queue)
	}
	if submitted == 0 {
		t.Fatal("no submissions recorded across the fleet")
	}
	want := float64(deduped) / float64(submitted)
	if snap.Cluster.ElimRatio != want {
		t.Errorf("cluster elimination ratio = %v, want %v (deduped/submitted)", snap.Cluster.ElimRatio, want)
	}
	// The ring sent every copy of the job to one owner: of the 3 identical
	// submissions the fleet accepted, at least the repeats were eliminated.
	if deduped < 2 {
		t.Errorf("deduped = %d, want >= 2 (cluster-wide elimination)", deduped)
	}

	// Every node served at least its own /metrics scrape, so the latency
	// histogram must carry observations and a sane p99.
	for _, ns := range snap.Nodes {
		if ns.P99 < 0 {
			t.Errorf("node %s p99 = %v, want >= 0", ns.Node, ns.P99)
		}
	}

	// CI keeps a snapshot as a workflow artifact when asked.
	if dir := os.Getenv("TRACE_ARTIFACT_DIR"); dir != "" {
		if err := os.WriteFile(filepath.Join(dir, "restat-snapshot.json"), out.Bytes(), 0o644); err != nil {
			t.Logf("writing restat snapshot artifact: %v", err)
		}
	}
}

// TestRestatReportsStoreRecovery: a node that recovered durable state on
// boot must surface the resvc_store_* counters in both the -json document
// and the rendered table's store sub-line.
func TestRestatReportsStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	st, err := store.Open(dir, store.Options{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	pool := jobs.NewPool(jobs.WithWorkers(2), jobs.WithStore(st), jobs.WithLogger(quiet))
	ts := httptest.NewServer(server.New(pool, server.Limits{}).Handler())
	body := `{"alias": "ccs", "tech": "re", "width": 96, "height": 64, "frames": 2}`
	resp, err := http.Post(ts.URL+"/jobs?wait=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	ts.Close()
	pool.Kill()
	st.Close()

	st2, err := store.Open(dir, store.Options{Logger: quiet})
	if err != nil {
		t.Fatal(err)
	}
	pool2 := jobs.NewPool(jobs.WithWorkers(2), jobs.WithStore(st2), jobs.WithLogger(quiet))
	ts2 := httptest.NewServer(server.New(pool2, server.Limits{}).Handler())
	t.Cleanup(func() {
		ts2.Close()
		pool2.Close(context.Background())
		st2.Close()
	})
	addr := strings.TrimPrefix(ts2.URL, "http://")

	var out bytes.Buffer
	if err := run([]string{"-once", "-json", "-node", addr}, &out); err != nil {
		t.Fatalf("restat: %v\n%s", err, out.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(out.Bytes(), &snap); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	ns := snap.Nodes[0]
	if ns.ResultsRecovered != 1 {
		t.Errorf("store_results_recovered = %d, want 1", ns.ResultsRecovered)
	}
	if ns.TornTruncations != 0 || ns.Quarantined != 0 {
		t.Errorf("clean restart reported damage: torn=%d quarantined=%d", ns.TornTruncations, ns.Quarantined)
	}

	out.Reset()
	if err := run([]string{"-once", "-node", addr}, &out); err != nil {
		t.Fatalf("restat table: %v", err)
	}
	if !strings.Contains(out.String(), "store: 1 results") {
		t.Errorf("table missing store recovery sub-line:\n%s", out.String())
	}
}

func TestRestatRequiresNodes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-once"}, &out); err == nil {
		t.Fatal("run without -node succeeded")
	}
}

// A down node must appear as DOWN in the table, not fail the whole snapshot.
func TestRestatToleratesDownNode(t *testing.T) {
	addrs := startNodes(t, 1)
	var out bytes.Buffer
	err := run([]string{"-once", "-node", addrs[0], "-node", "127.0.0.1:1", "-timeout", "500ms"}, &out)
	if err != nil {
		t.Fatalf("restat failed on a down node: %v", err)
	}
	text := out.String()
	if !strings.Contains(text, "DOWN") {
		t.Errorf("table does not mark the dead node DOWN:\n%s", text)
	}
	if !strings.Contains(text, "1/2 nodes up") {
		t.Errorf("cluster line does not report 1/2 nodes up:\n%s", text)
	}
}
