// Command retrace synthesizes benchmark command-stream traces and writes
// them in the rendelim binary trace format, the equivalent of Teapot's
// OpenGL ES trace generator for this reproduction.
//
// Usage:
//
//	retrace -out traces/ [-bench all] [-width 480] [-height 272] [-frames 50]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rendelim/internal/api"
	"rendelim/internal/trace"
	"rendelim/internal/workload"
)

func main() {
	out := flag.String("out", "traces", "output directory")
	bench := flag.String("bench", "all", "benchmark alias, comma list, or 'all'")
	width := flag.Int("width", 480, "screen width")
	height := flag.Int("height", 272, "screen height")
	frames := flag.Int("frames", 50, "frame count")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	p := workload.Params{Width: *width, Height: *height, Frames: *frames, Seed: *seed}

	var benches []workload.Benchmark
	if *bench == "all" {
		benches = append(workload.Suite(), workload.Extras()...)
	} else {
		for _, alias := range strings.Split(*bench, ",") {
			b, err := workload.ByAlias(strings.TrimSpace(alias))
			if err != nil {
				fmt.Fprintln(os.Stderr, "retrace:", err)
				os.Exit(2)
			}
			benches = append(benches, b)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "retrace:", err)
		os.Exit(1)
	}
	for _, b := range benches {
		tr := b.Build(p)
		path := filepath.Join(*out, b.Alias+".rdlm")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "retrace:", err)
			os.Exit(1)
		}
		if err := trace.Encode(f, tr); err != nil {
			fmt.Fprintln(os.Stderr, "retrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "retrace:", err)
			os.Exit(1)
		}
		info, _ := os.Stat(path)
		fmt.Printf("retrace: %-22s %d frames, %d draws/frame avg, %d bytes\n",
			path, len(tr.Frames), drawsPerFrame(tr), info.Size())
	}
}

func drawsPerFrame(tr *api.Trace) int {
	if len(tr.Frames) == 0 {
		return 0
	}
	draws := 0
	for _, f := range tr.Frames {
		for _, cmd := range f.Commands {
			if _, ok := cmd.(api.Draw); ok {
				draws++
			}
		}
	}
	return draws / len(tr.Frames)
}
