// Command resvc is the simulation-job daemon: it serves gpusim runs over
// HTTP with Rendering Elimination applied at job granularity — a CRC32
// signature of each job's inputs eliminates re-runs of identical
// (trace, config) submissions before they enter the worker pool.
//
// Usage:
//
//	resvc [-addr :8080] [-workers N] [-cache 512] [-timeout 10m] [-retries 2]
//	      [-checkpoint-interval 1] [-breaker-threshold 5] [-breaker-cooldown 30s]
//	      [-inject PLAN] [-inject-seed 1] [-log-level info] [-log-format text]
//	      [-cluster-addr host:port] [-peer host:port]... [-health-interval 2s]
//	      [-result-ttl 30s] [-tracefile out.json] [-journal 256] [-data-dir DIR]
//
// Durability: with -data-dir the node journals job lifecycle to a
// CRC-protected write-ahead log and snapshots completed results and
// frame-boundary checkpoints under that directory. On startup the WAL is
// replayed (a torn tail is truncated, corrupt snapshots are quarantined —
// never a refusal to boot): completed results re-enter the elimination
// cache, so identical submissions are deduplicated across restarts, and
// jobs that were running when the process died resume from their last
// persisted checkpoint instead of frame 0.
//
// Clustering: with one or more -peer flags (and -cluster-addr naming this
// node's own advertised address), the nodes form a static consistent-hash
// ring over job signatures. A node that receives a job it does not own
// proxies it to the owner, so the owner's result cache and singleflight
// eliminate identical jobs cluster-wide; if the owner is unreachable the
// node degrades to simulating locally. Peers are health-checked over
// /healthz — a draining peer (503) is routed around before it goes away.
//
// Overload and failure handling: the submission queue is bounded — when it
// is full, POST /jobs sheds load with 429 + Retry-After instead of queueing
// unboundedly. A per-benchmark circuit breaker opens after repeated
// non-transient failures (503 until the cooldown passes). On SIGTERM/SIGINT
// the service drains gracefully: /healthz flips to 503 {"status":"draining"},
// the listener closes, and in-flight jobs get -drain to finish.
//
// Endpoints:
//
//	POST /jobs          submit a workload spec (JSON) or a trace binary; ?wait=1 blocks
//	GET  /jobs/{id}     job status and result summary
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text: submissions, eliminations, latencies,
//	                    per-pipeline-stage simulated cycles, tile classes
//	GET  /debug/pprof   runtime profiling (CPU, heap, goroutines, ...)
//	GET  /debug/vars    expvar: build info, queue depth, cache size
//	GET  /debug/events  flight recorder: recent job/cluster events as JSON
//
// Every request runs under a W3C trace context: an inbound traceparent
// header is honored (forwarded hops re-propagate it), otherwise a fresh
// trace id is minted; the id is attached to every request log line and
// returned in job responses. -tracefile captures the spans Chrome-trace
// style; restat renders the fleet's metrics as a live dashboard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rendelim/internal/cluster"
	"rendelim/internal/fault"
	"rendelim/internal/jobs"
	"rendelim/internal/obs"
	"rendelim/internal/server"
	"rendelim/internal/store"
)

func main() {
	if err := run(os.Args[1:], nil, make(chan os.Signal, 1), true); err != nil {
		fmt.Fprintln(os.Stderr, "resvc:", err)
		os.Exit(1)
	}
}

// run starts the daemon. ready (if non-nil) receives the bound address once
// listening; sigs delivers shutdown signals (main installs SIGINT/SIGTERM
// when installSignals is set). Factored out of main for the e2e test.
func run(args []string, ready chan<- string, sigs chan os.Signal, installSignals bool) error {
	fs := flag.NewFlagSet("resvc", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "concurrent simulation workers (0 = host CPUs / tile-workers)")
	tileWorkers := fs.Int("tile-workers", 0, "raster-phase goroutines per simulation (0/1 = serial, -1 = one per CPU); never changes results")
	cacheSize := fs.Int("cache", 512, "LRU result cache entries")
	timeout := fs.Duration("timeout", 10*time.Minute, "per-attempt deadline (0 = none)")
	retries := fs.Int("retries", 2, "transient-failure retries per job")
	maxBody := fs.Int64("max-body", 64<<20, "max trace upload bytes")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown budget")
	ckptInterval := fs.Int("checkpoint-interval", 1, "checkpoint the simulator every n frames so retries resume instead of restarting (0 = off)")
	brkThreshold := fs.Int("breaker-threshold", 5, "consecutive non-transient failures before a benchmark's circuit breaker opens (negative = disabled)")
	brkCooldown := fs.Duration("breaker-cooldown", 30*time.Second, "how long an open circuit breaker rejects before a half-open trial")
	inject := fs.String("inject", "", "fault-injection plan, e.g. 'dram.read:panic:0.01:4,server.accept:latency:0.1,store.write:error:0.05'; store.write/store.sync/store.rename exercise the durability layer (chaos testing; empty = off)")
	injectSeed := fs.Int64("inject-seed", 1, "fault-injection PRNG seed")
	logLevel := fs.String("log-level", "", "log level: debug, info, warn, error (default info; env "+obs.EnvLogLevel+")")
	logFormat := fs.String("log-format", "", "log format: text or json (default text; env "+obs.EnvLogFormat+")")
	clusterAddr := fs.String("cluster-addr", "", "this node's advertised host:port for clustering (required with -peer)")
	var peers peerList
	fs.Var(&peers, "peer", "peer node host:port; repeat for each member (enables clustering)")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "gap between peer /healthz probes")
	resultTTL := fs.Duration("result-ttl", 30*time.Second, "how long a non-owner serves a remote result locally (read-through cache; negative = off)")
	dataDir := fs.String("data-dir", "", "durable state directory: WAL + result/checkpoint snapshots; replayed on startup so results and in-flight jobs survive restarts (empty = memory-only)")
	traceFile := fs.String("tracefile", "", "write a Chrome trace-event JSON (HTTP request and cluster forward spans) here on shutdown")
	journalSize := fs.Int("journal", obs.DefaultJournalSize, "event-journal ring size served at /debug/events")
	if err := fs.Parse(args); err != nil {
		return err
	}

	log, err := obs.Setup(*logLevel, *logFormat)
	if err != nil {
		return err
	}

	plan, err := fault.Parse(*injectSeed, *inject)
	if err != nil {
		return err
	}
	if plan != nil {
		log.Warn("fault injection armed", "plan", *inject, "seed", *injectSeed)
	}

	var tracer *obs.Tracer
	if *traceFile != "" {
		tracer = obs.NewTracer()
		// pid-tag the spans so traces from several nodes merge into one
		// Perfetto timeline with a labeled track group per node.
		procName := "resvc " + *addr
		if *clusterAddr != "" {
			procName = "resvc " + *clusterAddr
		}
		tracer.SetProcess(os.Getpid(), procName)
	}
	journal := obs.NewJournal(*journalSize)

	// Cluster configuration is validated before anything listens: duplicate
	// peers or self-peering would silently skew ring ownership, so they are
	// startup errors, not warnings.
	var clus *cluster.Cluster
	if len(peers) > 0 {
		if *clusterAddr == "" {
			return fmt.Errorf("-peer requires -cluster-addr (this node's advertised host:port)")
		}
		clus, err = cluster.New(cluster.Options{
			Self:           *clusterAddr,
			Peers:          peers,
			HealthInterval: *healthInterval,
			ResultTTL:      *resultTTL,
			Logger:         log,
			Tracer:         tracer,
			Journal:        journal,
		})
		if err != nil {
			return err
		}
	} else if *clusterAddr != "" {
		return fmt.Errorf("-cluster-addr without any -peer flags; nothing to cluster with")
	}

	// The store opens (and replays its WAL) before the pool exists; the
	// pool's constructor then consumes the recovery set. Closed after the
	// pool drains so the last completions still reach the WAL.
	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir, store.Options{Fault: plan, Logger: log})
		if err != nil {
			return err
		}
		defer st.Close()
		sm := st.Metrics()
		log.Info("durable store open", "dir", st.Dir(),
			"results_recovered", sm.ResultsRecovered.Load(),
			"jobs_recovered", sm.JobsRecovered.Load(),
			"checkpoints_recovered", sm.CheckpointsRecovered.Load(),
			"torn_tail_truncations", sm.TornTailTruncations.Load(),
			"snapshots_quarantined", sm.SnapshotsQuarantined.Load())
	}

	pool := jobs.NewPool(
		jobs.WithWorkers(*workers),
		jobs.WithCacheSize(*cacheSize),
		jobs.WithTimeout(*timeout),
		jobs.WithRetries(*retries),
		jobs.WithLogger(log),
		jobs.WithTileWorkers(*tileWorkers),
		jobs.WithCheckpointInterval(*ckptInterval),
		jobs.WithBreaker(*brkThreshold, *brkCooldown),
		jobs.WithFault(plan),
		jobs.WithJournal(journal),
		jobs.WithStore(st),
	)
	srv := server.New(pool, server.Limits{MaxBodyBytes: *maxBody})
	srv.SetLogger(log)
	srv.SetFaultPlan(plan)
	srv.SetTracer(tracer)
	srv.SetJournal(journal)
	if clus != nil {
		srv.SetCluster(clus)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if clus != nil {
		clus.Start()
		defer clus.Stop()
		log.Info("cluster armed", "self", clus.Self(), "members", len(clus.Members()))
	}
	httpSrv := &http.Server{
		Handler: srv.Handler(),
		// Slow-loris hardening: a client trickling headers or a body can
		// hold a connection for at most these budgets. WriteTimeout stays
		// unset because ?wait=1 responses legitimately block up to the
		// job-wait cap.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(log.Handler(), slog.LevelWarn),
	}

	log.Info("listening", "addr", ln.Addr().String(),
		"workers", pool.Workers(), "cache_entries", *cacheSize)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	if installSignals {
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sigs)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		log.Info("draining", "signal", sig.String(), "budget", *drain)
	}

	// Flip /healthz to 503 "draining" first so load balancers stop routing
	// here, then stop accepting, then drain the pool.
	srv.StartDraining()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Warn("http shutdown", "err", err)
	}
	if err := pool.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("pool drain", "err", err)
	}

	if tracer != nil {
		if werr := tracer.WriteFile(*traceFile); werr != nil {
			log.Warn("trace write", "path", *traceFile, "err", werr)
		} else {
			log.Info("trace written", "path", *traceFile, "events", tracer.Len())
		}
	}

	// Report job elimination the way the simulator reports tile elimination.
	m := pool.Metrics()
	log.Info("shutdown complete",
		"jobs_submitted", m.Submitted.Load(),
		"jobs_eliminated", m.Deduped.Load(),
		"elimination_ratio", fmt.Sprintf("%.3f", m.EliminationRatio()),
		"jobs_completed", m.Completed.Load(),
		"jobs_failed", m.Failed.Load())
	return nil
}

// peerList collects repeated -peer flags.
type peerList []string

// String implements flag.Value.
func (p *peerList) String() string { return strings.Join(*p, ",") }

// Set implements flag.Value; each occurrence appends one peer.
func (p *peerList) Set(v string) error {
	if strings.TrimSpace(v) == "" {
		return fmt.Errorf("empty -peer value")
	}
	*p = append(*p, v)
	return nil
}
