// Command resvc is the simulation-job daemon: it serves gpusim runs over
// HTTP with Rendering Elimination applied at job granularity — a CRC32
// signature of each job's inputs eliminates re-runs of identical
// (trace, config) submissions before they enter the worker pool.
//
// Usage:
//
//	resvc [-addr :8080] [-workers N] [-cache 512] [-timeout 10m] [-retries 2]
//
// Endpoints:
//
//	POST /jobs        submit a workload spec (JSON) or a trace binary; ?wait=1 blocks
//	GET  /jobs/{id}   job status and result summary
//	GET  /healthz     liveness
//	GET  /metrics     Prometheus text: submissions, eliminations, latencies
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rendelim/internal/jobs"
	"rendelim/internal/server"
)

func main() {
	if err := run(os.Args[1:], nil, make(chan os.Signal, 1), true); err != nil {
		fmt.Fprintln(os.Stderr, "resvc:", err)
		os.Exit(1)
	}
}

// run starts the daemon. ready (if non-nil) receives the bound address once
// listening; sigs delivers shutdown signals (main installs SIGINT/SIGTERM
// when installSignals is set). Factored out of main for the e2e test.
func run(args []string, ready chan<- string, sigs chan os.Signal, installSignals bool) error {
	fs := flag.NewFlagSet("resvc", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	cacheSize := fs.Int("cache", 512, "LRU result cache entries")
	timeout := fs.Duration("timeout", 10*time.Minute, "per-job deadline (0 = none)")
	retries := fs.Int("retries", 2, "transient-failure retries per job")
	maxBody := fs.Int64("max-body", 64<<20, "max trace upload bytes")
	drain := fs.Duration("drain", 30*time.Second, "graceful shutdown budget")
	if err := fs.Parse(args); err != nil {
		return err
	}

	pool := jobs.New(jobs.Options{
		Workers:   *workers,
		CacheSize: *cacheSize,
		Timeout:   *timeout,
		Retries:   *retries,
	})
	srv := server.New(pool, server.Limits{MaxBodyBytes: *maxBody})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	fmt.Fprintf(os.Stderr, "resvc: listening on %s (%d workers, %d-entry cache)\n",
		ln.Addr(), pool.Workers(), *cacheSize)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	if installSignals {
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sigs)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "resvc: %v, draining (budget %s)...\n", sig, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "resvc: http shutdown:", err)
	}
	if err := pool.Close(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "resvc: pool drain:", err)
	}

	// Report job elimination the way the simulator reports tile elimination.
	m := pool.Metrics()
	fmt.Fprintf(os.Stderr, "resvc: jobs %d submitted, %d eliminated (%.1f%%), %d completed, %d failed\n",
		m.Submitted.Load(), m.Deduped.Load(), m.EliminationRatio()*100,
		m.Completed.Load(), m.Failed.Load())
	return nil
}
