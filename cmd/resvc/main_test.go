package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end over a real loopback listener: start the daemon, submit the
// same job twice, assert the second is eliminated by the signature cache,
// then shut down gracefully via the signal path.
func TestDaemonEndToEnd(t *testing.T) {
	ready := make(chan string, 1)
	sigs := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "10s"}, ready, sigs, false)
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	// Health must respond before any job.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"alias": "ccs", "tech": "re", "width": 96, "height": 64, "frames": 2}`
	post := func() map[string]any {
		resp, err := http.Post(base+"/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	first := post()
	if first["state"] != "done" {
		t.Fatalf("first job: %+v", first)
	}
	second := post()
	if second["deduped"] != true {
		t.Errorf("second submission not eliminated: %+v", second)
	}

	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(raw), "resvc_jobs_deduped_total 1") {
		t.Errorf("metrics missing dedup count:\n%s", raw)
	}

	sigs <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// TestDaemonDataDirSurvivesRestart runs the full binary path twice on one
// -data-dir: the second daemon must serve the first daemon's job as an
// elimination hit with the recovery visible on /metrics.
func TestDaemonDataDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body := `{"alias": "ctr", "tech": "re", "width": 96, "height": 64, "frames": 2}`

	boot := func() (string, chan os.Signal, chan error) {
		t.Helper()
		ready := make(chan string, 1)
		sigs := make(chan os.Signal, 1)
		done := make(chan error, 1)
		go func() {
			done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2", "-drain", "10s",
				"-data-dir", dir, "-log-level", "error"}, ready, sigs, false)
		}()
		select {
		case addr := <-ready:
			return "http://" + addr, sigs, done
		case err := <-done:
			t.Fatalf("daemon exited early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("daemon never became ready")
		}
		panic("unreachable")
	}
	post := func(base string) map[string]any {
		t.Helper()
		resp, err := http.Post(base+"/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	stop := func(sigs chan os.Signal, done chan error) {
		t.Helper()
		sigs <- syscall.SIGTERM
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("shutdown: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not drain")
		}
	}

	base, sigs, done := boot()
	if first := post(base); first["state"] != "done" {
		t.Fatalf("first life: %+v", first)
	}
	stop(sigs, done)

	base, sigs, done = boot()
	again := post(base)
	if again["deduped"] != true {
		t.Fatalf("restarted daemon did not eliminate the recovered job: %+v", again)
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(raw), "resvc_store_results_recovered_total 1") {
		t.Errorf("metrics missing store recovery count:\n%s", raw)
	}
	stop(sigs, done)
}
