// Command relint runs the repo's custom static-analysis suite: the five
// analyzers that turn the determinism, hot-path, durability, error-mapping
// and metric-naming invariants into compile-time checks.
//
// Standalone (the usual way, and what CI runs):
//
//	go run ./cmd/relint ./...
//	go run ./cmd/relint -checks nodeterm,fsyncorder ./internal/...
//
// Diagnostics print as file:line:col: message (analyzer); the exit status
// is 1 when anything is flagged. Suppress a deliberate exception with a
// justified directive on (or directly above) the flagged line:
//
//	//lint:ignore fsyncorder quarantine moves already-damaged bytes aside
//
// As a vet tool (the unitchecker protocol, one package per invocation):
//
//	go vet -vettool=$(go env GOPATH)/bin/relint ./...
//
// relint analyzes non-test Go files: the invariants it enforces are about
// production code (signature determinism, hot-path allocation, fsync
// ordering), and tests legitimately use wall clocks and allocation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"rendelim/internal/analysis"
	"rendelim/internal/analysis/errwrapre"
	"rendelim/internal/analysis/fsyncorder"
	"rendelim/internal/analysis/hotpathalloc"
	"rendelim/internal/analysis/metricconv"
	"rendelim/internal/analysis/nodeterm"
)

// suite is every analyzer relint runs, in reporting order.
var suite = []*analysis.Analyzer{
	nodeterm.Analyzer,
	hotpathalloc.Analyzer,
	fsyncorder.Analyzer,
	errwrapre.Analyzer,
	metricconv.Analyzer,
}

func main() {
	// go vet probes its -vettool once with -V=full for a cache key.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Println("relint version 1")
		return
	}
	// cmd/go also asks which analyzer flags the tool accepts (a JSON list);
	// relint exposes none through vet, so the answer is empty.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	// go vet invokes the tool with a single *.cfg argument per package.
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vetMode(os.Args[1]))
	}
	os.Exit(standalone())
}

func standalone() int {
	checks := flag.String("checks", "", "comma-separated analyzer subset to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: relint [-checks a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectChecks(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relint:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relint:", err)
		return 2
	}
	bad := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "relint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Println(d)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "relint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

func selectChecks(csv string) ([]*analysis.Analyzer, error) {
	if csv == "" {
		return suite, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(csv, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// vetConfig is the JSON cmd/go writes for a unitchecker-protocol vet tool.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetMode analyzes one package the way cmd/go asks: type-check the listed
// files against the export data the build already produced, report plain
// diagnostics on stderr, and always write the (empty — relint has no facts)
// vetx output so the action cache stays consistent.
func vetMode(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "relint: parsing vet config:", err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "relint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test-variant compilations re-list the production files plus *_test.go;
	// the base package invocation already covered the production code.
	if strings.Contains(cfg.ID, ".test") {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintln(os.Stderr, "relint:", err)
			return 2
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "relint:", err)
		return 2
	}
	pkg := analysis.FromTyped(cfg.ImportPath, cfg.Dir, fset, files, tpkg, info)
	diags, err := analysis.Run(pkg, suite...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "relint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
