// Command rebench records the performance trajectory of the simulator: it
// runs a matrix of (benchmark, technique) jobs through the same pool resvc
// uses, measures host throughput, and emits a machine-readable BENCH_<n>.json
// so successive runs (CI keeps them as artifacts) can be diffed for
// regressions in frames/sec, elimination ratio, or per-stage cycle counts.
//
// Usage:
//
//	rebench [-out results] [-benchmarks ccs,mst] [-techs base,re]
//	        [-width 480] [-height 272] [-frames 50] [-seed 1]
//	        [-workers 0] [-tile-workers 0] [-smoke]
//	rebench -compare [-max-regress 0.10] old.json new.json
//
// The second form is the regression gate: it diffs two reports run for run
// and fails (exit 1) when new frames/sec drops more than -max-regress below
// old, or when the allocator discipline regresses — allocations per frame
// are recorded in every report precisely so the zero-allocation hot path
// stays enforced by CI, not by folklore.
//
// Every unique job is submitted twice: the second pass is eliminated by the
// pool's signature cache, so the report also demonstrates (and records) the
// job-elimination ratio, the service-level twin of the paper's tile skip
// fraction.
//
// -smoke shrinks the matrix to a seconds-long run (4 frames, 96x64, two
// benchmarks) for CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"rendelim/internal/energy"
	"rendelim/internal/exp"
	"rendelim/internal/gpusim"
	"rendelim/internal/jobs"
	"rendelim/internal/workload"
)

// Report is the top-level BENCH_<n>.json document.
type Report struct {
	Schema      string    `json:"schema"` // "rebench/1"
	Started     time.Time `json:"started"`
	GeneratedAt string    `json:"generated_at"`           // ISO-8601 UTC, stamped at write time
	GitRevision string    `json:"git_revision,omitempty"` // VCS commit the binary was built from
	GoVersion   string    `json:"go_version"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	Smoke       bool      `json:"smoke"`
	Params      Params    `json:"params"`
	Runs        []Run     `json:"runs"`
	Totals      Totals    `json:"totals"`
}

// gitRevision identifies the commit this binary was built from: the
// build-info VCS stamp when the binary was built from a checkout (`go build`
// embeds it), falling back to asking git directly for `go run` / `go test`
// invocations, where the stamp is absent. Empty when neither source knows.
func gitRevision() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Params echoes the workload scaling of every run.
type Params struct {
	Width       int   `json:"width"`
	Height      int   `json:"height"`
	Frames      int   `json:"frames"`
	Seed        int64 `json:"seed"`
	Workers     int   `json:"workers"`
	TileWorkers int   `json:"tile_workers"`
}

// Run is one (benchmark, technique) measurement.
type Run struct {
	Alias        string  `json:"alias"`
	Tech         string  `json:"tech"`
	WallSeconds  float64 `json:"wall_seconds"`
	Frames       int     `json:"frames"`
	FramesPerSec float64 `json:"frames_per_sec"` // host throughput, not simulated FPS

	// Host allocator behaviour across the run, from runtime.MemStats
	// deltas (the measurement pass is serialized, so the deltas belong to
	// this run). The steady-state budget is asserted exactly by the
	// testing.AllocsPerRun tests in internal/gpusim; these trajectory
	// numbers exist so -compare can flag a drift between two commits.
	AllocsPerFrame     float64 `json:"allocs_per_frame"`
	AllocBytesPerFrame float64 `json:"alloc_bytes_per_frame"`

	Cycles           uint64            `json:"cycles"`
	TilesTotal       uint64            `json:"tiles_total"`
	TilesSkipped     uint64            `json:"tiles_skipped"`
	TileSkipFraction float64           `json:"tile_skip_fraction"`
	StageCycles      map[string]uint64 `json:"stage_cycles"`
	FragsShaded      uint64            `json:"frags_shaded"`
	DRAMBytes        uint64            `json:"dram_bytes"`
	EnergyMJ         float64           `json:"energy_mj"`
}

// Totals aggregates the whole session, including the elimination pass.
type Totals struct {
	WallSeconds         float64 `json:"wall_seconds"`
	Frames              uint64  `json:"frames"`
	FramesPerSec        float64 `json:"frames_per_sec"`
	JobsSubmitted       uint64  `json:"jobs_submitted"`
	JobsDeduped         uint64  `json:"jobs_deduped"`
	JobEliminationRatio float64 `json:"job_elimination_ratio"`
	EliminationPassSec  float64 `json:"elimination_pass_sec"` // wall time of the all-cached second pass
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rebench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("rebench", flag.ContinueOnError)
	out := fs.String("out", "results", "output directory for BENCH_<n>.json")
	benchmarks := fs.String("benchmarks", "", "comma-separated aliases (default: full Table II suite; smoke: ccs,mst)")
	techs := fs.String("techs", "base,re", "comma-separated techniques to measure")
	width := fs.Int("width", 480, "frame width")
	height := fs.Int("height", 272, "frame height")
	frames := fs.Int("frames", 50, "frames per run")
	seed := fs.Int64("seed", 1, "workload seed")
	workers := fs.Int("workers", 0, "pool workers (0 = host CPUs / tile-workers)")
	tileWorkers := fs.Int("tile-workers", 0, "raster goroutines per simulation")
	smoke := fs.Bool("smoke", false, "seconds-long CI mode: 4 frames, 96x64, ccs+mst")
	compare := fs.Bool("compare", false, "compare two reports (old.json new.json) and fail on regression")
	maxRegress := fs.Float64("max-regress", 0.10, "with -compare: tolerated fractional drop in frames/sec (and rise in allocs/frame)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two report paths, got %d", fs.NArg())
		}
		return compareReports(stdout, fs.Arg(0), fs.Arg(1), *maxRegress)
	}

	p := workload.Params{Width: *width, Height: *height, Frames: *frames, Seed: *seed}
	aliases := exp.SuiteAliases()
	if *smoke {
		// 4 frames, not fewer: the RE signature pipeline is double-buffered,
		// so tile skipping only begins at frame 2.
		p = workload.Params{Width: 96, Height: 64, Frames: 4, Seed: *seed}
		aliases = []string{"ccs", "mst"}
	}
	if *benchmarks != "" {
		aliases = splitList(*benchmarks)
	}
	var techniques []gpusim.Technique
	for _, ts := range splitList(*techs) {
		tech, err := gpusim.ParseTechnique(ts)
		if err != nil {
			return err
		}
		techniques = append(techniques, tech)
	}
	for _, a := range aliases {
		if _, err := workload.ByAlias(a); err != nil {
			return err
		}
	}

	pool := jobs.NewPool(jobs.WithWorkers(*workers), jobs.WithTileWorkers(*tileWorkers))
	defer pool.Close(context.Background())

	report := Report{
		Schema:      "rebench/1",
		Started:     time.Now().UTC(),
		GitRevision: gitRevision(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       *smoke,
		Params: Params{
			Width: p.Width, Height: p.Height, Frames: p.Frames, Seed: p.Seed,
			Workers: pool.Workers(), TileWorkers: *tileWorkers,
		},
	}

	// Measurement pass: every unique (benchmark, technique) simulated once.
	// Submissions are serialized so per-run wall time is not confounded by
	// co-scheduled jobs; within a run, -tile-workers parallelism applies.
	sessionStart := time.Now()
	for _, alias := range aliases {
		for _, tech := range techniques {
			spec := jobs.Spec{Alias: alias, Params: p, Tech: tech}
			var msBefore runtime.MemStats
			runtime.ReadMemStats(&msBefore)
			start := time.Now()
			job, err := pool.Submit(spec)
			if err != nil {
				return err
			}
			res, err := job.Wait(context.Background())
			if err != nil {
				return fmt.Errorf("%s/%s: %w", alias, tech, err)
			}
			wall := time.Since(start).Seconds()
			var msAfter runtime.MemStats
			runtime.ReadMemStats(&msAfter)
			stage := make(map[string]uint64, int(gpusim.NumPipeStages))
			for st := gpusim.PipeStage(0); st < gpusim.NumPipeStages; st++ {
				stage[st.String()] = res.Total.StageCycles[st]
			}
			eb := energy.Default().Compute(res.Total.Activity)
			report.Runs = append(report.Runs, Run{
				Alias:              alias,
				Tech:               tech.String(),
				WallSeconds:        wall,
				Frames:             len(res.Frames),
				FramesPerSec:       ratio(float64(len(res.Frames)), wall),
				AllocsPerFrame:     ratio(float64(msAfter.Mallocs-msBefore.Mallocs), float64(len(res.Frames))),
				AllocBytesPerFrame: ratio(float64(msAfter.TotalAlloc-msBefore.TotalAlloc), float64(len(res.Frames))),
				Cycles:             res.Total.TotalCycles(),
				TilesTotal:         res.Total.TilesTotal,
				TilesSkipped:       res.Total.TilesSkipped,
				TileSkipFraction:   res.Total.SkipFraction(),
				StageCycles:        stage,
				FragsShaded:        res.Total.FragsShaded,
				DRAMBytes:          res.Total.TotalTraffic(),
				EnergyMJ:           eb.Total() * 1e3,
			})
			fmt.Fprintf(stdout, "%-4s %-5s %8.3fs %8.1f frames/s  skip %.3f\n",
				alias, tech, wall, ratio(float64(len(res.Frames)), wall), res.Total.SkipFraction())
		}
	}

	// Elimination pass: resubmit the identical matrix. Every job is
	// eliminated by signature match, which both validates the cache and
	// records how cheap the eliminated path is.
	elimStart := time.Now()
	for _, alias := range aliases {
		for _, tech := range techniques {
			job, err := pool.Submit(jobs.Spec{Alias: alias, Params: p, Tech: tech})
			if err != nil {
				return err
			}
			if _, err := job.Wait(context.Background()); err != nil {
				return err
			}
			if !job.Deduped {
				return fmt.Errorf("%s/%s: second submission was not eliminated", alias, tech)
			}
		}
	}
	elimWall := time.Since(elimStart).Seconds()
	totalWall := time.Since(sessionStart).Seconds()

	m := pool.Metrics()
	totalFrames := m.FramesSimulated.Load()
	report.Totals = Totals{
		WallSeconds:         totalWall,
		Frames:              totalFrames,
		FramesPerSec:        ratio(float64(totalFrames), totalWall),
		JobsSubmitted:       m.Submitted.Load(),
		JobsDeduped:         m.Deduped.Load(),
		JobEliminationRatio: m.EliminationRatio(),
		EliminationPassSec:  elimWall,
	}

	report.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	path, err := nextBenchPath(*out)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d runs, elimination ratio %.2f)\n",
		path, len(report.Runs), report.Totals.JobEliminationRatio)
	return nil
}

// nextBenchPath picks BENCH_<n>.json with n one past the highest existing
// index in dir (created if missing), so the perf trajectory accumulates.
func nextBenchPath(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	max := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n > max {
			max = n
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
